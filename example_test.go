package predint_test

// Executable godoc examples for the public facade.

import (
	"fmt"

	predint "repro"
)

// ExampleDesignLink designs a 5 mm, 128-bit global link at 65 nm.
func ExampleDesignLink() {
	res, err := predint.DesignLink(predint.LinkRequest{
		Tech:     "65nm",
		LengthMM: 5,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("repeaters: %d × D%g\n", res.Repeaters, res.RepeaterSize)
	fmt.Printf("delay under 1 ns: %v\n", res.Delay < 1e-9)
	// Output:
	// repeaters: 3 × D60
	// delay under 1 ns: true
}

// ExampleTechnologies lists the built-in nodes.
func ExampleTechnologies() {
	for _, name := range predint.Technologies()[:3] {
		fmt.Println(name)
	}
	// Output:
	// 90nm
	// 65nm
	// 45nm
}

// ExampleSynthesizeNoC synthesizes the DVOPD network under both
// interconnect models and compares the reported power.
func ExampleSynthesizeNoC() {
	prop, err := predint.SynthesizeNoC(predint.NoCRequest{Case: "DVOPD", Tech: "90nm"})
	if err != nil {
		panic(err)
	}
	orig, err := predint.SynthesizeNoC(predint.NoCRequest{Case: "DVOPD", Tech: "90nm", UseOriginalModel: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("accurate model reports more power: %v\n",
		prop.Metrics.TotalPower() > orig.Metrics.TotalPower())
	fmt.Printf("accurate model needs more routers: %v\n", prop.Routers > orig.Routers)
	// Output:
	// accurate model reports more power: true
	// accurate model needs more routers: true
}
