package predint

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTechnologies(t *testing.T) {
	// Custom registrations from other tests (zz_register_test.go) can
	// run first under -shuffle=on, so assert on the built-in
	// subsequence rather than the exact list.
	builtin := []string{"90nm", "65nm", "45nm", "32nm", "22nm", "16nm"}
	isBuiltin := make(map[string]bool, len(builtin))
	for _, n := range builtin {
		isBuiltin[n] = true
	}
	var names []string
	for _, n := range Technologies() {
		if isBuiltin[n] {
			names = append(names, n)
		}
	}
	if len(names) != len(builtin) {
		t.Fatalf("Technologies() = %v, missing built-ins (want %v)", Technologies(), builtin)
	}
	for i, n := range builtin {
		if names[i] != n {
			t.Fatalf("Technologies() built-ins out of order: %v, want %v", names, builtin)
		}
	}
	info, err := Tech("45nm")
	if err != nil {
		t.Fatal(err)
	}
	if !info.LowPower || info.Vdd != 1.1 || info.Clock != 3.0e9 {
		t.Fatalf("45nm info %+v", info)
	}
	if _, err := Tech("5nm"); err == nil {
		t.Fatal("unknown tech accepted")
	}
}

func TestDesignLinkDefaults(t *testing.T) {
	res, err := DesignLink(LinkRequest{Tech: "65nm", LengthMM: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Repeaters < 1 || res.RepeaterSize <= 0 {
		t.Fatalf("bad buffering %+v", res)
	}
	if res.Delay <= 0 || res.DynamicPower <= 0 || res.LeakagePower <= 0 || res.Area <= 0 {
		t.Fatalf("bad metrics %+v", res)
	}
	if res.WireResistance <= 0 || res.WireCapacitance <= 0 {
		t.Fatal("missing wire totals")
	}
	// 5mm 65nm buffered link: hundreds of ps.
	if res.Delay < 100e-12 || res.Delay > 5e-9 {
		t.Fatalf("implausible delay %g", res.Delay)
	}
}

func TestDesignLinkValidation(t *testing.T) {
	if _, err := DesignLink(LinkRequest{Tech: "nope", LengthMM: 1}); err == nil {
		t.Fatal("unknown tech accepted")
	}
	if _, err := DesignLink(LinkRequest{Tech: "90nm", LengthMM: 0}); err == nil {
		t.Fatal("zero length accepted")
	}
	if _, err := DesignLink(LinkRequest{Tech: "90nm", LengthMM: 1, Style: "zigzag"}); err == nil {
		t.Fatal("unknown style accepted")
	}
}

func TestDesignLinkDelayOptimalFaster(t *testing.T) {
	base := LinkRequest{Tech: "90nm", LengthMM: 10}
	weighted, err := DesignLink(base)
	if err != nil {
		t.Fatal(err)
	}
	fast := base
	fast.DelayOptimal = true
	opt, err := DesignLink(fast)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Delay > weighted.Delay {
		t.Fatalf("delay-optimal (%g) slower than weighted (%g)", opt.Delay, weighted.Delay)
	}
	if opt.DynamicPower+opt.LeakagePower < weighted.DynamicPower+weighted.LeakagePower {
		t.Fatal("delay-optimal should not use less power than weighted")
	}
}

func TestDesignLinkStyles(t *testing.T) {
	mk := func(s Style) LinkResult {
		r, err := DesignLink(LinkRequest{Tech: "90nm", LengthMM: 8, Style: s, DelayOptimal: true})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		return r
	}
	swss, stag, shield := mk(SWSS), mk(Staggered), mk(Shielded)
	if stag.Delay > swss.Delay {
		t.Fatal("staggered not faster than SWSS")
	}
	if shield.Area <= swss.Area {
		t.Fatal("shielding must cost area")
	}
}

func TestGoldenLinkDelayAgreesWithModel(t *testing.T) {
	// End-to-end: design a link with the model, check the golden
	// engine agrees within the paper's accuracy band.
	req := LinkRequest{Tech: "90nm", LengthMM: 5, PowerWeight: Float(0.3), LibrarySizesOnly: true}
	res, err := DesignLink(req)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := GoldenLinkDelay("90nm", res.RepeaterSize, res.Repeaters, 5, SWSS, DefaultInputSlewPS)
	if err != nil {
		t.Fatal(err)
	}
	if golden <= 0 {
		t.Fatal("bad golden delay")
	}
	if e := math.Abs(res.Delay-golden) / golden; e > 0.15 {
		t.Fatalf("model vs golden divergence %.1f%%", e*100)
	}
}

func TestGoldenLinkDelayValidation(t *testing.T) {
	if _, err := GoldenLinkDelay("90nm", 7, 3, 5, SWSS, DefaultInputSlewPS); err == nil {
		t.Fatal("non-library size accepted")
	}
	if _, err := GoldenLinkDelay("nope", 8, 3, 5, SWSS, DefaultInputSlewPS); err == nil {
		t.Fatal("unknown tech accepted")
	}
	if _, err := GoldenLinkDelay("90nm", 8, 3, 5, SWSS, 0); err == nil {
		t.Fatal("zero input slew accepted")
	}
	if _, err := GoldenLinkDelay("90nm", 8, 3, 5, SWSS, -100); err == nil {
		t.Fatal("negative input slew accepted")
	}
}

func TestGoldenLinkDelaySlewMatters(t *testing.T) {
	// The golden engine must honor the requested stimulus: a slower
	// input edge produces a different (larger) first-stage delay.
	fast, err := GoldenLinkDelay("90nm", 8, 3, 5, SWSS, 100)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := GoldenLinkDelay("90nm", 8, 3, 5, SWSS, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !(slow > fast) {
		t.Fatalf("golden delay ignores input slew: 100ps → %g, 500ps → %g", fast, slow)
	}
}

func TestDesignLinkGeometryOptimization(t *testing.T) {
	base := LinkRequest{Tech: "45nm", LengthMM: 10, DelayOptimal: true}
	minGeom, err := DesignLink(base)
	if err != nil {
		t.Fatal(err)
	}
	if minGeom.WidthMult != 1 || minGeom.SpacingMult != 1 {
		t.Fatalf("default geometry should be minimum: %+v", minGeom)
	}
	sized := base
	sized.OptimizeGeometry = true
	res, err := DesignLink(sized)
	if err != nil {
		t.Fatal(err)
	}
	if res.WidthMult <= 1 {
		t.Fatalf("geometry optimizer did not widen: %+v", res)
	}
	if res.Delay >= minGeom.Delay {
		t.Fatalf("sized link (%g) not faster than minimum geometry (%g)", res.Delay, minGeom.Delay)
	}
	// The wire totals must reflect the chosen geometry.
	if res.WireResistance >= minGeom.WireResistance {
		t.Fatal("widened wire should have lower resistance")
	}
}

func TestCrosstalkFacade(t *testing.T) {
	worst, err := Crosstalk(CrosstalkRequest{Tech: "90nm", LengthMM: 1, Aggressors: "opposite"})
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := Crosstalk(CrosstalkRequest{Tech: "90nm", LengthMM: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !(worst.Delay > quiet.Delay) {
		t.Fatal("worst-case aggressors must slow the victim")
	}
	if !(worst.EffectiveMiller > quiet.EffectiveMiller) {
		t.Fatal("Miller ordering")
	}
	if worst.EffectiveMiller < 1.5 || worst.EffectiveMiller > 2.5 {
		t.Fatalf("worst-case Miller %g outside the physical band", worst.EffectiveMiller)
	}
	if _, err := Crosstalk(CrosstalkRequest{Tech: "90nm", LengthMM: 1, Aggressors: "dancing"}); err == nil {
		t.Fatal("unknown aggressor mode accepted")
	}
	if _, err := Crosstalk(CrosstalkRequest{Tech: "nope", LengthMM: 1}); err == nil {
		t.Fatal("unknown tech accepted")
	}
	if _, err := Crosstalk(CrosstalkRequest{Tech: "90nm"}); err == nil {
		t.Fatal("zero length accepted")
	}
}

func TestCalibrateMatchesEmbedded(t *testing.T) {
	live, err := Calibrate("90nm")
	if err != nil {
		t.Fatal(err)
	}
	emb, err := EmbeddedCoefficients("90nm")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(live.Inv.Rise.Beta0-emb.Inv.Rise.Beta0) > 1e-9*emb.Inv.Rise.Beta0 {
		t.Fatalf("live beta0 %g vs embedded %g", live.Inv.Rise.Beta0, emb.Inv.Rise.Beta0)
	}
	if _, err := Calibrate("3nm"); err == nil {
		t.Fatal("unknown tech accepted")
	}
	if _, err := EmbeddedCoefficients("3nm"); err == nil {
		t.Fatal("unknown tech accepted")
	}
}

func TestLibraryExportImportFacade(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportLibrary("90nm", &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 1000 {
		t.Fatalf("suspiciously small library file (%d bytes)", buf.Len())
	}
	coeffs, err := CalibrateFromLibrary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	emb, _ := EmbeddedCoefficients("90nm")
	if math.Abs(coeffs.Inv.Kappa-emb.Inv.Kappa) > 1e-9*emb.Inv.Kappa {
		t.Fatal("round-trip calibration drifted")
	}
	if err := ExportLibrary("3nm", &buf); err == nil {
		t.Fatal("unknown tech accepted")
	}
	if _, err := CalibrateFromLibrary(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage library accepted")
	}
}

func TestSynthesizeNoCFacade(t *testing.T) {
	prop, err := SynthesizeNoC(NoCRequest{Case: "DVOPD", Tech: "90nm"})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := SynthesizeNoC(NoCRequest{Case: "DVOPD", Tech: "90nm", UseOriginalModel: true})
	if err != nil {
		t.Fatal(err)
	}
	if prop.Metrics.TotalPower() <= orig.Metrics.TotalPower() {
		t.Fatal("proposed model should report more power than the optimistic original")
	}
	if prop.MaxLinkLengthMM >= orig.MaxLinkLengthMM {
		t.Fatal("original must allow longer links")
	}
	withTraffic, err := SynthesizeNoC(NoCRequest{Case: "DVOPD", Tech: "90nm", SimulateTraffic: true})
	if err != nil {
		t.Fatal(err)
	}
	if withTraffic.Traffic == nil || withTraffic.Traffic.PacketsDelivered == 0 {
		t.Fatal("traffic simulation missing or empty")
	}
	if withTraffic.Traffic.AvgLatency < withTraffic.Metrics.AvgLatency {
		t.Fatal("simulated latency (with serialization) below analytic zero-load hop latency")
	}
	if _, err := SynthesizeNoC(NoCRequest{Case: "nope", Tech: "90nm"}); err == nil {
		t.Fatal("unknown case accepted")
	}
	if _, err := SynthesizeNoC(NoCRequest{Case: "VPROC", Tech: "nope"}); err == nil {
		t.Fatal("unknown tech accepted")
	}
}

func TestDesignLinkExplicitZeros(t *testing.T) {
	// The pointer fields distinguish "omitted" (nil → default) from
	// "explicitly zero". These cases pin the explicit-zero semantics.
	base := LinkRequest{Tech: "90nm", LengthMM: 5}

	t.Run("activity zero means zero dynamic power", func(t *testing.T) {
		req := base
		req.ActivityFactor = Float(0)
		req.DelayOptimal = true
		res, err := DesignLink(req)
		if err != nil {
			t.Fatal(err)
		}
		if res.DynamicPower != 0 {
			t.Fatalf("idle bus reports dynamic power %g", res.DynamicPower)
		}
		if res.LeakagePower <= 0 {
			t.Fatal("leakage must survive zero activity")
		}
	})

	t.Run("power weight zero equals DelayOptimal", func(t *testing.T) {
		req := base
		req.PowerWeight = Float(0)
		weighted, err := DesignLink(req)
		if err != nil {
			t.Fatal(err)
		}
		req.PowerWeight = nil
		req.DelayOptimal = true
		optimal, err := DesignLink(req)
		if err != nil {
			t.Fatal(err)
		}
		if weighted != optimal {
			t.Fatalf("PowerWeight: Float(0) (%+v) differs from DelayOptimal (%+v)", weighted, optimal)
		}
	})

	t.Run("omitted weight uses the default, not zero", func(t *testing.T) {
		defaulted, err := DesignLink(base)
		if err != nil {
			t.Fatal(err)
		}
		req := base
		req.PowerWeight = Float(DefaultPowerWeight)
		explicit, err := DesignLink(req)
		if err != nil {
			t.Fatal(err)
		}
		if defaulted != explicit {
			t.Fatal("nil PowerWeight does not match explicit default")
		}
	})

	t.Run("rejected explicit values", func(t *testing.T) {
		for _, tc := range []struct {
			name string
			mut  func(*LinkRequest)
		}{
			{"zero slew", func(r *LinkRequest) { r.InputSlewPS = Float(0) }},
			{"negative slew", func(r *LinkRequest) { r.InputSlewPS = Float(-50) }},
			{"NaN slew", func(r *LinkRequest) { r.InputSlewPS = Float(math.NaN()) }},
			{"zero bits", func(r *LinkRequest) { r.Bits = Int(0) }},
			{"negative bits", func(r *LinkRequest) { r.Bits = Int(-8) }},
			{"negative activity", func(r *LinkRequest) { r.ActivityFactor = Float(-0.1) }},
			{"weight at one", func(r *LinkRequest) { r.PowerWeight = Float(1) }},
			{"negative weight", func(r *LinkRequest) { r.PowerWeight = Float(-0.2) }},
		} {
			req := base
			tc.mut(&req)
			if _, err := DesignLink(req); err == nil {
				t.Errorf("%s accepted", tc.name)
			}
		}
	})

	t.Run("explicit slew changes the design point", func(t *testing.T) {
		req := base
		req.InputSlewPS = Float(DefaultInputSlewPS)
		def, err := DesignLink(req)
		if err != nil {
			t.Fatal(err)
		}
		omitted, err := DesignLink(base)
		if err != nil {
			t.Fatal(err)
		}
		if def != omitted {
			t.Fatal("nil InputSlewPS does not match explicit default")
		}
		req.InputSlewPS = Float(900)
		slow, err := DesignLink(req)
		if err != nil {
			t.Fatal(err)
		}
		if slow.Delay <= def.Delay {
			t.Fatalf("900 ps input edge (%g) not slower than %g ps default (%g)",
				slow.Delay, DefaultInputSlewPS, def.Delay)
		}
	})
}
