package estimator

import (
	"math"
	"testing"
)

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Kind
	}{
		{"", Auto}, {"auto", Auto}, {"mc", MC}, {"isle", ISLE},
		{"ais", AIS}, {"qmc", QMC}, {"wcd", WCD},
	} {
		got, err := Parse(tc.name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.name, err)
		}
		if got != tc.want {
			t.Fatalf("Parse(%q) = %q, want %q", tc.name, got, tc.want)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Fatal("Parse(bogus) accepted an unknown estimator")
	}
}

func TestLookupAndKinds(t *testing.T) {
	for _, k := range Kinds() {
		info, ok := Lookup(k)
		if !ok || info.Kind != k {
			t.Fatalf("Lookup(%q) = %+v, %v", k, info, ok)
		}
	}
	if _, ok := Lookup(Kind("nope")); ok {
		t.Fatal("Lookup accepted an unregistered kind")
	}
}

func TestRouteBands(t *testing.T) {
	for _, tc := range []struct {
		p    float64
		want Kind
	}{
		{0.5, MC}, {0.05, MC}, {2e-2, MC}, {1.0, MC},
		{1e-2, QMC}, {1.5e-3, QMC},
		{1e-3, QMC}, // boundary: inclusive lower edge of QMC band
		{1e-4, ISLE}, {2e-5, ISLE},
		{1e-5, ISLE}, // boundary: inclusive lower edge of ISLE band
		{9e-6, AIS}, {1e-9, AIS}, {1e-15, AIS},
	} {
		if got := Route(tc.p); got != tc.want {
			t.Fatalf("Route(%g) = %q, want %q", tc.p, got, tc.want)
		}
	}
	for _, p := range []float64{0, -1, math.NaN(), 1.5} {
		if got := Route(p); got != Auto {
			t.Fatalf("Route(%g) = %q, want Auto", p, got)
		}
	}
}

func TestRouteSigma(t *testing.T) {
	// Route by sigma must agree with routing the corresponding tail
	// probability: 2σ common failures stay MC, 6σ goes to AIS.
	for _, tc := range []struct {
		sigma float64
		want  Kind
	}{
		{1, MC}, {2, MC}, {2.5, QMC}, {3, QMC}, {3.5, ISLE}, {4, ISLE}, {5, AIS}, {6, AIS},
	} {
		if got := RouteSigma(tc.sigma); got != tc.want {
			t.Fatalf("RouteSigma(%g) = %q, want %q", tc.sigma, got, tc.want)
		}
	}
	if got := RouteSigma(0); got != Auto {
		t.Fatalf("RouteSigma(0) = %q, want Auto", got)
	}
	if got := RouteSigma(math.Inf(1)); got != Auto {
		t.Fatalf("RouteSigma(+Inf) = %q, want Auto", got)
	}
}

func TestSamplingBandsTile(t *testing.T) {
	// Every positive probability must route somewhere: the sampling
	// estimators' bands tile (0, 1] with no gaps.
	for p := 1e-16; p <= 1; p *= 1.7 {
		if got := Route(p); got == Auto {
			t.Fatalf("Route(%g) fell through the bands", p)
		}
	}
}
