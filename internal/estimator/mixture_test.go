package estimator

import (
	"math"
	"testing"
)

func TestStandardProposalIsPhi(t *testing.T) {
	m := StandardProposal()
	if m.Adapted() {
		t.Fatal("StandardProposal reports adapted components")
	}
	z := []float64{0.5, -1.5, 2}
	var sq float64
	for _, v := range z {
		sq += v * v
	}
	if got, want := m.LogDensity(z), logPhiDensity(len(z), sq); math.Abs(got-want) > 1e-12 {
		t.Fatalf("standard proposal density %g, want φ's %g", got, want)
	}
	if got := m.Weight01(z); math.Abs(got-1) > 1e-12 {
		t.Fatalf("standard proposal weight %g, want 1", got)
	}
}

func TestSampleIntoDeterministicTransform(t *testing.T) {
	m := Mixture{
		Defense: DefensiveWeight,
		Weight:  []float64{0.5, 0.4},
		Mean:    [][]float64{{2, 0}, {-1, 3}},
		Sigma:   [][]float64{{1, 0.5}, {0.25, 1}},
	}
	eps := []float64{0.7, -0.3}
	za := make([]float64, 2)
	zb := make([]float64, 2)
	for _, u := range []float64{0.01, 0.05, 0.3, 0.7, 0.99} {
		m.SampleInto(u, eps, za)
		m.SampleInto(u, eps, zb)
		if za[0] != zb[0] || za[1] != zb[1] {
			t.Fatalf("SampleInto(%g) not deterministic", u)
		}
	}
	// u inside the defensive slice returns eps unchanged.
	m.SampleInto(0.05, eps, za)
	if za[0] != eps[0] || za[1] != eps[1] {
		t.Fatal("defensive draw must pass eps through")
	}
	// u past the defensive slice lands in a component: μ + σ∘eps.
	m.SampleInto(0.2, eps, za)
	if za[0] != 2+0.7 || za[1] != 0+0.5*-0.3 {
		t.Fatalf("component draw = %v, want [2.7 -0.15]", za)
	}
}

func TestWeightBoundedByDefense(t *testing.T) {
	// However badly a component is placed, the defensive part bounds
	// the importance weight φ/q by 1/Defense.
	m := Mixture{
		Defense: DefensiveWeight,
		Weight:  []float64{0.9},
		Mean:    [][]float64{{6, 6, 6}},
		Sigma:   [][]float64{{0.25, 0.25, 0.25}},
	}
	limit := 1/DefensiveWeight + 1e-9
	for _, z := range [][]float64{{0, 0, 0}, {-3, 2, 1}, {6, 6, 6}, {8, -8, 0}} {
		if w := m.Weight01(z); w > limit || w < 0 || math.IsNaN(w) {
			t.Fatalf("weight at %v = %g outside [0, %g]", z, w, limit)
		}
	}
}

func TestFitMixtureRecoverseparatedClusters(t *testing.T) {
	// Two well-separated clusters of equal weight: the fit should put
	// one component near each center.
	var pts [][]float64
	var w []float64
	centers := [][]float64{{4, 0}, {-4, 0}}
	for _, c := range centers {
		for i := 0; i < 40; i++ {
			off := 0.1 * float64(i%5-2)
			pts = append(pts, []float64{c[0] + off, c[1] - off})
			w = append(w, 1)
		}
	}
	m := FitMixture(2, pts, w, FitOptions{})
	if len(m.Weight) != 2 {
		t.Fatalf("fit produced %d components, want 2", len(m.Weight))
	}
	if m.Defense != DefensiveWeight {
		t.Fatalf("fitted Defense = %g, want %g", m.Defense, DefensiveWeight)
	}
	var wsum float64
	for _, wk := range m.Weight {
		wsum += wk
	}
	if math.Abs(wsum-(1-DefensiveWeight)) > 1e-9 {
		t.Fatalf("component weights sum to %g, want %g", wsum, 1-DefensiveWeight)
	}
	// Each center should be within 0.5 of some component mean.
	for _, c := range centers {
		found := false
		for _, mu := range m.Mean {
			if math.Hypot(mu[0]-c[0], mu[1]-c[1]) < 0.5 {
				found = true
			}
		}
		if !found {
			t.Fatalf("no component near center %v: means %v", c, m.Mean)
		}
	}
	for _, sg := range m.Sigma {
		for _, s := range sg {
			if s < 0.25-1e-12 {
				t.Fatalf("sigma %g below the floor", s)
			}
		}
	}
}

func TestFitMixtureDeterministic(t *testing.T) {
	pts := make([][]float64, 50)
	w := make([]float64, 50)
	for i := range pts {
		pts[i] = []float64{float64(i%7) - 3, float64(i%11)*0.3 - 1.5}
		w[i] = 1 + float64(i%3)
	}
	a := FitMixture(3, pts, w, FitOptions{})
	b := FitMixture(3, pts, w, FitOptions{})
	for k := range a.Weight {
		if a.Weight[k] != b.Weight[k] {
			t.Fatal("FitMixture weights not deterministic")
		}
		for d := range a.Mean[k] {
			if a.Mean[k][d] != b.Mean[k][d] || a.Sigma[k][d] != b.Sigma[k][d] {
				t.Fatal("FitMixture params not deterministic")
			}
		}
	}
}

func TestFitMixtureMeanNormCap(t *testing.T) {
	pts := [][]float64{{20, 0}, {21, 0}, {20.5, 0.5}}
	m := FitMixture(1, pts, []float64{1, 1, 1}, FitOptions{})
	if n := math.Hypot(m.Mean[0][0], m.Mean[0][1]); n > 8+1e-9 {
		t.Fatalf("component mean norm %g exceeds the cap", n)
	}
}

func TestFitMixtureZeroWeightsFallBack(t *testing.T) {
	pts := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	m := FitMixture(1, pts, []float64{0, 0, 0}, FitOptions{})
	if math.Abs(m.Mean[0][0]-2) > 1e-9 {
		t.Fatalf("zero weights should fall back to uniform: mean %v", m.Mean[0])
	}
}

func TestESS(t *testing.T) {
	// n equal weights → ESS n; one dominant weight → ESS ≈ 1.
	if got := ESS(10, 10); math.Abs(got-10) > 1e-12 {
		t.Fatalf("equal-weight ESS = %g, want 10", got)
	}
	if got := ESS(1.009, 1.0+9*1e-6); got > 1.1 {
		t.Fatalf("degenerate ESS = %g, want ≈1", got)
	}
	if got := ESS(0, 0); got != 0 {
		t.Fatalf("ESS(0,0) = %g, want 0", got)
	}
}
