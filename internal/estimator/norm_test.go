package estimator

import (
	"math"
	"testing"
)

func TestPhiKnownValues(t *testing.T) {
	for _, tc := range []struct {
		x, want, tol float64
	}{
		{0, 0.5, 1e-16},
		{-1, 0.15865525393145705, 1e-15},
		{-2, 0.022750131948179195, 1e-16},
		{-3, 1.3498980316300946e-3, 5e-18},
		{-4, 3.1671241833119924e-5, 1e-19},
		{-6, 9.865876450376946e-10, 1e-23},
		{2, 0.9772498680518208, 1e-15},
	} {
		if got := Phi(tc.x); math.Abs(got-tc.want) > tc.tol {
			t.Fatalf("Phi(%g) = %.17g, want %.17g", tc.x, got, tc.want)
		}
	}
}

func TestPhiInvRoundTrip(t *testing.T) {
	// PhiInv(Phi(x)) = x across the working range, including the deep
	// lower tail the high-sigma estimators live in. In the upper tail
	// p sits next to 1, so the achievable accuracy is limited by the
	// absolute spacing of float64 there (≈1e-16) divided by the
	// density — the density-aware term below, not a solver defect.
	for x := -8.0; x <= 8.0; x += 0.0625 {
		got := PhiInv(Phi(x))
		dens := math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
		tol := 1e-9*math.Max(1, math.Abs(x)) + 2e-16/dens
		if math.Abs(got-x) > tol {
			t.Fatalf("PhiInv(Phi(%g)) = %.12g (err %.3g)", x, got, got-x)
		}
	}
}

func TestPhiInvEdges(t *testing.T) {
	if got := PhiInv(0.5); got != 0 {
		t.Fatalf("PhiInv(0.5) = %g, want exactly 0", got)
	}
	if !math.IsInf(PhiInv(0), -1) || !math.IsInf(PhiInv(1), 1) {
		t.Fatal("PhiInv endpoints must be infinite")
	}
	if !math.IsNaN(PhiInv(math.NaN())) {
		t.Fatal("PhiInv(NaN) must be NaN")
	}
	// Monotone through the region splits of the rational approximation.
	for _, p := range []float64{invPLow - 1e-6, invPLow, invPLow + 1e-6} {
		lo, hi := PhiInv(p-1e-9), PhiInv(p+1e-9)
		if lo >= hi {
			t.Fatalf("PhiInv not increasing near region split %g: %g >= %g", p, lo, hi)
		}
	}
}

func TestSigmaOf(t *testing.T) {
	for _, sigma := range []float64{1, 2, 3, 4.5, 6} {
		if got := SigmaOf(Phi(-sigma)); math.Abs(got-sigma) > 1e-9 {
			t.Fatalf("SigmaOf(Phi(-%g)) = %g", sigma, got)
		}
	}
}

func TestLogPhiDensity(t *testing.T) {
	// Against the direct product of 1-D densities.
	z := []float64{0.3, -1.2, 2.1}
	var sq float64
	want := 0.0
	for _, v := range z {
		sq += v * v
		want += math.Log(math.Exp(-v*v/2) / math.Sqrt(2*math.Pi))
	}
	if got := logPhiDensity(len(z), sq); math.Abs(got-want) > 1e-12 {
		t.Fatalf("logPhiDensity = %g, want %g", got, want)
	}
}
