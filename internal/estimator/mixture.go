package estimator

import "math"

// Gaussian-mixture proposal for adaptive importance sampling. The
// cross-entropy method iterates: draw from the current proposal, rank
// by the constraint metric, refit the mixture on the elite set. A
// mixture (rather than ISLE's single shifted Gaussian) matters past
// ~4σ, where the dominant failure region is curved and a second lobe
// (here: the symmetric NMOS/PMOS threshold dimensions) carries real
// probability a single mean shift cannot cover.
//
// Every proposal carries a defensive standard-normal component of
// fixed weight: q(z) = α·φ(z) + (1−α)·Σ w_k N(z; μ_k, diag σ_k²).
// Because q ≥ α·φ everywhere, the likelihood ratio φ/q is bounded by
// 1/α — the classic defensive-mixture construction that keeps the
// self-normalized estimator's variance finite no matter how badly a
// cross-entropy iteration overfits its elites.

// DefensiveWeight is the α above: 10% of every AIS draw comes from
// the unshifted nominal distribution, bounding all importance weights
// by 10.
const DefensiveWeight = 0.1

// Mixture is a diagonal-covariance Gaussian mixture over the
// standardized space plus the defensive φ component. The zero value
// is not usable; StandardProposal and FitMixture construct valid ones.
type Mixture struct {
	// Defense is the weight of the N(0, I) defensive component.
	Defense float64
	// Weight, Mean, Sigma describe the adapted components; Weight sums
	// to 1−Defense.
	Weight []float64
	Mean   [][]float64
	Sigma  [][]float64
}

// StandardProposal is the stage-0 proposal: the standard normal alone
// (equivalently, a pure defensive component).
func StandardProposal() Mixture { return Mixture{Defense: 1} }

// Adapted reports whether the mixture carries any fitted component
// (false for StandardProposal).
func (m *Mixture) Adapted() bool { return len(m.Weight) > 0 }

// SampleInto turns one uniform u (component selection) and one
// standard-normal draw eps (length dims) into a proposal draw, written
// to z. eps and z may alias. The mapping is a deterministic function
// of (u, eps), which is what keeps AIS bit-identical across worker
// counts: the underlying stream is keyed by sample index, and this
// transform adds no state.
func (m *Mixture) SampleInto(u float64, eps, z []float64) {
	u -= m.Defense
	if u < 0 {
		copy(z, eps)
		return
	}
	for k := range m.Weight {
		u -= m.Weight[k]
		if u < 0 || k == len(m.Weight)-1 {
			mu, sg := m.Mean[k], m.Sigma[k]
			for d := range z {
				z[d] = mu[d] + sg[d]*eps[d]
			}
			return
		}
	}
	copy(z, eps) // no adapted components: defensive draw
}

// logNormal is the log density of a diagonal Gaussian at z.
func logNormal(z, mu, sigma []float64) float64 {
	s := -0.5 * float64(len(z)) * math.Log(2*math.Pi)
	for d := range z {
		r := (z[d] - mu[d]) / sigma[d]
		s -= math.Log(sigma[d]) + 0.5*r*r
	}
	return s
}

// LogDensity is log q(z), evaluated by a streaming log-sum-exp over
// the defensive and adapted components (no scratch — this sits on the
// per-sample path of the zero-allocation sampling contract).
func (m *Mixture) LogDensity(z []float64) float64 {
	var sq float64
	for _, v := range z {
		sq += v * v
	}
	best := math.Inf(-1)
	sum := 0.0
	if m.Defense > 0 {
		best = math.Log(m.Defense) + logPhiDensity(len(z), sq)
		sum = 1
	}
	for k := range m.Weight {
		if m.Weight[k] <= 0 {
			continue
		}
		l := math.Log(m.Weight[k]) + logNormal(z, m.Mean[k], m.Sigma[k])
		switch {
		case math.IsInf(best, -1):
			best, sum = l, 1
		case l <= best:
			sum += math.Exp(l - best)
		default:
			sum = sum*math.Exp(best-l) + 1
			best = l
		}
	}
	if math.IsInf(best, -1) {
		return best
	}
	return best + math.Log(sum)
}

// Weight01 returns the importance weight φ(z)/q(z) of a proposal draw.
// With a defensive component it is bounded by 1/Defense.
func (m *Mixture) Weight01(z []float64) float64 {
	var sq float64
	for _, v := range z {
		sq += v * v
	}
	return math.Exp(logPhiDensity(len(z), sq) - m.LogDensity(z))
}

// FitOptions tunes FitMixture. The zero value selects the documented
// defaults.
type FitOptions struct {
	// SigmaFloor bounds every fitted per-dimension sigma from below
	// (default 0.25): a cross-entropy iteration must never collapse
	// the proposal onto a point, which would send later likelihood
	// ratios to infinity.
	SigmaFloor float64
	// MaxMeanNorm caps each component mean's Euclidean norm (default
	// 8, matching the engine's shift cap — beyond it the failure
	// probability is unresolvable anyway).
	MaxMeanNorm float64
	// Iters is the EM iteration count (default 8; fixed, so the fit
	// is deterministic).
	Iters int
}

func (o FitOptions) withDefaults() FitOptions {
	if o.SigmaFloor == 0 {
		o.SigmaFloor = 0.25
	}
	if o.MaxMeanNorm == 0 {
		o.MaxMeanNorm = 8
	}
	if o.Iters == 0 {
		o.Iters = 8
	}
	return o
}

// FitMixture fits a k-component mixture to weighted elite points by a
// fixed-iteration weighted EM, deterministically: contiguous chunks of
// the (caller-ordered) points seed the components, and every
// accumulation runs in point order. Points must be non-empty; weights
// are clamped non-negative and a zero total falls back to uniform.
// The fitted mixture carries the defensive component automatically.
func FitMixture(k int, pts [][]float64, w []float64, opts FitOptions) Mixture {
	opts = opts.withDefaults()
	n := len(pts)
	dims := len(pts[0])
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}

	cw := make([]float64, n)
	var total float64
	for i, wi := range w {
		if wi > 0 {
			cw[i] = wi
			total += wi
		}
	}
	if total == 0 {
		for i := range cw {
			cw[i] = 1
		}
		total = float64(n)
	}

	m := Mixture{
		Defense: DefensiveWeight,
		Weight:  make([]float64, k),
		Mean:    make([][]float64, k),
		Sigma:   make([][]float64, k),
	}
	// Seed: K contiguous chunks of the caller's ordering (the AIS
	// driver orders elites by metric depth, so chunks start out as
	// depth bands).
	for c := 0; c < k; c++ {
		lo, hi := c*n/k, (c+1)*n/k
		if hi == lo {
			hi = lo + 1
		}
		m.Mean[c], m.Sigma[c] = weightedMoments(pts[lo:hi], cw[lo:hi], dims, opts)
		var chunkW float64
		for _, wi := range cw[lo:hi] {
			chunkW += wi
		}
		m.Weight[c] = chunkW
	}
	normalizeWeights(m.Weight, 1-m.Defense)
	if k == 1 {
		return m
	}

	// Weighted EM, fixed iterations. Responsibilities are computed in
	// log space; a component that loses all responsibility keeps its
	// parameters and a floor weight instead of going degenerate.
	resp := make([]float64, n*k)
	logw := make([]float64, k)
	for it := 0; it < opts.Iters; it++ {
		for c := 0; c < k; c++ {
			logw[c] = math.Log(math.Max(m.Weight[c], 1e-12))
		}
		for i, z := range pts {
			best := math.Inf(-1)
			row := resp[i*k : (i+1)*k]
			for c := 0; c < k; c++ {
				row[c] = logw[c] + logNormal(z, m.Mean[c], m.Sigma[c])
				if row[c] > best {
					best = row[c]
				}
			}
			var s float64
			for c := range row {
				row[c] = math.Exp(row[c] - best)
				s += row[c]
			}
			for c := range row {
				row[c] *= cw[i] / s
			}
		}
		for c := 0; c < k; c++ {
			var rw float64
			for i := 0; i < n; i++ {
				rw += resp[i*k+c]
			}
			if rw <= 1e-12*total {
				m.Weight[c] = 1e-3
				continue
			}
			m.Weight[c] = rw
			mu, sg := m.Mean[c], m.Sigma[c]
			for d := 0; d < dims; d++ {
				var s float64
				for i := 0; i < n; i++ {
					s += resp[i*k+c] * pts[i][d]
				}
				mu[d] = s / rw
			}
			capNorm(mu, opts.MaxMeanNorm)
			for d := 0; d < dims; d++ {
				var s float64
				for i := 0; i < n; i++ {
					r := pts[i][d] - mu[d]
					s += resp[i*k+c] * r * r
				}
				sg[d] = math.Max(math.Sqrt(s/rw), opts.SigmaFloor)
			}
		}
		normalizeWeights(m.Weight, 1-m.Defense)
	}
	return m
}

// weightedMoments computes the weighted mean and floored/capped
// per-dimension sigma of a point set.
func weightedMoments(pts [][]float64, w []float64, dims int, opts FitOptions) (mu, sigma []float64) {
	mu = make([]float64, dims)
	sigma = make([]float64, dims)
	var total float64
	for _, wi := range w {
		total += wi
	}
	if total == 0 {
		total = float64(len(pts))
		for d := 0; d < dims; d++ {
			for _, z := range pts {
				mu[d] += z[d]
			}
			mu[d] /= total
		}
	} else {
		for d := 0; d < dims; d++ {
			var s float64
			for i, z := range pts {
				s += w[i] * z[d]
			}
			mu[d] = s / total
		}
	}
	capNorm(mu, opts.MaxMeanNorm)
	for d := 0; d < dims; d++ {
		var s float64
		for i, z := range pts {
			r := z[d] - mu[d]
			wi := 1.0
			if i < len(w) && w[i] > 0 {
				wi = w[i]
			}
			s += wi * r * r
		}
		sigma[d] = math.Max(math.Sqrt(s/total), opts.SigmaFloor)
	}
	return mu, sigma
}

// capNorm rescales v in place so its Euclidean norm is at most limit.
func capNorm(v []float64, limit float64) {
	var sq float64
	for _, x := range v {
		sq += x * x
	}
	if n := math.Sqrt(sq); n > limit {
		f := limit / n
		for d := range v {
			v[d] *= f
		}
	}
}

// normalizeWeights rescales w in place to sum to total (uniform when
// the current sum is zero).
func normalizeWeights(w []float64, total float64) {
	var s float64
	for _, x := range w {
		s += x
	}
	if s <= 0 {
		for i := range w {
			w[i] = total / float64(len(w))
		}
		return
	}
	for i := range w {
		w[i] *= total / s
	}
}

// ESS is the effective sample size (Σw)²/Σw² of a weight set, the
// guard quantity of the self-normalized estimator: n equally weighted
// samples have ESS n, while a degenerate weight set (one sample
// carrying everything) has ESS ≈ 1.
func ESS(sumW, sumW2 float64) float64 {
	if sumW2 <= 0 {
		return 0
	}
	return sumW * sumW / sumW2
}
