package estimator

import "fmt"

// Scrambled Sobol sequence for the QMC estimator. Classic construction
// from primitive-polynomial direction numbers (the Joe–Kuo tables),
// evaluated by random access — point i is the XOR of the direction
// numbers selected by i's set bits — so any sample index can be
// generated independently of the others. That is what lets the QMC
// kernel keep the engine's determinism contract: sample i's point
// depends only on (seed, replicate, i), never on which worker computes
// it.
//
// Scrambling is by digital shift: each replicate XORs every dimension
// with its own pseudo-random bit vector. A digital shift preserves the
// digital-net structure (the equidistribution that buys the
// convergence rate) while making each replicate an unbiased random
// estimate, so the spread of replicate means is an honest standard
// error — the piece a single deterministic sequence cannot provide.

// SobolBits is the bit depth of the generated points: 52 fractional
// bits, matching float64's mantissa so no two distinct points collapse
// to the same uniform.
const SobolBits = 52

// SobolMaxDims is the largest supported dimension count (the embedded
// direction-number table; the variation space needs 7).
const SobolMaxDims = 10

// sobolPoly holds one Joe–Kuo table row: the primitive polynomial
// degree s, the middle-coefficient bits a, and the initial odd
// direction integers m[0..s-1]. Dimension 0 (van der Corput) is the
// implicit row {s: 0}.
type sobolPoly struct {
	s int
	a uint64
	m []uint64
}

// joeKuo is the head of the new-joe-kuo-6 direction-number table
// (dimensions 2..10 in the table's 1-based numbering).
var joeKuo = []sobolPoly{
	{s: 1, a: 0, m: []uint64{1}},
	{s: 2, a: 1, m: []uint64{1, 3}},
	{s: 3, a: 1, m: []uint64{1, 3, 1}},
	{s: 3, a: 2, m: []uint64{1, 1, 1}},
	{s: 4, a: 1, m: []uint64{1, 1, 3, 3}},
	{s: 4, a: 4, m: []uint64{1, 3, 5, 13}},
	{s: 5, a: 2, m: []uint64{1, 1, 5, 5, 17}},
	{s: 5, a: 4, m: []uint64{1, 1, 5, 5, 5}},
	{s: 5, a: 7, m: []uint64{1, 1, 7, 11, 19}},
}

// sobolV[d][k] is the k-th direction number of dimension d, left-
// aligned in SobolBits bits. Built once at init from the recurrence
//
//	m_k = 2a_1·m_{k-1} ⊕ 4a_2·m_{k-2} ⊕ … ⊕ 2^{s-1}a_{s-1}·m_{k-s+1}
//	      ⊕ 2^s·m_{k-s} ⊕ m_{k-s}
var sobolV [SobolMaxDims][SobolBits]uint64

func init() {
	// Dimension 0: van der Corput, v_k = 1 << (bits-1-k).
	for k := 0; k < SobolBits; k++ {
		sobolV[0][k] = 1 << (SobolBits - 1 - k)
	}
	for d := 1; d < SobolMaxDims; d++ {
		p := joeKuo[d-1]
		m := make([]uint64, SobolBits)
		copy(m, p.m)
		for k := p.s; k < SobolBits; k++ {
			mk := m[k-p.s] ^ (m[k-p.s] << p.s)
			for j := 1; j < p.s; j++ {
				if p.a>>(p.s-1-j)&1 == 1 {
					mk ^= m[k-j] << j
				}
			}
			m[k] = mk
		}
		for k := 0; k < SobolBits; k++ {
			sobolV[d][k] = m[k] << (SobolBits - 1 - k)
		}
	}
}

// SobolShift derives one replicate's digital-shift vector from a seed:
// dims independent SobolBits-bit patterns, deterministic in
// (seed, replicate). The splitmix64 finalizer supplies the avalanche
// (the same construction the sampling PRNG uses for stream keying).
func SobolShift(seed, replicate uint64, dims int) []uint64 {
	if dims > SobolMaxDims {
		panic(fmt.Sprintf("estimator: %d Sobol dimensions exceeds the %d-dim table", dims, SobolMaxDims))
	}
	shift := make([]uint64, dims)
	x := seed*0x9E3779B97F4A7C15 + replicate + 1
	for d := range shift {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		shift[d] = (z ^ (z >> 31)) & (1<<SobolBits - 1)
	}
	return shift
}

// SobolPoint writes point #index of the (digitally shifted) Sobol
// sequence into dst as uniforms in (0, 1). len(dst) dimensions are
// generated; shift must have at least that many entries (use
// SobolShift, or zeros for the unscrambled sequence).
func SobolPoint(index uint64, shift []uint64, dst []float64) {
	const scale = 1.0 / (1 << SobolBits)
	for d := range dst {
		var x uint64
		for i, bits := 0, index; bits != 0; i, bits = i+1, bits>>1 {
			if bits&1 == 1 {
				x ^= sobolV[d][i]
			}
		}
		// +0.5: center each point in its 2^-52 cell, keeping the
		// uniform strictly inside (0,1) so Φ⁻¹ stays finite.
		dst[d] = (float64(x^shift[d]) + 0.5) * scale
	}
}

// SobolNormal is SobolPoint pushed through the inverse normal CDF:
// point #index as a standardized normal draw.
func SobolNormal(index uint64, shift []uint64, dst []float64) {
	SobolPoint(index, shift, dst)
	for d, u := range dst {
		dst[d] = PhiInv(u)
	}
}

// sobolCheckStratified is exercised by tests: it reports whether the
// first 2^m (unshifted) points of dimension d land in all 2^m dyadic
// bins exactly once — the (0, m, 1)-net property every valid set of
// direction numbers must satisfy, and the structural check that the
// embedded table rows are well-formed (odd m_k < 2^k).
func sobolCheckStratified(d, m int) bool {
	n := 1 << m
	seen := make([]bool, n)
	dst := make([]float64, d+1)
	for i := 0; i < n; i++ {
		SobolPoint(uint64(i), make([]uint64, d+1), dst)
		bin := int(dst[d] * float64(n))
		if bin < 0 || bin >= n || seen[bin] {
			return false
		}
		seen[bin] = true
	}
	return true
}
