package estimator

import "math"

// Standard-normal numerics shared by the ladder: the CDF Φ backs the
// sigma↔probability conversions of the router and the WCD bound, and
// the inverse CDF Φ⁻¹ maps low-discrepancy uniforms onto normal
// draws for the QMC estimator.

// Phi is the standard normal CDF. Computed through erfc so the deep
// lower tail keeps full relative precision: Phi(-6) ≈ 9.87e-10 and
// Phi(-40) are both meaningful, where 1−erf-style forms would round
// to 0 long before.
func Phi(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// SigmaOf converts a failure probability to its sigma level: the β
// with Phi(−β) = p. It is the inverse of Phi(-σ), defined for
// p ∈ (0, 1).
func SigmaOf(p float64) float64 {
	return -PhiInv(p)
}

// Acklam's rational approximations to Φ⁻¹, accurate to ~1.15e-9
// relative before refinement; one Halley step against erfc below
// sharpens to full double precision.
var (
	invA = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	invB = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	invC = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	invD = [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
)

const invPLow = 0.02425 // region split of the rational approximations

// PhiInv is the standard normal quantile function Φ⁻¹, defined on
// (0, 1): PhiInv(Phi(x)) = x to double precision across the full tail
// range the estimators use. PhiInv(0.5) is exactly 0; arguments at or
// beyond the ends return ∓Inf.
func PhiInv(p float64) float64 {
	switch {
	case math.IsNaN(p):
		return math.NaN()
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	case p == 0.5:
		return 0
	}

	var x float64
	switch {
	case p < invPLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((invC[0]*q+invC[1])*q+invC[2])*q+invC[3])*q+invC[4])*q + invC[5]) /
			((((invD[0]*q+invD[1])*q+invD[2])*q+invD[3])*q + 1)
	case p <= 1-invPLow:
		q := p - 0.5
		r := q * q
		x = (((((invA[0]*r+invA[1])*r+invA[2])*r+invA[3])*r+invA[4])*r + invA[5]) * q /
			(((((invB[0]*r+invB[1])*r+invB[2])*r+invB[3])*r+invB[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((invC[0]*q+invC[1])*q+invC[2])*q+invC[3])*q+invC[4])*q + invC[5]) /
			((((invD[0]*q+invD[1])*q+invD[2])*q+invD[3])*q + 1)
	}

	// One Halley refinement against the exact CDF: e is the CDF error
	// of the approximation, u its first-order quantile correction.
	e := Phi(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// logPhiDensity is the log of the standard normal density in d
// dimensions at squared radius r² (the -d/2·log(2π) − r²/2 form the
// importance-sampling weights need).
func logPhiDensity(dims int, sqNorm float64) float64 {
	return -0.5*float64(dims)*math.Log(2*math.Pi) - 0.5*sqNorm
}
