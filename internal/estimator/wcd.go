package estimator

import (
	"fmt"
	"math"
)

// Worst-case-distance (WCD) analysis: the minimum-norm point of the
// failure region {z : metric(z) ≥ target} in the standardized normal
// space, and the first-order (FORM) failure probability Φ(−β) at its
// distance β. For a linear failure boundary the number is exact; for
// the engine's smooth, mildly nonlinear delay models it is a tight
// first-order approximation — tight enough that, with a safety margin,
// it certifies "the yield target holds" or "the yield target is
// unreachable" without drawing a single sample. That is the pyopus
// WCD→MC cascade: a rare-event query first pays ~a hundred closed-form
// model evaluations (microseconds against the sampling path's
// milliseconds-to-never), and only inconclusive queries go on to the
// sampling estimator.
//
// The search is a projected line search: steepest-ascent direction at
// the origin, bracketing march + bisection for the crossing, then a
// few HL–RF projection refinements (project the crossing point onto
// the local gradient, re-search the crossing along the projected
// direction, keep the shorter distance). Every evaluation is
// deterministic, so two runs on the same scenario produce the same
// bound.

// Metric maps a standardized draw to the scalar the constraint
// thresholds; failure means metric ≥ target. It mirrors
// variation.Metric so scenario evaluators plug in directly.
type Metric func(z []float64) (float64, error)

// WCDMaxNorm caps the searched distance. Φ(−8) ≈ 6e-16 is beyond any
// probability the sampling estimators can resolve, so a region farther
// than 8σ is reported as unreachable-by-search rather than chased.
const WCDMaxNorm = 8.0

// DefaultWCDMargin is the certification safety margin in sigma: the
// first-order bound must clear the target sigma by this much before
// the pre-filter certifies either way. Half a sigma absorbs the
// curvature error of the FORM approximation on the engine's delay
// models (validated against Monte Carlo in the estimator tests).
const DefaultWCDMargin = 0.5

// Bound is the result of one worst-case-distance analysis.
type Bound struct {
	// Beta is the distance of the minimum-norm failure point (the
	// "worst-case distance"); 0 when the nominal point already fails.
	Beta float64
	// Direction is the unit vector from the origin to the minimum-norm
	// failure point; nil when the nominal point fails or no crossing
	// was found.
	Direction []float64
	// FailProb is the first-order failure probability Φ(−Beta).
	FailProb float64
	// Evals counts the metric evaluations the search spent.
	Evals int
	// Reached reports whether a crossing was actually located; false
	// means the failure region lies beyond WCDMaxNorm in every
	// searched direction (Beta is then WCDMaxNorm, a lower bound).
	Reached bool
}

// Verdict is the outcome of certifying a WCD bound against a target
// sigma level.
type Verdict int

const (
	// Inconclusive: the bound sits within the margin of the target;
	// the caller must sample.
	Inconclusive Verdict = iota
	// CertifiedYield: β clears the target sigma by the margin — the
	// failure probability is first-order certified below Φ(−target).
	CertifiedYield
	// CertifiedUnreachable: β falls short of the target sigma by the
	// margin — the yield target cannot be met by this design.
	CertifiedUnreachable
)

func (v Verdict) String() string {
	switch v {
	case CertifiedYield:
		return "certified-yield"
	case CertifiedUnreachable:
		return "certified-unreachable"
	default:
		return "inconclusive"
	}
}

// Certify compares the bound against a target sigma level with the
// given margin (0 selects DefaultWCDMargin). The decision is the
// sub-microsecond pre-filter of the WCD→sampling cascade: two
// comparisons and no model evaluations.
func (w Bound) Certify(sigma, margin float64) Verdict {
	if margin <= 0 {
		margin = DefaultWCDMargin
	}
	switch {
	case w.Beta >= sigma+margin:
		return CertifiedYield
	case w.Reached && w.Beta <= sigma-margin:
		return CertifiedUnreachable
	default:
		return Inconclusive
	}
}

// Band returns a conservative standard error for the analytic
// estimate: 1.96 of it reaches the first-order probability one margin
// closer to the origin, Φ(−(β−margin)) — the dominant side of the
// (asymmetric) uncertainty the margin was chosen to cover.
func (w Bound) Band(margin float64) float64 {
	if margin <= 0 {
		margin = DefaultWCDMargin
	}
	return (Phi(-(w.Beta - margin)) - Phi(-w.Beta)) / 1.96
}

// FindWCD locates the minimum-norm failure point of the metric.
func FindWCD(dims int, target float64, metric Metric) (Bound, error) {
	if dims <= 0 {
		return Bound{}, fmt.Errorf("estimator: non-positive dimension %d", dims)
	}
	evals := 0
	eval := func(z []float64) (float64, error) {
		evals++
		return metric(z)
	}

	z := make([]float64, dims)
	m0, err := eval(z)
	if err != nil {
		return Bound{}, err
	}
	if m0 >= target {
		return Bound{Beta: 0, FailProb: 0.5, Evals: evals, Reached: true}, nil
	}

	grad := make([]float64, dims)
	unit := make([]float64, dims)
	point := make([]float64, dims)

	// gradientAt computes the central-difference gradient at p into
	// grad and returns its norm.
	gradientAt := func(p []float64) (float64, error) {
		const h = 0.25
		var norm float64
		for d := 0; d < dims; d++ {
			copy(z, p)
			z[d] = p[d] + h
			mp, err := eval(z)
			if err != nil {
				return 0, err
			}
			z[d] = p[d] - h
			mm, err := eval(z)
			if err != nil {
				return 0, err
			}
			grad[d] = (mp - mm) / (2 * h)
			norm += grad[d] * grad[d]
		}
		return math.Sqrt(norm), nil
	}

	// crossing finds the metric's target crossing along direction u,
	// bracketing around the hint distance and bisecting; ok=false when
	// the region is beyond WCDMaxNorm along u.
	crossing := func(u []float64, hint float64) (float64, bool, error) {
		at := func(t float64) (float64, error) {
			for d := range z {
				z[d] = t * u[d]
			}
			return eval(z)
		}
		lo, hi := 0.0, 0.0
		if hint > 0 && hint <= WCDMaxNorm {
			m, err := at(hint)
			if err != nil {
				return 0, false, err
			}
			if m >= target {
				// Hint fails: walk down for the passing bracket end.
				hi = hint
				for t := hint * 0.5; t > 1e-3; t *= 0.5 {
					m, err := at(t)
					if err != nil {
						return 0, false, err
					}
					if m < target {
						lo = t
						break
					}
					hi = t
				}
			} else {
				lo = hint
				for t := hint * 1.25; t <= WCDMaxNorm; t *= 1.25 {
					m, err := at(t)
					if err != nil {
						return 0, false, err
					}
					if m >= target {
						hi = t
						break
					}
					lo = t
				}
			}
		}
		if hi == 0 {
			// No bracket yet: march out from the origin.
			for t := 0.5; t <= WCDMaxNorm; t += 0.5 {
				m, err := at(t)
				if err != nil {
					return 0, false, err
				}
				if m >= target {
					hi, lo = t, t-0.5
					break
				}
				lo = t
			}
		}
		if hi == 0 {
			return 0, false, nil
		}
		for it := 0; it < 20 && hi-lo > 1e-4; it++ {
			mid := (lo + hi) / 2
			m, err := at(mid)
			if err != nil {
				return 0, false, err
			}
			if m >= target {
				hi = mid
			} else {
				lo = mid
			}
		}
		return hi, true, nil
	}

	// Initial direction: steepest ascent at the origin.
	norm, err := gradientAt(make([]float64, dims))
	if err != nil {
		return Bound{}, err
	}
	if norm == 0 || math.IsNaN(norm) {
		// Flat metric (e.g. a zero-sigma space): no failure direction.
		return Bound{Beta: WCDMaxNorm, FailProb: Phi(-WCDMaxNorm), Evals: evals}, nil
	}
	for d := range unit {
		unit[d] = grad[d] / norm
	}
	beta, ok, err := crossing(unit, 0)
	if err != nil {
		return Bound{}, err
	}
	if !ok {
		return Bound{Beta: WCDMaxNorm, FailProb: Phi(-WCDMaxNorm), Evals: evals}, nil
	}
	best := beta
	bestDir := append([]float64(nil), unit...)

	// HL–RF refinement: project the crossing point onto the local
	// gradient and re-search along the projected direction. Each round
	// can only shorten the distance (the shorter candidate is kept),
	// so the loop converges monotonically; three rounds suffice for
	// the engine's mildly curved delay surfaces.
	for it := 0; it < 3; it++ {
		for d := range point {
			point[d] = best * bestDir[d]
		}
		norm, err := gradientAt(point)
		if err != nil {
			return Bound{}, err
		}
		if norm == 0 || math.IsNaN(norm) {
			break
		}
		// z' = ⟨∇g, z⟩ ∇g / |∇g|² — the projection of the current
		// crossing onto the gradient line (HL–RF with g(z*) = 0).
		var dot float64
		for d := range point {
			dot += grad[d] * point[d]
		}
		if dot <= 0 {
			break // gradient points back toward the origin: give up
		}
		var sq float64
		for d := range unit {
			unit[d] = grad[d] * dot / (norm * norm)
			sq += unit[d] * unit[d]
		}
		projNorm := math.Sqrt(sq)
		if projNorm == 0 {
			break
		}
		for d := range unit {
			unit[d] /= projNorm
		}
		b, ok, err := crossing(unit, projNorm)
		if err != nil {
			return Bound{}, err
		}
		if !ok || b >= best-1e-4 {
			break
		}
		best = b
		copy(bestDir, unit)
	}

	return Bound{
		Beta:      best,
		Direction: bestDir,
		FailProb:  Phi(-best),
		Evals:     evals,
		Reached:   true,
	}, nil
}
