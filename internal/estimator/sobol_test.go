package estimator

import (
	"math"
	"testing"
)

func TestSobolStratified(t *testing.T) {
	// Every dimension's first 2^m points must hit all 2^m dyadic bins
	// exactly once — the 1-D net property valid direction numbers give.
	for d := 0; d < SobolMaxDims; d++ {
		for _, m := range []int{1, 4, 8, 10} {
			if !sobolCheckStratified(d, m) {
				t.Fatalf("dimension %d is not (0,%d,1)-stratified", d, m)
			}
		}
	}
}

func TestSobolPointRange(t *testing.T) {
	dst := make([]float64, SobolMaxDims)
	shift := SobolShift(42, 3, SobolMaxDims)
	for i := uint64(0); i < 4096; i++ {
		SobolPoint(i, shift, dst)
		for d, u := range dst {
			if !(u > 0 && u < 1) {
				t.Fatalf("point %d dim %d = %g outside (0,1)", i, d, u)
			}
		}
	}
}

func TestSobolRandomAccessMatchesSequential(t *testing.T) {
	// Random access must agree with itself regardless of generation
	// order — generate indices backwards and compare.
	const n = 512
	shift := make([]uint64, 3)
	fwd := make([][]float64, n)
	for i := 0; i < n; i++ {
		fwd[i] = make([]float64, 3)
		SobolPoint(uint64(i), shift, fwd[i])
	}
	dst := make([]float64, 3)
	for i := n - 1; i >= 0; i-- {
		SobolPoint(uint64(i), shift, dst)
		for d := range dst {
			if dst[d] != fwd[i][d] {
				t.Fatalf("point %d dim %d differs across generation order", i, d)
			}
		}
	}
}

func TestSobolShiftDeterministic(t *testing.T) {
	a := SobolShift(7, 2, 5)
	b := SobolShift(7, 2, 5)
	for d := range a {
		if a[d] != b[d] {
			t.Fatal("SobolShift not deterministic in (seed, replicate)")
		}
		if a[d] >= 1<<SobolBits {
			t.Fatalf("shift %d exceeds %d bits", a[d], SobolBits)
		}
	}
	c := SobolShift(7, 3, 5)
	same := true
	for d := range a {
		if a[d] != c[d] {
			same = false
		}
	}
	if same {
		t.Fatal("different replicates produced identical shifts")
	}
}

func TestSobolShiftPanicsPastTable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SobolShift accepted more dimensions than the table holds")
		}
	}()
	SobolShift(1, 0, SobolMaxDims+1)
}

func TestSobolNormalMean(t *testing.T) {
	// Pushed through Φ⁻¹, a shifted Sobol block should estimate the
	// standard normal's mean and variance tightly — much tighter than
	// plain MC at the same n.
	const n = 4096
	dims := 7
	shift := SobolShift(9, 0, dims)
	dst := make([]float64, dims)
	mean := make([]float64, dims)
	m2 := make([]float64, dims)
	for i := uint64(0); i < n; i++ {
		SobolNormal(i, shift, dst)
		for d, v := range dst {
			if math.IsInf(v, 0) || math.IsNaN(v) {
				t.Fatalf("non-finite normal draw at point %d dim %d", i, d)
			}
			mean[d] += v
			m2[d] += v * v
		}
	}
	for d := 0; d < dims; d++ {
		mu := mean[d] / n
		va := m2[d]/n - mu*mu
		if math.Abs(mu) > 0.01 {
			t.Fatalf("dim %d mean %g too far from 0", d, mu)
		}
		if math.Abs(va-1) > 0.05 {
			t.Fatalf("dim %d variance %g too far from 1", d, va)
		}
	}
}

func TestSobolConvergesFasterThanGrid(t *testing.T) {
	// Integrate f(u) = Π u_d over [0,1]^3 (exact value 1/8): 1024 Sobol
	// points must land within 1e-3, far tighter than the ~1e-2 a plain
	// MC run of that size achieves.
	const n = 1024
	shift := make([]uint64, 3)
	dst := make([]float64, 3)
	var sum float64
	for i := uint64(0); i < n; i++ {
		SobolPoint(i, shift, dst)
		sum += dst[0] * dst[1] * dst[2]
	}
	if got := sum / n; math.Abs(got-0.125) > 1e-3 {
		t.Fatalf("Sobol integral = %.6f, want 0.125 ± 1e-3", got)
	}
}
