// Package estimator is the high-sigma estimator ladder behind the
// yield engine: a registry of tail-probability estimators with
// automatic routing by the failure-probability regime a query targets.
//
// The problem it solves is the collapse of the two historical code
// paths at production sign-off sigmas. Plain Monte Carlo needs ~100/p
// samples to resolve a failure probability p, which at 6σ
// (p ≈ 1e-9) is ~1e11 samples — effectively never. The ISLE-style
// mean-shift estimator stretches that to ~4σ, but a single shifted
// Gaussian cannot track the curved, possibly multi-lobed failure
// regions deeper in the tail, and its likelihood ratios degenerate.
// The ladder the high-sigma literature converged on (and the OpenYield
// exemplars enumerate: MC / MNIS / AIS / ACS / HSCS) fills the gap
// with three ingredients this package supplies the math for:
//
//   - adaptive importance sampling (AIS): iterate draw → rank by the
//     constraint metric → refit a Gaussian-mixture proposal on the
//     elite set (the cross-entropy method), then estimate with
//     self-normalized likelihood-ratio weights and an effective-
//     sample-size guard;
//   - a worst-case-distance (WCD) analytic bound: the minimum-norm
//     point of the failure region in the standardized space, found by
//     projected line search, whose first-order failure probability
//     Φ(−β) certifies "yield reached" or "yield unreachable" before
//     any sampling (the pyopus WCD→MC cascade);
//   - quasi-Monte Carlo (QMC): scrambled Sobol points through the
//     inverse normal CDF for faster-than-1/√n convergence at moderate
//     sigma.
//
// The concrete estimators run in internal/variation (they need the
// scenario evaluators); this package owns the estimator identities,
// the routing policy, and the numerics that are independent of what
// is being estimated. Routing is by the caller's target sigma: the
// regime the query must resolve, not the answer itself — a 6σ query
// routes to AIS with a WCD pre-filter, a 2σ query stays on plain MC.
package estimator

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
)

// Kind names one estimator in the registry. The zero value is Auto:
// let the router pick from the target regime.
type Kind string

const (
	// Auto routes by target sigma (see Route); with no target hint it
	// preserves the historical default (MC, or ISLE when importance
	// sampling was requested).
	Auto Kind = ""
	// MC is plain Monte Carlo: unbiased, assumption-free, and the
	// right tool whenever failures are common enough to observe.
	MC Kind = "mc"
	// ISLE is the mean-shift importance-sampling estimator: a single
	// Gaussian centered on the most probable failure point, with
	// likelihood-ratio weights.
	ISLE Kind = "isle"
	// AIS is adaptive importance sampling with cross-entropy updates
	// of a Gaussian-mixture proposal — the deep-tail (≳4σ) workhorse.
	AIS Kind = "ais"
	// QMC is the scrambled-Sobol quasi-Monte Carlo variant of the
	// plain estimator: same indicator, low-discrepancy points.
	QMC Kind = "qmc"
	// WCD is the worst-case-distance analytic bound alone: no
	// sampling, first-order failure probability Φ(−β) at the
	// minimum-norm failure point.
	WCD Kind = "wcd"
)

// Routing observability: how often each rung of the ladder is picked
// by the automatic router (explicit estimator requests don't count).
var (
	metRouteMC   = obs.NewCounter("estimator.routed_mc")
	metRouteISLE = obs.NewCounter("estimator.routed_isle")
	metRouteQMC  = obs.NewCounter("estimator.routed_qmc")
	metRouteAIS  = obs.NewCounter("estimator.routed_ais")
)

// Info describes one registered estimator: its routing band and what
// it costs. MinFailProb/MaxFailProb bound the failure-probability
// regime the estimator is routed for (inclusive lower, exclusive
// upper); the bands of all registered sampling estimators tile (0, 1).
type Info struct {
	Kind        Kind
	Description string
	// MinFailProb and MaxFailProb delimit the routed regime.
	MinFailProb, MaxFailProb float64
	// Samples reports whether the estimator draws Monte Carlo samples
	// at all (false for the analytic WCD bound).
	Samples bool
}

// The registry is assembled once at package init and read-only after:
// Register would normally be driven by init funcs of implementing
// packages, but the ladder is closed-world today, so the table is
// static and Kinds/Lookup are safe for concurrent use without locks.
var registry = []Info{
	{Kind: MC, Description: "plain Monte Carlo over the standardized space", MinFailProb: 2e-2, MaxFailProb: 1, Samples: true},
	{Kind: QMC, Description: "scrambled-Sobol quasi-Monte Carlo (inverse-CDF normals)", MinFailProb: 1e-3, MaxFailProb: 2e-2, Samples: true},
	{Kind: ISLE, Description: "mean-shift importance sampling at the most probable failure point", MinFailProb: 1e-5, MaxFailProb: 1e-3, Samples: true},
	{Kind: AIS, Description: "adaptive importance sampling, cross-entropy mixture proposal", MinFailProb: 0, MaxFailProb: 1e-5, Samples: true},
	{Kind: WCD, Description: "worst-case-distance analytic bound (no sampling)", Samples: false},
}

// Lookup returns the registry entry of a kind.
func Lookup(k Kind) (Info, bool) {
	for _, info := range registry {
		if info.Kind == k {
			return info, true
		}
	}
	return Info{}, false
}

// Kinds lists the registered estimators in routing order (most common
// failures first).
func Kinds() []Kind {
	out := make([]Kind, len(registry))
	for i, info := range registry {
		out[i] = info.Kind
	}
	return out
}

// Parse normalizes a user-facing estimator name ("auto", "mc", "ais",
// …) to its Kind, rejecting unknown names.
func Parse(name string) (Kind, error) {
	switch Kind(name) {
	case Auto, Kind("auto"):
		return Auto, nil
	case MC, ISLE, AIS, QMC, WCD:
		return Kind(name), nil
	}
	known := Kinds()
	names := make([]string, len(known))
	for i, k := range known {
		names[i] = string(k)
	}
	sort.Strings(names)
	return Auto, fmt.Errorf("estimator: unknown estimator %q (known: auto %v)", name, names)
}

// Route picks the sampling estimator for a query that must resolve
// failure probabilities around targetFailProb — the regime the caller
// cares about (derived from a sigma level: Φ(−σ)), not the unknown
// answer. The bands come from the registry: common failures stay on
// plain MC (anything cleverer only adds variance-model risk), the
// 2–3σ band takes QMC's convergence advantage, the 3–4σ band is where
// a single mean shift still tracks the failure region, and everything
// deeper routes to AIS. A non-positive or NaN targetFailProb returns
// Auto — the caller falls back to its historical default.
func Route(targetFailProb float64) Kind {
	if !(targetFailProb > 0) || targetFailProb > 1 {
		return Auto
	}
	for _, info := range registry {
		if !info.Samples {
			continue
		}
		if targetFailProb >= info.MinFailProb && targetFailProb < info.MaxFailProb || info.MaxFailProb == 1 && targetFailProb == 1 {
			switch info.Kind {
			case MC:
				metRouteMC.Inc()
			case QMC:
				metRouteQMC.Inc()
			case ISLE:
				metRouteISLE.Inc()
			case AIS:
				metRouteAIS.Inc()
			}
			return info.Kind
		}
	}
	// Unreachable while the bands tile (0,1]; fail safe to AIS, the
	// deep-tail rung.
	return AIS
}

// RouteSigma is Route for a target expressed as a sigma level:
// RouteSigma(6) routes the estimator that can resolve Φ(−6) ≈ 1e-9.
func RouteSigma(sigma float64) Kind {
	if !(sigma > 0) || math.IsInf(sigma, 0) {
		return Auto
	}
	return Route(Phi(-sigma))
}
