package estimator

import (
	"errors"
	"math"
	"testing"
)

// linearMetric builds a·z + c: the failure surface a·z + c ≥ target is
// a hyperplane, whose exact worst-case distance is (target−c)/‖a‖.
func linearMetric(a []float64, c float64) Metric {
	return func(z []float64) (float64, error) {
		s := c
		for d, v := range z {
			s += a[d] * v
		}
		return s, nil
	}
}

func TestFindWCDLinearExact(t *testing.T) {
	for _, tc := range []struct {
		a      []float64
		c, tgt float64
	}{
		{[]float64{1, 0, 0}, 0, 3},
		{[]float64{2, 1, 0.5, 0.25}, 10, 20},
		{[]float64{0.3, -0.7, 0.1, 0.2, -0.4, 0.6, 0.05}, 100, 102},
	} {
		var norm float64
		for _, v := range tc.a {
			norm += v * v
		}
		want := (tc.tgt - tc.c) / math.Sqrt(norm)
		w, err := FindWCD(len(tc.a), tc.tgt, linearMetric(tc.a, tc.c))
		if err != nil {
			t.Fatal(err)
		}
		if !w.Reached {
			t.Fatalf("linear surface at β=%.3f not reached", want)
		}
		if math.Abs(w.Beta-want) > 5e-3 {
			t.Fatalf("β = %.5f, want %.5f", w.Beta, want)
		}
		if math.Abs(w.FailProb-Phi(-want)) > 1e-3*Phi(-want)+1e-12 {
			t.Fatalf("FailProb = %g, want Φ(−%.4f) = %g", w.FailProb, want, Phi(-want))
		}
		// The minimum-norm direction of a hyperplane is a/‖a‖.
		for d, v := range tc.a {
			if math.Abs(w.Direction[d]-v/math.Sqrt(norm)) > 1e-2 {
				t.Fatalf("direction[%d] = %.4f, want %.4f", d, w.Direction[d], v/math.Sqrt(norm))
			}
		}
	}
}

func TestFindWCDNominalFailure(t *testing.T) {
	w, err := FindWCD(2, 5, linearMetric([]float64{1, 1}, 10))
	if err != nil {
		t.Fatal(err)
	}
	if w.Beta != 0 || w.FailProb != 0.5 || !w.Reached {
		t.Fatalf("nominal failure: %+v", w)
	}
}

func TestFindWCDUnreachable(t *testing.T) {
	// Failure surface at 20σ: beyond the 8σ search cap.
	w, err := FindWCD(3, 20, linearMetric([]float64{1, 0, 0}, 0))
	if err != nil {
		t.Fatal(err)
	}
	if w.Reached {
		t.Fatal("a 20σ surface should not be reached")
	}
	if w.Beta != WCDMaxNorm {
		t.Fatalf("unreached β = %g, want the cap %g", w.Beta, WCDMaxNorm)
	}
}

func TestFindWCDFlatMetric(t *testing.T) {
	flat := func(z []float64) (float64, error) { return 1, nil }
	w, err := FindWCD(4, 2, flat)
	if err != nil {
		t.Fatal(err)
	}
	if w.Reached || w.Beta != WCDMaxNorm {
		t.Fatalf("flat metric: %+v", w)
	}
}

func TestFindWCDCurvedRefinement(t *testing.T) {
	// metric = z0 + 0.1·z1² with target 3: the true minimum-norm point
	// is near (3, 0), β ≈ 3; a plain gradient march already lands
	// there, but the HL–RF rounds must not make it worse.
	metric := func(z []float64) (float64, error) {
		return z[0] + 0.1*z[1]*z[1], nil
	}
	w, err := FindWCD(2, 3, metric)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Reached || math.Abs(w.Beta-3) > 0.05 {
		t.Fatalf("curved β = %.4f, want ≈3", w.Beta)
	}
}

func TestFindWCDPropagatesError(t *testing.T) {
	boom := errors.New("model exploded")
	calls := 0
	metric := func(z []float64) (float64, error) {
		calls++
		if calls > 3 {
			return 0, boom
		}
		return 0, nil
	}
	if _, err := FindWCD(2, 1, metric); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the metric's", err)
	}
}

func TestFindWCDRejectsBadDims(t *testing.T) {
	if _, err := FindWCD(0, 1, linearMetric(nil, 0)); err == nil {
		t.Fatal("dims=0 accepted")
	}
}

func TestCertify(t *testing.T) {
	for _, tc := range []struct {
		beta    float64
		reached bool
		sigma   float64
		want    Verdict
	}{
		{6.6, true, 6, CertifiedYield},
		{8, false, 6, CertifiedYield}, // unreached cap still clears 6+0.5
		{5.4, true, 6, CertifiedUnreachable},
		{6.2, true, 6, Inconclusive},
		{5.8, true, 6, Inconclusive},
		{7.9, false, 7.6, Inconclusive}, // unreached cap cannot certify-unreachable
		{0, true, 3, CertifiedUnreachable},
	} {
		w := Bound{Beta: tc.beta, Reached: tc.reached}
		if got := w.Certify(tc.sigma, 0); got != tc.want {
			t.Fatalf("Certify(β=%g reached=%v, σ=%g) = %v, want %v",
				tc.beta, tc.reached, tc.sigma, got, tc.want)
		}
	}
}

func TestVerdictString(t *testing.T) {
	if CertifiedYield.String() != "certified-yield" ||
		CertifiedUnreachable.String() != "certified-unreachable" ||
		Inconclusive.String() != "inconclusive" {
		t.Fatal("verdict strings changed")
	}
}

func TestBandCoversMargin(t *testing.T) {
	w := Bound{Beta: 4}
	se := w.Band(0)
	// The 95% interval around Φ(−β) must reach the probabilities at
	// β ± margin.
	lo, hi := w.FailProbAt(4.5), w.FailProbAt(3.5)
	if Phi(-4)+1.96*se < hi-1e-15 || Phi(-4)-1.96*se > lo+1e-15 {
		t.Fatalf("band %g does not cover [Φ(−4.5), Φ(−3.5)]", se)
	}
}

// FailProbAt is a test helper: the first-order probability at an
// arbitrary distance.
func (w Bound) FailProbAt(beta float64) float64 { return Phi(-beta) }
