package rcnet

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/tech"
	"repro/internal/wire"
)

func TestSPEFRoundTrip(t *testing.T) {
	seg := wire.NewSegment(tech.MustLookup("90nm"), 3e-3, wire.SWSS)
	lad, err := FromSegment(seg, 16, 2.0, 7e-15)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSPEF(&buf, "net1", lad); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSPEF(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%v\n--- file ---\n%s", err, buf.String())
	}
	if back.Sections() != lad.Sections() {
		t.Fatalf("sections %d vs %d", back.Sections(), lad.Sections())
	}
	relClose := func(a, b float64) bool {
		den := math.Max(math.Abs(a), math.Abs(b))
		return den == 0 || math.Abs(a-b) <= 1e-9*den
	}
	for i := range lad.R {
		if !relClose(lad.R[i], back.R[i]) || !relClose(lad.C[i], back.C[i]) {
			t.Fatalf("section %d drifted: R %g→%g, C %g→%g", i, lad.R[i], back.R[i], lad.C[i], back.C[i])
		}
	}
	// Electrical equivalence: moments preserved.
	m1a, m2a := lad.Moments()
	m1b, m2b := back.Moments()
	if !relClose(m1a, m1b) || !relClose(m2a, m2b) {
		t.Fatalf("moments drifted: (%g,%g) vs (%g,%g)", m1a, m2a, m1b, m2b)
	}
}

func TestSPEFWriteEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSPEF(&buf, "x", &Ladder{}); err == nil {
		t.Fatal("empty ladder accepted")
	}
}

func TestSPEFParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"no driver", "*CAP\n1 a:1 0.5\n*RES\n1 a:1 b:1 10\n*END\n"},
		{"no resistors", "*I drv:O O\n*CAP\n1 n:1 0.5\n*END\n"},
		{"bad cap", "*I drv:O O\n*CAP\n1 n:1 zz\n*END\n"},
		{"bad res", "*I drv:O O\n*RES\n1 drv:O n:1 zz\n*END\n"},
		{"data outside section", "*I drv:O O\n1 2 3\n"},
		{"short cap line", "*I drv:O O\n*CAP\n1 n:1\n*END\n"},
		{"short res line", "*I drv:O O\n*RES\n1 drv:O 10\n*END\n"},
	}
	for _, c := range cases {
		if _, err := ParseSPEF(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSPEFParseRejectsBranch(t *testing.T) {
	in := `*I drv:O O
*CAP
1 a:1 0.5
2 a:2 0.5
3 a:3 0.5
*RES
1 drv:O a:1 10
2 a:1 a:2 10
3 a:1 a:3 10
*END
`
	if _, err := ParseSPEF(strings.NewReader(in)); err == nil {
		t.Fatal("branching net accepted as ladder")
	}
}

func TestSPEFParseRejectsDisconnected(t *testing.T) {
	in := `*I drv:O O
*CAP
1 a:1 0.5
2 b:1 0.5
*RES
1 drv:O a:1 10
2 b:1 b:2 10
*END
`
	if _, err := ParseSPEF(strings.NewReader(in)); err == nil {
		t.Fatal("disconnected net accepted")
	}
}

func TestSPEFMinimalHandwritten(t *testing.T) {
	// A hand-written two-section chain in file units (fF, Ω).
	in := `*SPEF "IEEE 1481-1998"
*T_UNIT 1 PS
*C_UNIT 1 FF
*R_UNIT 1 OHM
*D_NET n 3
*CONN
*I drv:O O
*I rcv:I I
*CAP
1 n:1 1
2 rcv:I 2
*RES
1 drv:O n:1 100
2 n:1 rcv:I 200
*END
`
	lad, err := ParseSPEF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if lad.Sections() != 2 {
		t.Fatalf("sections %d", lad.Sections())
	}
	if math.Abs(lad.R[0]-100) > 1e-9 || math.Abs(lad.R[1]-200) > 1e-9 {
		t.Fatalf("R = %v", lad.R)
	}
	if math.Abs(lad.C[0]-1e-15) > 1e-24 || math.Abs(lad.C[1]-2e-15) > 1e-24 {
		t.Fatalf("C = %v", lad.C)
	}
	// Elmore: 100·3f + 200·2f = 700 fs.
	if d := lad.ElmoreDelay(); math.Abs(d-700e-15) > 1e-18 {
		t.Fatalf("Elmore %g", d)
	}
}
