package rcnet

// SPEF-style exchange support: WriteSPEF emits an RC ladder as a
// single-net parasitics file in the spirit of IEEE 1481 SPEF (the
// format SOC Encounter's extractor hands to PrimeTime in the paper's
// golden flow), and ParseSPEF reads such a file back into a Ladder.
// Only the subset this repository produces is supported: one D_NET
// with a chain topology from the driver pin to the receiver pin.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// SPEF file units.
const (
	spefROhm = 1.0  // Ω
	spefCfF  = 1e15 // file farads are fF
)

// WriteSPEF emits the ladder as a one-net SPEF fragment. netName
// labels the net; the drive pin is "drv:O" and the receive pin
// "rcv:I", with internal nodes netName:1..n-1.
func WriteSPEF(w io.Writer, netName string, lad *Ladder) error {
	if lad.Sections() == 0 {
		return fmt.Errorf("rcnet: cannot write empty ladder")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "*SPEF \"IEEE 1481-1998\"\n")
	fmt.Fprintf(bw, "*DESIGN \"%s\"\n", netName)
	fmt.Fprintf(bw, "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n\n")

	n := lad.Sections()
	node := func(i int) string {
		if i == n-1 {
			return "rcv:I"
		}
		return fmt.Sprintf("%s:%d", netName, i+1)
	}
	fmt.Fprintf(bw, "*D_NET %s %s\n", netName, fnumSpef(lad.TotalC()*spefCfF))
	fmt.Fprintf(bw, "*CONN\n*I drv:O O\n*I rcv:I I\n")
	fmt.Fprintf(bw, "*CAP\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(bw, "%d %s %s\n", i+1, node(i), fnumSpef(lad.C[i]*spefCfF))
	}
	fmt.Fprintf(bw, "*RES\n")
	prev := "drv:O"
	for i := 0; i < n; i++ {
		fmt.Fprintf(bw, "%d %s %s %s\n", i+1, prev, node(i), fnumSpef(lad.R[i]*spefROhm))
		prev = node(i)
	}
	fmt.Fprintf(bw, "*END\n")
	return bw.Flush()
}

func fnumSpef(v float64) string { return strconv.FormatFloat(v, 'g', 12, 64) }

// ParseSPEF reads a file produced by WriteSPEF (or a compatible
// single-net chain) back into a Ladder. The net's resistor chain must
// form a simple path starting at a pin of direction O.
func ParseSPEF(r io.Reader) (*Ladder, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	caps := map[string]float64{}
	type resistor struct {
		a, b string
		ohm  float64
	}
	var resistors []resistor
	var drivePin string

	section := ""
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		switch {
		case strings.HasPrefix(text, "*I "):
			if len(fields) == 3 && fields[2] == "O" {
				drivePin = fields[1]
			}
		case text == "*CAP":
			section = "cap"
		case text == "*RES":
			section = "res"
		case text == "*END":
			section = ""
		case strings.HasPrefix(text, "*"):
			// header/other directives: ignore
		default:
			switch section {
			case "cap":
				if len(fields) != 3 {
					return nil, fmt.Errorf("rcnet: spef line %d: bad cap entry", line)
				}
				v, err := strconv.ParseFloat(fields[2], 64)
				if err != nil {
					return nil, fmt.Errorf("rcnet: spef line %d: %v", line, err)
				}
				caps[fields[1]] += v / spefCfF
			case "res":
				if len(fields) != 4 {
					return nil, fmt.Errorf("rcnet: spef line %d: bad res entry", line)
				}
				v, err := strconv.ParseFloat(fields[3], 64)
				if err != nil {
					return nil, fmt.Errorf("rcnet: spef line %d: %v", line, err)
				}
				resistors = append(resistors, resistor{a: fields[1], b: fields[2], ohm: v / spefROhm})
			default:
				return nil, fmt.Errorf("rcnet: spef line %d: data outside section", line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if drivePin == "" {
		return nil, fmt.Errorf("rcnet: spef has no output (driver) pin")
	}
	if len(resistors) == 0 {
		return nil, fmt.Errorf("rcnet: spef has no resistors")
	}

	// Walk the chain from the driver pin.
	adj := map[string][]resistor{}
	for _, re := range resistors {
		adj[re.a] = append(adj[re.a], re)
		adj[re.b] = append(adj[re.b], resistor{a: re.b, b: re.a, ohm: re.ohm})
	}
	lad := &Ladder{}
	visited := map[string]bool{drivePin: true}
	cur := drivePin
	for {
		var next *resistor
		for i := range adj[cur] {
			re := adj[cur][i]
			if !visited[re.b] {
				if next != nil {
					return nil, fmt.Errorf("rcnet: spef net branches at %s (not a chain)", cur)
				}
				next = &re
			}
		}
		if next == nil {
			break
		}
		visited[next.b] = true
		lad.R = append(lad.R, next.ohm)
		lad.C = append(lad.C, caps[next.b])
		cur = next.b
	}
	if len(lad.R) != len(resistors) {
		return nil, fmt.Errorf("rcnet: spef net is not a single chain (%d of %d resistors reachable)",
			len(lad.R), len(resistors))
	}
	return lad, nil
}
