package rcnet

import (
	"fmt"
	"math"
)

// Tree is a general RC tree, the structure real extracted nets have
// (a ladder is the special case with no branching). Node 0 is the
// drive point; every other node i hangs from Parent[i] through series
// resistance R[i] and carries capacitance C[i] to ground. Parents
// must precede children (Parent[i] < i), which every construction in
// this package guarantees.
type Tree struct {
	// Parent[i] is the index of node i's parent; Parent[0] is -1.
	Parent []int
	// R[i] is the resistance (Ω) between node i and its parent;
	// R[0] is unused.
	R []float64
	// C[i] is the capacitance (F) at node i.
	C []float64
}

// Validate checks the structural invariants.
func (t *Tree) Validate() error {
	n := len(t.Parent)
	if n == 0 {
		return fmt.Errorf("rcnet: empty tree")
	}
	if len(t.R) != n || len(t.C) != n {
		return fmt.Errorf("rcnet: tree arrays disagree (%d/%d/%d)", n, len(t.R), len(t.C))
	}
	if t.Parent[0] != -1 {
		return fmt.Errorf("rcnet: root must have parent -1")
	}
	for i := 1; i < n; i++ {
		if t.Parent[i] < 0 || t.Parent[i] >= i {
			return fmt.Errorf("rcnet: node %d has parent %d (need 0 ≤ parent < i)", i, t.Parent[i])
		}
		if t.R[i] <= 0 {
			return fmt.Errorf("rcnet: node %d has non-positive branch resistance", i)
		}
		if t.C[i] < 0 {
			return fmt.Errorf("rcnet: node %d has negative capacitance", i)
		}
	}
	return nil
}

// Nodes returns the node count.
func (t *Tree) Nodes() int { return len(t.Parent) }

// TotalC returns the total tree capacitance.
func (t *Tree) TotalC() float64 {
	s := 0.0
	for _, c := range t.C {
		s += c
	}
	return s
}

// FromLadder converts a ladder into the equivalent chain-shaped tree.
// The ladder's drive point becomes the (capacitance-free) root.
func FromLadder(lad *Ladder) *Tree {
	n := lad.Sections()
	t := &Tree{
		Parent: make([]int, n+1),
		R:      make([]float64, n+1),
		C:      make([]float64, n+1),
	}
	t.Parent[0] = -1
	for i := 0; i < n; i++ {
		t.Parent[i+1] = i
		t.R[i+1] = lad.R[i]
		t.C[i+1] = lad.C[i]
	}
	return t
}

// downstreamSums computes, for every node i, the sum over its subtree
// of the supplied per-node weights.
func (t *Tree) downstreamSums(weight []float64) []float64 {
	n := len(t.Parent)
	down := make([]float64, n)
	copy(down, weight)
	for i := n - 1; i >= 1; i-- { // children precede parents in this sweep
		down[t.Parent[i]] += down[i]
	}
	return down
}

// Moments returns the first and second transfer-function moments
// (m1, m2) at the given node for a step at the root: with
// H(s) = 1 + m1·s + m2·s², −m1 is the node's Elmore delay. The
// standard RC-tree recursion applies:
//
//	m1(k) = −Σ_e∈path(k) R_e · Cdown(e)
//	m2(k) =  Σ_e∈path(k) R_e · Σ_{j below e} C_j·(−m1(j))
func (t *Tree) Moments(node int) (m1, m2 float64) {
	m1s := t.m1All()
	// Second pass: weights C_j·(−m1_j).
	n := len(t.Parent)
	w := make([]float64, n)
	for j := 0; j < n; j++ {
		w[j] = t.C[j] * (-m1s[j])
	}
	downW := t.downstreamSums(w)
	for k := node; k > 0; k = t.Parent[k] {
		m2 += t.R[k] * downW[k]
	}
	return m1s[node], m2
}

// m1All returns the first moment at every node.
func (t *Tree) m1All() []float64 {
	n := len(t.Parent)
	downC := t.downstreamSums(t.C)
	m1 := make([]float64, n)
	for i := 1; i < n; i++ { // parents precede children
		m1[i] = m1[t.Parent[i]] - t.R[i]*downC[i]
	}
	return m1
}

// ElmoreDelay returns the Elmore delay (−m1) at a node.
func (t *Tree) ElmoreDelay(node int) float64 {
	return -t.m1All()[node]
}

// ElmoreDelays returns the Elmore delay at every node.
func (t *Tree) ElmoreDelays() []float64 {
	m1 := t.m1All()
	out := make([]float64, len(m1))
	for i, v := range m1 {
		out[i] = -v
	}
	return out
}

// Leaves returns the indices of all leaf nodes (no children).
func (t *Tree) Leaves() []int {
	n := len(t.Parent)
	hasChild := make([]bool, n)
	for i := 1; i < n; i++ {
		hasChild[t.Parent[i]] = true
	}
	var out []int
	for i := 1; i < n; i++ {
		if !hasChild[i] {
			out = append(out, i)
		}
	}
	if len(out) == 0 && n > 0 {
		out = append(out, 0)
	}
	return out
}

// WorstElmore returns the largest leaf Elmore delay and the leaf index
// it occurs at — the critical sink of the net.
func (t *Tree) WorstElmore() (delay float64, node int) {
	delays := t.ElmoreDelays()
	node = 0
	for _, leaf := range t.Leaves() {
		if delays[leaf] > delay {
			delay, node = delays[leaf], leaf
		}
	}
	if math.IsNaN(delay) {
		return 0, node
	}
	return delay, node
}
