package rcnet

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tech"
	"repro/internal/wire"
)

func TestTreeValidate(t *testing.T) {
	good := &Tree{Parent: []int{-1, 0, 1}, R: []float64{0, 1, 1}, C: []float64{0, 1e-15, 1e-15}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []*Tree{
		{},
		{Parent: []int{-1}, R: []float64{0, 1}, C: []float64{0}},
		{Parent: []int{0}, R: []float64{0}, C: []float64{0}},
		{Parent: []int{-1, 2}, R: []float64{0, 1}, C: []float64{0, 0}},
		{Parent: []int{-1, 0}, R: []float64{0, 0}, C: []float64{0, 0}},
		{Parent: []int{-1, 0}, R: []float64{0, 1}, C: []float64{0, -1}},
	}
	for i, bad := range cases {
		if bad.Validate() == nil {
			t.Errorf("case %d: invalid tree accepted", i)
		}
	}
}

func TestTreeMatchesLadder(t *testing.T) {
	seg := wire.NewSegment(tech.MustLookup("90nm"), 2e-3, wire.SWSS)
	lad, err := FromSegment(seg, 20, 2.0, 5e-15)
	if err != nil {
		t.Fatal(err)
	}
	tr := FromLadder(lad)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	lm1, lm2 := lad.Moments()
	tm1, tm2 := tr.Moments(tr.Nodes() - 1)
	if math.Abs(lm1-tm1) > 1e-15*math.Abs(lm1) {
		t.Fatalf("m1 mismatch: %g vs %g", lm1, tm1)
	}
	if math.Abs(lm2-tm2) > 1e-12*math.Abs(lm2) {
		t.Fatalf("m2 mismatch: %g vs %g", lm2, tm2)
	}
	if math.Abs(tr.TotalC()-lad.TotalC()) > 1e-24 {
		t.Fatal("total C mismatch")
	}
}

// Hand-computed branching example:
//
//	root ──R1── n1 ──R2── n2 (C2)
//	             └──R3── n3 (C3)
func TestTreeBranchMoments(t *testing.T) {
	tr := &Tree{
		Parent: []int{-1, 0, 1, 1},
		R:      []float64{0, 1, 2, 3},
		C:      []float64{0, 1, 1, 1}, // C1=C2=C3=1
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Elmore at n2: R1·(C1+C2+C3) + R2·C2 = 3 + 2 = 5.
	// Elmore at n3: R1·3 + R3·C3 = 3 + 3 = 6.
	d := tr.ElmoreDelays()
	if math.Abs(d[2]-5) > 1e-12 || math.Abs(d[3]-6) > 1e-12 {
		t.Fatalf("Elmore delays %v", d)
	}
	// Worst sink is n3.
	worst, node := tr.WorstElmore()
	if node != 3 || math.Abs(worst-6) > 1e-12 {
		t.Fatalf("worst %g at %d", worst, node)
	}
	leaves := tr.Leaves()
	if len(leaves) != 2 || leaves[0] != 2 || leaves[1] != 3 {
		t.Fatalf("leaves %v", leaves)
	}
	// m2 at n2 by hand:
	//  m1(n1) = −R1·3 = −3; m1(n2) = −5; m1(n3) = −6.
	//  weights w_j = C_j·(−m1_j): w1=3, w2=5, w3=6.
	//  m2(n2) = R1·(w1+w2+w3) + R2·w2 = 14 + 10 = 24.
	_, m2 := tr.Moments(2)
	if math.Abs(m2-24) > 1e-12 {
		t.Fatalf("m2 = %g, want 24", m2)
	}
}

// Property: on any random chain, the tree moments equal the ladder
// moments.
func TestQuickTreeLadderEquivalence(t *testing.T) {
	f := func(seed uint32) bool {
		n := int(seed%20) + 1
		lad := &Ladder{R: make([]float64, n), C: make([]float64, n)}
		x := float64(seed%97) + 1
		for i := 0; i < n; i++ {
			lad.R[i] = 10 + math.Mod(x*float64(i+1)*7.3, 90)
			lad.C[i] = (1 + math.Mod(x*float64(i+1)*3.1, 9)) * 1e-15
		}
		tr := FromLadder(lad)
		lm1, lm2 := lad.Moments()
		tm1, tm2 := tr.Moments(tr.Nodes() - 1)
		return math.Abs(lm1-tm1) <= 1e-12*math.Abs(lm1)+1e-30 &&
			math.Abs(lm2-tm2) <= 1e-9*math.Abs(lm2)+1e-40
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Elmore delay is monotone along any root-to-leaf path.
func TestQuickElmoreMonotoneAlongPath(t *testing.T) {
	f := func(seed uint32) bool {
		// Build a random tree with parent(i) = random earlier node.
		n := int(seed%30) + 2
		tr := &Tree{Parent: make([]int, n), R: make([]float64, n), C: make([]float64, n)}
		tr.Parent[0] = -1
		state := uint64(seed)*2654435761 + 1
		rnd := func() float64 {
			state = state*6364136223846793005 + 1442695040888963407
			return float64(state>>11) / float64(1<<53)
		}
		for i := 1; i < n; i++ {
			tr.Parent[i] = int(rnd() * float64(i))
			tr.R[i] = 1 + rnd()*100
			tr.C[i] = rnd() * 1e-14
		}
		if err := tr.Validate(); err != nil {
			return false
		}
		d := tr.ElmoreDelays()
		for i := 1; i < n; i++ {
			if d[i] < d[tr.Parent[i]]-1e-30 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
