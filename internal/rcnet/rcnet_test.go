package rcnet

import (
	"math"
	"testing"

	"repro/internal/tech"
	"repro/internal/wire"
)

func seg(t *testing.T, style wire.Style) wire.Segment {
	t.Helper()
	return wire.NewSegment(tech.MustLookup("90nm"), 1e-3, style)
}

func TestFromSegmentTotals(t *testing.T) {
	s := seg(t, wire.SWSS)
	load := 10e-15
	lad, err := FromSegment(s, 32, 2.0, load)
	if err != nil {
		t.Fatal(err)
	}
	if lad.Sections() != 32 {
		t.Fatalf("sections = %d", lad.Sections())
	}
	if math.Abs(lad.TotalR()-s.Resistance()) > 1e-9*s.Resistance() {
		t.Fatalf("total R %g != segment R %g", lad.TotalR(), s.Resistance())
	}
	quiet, coupled := s.DelayCaps()
	wantC := quiet + 2*coupled + load
	if math.Abs(lad.TotalC()-wantC) > 1e-12*wantC {
		t.Fatalf("total C %g != %g", lad.TotalC(), wantC)
	}
}

func TestFromSegmentErrors(t *testing.T) {
	s := seg(t, wire.SWSS)
	if _, err := FromSegment(s, 0, 2, 0); err == nil {
		t.Fatal("zero sections accepted")
	}
	if _, err := FromSegment(s, 8, 2, -1); err == nil {
		t.Fatal("negative load accepted")
	}
	bad := s
	bad.Length = -1
	if _, err := FromSegment(bad, 8, 2, 0); err == nil {
		t.Fatal("invalid segment accepted")
	}
}

// A single-section "ladder" is a lumped RC: Elmore delay = R·C.
func TestElmoreLumped(t *testing.T) {
	lad := &Ladder{R: []float64{1e3}, C: []float64{1e-12}}
	if d := lad.ElmoreDelay(); math.Abs(d-1e-9) > 1e-15 {
		t.Fatalf("lumped Elmore = %g, want 1ns", d)
	}
}

// Distributed line: as sections → ∞, Elmore delay → R·C·(1/2 + …)
// Actually for a uniform distributed line with total R, C (no load),
// Elmore = RC·(n+1)/(2n) → RC/2.
func TestElmoreDistributedLimit(t *testing.T) {
	R, C := 1e3, 1e-12
	mk := func(n int) *Ladder {
		lad := &Ladder{R: make([]float64, n), C: make([]float64, n)}
		for i := 0; i < n; i++ {
			lad.R[i] = R / float64(n)
			lad.C[i] = C / float64(n)
		}
		return lad
	}
	d100 := mk(100).ElmoreDelay()
	want := R * C * 101 / 200
	if math.Abs(d100-want) > 1e-6*want {
		t.Fatalf("distributed Elmore = %g, want %g", d100, want)
	}
	// Convergence toward RC/2 from above.
	d4 := mk(4).ElmoreDelay()
	if !(d4 > d100 && d100 > R*C/2) {
		t.Fatalf("Elmore not converging: d4=%g d100=%g RC/2=%g", d4, d100, R*C/2)
	}
}

// Hand-computed two-section moments.
func TestMomentsTwoSection(t *testing.T) {
	// R1=1, C1=1, R2=1, C2=1 (unit values).
	// m1(far) = −(R1·(C1+C2) + R2·C2) = −3.
	// m1(node1) = −(R1·(C1+C2)) = −2.
	// m2(far) = Σ_j Rshared(far,j)·C_j·(−m1(j))
	//        = R1·C1·2 + (R1+R2)·C2·3 = 2 + 6 = 8.
	lad := &Ladder{R: []float64{1, 1}, C: []float64{1, 1}}
	m1, m2 := lad.Moments()
	if math.Abs(m1+3) > 1e-12 {
		t.Fatalf("m1 = %g, want -3", m1)
	}
	if math.Abs(m2-8) > 1e-12 {
		t.Fatalf("m2 = %g, want 8", m2)
	}
}

func TestD2MBelowElmore(t *testing.T) {
	// D2M is a provable lower bound tightener: for RC lines it sits
	// below the Elmore bound (Elmore overestimates 50% delay).
	s := seg(t, wire.SWSS)
	lad, err := FromSegment(s, 50, 2.0, 5e-15)
	if err != nil {
		t.Fatal(err)
	}
	el, d2m := lad.ElmoreDelay(), lad.D2MDelay()
	if d2m >= el {
		t.Fatalf("D2M %g not below Elmore %g", d2m, el)
	}
	if d2m <= 0.2*el {
		t.Fatalf("D2M %g implausibly far below Elmore %g", d2m, el)
	}
}

func TestMillerFactorScalesCoupledOnly(t *testing.T) {
	s := seg(t, wire.SWSS)
	l1, err := FromSegment(s, 16, 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := FromSegment(s, 16, 2.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(l2.TotalC() > l1.TotalC()) {
		t.Fatal("higher Miller factor must increase delay capacitance")
	}
	// Shielded segments have no coupled part: Miller is irrelevant.
	sh := seg(t, wire.Shielded)
	s1, err := FromSegment(sh, 16, 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := FromSegment(sh, 16, 2.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s1.TotalC()-s2.TotalC()) > 1e-21 {
		t.Fatal("Miller factor must not affect shielded wires")
	}
}

// Property: for every style and section count, Elmore delay is
// positive and grows quadratically-ish with length (doubling length
// quadruples R·C product asymptotically).
func TestElmoreLengthScaling(t *testing.T) {
	tc := tech.MustLookup("65nm")
	for _, style := range []wire.Style{wire.SWSS, wire.Shielded, wire.Staggered} {
		short := wire.NewSegment(tc, 1e-3, style)
		long := wire.NewSegment(tc, 2e-3, style)
		ls, err := FromSegment(short, 64, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		ll, err := FromSegment(long, 64, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		ratio := ll.ElmoreDelay() / ls.ElmoreDelay()
		if math.Abs(ratio-4) > 0.05 {
			t.Errorf("%v: unbuffered delay ratio %g, want ~4", style, ratio)
		}
	}
}

func BenchmarkMoments(b *testing.B) {
	s := wire.NewSegment(tech.MustLookup("90nm"), 5e-3, wire.SWSS)
	lad, err := FromSegment(s, 64, 2, 10e-15)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lad.Moments()
	}
}
