// Package rcnet builds and analyzes distributed RC networks for
// interconnect wires — the stand-in for the SPEF parasitics that the
// paper extracts with SOC Encounter. A wire segment becomes a uniform
// RC ladder (resistance sections with capacitance at each internal
// node), coupling capacitance is folded in with a caller-chosen Miller
// factor, and the package computes the first two moments of the
// response at any node, which yields Elmore delays for the baselines
// and feeds the golden timing engine's accuracy checks.
package rcnet

import (
	"fmt"
	"math"

	"repro/internal/wire"
)

// Ladder is a uniform RC ladder: Sections resistors in series from the
// drive point, with a capacitor to ground after each. A lumped load
// (the receiver's input capacitance) sits on the final node.
type Ladder struct {
	// R holds each section's series resistance (Ω), drive end first.
	R []float64
	// C holds the capacitance to ground at each section's far node
	// (F); C[len-1] includes the load.
	C []float64
}

// Sections returns the number of RC sections.
func (l *Ladder) Sections() int { return len(l.R) }

// TotalR returns the end-to-end resistance.
func (l *Ladder) TotalR() float64 {
	s := 0.0
	for _, r := range l.R {
		s += r
	}
	return s
}

// TotalC returns the total capacitance including the load.
func (l *Ladder) TotalC() float64 {
	s := 0.0
	for _, c := range l.C {
		s += c
	}
	return s
}

// FromSegment discretizes a wire segment into an n-section ladder.
// The segment's capacitance is split per DelayCaps: the quiet part is
// distributed as ground capacitance, while the coupled part is
// amplified by the supplied Miller factor before being distributed —
// golden sign-off analysis uses 2.0 (worst-case simultaneous opposite
// switching), while model-side Elmore baselines may use other values.
// load is the lumped receiver capacitance added at the far node.
func FromSegment(seg wire.Segment, n int, miller, load float64) (*Ladder, error) {
	if err := seg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("rcnet: need at least one section, got %d", n)
	}
	if load < 0 {
		return nil, fmt.Errorf("rcnet: negative load %g", load)
	}
	quiet, coupled := seg.DelayCaps()
	totalC := quiet + miller*coupled
	rSec := seg.Resistance() / float64(n)
	cSec := totalC / float64(n)
	lad := &Ladder{R: make([]float64, n), C: make([]float64, n)}
	for i := 0; i < n; i++ {
		lad.R[i] = rSec
		lad.C[i] = cSec
	}
	lad.C[n-1] += load
	return lad, nil
}

// Moments returns the first and second moments (m1, m2) of the voltage
// transfer function at the ladder's far node, for a step applied at
// the drive point. With H(s) = 1 + m1·s + m2·s² + …, m1 is the
// negated Elmore delay. The standard RC-tree recursion applies: for
// a ladder, the k-th node's m1 is −Σ_i R(path∩upstream)·C_i.
func (l *Ladder) Moments() (m1, m2 float64) {
	n := len(l.R)
	// First moment: m1(node k) = −Σ_j R_shared(k,j)·C_j. For the far
	// node, R_shared = cumulative resistance up to node j.
	//
	// Second moment via the two-pass method: m2(far) =
	// Σ_j R_shared(far,j)·C_j·(−m1(j)) where m1(j) is the first
	// moment at node j.
	cumR := make([]float64, n) // resistance from source to node i
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += l.R[i]
		cumR[i] = acc
	}
	// Prefix sums make every per-node m1 an O(1) combination:
	// m1(j) = −( Σ_{i≤j} cumR_i·C_i + cumR_j·Σ_{i>j} C_i ).
	prefRC := make([]float64, n+1) // Σ_{i<k} cumR_i·C_i
	prefC := make([]float64, n+1)  // Σ_{i<k} C_i
	for i := 0; i < n; i++ {
		prefRC[i+1] = prefRC[i] + cumR[i]*l.C[i]
		prefC[i+1] = prefC[i] + l.C[i]
	}
	totC := prefC[n]
	m1At := func(j int) float64 {
		return -(prefRC[j+1] + cumR[j]*(totC-prefC[j+1]))
	}
	m1 = m1At(n - 1)
	for j := 0; j < n; j++ {
		m2 += cumR[j] * l.C[j] * (-m1At(j))
	}
	return m1, m2
}

// ElmoreDelay returns the Elmore delay (−m1) at the far node.
func (l *Ladder) ElmoreDelay() float64 {
	m1, _ := l.Moments()
	return -m1
}

// D2MDelay returns the D2M delay metric (Alpert et al.),
// m1²/√m2 · ln 2, a well-known closed-form improvement over Elmore
// for 50% delay on RC lines; exposed for cross-checks of the golden
// transient engine.
func (l *Ladder) D2MDelay() float64 {
	m1, m2 := l.Moments()
	if m2 <= 0 {
		return -m1 * math.Ln2
	}
	return (m1 * m1) / math.Sqrt(m2) * math.Ln2
}
