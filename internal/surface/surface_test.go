package surface

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/tech"
	"repro/internal/variation"
	"repro/internal/wire"
)

func testKey(t *testing.T) Key {
	t.Helper()
	tc := tech.MustLookup("65nm")
	seg := wire.NewSegment(tc, 5e-3, wire.SWSS)
	return Key{
		TechHash:    TechHash(tc),
		Geom:        GeometryOf(seg),
		InputSlew:   100e-12,
		PowerWeight: 0.5,
		Space:       variation.DefaultSpace(),
	}
}

var dk = DesignKey{Size: 8, N: 10}

func TestTechHashDistinguishesDescriptors(t *testing.T) {
	a := tech.MustLookup("65nm")
	b := tech.MustLookup("45nm")
	if TechHash(a) == TechHash(b) {
		t.Fatal("distinct technologies hash equal")
	}
	// A private field-level edit moves the hash: the edited descriptor
	// can never alias the original's surface.
	c := a.Clone()
	c.Vdd += 0.01
	if TechHash(a) != TechHash(a.Clone()) {
		t.Fatal("identical descriptors hash differently")
	}
	if TechHash(a) == TechHash(c) {
		t.Fatal("edited descriptor reuses the original's hash")
	}
}

func TestLookupExactHit(t *testing.T) {
	c := New(Options{})
	k := testKey(t)
	s := Sample{Target: 400e-12, FailProb: 0.02, StdErr: 0.002, Samples: 4096}
	c.Record(k, dk, s)
	got, ok := c.Lookup(k, dk, 400e-12, Tolerance{})
	if !ok {
		t.Fatal("exact-target lookup missed")
	}
	if got.FailProb != s.FailProb || got.StdErr != s.StdErr || got.Samples != s.Samples || got.Interpolated {
		t.Fatalf("exact hit mangled: %+v", got)
	}
}

// TestLookupExactHitBudgetSpent pins the budget-spent rule: an
// exact-target recall whose stored run already spent the query's
// sample budget is served verbatim even when its band is wider than
// the tolerance — rerunning could only reproduce the same estimate —
// while interpolated answers are never admitted that way.
func TestLookupExactHitBudgetSpent(t *testing.T) {
	c := New(Options{})
	k := testKey(t)
	// StdErr 0.01 fails both the default tolerance (AbsErr 0.005,
	// RelErr 0.05 × 0.05 = 0.0025) and the explicit one below.
	c.Record(k, dk, Sample{Target: 400e-12, FailProb: 0.05, StdErr: 0.01, Samples: 512})
	c.Record(k, dk, Sample{Target: 420e-12, FailProb: 0.01, StdErr: 0.001, Samples: 512})

	if _, ok := c.Lookup(k, dk, 400e-12, Tolerance{}); ok {
		t.Fatal("loose exact hit served without a sample budget")
	}
	if _, ok := c.Lookup(k, dk, 400e-12, Tolerance{MinSamples: 513}); ok {
		t.Fatal("loose exact hit served below the sample budget")
	}
	got, ok := c.Lookup(k, dk, 400e-12, Tolerance{AbsErr: 0.002, MinSamples: 512})
	if !ok {
		t.Fatal("budget-spent exact hit missed")
	}
	if got.FailProb != 0.05 || got.StdErr != 0.01 || got.Samples != 512 || got.Interpolated {
		t.Fatalf("budget-spent exact hit mangled: %+v", got)
	}
	// The bracketing gap (0.04) dwarfs any tolerance here, so the
	// interpolated midpoint must still miss: MinSamples never admits
	// an interpolation.
	if _, ok := c.Lookup(k, dk, 410e-12, Tolerance{AbsErr: 0.002, MinSamples: 1}); ok {
		t.Fatal("interpolated answer admitted via the sample budget")
	}
}

func TestLookupInterpolatesWithConservativeBand(t *testing.T) {
	c := New(Options{})
	k := testKey(t)
	c.Record(k, dk, Sample{Target: 400e-12, FailProb: 0.030, StdErr: 0.002, Samples: 4096})
	c.Record(k, dk, Sample{Target: 420e-12, FailProb: 0.010, StdErr: 0.001, Samples: 2048})
	got, ok := c.Lookup(k, dk, 410e-12, Tolerance{AbsErr: 0.05})
	if !ok {
		t.Fatal("bracketed lookup missed")
	}
	if !got.Interpolated {
		t.Fatal("bracketed answer not marked interpolated")
	}
	if want := 0.020; math.Abs(got.FailProb-want) > 1e-12 {
		t.Fatalf("midpoint interpolation %g, want %g", got.FailProb, want)
	}
	// Conservative band: max stderr + the full bracketing gap.
	if want := 0.002 + 0.020; math.Abs(got.StdErr-want) > 1e-12 {
		t.Fatalf("conservative stderr %g, want %g", got.StdErr, want)
	}
	if got.Samples != 2048 {
		t.Fatalf("interpolated sample count %d, want the smaller endpoint 2048", got.Samples)
	}
}

func TestLookupRefusesExtrapolation(t *testing.T) {
	c := New(Options{})
	k := testKey(t)
	c.Record(k, dk, Sample{Target: 400e-12, FailProb: 0.02, StdErr: 0.002, Samples: 4096})
	c.Record(k, dk, Sample{Target: 420e-12, FailProb: 0.01, StdErr: 0.002, Samples: 4096})
	for _, target := range []float64{399e-12, 421e-12} {
		if _, ok := c.Lookup(k, dk, target, Tolerance{AbsErr: 1}); ok {
			t.Errorf("served an extrapolated answer at %g", target)
		}
	}
}

func TestLookupHonorsTolerance(t *testing.T) {
	c := New(Options{})
	k := testKey(t)
	// A wide bracketing gap makes the conservative band large.
	c.Record(k, dk, Sample{Target: 400e-12, FailProb: 0.40, StdErr: 0.004, Samples: 4096})
	c.Record(k, dk, Sample{Target: 500e-12, FailProb: 0.01, StdErr: 0.004, Samples: 4096})
	if _, ok := c.Lookup(k, dk, 450e-12, Tolerance{AbsErr: 0.01}); ok {
		t.Fatal("served an answer whose band exceeds AbsErr")
	}
	if got, ok := c.Lookup(k, dk, 450e-12, Tolerance{AbsErr: 0.5}); !ok || got.StdErr < 0.39 {
		t.Fatalf("loose tolerance refused (ok=%v, %+v)", ok, got)
	}
	// RelErr accepts when the band is small relative to the estimate.
	if _, ok := c.Lookup(k, dk, 450e-12, Tolerance{RelErr: 0.1}); ok {
		t.Fatal("RelErr 0.1 accepted a band twice the estimate")
	}
	if _, ok := c.Lookup(k, dk, 450e-12, Tolerance{RelErr: 3}); !ok {
		t.Fatal("RelErr 3 refused a band within tolerance")
	}
	// The zero tolerance falls back to the cache defaults, which this
	// wide gap cannot meet.
	if _, ok := c.Lookup(k, dk, 450e-12, Tolerance{}); ok {
		t.Fatal("default tolerance accepted a 0.4-wide band")
	}
}

func TestLookupMissesColdKeysAndCurves(t *testing.T) {
	c := New(Options{})
	k := testKey(t)
	if _, ok := c.Lookup(k, dk, 400e-12, Tolerance{}); ok {
		t.Fatal("cold cache hit")
	}
	c.Record(k, dk, Sample{Target: 400e-12, FailProb: 0.02, StdErr: 0.002, Samples: 4096})
	if _, ok := c.Lookup(k, DesignKey{Size: 12, N: 8}, 400e-12, Tolerance{}); ok {
		t.Fatal("unknown curve hit")
	}
	other := k
	other.TechHash++
	if _, ok := c.Lookup(other, dk, 400e-12, Tolerance{}); ok {
		t.Fatal("different tech hash hit")
	}
}

func TestRecordKeepsTighterEstimate(t *testing.T) {
	c := New(Options{})
	k := testKey(t)
	c.Record(k, dk, Sample{Target: 400e-12, FailProb: 0.02, StdErr: 0.001, Samples: 65536})
	// A cheaper probe at the same target must not clobber the
	// expensive run.
	c.Record(k, dk, Sample{Target: 400e-12, FailProb: 0.05, StdErr: 0.02, Samples: 128})
	got, ok := c.Lookup(k, dk, 400e-12, Tolerance{AbsErr: 1})
	if !ok || got.Samples != 65536 || got.FailProb != 0.02 {
		t.Fatalf("cheap probe clobbered the stored run: %+v", got)
	}
	// An equally-sized rerun replaces (fresher data wins on ties).
	c.Record(k, dk, Sample{Target: 400e-12, FailProb: 0.021, StdErr: 0.001, Samples: 65536})
	if got, _ := c.Lookup(k, dk, 400e-12, Tolerance{AbsErr: 1}); got.FailProb != 0.021 {
		t.Fatalf("equal-size rerun did not replace: %+v", got)
	}
}

func TestRecordRejectsDegenerateSamples(t *testing.T) {
	c := New(Options{})
	k := testKey(t)
	for _, s := range []Sample{
		{Target: 0, FailProb: 0.1, StdErr: 0.01, Samples: 100},
		{Target: -1e-12, FailProb: 0.1, StdErr: 0.01, Samples: 100},
		{Target: math.NaN(), FailProb: 0.1, StdErr: 0.01, Samples: 100},
		{Target: 1e-12, FailProb: math.NaN(), StdErr: 0.01, Samples: 100},
		{Target: 1e-12, FailProb: 0.1, StdErr: math.Inf(1), Samples: 100},
		{Target: 1e-12, FailProb: 0.1, StdErr: 0.01, Samples: 0},
	} {
		c.Record(k, dk, s)
	}
	if st := c.Stats(); st.Points != 0 || st.Records != 0 {
		t.Fatalf("degenerate samples were recorded: %+v", st)
	}
}

func TestCurveCapReplacesNearest(t *testing.T) {
	c := New(Options{MaxPointsPerCurve: 4})
	k := testKey(t)
	for i := 0; i < 4; i++ {
		c.Record(k, dk, Sample{Target: float64(i+1) * 100e-12, FailProb: 0.01, StdErr: 0.001, Samples: 1024})
	}
	c.Record(k, dk, Sample{Target: 310e-12, FailProb: 0.5, StdErr: 0.001, Samples: 1024})
	if st := c.Stats(); st.Points != 4 {
		t.Fatalf("cap not enforced: %+v", st)
	}
	// The 300 ps point (nearest to 310 ps) was replaced.
	if got, ok := c.Lookup(k, dk, 310e-12, Tolerance{AbsErr: 1}); !ok || got.FailProb != 0.5 {
		t.Fatalf("replacement point not stored: ok=%v %+v", ok, got)
	}
	if _, ok := c.Lookup(k, dk, 300e-12, Tolerance{AbsErr: 1}); !ok {
		t.Fatal("299-401 ps bracketing lost") // 310 now brackets 300 via 200/310
	}
}

func TestEntryCapDropsNewKeys(t *testing.T) {
	c := New(Options{MaxEntries: 1})
	k := testKey(t)
	c.Record(k, dk, Sample{Target: 400e-12, FailProb: 0.02, StdErr: 0.002, Samples: 4096})
	other := k
	other.TechHash++
	c.Record(other, dk, Sample{Target: 400e-12, FailProb: 0.02, StdErr: 0.002, Samples: 4096})
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entry cap not enforced: %+v", st)
	}
	if _, ok := c.Lookup(k, dk, 400e-12, Tolerance{}); !ok {
		t.Fatal("existing entry lost to a capped insert")
	}
}

func TestDesignMemo(t *testing.T) {
	c := New(Options{})
	k := testKey(t)
	if _, ok := c.DesignFor(k); ok {
		t.Fatal("cold design memo hit")
	}
	c.RecordDesign(k, Design{Size: 8, N: 10, Delay: 350e-12})
	d, ok := c.DesignFor(k)
	if !ok || d.Size != 8 || d.N != 10 || d.Delay != 350e-12 {
		t.Fatalf("design memo mangled: ok=%v %+v", ok, d)
	}
}

func TestInvalidateByTechHash(t *testing.T) {
	c := New(Options{})
	k := testKey(t)
	other := k
	other.TechHash++
	c.Record(k, dk, Sample{Target: 400e-12, FailProb: 0.02, StdErr: 0.002, Samples: 4096})
	c.Record(other, dk, Sample{Target: 400e-12, FailProb: 0.02, StdErr: 0.002, Samples: 4096})
	if v := c.Version(); v != 0 {
		t.Fatalf("fresh cache at version %d", v)
	}
	if dropped := c.Invalidate(k.TechHash); dropped != 1 {
		t.Fatalf("dropped %d entries, want 1", dropped)
	}
	if _, ok := c.Lookup(k, dk, 400e-12, Tolerance{}); ok {
		t.Fatal("invalidated entry still served")
	}
	if _, ok := c.Lookup(other, dk, 400e-12, Tolerance{}); !ok {
		t.Fatal("unrelated tech hash was dropped too")
	}
	if v := c.Version(); v != 1 {
		t.Fatalf("version %d after invalidation, want 1", v)
	}
	if c.Invalidate(12345) != 0 {
		t.Fatal("dropped entries for an unknown hash")
	}
	if v := c.Version(); v != 1 {
		t.Fatal("no-op invalidation bumped the version")
	}
	if c.InvalidateAll() != 1 {
		t.Fatal("InvalidateAll miscounted")
	}
	if st := c.Stats(); st.Entries != 0 || st.Invalidations != 2 {
		t.Fatalf("post-flush stats: %+v", st)
	}
}

// TestConcurrentRecordLookup drives records, lookups, design memos, and
// invalidations from many goroutines; run under -race in CI, it is the
// cache's data-race acceptance test.
func TestConcurrentRecordLookup(t *testing.T) {
	c := New(Options{MaxEntries: 8, MaxPointsPerCurve: 16})
	k := testKey(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := k
			key.TechHash += uint64(g % 4)
			d := DesignKey{Size: float64(4 + g%3*4), N: 10}
			for i := 0; i < 500; i++ {
				target := float64(300+i%50) * 1e-12
				switch i % 4 {
				case 0:
					c.Record(key, d, Sample{Target: target, FailProb: 0.02, StdErr: 0.002, Samples: 1024 + i})
				case 1:
					c.Lookup(key, d, target, Tolerance{AbsErr: 0.01})
				case 2:
					c.RecordDesign(key, Design{Size: d.Size, N: d.N, Delay: target})
					c.DesignFor(key)
				case 3:
					if i%100 == 3 {
						c.Invalidate(key.TechHash)
					}
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestLookupLatency pins the headline property: a warm lookup is a map
// probe plus a binary search, far under the 10 µs warm-answer budget.
// The bound is generous (2 µs/op averaged over 10k lookups) so CI
// noise cannot flake it while a regression to an O(curve) scan or a
// lock convoy still trips.
func TestLookupLatency(t *testing.T) {
	if raceEnabled {
		t.Skip("latency bound is meaningless under the race detector's instrumentation")
	}
	c := New(Options{})
	k := testKey(t)
	for i := 0; i < 64; i++ {
		c.Record(k, dk, Sample{Target: float64(300+i) * 1e-12, FailProb: 0.02, StdErr: 0.002, Samples: 4096})
	}
	const iters = 10000
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, ok := c.Lookup(k, dk, float64(300+i%64)*1e-12, Tolerance{AbsErr: 0.01}); !ok {
			t.Fatal("warm lookup missed")
		}
	}
	if per := time.Since(start) / iters; per > 2*time.Microsecond {
		t.Fatalf("warm lookup took %v/op, want <2µs", per)
	}
}
