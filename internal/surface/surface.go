// Package surface is the yield-response-surface cache behind the
// warm-start serving path: a versioned, concurrency-safe memo of
// completed Monte Carlo yield estimates, organized so that repeated
// production traffic — the same technology node, the same link
// geometry, nearby clock targets — stops costing samples at all.
//
// The cache exploits the smoothness the importance-sampling literature
// leans on (yield varies smoothly in sizing and clock target): each
// completed estimation contributes one point (target → fail prob,
// stderr) to the curve of its (repeater size, count) on the surface of
// its link class, and a later query at a nearby target is answered by
// local interpolation between its bracketing points. Because the true
// fail-probability curve is monotone non-increasing in the target, the
// interpolation error is bounded by the bracketing gap |p0 − p1|; the
// cache folds that bound into the answer's reported standard error, so
// a warm answer always carries a conservative confidence band, and is
// only served when that band meets the caller's tolerance. Anything
// else is a miss, and the caller falls back to (and refreshes the
// surface from) the full Monte Carlo kernel.
//
// Keys are value types that include a hash of the full technology
// descriptor, so a different (or re-calibrated and re-registered)
// technology can never alias a stale surface; Invalidate additionally
// drops every entry of a tech hash and bumps the cache version for
// observability.
package surface

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/estimator"
	"repro/internal/obs"
	"repro/internal/tech"
	"repro/internal/variation"
	"repro/internal/wire"
)

// Cache-wide observability: warm answers served, queries that fell
// through to the kernel, points memoized, and entries dropped by
// explicit invalidation.
var (
	metHits        = obs.NewCounter("surface.hits")
	metMisses      = obs.NewCounter("surface.misses")
	metRecords     = obs.NewCounter("surface.records")
	metInvalidated = obs.NewCounter("surface.invalidated_entries")
	// metCrossEstimator counts interpolations refused because the
	// bracketing points came from different estimators — numbers two
	// rungs of the ladder produced are not one smooth curve, and
	// blending them would hide an estimator-disagreement signal.
	metCrossEstimator = obs.NewCounter("surface.cross_estimator_refusals")
)

// Geometry is the comparable geometric identity of a routed segment:
// everything wire.Segment carries except the technology pointer (the
// technology participates in the Key through its hash instead, so two
// registrations of identical descriptors share a surface and a changed
// descriptor can never alias a stale one).
type Geometry struct {
	Layer          tech.WireLayer
	Style          wire.Style
	Length         float64
	Width, Spacing float64
}

// GeometryOf extracts the comparable geometry of a segment.
func GeometryOf(seg wire.Segment) Geometry {
	return Geometry{
		Layer:   seg.Layer,
		Style:   seg.Style,
		Length:  seg.Length,
		Width:   seg.Width,
		Spacing: seg.Spacing,
	}
}

// Key identifies one response surface: a class of yield queries whose
// estimates are mutually interpolable. Everything that changes the
// estimated quantity is part of the key — the technology (by hash),
// the link geometry and style, the input slew and power weight that
// shape the designed buffering, and the (scaled) variation space.
type Key struct {
	// TechHash fingerprints the full technology descriptor; see
	// TechHash.
	TechHash uint64
	// Geom is the routed segment's comparable geometry.
	Geom Geometry
	// InputSlew is the line input slew in seconds.
	InputSlew float64
	// PowerWeight is the buffering objective's power weight.
	PowerWeight float64
	// Space is the variation model the estimates were drawn under,
	// after any sigma scaling.
	Space variation.Space
}

// techHashes memoizes TechHash per descriptor pointer: the reflective
// formatting below costs ~10 µs, which would dominate the warm-query
// budget if paid per lookup. Descriptors are treated as immutable once
// hashed — edit via Clone (a fresh pointer hashes fresh), never in
// place.
var techHashes sync.Map // *tech.Technology → uint64

// TechHash fingerprints a technology descriptor: FNV-1a over the
// printed value of every field. Two descriptors hash equal iff their
// parameters are identical, so the hash doubles as the surface's
// version key — recalibrating a technology (registering an edited
// Clone) moves its surfaces to a fresh key instead of serving stale
// interpolations.
func TechHash(t *tech.Technology) uint64 {
	if h, ok := techHashes.Load(t); ok {
		return h.(uint64)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", *t)
	sum := h.Sum64()
	techHashes.Store(t, sum)
	return sum
}

// DesignKey identifies one buffering solution's curve on a surface.
type DesignKey struct {
	// Size is the repeater drive strength in unit-inverter multiples.
	Size float64
	// N is the repeater count.
	N int
}

// Sample is one memoized Monte Carlo estimate: the fail probability
// and its standard error at one delay target.
type Sample struct {
	// Target is the delay constraint in seconds.
	Target float64
	// FailProb and StdErr are the completed run's estimate.
	FailProb, StdErr float64
	// Samples is the Monte Carlo sample count behind the estimate.
	Samples int
	// Shifted records whether the estimate was importance sampled.
	Shifted bool
	// Estimator names the ladder rung that produced the point.
	// Record normalizes an empty value from Shifted (pre-ladder
	// callers), so stored points always carry a concrete rung and
	// Lookup can refuse to interpolate across rungs.
	Estimator estimator.Kind
}

// Design memoizes the nominal weighted-objective buffering solution of
// a link class, so a warm query can be answered without re-running the
// candidate sweep.
type Design struct {
	Size  float64
	N     int
	Delay float64 // nominal delay (s)
}

// Tolerance is the caller's accuracy demand on a warm answer, mirroring
// the estimator's stopping-rule semantics: AbsErr bounds the answer's
// conservative standard error directly, RelErr bounds it relative to
// the interpolated fail probability. Either rule accepting serves the
// answer. A zero Tolerance falls back to the cache's conservative
// defaults (Options.AbsErr / Options.RelErr).
type Tolerance struct {
	RelErr, AbsErr float64
	// MinSamples, when positive, additionally accepts an exact-target
	// hit whose stored sample count reaches it even when the stored
	// band is wider than the tolerance: a memoized run that already
	// spent the query's full sample budget cannot be improved by
	// rerunning it, so refusing the recall would only repay the
	// Monte Carlo cost for the same estimate. Interpolated answers
	// are never admitted this way — their band must meet the
	// tolerance on its own.
	MinSamples int
	// Estimator, when not Auto, restricts the answer to points that
	// rung produced: a query that pinned an estimator must not be
	// served numbers from a different one.
	Estimator estimator.Kind
}

// Estimate is a warm answer: an interpolated fail probability with a
// conservative uncertainty that folds the bracketing gap into the
// standard error.
type Estimate struct {
	// FailProb is the interpolated fail probability.
	FailProb float64
	// StdErr is the conservative standard error: the larger bracketing
	// stderr plus the full bracketing gap |p0 − p1| (the monotone
	// interpolation error bound). For an exact-target hit it is the
	// stored stderr.
	StdErr float64
	// Samples is the memoized sample count backing the answer (the
	// smaller of the two bracketing counts when interpolated).
	Samples int
	// Shifted reports the stored estimator for exact hits; it is
	// false for interpolated answers (the interpolation, not one
	// estimator run, produced the number).
	Shifted bool
	// Interpolated distinguishes a between-points answer from an
	// exact-target hit.
	Interpolated bool
	// Estimator is the rung behind the answer (both bracketing points'
	// rung when interpolated — cross-rung interpolation is refused).
	Estimator estimator.Kind
}

// CI95 returns the half-width of the conservative 95% band.
func (e Estimate) CI95() float64 { return 1.96 * e.StdErr }

// Options configures a Cache. The zero value selects the documented
// defaults.
type Options struct {
	// MaxEntries caps the number of link classes (keys); inserts
	// beyond it are dropped (never evicted mid-flight, so a warm
	// entry can't vanish under a reader). Default 4096.
	MaxEntries int
	// MaxPointsPerCurve caps each (size, count) curve; a record into a
	// full curve replaces the nearest-by-target point, keeping the
	// curve's coverage spread. Default 128.
	MaxPointsPerCurve int
	// AbsErr and RelErr are the default tolerance applied when a
	// lookup passes a zero Tolerance: conservative bounds chosen so a
	// default warm answer is at least as tight as a default-budget
	// (4096-sample) Monte Carlo run's worst-case standard error.
	// Defaults 0.005 and 0.05.
	AbsErr, RelErr float64
}

func (o Options) withDefaults() Options {
	if o.MaxEntries == 0 {
		o.MaxEntries = 4096
	}
	if o.MaxPointsPerCurve == 0 {
		o.MaxPointsPerCurve = 128
	}
	if o.AbsErr == 0 {
		o.AbsErr = 0.005
	}
	if o.RelErr == 0 {
		o.RelErr = 0.05
	}
	return o
}

// Stats is a point-in-time view of one cache's counters.
type Stats struct {
	Entries, Points                      int
	Hits, Misses, Records, Invalidations int64
}

// entry is one link class's surface: the memoized nominal design and
// one curve per evaluated (size, count).
type entry struct {
	mu     sync.Mutex
	design *Design
	curves map[DesignKey][]Sample // each sorted by Target, targets unique
}

// Cache is a concurrency-safe yield-response-surface cache. The zero
// value is not usable; construct with New.
type Cache struct {
	opts Options

	mu      sync.RWMutex
	entries map[Key]*entry

	version                       atomic.Uint64
	hits, misses, records, invals atomic.Int64
}

// New builds an empty cache.
func New(o Options) *Cache {
	return &Cache{opts: o.withDefaults(), entries: map[Key]*entry{}}
}

// Version returns the invalidation generation: it starts at 0 and
// bumps once per Invalidate/InvalidateAll call that dropped anything,
// so operators can tell a cold cache from a freshly flushed one.
func (c *Cache) Version() uint64 { return c.version.Load() }

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.RLock()
	entries := len(c.entries)
	points := 0
	for _, e := range c.entries {
		e.mu.Lock()
		for _, curve := range e.curves {
			points += len(curve)
		}
		e.mu.Unlock()
	}
	c.mu.RUnlock()
	return Stats{
		Entries: entries, Points: points,
		Hits: c.hits.Load(), Misses: c.misses.Load(),
		Records: c.records.Load(), Invalidations: c.invals.Load(),
	}
}

// lookupEntry returns the key's entry, or nil without creating one.
func (c *Cache) lookupEntry(k Key) *entry {
	c.mu.RLock()
	e := c.entries[k]
	c.mu.RUnlock()
	return e
}

// ensureEntry returns the key's entry, creating it if the cap allows;
// nil when the cache is full and the key is new.
func (c *Cache) ensureEntry(k Key) *entry {
	if e := c.lookupEntry(k); e != nil {
		return e
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[k]; e != nil {
		return e
	}
	if len(c.entries) >= c.opts.MaxEntries {
		return nil
	}
	e := &entry{curves: map[DesignKey][]Sample{}}
	c.entries[k] = e
	return e
}

// RecordDesign memoizes the nominal weighted-objective design of a
// link class, replacing any previous memo.
func (c *Cache) RecordDesign(k Key, d Design) {
	e := c.ensureEntry(k)
	if e == nil {
		return
	}
	e.mu.Lock()
	e.design = &d
	e.mu.Unlock()
}

// DesignFor returns the memoized nominal design of a link class.
func (c *Cache) DesignFor(k Key) (Design, bool) {
	e := c.lookupEntry(k)
	if e == nil {
		return Design{}, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.design == nil {
		return Design{}, false
	}
	return *e.design, true
}

// Record memoizes one completed estimate on the curve of (k, dk).
// A sample at an already-stored target replaces the stored point when
// it carries at least as many Monte Carlo samples (fresher, tighter
// data wins; a cheap probe never overwrites an expensive run). On a
// full curve the nearest-by-target point is replaced. Samples with a
// non-finite or non-positive target, or non-finite estimate fields,
// are ignored.
func (c *Cache) Record(k Key, dk DesignKey, s Sample) {
	if !(s.Target > 0) || math.IsInf(s.Target, 0) ||
		math.IsNaN(s.FailProb) || math.IsNaN(s.StdErr) || math.IsInf(s.StdErr, 0) || s.Samples <= 0 {
		return
	}
	if s.Estimator == estimator.Auto {
		// Pre-ladder callers only distinguished shifted from plain.
		if s.Shifted {
			s.Estimator = estimator.ISLE
		} else {
			s.Estimator = estimator.MC
		}
	}
	e := c.ensureEntry(k)
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	curve := e.curves[dk]
	i := sort.Search(len(curve), func(i int) bool { return curve[i].Target >= s.Target })
	switch {
	case i < len(curve) && curve[i].Target == s.Target:
		if s.Samples >= curve[i].Samples {
			curve[i] = s
		} else {
			return
		}
	case len(curve) >= c.opts.MaxPointsPerCurve:
		// Full: replace the nearest point so coverage keeps its spread.
		j := i
		if j == len(curve) || (i > 0 && s.Target-curve[i-1].Target <= curve[i].Target-s.Target) {
			j = i - 1
		}
		curve[j] = s
		sort.Slice(curve, func(a, b int) bool { return curve[a].Target < curve[b].Target })
	default:
		curve = append(curve, Sample{})
		copy(curve[i+1:], curve[i:])
		curve[i] = s
		e.curves[dk] = curve
	}
	c.records.Add(1)
	metRecords.Inc()
}

// accepted applies the tolerance (or the cache defaults) to a
// candidate answer.
func (c *Cache) accepted(tol Tolerance, p, se float64) bool {
	if tol.AbsErr == 0 && tol.RelErr == 0 {
		tol = Tolerance{AbsErr: c.opts.AbsErr, RelErr: c.opts.RelErr}
	}
	if tol.AbsErr > 0 && se <= tol.AbsErr {
		return true
	}
	if tol.RelErr > 0 && p > 0 && se <= tol.RelErr*p {
		return true
	}
	return false
}

// Lookup answers a yield query from the surface when it can do so
// within the tolerance: an exact-target hit returns the memoized
// estimate (also served, regardless of band, when the stored run
// already spent tol.MinSamples — see Tolerance), a target strictly
// inside a bracketing pair returns the linear interpolation with the
// conservative band (stderr plus the full bracketing gap). Queries
// outside the curve's target range, on unknown curves, or whose
// conservative band exceeds the tolerance miss.
func (c *Cache) Lookup(k Key, dk DesignKey, target float64, tol Tolerance) (Estimate, bool) {
	e := c.lookupEntry(k)
	if e == nil {
		return c.miss()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	curve := e.curves[dk]
	if len(curve) == 0 {
		return c.miss()
	}
	i := sort.Search(len(curve), func(i int) bool { return curve[i].Target >= target })
	if i < len(curve) && curve[i].Target == target {
		s := curve[i]
		if tol.Estimator != estimator.Auto && s.Estimator != tol.Estimator {
			return c.miss()
		}
		budgetSpent := tol.MinSamples > 0 && s.Samples >= tol.MinSamples
		if !budgetSpent && !c.accepted(tol, s.FailProb, s.StdErr) {
			return c.miss()
		}
		return c.hit(Estimate{FailProb: s.FailProb, StdErr: s.StdErr, Samples: s.Samples, Shifted: s.Shifted, Estimator: s.Estimator})
	}
	if i == 0 || i == len(curve) {
		// Outside the evaluated range: extrapolation has no error
		// bound, so it is never served.
		return c.miss()
	}
	s0, s1 := curve[i-1], curve[i]
	if s0.Estimator != s1.Estimator {
		metCrossEstimator.Inc()
		return c.miss()
	}
	if tol.Estimator != estimator.Auto && s0.Estimator != tol.Estimator {
		return c.miss()
	}
	u := (target - s0.Target) / (s1.Target - s0.Target)
	p := s0.FailProb + u*(s1.FailProb-s0.FailProb)
	se := math.Max(s0.StdErr, s1.StdErr) + math.Abs(s1.FailProb-s0.FailProb)
	if !c.accepted(tol, p, se) {
		return c.miss()
	}
	n := s0.Samples
	if s1.Samples < n {
		n = s1.Samples
	}
	return c.hit(Estimate{FailProb: p, StdErr: se, Samples: n, Interpolated: true, Estimator: s0.Estimator})
}

func (c *Cache) hit(e Estimate) (Estimate, bool) {
	c.hits.Add(1)
	metHits.Inc()
	return e, true
}

func (c *Cache) miss() (Estimate, bool) {
	c.misses.Add(1)
	metMisses.Inc()
	return Estimate{}, false
}

// Invalidate drops every entry whose key carries the tech hash,
// returning the number dropped and bumping the version when any were.
func (c *Cache) Invalidate(techHash uint64) int {
	c.mu.Lock()
	dropped := 0
	for k := range c.entries {
		if k.TechHash == techHash {
			delete(c.entries, k)
			dropped++
		}
	}
	c.mu.Unlock()
	c.noteInvalidated(dropped)
	return dropped
}

// InvalidateAll drops every entry, returning the number dropped.
func (c *Cache) InvalidateAll() int {
	c.mu.Lock()
	dropped := len(c.entries)
	c.entries = map[Key]*entry{}
	c.mu.Unlock()
	c.noteInvalidated(dropped)
	return dropped
}

func (c *Cache) noteInvalidated(dropped int) {
	if dropped == 0 {
		return
	}
	c.version.Add(1)
	c.invals.Add(int64(dropped))
	metInvalidated.Add(int64(dropped))
}
