//go:build !race

package surface

// raceEnabled reports whether the race detector is compiled in. The
// warm-lookup latency guard skips under -race: the detector's
// instrumentation multiplies per-op cost and would flake the bound.
const raceEnabled = false
