package surface

import (
	"testing"

	"repro/internal/estimator"
)

// TestRecordNormalizesEstimator pins the back-compat rule: pre-ladder
// callers that only set Shifted get their points stored under the
// matching concrete rung.
func TestRecordNormalizesEstimator(t *testing.T) {
	c := New(Options{})
	k := testKey(t)
	c.Record(k, dk, Sample{Target: 400e-12, FailProb: 0.02, StdErr: 0.001, Samples: 4096})
	c.Record(k, dk, Sample{Target: 420e-12, FailProb: 0.002, StdErr: 0.0002, Samples: 4096, Shifted: true})

	got, ok := c.Lookup(k, dk, 400e-12, Tolerance{})
	if !ok || got.Estimator != estimator.MC {
		t.Fatalf("plain point not normalized to mc: ok=%v %+v", ok, got)
	}
	got, ok = c.Lookup(k, dk, 420e-12, Tolerance{})
	if !ok || got.Estimator != estimator.ISLE {
		t.Fatalf("shifted point not normalized to isle: ok=%v %+v", ok, got)
	}
}

// TestLookupRefusesCrossEstimatorInterpolation: points two different
// rungs produced are not one smooth curve, so a target bracketed by a
// QMC point and an MC point must miss — while the same pair under one
// rung interpolates fine.
func TestLookupRefusesCrossEstimatorInterpolation(t *testing.T) {
	c := New(Options{})
	k := testKey(t)
	c.Record(k, dk, Sample{Target: 400e-12, FailProb: 0.020, StdErr: 0.001, Samples: 4096, Estimator: estimator.MC})
	c.Record(k, dk, Sample{Target: 420e-12, FailProb: 0.019, StdErr: 0.001, Samples: 4096, Estimator: estimator.QMC})

	before := metCrossEstimator.Value()
	if _, ok := c.Lookup(k, dk, 410e-12, Tolerance{AbsErr: 0.5}); ok {
		t.Fatal("interpolated across estimators")
	}
	if metCrossEstimator.Value() != before+1 {
		t.Fatal("cross-estimator refusal not counted")
	}

	// Re-record the second point under the first rung (more samples so
	// the replacement wins): the same query now interpolates.
	c.Record(k, dk, Sample{Target: 420e-12, FailProb: 0.019, StdErr: 0.001, Samples: 8192, Estimator: estimator.MC})
	got, ok := c.Lookup(k, dk, 410e-12, Tolerance{AbsErr: 0.5})
	if !ok || !got.Interpolated || got.Estimator != estimator.MC {
		t.Fatalf("same-estimator interpolation broken: ok=%v %+v", ok, got)
	}
}

// TestLookupHonorsPinnedEstimator: a query that pinned a rung is never
// served a point a different rung produced, exact hit or interpolation.
func TestLookupHonorsPinnedEstimator(t *testing.T) {
	c := New(Options{})
	k := testKey(t)
	c.Record(k, dk, Sample{Target: 400e-12, FailProb: 0.020, StdErr: 0.001, Samples: 4096, Estimator: estimator.QMC})
	c.Record(k, dk, Sample{Target: 420e-12, FailProb: 0.019, StdErr: 0.001, Samples: 4096, Estimator: estimator.QMC})

	if _, ok := c.Lookup(k, dk, 400e-12, Tolerance{AbsErr: 0.5, Estimator: estimator.AIS}); ok {
		t.Fatal("exact hit served across a pinned estimator")
	}
	if _, ok := c.Lookup(k, dk, 410e-12, Tolerance{AbsErr: 0.5, Estimator: estimator.AIS}); ok {
		t.Fatal("interpolation served across a pinned estimator")
	}
	got, ok := c.Lookup(k, dk, 400e-12, Tolerance{AbsErr: 0.5, Estimator: estimator.QMC})
	if !ok || got.Estimator != estimator.QMC {
		t.Fatalf("matching pinned estimator refused: ok=%v %+v", ok, got)
	}
}
