package liberty

import "fmt"

// FO4 returns the fanout-of-4 inverter delay of the library: the
// worst-edge delay of an inverter driving four copies of itself, with
// the input slew iterated to its self-consistent fixed point (the slew
// a chain of FO4 stages converges to). FO4 is the canonical
// technology speed metric; it anchors the characterized library
// against physical expectations (≈ 25–45 ps at 90 nm high-performance,
// shrinking with each node, slower for low-power flavors).
func (l *Library) FO4(size float64) (float64, error) {
	cell := l.Cell(fmt.Sprintf("INVD%g", size))
	if cell == nil {
		return 0, fmt.Errorf("liberty: no INVD%g in library", size)
	}
	load := 4 * cell.InputCap
	// Fixed-point slew iteration: start from the smallest
	// characterized slew and relax.
	slew := cell.DelayRise.SlewAxis[0]
	for i := 0; i < 50; i++ {
		next := (cell.OutSlew(true, slew, load) + cell.OutSlew(false, slew, load)) / 2
		if next <= 0 {
			return 0, fmt.Errorf("liberty: FO4 slew iteration diverged")
		}
		if diff := next - slew; diff < 1e-15 && diff > -1e-15 {
			slew = next
			break
		}
		slew = next
	}
	return cell.WorstDelay(slew, load), nil
}
