package liberty

import (
	"testing"

	"repro/internal/tech"
)

func TestFO4Magnitude(t *testing.T) {
	lib, err := Get(tech.MustLookup("90nm"))
	if err != nil {
		t.Fatal(err)
	}
	fo4, err := lib.FO4(8)
	if err != nil {
		t.Fatal(err)
	}
	// 90nm HP FO4 is canonically a few tens of ps.
	if fo4 < 10e-12 || fo4 > 80e-12 {
		t.Fatalf("90nm FO4 = %.1f ps outside the physical band", fo4*1e12)
	}
}

func TestFO4SizeIndependent(t *testing.T) {
	// FO4 is a relative metric: nearly the same for any drive
	// strength.
	lib, err := Get(tech.MustLookup("90nm"))
	if err != nil {
		t.Fatal(err)
	}
	a, err := lib.FO4(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := lib.FO4(16)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := a / b; ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("FO4 not size-independent: D4=%.2fps D16=%.2fps", a*1e12, b*1e12)
	}
}

func TestFO4ScalingTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("characterizes several libraries")
	}
	fo4 := func(name string) float64 {
		lib, err := Get(tech.MustLookup(name))
		if err != nil {
			t.Fatal(err)
		}
		v, err := lib.FO4(8)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	f90, f65 := fo4("90nm"), fo4("65nm")
	if !(f65 < f90) {
		t.Errorf("FO4 did not improve 90→65nm: %.2f → %.2f ps", f90*1e12, f65*1e12)
	}
	// The 45nm node is a low-power flavor: its FO4 is allowed to be
	// slower than 65nm HP, but must still beat 90nm HP's.
	f45 := fo4("45nm")
	if !(f45 < f90) {
		t.Errorf("45nm LP FO4 %.2f ps not below 90nm HP %.2f ps", f45*1e12, f90*1e12)
	}
}

func TestFO4UnknownSize(t *testing.T) {
	lib, err := Get(tech.MustLookup("90nm"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.FO4(7); err == nil {
		t.Fatal("unknown size accepted")
	}
}
