package liberty

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/tech"
)

// smallLib builds a quick two-cell library for round-trip tests.
func smallLib(t *testing.T) *Library {
	t.Helper()
	lib, err := Characterize(tech.MustLookup("90nm"), CharOpts{
		Sizes:         []float64{4, 8},
		SlewAxis:      []float64{50e-12, 200e-12, 400e-12},
		LoadMultiples: []float64{3, 20, 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestLibertyRoundTrip(t *testing.T) {
	lib := smallLib(t)
	var buf bytes.Buffer
	if err := WriteLibrary(&buf, lib); err != nil {
		t.Fatal(err)
	}
	got, err := ParseLibrary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%v\n--- file ---\n%s", err, buf.String())
	}
	if got.Tech.Name != "90nm" {
		t.Fatalf("tech %q", got.Tech.Name)
	}
	if len(got.Cells) != len(lib.Cells) {
		t.Fatalf("cell count %d vs %d", len(got.Cells), len(lib.Cells))
	}
	relClose := func(a, b float64) bool {
		den := math.Max(math.Abs(a), math.Abs(b))
		return den == 0 || math.Abs(a-b) <= 1e-9*den
	}
	for _, orig := range lib.Cells {
		back := got.Cell(orig.Name)
		if back == nil {
			t.Fatalf("cell %s lost", orig.Name)
		}
		if back.Kind != orig.Kind || back.Size != orig.Size {
			t.Fatalf("cell %s identity changed", orig.Name)
		}
		if !relClose(back.InputCap, orig.InputCap) ||
			!relClose(back.Leakage, orig.Leakage) ||
			!relClose(back.Area, orig.Area) ||
			!relClose(back.WN, orig.WN) || !relClose(back.WP, orig.WP) {
			t.Fatalf("cell %s statics changed", orig.Name)
		}
		for _, pair := range []struct{ a, b *Table }{
			{orig.DelayRise, back.DelayRise},
			{orig.DelayFall, back.DelayFall},
			{orig.SlewRise, back.SlewRise},
			{orig.SlewFall, back.SlewFall},
		} {
			if len(pair.a.SlewAxis) != len(pair.b.SlewAxis) || len(pair.a.LoadAxis) != len(pair.b.LoadAxis) {
				t.Fatalf("cell %s table axes changed", orig.Name)
			}
			for i := range pair.a.Values {
				for j := range pair.a.Values[i] {
					if !relClose(pair.a.Values[i][j], pair.b.Values[i][j]) {
						t.Fatalf("cell %s table value drifted: %g vs %g",
							orig.Name, pair.a.Values[i][j], pair.b.Values[i][j])
					}
				}
			}
		}
	}
}

func TestParsedLibraryIsUsable(t *testing.T) {
	lib := smallLib(t)
	var buf bytes.Buffer
	if err := WriteLibrary(&buf, lib); err != nil {
		t.Fatal(err)
	}
	got, err := ParseLibrary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Lookup semantics survive the round trip.
	c := got.Cell("INVD8")
	if c == nil {
		t.Fatal("INVD8 missing")
	}
	d := c.Delay(true, 200e-12, 20*c.InputCap)
	if d <= 0 || d > 1e-9 {
		t.Fatalf("implausible delay %g from parsed library", d)
	}
}

func TestParseLibraryErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"not a library", "cell (X) { }"},
		{"unterminated", "library (l) { technology : \"90nm\";"},
		{"no tech", "library (l) { cell (INVD4) { } }"},
		{"unknown tech", `library (l) { technology : "7nm"; cell (INVD4) { } }`},
		{"no cells", `library (l) { technology : "90nm"; }`},
		{"bad kind", `library (l) { technology : "90nm"; cell (NAND2) { } }`},
		{"unterminated string", `library (l) { technology : "90nm`},
		{"unterminated comment", `library (l) { /* nope `},
	}
	for _, c := range cases {
		if _, err := ParseLibrary(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParseLibraryMissingTables(t *testing.T) {
	in := `library (l) {
  technology : "90nm";
  cell (INVD4) {
    area : 4.7; cell_leakage_power : 1e-7; drive_strength : 4;
    repro_wn : 1.8e-6; repro_wp : 3.6e-6;
    pin (A) { direction : input; capacitance : 9.7; }
    pin (Y) { direction : output; timing () { related_pin : "A"; } }
  }
}`
	if _, err := ParseLibrary(strings.NewReader(in)); err == nil {
		t.Fatal("cell without timing tables accepted")
	}
}

func TestParseHandlesCommentsAndContinuations(t *testing.T) {
	lib := smallLib(t)
	var buf bytes.Buffer
	if err := WriteLibrary(&buf, lib); err != nil {
		t.Fatal(err)
	}
	// Inject comments into the emitted file; the parser must cope.
	text := strings.Replace(buf.String(), "library (", "/* header\ncomment */ library (", 1)
	if _, err := ParseLibrary(strings.NewReader(text)); err != nil {
		t.Fatal(err)
	}
}

func TestParseFloatList(t *testing.T) {
	vals, err := parseFloatList(" 1, 2.5 , 3e-2,")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vals[1] != 2.5 {
		t.Fatalf("got %v", vals)
	}
	if _, err := parseFloatList("1, x"); err == nil {
		t.Fatal("bad float accepted")
	}
}
