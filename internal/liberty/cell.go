package liberty

import (
	"fmt"
	"math"

	"repro/internal/tech"
)

// CellKind distinguishes the two repeater flavors the paper
// characterizes. Following the paper's terminology, "repeater"
// denotes either.
type CellKind int

const (
	// Inverter is a single-stage inverting repeater.
	Inverter CellKind = iota
	// Buffer is a two-stage non-inverting repeater whose first
	// stage is a quarter of the second.
	Buffer
)

func (k CellKind) String() string {
	if k == Buffer {
		return "BUF"
	}
	return "INV"
}

// Cell is one characterized repeater: NLDM timing arcs plus the static
// attributes (input capacitance, leakage, area) the power and area
// models consume.
type Cell struct {
	// Name is the library name, e.g. "INVD8".
	Name string
	Kind CellKind
	// Size is the drive strength in unit-inverter multiples (the
	// second-stage size for buffers).
	Size float64
	// WN and WP are the (second-stage) device widths in meters.
	WN, WP float64
	// InputCap is the static input capacitance in farads.
	InputCap float64
	// Leakage is the state-averaged leakage power in watts.
	Leakage float64
	// Area is the layout area in m², quantized to whole poly
	// fingers as a real layout would be.
	Area float64
	// DelayRise/DelayFall are input-50% → output-50% delay tables
	// for rising/falling *output* transitions; SlewRise/SlewFall are
	// the corresponding output 10–90% slew tables.
	DelayRise, DelayFall *Table
	SlewRise, SlewFall   *Table
}

// Delay looks up the propagation delay (s) for the given output
// direction, input slew, and load.
func (c *Cell) Delay(outRising bool, slew, load float64) float64 {
	if outRising {
		return c.DelayRise.Lookup(slew, load)
	}
	return c.DelayFall.Lookup(slew, load)
}

// OutSlew looks up the output slew (s) for the given output direction,
// input slew, and load.
func (c *Cell) OutSlew(outRising bool, slew, load float64) float64 {
	if outRising {
		return c.SlewRise.Lookup(slew, load)
	}
	return c.SlewFall.Lookup(slew, load)
}

// WorstDelay returns max(rise, fall) delay — the metric the paper's
// tables quote for buffered lines.
func (c *Cell) WorstDelay(slew, load float64) float64 {
	return math.Max(c.DelayRise.Lookup(slew, load), c.DelayFall.Lookup(slew, load))
}

// LayoutArea returns the finger-quantized standard-cell area (m²) of a
// repeater with total device width wn+wp in technology t — the
// "golden" area that Liberty files report for existing technologies.
// It mirrors the paper's predictive construction but with the integer
// ceiling a real layout imposes:
//
//	N_f = ceil((w_p + w_n)/(h_row − 4·p_contact))
//	w_cell = (N_f + 1)·p_contact
//	a_r = h_row·w_cell
func LayoutArea(t *tech.Technology, wn, wp float64) float64 {
	usable := t.RowHeight - 4*t.ContactPitch
	nf := math.Ceil((wn + wp) / usable)
	if nf < 1 {
		nf = 1
	}
	wcell := (nf + 1) * t.ContactPitch
	return t.RowHeight * wcell
}

// Library is a characterized set of repeaters for one technology.
type Library struct {
	Tech  *tech.Technology
	Cells []*Cell
}

// Cell returns the named cell or nil.
func (l *Library) Cell(name string) *Cell {
	for _, c := range l.Cells {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// CellsOfKind returns the library's cells of one kind, in ascending
// size order.
func (l *Library) CellsOfKind(k CellKind) []*Cell {
	var out []*Cell
	for _, c := range l.Cells {
		if c.Kind == k {
			out = append(out, c)
		}
	}
	return out
}

// MinSlew returns the smallest characterized slew breakpoint, the
// natural boundary-condition slew for the first stage of a line.
func (l *Library) MinSlew() float64 {
	if len(l.Cells) == 0 || l.Cells[0].DelayRise == nil {
		return 0
	}
	return l.Cells[0].DelayRise.SlewAxis[0]
}

// String implements fmt.Stringer.
func (l *Library) String() string {
	return fmt.Sprintf("liberty.Library{%s, %d cells}", l.Tech.Name, len(l.Cells))
}
