package liberty

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tech"
)

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("short slew axis accepted")
	}
	if _, err := NewTable([]float64{2, 1}, []float64{1, 2}); err == nil {
		t.Fatal("unsorted axis accepted")
	}
	if _, err := NewTable([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("duplicate breakpoint accepted")
	}
	tab, err := NewTable([]float64{1, 2}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Values) != 2 || len(tab.Values[0]) != 2 {
		t.Fatal("bad allocation")
	}
}

func mkTable(t *testing.T) *Table {
	t.Helper()
	tab, err := NewTable([]float64{0, 10, 20}, []float64{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	// f(s, l) = 2s + 0.1l — bilinear interpolation of a bilinear
	// function is exact.
	for i, s := range tab.SlewAxis {
		for j, l := range tab.LoadAxis {
			tab.Values[i][j] = 2*s + 0.1*l
		}
	}
	return tab
}

func TestLookupInterpolation(t *testing.T) {
	tab := mkTable(t)
	cases := []struct{ s, l, want float64 }{
		{0, 0, 0},
		{10, 100, 30},
		{5, 50, 15},
		{15, 25, 32.5},
	}
	for _, c := range cases {
		if got := tab.Lookup(c.s, c.l); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Lookup(%g,%g) = %g, want %g", c.s, c.l, got, c.want)
		}
	}
}

func TestLookupExtrapolation(t *testing.T) {
	tab := mkTable(t)
	// Linear extrapolation beyond the window continues the last
	// segment's slope.
	if got := tab.Lookup(30, 0); math.Abs(got-60) > 1e-9 {
		t.Fatalf("extrapolated Lookup(30,0) = %g, want 60", got)
	}
	if got := tab.Lookup(0, 200); math.Abs(got-20) > 1e-9 {
		t.Fatalf("extrapolated Lookup(0,200) = %g, want 20", got)
	}
	if got := tab.Lookup(-10, 0); math.Abs(got+20) > 1e-9 {
		t.Fatalf("extrapolated Lookup(-10,0) = %g, want -20", got)
	}
}

// Property: lookup of a bilinear function is exact anywhere within the
// table window.
func TestQuickLookupBilinearExact(t *testing.T) {
	tab := mkTable(t)
	f := func(a, b uint8) bool {
		s := float64(a) / 255 * 20
		l := float64(b) / 255 * 100
		want := 2*s + 0.1*l
		return math.Abs(tab.Lookup(s, l)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutAreaQuantized(t *testing.T) {
	tc := tech.MustLookup("90nm")
	small := LayoutArea(tc, 0.1e-6, 0.2e-6)
	if small <= 0 {
		t.Fatal("area must be positive")
	}
	// Area must be non-decreasing in width and quantized (step
	// function): doubling a tiny device may not change the area.
	big := LayoutArea(tc, 10e-6, 20e-6)
	if big <= small {
		t.Fatal("area must grow with device width")
	}
}

func TestFirstStageSize(t *testing.T) {
	if firstStageSize(20) != 5 {
		t.Fatalf("D20 first stage = %g", firstStageSize(20))
	}
	if firstStageSize(2) != 1 {
		t.Fatalf("D2 first stage = %g, want clamp at 1", firstStageSize(2))
	}
}

// Characterize a reduced grid and verify the library has the physical
// properties the paper's regressions rely on.
func TestCharacterizeReducedGrid(t *testing.T) {
	tc := tech.MustLookup("90nm")
	lib, err := Characterize(tc, CharOpts{
		Sizes:         []float64{4, 12},
		SlewAxis:      []float64{50e-12, 200e-12, 400e-12},
		LoadMultiples: []float64{3, 20, 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Cells) != 4 { // 2 sizes × 2 kinds
		t.Fatalf("got %d cells", len(lib.Cells))
	}

	inv4 := lib.Cell("INVD4")
	inv12 := lib.Cell("INVD12")
	buf4 := lib.Cell("BUFD4")
	if inv4 == nil || inv12 == nil || buf4 == nil {
		t.Fatal("missing cells")
	}

	// Input capacitance proportional to size.
	if r := inv12.InputCap / inv4.InputCap; math.Abs(r-3) > 1e-6 {
		t.Fatalf("input cap ratio %g, want 3", r)
	}
	// Leakage grows linearly with size.
	if r := inv12.Leakage / inv4.Leakage; math.Abs(r-3) > 1e-6 {
		t.Fatalf("leakage ratio %g, want 3", r)
	}
	// Delay tables: monotone in load for fixed slew.
	dr := inv4.DelayRise
	for i := range dr.SlewAxis {
		for j := 1; j < len(dr.LoadAxis); j++ {
			if dr.Values[i][j] <= dr.Values[i][j-1] {
				t.Fatalf("delay not monotone in load at slew %d", i)
			}
		}
	}
	// Bigger driver is faster at the same corner.
	if inv12.Delay(true, 200e-12, 20*inv4.InputCap) >= inv4.Delay(true, 200e-12, 20*inv4.InputCap) {
		t.Fatal("D12 not faster than D4")
	}
	// Buffers are non-inverting two-stage: slower than the same-size
	// inverter at identical corners.
	if buf4.Delay(true, 200e-12, 20*inv4.InputCap) <= inv4.Delay(true, 200e-12, 20*inv4.InputCap) {
		t.Fatal("buffer should be slower than inverter of equal size")
	}
	// Buffer input cap is the first stage's (smaller than the
	// inverter of the same drive strength).
	if buf4.InputCap >= inv4.InputCap {
		t.Fatal("buffer input cap should be below same-size inverter")
	}
	// Output slew increases with load.
	sr := inv4.SlewRise
	for i := range sr.SlewAxis {
		for j := 1; j < len(sr.LoadAxis); j++ {
			if sr.Values[i][j] <= sr.Values[i][j-1] {
				t.Fatalf("slew not monotone in load at slew %d", i)
			}
		}
	}
}

func TestCellsOfKindAndLookupHelpers(t *testing.T) {
	tc := tech.MustLookup("90nm")
	lib, err := Characterize(tc, CharOpts{
		Sizes:         []float64{4, 8},
		SlewAxis:      []float64{50e-12, 300e-12},
		LoadMultiples: []float64{3, 30},
		Kinds:         []CellKind{Inverter},
	})
	if err != nil {
		t.Fatal(err)
	}
	invs := lib.CellsOfKind(Inverter)
	if len(invs) != 2 {
		t.Fatalf("got %d inverters", len(invs))
	}
	if lib.CellsOfKind(Buffer) != nil {
		t.Fatal("no buffers were characterized")
	}
	if lib.Cell("INVD4") == nil || lib.Cell("NOPE") != nil {
		t.Fatal("Cell lookup")
	}
	c := invs[0]
	if c.WorstDelay(100e-12, 10e-15) < c.Delay(true, 100e-12, 10e-15)-1e-18 {
		t.Fatal("worst delay below rise delay")
	}
	if lib.MinSlew() != 50e-12 {
		t.Fatalf("MinSlew = %g", lib.MinSlew())
	}
}

func TestCharacterizeRejectsInvalidTech(t *testing.T) {
	bad := tech.MustLookup("90nm").Clone()
	bad.Vdd = 0.1
	if _, err := Characterize(bad, CharOpts{}); err == nil {
		t.Fatal("invalid tech accepted")
	}
}

func TestGetMemoizes(t *testing.T) {
	tc := tech.MustLookup("65nm")
	a, err := Get(tc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Get(tc)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Get should return the cached library")
	}
}

// Far-out-of-window extrapolation must stay physical (positive,
// monotone in load) — the golden engine leans on this when a stage's
// wire load exceeds the characterized grid.
func TestExtrapolationStaysPhysical(t *testing.T) {
	tc := tech.MustLookup("90nm")
	lib, err := Get(tc)
	if err != nil {
		t.Fatal(err)
	}
	c := lib.Cell("INVD20")
	grid := c.DelayRise.LoadAxis
	maxLoad := grid[len(grid)-1]
	prev := 0.0
	for _, mult := range []float64{1, 2, 5, 10} {
		d := c.Delay(true, 300e-12, mult*maxLoad)
		if d <= prev {
			t.Fatalf("extrapolated delay not monotone at %g× max load", mult)
		}
		prev = d
		s := c.OutSlew(true, 300e-12, mult*maxLoad)
		if s <= 0 {
			t.Fatalf("extrapolated slew non-positive at %g× max load", mult)
		}
	}
	// Slew axis extrapolation too.
	maxSlew := c.DelayRise.SlewAxis[len(c.DelayRise.SlewAxis)-1]
	if d := c.Delay(true, 3*maxSlew, maxLoad); d <= 0 {
		t.Fatal("extrapolated delay non-positive at 3× max slew")
	}
}

func TestKindString(t *testing.T) {
	if Inverter.String() != "INV" || Buffer.String() != "BUF" {
		t.Fatal("kind strings")
	}
}
