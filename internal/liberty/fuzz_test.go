package liberty

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/tech"
)

// FuzzParseLibrary drives the Liberty parser with arbitrary input. The
// invariants: never panic or recurse without bound, and any input the
// parser accepts must be a usable library — non-empty and re-emittable
// by WriteLibrary without error.
func FuzzParseLibrary(f *testing.F) {
	// A genuinely characterized library is the richest seed: every
	// production of the grammar the writer can emit.
	lib, err := Characterize(tech.MustLookup("90nm"), CharOpts{
		Sizes:         []float64{4},
		SlewAxis:      []float64{50e-12, 200e-12},
		LoadMultiples: []float64{3, 20},
		Kinds:         []CellKind{Inverter},
	})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLibrary(&buf, lib); err != nil {
		f.Fatal(err)
	}
	emitted := buf.String()
	f.Add(emitted)
	// The comment-injection case from the round-trip tests.
	f.Add(strings.Replace(emitted, "library (", "/* header\ncomment */ library (", 1))
	// The known rejection cases.
	for _, s := range []string{
		"",
		"cell (X) { }",
		`library (l) { technology : "90nm";`,
		`library (l) { cell (INVD4) { } }`,
		`library (l) { technology : "7nm"; cell (INVD4) { } }`,
		`library (l) { technology : "90nm"; }`,
		`library (l) { technology : "90nm"; cell (NAND2) { } }`,
		`library (l) { technology : "90nm`,
		`library (l) { /* nope `,
		`library (l) { a : 1; b (1, 2); \` + "\n" + `}`,
	} {
		f.Add(s)
	}
	// Deep nesting (the recursion-depth cap) and comment storms (the
	// formerly quadratic scanner).
	f.Add("library (l) { " + strings.Repeat("g (1) { ", 200))
	f.Add("library (l) { " + strings.Repeat("/*x*/ ", 500) + "}")

	f.Fuzz(func(t *testing.T, in string) {
		parsed, err := ParseLibrary(strings.NewReader(in))
		if err != nil {
			if parsed != nil {
				t.Fatalf("error %v alongside a non-nil library", err)
			}
			return
		}
		if parsed == nil || len(parsed.Cells) == 0 || parsed.Tech == nil {
			t.Fatalf("accepted input produced a degenerate library: %+v", parsed)
		}
		if err := WriteLibrary(io.Discard, parsed); err != nil {
			t.Fatalf("accepted library cannot be re-emitted: %v", err)
		}
	})
}
