// Package liberty provides the NLDM-style cell library substrate: 2-D
// delay/slew lookup tables indexed by input slew and output load,
// cell-level attributes (input capacitance, leakage power, area), and
// a characterization driver that fills the tables by running the
// circuit-simulation substrate — exactly the role the foundry Liberty
// (.lib) files play in the paper's flow.
package liberty

import (
	"fmt"
	"sort"
)

// Table is a two-dimensional NLDM lookup table over an input-slew axis
// and a load-capacitance axis, with bilinear interpolation inside the
// characterized window and linear extrapolation outside it (the
// behavior sign-off tools adopt, with a warning, for out-of-range
// queries).
type Table struct {
	// SlewAxis holds the input-slew breakpoints in seconds,
	// strictly increasing.
	SlewAxis []float64
	// LoadAxis holds the load-capacitance breakpoints in farads,
	// strictly increasing.
	LoadAxis []float64
	// Values is indexed [slew][load].
	Values [][]float64
}

// NewTable allocates a table with the given axes and zero values.
func NewTable(slews, loads []float64) (*Table, error) {
	if len(slews) < 2 || len(loads) < 2 {
		return nil, fmt.Errorf("liberty: table axes need ≥2 points (%d×%d)", len(slews), len(loads))
	}
	if !sort.Float64sAreSorted(slews) || !sort.Float64sAreSorted(loads) {
		return nil, fmt.Errorf("liberty: table axes must be sorted")
	}
	for i := 1; i < len(slews); i++ {
		if slews[i] == slews[i-1] {
			return nil, fmt.Errorf("liberty: duplicate slew breakpoint %g", slews[i])
		}
	}
	for i := 1; i < len(loads); i++ {
		if loads[i] == loads[i-1] {
			return nil, fmt.Errorf("liberty: duplicate load breakpoint %g", loads[i])
		}
	}
	v := make([][]float64, len(slews))
	for i := range v {
		v[i] = make([]float64, len(loads))
	}
	return &Table{
		SlewAxis: append([]float64(nil), slews...),
		LoadAxis: append([]float64(nil), loads...),
		Values:   v,
	}, nil
}

// segment finds the axis interval [i, i+1] bracketing x, clamping to
// the end intervals so the caller extrapolates linearly beyond the
// characterized window.
func segment(axis []float64, x float64) int {
	i := sort.SearchFloat64s(axis, x)
	switch {
	case i <= 0:
		return 0
	case i >= len(axis):
		return len(axis) - 2
	default:
		return i - 1
	}
}

// Lookup returns the bilinearly interpolated value at (slew, load).
func (t *Table) Lookup(slew, load float64) float64 {
	i := segment(t.SlewAxis, slew)
	j := segment(t.LoadAxis, load)
	s0, s1 := t.SlewAxis[i], t.SlewAxis[i+1]
	l0, l1 := t.LoadAxis[j], t.LoadAxis[j+1]
	fs := (slew - s0) / (s1 - s0)
	fl := (load - l0) / (l1 - l0)
	v00 := t.Values[i][j]
	v01 := t.Values[i][j+1]
	v10 := t.Values[i+1][j]
	v11 := t.Values[i+1][j+1]
	return v00*(1-fs)*(1-fl) + v01*(1-fs)*fl + v10*fs*(1-fl) + v11*fs*fl
}
