package liberty

import (
	"fmt"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/spice"
	"repro/internal/tech"
)

// StandardSizes lists the repeater drive strengths the paper's
// experiments use (its footnote lists INVD4 through INVD20).
var StandardSizes = []float64{4, 6, 8, 12, 16, 20}

// CharOpts tunes characterization. The zero value selects the
// standard grid.
type CharOpts struct {
	// Sizes lists the drive strengths to characterize; defaults to
	// StandardSizes.
	Sizes []float64
	// SlewAxis lists the input-slew breakpoints (s); defaults to a
	// 10–500 ps grid that brackets the paper's 300 ps stimulus.
	SlewAxis []float64
	// LoadMultiples lists the load-axis breakpoints as multiples of
	// each cell's own input capacitance — the Liberty convention of
	// scaling the load axis to the cell's drive strength; defaults
	// to {1, 4, 10, 30, 80}.
	LoadMultiples []float64
	// Kinds lists the cell kinds to build; defaults to both.
	Kinds []CellKind
}

func (o CharOpts) withDefaults() CharOpts {
	if o.Sizes == nil {
		o.Sizes = StandardSizes
	}
	if o.SlewAxis == nil {
		o.SlewAxis = []float64{10e-12, 50e-12, 150e-12, 300e-12, 500e-12}
	}
	if o.LoadMultiples == nil {
		o.LoadMultiples = []float64{1, 4, 10, 30, 80}
	}
	if o.Kinds == nil {
		o.Kinds = []CellKind{Inverter, Buffer}
	}
	return o
}

// bufferFirstStageRatio is the size ratio between a buffer's second
// and first stages.
const bufferFirstStageRatio = 4.0

// Characterize builds a Library for the technology by simulating every
// cell at every grid point with the spice substrate — the reproduction
// of the paper's "generate the data set using SPICE simulations" step
// for technologies without Liberty files.
func Characterize(tc *tech.Technology, opts CharOpts) (*Library, error) {
	// Fault point for robustness tests; note Get memoizes whatever
	// Characterize returns (including an injected failure), so fault
	// tests target Characterize directly rather than Get.
	if err := faultinject.Hit("liberty.characterize"); err != nil {
		return nil, err
	}
	if err := tc.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	lib := &Library{Tech: tc}
	for _, kind := range o.Kinds {
		for _, size := range o.Sizes {
			// Load axis scaled to this cell's drive: multiples of
			// the *equivalent inverter's* input capacitance so
			// buffers (whose pin cap is the small first stage) still
			// see loads matched to their output strength.
			ref := spice.InverterInputCap(tc, size)
			loads := make([]float64, len(o.LoadMultiples))
			for i, m := range o.LoadMultiples {
				loads[i] = m * ref
			}
			cell, err := characterizeCell(tc, kind, size, o.SlewAxis, loads)
			if err != nil {
				return nil, fmt.Errorf("liberty: %s%s D%g: %w", tc.Name, kind, size, err)
			}
			lib.Cells = append(lib.Cells, cell)
		}
	}
	return lib, nil
}

func characterizeCell(tc *tech.Technology, kind CellKind, size float64, slews, loads []float64) (*Cell, error) {
	wn, wp := tc.InverterWidths(size)
	cell := &Cell{
		Name: fmt.Sprintf("%sD%g", kind, size),
		Kind: kind,
		Size: size,
		WN:   wn,
		WP:   wp,
	}
	var err error
	if cell.DelayRise, err = NewTable(slews, loads); err != nil {
		return nil, err
	}
	if cell.DelayFall, err = NewTable(slews, loads); err != nil {
		return nil, err
	}
	if cell.SlewRise, err = NewTable(slews, loads); err != nil {
		return nil, err
	}
	if cell.SlewFall, err = NewTable(slews, loads); err != nil {
		return nil, err
	}

	switch kind {
	case Inverter:
		cell.InputCap = spice.InverterInputCap(tc, size)
		cell.Leakage = inverterLeakage(tc, wn, wp)
		cell.Area = LayoutArea(tc, wn, wp)
	case Buffer:
		s1 := firstStageSize(size)
		wn1, wp1 := tc.InverterWidths(s1)
		cell.InputCap = spice.InverterInputCap(tc, s1)
		cell.Leakage = inverterLeakage(tc, wn1, wp1) + inverterLeakage(tc, wn, wp)
		cell.Area = LayoutArea(tc, wn+wn1, wp+wp1)
	}

	for i, slew := range slews {
		for j, load := range loads {
			for _, outRising := range []bool{true, false} {
				d, s, err := simulateArc(tc, kind, size, slew, load, outRising)
				if err != nil {
					return nil, fmt.Errorf("slew=%g load=%g rise=%v: %w", slew, load, outRising, err)
				}
				if outRising {
					cell.DelayRise.Values[i][j] = d
					cell.SlewRise.Values[i][j] = s
				} else {
					cell.DelayFall.Values[i][j] = d
					cell.SlewFall.Values[i][j] = s
				}
			}
		}
	}
	return cell, nil
}

func firstStageSize(size float64) float64 {
	s1 := size / bufferFirstStageRatio
	if s1 < 1 {
		s1 = 1
	}
	return s1
}

// inverterLeakage returns the state-averaged leakage power of one
// inverter stage: with the output high the nMOS leaks, with it low the
// pMOS leaks, each weighted 1/2 — the paper's p_s = (p_sn + p_sp)/2.
func inverterLeakage(tc *tech.Technology, wn, wp float64) float64 {
	n := &spice.Mosfet{Kind: spice.NMOS, Width: wn, Params: tc.NMOS}
	p := &spice.Mosfet{Kind: spice.PMOS, Width: wp, Params: tc.PMOS}
	return tc.Vdd * (n.OffCurrent(tc.Vdd) + p.OffCurrent(tc.Vdd)) / 2
}

// simulateArc measures one (slew, load, direction) grid point.
func simulateArc(tc *tech.Technology, kind CellKind, size, slew, load float64, outRising bool) (delay, outSlew float64, err error) {
	dir := spice.Falling
	if outRising {
		dir = spice.Rising
	}
	switch kind {
	case Inverter:
		fix, err := spice.NewLoadedInverter(tc, size, slew, load, dir)
		if err != nil {
			return 0, 0, err
		}
		return fix.Measure()
	case Buffer:
		return simulateBufferArc(tc, size, slew, load, dir)
	default:
		return 0, 0, fmt.Errorf("liberty: unknown cell kind %d", kind)
	}
}

// simulateBufferArc builds and measures the two-stage buffer fixture:
// in → inv(s/4) → mid → inv(s) → out with a lumped load.
func simulateBufferArc(tc *tech.Technology, size, inSlew, load float64, outDir spice.Direction) (delay, outSlew float64, err error) {
	c := spice.New()
	in, mid, out, vdd := c.Node("in"), c.Node("mid"), c.Node("out"), c.Node("vdd")
	if err := c.AddSource(vdd, spice.DC(tc.Vdd)); err != nil {
		return 0, 0, err
	}
	ramp := spice.RampFromSlew(inSlew)
	start := 0.2 * ramp
	// Buffer is non-inverting: output direction == input direction.
	var w spice.Waveform
	var initMid, initOut float64
	inDir := outDir
	if outDir == spice.Rising {
		w = spice.Ramp(0, tc.Vdd, start, ramp)
		initMid, initOut = tc.Vdd, 0
	} else {
		w = spice.Ramp(tc.Vdd, 0, start, ramp)
		initMid, initOut = 0, tc.Vdd
	}
	if err := c.AddSource(in, w); err != nil {
		return 0, 0, err
	}
	s1 := firstStageSize(size)
	spice.AddInverter(c, tc, s1, in, mid, vdd)
	spice.AddInverter(c, tc, size, mid, out, vdd)
	c.AddCapacitor(out, spice.Ground, load)

	// Window: ramp plus charging scales of both stages.
	wn, _ := tc.InverterWidths(size)
	iOn := tc.PMOS.K * wn * tc.PNRatio
	if nOn := tc.NMOS.K * wn; nOn < iOn {
		iOn = nOn
	}
	ts := (load + spice.InverterInputCap(tc, size)) * tc.Vdd / iOn
	if ts < 5e-12 {
		ts = 5e-12
	}
	stop := start + ramp + 16*ts
	step := inSlew / 80
	if s := ts / 40; s < step {
		step = s
	}
	if minStep := stop / 8000; step < minStep {
		step = minStep
	}

	res, err := c.Transient(spice.TransientOpts{
		Stop:     stop,
		Step:     step,
		InitialV: map[int]float64{mid: initMid, out: initOut},
		Record:   []int{in, out},
	})
	if err != nil {
		return 0, 0, err
	}
	vin, vout := res.Voltage(in), res.Voltage(out)
	delay, err = spice.Delay(res.Time, vin, vout, tc.Vdd, inDir, outDir)
	if err != nil {
		return 0, 0, fmt.Errorf("buffer delay: %w", err)
	}
	outSlew, err = spice.Slew(res.Time, vout, tc.Vdd, outDir)
	if err != nil {
		return 0, 0, fmt.Errorf("buffer slew: %w", err)
	}
	return delay, outSlew, nil
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*libEntry{}
)

// libEntry is one memoized characterization; the per-entry Once lets
// distinct technologies characterize concurrently while duplicate
// requests for the same node block on a single computation.
type libEntry struct {
	once sync.Once
	lib  *Library
	err  error
}

// Get returns the standard-grid library for a technology, memoized
// process-wide: characterization is deterministic, so sharing the
// result across callers is safe and keeps test times reasonable.
//
// Get is safe for concurrent use. The cache mutex guards only the
// entry lookup — the seconds-long characterization runs outside it,
// so requests for different technologies proceed in parallel and
// never serialize behind one another. Each technology is
// characterized exactly once per process; because the computation is
// deterministic, a failure is memoized too. The returned Library is
// shared and must not be mutated.
func Get(tc *tech.Technology) (*Library, error) {
	cacheMu.Lock()
	e, ok := cache[tc.Name]
	if !ok {
		e = &libEntry{}
		cache[tc.Name] = e
	}
	cacheMu.Unlock()
	e.once.Do(func() {
		e.lib, e.err = Characterize(tc, CharOpts{})
	})
	return e.lib, e.err
}
