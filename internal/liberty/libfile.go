package liberty

// Liberty text-format support: Write emits a characterized Library in
// a (simplified but syntactically conventional) .lib format — library
// and cell groups, pin groups, NLDM timing tables with index_1/
// index_2/values attributes — and Parse reads it back. This is how
// the paper's flow consumes foundry data ("the required data set is
// available from Liberty library files"): with these two functions the
// characterization step and the calibration step can run on different
// machines, and externally supplied libraries can be calibrated
// against.
//
// Units follow Liberty convention: times in ps, capacitances in fF,
// leakage in W, area in µm². Values are formatted with enough digits
// to round-trip float64 exactly for practical purposes.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/tech"
)

// unit conversions between SI (internal) and Liberty file units.
const (
	psPerSecond = 1e12
	ffPerFarad  = 1e15
	um2PerM2    = 1e12
)

// WriteLibrary emits the library in Liberty text format.
func WriteLibrary(w io.Writer, lib *Library) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "library (repro_%s) {\n", lib.Tech.Name)
	fmt.Fprintf(bw, "  technology : %q;\n", lib.Tech.Name)
	fmt.Fprintf(bw, "  time_unit : \"1ps\";\n")
	fmt.Fprintf(bw, "  capacitive_load_unit (1, ff);\n")
	fmt.Fprintf(bw, "  nom_voltage : %s;\n", fnum(lib.Tech.Vdd))

	for _, c := range lib.Cells {
		if err := writeCell(bw, c); err != nil {
			return err
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

func fnum(v float64) string { return strconv.FormatFloat(v, 'g', 12, 64) }

func fslice(vals []float64, scale float64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fnum(v * scale)
	}
	return strings.Join(parts, ", ")
}

func writeCell(w io.Writer, c *Cell) error {
	fmt.Fprintf(w, "  cell (%s) {\n", c.Name)
	fmt.Fprintf(w, "    area : %s;\n", fnum(c.Area*um2PerM2))
	fmt.Fprintf(w, "    cell_leakage_power : %s;\n", fnum(c.Leakage))
	fmt.Fprintf(w, "    drive_strength : %s;\n", fnum(c.Size))
	fmt.Fprintf(w, "    repro_wn : %s;\n", fnum(c.WN))
	fmt.Fprintf(w, "    repro_wp : %s;\n", fnum(c.WP))
	fmt.Fprintf(w, "    pin (A) {\n      direction : input;\n      capacitance : %s;\n    }\n",
		fnum(c.InputCap*ffPerFarad))
	fmt.Fprintf(w, "    pin (Y) {\n      direction : output;\n")
	sense := "negative_unate"
	if c.Kind == Buffer {
		sense = "positive_unate"
	}
	fmt.Fprintf(w, "      timing () {\n        related_pin : \"A\";\n        timing_sense : %s;\n", sense)
	writeTable(w, "cell_rise", c.DelayRise)
	writeTable(w, "rise_transition", c.SlewRise)
	writeTable(w, "cell_fall", c.DelayFall)
	writeTable(w, "fall_transition", c.SlewFall)
	fmt.Fprintf(w, "      }\n    }\n  }\n")
	return nil
}

func writeTable(w io.Writer, name string, t *Table) {
	fmt.Fprintf(w, "        %s (delay_template) {\n", name)
	fmt.Fprintf(w, "          index_1 (%q);\n", fslice(t.SlewAxis, psPerSecond))
	fmt.Fprintf(w, "          index_2 (%q);\n", fslice(t.LoadAxis, ffPerFarad))
	fmt.Fprintf(w, "          values ( \\\n")
	for i, row := range t.Values {
		sep := ", \\"
		if i == len(t.Values)-1 {
			sep = " \\"
		}
		fmt.Fprintf(w, "            %q%s\n", fslice(row, psPerSecond), sep)
	}
	fmt.Fprintf(w, "          );\n        }\n")
}

// --- parsing ---

// libToken is one lexical unit of a Liberty file.
type libToken struct {
	kind tokenKind
	text string
}

type tokenKind int

const (
	tokIdent tokenKind = iota
	tokString
	tokNumber
	tokPunct // { } ( ) : ; ,
	tokEOF
)

type lexer struct {
	data []byte
	pos  int
	line int
}

func (lx *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("liberty: line %d: %s", lx.line, fmt.Sprintf(format, args...))
}

func (lx *lexer) next() (libToken, error) {
	for lx.pos < len(lx.data) {
		c := lx.data[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '\\': // line continuation
			lx.pos++
		case c == '/' && lx.pos+1 < len(lx.data) && lx.data[lx.pos+1] == '*':
			// Scan over the raw bytes: converting the tail to a string
			// per comment made a file of n comments cost O(n²) copies.
			end := bytes.Index(lx.data[lx.pos+2:], []byte("*/"))
			if end < 0 {
				return libToken{}, lx.errf("unterminated comment")
			}
			lx.line += bytes.Count(lx.data[lx.pos:lx.pos+end+4], []byte("\n"))
			lx.pos += end + 4
		default:
			return lx.scanToken()
		}
	}
	return libToken{kind: tokEOF}, nil
}

func (lx *lexer) scanToken() (libToken, error) {
	c := lx.data[lx.pos]
	switch {
	case strings.IndexByte("{}():;,", c) >= 0:
		lx.pos++
		return libToken{kind: tokPunct, text: string(c)}, nil
	case c == '"':
		start := lx.pos + 1
		end := start
		for end < len(lx.data) && lx.data[end] != '"' {
			if lx.data[end] == '\n' {
				lx.line++
			}
			end++
		}
		if end >= len(lx.data) {
			return libToken{}, lx.errf("unterminated string")
		}
		lx.pos = end + 1
		return libToken{kind: tokString, text: string(lx.data[start:end])}, nil
	default:
		start := lx.pos
		for lx.pos < len(lx.data) && !strings.ContainsRune(" \t\r\n{}():;,\"\\", rune(lx.data[lx.pos])) {
			lx.pos++
		}
		text := string(lx.data[start:lx.pos])
		if text == "" {
			return libToken{}, lx.errf("unexpected character %q", c)
		}
		if _, err := strconv.ParseFloat(text, 64); err == nil {
			return libToken{kind: tokNumber, text: text}, nil
		}
		return libToken{kind: tokIdent, text: text}, nil
	}
}

// maxGroupDepth bounds group nesting. Real Liberty files nest a
// handful of levels (library → cell → pin → timing → table); the cap
// turns a pathological deeply-nested input into a parse error instead
// of unbounded recursion blowing the stack.
const maxGroupDepth = 100

// parser consumes the token stream into a generic group tree, then
// interprets it.
type parser struct {
	lx     *lexer
	peeked *libToken
	depth  int
}

func (p *parser) next() (libToken, error) {
	if p.peeked != nil {
		t := *p.peeked
		p.peeked = nil
		return t, nil
	}
	return p.lx.next()
}

func (p *parser) peek() (libToken, error) {
	if p.peeked == nil {
		t, err := p.lx.next()
		if err != nil {
			return libToken{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

// group is a parsed Liberty group: name, arguments, simple attributes,
// and nested groups.
type group struct {
	name  string
	args  []string
	attrs map[string][]string // attribute name → argument list
	subs  []*group
}

// parseGroup parses `( args ) { body }` for a group whose name token
// was already consumed.
func (p *parser) parseGroup(name string) (*group, error) {
	g := &group{name: name, attrs: map[string][]string{}}
	args, err := p.parseArgs()
	if err != nil {
		return nil, err
	}
	g.args = args
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	if err := p.fillGroupBody(g); err != nil {
		return nil, err
	}
	return g, nil
}

// fillGroupBody parses the body of a group whose `{` was consumed.
func (p *parser) fillGroupBody(g *group) error {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxGroupDepth {
		return p.lx.errf("group nesting deeper than %d levels", maxGroupDepth)
	}
	for {
		t, err := p.next()
		if err != nil {
			return err
		}
		switch {
		case t.kind == tokPunct && t.text == "}":
			return nil
		case t.kind == tokEOF:
			return p.lx.errf("unexpected EOF in group %s", g.name)
		case t.kind == tokIdent:
			nt, err := p.peek()
			if err != nil {
				return err
			}
			switch {
			case nt.kind == tokPunct && nt.text == ":":
				p.peeked = nil
				val, err := p.parseValue()
				if err != nil {
					return err
				}
				g.attrs[t.text] = []string{val}
			case nt.kind == tokPunct && nt.text == "(":
				args, err := p.parseArgs()
				if err != nil {
					return err
				}
				after, err := p.peek()
				if err != nil {
					return err
				}
				if after.kind == tokPunct && after.text == "{" {
					p.peeked = nil
					sub := &group{name: t.text, args: args, attrs: map[string][]string{}}
					if err := p.fillGroupBody(sub); err != nil {
						return err
					}
					g.subs = append(g.subs, sub)
				} else {
					if err := p.expect(";"); err != nil {
						return err
					}
					g.attrs[t.text] = args
				}
			default:
				return p.lx.errf("unexpected token after %q", t.text)
			}
		default:
			return p.lx.errf("unexpected token %q", t.text)
		}
	}
}

// parseArgs parses `( a, b, ... )`.
func (p *parser) parseArgs() ([]string, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var args []string
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		switch {
		case t.kind == tokPunct && t.text == ")":
			return args, nil
		case t.kind == tokPunct && t.text == ",":
		case t.kind == tokEOF:
			return nil, p.lx.errf("unexpected EOF in argument list")
		default:
			args = append(args, t.text)
		}
	}
}

// parseValue parses the value of `attr : value ;`.
func (p *parser) parseValue() (string, error) {
	t, err := p.next()
	if err != nil {
		return "", err
	}
	if t.kind == tokPunct {
		return "", p.lx.errf("missing attribute value")
	}
	if err := p.expect(";"); err != nil {
		return "", err
	}
	return t.text, nil
}

func (p *parser) expect(punct string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.kind != tokPunct || t.text != punct {
		return p.lx.errf("expected %q, got %q", punct, t.text)
	}
	return nil
}

// ParseLibrary reads a Liberty file produced by WriteLibrary (or a
// compatible subset) and reconstructs the Library. The technology
// descriptor is resolved by the library's `technology` attribute
// against the built-in set.
func ParseLibrary(r io.Reader) (*Library, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	p := &parser{lx: &lexer{data: data, line: 1}}
	t, err := p.next()
	if err != nil {
		return nil, err
	}
	if t.kind != tokIdent || t.text != "library" {
		return nil, fmt.Errorf("liberty: file does not start with a library group")
	}
	root, err := p.parseGroup("library")
	if err != nil {
		return nil, err
	}

	techName := attrString(root, "technology")
	if techName == "" {
		return nil, fmt.Errorf("liberty: library missing technology attribute")
	}
	tc, err := tech.Lookup(techName)
	if err != nil {
		return nil, err
	}
	lib := &Library{Tech: tc}
	for _, sub := range root.subs {
		if sub.name != "cell" {
			continue
		}
		cell, err := parseCell(sub)
		if err != nil {
			return nil, err
		}
		lib.Cells = append(lib.Cells, cell)
	}
	if len(lib.Cells) == 0 {
		return nil, fmt.Errorf("liberty: library has no cells")
	}
	sort.Slice(lib.Cells, func(i, j int) bool {
		a, b := lib.Cells[i], lib.Cells[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Size < b.Size
	})
	return lib, nil
}

func attrString(g *group, name string) string {
	if v, ok := g.attrs[name]; ok && len(v) > 0 {
		return v[0]
	}
	return ""
}

func attrFloat(g *group, name string) (float64, error) {
	s := attrString(g, name)
	if s == "" {
		return 0, fmt.Errorf("liberty: missing attribute %q in %s", name, g.name)
	}
	return strconv.ParseFloat(s, 64)
}

func parseCell(g *group) (*Cell, error) {
	if len(g.args) != 1 {
		return nil, fmt.Errorf("liberty: cell group needs a name")
	}
	c := &Cell{Name: g.args[0]}
	switch {
	case strings.HasPrefix(c.Name, "INV"):
		c.Kind = Inverter
	case strings.HasPrefix(c.Name, "BUF"):
		c.Kind = Buffer
	default:
		return nil, fmt.Errorf("liberty: cell %q has unknown kind prefix", c.Name)
	}
	var err error
	if c.Area, err = attrFloat(g, "area"); err != nil {
		return nil, err
	}
	c.Area /= um2PerM2
	if c.Leakage, err = attrFloat(g, "cell_leakage_power"); err != nil {
		return nil, err
	}
	if c.Size, err = attrFloat(g, "drive_strength"); err != nil {
		return nil, err
	}
	if c.WN, err = attrFloat(g, "repro_wn"); err != nil {
		return nil, err
	}
	if c.WP, err = attrFloat(g, "repro_wp"); err != nil {
		return nil, err
	}
	for _, pin := range g.subs {
		if pin.name != "pin" || len(pin.args) != 1 {
			continue
		}
		switch pin.args[0] {
		case "A":
			cap, err := attrFloat(pin, "capacitance")
			if err != nil {
				return nil, err
			}
			c.InputCap = cap / ffPerFarad
		case "Y":
			for _, tg := range pin.subs {
				if tg.name != "timing" {
					continue
				}
				for _, tab := range tg.subs {
					parsed, err := parseTable(tab)
					if err != nil {
						return nil, fmt.Errorf("cell %s: %w", c.Name, err)
					}
					switch tab.name {
					case "cell_rise":
						c.DelayRise = parsed
					case "rise_transition":
						c.SlewRise = parsed
					case "cell_fall":
						c.DelayFall = parsed
					case "fall_transition":
						c.SlewFall = parsed
					}
				}
			}
		}
	}
	if c.DelayRise == nil || c.DelayFall == nil || c.SlewRise == nil || c.SlewFall == nil {
		return nil, fmt.Errorf("liberty: cell %s missing timing tables", c.Name)
	}
	if c.InputCap <= 0 {
		return nil, fmt.Errorf("liberty: cell %s missing input capacitance", c.Name)
	}
	return c, nil
}

func parseFloatList(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseTable(g *group) (*Table, error) {
	idx1, ok := g.attrs["index_1"]
	if !ok || len(idx1) != 1 {
		return nil, fmt.Errorf("table %s missing index_1", g.name)
	}
	idx2, ok := g.attrs["index_2"]
	if !ok || len(idx2) != 1 {
		return nil, fmt.Errorf("table %s missing index_2", g.name)
	}
	rows, ok := g.attrs["values"]
	if !ok {
		return nil, fmt.Errorf("table %s missing values", g.name)
	}
	slews, err := parseFloatList(idx1[0])
	if err != nil {
		return nil, err
	}
	loads, err := parseFloatList(idx2[0])
	if err != nil {
		return nil, err
	}
	for i := range slews {
		slews[i] /= psPerSecond
	}
	for i := range loads {
		loads[i] /= ffPerFarad
	}
	t, err := NewTable(slews, loads)
	if err != nil {
		return nil, err
	}
	if len(rows) != len(slews) {
		return nil, fmt.Errorf("table %s has %d value rows for %d slews", g.name, len(rows), len(slews))
	}
	for i, rowStr := range rows {
		vals, err := parseFloatList(rowStr)
		if err != nil {
			return nil, err
		}
		if len(vals) != len(loads) {
			return nil, fmt.Errorf("table %s row %d has %d values for %d loads", g.name, i, len(vals), len(loads))
		}
		for j, v := range vals {
			t.Values[i][j] = v / psPerSecond
		}
	}
	return t, nil
}
