package liberty

import (
	"errors"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/tech"
)

// TestCharacterizeInjectedFault: the characterization entry point is
// instrumented, so a serving stack built on top of it can prove its
// behavior when foundry-data generation fails. Characterize (not Get)
// is targeted because Get memoizes failures process-wide.
func TestCharacterizeInjectedFault(t *testing.T) {
	defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
		"liberty.characterize": {Kind: faultinject.Error, Times: 1},
	}})()
	tc := tech.MustLookup("90nm")
	if _, err := Characterize(tc, CharOpts{}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("got %v, want the injected error", err)
	}
	// The fault budget is spent; characterization is healthy again
	// (restricted grid keeps this fast).
	lib, err := Characterize(tc, CharOpts{
		Sizes:         []float64{4},
		SlewAxis:      []float64{100e-12, 300e-12},
		LoadMultiples: []float64{1, 4},
		Kinds:         []CellKind{Inverter},
	})
	if err != nil {
		t.Fatalf("characterization after fault: %v", err)
	}
	if len(lib.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(lib.Cells))
	}
}
