package variation

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"repro/internal/estimator"
	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pool"
)

// This file is the distributed half of the sampling kernel: a yield
// estimation's sample-index range [0, Samples) can be split into
// contiguous shards, each shard evaluated anywhere (the draws are keyed
// by (Seed, index), never by worker or host), and the shards merged
// back into the exact Estimate a single-process run produces.
//
// Welford accumulators do not merge associatively in floating point, so
// a shard does not return a folded accumulator. It returns the sparse
// raw contributions instead — the global indices that failed and, under
// importance sampling, their likelihood-ratio weights — and the merge
// replays the canonical serial fold over the contiguous prefix, zeros
// implied for every index between failures. Five flops per sample makes
// the replay ~1000× cheaper than the evaluation it summarizes, and the
// result is bit-identical to the single-process kernel because it IS
// the single-process fold, fed the same numbers in the same order.
//
// The global stopping rule lives in the merge, not the shards: a shard
// always evaluates its full range, and MergePartials re-applies
// stopRule at exactly the batch boundaries the local kernel would have
// checked, truncating the fold at the same sample the local run would
// have stopped at.

// ErrNotShardable marks an estimation whose rung cannot be partitioned
// by sample index: AIS (the adapted proposal depends on all prior
// stages), WCD (no sampling at all), and the auto-routed ≥3σ cascade
// (the worst-case-distance pre-filter may answer without drawing a
// single sample). Callers run these locally through the normal ladder.
var ErrNotShardable = errors.New("variation: estimator rung cannot be sharded by sample index")

var metShardsCollected = obs.NewCounter("variation.shards_collected")

// contribPool recycles the batch-contribution row across shard
// collections: a coordinator worker serving successive shard waves
// reuses one row instead of allocating a fresh batch-sized slice per
// RPC (the laneScratch pool already does the same for the kernel's
// per-worker scratch).
var contribPool sync.Pool

func getContrib(n int) []float64 {
	if v := contribPool.Get(); v != nil {
		if b := v.(*[]float64); cap(*b) >= n {
			return (*b)[:n]
		}
	}
	return make([]float64, n)
}

func putContrib(b []float64) {
	contribPool.Put(&b)
}

// Partial is one contiguous shard's contribution to an estimation:
// the sparse nonzero sample contributions over global sample indices
// [Start, Start+Count). It is the unit of the coordinator's shard
// protocol and is designed to survive a JSON round trip bit-exactly
// (Go's float64 encoding is shortest-representation, which decodes to
// the identical bit pattern).
type Partial struct {
	// Start is the shard's first global sample index; Count the number
	// of samples it evaluated.
	Start int `json:"start"`
	Count int `json:"count"`
	// FailIdx lists the global indices of failing samples, ascending.
	// Indices absent from the list contributed exactly 0 to the fold.
	FailIdx []int `json:"fail_idx,omitempty"`
	// Weights, when non-nil, holds the likelihood-ratio weight of each
	// failing sample (same order as FailIdx) — the importance-sampled
	// contribution. Nil means every failure contributed 1 (plain
	// MC/QMC indicators).
	Weights []float64 `json:"weights,omitempty"`
}

// Sums reduces the shard to its summary statistics — failure count,
// weighted contribution sum, and sum of squares. The merge does not
// use these (it replays the raw contributions); they ride along in the
// shard protocol for observability and cross-checking.
func (p Partial) Sums() (failures int, sumW, sumW2 float64) {
	failures = len(p.FailIdx)
	if p.Weights == nil {
		return failures, float64(failures), float64(failures)
	}
	for _, w := range p.Weights {
		sumW += w
		sumW2 += w * w
	}
	return failures, sumW, sumW2
}

// validate checks internal consistency against a total sample budget.
func (p Partial) validate(samples int) error {
	if p.Start < 0 || p.Count < 0 || p.Start+p.Count > samples {
		return fmt.Errorf("variation: partial range [%d,%d) outside sample budget %d", p.Start, p.Start+p.Count, samples)
	}
	if p.Weights != nil && len(p.Weights) != len(p.FailIdx) {
		return fmt.Errorf("variation: partial carries %d weights for %d failures", len(p.Weights), len(p.FailIdx))
	}
	prev := p.Start - 1
	for _, i := range p.FailIdx {
		if i <= prev || i >= p.Start+p.Count {
			return fmt.Errorf("variation: partial failure index %d outside ascending range [%d,%d)", i, p.Start, p.Start+p.Count)
		}
		prev = i
	}
	return nil
}

// ShardableKind resolves the options to the concrete estimator rung and
// reports whether that rung distributes by sample index. MC, ISLE, and
// QMC do — every draw is a pure function of (Seed, index), and ISLE's
// shift search and QMC's Sobol scrambles are deterministic in (scenario,
// Seed), so independent replicas compute identical shard inputs. AIS,
// WCD, and the auto-routed ≥3σ cascade do not (see ErrNotShardable).
func (o YieldOptions) ShardableKind() (estimator.Kind, bool, error) {
	kind, err := o.resolveKind()
	if err != nil {
		return kind, false, err
	}
	if kind == estimator.AIS || kind == estimator.WCD {
		return kind, false, nil
	}
	if o.Estimator == estimator.Auto && o.TargetSigma >= wcdPrefilterSigma {
		// The pre-filter may certify the candidate analytically and
		// answer with zero samples; distributing would skip it.
		return kind, false, nil
	}
	return kind, true, nil
}

// ResolvedSampling reports the (samples, batch) the options resolve to
// after defaulting — the numbers a shard planner needs to split the
// index range and align shard boundaries with stopping-rule checks.
func (o YieldOptions) ResolvedSampling() (samples, batch int) {
	ro := o.runOptions().withDefaults()
	return ro.Samples, ro.Batch
}

// CollectPartialCtx evaluates the scenario over global sample indices
// [start, start+count) and returns the shard's sparse contributions,
// the resolved estimator rung, and whether importance sampling was in
// effect. The evaluation is the shared kernel's own per-sample path
// (same draws, same eval, same shift search), so a set of shards
// covering [0, Samples) reproduces a local run's contributions exactly.
// The shard never applies the stopping rule — that is global and
// belongs to MergePartials.
func CollectPartialCtx(ctx context.Context, sc *LinkScenario, o YieldOptions, start, count int) (Partial, estimator.Kind, bool, error) {
	if err := sc.Validate(); err != nil {
		return Partial{}, estimator.Auto, false, err
	}
	ro := o.runOptions().withDefaults()
	if err := ro.validate(); err != nil {
		return Partial{}, estimator.Auto, false, err
	}
	kind, ok, err := o.ShardableKind()
	if err != nil {
		return Partial{}, kind, false, err
	}
	if !ok {
		return Partial{}, kind, false, fmt.Errorf("%w: %s", ErrNotShardable, kind)
	}
	if start < 0 || count < 0 || start+count > ro.Samples {
		return Partial{}, kind, false, fmt.Errorf("variation: shard range [%d,%d) outside sample budget %d", start, start+count, ro.Samples)
	}

	ms := &MultiScenario{
		Base:   sc.Base,
		Coeffs: sc.Coeffs,
		Space:  sc.Space,
		Specs:  []model.LineSpec{sc.Spec},
		Target: sc.Target,
	}

	// ISLE: the deterministic shift search runs on every shard —
	// redundant work, but it is what makes replicas interchangeable
	// (any replica computes the identical shift from the scenario).
	var shifts [][]float64
	shifted := false
	var shiftSq []float64
	var shiftedC []bool
	if kind == estimator.ISLE {
		if shifts, err = ms.FindShiftsCtx(ctx); err != nil {
			return Partial{}, kind, false, err
		}
	}
	if shifts == nil {
		shifts = make([][]float64, 1)
	}
	shiftedC = make([]bool, 1)
	shiftSq = make([]float64, 1)
	for _, t := range shifts[0] {
		if t != 0 {
			shiftedC[0] = true
		}
		shiftSq[0] += t * t
	}
	shifted = shiftedC[0]

	var qshifts [][]uint64
	if kind == estimator.QMC {
		qshifts = make([][]uint64, qmcReplicates)
		for r := range qshifts {
			qshifts[r] = estimator.SobolShift(ro.Seed, uint64(r), Dims)
		}
	}

	// Lane kernel by default, scalar per-sample path behind the test
	// hook — see runMCSharedCtx. The per-worker lane scratch comes from
	// a process-wide pool, so a coordinator worker serving successive
	// shard waves reuses the same buffers instead of reallocating per
	// request.
	useLane := !laneKernelDisabled
	var lk *laneKernel
	var lsc []*laneScratch
	chunk := 1
	if useLane {
		lk = newLaneKernel(ms, ro, true, shifts, shiftedC, shiftSq, shifted, qshifts)
		chunk = laneChunk(ro.Batch, pool.Workers(ro.Workers, ro.Batch))
		lanesMax := (ro.Batch + chunk - 1) / chunk
		lsc = make([]*laneScratch, pool.Workers(ro.Workers, lanesMax))
		for w := range lsc {
			lsc[w] = getLaneScratch()
		}
		defer func() {
			for _, s := range lsc {
				putLaneScratch(s)
			}
		}()
	}
	var scratch []multiScratch
	if !useLane {
		maxW := pool.Workers(ro.Workers, ro.Batch)
		scratch = make([]multiScratch, maxW)
		draws := make([]float64, 2*maxW*Dims)
		for w := range scratch {
			scratch[w].eps = draws[2*w*Dims : (2*w+1)*Dims]
			scratch[w].z = draws[(2*w+1)*Dims : (2*w+2)*Dims]
		}
	}
	active := []bool{true}

	var failIdx []int
	var wts []float64
	contrib := getContrib(ro.Batch)
	defer putContrib(contrib)
	for done := 0; done < count; {
		if err := ctx.Err(); err != nil {
			return Partial{}, kind, shifted, err
		}
		if err := faultinject.Hit("variation.batch"); err != nil {
			return Partial{}, kind, shifted, err
		}
		batch := ro.Batch
		if rem := count - done; rem < batch {
			batch = rem
		}
		base := start + done
		var err error
		if useLane {
			lanes := (batch + chunk - 1) / chunk
			err = pool.ForEachWorkerCtx(ctx, ro.Workers, lanes, func(l, worker int) error {
				off := l * chunk
				n := chunk
				if off+n > batch {
					n = batch - off
				}
				return lk.eval(lsc[worker], base+off, n, contrib[off:off+n], 1, active)
			})
		} else {
			err = pool.ForEachWorkerCtx(ctx, ro.Workers, batch, func(k, worker int) error {
				s := &scratch[worker]
				i := base + k
				if kind == estimator.QMC {
					estimator.SobolNormal(uint64(i/qmcReplicates), qshifts[i%qmcReplicates], s.eps)
					return ms.evalShared(s, contrib[k:k+1], active, true)
				}
				s.stream.Reset(ro.Seed, uint64(i))
				s.stream.normsInto(s.eps, ro.Sampler)
				if !shifted {
					return ms.evalShared(s, contrib[k:k+1], active, true)
				}
				return ms.evalShifted(s, contrib[k:k+1], active, shifts, shiftedC, shiftSq)
			})
		}
		if err != nil {
			return Partial{}, kind, shifted, err
		}
		// Count first, grow exactly: the retained fail lists take one
		// allocation per batch at most instead of append's doubling walk.
		nf := 0
		for k := 0; k < batch; k++ {
			if contrib[k] != 0 {
				nf++
			}
		}
		if nf > 0 {
			failIdx = slices.Grow(failIdx, nf)
			if shifted {
				wts = slices.Grow(wts, nf)
			}
			for k := 0; k < batch; k++ {
				if x := contrib[k]; x != 0 {
					failIdx = append(failIdx, base+k)
					if shifted {
						wts = append(wts, x)
					}
				}
			}
		}
		done += batch
		metSamples.Add(int64(batch))
	}
	metShardsCollected.Inc()
	return Partial{Start: start, Count: count, FailIdx: failIdx, Weights: wts}, kind, shifted, nil
}

// MergePartials folds a set of shards back into the single-process
// Estimate. The shards must cover a contiguous prefix [0, avail) of the
// sample range (any order, no gaps, no overlap); done reports whether
// the fold is final — either the global stopping rule fired inside the
// prefix, or the prefix covers the whole budget. While done is false
// the returned Estimate summarizes the prefix and the caller must keep
// extending it.
//
// The fold is the kernel's own: Welford in index order (per-replicate
// index-ordered sums for QMC), with the stopping rule evaluated at
// exactly the batch boundaries the local run checks, so the final
// Estimate — including Samples, StdErr, and VarianceReduction — is
// bit-identical to EstimateLinkYield at any shard count.
func MergePartials(o YieldOptions, kind estimator.Kind, shifted bool, parts []Partial) (Estimate, bool, error) {
	ro := o.runOptions().withDefaults()
	if err := ro.validate(); err != nil {
		return Estimate{}, false, err
	}
	if len(parts) == 0 {
		return Estimate{}, false, errors.New("variation: no partials to merge")
	}
	sorted := make([]Partial, len(parts))
	copy(sorted, parts)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Start < sorted[b].Start })
	if sorted[0].Start != 0 {
		return Estimate{}, false, fmt.Errorf("variation: partials start at %d, want a contiguous prefix from 0", sorted[0].Start)
	}
	next := 0
	for _, p := range sorted {
		if err := p.validate(ro.Samples); err != nil {
			return Estimate{}, false, err
		}
		if p.Start != next {
			return Estimate{}, false, fmt.Errorf("variation: partials leave a gap at sample %d (next shard starts at %d)", next, p.Start)
		}
		next = p.Start + p.Count
	}
	if kind == estimator.QMC {
		if shifted {
			return Estimate{}, false, errors.New("variation: QMC partials cannot be importance-sampled")
		}
		return mergeQMC(ro, sorted)
	}
	return mergeWelford(ro, shifted, sorted)
}

// mergeWelford replays the MC/ISLE serial fold over the contiguous
// prefix, truncating at the stopping rule exactly as RunBatchCtx does.
func mergeWelford(ro Options, shifted bool, parts []Partial) (Estimate, bool, error) {
	var n int
	var mean, m2 float64
	stopped := false
outer:
	for _, p := range parts {
		fi := 0
		for k := 0; k < p.Count; k++ {
			i := p.Start + k
			x := 0.0
			if fi < len(p.FailIdx) && p.FailIdx[fi] == i {
				x = 1.0
				if p.Weights != nil {
					x = p.Weights[fi]
				}
				fi++
			}
			n++
			d := x - mean
			mean += d / float64(n)
			m2 += d * (x - mean)
			if (i+1)%ro.Batch == 0 || i+1 == ro.Samples {
				if stopRule(ro, shifted, n, mean, m2) {
					stopped = true
					break outer
				}
			}
		}
	}

	ck := estimator.MC
	if shifted {
		ck = estimator.ISLE
	}
	est := Estimate{FailProb: mean, Yield: 1 - mean, Samples: n, Shifted: shifted, VarianceReduction: 1, Estimator: ck}
	if n > 1 {
		sampleVar := m2 / float64(n-1)
		est.StdErr = math.Sqrt(sampleVar / float64(n))
		if sampleVar > 0 && mean > 0 && mean < 1 {
			est.VarianceReduction = mean * (1 - mean) / sampleVar
		}
	}
	return est, stopped || n >= ro.Samples, nil
}

// mergeQMC replays the per-replicate index-ordered sums and the
// replicate-mean stopping rule of runQMCSharedCtx.
func mergeQMC(ro Options, parts []Partial) (Estimate, bool, error) {
	var acc qmcAcc
	folded := 0
	stopped := false
outer:
	for _, p := range parts {
		if p.Weights != nil {
			return Estimate{}, false, errors.New("variation: QMC partial carries importance weights")
		}
		fi := 0
		for k := 0; k < p.Count; k++ {
			i := p.Start + k
			x := 0.0
			if fi < len(p.FailIdx) && p.FailIdx[fi] == i {
				x = 1.0
				fi++
			}
			r := i % qmcReplicates
			acc.n[r]++
			acc.sum[r] += x
			folded++
			if (i+1)%ro.Batch == 0 || i+1 == ro.Samples {
				pHat, se, nTot, reps := qmcStats(&acc)
				if qmcStop(ro, nTot, reps, pHat, se) {
					stopped = true
					break outer
				}
			}
		}
	}

	p, se, n, _ := qmcStats(&acc)
	est := Estimate{FailProb: p, Yield: 1 - p, StdErr: se, Samples: n, VarianceReduction: 1, Estimator: estimator.QMC}
	if p > 0 && p < 1 && se > 0 && n > 0 {
		est.VarianceReduction = p * (1 - p) / float64(n) / (se * se)
	}
	return est, stopped || folded >= ro.Samples, nil
}
