package variation

import (
	"math"
	"sync"

	"repro/internal/estimator"
	"repro/internal/liberty"
	"repro/internal/model"
	"repro/internal/tech"
	"repro/internal/wire"
)

// This file is the structure-of-arrays batch-lane sampling kernel: the
// hot per-sample path of the mc/isle/qmc rungs restructured to process
// a lane of up to laneSize samples per call over contiguous float64
// slices. The scalar path (evalShared/evalShifted) walks one sample at
// a time through Space.ApplyInto → Coefficients.ScaleInto →
// perturbSegment → LineDelayRC, copying a full Technology and
// Coefficients per sample and re-deriving quantities the delay never
// reads (leakage exponentials, the unused repeater kind, the unused
// routing layers). The lane kernel compiles everything sample-invariant
// once per run — the per-space apply program, the nominal drive
// resistances, the per-candidate stage constants — and then runs flat
// loops over the lane arrays: draw, apply, rescale, extract, score.
//
// Bit-identity contract: for every sample the lane kernel evaluates
// exactly the floating-point expressions of the scalar path, with the
// same operand values in the same association order, so contributions
// are bit-identical to evalShared/evalShifted. Quantities the scalar
// path computes but the delay comparison never consumes are skipped —
// skipping arithmetic whose result is unused cannot change the bits of
// what remains. Lane partitioning itself cannot affect results either:
// contributions are folded by the caller in sample-index order
// regardless of which lane (or worker) produced them, which also means
// the lane width may adapt to the worker count freely.
//
// The one per-sample branch the scalar path takes that the lane cannot
// precompute is LineSpec.Validate's perturbed-width check (a shrunken
// line can lose its copper core when width·0.6 ≤ 2·barrier). The lane
// flags those rare samples and replays them through the scalar
// evaluator, reproducing the exact error (and error selection order)
// the scalar kernel would surface.

const (
	// laneSize is the maximum samples one lane evaluates per call —
	// large enough to amortize per-task pool overhead (the per-item
	// claim + panic guard that made per-sample dispatch slower in
	// parallel than serial), small enough that per-worker scratch
	// stays cache-resident.
	laneSize = 64
	// laneMin is the floor when shrinking lanes to feed many workers.
	laneMin = 16
)

// laneKernelDisabled routes the sampling kernels through the scalar
// per-sample path instead of the lane kernel. Test hook only: the
// bit-identity matrix runs both paths and compares estimates.
var laneKernelDisabled = false

// laneChunk picks the lane width for a batch: full lanes when serial,
// shrunk (but never below laneMin) so a batch splits across the worker
// budget when parallel. Purely a scheduling choice — lane width never
// affects results.
func laneChunk(batch, workers int) int {
	c := laneSize
	if workers > 1 {
		if per := (batch + workers - 1) / workers; per < c {
			c = per
		}
		if c < laneMin {
			c = laneMin
		}
	}
	if c > batch {
		c = batch
	}
	if c < 1 {
		c = 1
	}
	return c
}

// Factor-array indices of the apply program's outputs, mirroring the
// order Space.ApplyInto derives them.
const (
	facVthN = iota
	facVthP
	facL
	facW
	facT
	facILD
	facRho
	facCount
)

type laneOpCode uint8

const (
	// opConst fills the destination with a constant (an inert
	// zero-sigma dimension, hoisted out of the per-sample path).
	opConst laneOpCode = iota
	// opVth computes a clamped absolute threshold perturbation.
	opVth
	// opRelFactor computes a clamped relative factor 1 + sigma·z.
	opRelFactor
)

// laneOp is one step of the compiled apply program.
type laneOp struct {
	code  laneOpCode
	dst   uint8 // factor-array index
	dim   uint8 // z dimension read (opVth/opRelFactor)
	sigma float64
	base  float64 // opVth: nominal Vth; opConst: the constant
}

// applyProg is the precompiled per-space apply program: a flat op list
// derived once from (Space, base technology) and executed branch-free
// per lane. It hoists the per-sample branching of Space.ApplyInto —
// which sigmas are zero, what the Vth clamp bounds are — into compile
// time.
type applyProg struct {
	ops    [facCount]laneOp
	vthMax float64 // Vdd − 0.05, the upper Vth clamp
}

// compileApplyProg builds the apply program for one space over one
// base technology.
func compileApplyProg(sp Space, base *tech.Technology) applyProg {
	p := applyProg{vthMax: base.Vdd - 0.05}
	clampVth := func(v float64) float64 {
		if v < 0.05 {
			v = 0.05
		}
		if v > p.vthMax {
			v = p.vthMax
		}
		return v
	}
	vth := func(dst, dim uint8, base float64) laneOp {
		if sp.VthSigma == 0 {
			return laneOp{code: opConst, dst: dst, base: clampVth(base)}
		}
		return laneOp{code: opVth, dst: dst, dim: dim, sigma: sp.VthSigma, base: base}
	}
	rel := func(dst, dim uint8, sigma float64) laneOp {
		if sigma == 0 {
			return laneOp{code: opConst, dst: dst, base: 1}
		}
		return laneOp{code: opRelFactor, dst: dst, dim: dim, sigma: sigma}
	}
	p.ops[0] = vth(facVthN, dimVthN, base.NMOS.Vth)
	p.ops[1] = vth(facVthP, dimVthP, base.PMOS.Vth)
	p.ops[2] = rel(facL, dimLength, sp.LengthSigma)
	p.ops[3] = rel(facW, dimWireWidth, sp.WireWidthSigma)
	p.ops[4] = rel(facT, dimWireThickness, sp.WireThicknessSigma)
	p.ops[5] = rel(facILD, dimILD, sp.ILDSigma)
	p.ops[6] = rel(facRho, dimRho, sp.RhoSigma)
	return p
}

// run executes the program over the first n entries of the z arrays.
func (p *applyProg) run(z *[Dims][]float64, fac *[facCount][]float64, n int) {
	for o := range p.ops {
		op := &p.ops[o]
		dst := fac[op.dst][:n]
		switch op.code {
		case opConst:
			v := op.base
			for k := range dst {
				dst[k] = v
			}
		case opVth:
			zz := z[op.dim][:n]
			sg, b, hi := op.sigma, op.base, p.vthMax
			for k := range dst {
				v := b + sg*zz[k]
				if v < 0.05 {
					v = 0.05
				}
				if v > hi {
					v = hi
				}
				dst[k] = v
			}
		case opRelFactor:
			zz := z[op.dim][:n]
			sg := op.sigma
			for k := range dst {
				f := 1 + sg*zz[k]
				if f < 0.6 {
					f = 0.6
				}
				if f > 1.4 {
					f = 1.4
				}
				dst[k] = f
			}
		}
	}
}

// laneScale holds the sample-invariant half of ScaleInto: the nominal
// drive resistances (the rNom of model.driveRatio, computed once
// instead of once per sample) and the nominal gate-capacitance sum.
type laneScale struct {
	vdd            float64
	kN, kP         float64
	alphaN, alphaP float64
	rNomN, rNomP   float64
	odNPos, odPPos bool
	cgN, cgP       float64
	cgSum          float64
	cgPos          bool
}

func laneScaleFor(base *tech.Technology) laneScale {
	sc := laneScale{
		vdd:    base.Vdd,
		kN:     base.NMOS.K,
		kP:     base.PMOS.K,
		alphaN: base.NMOS.Alpha,
		alphaP: base.PMOS.Alpha,
		cgN:    base.NMOS.CGate,
		cgP:    base.PMOS.CGate,
	}
	// The exact expression of model.driveRatio's rNom, evaluated once:
	// the per-sample ratio divides by the identical value.
	if od := sc.vdd - base.NMOS.Vth; od > 0 {
		sc.odNPos = true
		sc.rNomN = sc.vdd / (sc.kN * math.Pow(od, sc.alphaN))
	}
	if od := sc.vdd - base.PMOS.Vth; od > 0 {
		sc.odPPos = true
		sc.rNomP = sc.vdd / (sc.kP * math.Pow(od, sc.alphaP))
	}
	sc.cgSum = sc.cgN + sc.cgP
	sc.cgPos = sc.cgSum > 0
	return sc
}

// laneSeg holds one segment geometry's sample-invariant constants for
// the wire-extraction phase (perturbSegment + model.SegmentRC fused).
type laneSeg struct {
	w0, sp0, th0, ild0 float64
	minSp              float64 // 0.25·sp0, the clampSpacing floor
	twoEps, c12eps     float64 // 2ε and 1.2ε of the layer dielectric
	shielded           bool
}

func laneSegFor(seg wire.Segment) laneSeg {
	eps := tech.Eps0 * seg.Layer.EpsRel
	return laneSeg{
		w0:       seg.Width,
		sp0:      seg.Spacing,
		th0:      seg.Layer.Thickness,
		ild0:     seg.Layer.ILD,
		minSp:    0.25 * seg.Spacing,
		twoEps:   2 * eps,
		c12eps:   1.2 * eps,
		shielded: seg.Style == wire.Shielded,
	}
}

// laneCand holds one candidate's sample-invariant constants: the
// repeater widths (unperturbed technology fields), stage length,
// Miller coefficient, and the unscaled coefficients of the repeater
// kind the candidate actually uses — the lane scales only those,
// skipping the other kind and the leakage/area terms the delay never
// reads.
type laneCand struct {
	wn, wp, wnwp float64
	stageLen     float64
	lambdaHalf   float64
	stages       int
	inverter     bool
	kappa0       float64
	rise, fall   model.EdgeCoeffs
	inputSlew    float64
	staggered    bool
}

// laneKernel is the compiled per-run state of the lane path: the apply
// program plus every per-scenario constant, shared read-only by all
// workers.
type laneKernel struct {
	ms        *MultiScenario
	prog      applyProg
	scale     laneScale
	segs      []laneSeg
	cands     []laneCand
	sharedSeg bool
	target    float64
	seed      uint64
	sampler   Sampler

	// Tech-level wire constants (identical for every segment).
	bar, bar2 float64
	scmfp     float64
	rho0      float64

	// Shifted (ISLE) mode.
	shifts   [][]float64
	shiftedC []bool
	shiftSq  []float64
	halfSq   []float64
	anyShift bool

	// QMC mode.
	qmc     bool
	qshifts [][]uint64
}

func newLaneKernel(ms *MultiScenario, ro Options, sharedSeg bool, shifts [][]float64, shiftedC []bool, shiftSq []float64, anyShift bool, qshifts [][]uint64) *laneKernel {
	lk := &laneKernel{
		ms:        ms,
		prog:      compileApplyProg(ms.Space, ms.Base),
		scale:     laneScaleFor(ms.Base),
		sharedSeg: sharedSeg,
		target:    ms.Target,
		seed:      ro.Seed,
		sampler:   resolveSampler(ro.Sampler),
		bar:       ms.Base.Barrier,
		bar2:      2 * ms.Base.Barrier,
		scmfp:     ms.Base.ScatterCoeff * ms.Base.MeanFreePath,
		rho0:      ms.Base.RhoBulk,
		shifts:    shifts,
		shiftedC:  shiftedC,
		shiftSq:   shiftSq,
		anyShift:  anyShift,
		qshifts:   qshifts,
		qmc:       qshifts != nil,
	}
	if shiftSq != nil {
		lk.halfSq = make([]float64, len(shiftSq))
		for c, s := range shiftSq {
			lk.halfSq[c] = s / 2
		}
	}
	lk.segs = make([]laneSeg, len(ms.Specs))
	lk.cands = make([]laneCand, len(ms.Specs))
	for c := range ms.Specs {
		spec := &ms.Specs[c]
		lk.segs[c] = laneSegFor(spec.Segment)
		wn, wp := ms.Base.InverterWidths(spec.Size)
		kc := &ms.Coeffs.Inv
		if spec.Kind == liberty.Buffer {
			kc = &ms.Coeffs.Buf
		}
		lk.cands[c] = laneCand{
			wn:         wn,
			wp:         wp,
			wnwp:       wn + wp,
			stageLen:   spec.Segment.Length / float64(spec.N),
			lambdaHalf: spec.Segment.Style.MillerFactor() / 2,
			stages:     spec.N,
			inverter:   spec.Kind == liberty.Inverter,
			kappa0:     kc.Kappa,
			rise:       kc.Rise,
			fall:       kc.Fall,
			inputSlew:  spec.InputSlew,
			staggered:  spec.Segment.Style == wire.Staggered,
		}
	}
	return lk
}

// laneScratch is one worker's lane state: fixed-shape arrays of
// laneSize entries carved from one backing slice, plus a scalar
// multiScratch for the rare validation-fallback samples. The shape is
// scenario-independent, so scratches are pooled across runs (and
// across the coordinator's shard waves).
type laneScratch struct {
	backing []float64
	epsT    [Dims][]float64     // transposed base draws
	zs      [Dims][]float64     // transposed shifted draws (ISLE)
	fac     [facCount][]float64 // apply-program outputs
	rdN     []float64
	rdP     []float64
	rCap    []float64
	dot     []float64
	w       []float64
	wid     []float64
	rPerM   []float64
	gPerM   []float64
	cPerM   []float64
	cl      []float64
	dw      []float64
	tot     []float64
	tot2    []float64
	slw     []float64
	slw2    []float64
	fb      []bool
	scalar  multiScratch
}

const laneArrays = Dims + Dims + facCount + 15

var laneScratchPool = sync.Pool{New: func() any {
	ls := &laneScratch{backing: make([]float64, laneArrays*laneSize)}
	b := ls.backing
	carve := func() []float64 {
		a := b[:laneSize:laneSize]
		b = b[laneSize:]
		return a
	}
	for d := 0; d < Dims; d++ {
		ls.epsT[d] = carve()
	}
	for d := 0; d < Dims; d++ {
		ls.zs[d] = carve()
	}
	for f := 0; f < facCount; f++ {
		ls.fac[f] = carve()
	}
	ls.rdN, ls.rdP, ls.rCap = carve(), carve(), carve()
	ls.dot, ls.w = carve(), carve()
	ls.wid = carve()
	ls.rPerM, ls.gPerM, ls.cPerM = carve(), carve(), carve()
	ls.cl, ls.dw = carve(), carve()
	ls.tot, ls.tot2 = carve(), carve()
	ls.slw, ls.slw2 = carve(), carve()
	ls.fb = make([]bool, laneSize)
	draws := make([]float64, 2*Dims)
	ls.scalar.eps = draws[:Dims]
	ls.scalar.z = draws[Dims:]
	return ls
}}

func getLaneScratch() *laneScratch   { return laneScratchPool.Get().(*laneScratch) }
func putLaneScratch(ls *laneScratch) { laneScratchPool.Put(ls) }

// drawPhase fills the transposed base-draw arrays for global sample
// indices [start, start+n): per-sample PRNG streams in dimension order
// (exactly the order the scalar path fills its draw buffer), or Sobol
// points in QMC mode.
func (lk *laneKernel) drawPhase(ls *laneScratch, start, n int) {
	if lk.qmc {
		buf := ls.scalar.eps
		for k := 0; k < n; k++ {
			i := start + k
			estimator.SobolNormal(uint64(i/qmcReplicates), lk.qshifts[i%qmcReplicates], buf)
			for d := 0; d < Dims; d++ {
				ls.epsT[d][k] = buf[d]
			}
		}
		return
	}
	st := &ls.scalar.stream
	if lk.sampler == SamplerBoxMuller {
		for k := 0; k < n; k++ {
			st.Reset(lk.seed, uint64(start+k))
			for d := 0; d < Dims; d++ {
				ls.epsT[d][k] = st.Norm()
			}
		}
		return
	}
	for k := 0; k < n; k++ {
		st.Reset(lk.seed, uint64(start+k))
		for d := 0; d < Dims; d++ {
			ls.epsT[d][k] = st.NormZig()
		}
	}
}

// shiftCand prepares candidate c's shifted draws and likelihood-ratio
// weights: z ← ε + θ with w = exp(−⟨θ,z⟩ + |θ|²/2), the dot product
// accumulated in dimension order exactly as evalShifted does.
func (lk *laneKernel) shiftCand(ls *laneScratch, c, n int) {
	dot := ls.dot[:n]
	for k := range dot {
		dot[k] = 0
	}
	th := lk.shifts[c]
	for d := 0; d < Dims; d++ {
		t := th[d]
		e := ls.epsT[d][:n]
		zz := ls.zs[d][:n]
		for k := range zz {
			z := e[k] + t
			zz[k] = z
			dot[k] += t * z
		}
	}
	w := ls.w[:n]
	half := lk.halfSq[c]
	for k := range w {
		w[k] = math.Exp(-dot[k] + half)
	}
}

// scalePhase derives the per-sample drive and capacitance ratios —
// the subset of ScaleInto the delay path consumes — from the apply
// program's outputs. The expressions mirror model.driveRatio and
// ScaleInto exactly (perturbed K is nominal/fL, perturbed CGate is
// nominal·fL, same association order); only the nominal halves are
// precomputed.
func (lk *laneKernel) scalePhase(ls *laneScratch, n int) {
	sc := &lk.scale
	fL := ls.fac[facL][:n]
	vthN := ls.fac[facVthN][:n]
	vthP := ls.fac[facVthP][:n]
	rdN := ls.rdN[:n]
	rdP := ls.rdP[:n]
	rCap := ls.rCap[:n]
	for k := range fL {
		r := 1.0
		if sc.odNPos {
			if od := sc.vdd - vthN[k]; od > 0 {
				r = (sc.vdd / ((sc.kN / fL[k]) * math.Pow(od, sc.alphaN))) / sc.rNomN
			}
		}
		rdN[k] = r
		r = 1.0
		if sc.odPPos {
			if od := sc.vdd - vthP[k]; od > 0 {
				r = (sc.vdd / ((sc.kP / fL[k]) * math.Pow(od, sc.alphaP))) / sc.rNomP
			}
		}
		rdP[k] = r
		rc := 1.0
		if sc.cgPos {
			rc = ((sc.cgN * fL[k]) + (sc.cgP * fL[k])) / sc.cgSum
		}
		rCap[k] = rc
	}
}

// wirePhase fuses perturbSegment with model.SegmentRC: perturb the
// drawn geometry (width at constant pitch, clamped spacing, thickness
// and ILD factors) and extract the corrected per-meter resistance and
// the style-resolved capacitances, mirroring wire.ResistancePerMeter /
// GroundCapPerMeter / CouplingCapPerMeter operation for operation.
func (lk *laneKernel) wirePhase(ls *laneScratch, sg *laneSeg, n int) {
	fW := ls.fac[facW][:n]
	fT := ls.fac[facT][:n]
	fI := ls.fac[facILD][:n]
	fR := ls.fac[facRho][:n]
	wid := ls.wid[:n]
	rp := ls.rPerM[:n]
	gp := ls.gPerM[:n]
	cp := ls.cPerM[:n]
	for k := range fW {
		dw := sg.w0 * (fW[k] - 1)
		w := sg.w0 + dw
		sp := sg.sp0 - dw
		if sp < sg.minSp {
			sp = sg.minSp
		}
		th := sg.th0 * fT[k]
		ild := sg.ild0 * fI[k]
		rho := lk.rho0 * fR[k]

		coreW := w - lk.bar2
		coreH := th - lk.bar
		if coreW <= 0 || coreH <= 0 {
			rp[k] = 1e12
		} else {
			core := w - lk.bar2
			if core <= 0 {
				core = 1e-10
			}
			rp[k] = rho * (1 + lk.scmfp/core) / (coreW * coreH)
		}

		g := sg.twoEps * (1.15*(w/ild) + 2.80*math.Pow(th/ild, 0.222))
		cc := sg.c12eps * th / sp
		if sg.shielded {
			gp[k] = g + 2*cc
			cp[k] = 0
		} else {
			gp[k] = g
			cp[k] = 2 * cc
		}
		wid[k] = w
	}
}

// flagFallback marks samples whose perturbed width fails the scalar
// path's per-sample validation (no copper core left after the
// barrier); those replay through the scalar evaluator to surface the
// identical error.
func (lk *laneKernel) flagFallback(ls *laneScratch, n int) bool {
	wid := ls.wid[:n]
	any := false
	for k := range wid {
		if wid[k] <= lk.bar2 {
			ls.fb[k] = true
			any = true
		}
	}
	return any
}

// candPhase scores candidate c across the lane: load and wire-delay
// arrays, both edge polarities, worst edge against the target. wts is
// nil for unit contributions (plain MC/QMC) or the likelihood-ratio
// weights (ISLE).
func (lk *laneKernel) candPhase(ls *laneScratch, c, n int, contrib []float64, K int, wts []float64) {
	cd := &lk.cands[c]
	rCap := ls.rCap[:n]
	gp := ls.gPerM[:n]
	cp := ls.cPerM[:n]
	rp := ls.rPerM[:n]
	cl := ls.cl[:n]
	dwv := ls.dw[:n]
	for k := range rCap {
		ci := (cd.kappa0 * rCap[k]) * cd.wnwp
		ground := gp[k] * cd.stageLen
		coupling := cp[k] * cd.stageLen
		quiet, coupled := ground, coupling
		if cd.staggered {
			quiet = ground + coupling
			coupled = 0
		}
		cl[k] = quiet + 2*coupled + ci
		dwv[k] = rp[k] * cd.stageLen * (0.4*quiet + cd.lambdaHalf*coupled + 0.7*ci)
	}
	lk.edgePass(ls, cd, true, ls.tot, ls.slw, n)
	lk.edgePass(ls, cd, false, ls.tot2, ls.slw2, n)
	tR := ls.tot[:n]
	tF := ls.tot2[:n]
	tgt := lk.target
	if wts == nil {
		for k := range tR {
			d := tR[k]
			if !(tR[k] >= tF[k]) {
				d = tF[k]
			}
			if d > tgt {
				contrib[k*K+c] = 1
			} else {
				contrib[k*K+c] = 0
			}
		}
		return
	}
	w := wts[:n]
	for k := range tR {
		d := tR[k]
		if !(tR[k] >= tF[k]) {
			d = tF[k]
		}
		if d > tgt {
			contrib[k*K+c] = w[k]
		} else {
			contrib[k*K+c] = 0
		}
	}
}

// edgePass evaluates one starting polarity across the lane, mirroring
// Coefficients.lineEdge with the coefficient scaling (scaleEdge's
// rd·rc products) fused into the stage loop.
func (lk *laneKernel) edgePass(ls *laneScratch, cd *laneCand, startRising bool, tot, slw []float64, n int) {
	tot = tot[:n]
	slw = slw[:n]
	for k := range tot {
		tot[k] = 0
		slw[k] = cd.inputSlew
	}
	rCap := ls.rCap[:n]
	cl := ls.cl[:n]
	dwv := ls.dw[:n]
	outRising := startRising
	if cd.inverter {
		outRising = !startRising
	}
	for i := 0; i < cd.stages; i++ {
		rd := ls.rdN[:n]
		wr := cd.wn
		e := &cd.fall
		if outRising {
			rd = ls.rdP[:n]
			wr = cd.wp
			e = &cd.rise
		}
		a0, a1, a2 := e.A0, e.A1, e.A2
		b0, b1 := e.Beta0, e.Beta1
		g0, g1, g2 := e.Gamma0, e.Gamma1, e.Gamma2
		for k := range tot {
			rdv := rd[k]
			rdrc := rdv * rCap[k]
			s := slw[k]
			clv := cl[k]
			delay := (a0*rdrc + a1*rdrc*s + a2*rdrc*s*s) +
				(b0*rdv/wr+b1*rdv/wr*s)*clv
			tot[k] += delay
			tot[k] += dwv[k]
			sl := g0*rdv + g1*rdv*s/wr + g2*rdv*clv
			if sl < 1e-15 {
				sl = 1e-15
			}
			slw[k] = sl
		}
		if cd.inverter {
			outRising = !outRising
		}
	}
}

// fallback replays flagged samples through the scalar evaluator —
// same draws, same eval — overwriting their contribution rows and
// surfacing the exact error the scalar kernel would (lowest flagged
// sample first, matching the pool's lowest-index error selection).
func (lk *laneKernel) fallback(ls *laneScratch, start, n int, contrib []float64, K int, active []bool) error {
	s := &ls.scalar
	for k := 0; k < n; k++ {
		if !ls.fb[k] {
			continue
		}
		i := start + k
		if lk.qmc {
			estimator.SobolNormal(uint64(i/qmcReplicates), lk.qshifts[i%qmcReplicates], s.eps)
		} else {
			s.stream.Reset(lk.seed, uint64(i))
			s.stream.normsInto(s.eps, lk.sampler)
		}
		row := contrib[k*K : (k+1)*K]
		var err error
		if lk.anyShift {
			err = lk.ms.evalShifted(s, row, active, lk.shifts, lk.shiftedC, lk.shiftSq)
		} else {
			err = lk.ms.evalShared(s, row, active, lk.sharedSeg)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// eval scores one lane: global sample indices [start, start+n) into
// contribution rows contrib[k*K+c]. Only active candidates are
// written, mirroring the scalar evaluators.
func (lk *laneKernel) eval(ls *laneScratch, start, n int, contrib []float64, K int, active []bool) error {
	lk.drawPhase(ls, start, n)
	fb := ls.fb[:n]
	for k := range fb {
		fb[k] = false
	}
	anyFB := false
	if !lk.anyShift {
		lk.prog.run(&ls.epsT, &ls.fac, n)
		lk.scalePhase(ls, n)
		if lk.sharedSeg {
			lk.wirePhase(ls, &lk.segs[0], n)
			anyFB = lk.flagFallback(ls, n)
			for c := range lk.cands {
				if !active[c] {
					continue
				}
				lk.candPhase(ls, c, n, contrib, K, nil)
			}
		} else {
			for c := range lk.cands {
				if !active[c] {
					continue
				}
				lk.wirePhase(ls, &lk.segs[c], n)
				if lk.flagFallback(ls, n) {
					anyFB = true
				}
				lk.candPhase(ls, c, n, contrib, K, nil)
			}
		}
	} else {
		for c := range lk.cands {
			if !active[c] {
				continue
			}
			var wts []float64
			if lk.shiftedC[c] {
				lk.shiftCand(ls, c, n)
				lk.prog.run(&ls.zs, &ls.fac, n)
				wts = ls.w
			} else {
				lk.prog.run(&ls.epsT, &ls.fac, n)
			}
			lk.scalePhase(ls, n)
			lk.wirePhase(ls, &lk.segs[c], n)
			if lk.flagFallback(ls, n) {
				anyFB = true
			}
			lk.candPhase(ls, c, n, contrib, K, wts)
		}
	}
	if anyFB {
		return lk.fallback(ls, start, n, contrib, K, active)
	}
	return nil
}
