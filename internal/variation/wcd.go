package variation

import (
	"context"

	"repro/internal/estimator"
	"repro/internal/model"
	"repro/internal/obs"
)

// Worst-case-distance integration: the analytic bound of
// internal/estimator evaluated through the scenario delay model, and
// the WCD→sampling cascade that lets a deep-sigma query skip sampling
// entirely when the bound is conclusive.

// wcdPrefilterSigma arms the pre-filter: auto-routed queries targeting
// at least this sigma run the analytic bound before any sampling. At
// 3σ the routed estimators (QMC/ISLE/AIS) all cost thousands of model
// evaluations; the bound costs ~a hundred, so a conclusive certificate
// is a ≥10× saving and an inconclusive one a ≤10% overhead.
const wcdPrefilterSigma = 3.0

// Cascade observability: how the pre-filter resolved.
var (
	metWCDCertified    = obs.NewCounter("variation.wcd_certified")
	metWCDRefuted      = obs.NewCounter("variation.wcd_refuted")
	metWCDInconclusive = obs.NewCounter("variation.wcd_inconclusive")
)

// WCDForScenario computes the worst-case-distance bound of a
// scenario: the minimum-norm standardized draw at which the link
// misses its delay target, found by deterministic projected line
// search over the closed-form delay model (no sampling).
func WCDForScenario(sc *LinkScenario) (estimator.Bound, error) {
	return WCDForScenarioCtx(context.Background(), sc)
}

// WCDForScenarioCtx is WCDForScenario under a context, checked between
// the deterministic model evaluations.
func WCDForScenarioCtx(ctx context.Context, sc *LinkScenario) (estimator.Bound, error) {
	if err := sc.Validate(); err != nil {
		return estimator.Bound{}, err
	}
	var s Scratch
	return estimator.FindWCD(Dims, sc.Target, func(z []float64) (float64, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return sc.DelayScratch(&s, z)
	})
}

// wcdEstimate maps a bound to the Estimate shape the sampling rungs
// return: the first-order failure probability with the conservative
// band as its standard error, zero samples drawn.
func wcdEstimate(b estimator.Bound) Estimate {
	return Estimate{
		FailProb:          b.FailProb,
		Yield:             1 - b.FailProb,
		StdErr:            b.Band(0),
		VarianceReduction: 1,
		Estimator:         estimator.WCD,
	}
}

// wcdEstimatesCtx answers every candidate analytically (the explicit
// "wcd" estimator).
func wcdEstimatesCtx(ctx context.Context, ms *MultiScenario, sigma float64) ([]Estimate, error) {
	ests := make([]Estimate, len(ms.Specs))
	for c := range ms.Specs {
		b, err := WCDForScenarioCtx(ctx, ms.scenario(c))
		if err != nil {
			return nil, err
		}
		if sigma > 0 {
			countVerdict(b.Certify(sigma, 0))
		}
		ests[c] = wcdEstimate(b)
	}
	return ests, nil
}

// cascadeCtx is the WCD→sampling cascade of an auto-routed deep-sigma
// query: every candidate's analytic bound runs first, candidates the
// certificate settles (yield certified reached or certified
// unreachable at TargetSigma ± margin) are answered without sampling,
// and only the inconclusive remainder goes through the routed sampling
// rung — on a sub-scenario, so the samples it draws match what a
// direct query on those candidates alone would draw.
func cascadeCtx(ctx context.Context, ms *MultiScenario, o YieldOptions, ro Options, kind estimator.Kind) ([]Estimate, error) {
	K := len(ms.Specs)
	ests := make([]Estimate, K)
	var open []int
	for c := 0; c < K; c++ {
		b, err := WCDForScenarioCtx(ctx, ms.scenario(c))
		if err != nil {
			return nil, err
		}
		v := b.Certify(o.TargetSigma, 0)
		countVerdict(v)
		if v == estimator.Inconclusive {
			open = append(open, c)
			continue
		}
		ests[c] = wcdEstimate(b)
	}
	if len(open) == 0 {
		return ests, nil
	}
	sub := &MultiScenario{
		Base:   ms.Base,
		Coeffs: ms.Coeffs,
		Space:  ms.Space,
		Specs:  make([]model.LineSpec, len(open)),
		Target: ms.Target,
	}
	if ms.Shifts != nil {
		sub.Shifts = make([][]float64, len(open))
	}
	for i, c := range open {
		sub.Specs[i] = ms.Specs[c]
		if ms.Shifts != nil {
			sub.Shifts[i] = ms.Shifts[c]
		}
	}
	sampled, err := sampleEstimatesCtx(ctx, sub, o, ro, kind)
	if err != nil {
		return nil, err
	}
	for i, c := range open {
		ests[c] = sampled[i]
	}
	return ests, nil
}

func countVerdict(v estimator.Verdict) {
	switch v {
	case estimator.CertifiedYield:
		metWCDCertified.Inc()
	case estimator.CertifiedUnreachable:
		metWCDRefuted.Inc()
	default:
		metWCDInconclusive.Inc()
	}
}
