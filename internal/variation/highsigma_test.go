package variation

import (
	"context"
	"math"
	"runtime"
	"testing"

	"repro/internal/estimator"
)

// linearWorkerMetric adapts a linear form a·z to the AIS core's
// worker-aware metric signature. P[a·z > t] = Φ(−t/‖a‖) exactly, so
// the estimate can be checked against a closed form.
func linearWorkerMetric(a []float64) func(worker int, z []float64) (float64, error) {
	return func(_ int, z []float64) (float64, error) {
		var s float64
		for d := range a {
			s += a[d] * z[d]
		}
		return s, nil
	}
}

// TestAISLinearCrossCheck is the satellite cross-check: AIS against
// the analytically known failure probability of a linear metric at
// 2σ, 3σ, and 4σ. The estimate must agree with Φ(−σ) well within its
// own reported error bar, and the error bar must be tight.
func TestAISLinearCrossCheck(t *testing.T) {
	a := make([]float64, Dims)
	a[0], a[2], a[5] = 2, 1, 0.5 // ‖a‖ = 2.29...
	var norm float64
	for _, v := range a {
		norm += v * v
	}
	nrm := math.Sqrt(norm)
	for _, sigma := range []float64{2, 3, 4} {
		ro := (Options{Samples: 16384, Seed: 11}).withDefaults()
		est, err := runAISMetricCtx(context.Background(), ro, sigma*nrm, linearWorkerMetric(a))
		if err != nil {
			t.Fatal(err)
		}
		want := estimator.Phi(-sigma)
		if est.FailProb <= 0 {
			t.Fatalf("σ=%g: AIS found no failures (want p=%g)", sigma, want)
		}
		if diff := math.Abs(est.FailProb - want); diff > 4*est.StdErr+0.02*want {
			t.Fatalf("σ=%g: AIS p=%g want %g (diff %g, se %g)", sigma, est.FailProb, want, diff, est.StdErr)
		}
		if est.StdErr/want > 0.25 {
			t.Fatalf("σ=%g: AIS error bar %g too loose for p=%g", sigma, est.StdErr, want)
		}
		if est.Estimator != estimator.AIS || !est.Shifted {
			t.Fatalf("σ=%g: estimate not labeled AIS/shifted: %+v", sigma, est)
		}
	}
}

// TestAISDeepTailLinear pins the headline capability: at 6σ
// (p ≈ 1e-9, far beyond any feasible plain-MC budget) AIS still lands
// within a small multiple of the true probability.
func TestAISDeepTailLinear(t *testing.T) {
	a := make([]float64, Dims)
	a[0] = 1
	ro := (Options{Samples: 16384, Seed: 7}).withDefaults()
	est, err := runAISMetricCtx(context.Background(), ro, 6, linearWorkerMetric(a))
	if err != nil {
		t.Fatal(err)
	}
	want := estimator.Phi(-6)
	if est.FailProb <= 0 {
		t.Fatalf("6σ: AIS found no failures (want p=%g)", want)
	}
	if r := est.FailProb / want; r < 0.5 || r > 2 {
		t.Fatalf("6σ: AIS p=%g is %.2f× the true %g", est.FailProb, r, want)
	}
}

// TestWCDScenarioAgainstMC cross-checks the analytic bound against
// plain Monte Carlo on the real delay model: the first-order sigma
// level must match the MC-observed sigma level within the
// certification margin the cascade relies on.
func TestWCDScenarioAgainstMC(t *testing.T) {
	sc := testScenario(t, 520e-12)
	b, err := WCDForScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Reached || b.Beta <= 0 {
		t.Fatalf("bound not reached: %+v", b)
	}
	mc, err := EstimateLinkYield(sc, YieldOptions{Samples: 65536, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if mc.FailProb <= 0 {
		t.Skip("target too easy for the MC budget; no failures to compare")
	}
	mcSigma := estimator.SigmaOf(mc.FailProb)
	if math.Abs(mcSigma-b.Beta) > estimator.DefaultWCDMargin {
		t.Fatalf("WCD β=%.3f vs MC sigma %.3f (p=%g): gap exceeds the certification margin", b.Beta, mcSigma, mc.FailProb)
	}
}

// TestRungDeterminismAcrossWorkers extends the engine's determinism
// contract to the new rungs: AIS and QMC estimates must be
// bit-identical at every worker count.
func TestRungDeterminismAcrossWorkers(t *testing.T) {
	for _, kind := range []estimator.Kind{estimator.AIS, estimator.QMC} {
		sc := testScenario(t, 520e-12)
		base := YieldOptions{Samples: 4096, Seed: 3, Estimator: kind}
		want, err := EstimateLinkYield(sc, base)
		if err != nil {
			t.Fatal(err)
		}
		if want.Estimator != kind {
			t.Fatalf("estimate labeled %q, want %q", want.Estimator, kind)
		}
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			o := base
			o.Workers = workers
			got, err := EstimateLinkYield(sc, o)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s workers=%d diverged:\n got %+v\nwant %+v", kind, workers, got, want)
			}
		}
	}
}

// TestQMCAgreesWithMC: on a moderate-sigma target the QMC rung and
// plain MC must agree within their combined error bars.
func TestQMCAgreesWithMC(t *testing.T) {
	sc := testScenario(t, 500e-12)
	mc, err := EstimateLinkYield(sc, YieldOptions{Samples: 32768, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	qmc, err := EstimateLinkYield(sc, YieldOptions{Samples: 32768, Seed: 5, Estimator: estimator.QMC})
	if err != nil {
		t.Fatal(err)
	}
	if qmc.Estimator != estimator.QMC || qmc.Shifted {
		t.Fatalf("QMC estimate mislabeled: %+v", qmc)
	}
	tol := 4*math.Hypot(mc.StdErr, qmc.StdErr) + 1e-4
	if diff := math.Abs(mc.FailProb - qmc.FailProb); diff > tol {
		t.Fatalf("QMC p=%g vs MC p=%g: diff %g > %g", qmc.FailProb, mc.FailProb, diff, tol)
	}
}

// TestDispatchRespectsExplicitKind: every explicitly requested rung
// labels its estimate, and bogus names / sigmas are rejected.
func TestDispatchRespectsExplicitKind(t *testing.T) {
	sc := testScenario(t, 520e-12)
	for _, kind := range []estimator.Kind{estimator.MC, estimator.ISLE, estimator.QMC, estimator.AIS, estimator.WCD} {
		est, err := EstimateLinkYield(sc, YieldOptions{Samples: 1024, Seed: 1, Estimator: kind})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if est.Estimator != kind {
			t.Fatalf("requested %q, estimate labeled %q", kind, est.Estimator)
		}
	}
	if _, err := EstimateLinkYield(sc, YieldOptions{Estimator: estimator.Kind("bogus")}); err == nil {
		t.Fatal("unknown estimator accepted")
	}
	if _, err := EstimateLinkYield(sc, YieldOptions{TargetSigma: -1}); err == nil {
		t.Fatal("negative target sigma accepted")
	}
	if _, err := EstimateLinkYield(sc, YieldOptions{TargetSigma: math.NaN()}); err == nil {
		t.Fatal("NaN target sigma accepted")
	}
}

// TestHistoricalDefaultsUnchanged: with no estimator hints the
// dispatch must reproduce the historical MC and ISLE paths
// bit-identically (the new Estimator label aside, which the legacy
// comparison test already covers via struct equality).
func TestHistoricalDefaultsUnchanged(t *testing.T) {
	sc := testScenario(t, 520e-12)
	mc, err := EstimateLinkYield(sc, YieldOptions{Samples: 2048, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Estimator != estimator.MC || mc.Shifted {
		t.Fatalf("default path mislabeled: %+v", mc)
	}
	is, err := EstimateLinkYield(sc, YieldOptions{Samples: 2048, Seed: 3, ImportanceSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	if is.Estimator != estimator.ISLE || !is.Shifted {
		t.Fatalf("IS path mislabeled: %+v", is)
	}
}

// TestCascadeCertifiesWithoutSampling: an auto-routed deep-sigma query
// whose analytic bound is conclusive must answer from the certificate
// alone — zero samples drawn — in both directions (yield certified and
// yield unreachable).
func TestCascadeCertifiesWithoutSampling(t *testing.T) {
	// Generous target: the failure region is beyond the search cap, so
	// a 6σ query is certified-yield analytically.
	easy := testScenario(t, 900e-12)
	est, err := EstimateLinkYield(easy, YieldOptions{Samples: 4096, Seed: 1, TargetSigma: 6})
	if err != nil {
		t.Fatal(err)
	}
	if est.Estimator != estimator.WCD || est.Samples != 0 {
		t.Fatalf("easy 6σ query was not answered analytically: %+v", est)
	}
	if est.FailProb > estimator.Phi(-6) {
		t.Fatalf("certified-yield estimate p=%g above the 6σ target", est.FailProb)
	}

	// Impossible target: the nominal design already fails, β=0, so any
	// deep-sigma demand is certified unreachable.
	nom, err := easy.NominalDelay()
	if err != nil {
		t.Fatal(err)
	}
	hard := testScenario(t, nom*0.9)
	est, err = EstimateLinkYield(hard, YieldOptions{Samples: 4096, Seed: 1, TargetSigma: 6})
	if err != nil {
		t.Fatal(err)
	}
	if est.Estimator != estimator.WCD || est.Samples != 0 {
		t.Fatalf("impossible 6σ query was not answered analytically: %+v", est)
	}
	if est.FailProb < 0.5 {
		t.Fatalf("certified-unreachable estimate p=%g implausibly low", est.FailProb)
	}
}

// TestCascadeInconclusiveFallsThrough: when the target sigma sits
// right at the analytic bound (inside the certification margin), the
// cascade must hand the query to the routed sampling rung.
func TestCascadeInconclusiveFallsThrough(t *testing.T) {
	sc := testScenario(t, 560e-12)
	b, err := WCDForScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Reached || b.Beta < wcdPrefilterSigma {
		t.Skipf("scenario bound β=%.2f below the pre-filter threshold; pick a deeper target", b.Beta)
	}
	est, err := EstimateLinkYield(sc, YieldOptions{Samples: 2048, Seed: 1, TargetSigma: b.Beta})
	if err != nil {
		t.Fatal(err)
	}
	if est.Estimator == estimator.WCD || est.Samples == 0 {
		t.Fatalf("inconclusive query did not fall through to sampling: %+v", est)
	}
}
