package variation

import (
	"context"
	"math"

	"repro/internal/estimator"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/pool"
)

// Quasi-Monte Carlo rung of the estimator ladder: the shared-sample
// kernel with scrambled Sobol points through the inverse normal CDF in
// place of pseudo-random draws. Low-discrepancy points cover the
// standardized space far more evenly than PRNG draws, which buys a
// convergence rate approaching 1/n (against MC's 1/√n) for the smooth
// 2–3σ indicator integrals the router sends here.
//
// A single deterministic sequence has no variance to report, so the
// kernel interleaves qmcReplicates independently scrambled copies of
// the sequence — sample i takes point i/R of replicate i mod R — and
// the estimate's standard error is the spread of the replicate means.
// Each replicate is an unbiased estimator (the digital shift
// randomizes without breaking the net structure), so the error bar is
// honest. Sample i's point depends only on (Seed, i), never on which
// worker computes it, preserving the engine's any-worker-count
// determinism contract.

// qmcReplicates is the number of interleaved scrambled copies; 8 gives
// 7 degrees of freedom for the error bar while keeping each copy long
// enough to realize the low-discrepancy advantage.
const qmcReplicates = 8

var metRunsQMC = obs.NewCounter("variation.runs_qmc")

// qmcAcc holds one candidate's per-replicate indicator sums.
type qmcAcc struct {
	n   [qmcReplicates]int
	sum [qmcReplicates]float64
}

// runQMCSharedCtx mirrors runMCSharedCtx's batching, per-candidate
// stopping, and index-ordered folds, with Sobol points and
// replicate-mean error bars.
func runQMCSharedCtx(ctx context.Context, ms *MultiScenario, ro Options) ([]Estimate, error) {
	K := len(ms.Specs)
	metRunsQMC.Add(int64(K))

	shifts := make([][]uint64, qmcReplicates)
	for r := range shifts {
		shifts[r] = estimator.SobolShift(ro.Seed, uint64(r), Dims)
	}

	sharedSeg := true
	for c := 1; c < K; c++ {
		if ms.Specs[c].Segment != ms.Specs[0].Segment {
			sharedSeg = false
			break
		}
	}

	// Per-candidate, per-replicate indicator sums. Replicate means are
	// the estimator; their spread is the error bar.
	accs := make([]qmcAcc, K)
	active := make([]bool, K)
	for c := range active {
		active[c] = true
	}
	left := K

	// Lane kernel by default, scalar per-sample path behind the test
	// hook — see runMCSharedCtx.
	useLane := !laneKernelDisabled
	var lk *laneKernel
	var lsc []*laneScratch
	chunk := 1
	if useLane {
		lk = newLaneKernel(ms, ro, sharedSeg, nil, nil, nil, false, shifts)
		chunk = laneChunk(ro.Batch, pool.Workers(ro.Workers, ro.Batch))
		lanesMax := (ro.Batch + chunk - 1) / chunk
		lsc = make([]*laneScratch, pool.Workers(ro.Workers, lanesMax))
		for w := range lsc {
			lsc[w] = getLaneScratch()
		}
		defer func() {
			for _, s := range lsc {
				putLaneScratch(s)
			}
		}()
	}
	var scratch []multiScratch
	if !useLane {
		maxW := pool.Workers(ro.Workers, ro.Batch)
		scratch = make([]multiScratch, maxW)
		draws := make([]float64, maxW*Dims)
		for w := range scratch {
			scratch[w].eps = draws[w*Dims : (w+1)*Dims]
		}
	}

	contrib := make([]float64, ro.Batch*K)
	for done := 0; done < ro.Samples && left > 0; {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := faultinject.Hit("variation.batch"); err != nil {
			return nil, err
		}
		batch := ro.Batch
		if rem := ro.Samples - done; rem < batch {
			batch = rem
		}
		start := done
		var err error
		if useLane {
			lanes := (batch + chunk - 1) / chunk
			err = pool.ForEachWorkerCtx(ctx, ro.Workers, lanes, func(l, worker int) error {
				off := l * chunk
				n := chunk
				if off+n > batch {
					n = batch - off
				}
				return lk.eval(lsc[worker], start+off, n, contrib[off*K:(off+n)*K], K, active)
			})
		} else {
			err = pool.ForEachWorkerCtx(ctx, ro.Workers, batch, func(k, worker int) error {
				i := start + k
				s := &scratch[worker]
				estimator.SobolNormal(uint64(i/qmcReplicates), shifts[i%qmcReplicates], s.eps)
				row := contrib[k*K : (k+1)*K]
				return ms.evalShared(s, row, active, sharedSeg)
			})
		}
		if err != nil {
			return nil, err
		}
		for k := 0; k < batch; k++ {
			r := (start + k) % qmcReplicates
			row := contrib[k*K : (k+1)*K]
			for c := 0; c < K; c++ {
				if !active[c] {
					continue
				}
				accs[c].n[r]++
				accs[c].sum[r] += row[c]
			}
		}
		done += batch
		metSamples.Add(int64(batch) * int64(left))
		for c := 0; c < K; c++ {
			if !active[c] {
				continue
			}
			p, se, n, reps := qmcStats(&accs[c])
			if qmcStop(ro, n, reps, p, se) {
				active[c] = false
				left--
			}
		}
	}

	ests := make([]Estimate, K)
	for c := range ests {
		p, se, n, _ := qmcStats(&accs[c])
		e := Estimate{FailProb: p, Yield: 1 - p, StdErr: se, Samples: n, VarianceReduction: 1, Estimator: estimator.QMC}
		if p > 0 && p < 1 && se > 0 && n > 0 {
			e.VarianceReduction = p * (1 - p) / float64(n) / (se * se)
		}
		ests[c] = e
	}
	return ests, nil
}

// qmcStats reduces one candidate's accumulator: the mean of replicate
// means and its standard error (0 while fewer than two replicates have
// data — the caller treats that as "not yet resolvable").
func qmcStats(a *qmcAcc) (p, se float64, n, reps int) {
	var means [qmcReplicates]float64
	var sum float64
	for r := range a.n {
		n += a.n[r]
		if a.n[r] == 0 {
			continue
		}
		means[reps] = a.sum[r] / float64(a.n[r])
		sum += means[reps]
		reps++
	}
	if reps == 0 {
		return 0, 0, n, reps
	}
	p = sum / float64(reps)
	if reps < 2 {
		return p, 0, n, reps
	}
	var ss float64
	for i := 0; i < reps; i++ {
		d := means[i] - p
		ss += d * d
	}
	se = math.Sqrt(ss / float64(reps*(reps-1)))
	return p, se, n, reps
}

// qmcStop is stopRule for replicate-mean error bars: the relative and
// absolute rules when failures were observed, the rule-of-three escape
// when none were (valid here — QMC indicators are unshifted Bernoulli
// contributions, exactly the regime the bound assumes).
func qmcStop(o Options, n, reps int, p, se float64) bool {
	if n < o.MinSamples || reps < 2 || (o.RelErr <= 0 && o.AbsErr <= 0) {
		return false
	}
	if p > 0 {
		if o.RelErr > 0 && se/p <= o.RelErr {
			metStopRelErr.Inc()
			return true
		}
		if o.AbsErr > 0 && se <= o.AbsErr {
			metStopAbsErr.Inc()
			return true
		}
		return false
	}
	bound := 3 / float64(n)
	if (o.RelErr > 0 && bound <= o.RelErr) || (o.AbsErr > 0 && bound <= o.AbsErr) {
		metStopZeroFail.Inc()
		return true
	}
	return false
}
