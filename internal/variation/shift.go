package variation

import (
	"fmt"
	"math"
)

// This file locates the importance-sampling mean shift. The ISLE-style
// estimator wants the sampling distribution centered on the most
// probable failure point: the point of the failure region closest to
// the origin in the standardized space. For the smooth, monotone
// closed-form delay models a first-order search is enough — take the
// gradient of the metric at the nominal point, walk along it until the
// metric crosses the failure threshold, and refine the crossing by
// bisection. All evaluations are deterministic, so two runs with the
// same scenario compute the same shift.

// Metric maps a standardized draw to the scalar the yield constraint
// thresholds (for link yield: the worst-edge delay in seconds).
// Failure means metric ≥ target.
type Metric func(z []float64) (float64, error)

// maxShiftNorm caps how far out the shift may sit. Beyond ~8σ the
// failure probability is below anything the estimators can resolve
// anyway, and the likelihood ratios grow numerically hostile.
const maxShiftNorm = 8.0

// FindShift computes a mean shift toward the failure region of the
// metric, returning nil (plain Monte Carlo) when shifting cannot help:
// the nominal point already fails, or the metric shows no gradient.
func FindShift(dims int, target float64, metric Metric) ([]float64, error) {
	if dims <= 0 {
		return nil, fmt.Errorf("variation: non-positive dimension %d", dims)
	}
	z := make([]float64, dims)
	m0, err := metric(z)
	if err != nil {
		return nil, err
	}
	if m0 >= target {
		// Failures are common at the nominal point; plain MC already
		// samples them efficiently.
		return nil, nil
	}

	// Central-difference gradient of the metric at the origin.
	const h = 0.5
	grad := make([]float64, dims)
	var norm float64
	for d := 0; d < dims; d++ {
		z[d] = h
		mp, err := metric(z)
		if err != nil {
			return nil, err
		}
		z[d] = -h
		mm, err := metric(z)
		if err != nil {
			return nil, err
		}
		z[d] = 0
		grad[d] = (mp - mm) / (2 * h)
		norm += grad[d] * grad[d]
	}
	norm = math.Sqrt(norm)
	if norm == 0 || math.IsNaN(norm) {
		return nil, nil
	}
	unit := grad
	for d := range unit {
		unit[d] /= norm
	}

	at := func(t float64) (float64, error) {
		for d := range z {
			z[d] = t * unit[d]
		}
		return metric(z)
	}

	// March outward until the metric crosses the target, then bisect
	// the bracketing interval down to a tight crossing estimate.
	lo, hi := 0.0, 0.0
	for t := 0.5; t <= maxShiftNorm; t += 0.5 {
		m, err := at(t)
		if err != nil {
			return nil, err
		}
		if m >= target {
			hi = t
			lo = t - 0.5
			break
		}
	}
	if hi == 0 {
		// No crossing within the cap: the failure region is
		// effectively unreachable. Shift to the cap anyway — the
		// estimator stays unbiased and will report ≈0 with finite
		// variance, where plain MC would see no failures at all.
		hi = maxShiftNorm
		lo = maxShiftNorm
	}
	for it := 0; it < 12 && hi-lo > 1e-3; it++ {
		mid := (lo + hi) / 2
		m, err := at(mid)
		if err != nil {
			return nil, err
		}
		if m >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	shift := make([]float64, dims)
	for d := range shift {
		shift[d] = hi * unit[d]
	}
	return shift, nil
}
