package variation

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/buffering"
	"repro/internal/model"
	"repro/internal/tech"
	"repro/internal/wire"
)

// This file is the yield-aware buffering layer: instead of accepting
// whatever (repeater size, count) the nominal weighted objective
// picks, it searches for the cheapest design whose Monte Carlo timing
// yield meets a target — the titled paper's sizing-for-yield loop,
// with buffering.Constrained supplying the cost-ordered candidate walk
// and this package supplying the statistical feasibility check.

// SizingOptions configures a yield-constrained buffering search.
type SizingOptions struct {
	// Buffering configures the candidate space and the nominal
	// objective (coefficients, sizes, power weight, input slew).
	Buffering buffering.Options
	// Space is the variation model.
	Space Space
	// Target is the delay constraint in seconds.
	Target float64
	// YieldTarget in (0,1) is the required probability of meeting
	// Target.
	YieldTarget float64
	// MC budgets the per-candidate yield estimate. The same seed is
	// reused for every candidate, so candidates are compared on
	// common random numbers and the search is deterministic.
	MC YieldOptions
	// MaxCandidates caps how many candidates the search may submit to
	// Monte Carlo evaluation before giving up (default 48).
	MaxCandidates int
}

// ErrYieldUnreachable reports that no candidate within the budget met
// the yield target.
var ErrYieldUnreachable = errors.New("variation: no buffering candidate meets the yield target")

// SizedDesign is the outcome of a yield-constrained search.
type SizedDesign struct {
	// Design is the selected buffering solution.
	Design buffering.Design
	// Estimate is the Monte Carlo evaluation of Design's yield.
	Estimate Estimate
	// Nominal is the unconstrained weighted-objective design the
	// search started from.
	Nominal buffering.Design
	// Resized reports whether the yield constraint moved the design
	// away from Nominal.
	Resized bool
}

// SizeForYield selects the cheapest (repeater size, count) whose
// estimated timing yield reaches the target. The nominal
// weighted-objective design is evaluated first; only if it misses the
// target does the search walk the cost-ordered candidate grid.
func SizeForYield(base *tech.Technology, seg wire.Segment, o SizingOptions) (SizedDesign, error) {
	return SizeForYieldCtx(context.Background(), base, seg, o)
}

// SizeForYieldCtx is SizeForYield under a context: the per-candidate
// Monte Carlo evaluations check for cancellation at batch boundaries
// and the candidate walk checks between candidates, so a search that
// submits dozens of designs to the estimator can be interrupted or
// deadline-bound. A search that completes under a live context is
// bit-identical to SizeForYield.
func SizeForYieldCtx(ctx context.Context, base *tech.Technology, seg wire.Segment, o SizingOptions) (SizedDesign, error) {
	if o.Target <= 0 {
		return SizedDesign{}, fmt.Errorf("variation: non-positive delay target %g", o.Target)
	}
	if o.YieldTarget <= 0 || o.YieldTarget >= 1 {
		return SizedDesign{}, fmt.Errorf("variation: yield target %g outside (0,1)", o.YieldTarget)
	}
	if err := o.Space.Validate(); err != nil {
		return SizedDesign{}, err
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 48
	}

	nominal, err := buffering.Optimize(seg, o.Buffering)
	if err != nil {
		return SizedDesign{}, err
	}
	est, err := EstimateLinkYieldCtx(ctx, &LinkScenario{
		Base:   base,
		Coeffs: o.Buffering.Coeffs,
		Space:  o.Space,
		Spec:   lineSpec(nominal, seg, o.Buffering),
		Target: o.Target,
	}, o.MC)
	if err != nil {
		return SizedDesign{}, err
	}
	if est.Yield >= o.YieldTarget {
		return SizedDesign{Design: nominal, Estimate: est, Nominal: nominal}, nil
	}

	// The nominal design missed the target: sweep the cost-ordered
	// candidate grid. Candidates that cannot meet the target even at
	// the nominal corner never meet it under variation, so they are
	// skipped without charging the Monte Carlo budget; the first
	// MaxCandidates feasible candidates are then evaluated in one
	// shared-sample kernel pass (common random numbers — the same
	// draws the one-at-a-time walk would have burned per candidate,
	// paid once), and the cheapest candidate whose estimate reaches
	// the yield target wins. Estimates, selection, and error cases
	// match the historical sequential walk exactly.
	if err := ctx.Err(); err != nil {
		return SizedDesign{}, err
	}
	cands, err := buffering.Candidates(seg, o.Buffering)
	if err != nil {
		return SizedDesign{}, err
	}
	feasible := make([]buffering.Design, 0, o.MaxCandidates)
	overBudget := false
	for _, d := range cands {
		if d.Delay > o.Target {
			continue
		}
		if len(feasible) >= o.MaxCandidates {
			overBudget = true
			break
		}
		feasible = append(feasible, d)
	}
	if len(feasible) == 0 {
		return SizedDesign{}, fmt.Errorf("%w (searched %d candidates)", buffering.ErrNoFeasibleDesign, len(cands))
	}
	specs := make([]model.LineSpec, len(feasible))
	for c, d := range feasible {
		specs[c] = lineSpec(d, seg, o.Buffering)
	}
	ests, err := EstimateYieldsSharedCtx(ctx, &MultiScenario{
		Base:   base,
		Coeffs: o.Buffering.Coeffs,
		Space:  o.Space,
		Specs:  specs,
		Target: o.Target,
	}, o.MC)
	if err != nil {
		return SizedDesign{}, err
	}
	for c, e := range ests {
		if e.Yield >= o.YieldTarget {
			des := feasible[c]
			resized := des.Size != nominal.Size || des.N != nominal.N || des.Kind != nominal.Kind
			return SizedDesign{Design: des, Estimate: e, Nominal: nominal, Resized: resized}, nil
		}
	}
	if overBudget {
		return SizedDesign{}, fmt.Errorf("%w (budget of %d candidates exhausted)", ErrYieldUnreachable, o.MaxCandidates)
	}
	// Every feasible candidate was evaluated and none reached the
	// target: the geometry is fine, the yield target is what cannot be
	// met — report ErrYieldUnreachable, not a feasibility failure.
	return SizedDesign{}, fmt.Errorf("%w (none of %d feasible candidates reaches yield %g)",
		ErrYieldUnreachable, len(feasible), o.YieldTarget)
}

// lineSpec assembles the model spec for one buffering design on a
// segment.
func lineSpec(d buffering.Design, seg wire.Segment, o buffering.Options) model.LineSpec {
	slew := o.InputSlew
	if slew == 0 {
		slew = 300e-12
	}
	return model.LineSpec{Kind: d.Kind, Size: d.Size, N: d.N, Segment: seg, InputSlew: slew}
}
