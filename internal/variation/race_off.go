//go:build !race

package variation

// raceEnabled reports whether the race detector is compiled in. The
// allocation-count guards skip under -race: the detector's
// instrumentation allocates on its own and would drown the signal.
const raceEnabled = false
