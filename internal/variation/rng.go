package variation

import "math"

// This file provides the engine's deterministic splittable PRNG. Each
// Monte Carlo sample owns an independent stream whose seed is the base
// seed XOR the sample index (the guarantee ISSUE/README document: the
// stream a sample sees depends only on (seed, index), never on which
// worker evaluates it or in what order). The generator is splitmix64,
// which is designed exactly for this use: it turns a counter-like seed
// into a high-quality random sequence with a single multiply-and-xor
// finalizer per output, so consecutive sample indices yield
// decorrelated streams.

// splitmix64 constants (Steele, Lea, Flood — "Fast splittable
// pseudorandom number generators").
const (
	smGamma = 0x9E3779B97F4A7C15
	smMul1  = 0xBF58476D1CE4E5B9
	smMul2  = 0x94D049BB133111EB
)

// Stream is one sample's private random stream. The zero value is a
// valid stream seeded with 0; use NewStream to derive a per-sample
// stream from a base seed.
type Stream struct {
	state uint64
	// Box–Muller produces normals in pairs; the spare is cached so a
	// stream of Norm() calls consumes uniforms deterministically.
	spare    float64
	hasSpare bool
}

// mix64 is the splitmix64 finalizer: a bijective avalanche hash.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * smMul1
	x = (x ^ (x >> 27)) * smMul2
	return x ^ (x >> 31)
}

// NewStream returns the stream for one Monte Carlo sample: per-sample
// seed = hash(base seed) ⊕ sample index. The base seed is avalanched
// first because folding the index into the raw seed would map every
// base seed below the sample count onto a permutation of the same
// sample set — different seeds would then produce bit-identical
// estimates instead of independent replications. Two streams with
// different indices are statistically independent; the same
// (seed, index) pair always produces the same sequence.
func NewStream(seed, index uint64) *Stream {
	return &Stream{state: mix64(seed+smGamma) ^ index}
}

// Reset reseeds s in place to the exact state NewStream(seed, index)
// would return, discarding any cached Box–Muller spare. The batched
// sampling kernel keeps one Stream per worker and Resets it per
// sample instead of allocating a fresh stream, so the hot path stays
// allocation-free while the (seed, index) → sequence contract is
// unchanged.
func (s *Stream) Reset(seed, index uint64) {
	s.state = mix64(seed+smGamma) ^ index
	s.spare = 0
	s.hasSpare = false
}

// Uint64 returns the next raw 64-bit output.
func (s *Stream) Uint64() uint64 {
	s.state += smGamma
	z := s.state
	z = (z ^ (z >> 30)) * smMul1
	z = (z ^ (z >> 27)) * smMul2
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in the half-open interval (0, 1] —
// never zero, so it is safe under a logarithm.
func (s *Stream) Float64() float64 {
	return (float64(s.Uint64()>>11) + 1) / (1 << 53)
}

// Norm returns a standard normal draw via the Box–Muller transform.
func (s *Stream) Norm() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	u1, u2 := s.Float64(), s.Float64()
	r := math.Sqrt(-2 * math.Log(u1))
	theta := 2 * math.Pi * u2
	s.spare = r * math.Sin(theta)
	s.hasSpare = true
	return r * math.Cos(theta)
}

// Norms fills a fresh slice with n standard normal draws.
func (s *Stream) Norms(n int) []float64 {
	out := make([]float64, n)
	s.NormsInto(out)
	return out
}

// NormsInto fills the caller-owned dst with len(dst) standard normal
// draws, consuming uniforms exactly as Norms would. The batched kernel
// uses it with a per-worker buffer to keep the steady path free of
// per-sample allocation.
func (s *Stream) NormsInto(dst []float64) {
	for i := range dst {
		dst[i] = s.Norm()
	}
}
