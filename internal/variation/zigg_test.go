package variation

import (
	"errors"
	"math"
	"testing"
)

// TestZigguratMoments mirrors TestNormMoments for the ziggurat
// sampler: mean, variance, and excess kurtosis over many independent
// streams (kurtosis is the statistic a broken wedge/tail branch moves
// first, so it is checked here even though the Box–Muller test does
// not need it).
func TestZigguratMoments(t *testing.T) {
	const streams, per = 20000, 7
	var n int
	var sum, sumSq, sumQ float64
	for i := 0; i < streams; i++ {
		s := NewStream(99, uint64(i))
		for k := 0; k < per; k++ {
			x := s.NormZig()
			sum += x
			sumSq += x * x
			sumQ += x * x * x * x
			n++
		}
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	kurt := sumQ / float64(n) / (variance * variance)
	if math.Abs(mean) > 0.01 {
		t.Fatalf("ziggurat mean %g too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("ziggurat variance %g too far from 1", variance)
	}
	if math.Abs(kurt-3) > 0.15 {
		t.Fatalf("ziggurat kurtosis %g too far from 3", kurt)
	}
}

// TestZigguratTailMass checks the rejection tail: the fraction of
// draws with |z| ≥ 4 must match 2·Φ(−4). A ziggurat whose layer-0
// exponential fallback is wrong passes the moment test (the tail holds
// ~6e-5 of the mass) but fails here.
func TestZigguratTailMass(t *testing.T) {
	const streams, per = 1 << 18, 16 // ~4.2M draws
	var tail int
	for i := 0; i < streams; i++ {
		s := NewStream(1234, uint64(i))
		for k := 0; k < per; k++ {
			if x := s.NormZig(); x >= 4 || x <= -4 {
				tail++
			}
		}
	}
	n := float64(streams * per)
	p := math.Erfc(4 / math.Sqrt2) // 2·Φ(−4)
	want := n * p
	// Poisson fluctuation: ±5σ keeps the flake rate negligible while
	// catching any systematic tail error (a factor-2 bug is >20σ).
	slack := 5 * math.Sqrt(want)
	if got := float64(tail); math.Abs(got-want) > slack {
		t.Fatalf("tail mass |z|>=4: got %d draws, want %.0f ± %.0f of %g", tail, want, slack, n)
	}
}

// TestZigguratGoldenStream pins the exact bit pattern of the ziggurat
// output at a fixed seed. The sampler is part of the engine's
// determinism contract — seeds are replayable across versions and
// platforms — so any silent change to the tables, the bit layout, or
// the rejection logic must fail CI, not drift results.
func TestZigguratGoldenStream(t *testing.T) {
	golden := []struct {
		seed, idx uint64
		k         int
		bits      uint64
	}{
		{42, 0, 0, 0x3fc4fab17d23c321},
		{42, 0, 1, 0x3ffc1610adf93e76},
		{42, 0, 2, 0xbfe4ed7de589f091},
		{42, 0, 3, 0xbfb4d3a2cb1dd342},
		{42, 1, 0, 0xc00024bc72e0c785},
		{42, 1, 1, 0xc0012a9721aeac54},
		{42, 1, 2, 0xbfe37529a9fe854d},
		{42, 1, 3, 0x3fd6ae01e713b0e1},
		{42, 2, 0, 0x3fe716b0ef2ee62e},
		{42, 2, 1, 0xbff08fdcb3fe35a7},
		{42, 2, 2, 0xbff41ae0b8d30588},
		{42, 2, 3, 0x3ffb43ab6f7b41fb},
		{42, 3, 0, 0x3ffa288f32d09400},
		{42, 3, 1, 0x3fdec45e71018b8f},
		{42, 3, 2, 0xbff5c97991247647},
		{42, 3, 3, 0x3fe114cd9aa5b66d},
	}
	var s *Stream
	var prevSeed, prevIdx uint64 = 0, ^uint64(0)
	k := 0
	for _, g := range golden {
		if s == nil || g.seed != prevSeed || g.idx != prevIdx {
			s = NewStream(g.seed, g.idx)
			prevSeed, prevIdx = g.seed, g.idx
			k = 0
		}
		for ; k < g.k; k++ {
			s.NormZig()
		}
		got := math.Float64bits(s.NormZig())
		k++
		if got != g.bits {
			t.Fatalf("stream (seed=%d, idx=%d) draw %d: got bits %#016x (%g), want %#016x (%g)",
				g.seed, g.idx, g.k, got, math.Float64frombits(got), g.bits, math.Float64frombits(g.bits))
		}
	}
}

// TestZigguratTableInvariants sanity-checks the hardcoded tables
// against the recurrence that generated them: x-coordinates decreasing,
// densities increasing to 1, and the fast-path thresholds consistent
// with adjacent layer widths.
func TestZigguratTableInvariants(t *testing.T) {
	if zigF[0] != 1 {
		t.Fatalf("zigF[0] = %g, want 1", zigF[0])
	}
	if got, want := zigF[127], math.Exp(-0.5*zigR*zigR); math.Abs(got-want) > 1e-12 {
		t.Fatalf("zigF[127] = %g, want exp(−r²/2) = %g", got, want)
	}
	for i := 1; i < 128; i++ {
		// f = exp(−x²/2) with layer x increasing in i ⇒ f strictly
		// decreasing (the wedge test interpolates zigF[i-1] > zigF[i]).
		if zigF[i] >= zigF[i-1] {
			t.Fatalf("zigF not decreasing at %d: %g >= %g", i, zigF[i], zigF[i-1])
		}
		if zigW[i] <= 0 {
			t.Fatalf("zigW[%d] = %g, want > 0", i, zigW[i])
		}
		// The fast-path acceptance threshold must never admit a
		// magnitude that lands beyond the layer's own width.
		if float64(zigK[i])*zigW[i] > zigR+1e-9 {
			t.Fatalf("layer %d fast path reaches x=%g beyond r=%g", i, float64(zigK[i])*zigW[i], zigR)
		}
	}
	if zigK[1] != 0 {
		t.Fatalf("zigK[1] = %d, want 0", zigK[1])
	}
}

// TestNormsIntoSamplerDispatch pins the sampler switch: box-muller
// reproduces the legacy NormsInto stream bit-exactly, ziggurat
// reproduces ZigNormsInto, and the empty sampler resolves to ziggurat.
func TestNormsIntoSamplerDispatch(t *testing.T) {
	a := make([]float64, Dims)
	b := make([]float64, Dims)
	var s Stream

	s.Reset(9, 1)
	s.normsInto(a, SamplerBoxMuller)
	s.Reset(9, 1)
	s.NormsInto(b)
	for d := range a {
		if a[d] != b[d] {
			t.Fatalf("box-muller dispatch dim %d: %g != legacy %g", d, a[d], b[d])
		}
	}

	s.Reset(9, 1)
	s.normsInto(a, SamplerZiggurat)
	s.Reset(9, 1)
	s.ZigNormsInto(b)
	for d := range a {
		if a[d] != b[d] {
			t.Fatalf("ziggurat dispatch dim %d: %g != ZigNormsInto %g", d, a[d], b[d])
		}
	}

	s.Reset(9, 1)
	s.normsInto(b, "")
	for d := range a {
		if a[d] != b[d] {
			t.Fatalf("empty sampler dim %d: %g != ziggurat %g", d, b[d], a[d])
		}
	}
}

// TestUnknownSamplerRejected pins option validation across the public
// entry points.
func TestUnknownSamplerRejected(t *testing.T) {
	sc := testScenario(t, 480e-12)
	o := YieldOptions{Samples: 64, Seed: 1, Sampler: "gaussian-ish"}
	if _, err := EstimateLinkYield(sc, o); !errors.Is(err, ErrUnknownSampler) {
		t.Fatalf("EstimateLinkYield with bad sampler: err = %v, want ErrUnknownSampler", err)
	}
	if _, _, _, err := CollectPartialCtx(t.Context(), sc, o, 0, 64); !errors.Is(err, ErrUnknownSampler) {
		t.Fatalf("CollectPartialCtx with bad sampler: err = %v, want ErrUnknownSampler", err)
	}
}
