package variation

import (
	"math"
	"testing"
)

func TestStreamDeterministic(t *testing.T) {
	a := NewStream(42, 7)
	b := NewStream(42, 7)
	for i := 0; i < 100; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d diverged: %x vs %x", i, x, y)
		}
	}
}

func TestStreamsDifferByIndexAndSeed(t *testing.T) {
	base := NewStream(42, 0).Uint64()
	if NewStream(42, 1).Uint64() == base {
		t.Fatal("index 1 repeats index 0")
	}
	if NewStream(43, 0).Uint64() == base {
		t.Fatal("seed 43 repeats seed 42")
	}
}

// TestSeedFamiliesDisjoint pins the fix for the XOR-fold trap: for
// base seeds below the sample count, a naive seed⊕index state would
// make the per-sample state *sets* identical across seeds, so every
// seed produced the same estimate. With the hashed seed the families
// must not collide.
func TestSeedFamiliesDisjoint(t *testing.T) {
	const n = 1024
	seen := map[uint64]bool{}
	for i := uint64(0); i < n; i++ {
		seen[NewStream(1, i).Uint64()] = true
	}
	collisions := 0
	for i := uint64(0); i < n; i++ {
		if seen[NewStream(2, i).Uint64()] {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("%d/%d first draws collide between seeds 1 and 2", collisions, n)
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewStream(1, 1)
	for i := 0; i < 10000; i++ {
		u := s.Float64()
		if !(u > 0 && u <= 1) {
			t.Fatalf("draw %d = %g outside (0,1]", i, u)
		}
	}
}

// TestNormMoments checks mean ≈ 0 and variance ≈ 1 over many streams
// (one short stream per sample, the engine's actual usage pattern).
func TestNormMoments(t *testing.T) {
	const streams, per = 20000, 7
	var n int
	var sum, sumSq float64
	for i := 0; i < streams; i++ {
		s := NewStream(99, uint64(i))
		for k := 0; k < per; k++ {
			x := s.Norm()
			sum += x
			sumSq += x * x
			n++
		}
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %g too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %g too far from 1", variance)
	}
}
