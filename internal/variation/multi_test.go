package variation

import (
	"runtime"
	"testing"

	"repro/internal/liberty"
	"repro/internal/model"
	"repro/internal/tech"
	"repro/internal/wire"
)

// legacyLinkYield re-implements the historical one-sample-at-a-time
// estimator exactly as EstimateLinkYield computed it before the shared
// batched kernel: RunCtx over LinkScenario.Delay, with the
// importance-sampling shift searched by FindShift on the same metric.
// The kernel tests pin bit-identity against this reference.
func legacyLinkYield(t *testing.T, sc *LinkScenario, o YieldOptions) Estimate {
	t.Helper()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	ro := o.runOptions()
	if o.ImportanceSampling {
		shift, err := FindShift(Dims, sc.Target, sc.Delay)
		if err != nil {
			t.Fatal(err)
		}
		ro.Shift = shift
	}
	est, err := Run(ro, func(i int, z []float64) (bool, error) {
		d, err := sc.Delay(z)
		if err != nil {
			return false, err
		}
		return d > sc.Target, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// TestSharedKernelBitIdenticalToLegacy is the determinism acceptance
// test for the batched kernel: for plain Monte Carlo and importance
// sampling, with and without the stopping rule, the shared-scratch
// path returns the bit-identical Estimate the per-sample path produced,
// at every worker count.
func TestSharedKernelBitIdenticalToLegacy(t *testing.T) {
	for _, c := range []struct {
		name   string
		target float64
		opts   YieldOptions
	}{
		{"mc", 480e-12, YieldOptions{Samples: 2048, Seed: 3}},
		{"mc-relerr", 480e-12, YieldOptions{Samples: 8192, Seed: 3, RelErr: 0.2}},
		{"is", 545e-12, YieldOptions{Samples: 2048, Seed: 3, ImportanceSampling: true}},
	} {
		sc := testScenario(t, c.target)
		want := legacyLinkYield(t, sc, c.opts)
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			o := c.opts
			o.Workers = workers
			got, err := EstimateLinkYield(sc, o)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s workers=%d: kernel diverged from legacy path:\n got %+v\nwant %+v", c.name, workers, got, want)
			}
		}
	}
}

// sweepSpecs builds a small sizing sweep: candidate repeatings of the
// same 90nm 5mm segment.
func sweepSpecs(seg wire.Segment) []model.LineSpec {
	var specs []model.LineSpec
	for _, c := range []struct {
		size float64
		n    int
	}{{8, 10}, {12, 8}, {16, 12}, {6, 14}} {
		specs = append(specs, model.LineSpec{
			Kind: liberty.Inverter, Size: c.size, N: c.n,
			Segment: seg, InputSlew: 300e-12,
		})
	}
	return specs
}

// TestSharedSweepMatchesPerCandidate pins the kernel's core contract:
// element c of EstimateYieldsShared is bit-identical to a standalone
// EstimateLinkYield of candidate c with the same options — common
// random numbers change the cost, not the answer. Covered for both
// estimators, with a per-candidate stopping rule in play, serial and
// parallel.
func TestSharedSweepMatchesPerCandidate(t *testing.T) {
	tc := tech.MustLookup("90nm")
	coeffs := model.MustDefault("90nm")
	seg := wire.NewSegment(tc, 5e-3, wire.SWSS)
	specs := sweepSpecs(seg)
	const target = 500e-12
	for _, is := range []bool{false, true} {
		for _, workers := range []int{1, 8} {
			o := YieldOptions{Samples: 2048, Seed: 1, Workers: workers, RelErr: 0.1, ImportanceSampling: is}
			ms := &MultiScenario{Base: tc, Coeffs: coeffs, Space: DefaultSpace(), Specs: specs, Target: target}
			ests, err := EstimateYieldsShared(ms, o)
			if err != nil {
				t.Fatal(err)
			}
			if len(ests) != len(specs) {
				t.Fatalf("%d estimates for %d candidates", len(ests), len(specs))
			}
			for c := range specs {
				sc := &LinkScenario{Base: tc, Coeffs: coeffs, Space: DefaultSpace(), Spec: specs[c], Target: target}
				want, err := EstimateLinkYield(sc, o)
				if err != nil {
					t.Fatal(err)
				}
				if ests[c] != want {
					t.Errorf("is=%v workers=%d candidate %d: shared %+v != standalone %+v", is, workers, c, ests[c], want)
				}
			}
		}
	}
}

// TestSharedSweepHandlesDistinctSegments covers the non-shared-segment
// path: candidates on different geometries cannot share the per-sample
// wire extraction, but the per-candidate estimates must still match
// the standalone runs bit-for-bit.
func TestSharedSweepHandlesDistinctSegments(t *testing.T) {
	tc := tech.MustLookup("90nm")
	coeffs := model.MustDefault("90nm")
	specs := []model.LineSpec{
		{Kind: liberty.Inverter, Size: 12, N: 8, Segment: wire.NewSegment(tc, 5e-3, wire.SWSS), InputSlew: 300e-12},
		{Kind: liberty.Inverter, Size: 12, N: 7, Segment: wire.NewSegment(tc, 4e-3, wire.SWSS), InputSlew: 300e-12},
	}
	const target = 500e-12
	o := YieldOptions{Samples: 1024, Seed: 9}
	ms := &MultiScenario{Base: tc, Coeffs: coeffs, Space: DefaultSpace(), Specs: specs, Target: target}
	ests, err := EstimateYieldsShared(ms, o)
	if err != nil {
		t.Fatal(err)
	}
	for c := range specs {
		sc := &LinkScenario{Base: tc, Coeffs: coeffs, Space: DefaultSpace(), Spec: specs[c], Target: target}
		want, err := EstimateLinkYield(sc, o)
		if err != nil {
			t.Fatal(err)
		}
		if ests[c] != want {
			t.Errorf("candidate %d: shared %+v != standalone %+v", c, ests[c], want)
		}
	}
}

func TestMultiScenarioValidation(t *testing.T) {
	tc := tech.MustLookup("90nm")
	coeffs := model.MustDefault("90nm")
	seg := wire.NewSegment(tc, 5e-3, wire.SWSS)
	ok := MultiScenario{Base: tc, Coeffs: coeffs, Space: DefaultSpace(), Specs: sweepSpecs(seg), Target: 500e-12}
	for name, mutate := range map[string]func(*MultiScenario){
		"nil-base":       func(ms *MultiScenario) { ms.Base = nil },
		"zero-target":    func(ms *MultiScenario) { ms.Target = 0 },
		"no-specs":       func(ms *MultiScenario) { ms.Specs = nil },
		"bad-spec":       func(ms *MultiScenario) { ms.Specs[1].Size = 0 },
		"shift-count":    func(ms *MultiScenario) { ms.Shifts = make([][]float64, 1) },
		"shift-dims":     func(ms *MultiScenario) { ms.Shifts = [][]float64{nil, {1}, nil, nil} },
		"negative-sigma": func(ms *MultiScenario) { ms.Space.VthSigma = -1 },
	} {
		ms := ok
		ms.Specs = append([]model.LineSpec(nil), ok.Specs...)
		mutate(&ms)
		if _, err := EstimateYieldsShared(&ms, YieldOptions{Samples: 16}); err == nil {
			t.Errorf("%s: invalid multi-scenario accepted", name)
		}
	}
}

// TestSharedKernelSteadyStateAllocs is the zero-allocation acceptance
// guard: after the one-time setup, the sampling loop must not allocate.
// The whole-run allocation count divided by the candidate-sample count
// therefore has to sit far below one (the setup amortizes to ~0.01
// here); any per-sample allocation sneaking back into the hot path
// pushes the ratio past 1 immediately.
func TestSharedKernelSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless under -race")
	}
	tc := tech.MustLookup("90nm")
	coeffs := model.MustDefault("90nm")
	seg := wire.NewSegment(tc, 5e-3, wire.SWSS)
	specs := sweepSpecs(seg)
	const samples = 2048
	for _, c := range []struct {
		name  string
		specs []model.LineSpec
	}{
		{"single-candidate", specs[:1]},
		{"sweep", specs},
	} {
		ms := &MultiScenario{Base: tc, Coeffs: coeffs, Space: DefaultSpace(), Specs: c.specs, Target: 500e-12}
		o := YieldOptions{Samples: samples, Seed: 1, Workers: 1}
		var runErr error
		allocs := testing.AllocsPerRun(1, func() {
			_, runErr = EstimateYieldsShared(ms, o)
		})
		if runErr != nil {
			t.Fatal(runErr)
		}
		perSample := allocs / float64(samples*len(c.specs))
		if perSample > 0.05 {
			t.Errorf("%s: %.0f allocations over %d candidate-samples (%.3f/sample) — the steady path is allocating",
				c.name, allocs, samples*len(c.specs), perSample)
		}
	}
}

// TestRunBatchSteadyStateAllocs guards the generic batched kernel the
// same way: a trivial trial over per-worker scratch must amortize to
// (far) less than one allocation per sample.
func TestRunBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless under -race")
	}
	const samples = 8192
	o := Options{Dims: Dims, Samples: samples, Seed: 1, Workers: 1}
	trial := func(i, worker int, z []float64) (bool, error) { return z[0] > 2, nil }
	var runErr error
	allocs := testing.AllocsPerRun(1, func() {
		_, runErr = RunBatch(o, trial)
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if perSample := allocs / samples; perSample > 0.05 {
		t.Errorf("%.0f allocations over %d samples (%.3f/sample)", allocs, samples, perSample)
	}
}
