package variation

import (
	"errors"
	"testing"

	"repro/internal/buffering"
	"repro/internal/model"
	"repro/internal/tech"
	"repro/internal/wire"
)

// TestSizeForYieldUnreachableNotMisreportedAsInfeasible pins the error
// classification fix: when feasible candidates exist (their nominal
// delays meet the target) but none reaches the yield target — and the
// candidate budget is NOT exhausted — the search must report
// ErrYieldUnreachable. It used to fall through to
// buffering.ErrNoFeasibleDesign, telling the caller "geometry
// infeasible" when the geometry was fine and the statistics were the
// problem.
func TestSizeForYieldUnreachableNotMisreportedAsInfeasible(t *testing.T) {
	tc := tech.MustLookup("90nm")
	seg := wire.NewSegment(tc, 5e-3, wire.SWSS)
	// Target a few ps above the delay-optimal nominal delay: a handful
	// of candidates are nominally feasible, but with 3× sigmas the
	// yield at that razor-thin margin hovers near 0.5 — no candidate
	// can reach 0.999.
	opt, err := buffering.Optimize(seg, buffering.Options{
		Coeffs: model.MustDefault("90nm"),
		Power:  model.PowerParams{Activity: 0.15, Freq: tc.Clock},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = SizeForYield(tc, seg, SizingOptions{
		Buffering: buffering.Options{
			Coeffs: model.MustDefault("90nm"),
			Power:  model.PowerParams{Activity: 0.15, Freq: tc.Clock},
		},
		Space:       DefaultSpace().Scaled(3),
		Target:      opt.Delay * 1.01,
		YieldTarget: 0.999,
		MC:          YieldOptions{Samples: 512, Seed: 1},
	})
	if err == nil {
		t.Fatal("expected the yield target to be unreachable in this scenario")
	}
	if !errors.Is(err, ErrYieldUnreachable) {
		t.Fatalf("got %v, want ErrYieldUnreachable", err)
	}
	if errors.Is(err, buffering.ErrNoFeasibleDesign) {
		t.Fatalf("unreachable yield misreported as geometry infeasibility: %v", err)
	}
}

// TestZeroFailureEscapeGatedOnPlainMC pins the stopping-rule fix: the
// rule-of-three escape (no failures in n samples ⇒ p < 3/n at 95%)
// assumes Bernoulli 0/1 indicators, which importance-sampled runs do
// not have — their contributions are likelihood-ratio weights that can
// exceed 1, so a weighted zero-failure prefix certifies nothing. A
// shifted run with zero failures must burn its full budget; the same
// run unshifted keeps the historical early escape.
func TestZeroFailureEscapeGatedOnPlainMC(t *testing.T) {
	never := func(i int, z []float64) (bool, error) { return false, nil }
	const budget = 4096

	shifted, err := Run(Options{Dims: 2, Samples: budget, RelErr: 0.05, Seed: 3,
		Shift: []float64{2, 0}}, never)
	if err != nil {
		t.Fatal(err)
	}
	if !shifted.Shifted {
		t.Fatal("shift did not engage")
	}
	if shifted.Samples != budget {
		t.Fatalf("shifted zero-failure run stopped at %d of %d samples via the rule-of-three escape, "+
			"which is invalid under importance weights", shifted.Samples, budget)
	}

	plain, err := Run(Options{Dims: 2, Samples: budget, RelErr: 0.05, Seed: 3}, never)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Samples >= budget {
		t.Fatalf("plain zero-failure run lost its escape (ran all %d samples)", plain.Samples)
	}
}

// TestZeroFailureEscapeGatedPerCandidateInSharedKernel extends the
// gate to the cross-candidate kernel: in one shared run, a plain
// candidate with zero failures escapes early while a shifted
// zero-failure candidate keeps sampling to the budget.
func TestZeroFailureEscapeGatedPerCandidateInSharedKernel(t *testing.T) {
	sc := testScenario(t, 480e-12)
	// A delay target far above anything the link can produce: no draw
	// ever fails, for either candidate.
	const loose = 10e-9
	ms := &MultiScenario{
		Base:   sc.Base,
		Coeffs: sc.Coeffs,
		Space:  sc.Space,
		Specs:  []model.LineSpec{sc.Spec, sc.Spec},
		Target: loose,
		Shifts: [][]float64{nil, {2, 0, 0, 0, 0, 0, 0}},
	}
	const budget = 2048
	ests, err := EstimateYieldsShared(ms, YieldOptions{Samples: budget, RelErr: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ests[0].Samples >= budget {
		t.Fatalf("plain candidate lost its zero-failure escape (%d samples)", ests[0].Samples)
	}
	if !ests[1].Shifted {
		t.Fatal("candidate 1's shift did not engage")
	}
	if ests[1].Samples != budget {
		t.Fatalf("shifted candidate escaped at %d of %d samples on an invalid bound", ests[1].Samples, budget)
	}
}
