package variation

import (
	"context"
	"fmt"
	"math"

	"repro/internal/estimator"
	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/tech"
)

// This file is the cross-candidate sampling kernel. A sizing sweep
// evaluates K candidate implementations of the same link against the
// same variation space, and almost all of the per-sample cost — the
// normal draw, the technology perturbation, the closed-form
// coefficient rescale, the wire per-meter extraction — depends only on
// the draw, not on the candidate. EstimateYieldsShared therefore does
// that work once per sample and scores every still-active candidate
// against it (common random numbers, which is also what makes the
// candidates statistically comparable), with per-candidate Welford
// accumulators and a per-candidate stopping rule. Each candidate's
// estimate is bit-identical to the estimate a standalone
// EstimateLinkYield run with the same options would produce.

// MultiScenario binds K candidate implementations (specs) of one link
// to a shared variation space and delay target.
type MultiScenario struct {
	// Base is the nominal technology the candidates were designed in.
	Base *tech.Technology
	// Coeffs are the calibrated coefficients at Base.
	Coeffs *model.Coefficients
	// Space is the variation model.
	Space Space
	// Specs are the candidate lines under estimation. Candidates that
	// share the same Segment (the usual sizing sweep: same geometry,
	// different repeater size/count) additionally share the per-sample
	// wire extraction.
	Specs []model.LineSpec
	// Target is the delay constraint in seconds: a sample of a
	// candidate fails when its delay exceeds the target.
	Target float64
	// Shifts, when non-nil, holds one importance-sampling mean shift
	// per candidate (nil entries select plain Monte Carlo for that
	// candidate). When nil and the run options request importance
	// sampling, per-candidate shifts are searched automatically.
	Shifts [][]float64
}

// Validate rejects an unevaluable multi-scenario.
func (ms *MultiScenario) Validate() error {
	if ms.Base == nil || ms.Coeffs == nil {
		return fmt.Errorf("variation: scenario needs a technology and coefficients")
	}
	if ms.Target <= 0 {
		return fmt.Errorf("variation: non-positive delay target %g", ms.Target)
	}
	if err := ms.Space.Validate(); err != nil {
		return err
	}
	if len(ms.Specs) == 0 {
		return fmt.Errorf("variation: multi-scenario has no candidate specs")
	}
	for c := range ms.Specs {
		if err := ms.Specs[c].Validate(); err != nil {
			return fmt.Errorf("variation: candidate %d: %w", c, err)
		}
	}
	if ms.Shifts != nil && len(ms.Shifts) != len(ms.Specs) {
		return fmt.Errorf("variation: %d shifts for %d candidates", len(ms.Shifts), len(ms.Specs))
	}
	for c, sh := range ms.Shifts {
		if sh != nil && len(sh) != Dims {
			return fmt.Errorf("variation: candidate %d shift has %d dims, want %d", c, len(sh), Dims)
		}
	}
	return nil
}

// scenario returns candidate c's single-candidate view.
func (ms *MultiScenario) scenario(c int) *LinkScenario {
	return &LinkScenario{
		Base:   ms.Base,
		Coeffs: ms.Coeffs,
		Space:  ms.Space,
		Spec:   ms.Specs[c],
		Target: ms.Target,
	}
}

// FindShiftsCtx searches the importance-sampling mean shift of every
// candidate (see FindShift), checking the context between the
// deterministic metric evaluations. A nil entry means the search fell
// back to plain Monte Carlo for that candidate.
func (ms *MultiScenario) FindShiftsCtx(ctx context.Context) ([][]float64, error) {
	shifts := make([][]float64, len(ms.Specs))
	for c := range ms.Specs {
		sc := ms.scenario(c)
		shift, err := FindShift(Dims, ms.Target, func(z []float64) (float64, error) {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			return sc.Delay(z)
		})
		if err != nil {
			return nil, err
		}
		shifts[c] = shift
	}
	return shifts, nil
}

// multiScratch is one worker's reusable per-sample state.
type multiScratch struct {
	stream Stream
	// eps is the sample's base standard-normal draw; z is the shifted
	// draw of the candidate currently being scored (importance
	// sampling only).
	eps, z []float64
	tech   tech.Technology
	coeffs model.Coefficients
}

// evalShared scores every active candidate against one unshifted
// draw: one technology perturbation and one coefficient rescale serve
// all candidates, and with a shared segment one wire extraction does
// too. row[c] receives candidate c's contribution (1 = fail).
func (ms *MultiScenario) evalShared(s *multiScratch, row []float64, active []bool, sharedSeg bool) error {
	f := ms.Space.ApplyInto(&s.tech, ms.Base, s.eps)
	ms.Coeffs.ScaleInto(&s.coeffs, ms.Base, &s.tech)
	if sharedSeg {
		seg := ms.Specs[0].Segment
		perturbSegment(&seg, &s.tech, f)
		rc := model.SegmentRC(seg)
		for c := range ms.Specs {
			if !active[c] {
				continue
			}
			spec := ms.Specs[c]
			spec.Segment = seg
			t, err := s.coeffs.LineDelayRC(spec, rc)
			if err != nil {
				return err
			}
			if t.Delay > ms.Target {
				row[c] = 1
			} else {
				row[c] = 0
			}
		}
		return nil
	}
	for c := range ms.Specs {
		if !active[c] {
			continue
		}
		spec := ms.Specs[c]
		perturbSegment(&spec.Segment, &s.tech, f)
		t, err := s.coeffs.LineDelay(spec)
		if err != nil {
			return err
		}
		if t.Delay > ms.Target {
			row[c] = 1
		} else {
			row[c] = 0
		}
	}
	return nil
}

// evalShifted scores every active candidate when at least one carries
// an importance-sampling shift. Only the base draw is shared (common
// random numbers): the shift moves each candidate to its own point in
// the space, so the perturbation and rescale are per-candidate,
// exactly as the standalone estimator computes them.
func (ms *MultiScenario) evalShifted(s *multiScratch, row []float64, active []bool, shifts [][]float64, shiftedC []bool, shiftSq []float64) error {
	for c := range ms.Specs {
		if !active[c] {
			continue
		}
		z := s.eps
		w := 1.0
		if shiftedC[c] {
			// z ← θ + ε with likelihood ratio
			// φ(z)/φ(z−θ) = exp(−⟨θ,z⟩ + |θ|²/2).
			copy(s.z, s.eps)
			var dot float64
			for d, t := range shifts[c] {
				s.z[d] += t
				dot += t * s.z[d]
			}
			w = math.Exp(-dot + shiftSq[c]/2)
			z = s.z
		}
		f := ms.Space.ApplyInto(&s.tech, ms.Base, z)
		ms.Coeffs.ScaleInto(&s.coeffs, ms.Base, &s.tech)
		spec := ms.Specs[c]
		perturbSegment(&spec.Segment, &s.tech, f)
		t, err := s.coeffs.LineDelay(spec)
		if err != nil {
			return err
		}
		if t.Delay > ms.Target {
			row[c] = w
		} else {
			row[c] = 0
		}
	}
	return nil
}

// EstimateYieldsShared estimates every candidate's yield on common
// random numbers; see EstimateYieldsSharedCtx.
func EstimateYieldsShared(ms *MultiScenario, o YieldOptions) ([]Estimate, error) {
	return EstimateYieldsSharedCtx(context.Background(), ms, o)
}

// EstimateYieldsSharedCtx estimates the timing yield of every
// candidate spec in one pass over a shared sample stream. Element c of
// the result is bit-identical to what EstimateLinkYieldCtx would
// return for candidate c alone with the same options (including the
// per-candidate stopping rule: a candidate whose estimate converges
// stops accumulating while the others keep sampling), for every
// Workers value. The steady sampling path performs no heap allocation:
// all per-sample state lives in per-worker scratch sized once up
// front.
//
// This is also the estimator dispatch point: the options' Estimator /
// TargetSigma hints resolve to one rung of the ladder (see
// internal/estimator), and a ≥3σ auto-routed query first runs the
// worst-case-distance pre-filter — candidates the analytic bound
// certifies either way are answered without sampling, and only the
// inconclusive remainder pays for draws.
func EstimateYieldsSharedCtx(ctx context.Context, ms *MultiScenario, o YieldOptions) ([]Estimate, error) {
	if err := ms.Validate(); err != nil {
		return nil, err
	}
	ro := o.runOptions().withDefaults()
	if err := ro.validate(); err != nil {
		return nil, err
	}
	kind, err := o.resolveKind()
	if err != nil {
		return nil, err
	}
	if kind == estimator.WCD {
		return wcdEstimatesCtx(ctx, ms, o.TargetSigma)
	}
	if o.Estimator == estimator.Auto && o.TargetSigma >= wcdPrefilterSigma {
		return cascadeCtx(ctx, ms, o, ro, kind)
	}
	return sampleEstimatesCtx(ctx, ms, o, ro, kind)
}

// sampleEstimatesCtx runs the resolved sampling rung over all
// candidates.
func sampleEstimatesCtx(ctx context.Context, ms *MultiScenario, o YieldOptions, ro Options, kind estimator.Kind) ([]Estimate, error) {
	switch kind {
	case estimator.QMC:
		return runQMCSharedCtx(ctx, ms, ro)
	case estimator.AIS:
		return runAISAllCtx(ctx, ms, ro)
	}
	return runMCSharedCtx(ctx, ms, o, ro, kind)
}

// runMCSharedCtx is the historical shared-sample kernel: plain Monte
// Carlo or ISLE mean-shift importance sampling on common random
// numbers.
func runMCSharedCtx(ctx context.Context, ms *MultiScenario, o YieldOptions, ro Options, kind estimator.Kind) ([]Estimate, error) {
	K := len(ms.Specs)

	shifts := ms.Shifts
	if shifts == nil && kind == estimator.ISLE {
		var err error
		if shifts, err = ms.FindShiftsCtx(ctx); err != nil {
			return nil, err
		}
	}
	if shifts == nil {
		shifts = make([][]float64, K)
	}

	shiftedC := make([]bool, K)
	shiftSq := make([]float64, K)
	anyShift := false
	for c, sh := range shifts {
		for _, t := range sh {
			if t != 0 {
				shiftedC[c] = true
			}
			shiftSq[c] += t * t
		}
		if shiftedC[c] {
			anyShift = true
			metRunsShifted.Inc()
		} else {
			metRunsPlain.Inc()
		}
	}

	// Candidates of a sizing sweep share the wire: detect it so the
	// per-sample extraction (the math.Pow-heavy part) runs once.
	sharedSeg := true
	for c := 1; c < K; c++ {
		if ms.Specs[c].Segment != ms.Specs[0].Segment {
			sharedSeg = false
			break
		}
	}

	// Per-candidate streaming (Welford) accumulators over the
	// contributions x_i = w_i·1[fail_i].
	type welford struct {
		n        int
		mean, m2 float64
	}
	accs := make([]welford, K)
	// active[c] marks candidates still sampling. It is only written
	// between pool runs (fold + stop check), never inside one, so
	// worker reads race with nothing.
	active := make([]bool, K)
	for c := range active {
		active[c] = true
	}
	left := K

	// The lane kernel is the default evaluation path; the scalar
	// per-sample path stays behind the test hook (and serves as the
	// lane's validation fallback). Both produce bit-identical
	// contribution rows, and the fold below never knows which ran.
	useLane := !laneKernelDisabled
	var lk *laneKernel
	var lsc []*laneScratch
	chunk := 1
	if useLane {
		lk = newLaneKernel(ms, ro, sharedSeg, shifts, shiftedC, shiftSq, anyShift, nil)
		chunk = laneChunk(ro.Batch, pool.Workers(ro.Workers, ro.Batch))
		lanesMax := (ro.Batch + chunk - 1) / chunk
		lsc = make([]*laneScratch, pool.Workers(ro.Workers, lanesMax))
		for w := range lsc {
			lsc[w] = getLaneScratch()
		}
		defer func() {
			for _, s := range lsc {
				putLaneScratch(s)
			}
		}()
	}
	var scratch []multiScratch
	if !useLane {
		maxW := pool.Workers(ro.Workers, ro.Batch)
		scratch = make([]multiScratch, maxW)
		draws := make([]float64, 2*maxW*Dims)
		for w := range scratch {
			scratch[w].eps = draws[2*w*Dims : (2*w+1)*Dims]
			scratch[w].z = draws[(2*w+1)*Dims : (2*w+2)*Dims]
		}
	}

	// contrib row k holds sample (start+k)'s K candidate
	// contributions; the fold walks rows in index order so no
	// floating-point reassociation depends on scheduling.
	contrib := make([]float64, ro.Batch*K)
	for done := 0; done < ro.Samples && left > 0; {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Fault point at the batch boundary, as in RunBatchCtx.
		if err := faultinject.Hit("variation.batch"); err != nil {
			return nil, err
		}
		batch := ro.Batch
		if rem := ro.Samples - done; rem < batch {
			batch = rem
		}
		start := done
		var err error
		if useLane {
			// Lane-granular dispatch: each pool item is one lane of
			// up to chunk samples, amortizing the per-item handoff
			// that made per-sample dispatch slower in parallel than
			// serial. Errors still resolve to the lowest failing
			// sample: lanes cover ascending index ranges and the
			// kernel reports a lane's lowest-index error.
			lanes := (batch + chunk - 1) / chunk
			err = pool.ForEachWorkerCtx(ctx, ro.Workers, lanes, func(l, worker int) error {
				off := l * chunk
				n := chunk
				if off+n > batch {
					n = batch - off
				}
				return lk.eval(lsc[worker], start+off, n, contrib[off*K:(off+n)*K], K, active)
			})
		} else {
			err = pool.ForEachWorkerCtx(ctx, ro.Workers, batch, func(k, worker int) error {
				s := &scratch[worker]
				s.stream.Reset(ro.Seed, uint64(start+k))
				s.stream.normsInto(s.eps, ro.Sampler)
				row := contrib[k*K : (k+1)*K]
				if !anyShift {
					return ms.evalShared(s, row, active, sharedSeg)
				}
				return ms.evalShifted(s, row, active, shifts, shiftedC, shiftSq)
			})
		}
		if err != nil {
			return nil, err
		}
		for k := 0; k < batch; k++ {
			row := contrib[k*K : (k+1)*K]
			for c := 0; c < K; c++ {
				if !active[c] {
					continue
				}
				a := &accs[c]
				x := row[c]
				a.n++
				d := x - a.mean
				a.mean += d / float64(a.n)
				a.m2 += d * (x - a.mean)
			}
		}
		done += batch
		metSamples.Add(int64(batch) * int64(left))
		for c := 0; c < K; c++ {
			if active[c] && stopRule(ro, shiftedC[c], accs[c].n, accs[c].mean, accs[c].m2) {
				active[c] = false
				left--
			}
		}
	}

	ests := make([]Estimate, K)
	for c := range ests {
		a := accs[c]
		ck := estimator.MC
		if shiftedC[c] {
			ck = estimator.ISLE
		}
		e := Estimate{FailProb: a.mean, Yield: 1 - a.mean, Samples: a.n, Shifted: shiftedC[c], VarianceReduction: 1, Estimator: ck}
		if a.n > 1 {
			sampleVar := a.m2 / float64(a.n-1)
			e.StdErr = math.Sqrt(sampleVar / float64(a.n))
			if sampleVar > 0 && a.mean > 0 && a.mean < 1 {
				e.VarianceReduction = a.mean * (1 - a.mean) / sampleVar
			}
		}
		ests[c] = e
	}
	return ests, nil
}
