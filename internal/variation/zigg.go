package variation

import (
	"fmt"
	"math"
)

// This file is the engine's fast normal sampler: the Marsaglia–Tsang
// ziggurat method over 128 layers. Box–Muller (Stream.Norm) costs a
// log, a sqrt, and a sin/cos pair per two draws; the ziggurat draw is
// one 64-bit PRNG output, a table lookup, a multiply, and a compare on
// ~98.9% of calls, with the transcendental wedge/tail corrections only
// on the rare escapes. Both samplers consume the same underlying
// uniform stream, so a (seed, index) pair still fully determines the
// draw sequence — just a different, equally deterministic sequence per
// sampler. Box–Muller stays available as the pinned legacy mode
// (SamplerBoxMuller) so historical fixtures keep a bit-exact
// reference.
//
// Layer layout of one 64-bit output u:
//
//	bits 0–6   layer index i (128 layers)
//	bit 7      sign
//	bits 11–63 53-bit magnitude (disjoint from the layer/sign bits)
//
// The tables are generated once from the canonical recurrence
// (r = 3.442619855899, v = 9.91256303526217e-3, scaled to 2^53) and
// hardcoded as exact hex-float constants, so the sampler's output is
// bit-reproducible across platforms regardless of how the local libm
// rounds exp/log at package init.

// Sampler selects the normal sampler behind the sampling kernels.
type Sampler string

const (
	// SamplerZiggurat is the default fast sampler.
	SamplerZiggurat Sampler = "ziggurat"
	// SamplerBoxMuller is the pinned legacy sampler: the exact
	// Box–Muller sequence every estimate produced before the ziggurat
	// landed. Fixtures and cross-version comparisons pin it.
	SamplerBoxMuller Sampler = "box-muller"
)

// resolveSampler maps the empty string to the default.
func resolveSampler(s Sampler) Sampler {
	if s == "" {
		return SamplerZiggurat
	}
	return s
}

// validSampler reports whether s names a known sampler (empty selects
// the default).
func validSampler(s Sampler) bool {
	switch s {
	case "", SamplerZiggurat, SamplerBoxMuller:
		return true
	}
	return false
}

// ParseSampler validates a sampler name arriving from an external
// request (facade, CLI, wire DTO): empty selects the default, unknown
// names are rejected wrapping ErrUnknownSampler. The empty name is
// returned as-is — resolution to the default happens in option
// normalization, so a caller echoing the parsed value back preserves
// "unset".
func ParseSampler(name string) (Sampler, error) {
	s := Sampler(name)
	if !validSampler(s) {
		return "", fmt.Errorf("%w %q", ErrUnknownSampler, name)
	}
	return s, nil
}

// zigR is the ziggurat tail cutoff: layer 0 hands |z| > zigR to the
// exponential-rejection tail sampler.
const zigR = 3.442619855899

// NormZig returns a standard normal draw via the ziggurat method.
// It consumes Uint64/Float64 outputs of the stream (a different
// consumption pattern than Norm — the two samplers produce different,
// individually deterministic sequences from the same stream state).
func (s *Stream) NormZig() float64 {
	for {
		u := s.Uint64()
		i := u & 127
		mag := u >> 11
		x := float64(mag) * zigW[i]
		if mag < zigK[i] {
			// Fast path: strictly inside the layer below.
			if u&0x80 != 0 {
				return -x
			}
			return x
		}
		if i == 0 {
			// Tail beyond zigR: Marsaglia's exponential rejection.
			for {
				x = -math.Log(s.Float64()) / zigR
				y := -math.Log(s.Float64())
				if y+y >= x*x {
					if u&0x80 != 0 {
						return -(zigR + x)
					}
					return zigR + x
				}
			}
		}
		// Wedge: uniform vertical coordinate against the density.
		if zigF[i]+s.Float64()*(zigF[i-1]-zigF[i]) < math.Exp(-0.5*x*x) {
			if u&0x80 != 0 {
				return -x
			}
			return x
		}
	}
}

// ZigNormsInto fills dst with standard normal draws from the ziggurat
// sampler — the batched fast path the lane kernel uses.
func (s *Stream) ZigNormsInto(dst []float64) {
	for i := range dst {
		dst[i] = s.NormZig()
	}
}

// normsInto fills dst using the resolved sampler.
func (s *Stream) normsInto(dst []float64, sampler Sampler) {
	if sampler == SamplerBoxMuller {
		s.NormsInto(dst)
		return
	}
	s.ZigNormsInto(dst)
}

var zigK = [128]uint64{
	8351102274452502, 0, 6759551952566946, 7662573469566209,
	8047126567441125, 8259536838386992, 8393983065371862, 8486621022240575,
	8554275373649064, 8605824214024737, 8646390457358828, 8679135317313481,
	8706114288268563, 8728721234883407, 8747934524364679, 8764460971287768,
	8778823859819920, 8791418834681184, 8802550552536504, 8812457397257277,
	8821328558359817, 8829316089474255, 8836543587138337, 8843112545225685,
	8849107079942570, 8854597492686141, 8859642990979876, 8864293790715872,
	8868592757779166, 8872576702609581, 8876277410359159, 8879722467550061,
	8882935930618173, 8885938870518823, 8888749819382260, 8891385139160551,
	8893859327698747, 8896185274269541, 8898374474033763, 8900437208916405,
	8902382700865922, 8904219242281779, 8905954307469687, 8907594648254903,
	8909146376306228, 8910615034262605, 8912005657384986, 8913322827158353,
	8914570718027663, 8915753138255073, 8916873565725230, 8917935179393317,
	8918940886961730, 8919893349280829, 8920795001894133, 8921648074085460,
	8922454605732770, 8923216462229077, 8923935347693141, 8924612816660687,
	8925250284419640, 8925849036129328, 8926410234843491, 8926934928539259,
	8927424056238948, 8927878453297973, 8928298855920026, 8928685904949916,
	8929040148984442, 8929362046832536, 8929651969347273, 8929910200643992,
	8930136938710699, 8930332295408728, 8930496295853339, 8930628877155236,
	8930729886494664, 8930799078489742, 8930836111809437, 8930840544969163,
	8930811831232705, 8930749312527814, 8930652212263776, 8930519626917004,
	8930350516224263, 8930143691791884, 8929897803891708, 8929611326169321,
	8929282537935327, 8928909503643700, 8928490049079407, 8928021733676853,
	8927501818265808, 8926927227386036, 8926294505116891, 8925599763122264,
	8924838619299160, 8924006125019161, 8923096678438399, 8922103920685315,
	8921020610864137, 8919838474662844, 8918548019824896, 8917138309688772,
	8915596683208440, 8913908406036188, 8912056231924694, 8910019846210726,
	8907775152445218, 8905293347731794, 8902539709494989, 8899471982132675,
	8896038199566180, 8892173697663239, 8887796938997366, 8882803555753491,
	8877057648535483, 8870378731389162, 8862521528037471, 8853143551576413,
	8841750799172912, 8827601958366751, 8809528315256632, 8785566778453576,
	8752128774404123, 8701822634880684, 8616358801204843, 8432812766515878,
}

var zigW = [128]float64{
	0x1.db4668fe7e4a4p-52, 0x1.16db47e193d2ep-55, 0x1.73949184db946p-55, 0x1.b4c8fece48e0cp-55,
	0x1.e8e576e43fb8dp-55, 0x1.0a936da5e5583p-54, 0x1.1e0ce6b59698ep-54, 0x1.2f98d6bb4f3fdp-54,
	0x1.3fabee1911cb8p-54, 0x1.4e94c08c0ba9bp-54, 0x1.5c8afdbf0215fp-54, 0x1.69b7b213f3f4fp-54,
	0x1.763a1600eec5bp-54, 0x1.822a858af0e66p-54, 0x1.8d9c6a9d35e26p-54, 0x1.989f85c753b16p-54,
	0x1.a340d1baf5b02p-54, 0x1.ad8b2506a1367p-54, 0x1.b787a7c516f26p-54, 0x1.c13e2b014e849p-54,
	0x1.cab56ac6a38bdp-54, 0x1.d3f340dda6105p-54, 0x1.dcfccc51c59d9p-54, 0x1.e5d6909f51b52p-54,
	0x1.ee848e9568258p-54, 0x1.f70a5866c8f31p-54, 0x1.ff6b21fffe304p-54, 0x1.03d4e7391c5adp-53,
	0x1.07e47d87a40edp-53, 0x1.0be58456ff4a5p-53, 0x1.0fd911b97f22ep-53, 0x1.13c024b2c7ebfp-53,
	0x1.179ba80463fe6p-53, 0x1.1b6c7492c972fp-53, 0x1.1f335374a10f2p-53, 0x1.22f0ffbaa1e4fp-53,
	0x1.26a627fb9d11ap-53, 0x1.2a536fae30e2ep-53, 0x1.2df97057e7ef6p-53, 0x1.3198ba982d90cp-53,
	0x1.3531d7146a439p-53, 0x1.38c54749b902fp-53, 0x1.3c538647ef78ep-53, 0x1.3fdd09591d2a1p-53,
	0x1.436240982ad99p-53, 0x1.46e39778de05fp-53, 0x1.4a617543306c9p-53, 0x1.4ddc3d83a5b81p-53,
	0x1.515450720f452p-53, 0x1.54ca0b4ffd346p-53, 0x1.583dc8bff3216p-53, 0x1.5bafe11654814p-53,
	0x1.5f20aaa4dfc18p-53, 0x1.62907a0176ebdp-53, 0x1.65ffa248e016bp-53, 0x1.696e755e16b82p-53,
	0x1.6cdd4426b88a3p-53, 0x1.704c5ec50cb7fp-53, 0x1.73bc14d01a2c7p-53, 0x1.772cb58a39dd5p-53,
	0x1.7a9e90168b8eep-53, 0x1.7e11f3adaeb92p-53, 0x1.81872fd21db73p-53, 0x1.84fe9484873b8p-53,
	0x1.88787278810a6p-53, 0x1.8bf51b49ef337p-53, 0x1.8f74e1b37c6b8p-53, 0x1.92f819c682bf5p-53,
	0x1.967f1924c7b06p-53, 0x1.9a0a373c73f21p-53, 0x1.9d99cd86b58b4p-53, 0x1.a12e37c983369p-53,
	0x1.a4c7d45d01a31p-53, 0x1.a867047516e4fp-53, 0x1.ac0c2c6fc6382p-53, 0x1.afb7b428fe7a1p-53,
	0x1.b36a075498d64p-53, 0x1.b72395df5b73bp-53, 0x1.bae4d457ee119p-53, 0x1.beae3c60cd0e4p-53,
	0x1.c2804d2c6b16fp-53, 0x1.c65b8c04dbac1p-53, 0x1.ca4084e091e33p-53, 0x1.ce2fcb05f8c33p-53,
	0x1.d229f9bfeefdap-53, 0x1.d62fb52580b85p-53, 0x1.da41aaf79a343p-53, 0x1.de609397e09b8p-53,
	0x1.e28d331c6723cp-53, 0x1.e6c85a849b015p-53, 0x1.eb12e91486bbcp-53, 0x1.ef6dcddc7d392p-53,
	0x1.f3da097460823p-53, 0x1.f858aff31cbfp-53, 0x1.fceaeb2ca5f17p-53, 0x1.00c8fea1720d4p-52,
	0x1.0327a1cc4cf5ep-52, 0x1.05921d1c4d769p-52, 0x1.08093fe3e40e1p-52, 0x1.0a8ded0ec371ap-52,
	0x1.0d211dd28b00fp-52, 0x1.0fc3e4d95f278p-52, 0x1.12777201834f3p-52, 0x1.153d16d45743dp-52,
	0x1.18164be0c1c39p-52, 0x1.1b04b731f6bccp-52, 0x1.1e0a342cf08f6p-52, 0x1.2128dd36bdf09p-52,
	0x1.246317a6b53cp-52, 0x1.27bba2b5dbc92p-52, 0x1.2b35aa5ebee3ep-52, 0x1.2ed4df8099571p-52,
	0x1.329d9725e32f7p-52, 0x1.3694f3a3740d9p-52, 0x1.3ac11b8e206d6p-52, 0x1.3f29848d3b416p-52,
	0x1.43d75b60bca1dp-52, 0x1.48d61806d601p-52, 0x1.4e3456b0e3a1bp-52, 0x1.54052012a04a4p-52,
	0x1.5a61edf7e8f32p-52, 0x1.616dff7c8f54ap-52, 0x1.695c2be68edc9p-52, 0x1.7279dd4ac3f9dp-52,
	0x1.7d45eb36eb842p-52, 0x1.8aa73e440ffbcp-52, 0x1.9c8e0c7c8098fp-52, 0x1.b8a7c476d2be8p-52,
}

var zigF = [128]float64{
	0x1.0000p+00, 0x1.ed5cf060d53dap-01, 0x1.df6071934c0bp-01, 0x1.d37a74ffb7e56p-01,
	0x1.c8d923f9e0683p-01, 0x1.bf19b6810e615p-01, 0x1.b6042cf903cc7p-01, 0x1.ad750b7255a29p-01,
	0x1.a55418110d2afp-01, 0x1.9d8fdfaec7bf9p-01, 0x1.961b4c1afe589p-01, 0x1.8eec3c5bbfb42p-01,
	0x1.87faa61a739f4p-01, 0x1.814005219cc7bp-01, 0x1.7ab6f9c656c21p-01, 0x1.745b04d027f29p-01,
	0x1.6e2856a006c21p-01, 0x1.681bab4ebdc24p-01, 0x1.62322fc593a65p-01, 0x1.5c696d348e88dp-01,
	0x1.56bf39249a242p-01, 0x1.5131a8efe6186p-01, 0x1.4bbf07c6c218bp-01, 0x1.4665cea500fcp-01,
	0x1.41249dc646453p-01, 0x1.3bfa374538795p-01, 0x1.36e57aa69826fp-01, 0x1.31e5612065d09p-01,
	0x1.2cf8fa78591cp-01, 0x1.281f6a5d24475p-01, 0x1.2357e62428f93p-01, 0x1.1ea1b2d9efcbep-01,
	0x1.19fc239747fb3p-01, 0x1.1566980fb8bb3p-01, 0x1.10e07b5015e59p-01, 0x1.0c6942a5bbcacp-01,
	0x1.08006ca84dde7p-01, 0x1.03a58060e6682p-01, 0x1.feb0191503b12p-02, 0x1.f62f4dd0454a9p-02,
	0x1.edc7d75b77111p-02, 0x1.e578f9f2c9375p-02, 0x1.dd4204b582987p-02, 0x1.d52250cd9b95p-02,
	0x1.cd1940ad1b149p-02, 0x1.c5263f5e989c9p-02, 0x1.bd48bfe6a41e6p-02, 0x1.b5803cb422f24p-02,
	0x1.adcc371df416dp-02, 0x1.a62c36ec664e1p-02, 0x1.9e9fc9ed3ad11p-02, 0x1.97268391186bcp-02,
	0x1.8fbffc9176151p-02, 0x1.886bd29e2262bp-02, 0x1.8129a811a7655p-02, 0x1.79f923abe1179p-02,
	0x1.72d9f0523036ap-02, 0x1.6bcbbcd4c4728p-02, 0x1.64ce3bb887d8dp-02, 0x1.5de12305426e9p-02,
	0x1.57042c17986d7p-02, 0x1.503713768fb3fp-02, 0x1.497998ac51ea1p-02, 0x1.42cb7e21e8c53p-02,
	0x1.3c2c88fdb8dd1p-02, 0x1.359c810485cb7p-02, 0x1.2f1b307ccfe9ap-02, 0x1.28a864146107ep-02,
	0x1.2243eac7e2068p-02, 0x1.1bed95cc5751fp-02, 0x1.15a5387a66034p-02, 0x1.0f6aa83b46cf7p-02,
	0x1.093dbc774f1ap-02, 0x1.031e4e85fb6a1p-02, 0x1.fa18733ed2789p-03, 0x1.ee0eb59e61862p-03,
	0x1.e21f21d12332ep-03, 0x1.d64978f7cf9d6p-03, 0x1.ca8d7f9ac2021p-03, 0x1.beeafd99d711p-03,
	0x1.b361be1eb801bp-03, 0x1.a7f18f918fb5fp-03, 0x1.9c9a43902c0f5p-03, 0x1.915baee792bf2p-03,
	0x1.8635a99016376p-03, 0x1.7b280eabfd4bcp-03, 0x1.7032bc88d676dp-03, 0x1.655594a396d57p-03,
	0x1.5a907baface5fp-03, 0x1.4fe359a138234p-03, 0x1.454e19baa0e72p-03, 0x1.3ad0aa9dd7fa4p-03,
	0x1.306afe6193144p-03, 0x1.261d0aaaebe72p-03, 0x1.1be6c8cbda96fp-03, 0x1.11c835e71b728p-03,
	0x1.07c1531a2b49bp-03, 0x1.fba44b5c4de8bp-04, 0x1.e7f56ea105fbcp-04, 0x1.d4762ca983a5ap-04,
	0x1.c126ac011775fp-04, 0x1.ae071dc7af28fp-04, 0x1.9b17be7e63eebp-04, 0x1.8858d6f54ff3p-04,
	0x1.75cabd60e5dbbp-04, 0x1.636dd69e8c212p-04, 0x1.514297b239a5cp-04, 0x1.3f4987896ad6ap-04,
	0x1.2d8341133a33bp-04, 0x1.1bf075c20a9fep-04, 0x1.0a91f09183c33p-04, 0x1.f2d13368bd127p-05,
	0x1.d0eaf63395868p-05, 0x1.af738c17a5015p-05, 0x1.8e6db483bc1bbp-05, 0x1.6ddc9dd1fe248p-05,
	0x1.4dc3fcbd99702p-05, 0x1.2e282b724adacp-05, 0x1.0f0e539c89b76p-05, 0x1.e0f951d57e236p-06,
	0x1.a4f57a25d9cbdp-06, 0x1.6a23fa9d5f276p-06, 0x1.309cee4e09981p-06, 0x1.f100847645165p-07,
	0x1.83f4bed19339ap-07, 0x1.1a9b6b3fc1937p-07, 0x1.6ba8b0ffb627ep-08, 0x1.5de9e33726f2p-09,
}
