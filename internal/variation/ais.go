package variation

import (
	"context"
	"math"
	"sort"

	"repro/internal/estimator"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/pool"
)

// Adaptive importance sampling: the deep-tail (≳4σ) rung of the
// estimator ladder. A single ISLE mean shift stops tracking the
// failure region past ~4σ — the region is curved and can split into
// lobes a lone shifted Gaussian cannot cover, and its likelihood
// ratios degenerate. AIS instead *learns* the proposal by the
// cross-entropy method: draw a stage from the current proposal, rank
// the draws by how deep into the failure direction they reach (the
// delay metric itself — informative even when no draw fails yet),
// refit a defensive Gaussian mixture on the elite set, repeat. The
// final stage draws from the adapted mixture and estimates with
// self-normalized likelihood-ratio weights, with the effective sample
// size guarding against a proposal that secretly missed the region.
//
// Determinism contract: stage budgets are fixed up front (never
// data-dependent), sample i of a run draws from the stream keyed
// (Seed, stage offset + i), every per-sample result lands in an
// index-addressed slot, and ranking, refitting, and the final fold all
// walk those slots in deterministic order — so the returned Estimate
// is bit-identical for every Workers value, like every other rung.

const (
	// aisMaxStages caps the cross-entropy adaptation stages before the
	// final estimation stage; adaptation exits early once the proposal
	// lands in the failure region.
	aisMaxStages = 6
	// aisEliteDivisor: the top 1/10 of a stage's draws (by delay depth)
	// seed the refit, extended to include every failing draw.
	aisEliteDivisor = 10
	// aisMinElites floors the elite set so tiny stages still fit a
	// meaningful mixture.
	aisMinElites = 32
	// aisComponents is the mixture size: two lobes cover the
	// symmetric NMOS/PMOS failure directions of the delay models.
	aisComponents = 2
	// aisMinESSFrac: when the final stage's effective sample size
	// falls below this fraction of its draws, the standard error is
	// widened by the shortfall — a degenerate weight set must not
	// masquerade as a converged estimate.
	aisMinESSFrac = 0.1
	// aisExploreSigmaFloor keeps the proposal wide during adaptation:
	// elite sets are tight, and fitting their true spread would let
	// the classic cross-entropy failure mode bite — the proposal's
	// variance collapses faster than its mean travels, and the
	// iteration stalls short of a deep failure region. Unit-wide
	// components keep each stage reaching ~3σ past its mean; only the
	// final refit (which feeds the estimation stage, where a tight
	// proposal is the point) fits at the default floor.
	aisExploreSigmaFloor = 1.0
)

var metRunsAIS = obs.NewCounter("variation.runs_ais")

// runAISAllCtx runs per-candidate AIS. Unlike the MC/QMC kernels there
// is no cross-candidate sample sharing: each candidate adapts its own
// proposal, so draws are candidate-specific by construction. Each
// candidate's estimate matches a standalone single-candidate run
// bit-for-bit.
func runAISAllCtx(ctx context.Context, ms *MultiScenario, ro Options) ([]Estimate, error) {
	ests := make([]Estimate, len(ms.Specs))
	for c := range ms.Specs {
		e, err := runAISCtx(ctx, ms.scenario(c), ro)
		if err != nil {
			return nil, err
		}
		ests[c] = e
	}
	return ests, nil
}

// aisBudget sizes one adaptation stage: a twelfth of the budget,
// capped at 1024, so even aisMaxStages exploration rounds leave at
// least half the budget for estimation. Budgets too small to adapt
// (stage under 64 draws) skip straight to estimation from the
// standard proposal.
func aisBudget(total int) (adapt int) {
	adapt = total / 12
	if adapt > 1024 {
		adapt = 1024
	}
	if adapt < 64 {
		return 0
	}
	return adapt
}

func runAISCtx(ctx context.Context, sc *LinkScenario, ro Options) (Estimate, error) {
	maxW := pool.Workers(ro.Workers, ro.Batch)
	scratch := make([]Scratch, maxW)
	return runAISMetricCtx(ctx, ro, sc.Target, func(worker int, z []float64) (float64, error) {
		return sc.DelayScratch(&scratch[worker], z)
	})
}

// runAISMetricCtx is the scenario-independent AIS core: estimate
// P[metric(z) > target] over the standardized space. metric receives
// the worker id for per-worker scratch, like BatchTrial.
func runAISMetricCtx(ctx context.Context, ro Options, target float64, metric func(worker int, z []float64) (float64, error)) (Estimate, error) {
	metRunsAIS.Inc()
	adapt := aisBudget(ro.Samples)

	// Index-addressed per-sample results of the current stage: the
	// draw (kept for refitting), its delay, its importance weight.
	// Sized for the worst case (no adaptation: the whole budget is one
	// estimation stage).
	zs := make([]float64, ro.Samples*Dims)
	delays := make([]float64, ro.Samples)
	weights := make([]float64, ro.Samples)

	// Adaptation: draw a stage, refit, repeat until the proposal lands
	// in the failure region (enough draws actually fail) or the stage
	// cap is hit. Exploration refits are unweighted and wide (see
	// aisExploreSigmaFloor); the last refit before estimation is
	// likelihood-weighted and tight — that one approximates the
	// conditional failure distribution the estimator wants to draw
	// from. The stage count depends only on the (deterministic) draws,
	// never on scheduling, so the contract holds.
	prop := estimator.StandardProposal()
	offset := 0
	if adapt > 0 {
		for stage := 1; ; stage++ {
			if err := aisStage(ctx, ro, &prop, offset, adapt, zs, delays, weights, metric); err != nil {
				return Estimate{}, err
			}
			offset += adapt
			nFail := 0
			for i := 0; i < adapt; i++ {
				if delays[i] > target {
					nFail++
				}
			}
			if nFail >= aisMinElites || stage == aisMaxStages {
				prop = aisRefit(zs, delays, weights, adapt, target, true, estimator.FitOptions{})
				break
			}
			prop = aisRefit(zs, delays, weights, adapt, target, false, estimator.FitOptions{SigmaFloor: aisExploreSigmaFloor})
		}
	}
	// Estimation: the final stage draws from the adapted proposal in
	// stopping-rule batches, re-deriving the self-normalized estimate
	// over the prefix between batches and stopping once RelErr/AbsErr
	// is met (with the ESS guard widening the error bar first, so a
	// degenerate weight set cannot stop early). It used to ignore the
	// stopping rule entirely and burn the full budget even once the
	// estimate was resolved. Every quantity the rule reads is a pure
	// function of the index-addressed prefix, so the early stop
	// preserves the any-worker-count bit-identity contract.
	budget := ro.Samples - offset
	final := 0
	for final < budget {
		chunk := ro.Batch
		if rem := budget - final; rem < chunk {
			chunk = rem
		}
		if err := aisStage(ctx, ro, &prop, offset+final, chunk, zs[final*Dims:], delays[final:], weights[final:], metric); err != nil {
			return Estimate{}, err
		}
		final += chunk
		if aisStop(ro, final, delays[:final], weights[:final], target) {
			break
		}
	}
	evals := offset + final

	// Self-normalized ratio estimate over the final stage, folded in
	// index order: p̂ = Σ wᵢ·1[failᵢ] / Σ wᵢ.
	var sumW, sumW2, sumWI float64
	for i := 0; i < final; i++ {
		w := weights[i]
		sumW += w
		sumW2 += w * w
		if delays[i] > target {
			sumWI += w
		}
	}
	est := Estimate{Yield: 1, Samples: evals, Shifted: true, VarianceReduction: 1, Estimator: estimator.AIS}
	if sumW <= 0 {
		return est, nil
	}
	p := sumWI / sumW
	// Delta-method standard error of the self-normalized ratio:
	// se² = Σ (wᵢ(1[failᵢ] − p̂))² / (Σ wᵢ)².
	var ss float64
	for i := 0; i < final; i++ {
		ind := 0.0
		if delays[i] > target {
			ind = 1
		}
		d := weights[i] * (ind - p)
		ss += d * d
	}
	se := math.Sqrt(ss) / sumW
	// ESS guard: n draws whose weights concentrate on a few samples
	// carry far less information than n; widen the error bar by the
	// shortfall instead of reporting phantom precision.
	if ess := estimator.ESS(sumW, sumW2); ess > 0 {
		if floor := aisMinESSFrac * float64(final); ess < floor {
			se *= math.Sqrt(floor / ess)
		}
	}
	est.FailProb = p
	est.Yield = 1 - p
	est.StdErr = se
	if p > 0 && p < 1 && se > 0 && final > 0 {
		est.VarianceReduction = p * (1 - p) / float64(final) / (se * se)
	}
	return est, nil
}

// aisStop is the stopping rule of the AIS estimation stage, evaluated
// over the stage's prefix [0, n): the self-normalized estimate, its
// delta-method standard error, and the ESS widening — exactly the
// quantities the final Estimate reports — checked against RelErr /
// AbsErr. There is no rule-of-three escape: the bound assumes Bernoulli
// indicators, and AIS contributions are likelihood-ratio weights. The
// floor is MinSamples of *estimation* draws (adaptation stages inform
// the proposal, not the estimate).
func aisStop(ro Options, n int, delays, weights []float64, target float64) bool {
	if ro.RelErr <= 0 && ro.AbsErr <= 0 {
		return false
	}
	if n < ro.MinSamples || n < 2 {
		return false
	}
	var sumW, sumW2, sumWI float64
	for i := 0; i < n; i++ {
		w := weights[i]
		sumW += w
		sumW2 += w * w
		if delays[i] > target {
			sumWI += w
		}
	}
	if sumW <= 0 || sumWI <= 0 {
		return false
	}
	p := sumWI / sumW
	var ss float64
	for i := 0; i < n; i++ {
		ind := 0.0
		if delays[i] > target {
			ind = 1
		}
		d := weights[i] * (ind - p)
		ss += d * d
	}
	se := math.Sqrt(ss) / sumW
	if ess := estimator.ESS(sumW, sumW2); ess > 0 {
		if floor := aisMinESSFrac * float64(n); ess < floor {
			se *= math.Sqrt(floor / ess)
		}
	}
	if ro.RelErr > 0 && se/p <= ro.RelErr {
		metStopRelErr.Inc()
		return true
	}
	if ro.AbsErr > 0 && se <= ro.AbsErr {
		metStopAbsErr.Inc()
		return true
	}
	return false
}

// aisStage evaluates n proposal draws with global sample indices
// [offset, offset+n), filling the index-addressed zs/delays/weights
// slots. Sample i's draw is a pure function of (Seed, offset+i) and
// the (stage-constant) proposal, so worker scheduling cannot influence
// any result.
func aisStage(ctx context.Context, ro Options, prop *estimator.Mixture, offset, n int, zs, delays, weights []float64, metric func(worker int, z []float64) (float64, error)) error {
	if n == 0 {
		return nil
	}
	maxW := pool.Workers(ro.Workers, ro.Batch)
	streams := make([]Stream, maxW)
	epsBuf := make([]float64, maxW*Dims)
	for done := 0; done < n; {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := faultinject.Hit("variation.batch"); err != nil {
			return err
		}
		batch := ro.Batch
		if rem := n - done; rem < batch {
			batch = rem
		}
		start := done
		err := pool.ForEachWorkerCtx(ctx, ro.Workers, batch, func(k, worker int) error {
			i := start + k
			st := &streams[worker]
			st.Reset(ro.Seed, uint64(offset+i))
			u := st.Float64() // component selector, drawn before the normals
			eps := epsBuf[worker*Dims : (worker+1)*Dims]
			st.NormsInto(eps)
			z := zs[i*Dims : (i+1)*Dims]
			prop.SampleInto(u, eps, z)
			d, err := metric(worker, z)
			if err != nil {
				return err
			}
			delays[i] = d
			weights[i] = prop.Weight01(z)
			return nil
		})
		if err != nil {
			return err
		}
		done += batch
		metSamples.Add(int64(batch))
	}
	return nil
}

// aisRefit selects the elite set of a stage — the deepest tenth by
// delay, extended to cover every failing draw — and fits the next
// proposal on it. With weighted set, each elite carries its
// likelihood ratio (the cross-entropy weighting that makes the fitted
// mixture approximate the conditional failure distribution rather
// than the current proposal's bias) — right for the final refit, but
// during exploration the bounded ratios of the defensive mixture make
// the shallowest elites dominate and the proposal creep, so the
// exploration refits fit unweighted. Ties break by sample index,
// keeping the ranking deterministic.
func aisRefit(zs, delays, weights []float64, n int, target float64, weighted bool, fit estimator.FitOptions) estimator.Mixture {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if delays[idx[a]] != delays[idx[b]] {
			return delays[idx[a]] > delays[idx[b]]
		}
		return idx[a] < idx[b]
	})
	elite := n / aisEliteDivisor
	if elite < aisMinElites {
		elite = aisMinElites
	}
	if elite > n {
		elite = n
	}
	for elite < n && delays[idx[elite]] > target {
		elite++
	}
	pts := make([][]float64, elite)
	var w []float64
	if weighted {
		w = make([]float64, elite)
	}
	for j, id := range idx[:elite] {
		pts[j] = zs[id*Dims : (id+1)*Dims]
		if weighted {
			w[j] = weights[id]
		}
	}
	return estimator.FitMixture(aisComponents, pts, w, fit)
}
