package variation

import (
	"testing"
)

// BenchmarkNormsInto measures the per-draw cost of filling one
// Dims-wide draw vector per sample — the sampler half of the hot
// path. The ns/draw metric divides out the vector width so the two
// samplers compare per scalar normal.
func BenchmarkNormsInto(b *testing.B) {
	for _, s := range []Sampler{SamplerZiggurat, SamplerBoxMuller} {
		b.Run(string(s), func(b *testing.B) {
			dst := make([]float64, Dims)
			var st Stream
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.Reset(1, uint64(i))
				st.normsInto(dst, s)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(Dims), "ns/draw")
		})
	}
}

// BenchmarkLaneKernel measures the engine-level sampling kernel with
// and without the SoA lane path, on the same single-candidate scenario
// the yield facade evaluates: "lane" is the default batch kernel,
// "scalar" the per-sample legacy path behind the test hook. The spread
// between the two is the lane restructuring's win with everything else
// (facade, fold, stopping) held fixed.
func BenchmarkLaneKernel(b *testing.B) {
	sc := testScenario(b, 520e-12)
	const samples = 2048
	o := YieldOptions{Samples: samples, Seed: 1, Workers: 1}
	run := func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := EstimateLinkYield(sc, o); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/samples, "ns/sample")
		b.ReportMetric(samples, "samples/op")
	}
	b.Run("lane", run)
	b.Run("scalar", func(b *testing.B) {
		withScalarKernel(func() { run(b) })
	})
}
