package variation

import (
	"context"
	"errors"
	"testing"

	"repro/internal/estimator"
)

// collectAll evaluates [0, Samples) as a set of shards of the given
// sizes (cycling through the list) and returns the parts plus the
// shifted flag the shards agreed on.
func collectAll(t *testing.T, sc *LinkScenario, o YieldOptions, sizes []int) ([]Partial, bool) {
	t.Helper()
	samples, _ := o.ResolvedSampling()
	var parts []Partial
	shifted := false
	for start, si := 0, 0; start < samples; si++ {
		count := sizes[si%len(sizes)]
		if rem := samples - start; rem < count {
			count = rem
		}
		p, _, sh, err := CollectPartialCtx(context.Background(), sc, o, start, count)
		if err != nil {
			t.Fatalf("CollectPartialCtx(%d,%d): %v", start, count, err)
		}
		if start == 0 {
			shifted = sh
		} else if sh != shifted {
			t.Fatalf("shard at %d reports shifted=%v, first shard said %v", start, sh, shifted)
		}
		parts = append(parts, p)
		start += count
	}
	return parts, shifted
}

// TestPartialMergeBitIdentity is the distributed-kernel contract: for
// every shardable rung and every shard layout — including unaligned
// and single-sample shards — collecting the range in pieces and
// replaying the merge reproduces the local estimate bit for bit.
func TestPartialMergeBitIdentity(t *testing.T) {
	layouts := [][]int{
		{4096},            // one shard
		{512},             // batch-aligned
		{1000},            // unaligned
		{100, 700, 33, 1}, // ragged mix
	}
	cases := []struct {
		name string
		o    YieldOptions
	}{
		{"mc", YieldOptions{Samples: 4096, Seed: 11}},
		{"isle", YieldOptions{Samples: 4096, Seed: 11, Estimator: estimator.ISLE}},
		{"qmc", YieldOptions{Samples: 4096, Seed: 11, Estimator: estimator.QMC}},
		{"mc-relerr", YieldOptions{Samples: 4096, Seed: 11, RelErr: 0.2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := testScenario(t, 480e-12)
			want, err := EstimateLinkYield(sc, tc.o)
			if err != nil {
				t.Fatal(err)
			}
			kind, ok, err := tc.o.ShardableKind()
			if err != nil || !ok {
				t.Fatalf("ShardableKind: %v, %v", ok, err)
			}
			for _, layout := range layouts {
				parts, shifted := collectAll(t, sc, tc.o, layout)
				got, done, err := MergePartials(tc.o, kind, shifted, parts)
				if err != nil {
					t.Fatalf("layout %v: %v", layout, err)
				}
				if !done {
					t.Fatalf("layout %v: full coverage not done", layout)
				}
				if got != want {
					t.Fatalf("layout %v: merged %+v != local %+v", layout, got, want)
				}
			}
		})
	}
}

// TestPartialMergeStopsEarly pins the global stopping rule living in
// the merge: with RelErr set, the merged fold must truncate at the same
// sample the local kernel stops at — fewer samples than the budget —
// and report done before the full range is covered.
func TestPartialMergeStopsEarly(t *testing.T) {
	sc := testScenario(t, 480e-12)
	o := YieldOptions{Samples: 8192, Seed: 5, RelErr: 0.2}
	want, err := EstimateLinkYield(sc, o)
	if err != nil {
		t.Fatal(err)
	}
	if want.Samples >= 8192 {
		t.Fatalf("local run burned the whole budget (%d) — test needs an early stop", want.Samples)
	}

	// Collect only a prefix that covers the stop point, not the budget:
	// the merge must report done without the remaining shards.
	var parts []Partial
	for start := 0; start < want.Samples+512; start += 512 {
		p, kind, shifted, err := CollectPartialCtx(context.Background(), sc, o, start, 512)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
		got, done, err := MergePartials(o, kind, shifted, parts)
		if err != nil {
			t.Fatal(err)
		}
		if covered := start + 512; covered < want.Samples {
			if done {
				t.Fatalf("done after only %d samples, local stop was at %d", covered, want.Samples)
			}
			continue
		}
		if !done {
			t.Fatalf("not done after covering %d samples, local stop was at %d", start+512, want.Samples)
		}
		if got != want {
			t.Fatalf("merged %+v != local %+v", got, want)
		}
		return
	}
}

// TestShardableKind pins which rungs distribute: the index-keyed
// sampling rungs do, AIS/WCD and the auto ≥3σ cascade (which may
// answer analytically with zero samples) do not.
func TestShardableKind(t *testing.T) {
	cases := []struct {
		name string
		o    YieldOptions
		want estimator.Kind
		ok   bool
	}{
		{"mc", YieldOptions{}, estimator.MC, true},
		{"legacy-is", YieldOptions{ImportanceSampling: true}, estimator.ISLE, true},
		{"qmc", YieldOptions{Estimator: estimator.QMC}, estimator.QMC, true},
		{"explicit-isle", YieldOptions{Estimator: estimator.ISLE}, estimator.ISLE, true},
		{"ais", YieldOptions{Estimator: estimator.AIS}, estimator.AIS, false},
		{"wcd", YieldOptions{Estimator: estimator.WCD}, estimator.WCD, false},
		{"auto-cascade", YieldOptions{TargetSigma: 4}, "", false},
		{"explicit-past-cascade", YieldOptions{Estimator: estimator.ISLE, TargetSigma: 4}, estimator.ISLE, true},
	}
	for _, tc := range cases {
		kind, ok, err := tc.o.ShardableKind()
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if ok != tc.ok {
			t.Errorf("%s: shardable=%v, want %v", tc.name, ok, tc.ok)
		}
		if tc.want != "" && kind != tc.want {
			t.Errorf("%s: kind %q, want %q", tc.name, kind, tc.want)
		}
	}
	if _, _, _, err := CollectPartialCtx(context.Background(), testScenario(t, 480e-12), YieldOptions{Estimator: estimator.AIS}, 0, 64); err == nil {
		t.Error("collecting an AIS shard succeeded, want ErrNotShardable")
	} else if !errors.Is(err, ErrNotShardable) {
		t.Errorf("AIS shard error %v does not wrap ErrNotShardable", err)
	}
}

// TestMergePartialsRejectsMalformedSets: gaps, overlaps, non-zero
// starts, and out-of-range shards are protocol violations, not silent
// mis-merges.
func TestMergePartialsRejectsMalformedSets(t *testing.T) {
	o := YieldOptions{Samples: 1024}
	bad := []struct {
		name  string
		parts []Partial
	}{
		{"empty", nil},
		{"gap", []Partial{{Start: 0, Count: 256}, {Start: 512, Count: 512}}},
		{"overlap", []Partial{{Start: 0, Count: 512}, {Start: 256, Count: 512}}},
		{"nonzero-start", []Partial{{Start: 256, Count: 256}}},
		{"past-budget", []Partial{{Start: 0, Count: 2048}}},
		{"descending-failures", []Partial{{Start: 0, Count: 256, FailIdx: []int{5, 3}}}},
		{"foreign-failure", []Partial{{Start: 0, Count: 256, FailIdx: []int{300}}}},
		{"weight-mismatch", []Partial{{Start: 0, Count: 256, FailIdx: []int{1}, Weights: []float64{1, 2}}}},
	}
	for _, tc := range bad {
		if _, _, err := MergePartials(o, estimator.MC, false, tc.parts); err == nil {
			t.Errorf("%s: merge succeeded, want error", tc.name)
		}
	}
}

// TestPartialSums cross-checks the summary sums against the sparse
// contributions they summarize.
func TestPartialSums(t *testing.T) {
	p := Partial{Start: 0, Count: 100, FailIdx: []int{3, 7, 50}, Weights: []float64{0.5, 2, 0.25}}
	fails, sumW, sumW2 := p.Sums()
	if fails != 3 || sumW != 2.75 || sumW2 != 4.3125 {
		t.Fatalf("Sums() = %d, %g, %g; want 3, 2.75, 4.3125", fails, sumW, sumW2)
	}
	plain := Partial{Start: 0, Count: 100, FailIdx: []int{1, 2}}
	fails, sumW, sumW2 = plain.Sums()
	if fails != 2 || sumW != 2 || sumW2 != 2 {
		t.Fatalf("unweighted Sums() = %d, %g, %g; want 2, 2, 2", fails, sumW, sumW2)
	}
}

// TestAISEstimationStageStops pins the satellite fix: the AIS final
// stage honors RelErr instead of burning the full budget, stays
// bit-identical across worker counts, and still runs to the budget when
// no tolerance is set.
func TestAISEstimationStageStops(t *testing.T) {
	sc := testScenario(t, 480e-12)
	budget := 8192

	full, err := EstimateLinkYield(sc, YieldOptions{Samples: budget, Seed: 3, Estimator: estimator.AIS})
	if err != nil {
		t.Fatal(err)
	}
	if full.Samples != budget {
		t.Fatalf("no-tolerance AIS run evaluated %d samples, want the whole budget %d", full.Samples, budget)
	}

	early, err := EstimateLinkYield(sc, YieldOptions{Samples: budget, Seed: 3, Estimator: estimator.AIS, RelErr: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if early.Samples >= budget {
		t.Fatalf("RelErr-bounded AIS run still burned the whole budget (%d samples)", early.Samples)
	}
	if early.StdErr <= 0 || early.StdErr/early.FailProb > 0.2+1e-12 {
		t.Fatalf("early stop fired at rel err %g, want ≤ 0.2", early.StdErr/early.FailProb)
	}
	// The early estimate must agree with the full-budget one within the
	// (generous) combined error bars.
	if diff := early.FailProb - full.FailProb; diff > 5*(early.StdErr+full.StdErr) || -diff > 5*(early.StdErr+full.StdErr) {
		t.Fatalf("early estimate %g inconsistent with full-budget %g (se %g / %g)", early.FailProb, full.FailProb, early.StdErr, full.StdErr)
	}

	for _, workers := range []int{1, 4, 8} {
		got, err := EstimateLinkYield(sc, YieldOptions{Samples: budget, Seed: 3, Estimator: estimator.AIS, RelErr: 0.2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got != early {
			t.Fatalf("workers=%d: %+v != workers-default %+v — early stop broke bit-identity", workers, got, early)
		}
	}
}
