package variation

import (
	"math"
	"testing"

	"repro/internal/buffering"
	"repro/internal/model"
	"repro/internal/tech"
	"repro/internal/wire"
)

// testScenario designs a 5 mm 90nm link with the embedded coefficients
// and wraps it in a scenario with the given delay target.
func testScenario(t testing.TB, target float64) *LinkScenario {
	t.Helper()
	tc := tech.MustLookup("90nm")
	coeffs := model.MustDefault("90nm")
	seg := wire.NewSegment(tc, 5e-3, wire.SWSS)
	des, err := buffering.Optimize(seg, buffering.Options{
		Coeffs:      coeffs,
		Power:       model.PowerParams{Activity: 0.15, Freq: tc.Clock},
		PowerWeight: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &LinkScenario{
		Base:   tc,
		Coeffs: coeffs,
		Space:  DefaultSpace(),
		Spec:   model.LineSpec{Kind: des.Kind, Size: des.Size, N: des.N, Segment: seg, InputSlew: 300e-12},
		Target: target,
	}
}

func TestScenarioNominalDelayMatchesDesign(t *testing.T) {
	sc := testScenario(t, 1e-9)
	nom, err := sc.NominalDelay()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sc.Coeffs.LineDelay(sc.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nom-want.Delay)/want.Delay > 1e-12 {
		t.Fatalf("nominal-draw delay %g != design delay %g", nom, want.Delay)
	}
}

// TestNominalDelayLeavesZeroDrawClean pins the contract behind the
// shared package-level zero draw: NominalDelay used to allocate a
// fresh zero slice per call; now every call reads the same array, so
// nothing downstream may ever write through the draw. A repeated call
// must also keep returning the same value.
func TestNominalDelayLeavesZeroDrawClean(t *testing.T) {
	sc := testScenario(t, 1e-9)
	first, err := sc.NominalDelay()
	if err != nil {
		t.Fatal(err)
	}
	for d, v := range zeroDraw {
		if v != 0 {
			t.Fatalf("zeroDraw[%d] = %g after NominalDelay — the shared draw was written through", d, v)
		}
	}
	again, err := sc.NominalDelay()
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatalf("second NominalDelay %g != first %g", again, first)
	}
}

func TestScenarioDelayRespondsToVariation(t *testing.T) {
	sc := testScenario(t, 1e-9)
	nom, err := sc.NominalDelay()
	if err != nil {
		t.Fatal(err)
	}
	// A uniformly slow corner (higher Vth, longer channel, thinner
	// narrower wire, higher rho) must be slower than nominal; the
	// mirrored fast corner must be faster.
	slow := []float64{2, 2, 2, -2, -2, -2, 2}
	fast := []float64{-2, -2, -2, 2, 2, 2, -2}
	dSlow, err := sc.Delay(slow)
	if err != nil {
		t.Fatal(err)
	}
	dFast, err := sc.Delay(fast)
	if err != nil {
		t.Fatal(err)
	}
	if !(dSlow > nom && nom > dFast) {
		t.Fatalf("corner ordering broken: slow %g, nominal %g, fast %g", dSlow, nom, dFast)
	}
}

// TestLinkYieldWorkerDeterminism is the acceptance-criterion test: a
// fixed seed returns bit-identical estimates for Workers=1 and
// Workers=8, for both estimators. Under -race it also exercises the
// concurrent sampling path.
func TestLinkYieldWorkerDeterminism(t *testing.T) {
	sc := testScenario(t, 480e-12)
	for _, is := range []bool{false, true} {
		serial, err := EstimateLinkYield(sc, YieldOptions{Samples: 4096, Seed: 1, Workers: 1, ImportanceSampling: is})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := EstimateLinkYield(sc, YieldOptions{Samples: 4096, Seed: 1, Workers: 8, ImportanceSampling: is})
		if err != nil {
			t.Fatal(err)
		}
		if serial != parallel {
			t.Fatalf("is=%v: workers=8 diverged: %+v vs %+v", is, parallel, serial)
		}
	}
}

// TestImportanceSamplingAgreesWithPlainMC is the estimator acceptance
// test: on a tail-yield scenario (failure probability ≲ 1e-3) the
// importance-sampling estimate must agree with a large-n plain-MC
// reference within the combined confidence interval, with measurably
// lower estimator variance at equal sample count.
func TestImportanceSamplingAgreesWithPlainMC(t *testing.T) {
	sc := testScenario(t, 545e-12) // ≈2.5e-4 failure probability
	ref, err := EstimateLinkYield(sc, YieldOptions{Samples: 150000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if ref.FailProb <= 0 || ref.FailProb > 2e-3 {
		t.Fatalf("reference failure probability %g not in the intended tail regime", ref.FailProb)
	}
	is, err := EstimateLinkYield(sc, YieldOptions{Samples: 4096, Seed: 1, ImportanceSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	if !is.Shifted {
		t.Fatal("importance sampling fell back to plain MC on a tail scenario")
	}
	combined := math.Sqrt(is.StdErr*is.StdErr + ref.StdErr*ref.StdErr)
	if d := math.Abs(is.FailProb - ref.FailProb); d > 1.96*combined {
		t.Fatalf("IS %g vs MC reference %g: differ by %g, combined 95%% CI %g",
			is.FailProb, ref.FailProb, d, 1.96*combined)
	}
	// Equal-sample-count variance comparison against the hypothetical
	// plain-MC estimator at the reference probability.
	plainSE := math.Sqrt(ref.FailProb * (1 - ref.FailProb) / float64(is.Samples))
	if is.StdErr >= plainSE/2 {
		t.Fatalf("IS stderr %g not measurably below equal-n plain-MC stderr %g", is.StdErr, plainSE)
	}
	if is.VarianceReduction < 10 {
		t.Fatalf("variance reduction %g, want ≥10 on this tail", is.VarianceReduction)
	}
}

// TestImportanceSamplingFallsBackWhenFailing: when the nominal design
// already misses the target, shifting cannot help and the engine must
// fall back to plain MC rather than chase a shift.
func TestImportanceSamplingFallsBackWhenFailing(t *testing.T) {
	sc := testScenario(t, 300e-12) // well below the ~434 ps nominal delay
	est, err := EstimateLinkYield(sc, YieldOptions{Samples: 1024, Seed: 1, ImportanceSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	if est.Shifted {
		t.Fatal("shifted despite nominal failure")
	}
	if est.FailProb < 0.9 {
		t.Fatalf("failure probability %g, want ≈1 for an unmeetable target", est.FailProb)
	}
}

func TestScenarioValidation(t *testing.T) {
	sc := testScenario(t, 480e-12)
	bad := *sc
	bad.Target = 0
	if _, err := EstimateLinkYield(&bad, YieldOptions{Samples: 16}); err == nil {
		t.Fatal("zero target accepted")
	}
	bad = *sc
	bad.Space.VthSigma = -1
	if _, err := EstimateLinkYield(&bad, YieldOptions{Samples: 16}); err == nil {
		t.Fatal("negative sigma accepted")
	}
}

// TestSizeForYield is the yield-aware-buffering acceptance test: with
// a power-leaning objective the nominal design misses the target
// outright, the yield-constrained search must pick a different design,
// and that design must achieve the requested yield when re-evaluated
// with an independent seed.
func TestSizeForYield(t *testing.T) {
	tc := tech.MustLookup("90nm")
	coeffs := model.MustDefault("90nm")
	seg := wire.NewSegment(tc, 5e-3, wire.SWSS)
	bufOpts := buffering.Options{
		Coeffs:      coeffs,
		Power:       model.PowerParams{Activity: 0.15, Freq: tc.Clock},
		PowerWeight: 0.8, // leans on power: nominal design is slow
	}
	const (
		target      = 510e-12
		yieldTarget = 0.95
	)
	sized, err := SizeForYield(tc, seg, SizingOptions{
		Buffering:   bufOpts,
		Space:       DefaultSpace(),
		Target:      target,
		YieldTarget: yieldTarget,
		MC:          YieldOptions{Samples: 4096, Seed: 1, ImportanceSampling: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sized.Resized {
		t.Fatalf("nominal design %+v already met the target — scenario lost its teeth", sized.Nominal)
	}
	if sized.Design.Size == sized.Nominal.Size && sized.Design.N == sized.Nominal.N {
		t.Fatal("resized design identical to nominal")
	}
	if sized.Estimate.Yield < yieldTarget {
		t.Fatalf("selected design's yield %g below target %g", sized.Estimate.Yield, yieldTarget)
	}
	// Independent confirmation: same design, fresh seed.
	sc := &LinkScenario{
		Base:   tc,
		Coeffs: coeffs,
		Space:  DefaultSpace(),
		Spec:   lineSpec(sized.Design, seg, bufOpts),
		Target: target,
	}
	check, err := EstimateLinkYield(sc, YieldOptions{Samples: 8192, Seed: 99, ImportanceSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	if check.Yield < yieldTarget-3*check.StdErr-0.01 {
		t.Fatalf("independent re-check yield %g (±%g) contradicts target %g", check.Yield, check.StdErr, yieldTarget)
	}
}

func TestSizeForYieldKeepsFeasibleNominal(t *testing.T) {
	tc := tech.MustLookup("90nm")
	seg := wire.NewSegment(tc, 5e-3, wire.SWSS)
	sized, err := SizeForYield(tc, seg, SizingOptions{
		Buffering: buffering.Options{
			Coeffs: model.MustDefault("90nm"),
			Power:  model.PowerParams{Activity: 0.15, Freq: tc.Clock},
		},
		Space:       DefaultSpace(),
		Target:      1 / tc.Clock, // 667 ps: loose
		YieldTarget: 0.9,
		MC:          YieldOptions{Samples: 1024, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sized.Resized {
		t.Fatal("loose target should keep the nominal design")
	}
	if sized.Design != sized.Nominal {
		t.Fatal("unresized result must return the nominal design")
	}
}
