package variation

import (
	"errors"
	"testing"

	"repro/internal/faultinject"
)

// TestRunBatchFaultSurfacesPromptly: a fault at the batch boundary
// aborts the estimation with the injected error instead of burning the
// remaining budget.
func TestRunBatchFaultSurfacesPromptly(t *testing.T) {
	defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
		"variation.batch": {Kind: faultinject.Error, Times: 1},
	}})()
	trials := 0
	_, err := Run(Options{Dims: 2, Samples: 1 << 20, Batch: 64}, func(i int, z []float64) (bool, error) {
		trials++
		return false, nil
	})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("got %v, want the injected error", err)
	}
	if trials != 0 {
		t.Fatalf("%d trials ran after the first-batch fault", trials)
	}
}

// TestRunLaterBatchFaultDiscardsPartial: a fault firing between
// batches (After skips the first boundary) aborts the run with the
// error and discards the partial accumulation — exactly one batch of
// trials has run when the second boundary fires.
func TestRunLaterBatchFaultDiscardsPartial(t *testing.T) {
	defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
		"variation.batch": {Kind: faultinject.Error, After: 1, Times: 1},
	}})()
	trials := 0
	_, err := Run(Options{Dims: 2, Samples: 64, Batch: 16, Workers: 1}, func(i int, z []float64) (bool, error) {
		trials++
		return false, nil
	})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("got %v, want the injected error", err)
	}
	if trials != 16 {
		t.Fatalf("%d trials ran, want exactly the first batch (16)", trials)
	}
}
