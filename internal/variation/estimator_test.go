package variation

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
)

// The estimator tests work on an analytically known problem: a sample
// fails iff z[0] > threshold, so the exact failure probability is the
// normal tail 1 − Φ(threshold).

func normalTail(threshold float64) float64 {
	return math.Erfc(threshold/math.Sqrt2) / 2
}

func tailTrial(threshold float64) Trial {
	return func(i int, z []float64) (bool, error) {
		return z[0] > threshold, nil
	}
}

func TestPlainMCMatchesExact(t *testing.T) {
	exact := normalTail(1) // ≈ 0.1587, cheap to resolve
	est, err := Run(Options{Dims: 3, Samples: 100000, Seed: 5}, tailTrial(1))
	if err != nil {
		t.Fatal(err)
	}
	if est.Samples != 100000 {
		t.Fatalf("ran %d samples, want all", est.Samples)
	}
	if d := math.Abs(est.FailProb - exact); d > 4*est.StdErr {
		t.Fatalf("plain MC %g vs exact %g: off by %g > 4σ (%g)", est.FailProb, exact, d, est.StdErr)
	}
	// Plain MC's variance-reduction ratio is ≈1 by construction.
	if est.VarianceReduction < 0.9 || est.VarianceReduction > 1.1 {
		t.Fatalf("plain MC variance ratio %g, want ≈1", est.VarianceReduction)
	}
	if est.Shifted {
		t.Fatal("plain MC reported as shifted")
	}
}

func TestImportanceSamplingTail(t *testing.T) {
	const threshold = 3 // exact tail ≈ 1.35e-3
	exact := normalTail(threshold)
	shift := []float64{threshold, 0, 0}
	est, err := Run(Options{Dims: 3, Samples: 4096, Seed: 5, Shift: shift}, tailTrial(threshold))
	if err != nil {
		t.Fatal(err)
	}
	if !est.Shifted {
		t.Fatal("shifted run not flagged")
	}
	if d := math.Abs(est.FailProb - exact); d > 4*est.StdErr {
		t.Fatalf("IS %g vs exact %g: off by %g > 4σ (%g)", est.FailProb, exact, d, est.StdErr)
	}
	// At p ≈ 1.35e-3 a 4096-sample plain MC estimator has stderr
	// √(p(1−p)/n) ≈ 5.7e-4; the shifted estimator must beat it
	// decisively.
	plainSE := math.Sqrt(exact * (1 - exact) / float64(est.Samples))
	if est.StdErr >= plainSE/2 {
		t.Fatalf("IS stderr %g not measurably below plain-MC stderr %g", est.StdErr, plainSE)
	}
	if est.VarianceReduction < 4 {
		t.Fatalf("variance reduction %g, want ≥4 on a 3σ tail", est.VarianceReduction)
	}
}

// TestEstimatorWorkerDeterminism pins the bit-identical contract: the
// full Estimate must match across worker counts, including when the
// stopping rule ends the run early.
func TestEstimatorWorkerDeterminism(t *testing.T) {
	for _, opts := range []Options{
		{Dims: 4, Samples: 20000, Seed: 11},
		{Dims: 4, Samples: 20000, Seed: 11, RelErr: 0.05},
		{Dims: 4, Samples: 8192, Seed: 11, Shift: []float64{2, 0, 0, 0}},
	} {
		var ref Estimate
		for wi, workers := range []int{1, 8} {
			o := opts
			o.Workers = workers
			est, err := Run(o, tailTrial(2))
			if err != nil {
				t.Fatal(err)
			}
			if wi == 0 {
				ref = est
				continue
			}
			if est != ref {
				t.Fatalf("workers=%d diverged from serial: %+v vs %+v (opts %+v)", workers, est, ref, opts)
			}
		}
	}
}

func TestStoppingRule(t *testing.T) {
	// p ≈ 0.5 resolves to 5% relative error almost immediately; the
	// run must stop well before the budget.
	est, err := Run(Options{Dims: 2, Samples: 200000, RelErr: 0.05, Seed: 3}, tailTrial(0))
	if err != nil {
		t.Fatal(err)
	}
	if est.Samples >= 200000 {
		t.Fatalf("stopping rule never fired (%d samples)", est.Samples)
	}
	if est.Samples < 512 {
		t.Fatalf("stopped below MinSamples floor: %d", est.Samples)
	}
	if est.StdErr/est.FailProb > 0.05*1.01 {
		t.Fatalf("stopped at rel err %g, target 0.05", est.StdErr/est.FailProb)
	}
}

// TestStoppingRuleZeroFailureEscape pins the fix for the silent
// budget exhaustion: a trial that never fails used to run the entire
// Samples budget because the relative rule requires mean > 0. With the
// rule-of-three escape the run stops once 3/n <= RelErr (here n = 60,
// below the MinSamples floor of 512, so the floor governs).
func TestStoppingRuleZeroFailureEscape(t *testing.T) {
	never := func(i int, z []float64) (bool, error) { return false, nil }
	est, err := Run(Options{Dims: 2, Samples: 200000, RelErr: 0.05, Seed: 3}, never)
	if err != nil {
		t.Fatal(err)
	}
	if est.Samples >= 200000 {
		t.Fatalf("zero-failure run burned the whole budget (%d samples)", est.Samples)
	}
	if est.Samples < 512 {
		t.Fatalf("stopped below the MinSamples floor: %d", est.Samples)
	}
	if est.FailProb != 0 || est.Yield != 1 {
		t.Fatalf("zero-failure estimate corrupted: fail %g yield %g", est.FailProb, est.Yield)
	}
	// The bound the escape certifies: p < 3/n at 95%.
	if bound := 3 / float64(est.Samples); bound > 0.05 {
		t.Fatalf("stopped before the rule-of-three bound reached RelErr (bound %g)", bound)
	}
}

// TestStoppingRuleZeroFailureKeepsSamplingUnderTightTolerance pins the
// other half of the contract: the escape only fires once 3/n actually
// reaches the tolerance, so a tight RelErr keeps drawing samples past
// the floor instead of bailing at MinSamples.
func TestStoppingRuleZeroFailureKeepsSamplingUnderTightTolerance(t *testing.T) {
	never := func(i int, z []float64) (bool, error) { return false, nil }
	const tol = 1e-3 // needs n >= 3000
	est, err := Run(Options{Dims: 2, Samples: 8192, RelErr: tol, Seed: 3}, never)
	if err != nil {
		t.Fatal(err)
	}
	if est.Samples < 3000 {
		t.Fatalf("escaped at %d samples, before 3/n <= %g", est.Samples, tol)
	}
	if est.Samples >= 8192 {
		t.Fatalf("tight tolerance should still stop before the budget (ran %d)", est.Samples)
	}
}

// TestStoppingRuleWithFailuresUnchanged pins that the historical
// relative rule still governs runs that do observe failures: the
// mean > 0 branch is bit-identical to the pre-escape estimator.
func TestStoppingRuleWithFailuresUnchanged(t *testing.T) {
	withEscape, err := Run(Options{Dims: 2, Samples: 200000, RelErr: 0.05, Seed: 3}, tailTrial(0))
	if err != nil {
		t.Fatal(err)
	}
	if withEscape.StdErr/withEscape.FailProb > 0.05*1.01 {
		t.Fatalf("relative rule drifted: rel err %g", withEscape.StdErr/withEscape.FailProb)
	}
}

func TestAbsErrStopping(t *testing.T) {
	// p ≈ 0.5: stderr ≈ 0.5/√n, so AbsErr 0.02 needs n ≈ 625.
	est, err := Run(Options{Dims: 2, Samples: 200000, AbsErr: 0.02, Seed: 3}, tailTrial(0))
	if err != nil {
		t.Fatal(err)
	}
	if est.Samples >= 200000 {
		t.Fatalf("absolute rule never fired (%d samples)", est.Samples)
	}
	if est.StdErr > 0.02*1.01 {
		t.Fatalf("stopped at stderr %g, target 0.02", est.StdErr)
	}
}

func TestRunCtxCancellation(t *testing.T) {
	// Pre-cancelled: no samples drawn.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	_, err := RunCtx(ctx, Options{Dims: 2, Samples: 100000}, func(i int, z []float64) (bool, error) {
		ran.Add(1)
		return false, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("dead context still evaluated %d samples", ran.Load())
	}

	// Cancelled mid-run: returns promptly at a batch boundary without
	// burning the rest of the budget.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	ran.Store(0)
	_, err = RunCtx(ctx2, Options{Dims: 2, Samples: 1 << 20}, func(i int, z []float64) (bool, error) {
		if ran.Add(1) == 300 {
			cancel2()
		}
		return false, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: got %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 1<<20 {
		t.Fatalf("cancellation never stopped sampling (%d samples ran)", got)
	}
}

// TestRunCtxLiveMatchesRun pins that a live context changes nothing:
// the full Estimate is bit-identical to the context-free path, for
// plain MC, early-stopping, and shifted configurations.
func TestRunCtxLiveMatchesRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, opts := range []Options{
		{Dims: 4, Samples: 20000, Seed: 11},
		{Dims: 4, Samples: 20000, Seed: 11, RelErr: 0.05},
		{Dims: 4, Samples: 8192, Seed: 11, Shift: []float64{2, 0, 0, 0}},
	} {
		ref, err := Run(opts, tailTrial(2))
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunCtx(ctx, opts, tailTrial(2))
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Fatalf("live-ctx run diverged: %+v vs %+v (opts %+v)", got, ref, opts)
		}
	}
}

func TestRunPropagatesTrialError(t *testing.T) {
	boom := fmt.Errorf("boom")
	_, err := Run(Options{Dims: 1, Samples: 100}, func(i int, z []float64) (bool, error) {
		if i == 37 {
			return false, boom
		}
		return false, nil
	})
	if err == nil {
		t.Fatal("trial error swallowed")
	}
}

func TestRunValidation(t *testing.T) {
	ok := func(i int, z []float64) (bool, error) { return false, nil }
	for name, o := range map[string]Options{
		"no-dims":        {Samples: 10},
		"negative-n":     {Dims: 2, Samples: -1},
		"bad-relerr":     {Dims: 2, RelErr: -0.1},
		"bad-abserr":     {Dims: 2, AbsErr: -0.1},
		"shift-mismatch": {Dims: 2, Shift: []float64{1}},
	} {
		if _, err := Run(o, ok); err == nil {
			t.Errorf("%s: invalid options accepted", name)
		}
	}
}

// TestRunRejectsNegativeBudgets pins the fix for the infinite-loop
// trap: a negative Batch used to slip through validation (only zero was
// rewritten by the defaults) and send the sampling loop backwards
// forever. All three negative budget fields are now rejected up front
// with identifiable sentinels — if this regresses, the negative-batch
// case hangs instead of failing fast.
func TestRunRejectsNegativeBudgets(t *testing.T) {
	ok := func(i int, z []float64) (bool, error) { return false, nil }
	for _, c := range []struct {
		name string
		o    Options
		want error
	}{
		{"negative-batch", Options{Dims: 2, Samples: 100, Batch: -8}, ErrNegativeBatch},
		{"negative-min-samples", Options{Dims: 2, Samples: 100, MinSamples: -1}, ErrNegativeMinSamples},
		{"negative-workers", Options{Dims: 2, Samples: 100, Workers: -2}, ErrNegativeWorkers},
	} {
		_, err := Run(c.o, ok)
		if !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
	}
	// The yield-level options funnel through the same validation.
	sc := testScenario(t, 480e-12)
	if _, err := EstimateLinkYield(sc, YieldOptions{Samples: 100, Batch: -8}); !errors.Is(err, ErrNegativeBatch) {
		t.Errorf("yield options: got %v, want ErrNegativeBatch", err)
	}
}
