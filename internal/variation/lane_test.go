package variation

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/estimator"
	"repro/internal/model"
	"repro/internal/tech"
	"repro/internal/wire"
)

// withScalarKernel runs f with the lane kernel disabled, restoring the
// default afterwards. The hook is package-internal and only flipped
// between estimations, never during one.
func withScalarKernel(f func()) {
	laneKernelDisabled = true
	defer func() { laneKernelDisabled = false }()
	f()
}

// TestLaneBitIdenticalToScalar is the tentpole acceptance matrix: for
// every sampling rung (mc, isle, qmc), both samplers, shared and
// per-candidate segments, and workers 1/4/GOMAXPROCS, the lane kernel
// returns Estimates bit-identical to the scalar per-sample kernel. No
// tolerance anywhere: the lane preserves the scalar path's expression
// association and the caller's fold order, so the comparison is ==.
func TestLaneBitIdenticalToScalar(t *testing.T) {
	tc := tech.MustLookup("90nm")
	coeffs := model.MustDefault("90nm")
	seg := wire.NewSegment(tc, 5e-3, wire.SWSS)

	shared := sweepSpecs(seg)
	mixed := sweepSpecs(seg)
	segB := wire.NewSegmentOn(tc, tc.Intermediate, 3e-3, wire.Shielded)
	mixed[1].Segment = segB
	mixed[3].Segment = segB
	mixed[3].N = 9

	for _, geom := range []struct {
		name  string
		specs []model.LineSpec
	}{{"shared-seg", shared}, {"mixed-seg", mixed}} {
		for _, est := range []estimator.Kind{estimator.MC, estimator.ISLE, estimator.QMC} {
			for _, sampler := range []Sampler{SamplerBoxMuller, SamplerZiggurat} {
				if est == estimator.QMC && sampler == SamplerZiggurat {
					continue // QMC draws Sobol points; the sampler is inert
				}
				o := YieldOptions{
					Samples: 2048, Seed: 11, RelErr: 0.15,
					Estimator: est, Sampler: sampler,
				}
				ms := &MultiScenario{Base: tc, Coeffs: coeffs, Space: DefaultSpace(), Specs: geom.specs, Target: 500e-12}
				var want []Estimate
				withScalarKernel(func() {
					var err error
					want, err = EstimateYieldsShared(ms, o)
					if err != nil {
						t.Fatal(err)
					}
				})
				for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
					o.Workers = workers
					got, err := EstimateYieldsShared(ms, o)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s/%s/%s workers=%d: lane diverged from scalar:\n got %+v\nwant %+v",
							geom.name, est, resolveSampler(sampler), workers, got, want)
					}
				}
			}
		}
	}
}

// TestLanePartialBitIdentity covers the coordinator shard path: a
// shard's sparse contributions from the lane kernel must equal the
// scalar kernel's exactly, for every shardable rung, at shard
// boundaries that are not lane- or batch-aligned.
func TestLanePartialBitIdentity(t *testing.T) {
	sc := testScenario(t, 520e-12)
	for _, est := range []estimator.Kind{estimator.MC, estimator.ISLE, estimator.QMC} {
		o := YieldOptions{Samples: 2048, Seed: 5, Estimator: est, Workers: 3}
		for _, shard := range []struct{ start, count int }{{0, 700}, {700, 1348}} {
			var want Partial
			withScalarKernel(func() {
				var err error
				want, _, _, err = CollectPartialCtx(context.Background(), sc, o, shard.start, shard.count)
				if err != nil {
					t.Fatal(err)
				}
			})
			got, _, _, err := CollectPartialCtx(context.Background(), sc, o, shard.start, shard.count)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s shard [%d,%d): lane partial diverged from scalar:\n got %+v\nwant %+v",
					est, shard.start, shard.start+shard.count, got, want)
			}
		}
	}
}

// TestLaneLegacySamplerMatchesHistoricalKernel pins that the pinned
// legacy sampler really is the historical sequence: the lane kernel
// under SamplerBoxMuller reproduces the pre-lane per-sample kernel
// (RunCtx over LinkScenario.Delay) bit-exactly — the same fixture
// TestSharedKernelBitIdenticalToLegacy uses.
func TestLaneLegacySamplerMatchesHistoricalKernel(t *testing.T) {
	sc := testScenario(t, 480e-12)
	o := YieldOptions{Samples: 2048, Seed: 3, Sampler: SamplerBoxMuller}
	want := legacyLinkYield(t, sc, o)
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		o.Workers = workers
		got, err := EstimateLinkYield(sc, o)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: lane+box-muller diverged from historical kernel:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestLaneValidationFallback forces the one per-sample branch the lane
// cannot precompute — a perturbed width thin enough to lose its copper
// core — and checks the lane surfaces the identical error the scalar
// kernel does.
func TestLaneValidationFallback(t *testing.T) {
	sc := testScenario(t, 480e-12)
	// Nominal width just above the validity floor (2·barrier), with a
	// wide width sigma: a one-sided draw shrinks the line below the
	// floor, which the scalar path rejects per sample.
	sc.Spec.Segment.Width = 2.5 * sc.Base.Barrier
	sc.Spec.Segment.Spacing += sc.Spec.Segment.Width
	sc.Space.WireWidthSigma = 0.3

	o := YieldOptions{Samples: 512, Seed: 2}
	var wantErr error
	withScalarKernel(func() {
		_, err := EstimateLinkYield(sc, o)
		if err == nil {
			t.Fatal("scalar kernel accepted a sub-barrier width; fixture is broken")
		}
		wantErr = err
	})
	for _, workers := range []int{1, 4} {
		o.Workers = workers
		_, err := EstimateLinkYield(sc, o)
		if err == nil {
			t.Fatalf("workers=%d: lane kernel missed the validation failure", workers)
		}
		if err.Error() != wantErr.Error() {
			t.Fatalf("workers=%d: lane error %q != scalar error %q", workers, err, wantErr)
		}
	}
}

// TestLaneChunk pins the lane scheduling policy: full lanes serial,
// shrunk-but-bounded lanes parallel, never exceeding the batch.
func TestLaneChunk(t *testing.T) {
	for _, c := range []struct {
		batch, workers, want int
	}{
		{256, 1, 64},  // serial: full lanes
		{256, 4, 64},  // 64 samples/worker: full lanes still fit
		{256, 8, 32},  // shrink so every worker gets a lane
		{256, 32, 16}, // floor at laneMin
		{8, 4, 8},     // tiny batch: laneMin floor, then capped at batch
		{1, 1, 1},
		{10, 64, 10}, // laneMin capped by the batch itself
	} {
		if got := laneChunk(c.batch, c.workers); got != c.want {
			t.Fatalf("laneChunk(%d, %d) = %d, want %d", c.batch, c.workers, got, c.want)
		}
	}
}
