// Package variation is the process-variation engine: it models how a
// technology's device and wire parameters scatter around their
// nominals, and estimates the timing yield of a designed link under
// that scatter with Monte Carlo sampling — plain, or importance
// sampled for deep-tail failure probabilities (the ISLE recipe:
// shifted sampling distribution plus likelihood-ratio weights).
//
// The titled DAC-2004 paper sizes gates to improve yield under process
// variation; this package supplies the missing statistical half of
// that loop for the repo's interconnect stack. Every sample perturbs a
// tech.Technology in a standardized normal space, re-derives the
// calibrated model coefficients through the closed-form scaling path
// (model.Coefficients.ScaledFor — no re-characterization), evaluates
// the link delay with the predictive models, and scores it against a
// clock target. Sampling fans out over internal/pool, and results are
// bit-identical for any worker count: each sample owns a splittable
// PRNG stream keyed by (seed, index), and the streaming accumulators
// fold contributions in index order.
package variation

import (
	"fmt"

	"repro/internal/tech"
)

// Dims is the dimension of the standardized variation space: one
// independent standard normal per varying parameter, in the order
// VthN, VthP, channel length, wire width, wire thickness, ILD,
// resistivity. A zero sigma leaves its dimension inert without
// changing the space's shape, so estimates stay comparable (and
// reproducible) across sigma choices.
const Dims = 7

// Indices into a standardized draw z.
const (
	dimVthN = iota
	dimVthP
	dimLength
	dimWireWidth
	dimWireThickness
	dimILD
	dimRho
)

// Space defines the per-node variation model: the standard deviation
// of each varying parameter. Device sigmas follow the classic
// Pelgrom-style picture (threshold voltage scatter, channel-length CD
// error); wire sigmas are relative geometry errors of the damascene
// process (line CD, metal thickness, ILD thickness) plus copper
// resistivity scatter.
type Space struct {
	// VthSigma is the absolute threshold-voltage sigma in volts,
	// applied independently to the NMOS and PMOS devices.
	VthSigma float64
	// LengthSigma is the relative channel-length sigma. A longer
	// channel weakens the device (K ∝ 1/L) and adds gate capacitance
	// (CGate ∝ L); both polarities move together (the gates are drawn
	// by the same lithography).
	LengthSigma float64
	// WireWidthSigma is the relative drawn-width sigma of a routed
	// line. Width moves at constant pitch: a wider line loses the
	// same amount of spacing, so coupling capacitance rises as ground
	// resistance falls — the tradeoff that makes wire CD variation
	// timing-relevant in both directions.
	WireWidthSigma float64
	// WireThicknessSigma is the relative metal-thickness sigma.
	WireThicknessSigma float64
	// ILDSigma is the relative inter-layer-dielectric-thickness sigma.
	ILDSigma float64
	// RhoSigma is the relative bulk-resistivity sigma. The scattering
	// and barrier corrections then apply on top of the perturbed bulk
	// value and the perturbed width (the barrier-corrected resistivity
	// the models already use).
	RhoSigma float64
}

// DefaultSpace returns the engine's default sigmas — mid-single-digit
// relative scatter for geometry and 30 mV of threshold scatter,
// representative of the sub-100nm literature the estimators target.
func DefaultSpace() Space {
	return Space{
		VthSigma:           0.030,
		LengthSigma:        0.05,
		WireWidthSigma:     0.05,
		WireThicknessSigma: 0.05,
		ILDSigma:           0.05,
		RhoSigma:           0.03,
	}
}

// Scaled returns a copy of the space with every sigma multiplied by f
// (f = 0 disables variation entirely; f = 2 doubles every sigma).
func (s Space) Scaled(f float64) Space {
	s.VthSigma *= f
	s.LengthSigma *= f
	s.WireWidthSigma *= f
	s.ILDSigma *= f
	s.WireThicknessSigma *= f
	s.RhoSigma *= f
	return s
}

// Validate rejects negative or NaN sigmas.
func (s Space) Validate() error {
	for _, v := range []struct {
		name  string
		sigma float64
	}{
		{"VthSigma", s.VthSigma}, {"LengthSigma", s.LengthSigma},
		{"WireWidthSigma", s.WireWidthSigma}, {"WireThicknessSigma", s.WireThicknessSigma},
		{"ILDSigma", s.ILDSigma}, {"RhoSigma", s.RhoSigma},
	} {
		if v.sigma < 0 || v.sigma != v.sigma {
			return fmt.Errorf("variation: %s %g must be non-negative", v.name, v.sigma)
		}
	}
	return nil
}

// Factors reports the multiplicative wire perturbations of one draw,
// so callers can apply the same draw to a wire.Segment whose geometry
// is not at the layer minimums (wire-sized links).
type Factors struct {
	// WireWidth, WireThickness, ILD, Rho are the multipliers applied
	// to drawn width, metal thickness, dielectric thickness, and bulk
	// resistivity (1 = nominal).
	WireWidth, WireThickness, ILD, Rho float64
}

// relFactor converts a relative sigma and a standard normal draw into
// a multiplicative factor, clamped to keep far-tail draws physical
// (the clamp sits beyond 6σ for the default sigmas, so it does not
// distort the estimators' working range).
func relFactor(sigma, z float64) float64 {
	f := 1 + sigma*z
	if f < 0.6 {
		f = 0.6
	}
	if f > 1.4 {
		f = 1.4
	}
	return f
}

// Apply perturbs a technology with one standardized draw z (length
// Dims) and returns the perturbed private copy together with the wire
// factors of the draw. The base descriptor is never mutated. The
// threshold voltages are clamped below the supply so the perturbed
// descriptor stays evaluable.
func (s Space) Apply(base *tech.Technology, z []float64) (*tech.Technology, Factors) {
	t := new(tech.Technology)
	f := s.ApplyInto(t, base, z)
	return t, f
}

// ApplyInto is Apply writing the perturbed descriptor into a
// caller-owned destination instead of allocating one, producing a
// bit-identical result. The sampling kernel keeps one Technology per
// worker and perturbs into it per sample, keeping the steady path
// allocation-free. dst may not alias base; base is never mutated and
// z is only read.
func (s Space) ApplyInto(dst *tech.Technology, base *tech.Technology, z []float64) Factors {
	*dst = *base

	clampVth := func(v float64) float64 {
		if v < 0.05 {
			v = 0.05
		}
		if max := dst.Vdd - 0.05; v > max {
			v = max
		}
		return v
	}
	dst.NMOS.Vth = clampVth(dst.NMOS.Vth + s.VthSigma*z[dimVthN])
	dst.PMOS.Vth = clampVth(dst.PMOS.Vth + s.VthSigma*z[dimVthP])

	fL := relFactor(s.LengthSigma, z[dimLength])
	dst.NMOS.K /= fL
	dst.PMOS.K /= fL
	dst.NMOS.CGate *= fL
	dst.PMOS.CGate *= fL

	f := Factors{
		WireWidth:     relFactor(s.WireWidthSigma, z[dimWireWidth]),
		WireThickness: relFactor(s.WireThicknessSigma, z[dimWireThickness]),
		ILD:           relFactor(s.ILDSigma, z[dimILD]),
		Rho:           relFactor(s.RhoSigma, z[dimRho]),
	}
	dst.RhoBulk *= f.Rho
	perturbLayer(&dst.Global, f)
	perturbLayer(&dst.Intermediate, f)
	return f
}

// perturbLayer applies one draw's wire factors to a routing layer.
func perturbLayer(l *tech.WireLayer, f Factors) {
	dw := l.Width * (f.WireWidth - 1)
	l.Width += dw
	// Width moves at constant pitch: the neighbors give up the
	// spacing the line gains. Keep a sliver of spacing so the
	// coupling model stays finite.
	l.Spacing = clampSpacing(l.Spacing-dw, l.Spacing)
	l.Thickness *= f.WireThickness
	l.ILD *= f.ILD
}

// clampSpacing keeps a perturbed spacing at or above a quarter of its
// nominal value.
func clampSpacing(s, nominal float64) float64 {
	if min := 0.25 * nominal; s < min {
		return min
	}
	return s
}
