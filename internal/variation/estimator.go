package variation

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/estimator"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/pool"
)

// Sentinel errors for malformed sampling budgets. A negative Batch is
// the dangerous one: it used to slip through validation and send RunCtx
// into an infinite loop (done += batch moved backwards), so these are
// rejected up front and tests pin the rejection.
var (
	ErrNegativeBatch      = errors.New("variation: negative batch size")
	ErrNegativeMinSamples = errors.New("variation: negative minimum sample count")
	ErrNegativeWorkers    = errors.New("variation: negative worker count")
	ErrUnknownSampler     = errors.New("variation: unknown sampler")
)

// Estimator observability (see internal/obs): how many samples the
// process has drawn, which estimator ran, and which stopping rule (if
// any) ended each run early.
var (
	metSamples      = obs.NewCounter("variation.samples_drawn")
	metRunsPlain    = obs.NewCounter("variation.runs_plain_mc")
	metRunsShifted  = obs.NewCounter("variation.runs_importance_sampled")
	metStopRelErr   = obs.NewCounter("variation.stop_rule_rel_err")
	metStopAbsErr   = obs.NewCounter("variation.stop_rule_abs_err")
	metStopZeroFail = obs.NewCounter("variation.stop_rule_zero_failure")
)

// This file holds the sampling engine shared by the plain Monte Carlo
// and importance-sampling estimators. Both estimate a failure
// probability p = P[trial fails] over the standardized normal space:
// plain MC averages the failure indicator; importance sampling draws
// from a mean-shifted normal and averages the indicator times the
// likelihood ratio, which is unbiased for any shift and dramatically
// lower-variance when the shift centers sampling on the failure
// region (the ISLE construction for small p).
//
// Determinism contract: for a fixed (Options, trial) the returned
// Estimate is bit-identical for every Workers value. Each sample's
// draw comes from its own Stream keyed by (Seed, index); batches fan
// out over internal/pool into an index-addressed buffer; and the
// streaming mean/variance accumulator folds that buffer serially in
// index order, so no floating-point reassociation ever depends on
// scheduling.

// Trial evaluates one sample given its standardized draw z (length
// Options.Dims) and reports whether the sample fails the constraint
// under estimation. It must be safe for concurrent invocation. z is a
// reusable kernel-owned buffer: it is valid only for the duration of
// the call and must not be retained.
type Trial func(i int, z []float64) (fail bool, err error)

// Options configures one estimation run.
type Options struct {
	// Dims is the dimension of the standardized draw (required).
	Dims int
	// Samples caps the sample count; default 4096.
	Samples int
	// MinSamples is the floor before the stopping rule may fire;
	// default min(512, Samples).
	MinSamples int
	// Batch is the fan-out granularity between stopping-rule checks;
	// default 256.
	Batch int
	// RelErr, when positive, stops sampling early once the estimator's
	// relative standard error (stderr / failure probability) drops to
	// this level. Zero runs all Samples.
	//
	// With zero observed failures the relative error is undefined (the
	// mean is zero), which used to burn the whole budget silently on
	// high-yield links. Now the rule-of-three escape applies: after
	// MinSamples, a run with no failures stops once the 95% upper
	// confidence bound on the failure probability (3/n) drops to
	// RelErr — at that point the yield is pinned to within RelErr and
	// more zero-failure samples cannot sharpen the estimate faster.
	RelErr float64
	// AbsErr, when positive, stops sampling early once the estimator's
	// absolute standard error drops to this level; with zero observed
	// failures the rule-of-three bound 3/n stands in for the
	// unresolvable standard error. Combine with RelErr freely — the
	// first rule to fire stops the run.
	AbsErr float64
	// Workers bounds the sampling goroutines (0 = all cores, 1 =
	// serial). The estimate is bit-identical for every value.
	Workers int
	// Seed is the base PRNG seed; sample i draws from the stream
	// keyed by Seed ⊕ i.
	Seed uint64
	// Shift, when non-nil, is the importance-sampling mean shift θ
	// (length Dims): samples are drawn from N(θ, I) and weighted by
	// the likelihood ratio φ(z)/φ(z−θ). Nil selects plain Monte
	// Carlo.
	Shift []float64
	// Sampler selects the normal sampler: SamplerZiggurat (the
	// default when empty) or SamplerBoxMuller (the pinned legacy
	// sequence). The two produce different, individually deterministic
	// draw sequences at the same seed; every other determinism
	// guarantee (bit-identity across worker counts and shard layouts)
	// holds under either.
	Sampler Sampler
}

func (o Options) withDefaults() Options {
	if o.Samples == 0 {
		o.Samples = 4096
	}
	if o.MinSamples == 0 {
		o.MinSamples = 512
	}
	if o.MinSamples > o.Samples {
		o.MinSamples = o.Samples
	}
	if o.Batch == 0 {
		o.Batch = 256
	}
	o.Sampler = resolveSampler(o.Sampler)
	return o
}

func (o Options) validate() error {
	if o.Dims <= 0 {
		return fmt.Errorf("variation: non-positive dimension %d", o.Dims)
	}
	if o.Samples < 0 {
		return fmt.Errorf("variation: negative sample count %d", o.Samples)
	}
	if o.MinSamples < 0 {
		return fmt.Errorf("%w %d", ErrNegativeMinSamples, o.MinSamples)
	}
	if o.Batch < 0 {
		return fmt.Errorf("%w %d", ErrNegativeBatch, o.Batch)
	}
	if o.Workers < 0 {
		return fmt.Errorf("%w %d", ErrNegativeWorkers, o.Workers)
	}
	if o.RelErr < 0 || math.IsNaN(o.RelErr) {
		return fmt.Errorf("variation: negative relative-error target %g", o.RelErr)
	}
	if o.AbsErr < 0 || math.IsNaN(o.AbsErr) {
		return fmt.Errorf("variation: negative absolute-error target %g", o.AbsErr)
	}
	if o.Shift != nil && len(o.Shift) != o.Dims {
		return fmt.Errorf("variation: shift has %d dims, want %d", len(o.Shift), o.Dims)
	}
	if !validSampler(o.Sampler) {
		return fmt.Errorf("%w %q", ErrUnknownSampler, o.Sampler)
	}
	return nil
}

// Estimate is the result of one estimation run.
type Estimate struct {
	// FailProb is the estimated failure probability; Yield is its
	// complement.
	FailProb, Yield float64
	// StdErr is the standard error of FailProb (the square root of
	// the estimator's variance).
	StdErr float64
	// Samples is the number of samples actually evaluated (the
	// stopping rule may end the run before Options.Samples).
	Samples int
	// Shifted reports whether importance sampling was in effect.
	Shifted bool
	// Estimator names the ladder rung that produced the estimate
	// (estimator.MC, ISLE, QMC, AIS, or WCD).
	Estimator estimator.Kind
	// VarianceReduction compares a hypothetical plain-MC estimator at
	// the same sample count against this run's measured per-sample
	// variance: p(1−p)/s². It is ≈1 for plain MC (by construction)
	// and >1 when importance sampling pays off; 1 when undefined (no
	// failures observed).
	VarianceReduction float64
}

// CI95 returns the half-width of the 95% normal confidence interval
// on the failure probability.
func (e Estimate) CI95() float64 { return 1.96 * e.StdErr }

// stopRule decides whether sampling may end before the budget. The
// relative rule is the historical one: stderr/mean at or below RelErr.
// The absolute rule compares stderr against AbsErr directly. Both are
// undefined with zero observed failures (the sample variance is zero),
// where the rule-of-three escape applies instead: no failures in n
// samples bounds the failure probability below 3/n at 95% confidence,
// and once that bound reaches the requested tolerance the remaining
// budget cannot improve the answer — the estimate is 0 either way.
//
// The rule-of-three bound assumes plain-MC Bernoulli indicators, so
// the escape is gated on shifted=false: an importance-sampled run's
// per-sample contributions are likelihood-ratio weights that can
// exceed 1, for which "no failures in n samples" certifies nothing —
// a shifted zero-failure run must keep drawing to its budget.
func stopRule(o Options, shifted bool, n int, mean, m2 float64) bool {
	if n < o.MinSamples || n < 2 || (o.RelErr <= 0 && o.AbsErr <= 0) {
		return false
	}
	if mean > 0 {
		se := math.Sqrt(m2 / float64(n-1) / float64(n))
		if o.RelErr > 0 && se/mean <= o.RelErr {
			metStopRelErr.Inc()
			return true
		}
		if o.AbsErr > 0 && se <= o.AbsErr {
			metStopAbsErr.Inc()
			return true
		}
		return false
	}
	if shifted {
		return false
	}
	bound := 3 / float64(n)
	if (o.RelErr > 0 && bound <= o.RelErr) || (o.AbsErr > 0 && bound <= o.AbsErr) {
		metStopZeroFail.Inc()
		return true
	}
	return false
}

// Run estimates the failure probability of trial under the options.
// See the package comment for the determinism contract.
func Run(o Options, trial Trial) (Estimate, error) {
	return RunCtx(context.Background(), o, trial)
}

// RunCtx is Run under a context. Cancellation is cooperative, checked
// at batch boundaries (and at each sample claim inside a batch's
// fan-out): a cancelled run returns ctx.Err() promptly and discards
// its partial accumulation. A run that completes under a live context
// is bit-identical to Run — the context never influences which samples
// are drawn or the order they are folded.
func RunCtx(ctx context.Context, o Options, trial Trial) (Estimate, error) {
	return RunBatchCtx(ctx, o, func(i, _ int, z []float64) (bool, error) {
		return trial(i, z)
	})
}

// BatchTrial is Trial for the zero-allocation kernel: it additionally
// receives the worker id (see pool.ForEachWorkerCtx) so the trial can
// index per-worker scratch state without locking. z is a per-worker
// buffer owned by the kernel and is valid only for the duration of
// the call — a trial must not retain it.
type BatchTrial func(i, worker int, z []float64) (fail bool, err error)

// RunBatch estimates with a BatchTrial; see RunBatchCtx.
func RunBatch(o Options, trial BatchTrial) (Estimate, error) {
	return RunBatchCtx(context.Background(), o, trial)
}

// RunBatchCtx is the batched zero-steady-state-allocation sampling
// kernel: each worker owns a reusable Stream and draw buffer (reseeded
// per sample with Stream.Reset, filled by the options' Sampler), so
// after the one-time setup the kernel performs no per-sample heap
// allocation.
// Draw sequences, fold order, and stopping behaviour are bit-identical
// to the historical per-sample path for every Workers value.
func RunBatchCtx(ctx context.Context, o Options, trial BatchTrial) (Estimate, error) {
	o = o.withDefaults()
	if err := o.validate(); err != nil {
		return Estimate{}, err
	}
	shifted := false
	var shiftSq float64
	for _, t := range o.Shift {
		if t != 0 {
			shifted = true
		}
		shiftSq += t * t
	}
	if shifted {
		metRunsShifted.Inc()
	} else {
		metRunsPlain.Inc()
	}

	// Streaming (Welford) accumulator over the per-sample
	// contributions x_i = w_i·1[fail_i].
	var n int
	var mean, m2 float64

	// Per-worker scratch: one stream and one draw buffer per worker
	// id, allocated once for the whole run. A worker id is held by
	// exactly one goroutine at a time and batches are separated by the
	// pool's join, so reuse is race-free.
	maxW := pool.Workers(o.Workers, o.Batch)
	streams := make([]Stream, maxW)
	zbuf := make([]float64, maxW*o.Dims)

	contrib := make([]float64, o.Batch)
	for done := 0; done < o.Samples; {
		if err := ctx.Err(); err != nil {
			return Estimate{}, err
		}
		// Fault point at the batch boundary: robustness tests inject
		// errors/delays here to prove a failing estimator surfaces
		// promptly instead of burning the remaining budget.
		if err := faultinject.Hit("variation.batch"); err != nil {
			return Estimate{}, err
		}
		batch := o.Batch
		if rem := o.Samples - done; rem < batch {
			batch = rem
		}
		start := done
		err := pool.ForEachWorkerCtx(ctx, o.Workers, batch, func(k, worker int) error {
			i := start + k
			st := &streams[worker]
			st.Reset(o.Seed, uint64(i))
			z := zbuf[worker*o.Dims : (worker+1)*o.Dims]
			st.normsInto(z, o.Sampler)
			w := 1.0
			if shifted {
				// z ← θ + ε with likelihood ratio
				// φ(z)/φ(z−θ) = exp(−⟨θ,z⟩ + |θ|²/2).
				var dot float64
				for d, t := range o.Shift {
					z[d] += t
					dot += t * z[d]
				}
				w = math.Exp(-dot + shiftSq/2)
			}
			fail, err := trial(i, worker, z)
			if err != nil {
				return err
			}
			if fail {
				contrib[k] = w
			} else {
				contrib[k] = 0
			}
			return nil
		})
		if err != nil {
			return Estimate{}, err
		}
		for k := 0; k < batch; k++ {
			x := contrib[k]
			n++
			d := x - mean
			mean += d / float64(n)
			m2 += d * (x - mean)
		}
		done += batch
		metSamples.Add(int64(batch))
		if stop := stopRule(o, shifted, n, mean, m2); stop {
			break
		}
	}

	kind := estimator.MC
	if shifted {
		kind = estimator.ISLE
	}
	est := Estimate{FailProb: mean, Yield: 1 - mean, Samples: n, Shifted: shifted, VarianceReduction: 1, Estimator: kind}
	if n > 1 {
		sampleVar := m2 / float64(n-1)
		est.StdErr = math.Sqrt(sampleVar / float64(n))
		if sampleVar > 0 && mean > 0 && mean < 1 {
			est.VarianceReduction = mean * (1 - mean) / sampleVar
		}
	}
	return est, nil
}
