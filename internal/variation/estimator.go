package variation

import (
	"fmt"
	"math"

	"repro/internal/pool"
)

// This file holds the sampling engine shared by the plain Monte Carlo
// and importance-sampling estimators. Both estimate a failure
// probability p = P[trial fails] over the standardized normal space:
// plain MC averages the failure indicator; importance sampling draws
// from a mean-shifted normal and averages the indicator times the
// likelihood ratio, which is unbiased for any shift and dramatically
// lower-variance when the shift centers sampling on the failure
// region (the ISLE construction for small p).
//
// Determinism contract: for a fixed (Options, trial) the returned
// Estimate is bit-identical for every Workers value. Each sample's
// draw comes from its own Stream keyed by (Seed, index); batches fan
// out over internal/pool into an index-addressed buffer; and the
// streaming mean/variance accumulator folds that buffer serially in
// index order, so no floating-point reassociation ever depends on
// scheduling.

// Trial evaluates one sample given its standardized draw z (length
// Options.Dims) and reports whether the sample fails the constraint
// under estimation. It must be safe for concurrent invocation.
type Trial func(i int, z []float64) (fail bool, err error)

// Options configures one estimation run.
type Options struct {
	// Dims is the dimension of the standardized draw (required).
	Dims int
	// Samples caps the sample count; default 4096.
	Samples int
	// MinSamples is the floor before the stopping rule may fire;
	// default min(512, Samples).
	MinSamples int
	// Batch is the fan-out granularity between stopping-rule checks;
	// default 256.
	Batch int
	// RelErr, when positive, stops sampling early once the estimator's
	// relative standard error (stderr / failure probability) drops to
	// this level. Zero runs all Samples.
	RelErr float64
	// Workers bounds the sampling goroutines (0 = all cores, 1 =
	// serial). The estimate is bit-identical for every value.
	Workers int
	// Seed is the base PRNG seed; sample i draws from the stream
	// keyed by Seed ⊕ i.
	Seed uint64
	// Shift, when non-nil, is the importance-sampling mean shift θ
	// (length Dims): samples are drawn from N(θ, I) and weighted by
	// the likelihood ratio φ(z)/φ(z−θ). Nil selects plain Monte
	// Carlo.
	Shift []float64
}

func (o Options) withDefaults() Options {
	if o.Samples == 0 {
		o.Samples = 4096
	}
	if o.MinSamples == 0 {
		o.MinSamples = 512
	}
	if o.MinSamples > o.Samples {
		o.MinSamples = o.Samples
	}
	if o.Batch == 0 {
		o.Batch = 256
	}
	return o
}

func (o Options) validate() error {
	if o.Dims <= 0 {
		return fmt.Errorf("variation: non-positive dimension %d", o.Dims)
	}
	if o.Samples < 0 {
		return fmt.Errorf("variation: negative sample count %d", o.Samples)
	}
	if o.RelErr < 0 || math.IsNaN(o.RelErr) {
		return fmt.Errorf("variation: negative relative-error target %g", o.RelErr)
	}
	if o.Shift != nil && len(o.Shift) != o.Dims {
		return fmt.Errorf("variation: shift has %d dims, want %d", len(o.Shift), o.Dims)
	}
	return nil
}

// Estimate is the result of one estimation run.
type Estimate struct {
	// FailProb is the estimated failure probability; Yield is its
	// complement.
	FailProb, Yield float64
	// StdErr is the standard error of FailProb (the square root of
	// the estimator's variance).
	StdErr float64
	// Samples is the number of samples actually evaluated (the
	// stopping rule may end the run before Options.Samples).
	Samples int
	// Shifted reports whether importance sampling was in effect.
	Shifted bool
	// VarianceReduction compares a hypothetical plain-MC estimator at
	// the same sample count against this run's measured per-sample
	// variance: p(1−p)/s². It is ≈1 for plain MC (by construction)
	// and >1 when importance sampling pays off; 1 when undefined (no
	// failures observed).
	VarianceReduction float64
}

// CI95 returns the half-width of the 95% normal confidence interval
// on the failure probability.
func (e Estimate) CI95() float64 { return 1.96 * e.StdErr }

// Run estimates the failure probability of trial under the options.
// See the package comment for the determinism contract.
func Run(o Options, trial Trial) (Estimate, error) {
	o = o.withDefaults()
	if err := o.validate(); err != nil {
		return Estimate{}, err
	}
	shifted := false
	var shiftSq float64
	for _, t := range o.Shift {
		if t != 0 {
			shifted = true
		}
		shiftSq += t * t
	}

	// Streaming (Welford) accumulator over the per-sample
	// contributions x_i = w_i·1[fail_i].
	var n int
	var mean, m2 float64

	contrib := make([]float64, o.Batch)
	for done := 0; done < o.Samples; {
		batch := o.Batch
		if rem := o.Samples - done; rem < batch {
			batch = rem
		}
		start := done
		err := pool.ForEach(o.Workers, batch, func(k int) error {
			i := start + k
			st := NewStream(o.Seed, uint64(i))
			z := st.Norms(o.Dims)
			w := 1.0
			if shifted {
				// z ← θ + ε with likelihood ratio
				// φ(z)/φ(z−θ) = exp(−⟨θ,z⟩ + |θ|²/2).
				var dot float64
				for d, t := range o.Shift {
					z[d] += t
					dot += t * z[d]
				}
				w = math.Exp(-dot + shiftSq/2)
			}
			fail, err := trial(i, z)
			if err != nil {
				return err
			}
			if fail {
				contrib[k] = w
			} else {
				contrib[k] = 0
			}
			return nil
		})
		if err != nil {
			return Estimate{}, err
		}
		for k := 0; k < batch; k++ {
			x := contrib[k]
			n++
			d := x - mean
			mean += d / float64(n)
			m2 += d * (x - mean)
		}
		done += batch
		if o.RelErr > 0 && n >= o.MinSamples && mean > 0 && n > 1 {
			se := math.Sqrt(m2 / float64(n-1) / float64(n))
			if se/mean <= o.RelErr {
				break
			}
		}
	}

	est := Estimate{FailProb: mean, Yield: 1 - mean, Samples: n, Shifted: shifted, VarianceReduction: 1}
	if n > 1 {
		sampleVar := m2 / float64(n-1)
		est.StdErr = math.Sqrt(sampleVar / float64(n))
		if sampleVar > 0 && mean > 0 && mean < 1 {
			est.VarianceReduction = mean * (1 - mean) / sampleVar
		}
	}
	return est, nil
}
