package variation

import (
	"context"
	"fmt"
	"math"

	"repro/internal/estimator"
	"repro/internal/model"
	"repro/internal/tech"
	"repro/internal/wire"
)

// LinkScenario binds a designed buffered link to a variation space and
// a timing target, exposing the per-sample evaluation the estimators
// drive: perturb the technology, re-derive the model coefficients
// through the closed-form scaling path, evaluate the link delay, and
// compare against the target.
type LinkScenario struct {
	// Base is the nominal technology the link was designed in.
	Base *tech.Technology
	// Coeffs are the calibrated coefficients at Base.
	Coeffs *model.Coefficients
	// Space is the variation model.
	Space Space
	// Spec is the designed line (repeater kind/size/count, segment
	// geometry, input slew) whose yield is under estimation.
	Spec model.LineSpec
	// Target is the delay constraint in seconds: a sample fails when
	// its delay exceeds the target.
	Target float64
}

// Validate rejects an unevaluable scenario.
func (sc *LinkScenario) Validate() error {
	if sc.Base == nil || sc.Coeffs == nil {
		return fmt.Errorf("variation: scenario needs a technology and coefficients")
	}
	if sc.Target <= 0 {
		return fmt.Errorf("variation: non-positive delay target %g", sc.Target)
	}
	if err := sc.Space.Validate(); err != nil {
		return err
	}
	return sc.Spec.Validate()
}

// Scratch holds the per-sample working state of a scenario
// evaluation: the perturbed technology and the rescaled coefficient
// set. The zero value is ready to use. The sampling kernels keep one
// Scratch per worker so the steady path performs no heap allocation;
// one-shot callers can use Delay, which brings its own.
type Scratch struct {
	tech   tech.Technology
	coeffs model.Coefficients
}

// Delay evaluates the link delay (s) at one standardized draw z.
func (sc *LinkScenario) Delay(z []float64) (float64, error) {
	var s Scratch
	return sc.DelayScratch(&s, z)
}

// DelayScratch is Delay evaluating through caller-owned scratch state,
// bit-identical to Delay. z is only read.
func (sc *LinkScenario) DelayScratch(s *Scratch, z []float64) (float64, error) {
	f := sc.Space.ApplyInto(&s.tech, sc.Base, z)
	sc.Coeffs.ScaleInto(&s.coeffs, sc.Base, &s.tech)

	spec := sc.Spec
	perturbSegment(&spec.Segment, &s.tech, f)

	t, err := s.coeffs.LineDelay(spec)
	if err != nil {
		return 0, err
	}
	return t.Delay, nil
}

// perturbSegment applies one draw's wire factors to a designed
// segment, rebinding it to the perturbed technology. The arithmetic
// mirrors Space.ApplyInto's layer perturbation, applied to the
// segment's own (possibly non-minimum) geometry.
func perturbSegment(seg *wire.Segment, pert *tech.Technology, f Factors) {
	seg.Tech = pert
	dw := seg.Width * (f.WireWidth - 1)
	seg.Width += dw
	seg.Spacing = clampSpacing(seg.Spacing-dw, seg.Spacing)
	seg.Layer.Thickness *= f.WireThickness
	seg.Layer.ILD *= f.ILD
}

// zeroDraw is the shared all-zero standardized draw behind
// NominalDelay. It is read-only by contract: every consumer of a draw
// (Space.ApplyInto, the scenario evaluators) only reads z, and a test
// pins that NominalDelay never writes through it.
var zeroDraw [Dims]float64

// NominalDelay evaluates the scenario at the nominal point (all-zero
// draw).
func (sc *LinkScenario) NominalDelay() (float64, error) {
	return sc.Delay(zeroDraw[:])
}

// YieldOptions configures a link-yield estimation.
type YieldOptions struct {
	// Samples, MinSamples, Batch, RelErr, AbsErr, Workers, Seed
	// mirror Options (see estimator.go).
	Samples, MinSamples, Batch int
	RelErr, AbsErr             float64
	Workers                    int
	Seed                       uint64
	// ImportanceSampling selects the ISLE-style estimator: the
	// sampling distribution is shifted to the most probable failure
	// point and samples carry likelihood-ratio weights. Recommended
	// for failure probabilities below ~1e-2. Superseded by Estimator
	// and TargetSigma: the flag is kept as the historical hint and
	// maps to the ISLE rung when neither newer field is set.
	ImportanceSampling bool
	// Estimator pins a specific rung of the estimator ladder (mc,
	// qmc, isle, ais, wcd). Empty (estimator.Auto) routes by
	// TargetSigma when set and falls back to the historical default
	// otherwise (plain MC, or ISLE when ImportanceSampling is set).
	Estimator estimator.Kind
	// TargetSigma is the sigma level the query must resolve (a 6σ
	// query cares about failure probabilities near Φ(−6) ≈ 1e-9).
	// When positive and Estimator is Auto it drives the router, and
	// at ≥3σ it arms the worst-case-distance pre-filter: the analytic
	// bound answers certified-either-way queries without sampling.
	TargetSigma float64
	// Sampler selects the normal sampler for the mc/isle rungs:
	// SamplerZiggurat (default when empty) or SamplerBoxMuller (the
	// pinned legacy sequence). qmc (Sobol points), ais (its own
	// proposal sampling), and wcd (no sampling) ignore it. Estimates
	// stay bit-identical across worker counts and shard layouts under
	// either sampler; the two samplers produce different draw
	// sequences at the same seed.
	Sampler Sampler
}

// resolveKind maps the options' estimator hints to the concrete rung
// that will run: an explicit Estimator wins, then TargetSigma routing,
// then the historical default.
func (o YieldOptions) resolveKind() (estimator.Kind, error) {
	if o.TargetSigma < 0 || math.IsNaN(o.TargetSigma) || math.IsInf(o.TargetSigma, 0) {
		return estimator.Auto, fmt.Errorf("variation: invalid target sigma %g", o.TargetSigma)
	}
	if o.Estimator != estimator.Auto {
		if _, ok := estimator.Lookup(o.Estimator); !ok {
			return estimator.Auto, fmt.Errorf("variation: unknown estimator %q", o.Estimator)
		}
		return o.Estimator, nil
	}
	if o.TargetSigma > 0 {
		if k := estimator.RouteSigma(o.TargetSigma); k != estimator.Auto {
			return k, nil
		}
	}
	if o.ImportanceSampling {
		return estimator.ISLE, nil
	}
	return estimator.MC, nil
}

func (o YieldOptions) runOptions() Options {
	return Options{
		Dims:       Dims,
		Samples:    o.Samples,
		MinSamples: o.MinSamples,
		Batch:      o.Batch,
		RelErr:     o.RelErr,
		AbsErr:     o.AbsErr,
		Workers:    o.Workers,
		Seed:       o.Seed,
		Sampler:    o.Sampler,
	}
}

// EstimateLinkYield estimates the probability that the scenario's link
// meets its delay target under process variation. The estimate is
// bit-identical for every Workers value at a fixed seed.
func EstimateLinkYield(sc *LinkScenario, o YieldOptions) (Estimate, error) {
	return EstimateLinkYieldCtx(context.Background(), sc, o)
}

// EstimateLinkYieldCtx is EstimateLinkYield under a context:
// cancellation is checked between sample batches (and between the
// deterministic metric evaluations of the importance-sampling shift
// search), so an estimation legitimately stretching to millions of
// samples can be interrupted or deadline-bound. A run that completes
// under a live context is bit-identical to EstimateLinkYield.
func EstimateLinkYieldCtx(ctx context.Context, sc *LinkScenario, o YieldOptions) (Estimate, error) {
	if err := sc.Validate(); err != nil {
		return Estimate{}, err
	}
	// Single-candidate view of the shared kernel: same draws, same
	// fold order, same stopping rule — bit-identical to the historical
	// per-sample implementation (RunCtx over sc.Delay), but with the
	// per-worker scratch keeping the steady path allocation-free. The
	// shared kernel owns estimator dispatch (including the shift
	// search when the ISLE rung runs).
	ms := &MultiScenario{
		Base:   sc.Base,
		Coeffs: sc.Coeffs,
		Space:  sc.Space,
		Specs:  []model.LineSpec{sc.Spec},
		Target: sc.Target,
	}
	ests, err := EstimateYieldsSharedCtx(ctx, ms, o)
	if err != nil {
		return Estimate{}, err
	}
	return ests[0], nil
}
