package variation

import (
	"context"
	"fmt"

	"repro/internal/model"
	"repro/internal/tech"
)

// LinkScenario binds a designed buffered link to a variation space and
// a timing target, exposing the per-sample evaluation the estimators
// drive: perturb the technology, re-derive the model coefficients
// through the closed-form scaling path, evaluate the link delay, and
// compare against the target.
type LinkScenario struct {
	// Base is the nominal technology the link was designed in.
	Base *tech.Technology
	// Coeffs are the calibrated coefficients at Base.
	Coeffs *model.Coefficients
	// Space is the variation model.
	Space Space
	// Spec is the designed line (repeater kind/size/count, segment
	// geometry, input slew) whose yield is under estimation.
	Spec model.LineSpec
	// Target is the delay constraint in seconds: a sample fails when
	// its delay exceeds the target.
	Target float64
}

// Validate rejects an unevaluable scenario.
func (sc *LinkScenario) Validate() error {
	if sc.Base == nil || sc.Coeffs == nil {
		return fmt.Errorf("variation: scenario needs a technology and coefficients")
	}
	if sc.Target <= 0 {
		return fmt.Errorf("variation: non-positive delay target %g", sc.Target)
	}
	if err := sc.Space.Validate(); err != nil {
		return err
	}
	return sc.Spec.Validate()
}

// Delay evaluates the link delay (s) at one standardized draw z.
func (sc *LinkScenario) Delay(z []float64) (float64, error) {
	pert, f := sc.Space.Apply(sc.Base, z)
	scaled := sc.Coeffs.ScaledFor(sc.Base, pert)

	spec := sc.Spec
	seg := &spec.Segment
	seg.Tech = pert
	dw := seg.Width * (f.WireWidth - 1)
	seg.Width += dw
	seg.Spacing = clampSpacing(seg.Spacing-dw, seg.Spacing)
	seg.Layer.Thickness *= f.WireThickness
	seg.Layer.ILD *= f.ILD

	t, err := scaled.LineDelay(spec)
	if err != nil {
		return 0, err
	}
	return t.Delay, nil
}

// NominalDelay evaluates the scenario at the nominal point (all-zero
// draw).
func (sc *LinkScenario) NominalDelay() (float64, error) {
	return sc.Delay(make([]float64, Dims))
}

// YieldOptions configures a link-yield estimation.
type YieldOptions struct {
	// Samples, MinSamples, Batch, RelErr, AbsErr, Workers, Seed
	// mirror Options (see estimator.go).
	Samples, MinSamples, Batch int
	RelErr, AbsErr             float64
	Workers                    int
	Seed                       uint64
	// ImportanceSampling selects the ISLE-style estimator: the
	// sampling distribution is shifted to the most probable failure
	// point and samples carry likelihood-ratio weights. Recommended
	// for failure probabilities below ~1e-2.
	ImportanceSampling bool
}

func (o YieldOptions) runOptions() Options {
	return Options{
		Dims:       Dims,
		Samples:    o.Samples,
		MinSamples: o.MinSamples,
		Batch:      o.Batch,
		RelErr:     o.RelErr,
		AbsErr:     o.AbsErr,
		Workers:    o.Workers,
		Seed:       o.Seed,
	}
}

// EstimateLinkYield estimates the probability that the scenario's link
// meets its delay target under process variation. The estimate is
// bit-identical for every Workers value at a fixed seed.
func EstimateLinkYield(sc *LinkScenario, o YieldOptions) (Estimate, error) {
	return EstimateLinkYieldCtx(context.Background(), sc, o)
}

// EstimateLinkYieldCtx is EstimateLinkYield under a context:
// cancellation is checked between sample batches (and between the
// deterministic metric evaluations of the importance-sampling shift
// search), so an estimation legitimately stretching to millions of
// samples can be interrupted or deadline-bound. A run that completes
// under a live context is bit-identical to EstimateLinkYield.
func EstimateLinkYieldCtx(ctx context.Context, sc *LinkScenario, o YieldOptions) (Estimate, error) {
	if err := sc.Validate(); err != nil {
		return Estimate{}, err
	}
	ropts := o.runOptions()
	if o.ImportanceSampling {
		shift, err := FindShift(Dims, sc.Target, func(z []float64) (float64, error) {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			return sc.Delay(z)
		})
		if err != nil {
			return Estimate{}, err
		}
		ropts.Shift = shift
	}
	return RunCtx(ctx, ropts, func(i int, z []float64) (bool, error) {
		d, err := sc.Delay(z)
		if err != nil {
			return false, err
		}
		return d > sc.Target, nil
	})
}
