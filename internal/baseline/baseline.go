// Package baseline implements the two "classic" interconnect models
// the paper compares against: Bakoglu's model (column B of Table II)
// and the model of Pamunuwa et al. (column P), plus the
// Bakoglu delay-optimal buffering formulas the original COSI-OCC flow
// relies on.
//
// Both baselines are deliberately *uncalibrated*: their gate
// parameters are derived directly from device-model constants (the
// paper's "technology inputs from PTMs which are not calibrated
// compared with industry library files"), their drive resistance is a
// constant per size with no input-slew dependence, and their wire
// resistance omits the scattering and barrier corrections. Bakoglu
// additionally ignores coupling capacitance entirely and uses a
// parallel-plate-only ground capacitance, which is what makes the
// original NoC-synthesis results optimistic in Table III.
package baseline

import (
	"fmt"
	"math"

	"repro/internal/tech"
	"repro/internal/wire"
)

// Kind selects a baseline model.
type Kind int

const (
	// Bakoglu is the classic switch-level model: constant drive
	// resistance, lumped 0.4/0.7 wire weighting, no coupling
	// capacitance, parallel-plate ground capacitance only.
	Bakoglu Kind = iota
	// Pamunuwa adds the cross-talk-aware wire-delay form (coupling
	// with Miller factor λ) and realistic capacitance, but keeps the
	// constant slew-independent drive resistance and the
	// uncorrected wire resistance.
	Pamunuwa
)

func (k Kind) String() string {
	if k == Pamunuwa {
		return "pamunuwa"
	}
	return "bakoglu"
}

// Gate holds the uncalibrated per-technology gate parameters, derived
// once from device constants.
type Gate struct {
	// RdUnit is the switch resistance (Ω) of a unit (size-1)
	// inverter, taken as the average of Vdd/Idsat for the two
	// devices.
	RdUnit float64
	// CinUnit is the input capacitance (F) of a unit inverter.
	CinUnit float64
	// CdiffUnit is the output diffusion capacitance (F) of a unit
	// inverter.
	CdiffUnit float64
}

// DeriveGate computes the uncalibrated gate parameters for a
// technology.
func DeriveGate(tc *tech.Technology) Gate {
	wn, wp := tc.InverterWidths(1)
	idN := tc.NMOS.K * wn * math.Pow(tc.Vdd-tc.NMOS.Vth, tc.NMOS.Alpha)
	idP := tc.PMOS.K * wp * math.Pow(tc.Vdd-tc.PMOS.Vth, tc.PMOS.Alpha)
	return Gate{
		RdUnit:    (tc.Vdd/idN + tc.Vdd/idP) / 2,
		CinUnit:   tc.NMOS.CGate*wn + tc.PMOS.CGate*wp,
		CdiffUnit: tc.NMOS.CDiff*wn + tc.PMOS.CDiff*wp,
	}
}

// Rd returns the size-scaled drive resistance: RdUnit/size, the
// classic inverse-proportionality with no slew dependence.
func (g Gate) Rd(size float64) float64 { return g.RdUnit / size }

// Cin returns the size-scaled input capacitance.
func (g Gate) Cin(size float64) float64 { return g.CinUnit * size }

// Cdiff returns the size-scaled diffusion capacitance.
func (g Gate) Cdiff(size float64) float64 { return g.CdiffUnit * size }

// wireCaps returns the per-segment (ground, coupling) capacitance as
// the baseline sees it: Bakoglu ignores coupling entirely — the
// deficiency the paper singles out as the source of the original
// model's optimistic dynamic power — while Pamunuwa sees the full
// capacitance.
func wireCaps(k Kind, seg wire.Segment) (cg, cc float64) {
	if k == Bakoglu {
		return seg.GroundCap(), 0
	}
	return seg.GroundCap(), seg.CouplingCap()
}

// LineSpec mirrors the proposed model's line description for the
// baseline evaluators: N repeaters of the given size uniformly
// buffering the segment. Baselines predate two-stage buffers, so the
// repeater is always treated as an inverter.
type LineSpec struct {
	Size    float64
	N       int
	Segment wire.Segment
}

// Validate reports whether the spec is evaluable.
func (s *LineSpec) Validate() error {
	if s.Size <= 0 {
		return fmt.Errorf("baseline: non-positive size %g", s.Size)
	}
	if s.N < 1 {
		return fmt.Errorf("baseline: need at least one repeater")
	}
	return s.Segment.Validate()
}

// LineDelay evaluates the baseline's delay prediction for the line.
//
// Per stage, both baselines use the classic switch-level form
//
//	d = 0.7·R_d·(C_diff + C_wire,load + C_in) + wire term
//
// where Bakoglu's wire term is r_w·(0.4·c_g + 0.7·c_in) with
// uncorrected r_w and parallel-plate c_g, and Pamunuwa's is
// r_w·(0.4·c_g + (λ/2)·c_c + 0.7·c_in) with realistic capacitance but
// still-uncorrected resistance.
func LineDelay(k Kind, spec LineSpec) (float64, error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	g := DeriveGate(spec.Segment.Tech)
	stage := spec.Segment
	stage.Length = spec.Segment.Length / float64(spec.N)

	cg, cc := wireCaps(k, stage)
	rw := stage.ClassicResistance()
	ci := g.Cin(spec.Size)
	rd := g.Rd(spec.Size)

	var lambda float64
	if k == Pamunuwa {
		lambda = stage.Style.MillerFactor()
	}
	gate := 0.7 * rd * (g.Cdiff(spec.Size) + cg + cc + ci)
	if k == Bakoglu {
		gate = 0.7 * rd * (g.Cdiff(spec.Size) + cg + ci)
	}
	wireD := rw * (0.4*cg + lambda/2*cc + 0.7*ci)
	return float64(spec.N) * (gate + wireD), nil
}

// LinePower evaluates the baseline's per-bit power prediction — the
// "original model" column of Table III. Dynamic power charges only
// the capacitance the model knows about (no coupling for Bakoglu);
// leakage uses the same device off-currents but over the baseline's
// (typically smaller) repeater sizes and counts.
func LinePower(k Kind, spec LineSpec, activity, freq float64) (dynamic, leakage float64, err error) {
	if err := spec.Validate(); err != nil {
		return 0, 0, err
	}
	if activity < 0 || freq <= 0 {
		return 0, 0, fmt.Errorf("baseline: bad power params")
	}
	tc := spec.Segment.Tech
	g := DeriveGate(tc)
	stage := spec.Segment
	stage.Length = spec.Segment.Length / float64(spec.N)
	cg, cc := wireCaps(k, stage)
	cl := cg + cc + g.Cin(spec.Size)

	dynamic = float64(spec.N) * activity * cl * tc.Vdd * tc.Vdd * freq
	wn, wp := tc.InverterWidths(spec.Size)
	perRep := tc.Vdd * (tc.NMOS.IOff*wn + tc.PMOS.IOff*wp) / 2
	leakage = float64(spec.N) * perRep
	return dynamic, leakage, nil
}

// LineArea evaluates the baseline's area prediction for an n-bit bus
// using the original model's simplistic assumptions: wires occupy only
// their drawn width (no spacing, no shields) and repeaters only their
// active gate area.
func LineArea(spec LineSpec, bits int) (float64, error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	if bits < 1 {
		return 0, fmt.Errorf("baseline: need at least one bit")
	}
	tc := spec.Segment.Tech
	wireArea := float64(bits) * spec.Segment.Width * spec.Segment.Length
	wn, wp := tc.InverterWidths(spec.Size)
	repArea := float64(bits) * float64(spec.N) * (wn + wp) * 2 * tc.Feature
	return wireArea + repArea, nil
}

// OptimalBuffering returns Bakoglu's closed-form delay-optimal
// repeater count and size for the segment:
//
//	k_opt = √(0.4·R_w·C_w / (0.7·R_d1·C_in1))
//	h_opt = √(R_d1·C_w / (R_w·C_in1))
//
// where R_w, C_w are the total (baseline-visible) wire resistance and
// capacitance and R_d1, C_in1 the unit-inverter parameters. The count
// is clamped to at least 1.
func OptimalBuffering(k Kind, seg wire.Segment) (count int, size float64, err error) {
	if err := seg.Validate(); err != nil {
		return 0, 0, err
	}
	g := DeriveGate(seg.Tech)
	cg, cc := wireCaps(k, seg)
	cw := cg + cc
	rw := seg.ClassicResistance()
	kf := math.Sqrt(0.4 * rw * cw / (0.7 * g.RdUnit * g.CinUnit))
	count = int(math.Round(kf))
	if count < 1 {
		count = 1
	}
	size = math.Sqrt(g.RdUnit * cw / (rw * g.CinUnit))
	if size < 1 {
		size = 1
	}
	return count, size, nil
}
