package baseline

import (
	"math"
	"testing"

	"repro/internal/tech"
	"repro/internal/wire"
)

func seg90(L float64) wire.Segment {
	return wire.NewSegment(tech.MustLookup("90nm"), L, wire.SWSS)
}

func TestDeriveGatePlausible(t *testing.T) {
	g := DeriveGate(tech.MustLookup("90nm"))
	// Unit inverter switch resistance: hundreds of Ω to tens of kΩ.
	if g.RdUnit < 100 || g.RdUnit > 100e3 {
		t.Fatalf("RdUnit = %g Ω implausible", g.RdUnit)
	}
	if g.CinUnit < 0.1e-15 || g.CinUnit > 100e-15 {
		t.Fatalf("CinUnit = %g F implausible", g.CinUnit)
	}
	if g.CdiffUnit <= 0 || g.CdiffUnit >= g.CinUnit {
		t.Fatalf("CdiffUnit = %g vs CinUnit %g", g.CdiffUnit, g.CinUnit)
	}
}

func TestGateScaling(t *testing.T) {
	g := DeriveGate(tech.MustLookup("65nm"))
	if math.Abs(g.Rd(4)-g.RdUnit/4) > 1e-12 {
		t.Fatal("Rd scaling")
	}
	if math.Abs(g.Cin(4)-4*g.CinUnit) > 1e-24 {
		t.Fatal("Cin scaling")
	}
	if math.Abs(g.Cdiff(8)-8*g.CdiffUnit) > 1e-24 {
		t.Fatal("Cdiff scaling")
	}
}

func TestKindString(t *testing.T) {
	if Bakoglu.String() != "bakoglu" || Pamunuwa.String() != "pamunuwa" {
		t.Fatal("kind strings")
	}
}

func TestLineSpecValidation(t *testing.T) {
	good := LineSpec{Size: 8, N: 4, Segment: seg90(3e-3)}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Size = 0
	if bad.Validate() == nil {
		t.Fatal("zero size accepted")
	}
	bad = good
	bad.N = 0
	if bad.Validate() == nil {
		t.Fatal("zero count accepted")
	}
	bad = good
	bad.Segment.Length = 0
	if bad.Validate() == nil {
		t.Fatal("bad segment accepted")
	}
}

func TestBakogluIgnoresCoupling(t *testing.T) {
	// Bakoglu sees the same delay for SWSS and staggered styles at
	// equal geometry because it never looks at coupling.
	tc := tech.MustLookup("90nm")
	swss := LineSpec{Size: 8, N: 4, Segment: wire.NewSegment(tc, 5e-3, wire.SWSS)}
	stag := LineSpec{Size: 8, N: 4, Segment: wire.NewSegment(tc, 5e-3, wire.Staggered)}
	d1, err := LineDelay(Bakoglu, swss)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := LineDelay(Bakoglu, stag)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("Bakoglu delay depends on style: %g vs %g", d1, d2)
	}
}

func TestPamunuwaSeesCoupling(t *testing.T) {
	tc := tech.MustLookup("90nm")
	swss := LineSpec{Size: 8, N: 4, Segment: wire.NewSegment(tc, 5e-3, wire.SWSS)}
	sh := LineSpec{Size: 8, N: 4, Segment: wire.NewSegment(tc, 5e-3, wire.Shielded)}
	dSwss, err := LineDelay(Pamunuwa, swss)
	if err != nil {
		t.Fatal(err)
	}
	dSh, err := LineDelay(Pamunuwa, sh)
	if err != nil {
		t.Fatal(err)
	}
	if !(dSwss > dSh) {
		t.Fatalf("Pamunuwa must charge worst-case coupling: SWSS %g vs shielded %g", dSwss, dSh)
	}
}

func TestBaselineOrdering(t *testing.T) {
	// For worst-case SWSS lines, Bakoglu (no coupling, parallel-plate
	// cap) predicts less delay than Pamunuwa (full cap + Miller).
	spec := LineSpec{Size: 12, N: 5, Segment: seg90(5e-3)}
	b, err := LineDelay(Bakoglu, spec)
	if err != nil {
		t.Fatal(err)
	}
	p, err := LineDelay(Pamunuwa, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !(b < p) {
		t.Fatalf("Bakoglu %g not below Pamunuwa %g", b, p)
	}
	if b <= 0 {
		t.Fatal("non-positive delay")
	}
}

func TestLineDelayScalesWithLength(t *testing.T) {
	for _, k := range []Kind{Bakoglu, Pamunuwa} {
		short := LineSpec{Size: 8, N: 2, Segment: seg90(2e-3)}
		long := LineSpec{Size: 8, N: 2, Segment: seg90(4e-3)}
		ds, err := LineDelay(k, short)
		if err != nil {
			t.Fatal(err)
		}
		dl, err := LineDelay(k, long)
		if err != nil {
			t.Fatal(err)
		}
		if dl <= ds {
			t.Fatalf("%v: delay not increasing with length", k)
		}
	}
}

func TestLinePower(t *testing.T) {
	spec := LineSpec{Size: 8, N: 4, Segment: seg90(5e-3)}
	dynB, leakB, err := LinePower(Bakoglu, spec, 0.15, 1.5e9)
	if err != nil {
		t.Fatal(err)
	}
	dynP, leakP, err := LinePower(Pamunuwa, spec, 0.15, 1.5e9)
	if err != nil {
		t.Fatal(err)
	}
	if dynB <= 0 || leakB <= 0 {
		t.Fatal("non-positive power")
	}
	// Bakoglu's dynamic power misses coupling: must be well below
	// Pamunuwa's for the same line.
	if !(dynB < 0.8*dynP) {
		t.Fatalf("Bakoglu dynamic %g not well below Pamunuwa %g", dynB, dynP)
	}
	if leakB != leakP {
		t.Fatal("leakage should not depend on the wire-cap model")
	}
	if _, _, err := LinePower(Bakoglu, spec, -1, 1e9); err == nil {
		t.Fatal("negative activity accepted")
	}
	if _, _, err := LinePower(Bakoglu, spec, 0.1, 0); err == nil {
		t.Fatal("zero freq accepted")
	}
	bad := spec
	bad.N = 0
	if _, _, err := LinePower(Bakoglu, bad, 0.1, 1e9); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestLineAreaSimplistic(t *testing.T) {
	spec := LineSpec{Size: 8, N: 4, Segment: seg90(5e-3)}
	a, err := LineArea(spec, 128)
	if err != nil {
		t.Fatal(err)
	}
	// The simplistic area must be far below the realistic bus area
	// (which includes spacing) — the Table III "very large
	// difference".
	real := spec.Segment.BusArea(128)
	if !(a < 0.7*real) {
		t.Fatalf("baseline area %g not well below realistic %g", a, real)
	}
	if _, err := LineArea(spec, 0); err == nil {
		t.Fatal("zero bits accepted")
	}
	bad := spec
	bad.Size = 0
	if _, err := LineArea(bad, 8); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestOptimalBuffering(t *testing.T) {
	seg := seg90(10e-3)
	n, h, err := OptimalBuffering(Bakoglu, seg)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 || h < 1 {
		t.Fatalf("degenerate buffering n=%d h=%g", n, h)
	}
	// Delay-optimal repeaters are famously numerous and large: for a
	// 10mm 90nm global wire expect several repeaters of substantial
	// size.
	if n < 2 {
		t.Fatalf("10mm line should need multiple repeaters, got %d", n)
	}
	if h < 5 {
		t.Fatalf("delay-optimal size %g implausibly small", h)
	}
	// Longer wire → proportionally more repeaters, same size.
	n2, h2, err := OptimalBuffering(Bakoglu, seg90(20e-3))
	if err != nil {
		t.Fatal(err)
	}
	if n2 <= n {
		t.Fatal("repeater count must grow with length")
	}
	if math.Abs(h2-h) > 0.01*h {
		t.Fatalf("optimal size should be length-independent: %g vs %g", h, h2)
	}
	bad := seg
	bad.Length = -1
	if _, _, err := OptimalBuffering(Bakoglu, bad); err == nil {
		t.Fatal("bad segment accepted")
	}
}

func TestPamunuwaOptimalBuffersMore(t *testing.T) {
	// Pamunuwa sees more wire capacitance (coupling), so its
	// delay-optimal buffering uses at least as many repeaters.
	seg := seg90(10e-3)
	nB, _, err := OptimalBuffering(Bakoglu, seg)
	if err != nil {
		t.Fatal(err)
	}
	nP, _, err := OptimalBuffering(Pamunuwa, seg)
	if err != nil {
		t.Fatal(err)
	}
	if nP < nB {
		t.Fatalf("Pamunuwa count %d below Bakoglu %d", nP, nB)
	}
}

func BenchmarkBaselineLineDelay(b *testing.B) {
	spec := LineSpec{Size: 12, N: 5, Segment: seg90(5e-3)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LineDelay(Pamunuwa, spec); err != nil {
			b.Fatal(err)
		}
	}
}
