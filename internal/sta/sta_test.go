package sta

import (
	"math"
	"testing"

	"repro/internal/liberty"
	"repro/internal/rcnet"
	"repro/internal/regress"
	"repro/internal/tech"
	"repro/internal/wire"
)

// testLib characterizes a small 90nm inverter library once per test
// binary.
func testLib(t testing.TB) *liberty.Library {
	t.Helper()
	lib, err := liberty.Get(tech.MustLookup("90nm"))
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestLadderSimMatchesLumpedRC(t *testing.T) {
	// Single-section ladder = lumped RC driven by a fast ramp: the
	// 50% delay must approach RC·ln2.
	R, C := 1e3, 1e-12
	lad := &rcnet.Ladder{R: []float64{R}, C: []float64{C}}
	d, s, err := ladderSim(lad, 1.0, 1e-12) // near-step input
	if err != nil {
		t.Fatal(err)
	}
	want := R * C * math.Ln2
	if math.Abs(d-want) > 0.03*want {
		t.Fatalf("lumped RC delay %g, want %g", d, want)
	}
	// 10–90 slew of one-pole step response = RC·ln9.
	wantSlew := R * C * math.Log(9)
	if math.Abs(s-wantSlew) > 0.03*wantSlew {
		t.Fatalf("slew %g, want %g", s, wantSlew)
	}
}

func TestLadderSimDistributedBelowElmore(t *testing.T) {
	// For a distributed line the true 50% delay is well below the
	// Elmore bound (≈0.4·RC vs 0.5·RC for a long line) and above the
	// D2M estimate's ballpark.
	n := 40
	lad := &rcnet.Ladder{R: make([]float64, n), C: make([]float64, n)}
	for i := 0; i < n; i++ {
		lad.R[i] = 1e3 / float64(n)
		lad.C[i] = 1e-12 / float64(n)
	}
	d, _, err := ladderSim(lad, 1.0, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	elmore := lad.ElmoreDelay()
	if d >= elmore {
		t.Fatalf("transient delay %g above Elmore %g", d, elmore)
	}
	if d < 0.5*elmore {
		t.Fatalf("transient delay %g implausibly below Elmore %g", d, elmore)
	}
}

func TestLadderSimSlowRampShiftsDelay(t *testing.T) {
	// With a slow input ramp the wire delay measured 50%→50% shrinks
	// toward zero or even negative is NOT expected for monotone RC:
	// it stays positive but decreases relative to the step response
	// is also not guaranteed — what must hold: output slew grows
	// with input slew.
	lad := &rcnet.Ladder{R: []float64{500, 500}, C: []float64{0.5e-12, 0.5e-12}}
	_, sFast, err := ladderSim(lad, 1.0, 10e-12)
	if err != nil {
		t.Fatal(err)
	}
	_, sSlow, err := ladderSim(lad, 1.0, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if sSlow <= sFast {
		t.Fatalf("output slew must grow with input slew: %g vs %g", sFast, sSlow)
	}
}

func TestLadderSimErrors(t *testing.T) {
	lad := &rcnet.Ladder{R: []float64{1e3}, C: []float64{1e-12}}
	if _, _, err := ladderSim(lad, 1.0, 0); err == nil {
		t.Fatal("zero slew accepted")
	}
	empty := &rcnet.Ladder{}
	if _, _, err := ladderSim(empty, 1.0, 1e-12); err == nil {
		t.Fatal("empty ladder accepted")
	}
	bad := &rcnet.Ladder{R: []float64{0}, C: []float64{1e-12}}
	if _, _, err := ladderSim(bad, 1.0, 1e-12); err == nil {
		t.Fatal("zero resistance accepted")
	}
}

func TestLineAnalyzeBasics(t *testing.T) {
	lib := testLib(t)
	tc := lib.Tech
	cell := lib.Cell("INVD12")
	if cell == nil {
		t.Fatal("missing INVD12")
	}
	line := &Line{
		Cell:      cell,
		N:         4,
		Segment:   wire.NewSegment(tc, 3e-3, wire.SWSS),
		InputSlew: 300e-12,
	}
	res, err := line.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay <= 0 {
		t.Fatal("non-positive delay")
	}
	if len(res.Stages) != 4 {
		t.Fatalf("stage count %d", len(res.Stages))
	}
	if res.Delay < res.RiseDelay && res.Delay < res.FallDelay {
		t.Fatal("worst delay below both edges")
	}
	if res.OutputSlew <= 0 {
		t.Fatal("non-positive output slew")
	}
	// A buffered 3mm line at 90nm should land in the hundreds of ps
	// to a few ns.
	if res.Delay < 50e-12 || res.Delay > 10e-9 {
		t.Fatalf("implausible 3mm delay %g", res.Delay)
	}
	// Stage sums must reproduce the worst-edge total.
	sum := 0.0
	for _, st := range res.Stages {
		sum += st.GateDelay + st.WireDelay
	}
	if math.Abs(sum-res.Delay) > 1e-15 {
		t.Fatalf("stage sum %g != total %g", sum, res.Delay)
	}
}

func TestLineDelayGrowsWithLength(t *testing.T) {
	lib := testLib(t)
	tc := lib.Tech
	cell := lib.Cell("INVD12")
	var prev float64
	for i, L := range []float64{1e-3, 3e-3, 5e-3} {
		// Scale repeater count with length to keep stages comparable.
		line := &Line{Cell: cell, N: int(L / 1e-3), Segment: wire.NewSegment(tc, L, wire.SWSS), InputSlew: 300e-12}
		res, err := line.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.Delay <= prev {
			t.Fatalf("delay not increasing with length: %g then %g", prev, res.Delay)
		}
		prev = res.Delay
	}
}

// The paper's footnote 4: "delay changes linearly with respect to
// length for buffered interconnects" — with repeater density held
// constant, per-mm delay must be flat across lengths.
func TestLineDelayLinearInLength(t *testing.T) {
	lib := testLib(t)
	cell := lib.Cell("INVD16")
	perMM := func(Lmm int) float64 {
		line := &Line{
			Cell:      cell,
			N:         Lmm, // one repeater per mm
			Segment:   wire.NewSegment(lib.Tech, float64(Lmm)*1e-3, wire.SWSS),
			InputSlew: 300e-12,
		}
		res, err := line.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		return res.Delay / float64(Lmm)
	}
	// Delay is affine in length (a fixed first-stage transient plus a
	// constant per-mm increment): a linear fit must be near-perfect.
	var ls, ds []float64
	for _, Lmm := range []int{3, 6, 9, 12} {
		ls = append(ls, float64(Lmm))
		ds = append(ds, perMM(Lmm)*float64(Lmm))
	}
	fit, err := regress.Linear(ls, ds)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.9995 {
		t.Fatalf("delay not linear in length: R²=%v (%v)", fit.R2, fit)
	}
	if fit.Coeff[1] <= 0 {
		t.Fatal("negative per-mm slope")
	}
}

func TestGoldenBufferLine(t *testing.T) {
	// Two-stage buffers must also analyze cleanly, and at equal size
	// and count be slower than inverters (extra internal stage).
	lib := testLib(t)
	inv, buf := lib.Cell("INVD12"), lib.Cell("BUFD12")
	if inv == nil || buf == nil {
		t.Fatal("missing cells")
	}
	seg := wire.NewSegment(lib.Tech, 4e-3, wire.SWSS)
	rInv, err := (&Line{Cell: inv, N: 4, Segment: seg, InputSlew: 300e-12}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	rBuf, err := (&Line{Cell: buf, N: 4, Segment: seg, InputSlew: 300e-12}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !(rBuf.Delay > rInv.Delay) {
		t.Fatalf("buffer line (%g) not slower than inverter line (%g)", rBuf.Delay, rInv.Delay)
	}
	// Buffers are non-inverting: rise and fall paths see consistent
	// polarity, and both must be positive.
	if rBuf.RiseDelay <= 0 || rBuf.FallDelay <= 0 {
		t.Fatal("degenerate buffer-line analysis")
	}
}

func TestLineBufferingHelps(t *testing.T) {
	// For a long line, adding repeaters must cut the delay: that is
	// the entire premise of buffered interconnect.
	lib := testLib(t)
	tc := lib.Tech
	cell := lib.Cell("INVD16")
	seg := wire.NewSegment(tc, 10e-3, wire.SWSS)
	one := &Line{Cell: cell, N: 1, Segment: seg, InputSlew: 300e-12}
	eight := &Line{Cell: cell, N: 8, Segment: seg, InputSlew: 300e-12}
	r1, err := one.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	r8, err := eight.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if r8.Delay >= r1.Delay {
		t.Fatalf("8 repeaters (%g) not faster than 1 (%g) on 10mm", r8.Delay, r1.Delay)
	}
}

// On a uniform buffered line, stage slews converge to a fixed point:
// after a few stages the per-stage output slew must be nearly
// constant regardless of the (different) input slew.
func TestStageSlewConverges(t *testing.T) {
	lib := testLib(t)
	cell := lib.Cell("INVD16")
	line := &Line{Cell: cell, N: 8, Segment: wire.NewSegment(lib.Tech, 8e-3, wire.SWSS), InputSlew: 500e-12}
	res, err := line.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	// Compare successive late-stage slews (same edge parity: stride 2
	// for inverters).
	s4, s6 := res.Stages[4].OutSlew, res.Stages[6].OutSlew
	if rel := math.Abs(s6-s4) / s4; rel > 0.02 {
		t.Fatalf("stage slew not converged: %.2f vs %.2f ps", s4*1e12, s6*1e12)
	}
	// And the fixed point must not depend on the line's input slew.
	line2 := &Line{Cell: cell, N: 8, Segment: line.Segment, InputSlew: 50e-12}
	res2, err := line2.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res2.Stages[6].OutSlew-s6) / s6; rel > 0.05 {
		t.Fatalf("slew fixed point depends on input slew: %.2f vs %.2f ps",
			res2.Stages[6].OutSlew*1e12, s6*1e12)
	}
}

func TestLineStyleOrdering(t *testing.T) {
	// Worst-case SWSS must be slower than staggered (Miller factor
	// zero) at identical geometry.
	lib := testLib(t)
	tc := lib.Tech
	cell := lib.Cell("INVD12")
	mk := func(style wire.Style) float64 {
		line := &Line{Cell: cell, N: 5, Segment: wire.NewSegment(tc, 5e-3, style), InputSlew: 300e-12}
		res, err := line.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		return res.Delay
	}
	swss, stag := mk(wire.SWSS), mk(wire.Staggered)
	if stag >= swss {
		t.Fatalf("staggered (%g) not faster than SWSS (%g)", stag, swss)
	}
}

func TestLineValidation(t *testing.T) {
	lib := testLib(t)
	tc := lib.Tech
	cell := lib.Cell("INVD4")
	seg := wire.NewSegment(tc, 1e-3, wire.SWSS)
	cases := []*Line{
		{Cell: nil, N: 1, Segment: seg, InputSlew: 1e-10},
		{Cell: cell, N: 0, Segment: seg, InputSlew: 1e-10},
		{Cell: cell, N: 1, Segment: seg, InputSlew: 0},
		{Cell: cell, N: 1, Segment: wire.Segment{}, InputSlew: 1e-10},
	}
	for i, l := range cases {
		if _, err := l.Analyze(); err == nil {
			t.Errorf("case %d: invalid line accepted", i)
		}
	}
}

func BenchmarkLineAnalyze(b *testing.B) {
	lib := testLib(b)
	cell := lib.Cell("INVD12")
	line := &Line{Cell: cell, N: 5, Segment: wire.NewSegment(lib.Tech, 5e-3, wire.SWSS), InputSlew: 300e-12}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := line.Analyze(); err != nil {
			b.Fatal(err)
		}
	}
}
