package sta

import (
	"fmt"
	"math"

	"repro/internal/rcnet"
)

// TwoPoleDelay computes the 50% step-response delay of an RC ladder
// from its first two moments via a two-pole Padé approximation — the
// AWE-family method sign-off tools (and the paper's golden reference,
// PrimeTime SI) descend from. It exists alongside the exact transient
// engine as a fast analytic cross-check: for monotone RC ladders the
// two should agree within a few percent.
//
// With transfer moments H(s) = 1 + m1·s + m2·s² + …, the [0/2] Padé
// denominator is 1 + b1·s + b2·s² with b1 = −m1 and b2 = m1² − m2.
// When the resulting pole pair is not real and stable (possible for
// degenerate inputs), the method falls back to the single-pole
// (Elmore) estimate −m1·ln2.
func TwoPoleDelay(lad *rcnet.Ladder) (float64, error) {
	if lad.Sections() == 0 {
		return 0, fmt.Errorf("sta: empty ladder")
	}
	m1, m2 := lad.Moments()
	b1 := -m1
	b2 := m1*m1 - m2
	if b1 <= 0 {
		return 0, fmt.Errorf("sta: non-physical moments (b1 = %g)", b1)
	}
	elmoreDelay := b1 * math.Ln2

	disc := b1*b1 - 4*b2
	if b2 <= 0 || disc < 0 {
		return elmoreDelay, nil
	}
	sq := math.Sqrt(disc)
	s1 := (-b1 + sq) / (2 * b2)
	s2 := (-b1 - sq) / (2 * b2)
	if s1 >= 0 || s2 >= 0 || s1 == s2 {
		return elmoreDelay, nil
	}
	// Step response v(t) = 1 + k1·e^{s1 t} + k2·e^{s2 t}.
	k1 := 1 / (b2 * s1 * (s1 - s2))
	k2 := 1 / (b2 * s2 * (s2 - s1))
	v := func(t float64) float64 {
		return 1 + k1*math.Exp(s1*t) + k2*math.Exp(s2*t)
	}
	// Bisect for the 50% crossing; v is monotone for RC responses.
	lo, hi := 0.0, 2*elmoreDelay/math.Ln2
	for v(hi) < 0.5 {
		hi *= 2
		if hi > 1e6*elmoreDelay {
			return elmoreDelay, nil
		}
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if v(mid) < 0.5 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
