package sta

import (
	"fmt"
	"math"

	"repro/internal/rcnet"
	"repro/internal/wire"
)

// AggressorMode selects what the victim wire's two neighbors do
// during a coupled-line simulation.
type AggressorMode int

const (
	// Quiet neighbors hold a constant rail.
	Quiet AggressorMode = iota
	// Opposite neighbors switch simultaneously in the opposite
	// direction — the worst-case Miller scenario.
	Opposite
	// Same neighbors switch simultaneously in the same direction —
	// the best case (coupling capacitance carries no net charge).
	Same
)

func (m AggressorMode) String() string {
	switch m {
	case Opposite:
		return "opposite"
	case Same:
		return "same"
	default:
		return "quiet"
	}
}

// CoupledConfig describes a victim line with two identical aggressor
// neighbors, all three driven through linear (Thevenin) driver
// resistances — the classic crosstalk testbench, used here to
// validate the Miller-factor abstractions (the model's λ = 1.51, the
// golden engine's 2.0) against the actual coupled physics.
type CoupledConfig struct {
	// Seg is the victim's geometry (length, layer, width, spacing);
	// the style's Miller factor is irrelevant here — coupling is
	// simulated explicitly.
	Seg wire.Segment
	// Sections is the per-line discretization (default 24).
	Sections int
	// DriverR is each line's driver resistance (Ω).
	DriverR float64
	// LoadC is each line's receiver load (F).
	LoadC float64
	// InSlew is the victim input 10–90% transition time (s);
	// aggressors switch with the same slew, aligned in time.
	InSlew float64
	// Mode selects the aggressor activity.
	Mode AggressorMode
}

// SimulateCoupled runs a transient analysis of the three-line system
// (rising victim) and returns the victim's 50% delay from its source
// ramp and its far-end 10–90% slew. The system is linear, so one
// polarity suffices.
func SimulateCoupled(cfg CoupledConfig) (delay, outSlew float64, err error) {
	if err := cfg.Seg.Validate(); err != nil {
		return 0, 0, err
	}
	if cfg.DriverR <= 0 || cfg.InSlew <= 0 || cfg.LoadC < 0 {
		return 0, 0, fmt.Errorf("sta: bad coupled config (R=%g slew=%g load=%g)", cfg.DriverR, cfg.InSlew, cfg.LoadC)
	}
	n := cfg.Sections
	if n <= 0 {
		n = 24
	}

	// Per-line parasitics (explicit coupling: take raw ground and
	// one-sided coupling, not the style-folded values).
	rTot := cfg.Seg.Resistance()
	cgTot := wire.GroundCapPerMeter(cfg.Seg.Tech, cfg.Seg.Layer, cfg.Seg.Width) * cfg.Seg.Length
	ccTot := wire.CouplingCapPerMeter(cfg.Seg.Tech, cfg.Seg.Layer, cfg.Seg.Spacing) * cfg.Seg.Length

	rSec := rTot / float64(n)
	cgSec := cgTot / float64(n)
	ccSec := ccTot / float64(n)

	// Node layout: per line k ∈ {0:victim, 1, 2}, nodes k·n … k·n+n−1
	// from driver to receiver. Each line has its own source through
	// DriverR into node k·n.
	total := 3 * n
	g := 1 / rSec
	gDrv := 1 / cfg.DriverR

	// Conductance matrix (constant) and capacitance structure.
	G := make([][]float64, total)
	C := make([][]float64, total)
	for i := range G {
		G[i] = make([]float64, total)
		C[i] = make([]float64, total)
	}
	idx := func(line, sec int) int { return line*n + sec }
	for line := 0; line < 3; line++ {
		for s := 0; s < n; s++ {
			i := idx(line, s)
			// Series resistance toward the driver.
			if s == 0 {
				G[i][i] += gDrv
			} else {
				j := idx(line, s-1)
				G[i][i] += g
				G[i][j] -= g
				G[j][j] += g
				G[j][i] -= g
			}
			// Ground capacitance (plus receiver load at the end).
			C[i][i] += cgSec
			if s == n-1 {
				C[i][i] += cfg.LoadC
			}
		}
	}
	// Coupling: victim (line 0) to each aggressor, section by
	// section. Aggressor-to-aggressor coupling is negligible (they
	// are not adjacent).
	for s := 0; s < n; s++ {
		v := idx(0, s)
		for _, line := range []int{1, 2} {
			a := idx(line, s)
			C[v][v] += ccSec
			C[a][a] += ccSec
			C[v][a] -= ccSec
			C[a][v] -= ccSec
		}
	}

	vdd := cfg.Seg.Tech.Vdd
	ramp := cfg.InSlew / 0.8
	t0 := 0.1 * ramp
	victimSrc := func(t float64) float64 {
		switch {
		case t <= t0:
			return 0
		case t >= t0+ramp:
			return vdd
		default:
			return vdd * (t - t0) / ramp
		}
	}
	aggSrc := func(t float64) float64 {
		switch cfg.Mode {
		case Opposite:
			return vdd - victimSrc(t)
		case Same:
			return victimSrc(t)
		default:
			return 0
		}
	}

	// Initial conditions: steady state at t=0.
	v := make([]float64, total)
	for s := 0; s < n; s++ {
		for _, line := range []int{1, 2} {
			v[idx(line, s)] = aggSrc(0)
		}
	}

	// Timebase from the victim's Elmore scale.
	elmore := rTot * (cgTot + 2*ccTot + cfg.LoadC)
	stop := t0 + ramp + 14*elmore + 3*cfg.InSlew
	dt := math.Min(cfg.InSlew, math.Max(elmore, 1e-14)) / 60
	if floor := stop / 30000; dt < floor {
		dt = floor
	}

	// Backward Euler: (G + C/dt)·v' = C/dt·v + b(t). The matrix is
	// constant: LU-factor once.
	A := make([][]float64, total)
	for i := range A {
		A[i] = make([]float64, total)
		for j := range A[i] {
			A[i][j] = G[i][j] + C[i][j]/dt
		}
	}
	lu, perm, err := luFactor(A)
	if err != nil {
		return 0, 0, fmt.Errorf("sta: coupled system singular: %w", err)
	}

	rhs := make([]float64, total)
	var times, vFar, vSrc []float64
	times = append(times, 0)
	vFar = append(vFar, v[idx(0, n-1)])
	vSrc = append(vSrc, victimSrc(0))

	steps := int(math.Ceil(stop / dt))
	for sNum := 1; sNum <= steps; sNum++ {
		t := float64(sNum) * dt
		for i := 0; i < total; i++ {
			acc := 0.0
			row := C[i]
			for j, c := range row {
				if c != 0 {
					acc += c * v[j]
				}
			}
			rhs[i] = acc / dt
		}
		rhs[idx(0, 0)] += gDrv * victimSrc(t)
		rhs[idx(1, 0)] += gDrv * aggSrc(t)
		rhs[idx(2, 0)] += gDrv * aggSrc(t)
		luSolve(lu, perm, rhs, v)
		times = append(times, t)
		vFar = append(vFar, v[idx(0, n-1)])
		vSrc = append(vSrc, victimSrc(t))
	}

	cross := func(wave []float64, th float64) (float64, bool) {
		for i := 1; i < len(wave); i++ {
			if wave[i-1] < th && wave[i] >= th {
				f := (th - wave[i-1]) / (wave[i] - wave[i-1])
				return times[i-1] + f*(times[i]-times[i-1]), true
			}
		}
		return 0, false
	}
	tSrc, ok := cross(vSrc, vdd/2)
	if !ok {
		return 0, 0, fmt.Errorf("sta: victim source never switched")
	}
	tFar, ok := cross(vFar, vdd/2)
	if !ok {
		return 0, 0, fmt.Errorf("sta: victim far end never crossed 50%% (window %g)", stop)
	}
	t10, ok1 := cross(vFar, 0.1*vdd)
	t90, ok2 := cross(vFar, 0.9*vdd)
	if !ok1 || !ok2 {
		return 0, 0, fmt.Errorf("sta: victim transition incomplete")
	}
	return tFar - tSrc, t90 - t10, nil
}

// luFactor performs LU decomposition with partial pivoting, returning
// the packed factors and the permutation.
func luFactor(a [][]float64) ([][]float64, []int, error) {
	n := len(a)
	lu := make([][]float64, n)
	for i := range lu {
		lu[i] = append([]float64(nil), a[i]...)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		p, best := col, math.Abs(lu[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu[r][col]); v > best {
				best, p = v, r
			}
		}
		if best == 0 {
			return nil, nil, fmt.Errorf("singular at column %d", col)
		}
		lu[col], lu[p] = lu[p], lu[col]
		perm[col], perm[p] = perm[p], perm[col]
		inv := 1 / lu[col][col]
		for r := col + 1; r < n; r++ {
			f := lu[r][col] * inv
			lu[r][col] = f
			if f == 0 {
				continue
			}
			for c := col + 1; c < n; c++ {
				lu[r][c] -= f * lu[col][c]
			}
		}
	}
	return lu, perm, nil
}

// luSolve solves LU·x = b[perm] into out.
func luSolve(lu [][]float64, perm []int, b []float64, out []float64) {
	n := len(lu)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[perm[i]]
		for j := 0; j < i; j++ {
			s -= lu[i][j] * y[j]
		}
		y[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= lu[i][j] * out[j]
		}
		out[i] = s / lu[i][i]
	}
}

// EffectiveMiller extracts the empirical Miller factor of a coupled
// configuration: the k for which an *uncoupled* line with capacitance
// c_g + k·c_c (per the victim's geometry) matches the coupled
// simulation's delay. This is the quantity the paper's λ and the
// golden engine's 2.0 approximate.
func EffectiveMiller(cfg CoupledConfig) (float64, error) {
	target, _, err := SimulateCoupled(cfg)
	if err != nil {
		return 0, err
	}
	single := func(k float64) (float64, error) {
		return simulateSingleFolded(cfg, k)
	}
	lo, hi := 0.0, 4.0
	dLo, err := single(lo)
	if err != nil {
		return 0, err
	}
	dHi, err := single(hi)
	if err != nil {
		return 0, err
	}
	if target <= dLo {
		return 0, nil
	}
	if target >= dHi {
		return hi, nil
	}
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		d, err := single(mid)
		if err != nil {
			return 0, err
		}
		if d < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// simulateSingleFolded runs the victim line alone with its coupling
// capacitance folded to ground scaled by k.
func simulateSingleFolded(cfg CoupledConfig, k float64) (float64, error) {
	n := cfg.Sections
	if n <= 0 {
		n = 24
	}
	rTot := cfg.Seg.Resistance()
	cgTot := wire.GroundCapPerMeter(cfg.Seg.Tech, cfg.Seg.Layer, cfg.Seg.Width) * cfg.Seg.Length
	ccTot := 2 * wire.CouplingCapPerMeter(cfg.Seg.Tech, cfg.Seg.Layer, cfg.Seg.Spacing) * cfg.Seg.Length

	// Build a driver-resistance-prefixed RC ladder: ladderSim drives
	// node 0 through R[0], which is exactly the Thevenin driver.
	lad := &rcnet.Ladder{
		R: make([]float64, n+1),
		C: make([]float64, n+1),
	}
	lad.R[0] = cfg.DriverR
	for i := 1; i <= n; i++ {
		lad.R[i] = rTot / float64(n)
		lad.C[i] = (cgTot + k*ccTot) / float64(n)
	}
	lad.C[n] += cfg.LoadC
	d, _, err := ladderSim(lad, cfg.Seg.Tech.Vdd, cfg.InSlew)
	return d, err
}
