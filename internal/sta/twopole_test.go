package sta

import (
	"math"
	"testing"

	"repro/internal/rcnet"
	"repro/internal/tech"
	"repro/internal/wire"
)

func TestTwoPoleLumpedRC(t *testing.T) {
	// Single-section lumped RC: both the two-pole method and the
	// exact answer are RC·ln2.
	lad := &rcnet.Ladder{R: []float64{1e3}, C: []float64{1e-12}}
	d, err := TwoPoleDelay(lad)
	if err != nil {
		t.Fatal(err)
	}
	want := 1e-9 * math.Ln2
	if math.Abs(d-want) > 0.02*want {
		t.Fatalf("two-pole lumped delay %g, want %g", d, want)
	}
}

func TestTwoPoleMatchesTransient(t *testing.T) {
	// Distributed lines of several shapes: the analytic two-pole
	// delay must track the exact transient (step-driven) delay
	// within a few percent and sit below the Elmore bound.
	cases := []struct {
		name string
		lad  *rcnet.Ladder
	}{
		{"uniform-20", uniformLadder(20, 1e3, 1e-12)},
		{"uniform-60", uniformLadder(60, 2e3, 0.5e-12)},
		{"loaded", loadedLadder(30, 500, 0.4e-12, 50e-15)},
	}
	for _, c := range cases {
		dTP, err := TwoPoleDelay(c.lad)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		dTr, _, err := ladderSim(c.lad, 1.0, 1e-13) // near-step
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if e := math.Abs(dTP-dTr) / dTr; e > 0.06 {
			t.Errorf("%s: two-pole %g vs transient %g (%.1f%%)", c.name, dTP, dTr, e*100)
		}
		if dTP >= c.lad.ElmoreDelay() {
			t.Errorf("%s: two-pole above Elmore bound", c.name)
		}
	}
}

func TestTwoPoleOnRealWire(t *testing.T) {
	seg := wire.NewSegment(tech.MustLookup("65nm"), 2e-3, wire.SWSS)
	lad, err := rcnet.FromSegment(seg, 40, GoldenMiller, 10e-15)
	if err != nil {
		t.Fatal(err)
	}
	dTP, err := TwoPoleDelay(lad)
	if err != nil {
		t.Fatal(err)
	}
	dTr, _, err := ladderSim(lad, 1.0, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(dTP-dTr) / dTr; e > 0.06 {
		t.Fatalf("two-pole %g vs transient %g (%.1f%%)", dTP, dTr, e*100)
	}
}

func TestTwoPoleErrors(t *testing.T) {
	if _, err := TwoPoleDelay(&rcnet.Ladder{}); err == nil {
		t.Fatal("empty ladder accepted")
	}
}

func uniformLadder(n int, rTot, cTot float64) *rcnet.Ladder {
	lad := &rcnet.Ladder{R: make([]float64, n), C: make([]float64, n)}
	for i := 0; i < n; i++ {
		lad.R[i] = rTot / float64(n)
		lad.C[i] = cTot / float64(n)
	}
	return lad
}

func loadedLadder(n int, rTot, cTot, load float64) *rcnet.Ladder {
	lad := uniformLadder(n, rTot, cTot)
	lad.C[n-1] += load
	return lad
}

func BenchmarkTwoPoleVsTransient(b *testing.B) {
	seg := wire.NewSegment(tech.MustLookup("65nm"), 2e-3, wire.SWSS)
	lad, err := rcnet.FromSegment(seg, 40, GoldenMiller, 10e-15)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("two-pole", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := TwoPoleDelay(lad); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("transient", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := ladderSim(lad, 1.0, 1e-13); err != nil {
				b.Fatal(err)
			}
		}
	})
}
