// Package sta is the golden timing engine of the reproduction — the
// stand-in for PrimeTime SI sign-off analysis. A buffered interconnect
// is evaluated stage by stage: each repeater's delay and output slew
// come from its characterized NLDM tables (as PrimeTime reads Liberty),
// and each wire segment's delay and slew degradation come from a full
// backward-Euler transient solution of the distributed RC ladder (the
// role PrimeTime's post-AWE interconnect engine plays), with coupling
// capacitance amplified by the worst-case Miller factor.
package sta

import (
	"fmt"
	"math"

	"repro/internal/rcnet"
)

// GoldenMiller is the Miller factor the golden analysis applies to
// coupling capacitance under worst-case simultaneous opposite
// switching of both neighbors.
const GoldenMiller = 2.0

// ladderSim solves the RC ladder driven by a saturated ramp and
// returns the 50%–50% wire delay (far-node crossing minus source
// crossing) and the far-node 10–90% slew. The ladder is linear and
// polarity-symmetric, so a single rising analysis covers both edges.
func ladderSim(lad *rcnet.Ladder, vdd, inSlew float64) (wireDelay, outSlew float64, err error) {
	n := lad.Sections()
	if n == 0 {
		return 0, 0, fmt.Errorf("sta: empty ladder")
	}
	if inSlew <= 0 {
		return 0, 0, fmt.Errorf("sta: non-positive input slew %g", inSlew)
	}
	elmore := lad.ElmoreDelay()
	ramp := inSlew / 0.8
	t0 := 0.1 * ramp
	source := func(t float64) float64 {
		switch {
		case t <= t0:
			return 0
		case t >= t0+ramp:
			return vdd
		default:
			return vdd * (t - t0) / ramp
		}
	}

	// Conductances between nodes: g[0] connects source to node 0.
	g := make([]float64, n)
	for i, r := range lad.R {
		if r <= 0 {
			return 0, 0, fmt.Errorf("sta: non-positive section resistance")
		}
		g[i] = 1 / r
	}

	stop := t0 + ramp + 12*elmore
	if min := t0 + ramp + 3*inSlew; stop < min {
		stop = min
	}
	dt := math.Min(inSlew, math.Max(elmore, 1e-15)) / 80
	if floor := stop / 40000; dt < floor {
		dt = floor
	}

	// Tridiagonal system: (G + C/dt)·v_new = C/dt·v_old + b(t).
	diag := make([]float64, n)
	lower := make([]float64, n) // lower[i] couples node i to i-1
	upper := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = g[i] + lad.C[i]/dt
		if i+1 < n {
			diag[i] += g[i+1]
			upper[i] = -g[i+1]
			lower[i+1] = -g[i+1]
		}
	}

	v := make([]float64, n)
	rhs := make([]float64, n)
	cp := make([]float64, n) // Thomas scratch
	dp := make([]float64, n)

	// Sampled far-node and source waveforms for measurement.
	var times, vFar, vSrc []float64
	times = append(times, 0)
	vFar = append(vFar, 0)
	vSrc = append(vSrc, source(0))

	steps := int(math.Ceil(stop / dt))
	for s := 1; s <= steps; s++ {
		t := float64(s) * dt
		vs := source(t)
		for i := 0; i < n; i++ {
			rhs[i] = lad.C[i] / dt * v[i]
		}
		rhs[0] += g[0] * vs
		// Thomas algorithm.
		cp[0] = upper[0] / diag[0]
		dp[0] = rhs[0] / diag[0]
		for i := 1; i < n; i++ {
			m := diag[i] - lower[i]*cp[i-1]
			if i+1 < n {
				cp[i] = upper[i] / m
			}
			dp[i] = (rhs[i] - lower[i]*dp[i-1]) / m
		}
		v[n-1] = dp[n-1]
		for i := n - 2; i >= 0; i-- {
			v[i] = dp[i] - cp[i]*v[i+1]
		}
		times = append(times, t)
		vFar = append(vFar, v[n-1])
		vSrc = append(vSrc, vs)
	}

	cross := func(wave []float64, th float64) (float64, bool) {
		for i := 1; i < len(wave); i++ {
			if wave[i-1] < th && wave[i] >= th {
				f := (th - wave[i-1]) / (wave[i] - wave[i-1])
				return times[i-1] + f*(times[i]-times[i-1]), true
			}
		}
		return 0, false
	}
	tSrc50, ok := cross(vSrc, 0.5*vdd)
	if !ok {
		return 0, 0, fmt.Errorf("sta: source never crossed 50%%")
	}
	tFar50, ok := cross(vFar, 0.5*vdd)
	if !ok {
		return 0, 0, fmt.Errorf("sta: far node never crossed 50%% (window %g s)", stop)
	}
	t10, ok1 := cross(vFar, 0.1*vdd)
	t90, ok2 := cross(vFar, 0.9*vdd)
	if !ok1 || !ok2 {
		return 0, 0, fmt.Errorf("sta: far node did not complete transition (window %g s)", stop)
	}
	return tFar50 - tSrc50, t90 - t10, nil
}
