package sta

import (
	"testing"

	"repro/internal/tech"
	"repro/internal/wire"
)

func coupledCfg(mode AggressorMode) CoupledConfig {
	tc := tech.MustLookup("90nm")
	return CoupledConfig{
		Seg:      wire.NewSegment(tc, 1e-3, wire.SWSS),
		DriverR:  200,
		LoadC:    10e-15,
		InSlew:   100e-12,
		Mode:     mode,
		Sections: 16,
	}
}

func TestCoupledOrdering(t *testing.T) {
	// The fundamental crosstalk ordering: opposite-switching
	// aggressors slow the victim, same-direction aggressors speed
	// it up, quiet neighbors sit in between.
	dQuiet, _, err := SimulateCoupled(coupledCfg(Quiet))
	if err != nil {
		t.Fatal(err)
	}
	dOpp, _, err := SimulateCoupled(coupledCfg(Opposite))
	if err != nil {
		t.Fatal(err)
	}
	dSame, _, err := SimulateCoupled(coupledCfg(Same))
	if err != nil {
		t.Fatal(err)
	}
	if !(dOpp > dQuiet && dQuiet > dSame) {
		t.Fatalf("crosstalk ordering violated: opp=%.2fps quiet=%.2fps same=%.2fps",
			dOpp*1e12, dQuiet*1e12, dSame*1e12)
	}
	// The penalty should be substantial at minimum spacing (coupling
	// is a large fraction of total cap at 90nm).
	if (dOpp-dQuiet)/dQuiet < 0.10 {
		t.Fatalf("opposite-switching penalty only %.1f%%", (dOpp-dQuiet)/dQuiet*100)
	}
}

// The headline validation: the empirical Miller factor of worst-case
// switching lands in the band the abstractions use — above the quiet
// value 1, around the paper's λ=1.51 and the sign-off bound of 2.
func TestEffectiveMillerBand(t *testing.T) {
	k, err := EffectiveMiller(coupledCfg(Opposite))
	if err != nil {
		t.Fatal(err)
	}
	if k < 1.2 || k > 2.4 {
		t.Fatalf("worst-case effective Miller %.2f outside [1.2, 2.4]", k)
	}
	kQuiet, err := EffectiveMiller(coupledCfg(Quiet))
	if err != nil {
		t.Fatal(err)
	}
	if kQuiet < 0.7 || kQuiet > 1.3 {
		t.Fatalf("quiet effective Miller %.2f should be ~1", kQuiet)
	}
	kSame, err := EffectiveMiller(coupledCfg(Same))
	if err != nil {
		t.Fatal(err)
	}
	if kSame > 0.5 {
		t.Fatalf("same-direction effective Miller %.2f should be ~0", kSame)
	}
	if !(kSame < kQuiet && kQuiet < k) {
		t.Fatalf("Miller ordering violated: %g / %g / %g", kSame, kQuiet, k)
	}
}

func TestCoupledSpacingReducesPenalty(t *testing.T) {
	near := coupledCfg(Opposite)
	far := near
	far.Seg.Spacing = 3 * near.Seg.Spacing
	dNear, _, err := SimulateCoupled(near)
	if err != nil {
		t.Fatal(err)
	}
	dFar, _, err := SimulateCoupled(far)
	if err != nil {
		t.Fatal(err)
	}
	if !(dFar < dNear) {
		t.Fatalf("spacing did not reduce crosstalk delay: %g vs %g", dFar, dNear)
	}
}

func TestCoupledValidation(t *testing.T) {
	bad := coupledCfg(Quiet)
	bad.DriverR = 0
	if _, _, err := SimulateCoupled(bad); err == nil {
		t.Fatal("zero driver resistance accepted")
	}
	bad = coupledCfg(Quiet)
	bad.InSlew = 0
	if _, _, err := SimulateCoupled(bad); err == nil {
		t.Fatal("zero slew accepted")
	}
	bad = coupledCfg(Quiet)
	bad.Seg.Length = -1
	if _, _, err := SimulateCoupled(bad); err == nil {
		t.Fatal("invalid segment accepted")
	}
	if Quiet.String() != "quiet" || Opposite.String() != "opposite" || Same.String() != "same" {
		t.Fatal("mode strings")
	}
}

func BenchmarkSimulateCoupled(b *testing.B) {
	cfg := coupledCfg(Opposite)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := SimulateCoupled(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
