package sta

import (
	"fmt"

	"repro/internal/liberty"
	"repro/internal/rcnet"
	"repro/internal/wire"
)

// DefaultSections is the per-stage RC-ladder discretization used when
// Line.Sections is zero. Thirty-two sections put the discretization
// error of a uniform line well below a percent.
const DefaultSections = 32

// Line is a uniformly buffered interconnect: N identical repeaters at
// equal spacing along a wire, each driving a wire segment of length
// L/N whose far end feeds the next repeater (the final segment feeds a
// receiver with the same input capacitance).
type Line struct {
	// Cell is the repeater used at every stage.
	Cell *liberty.Cell
	// N is the repeater count (≥ 1).
	N int
	// Segment describes the full wire: total length, layer, style.
	Segment wire.Segment
	// InputSlew is the 10–90% transition time at the first
	// repeater's input (the paper's Table II uses 300 ps).
	InputSlew float64
	// Sections is the per-stage ladder discretization
	// (DefaultSections when zero).
	Sections int
}

// StageTiming records one stage of the golden analysis.
type StageTiming struct {
	// GateDelay is the repeater's NLDM delay (s).
	GateDelay float64
	// WireDelay is the transient RC delay of the stage's wire (s).
	WireDelay float64
	// OutSlew is the slew at the stage's far end, input to the next
	// stage (s).
	OutSlew float64
}

// Result is a golden analysis outcome.
type Result struct {
	// Delay is the worst (max over starting edge polarity) total
	// delay from the first repeater's input to the receiver (s).
	Delay float64
	// RiseDelay and FallDelay are the totals for an initial
	// rising/falling transition at the line input.
	RiseDelay, FallDelay float64
	// OutputSlew is the slew at the receiver for the worst edge.
	OutputSlew float64
	// Stages holds the per-stage breakdown for the worst edge.
	Stages []StageTiming
}

// Analyze runs the golden stage-by-stage timing analysis.
func (l *Line) Analyze() (*Result, error) {
	if l.Cell == nil {
		return nil, fmt.Errorf("sta: line has no repeater cell")
	}
	if l.N < 1 {
		return nil, fmt.Errorf("sta: need at least one repeater, got %d", l.N)
	}
	if l.InputSlew <= 0 {
		return nil, fmt.Errorf("sta: non-positive input slew")
	}
	if err := l.Segment.Validate(); err != nil {
		return nil, err
	}

	rise, stagesRise, err := l.analyzeEdge(true)
	if err != nil {
		return nil, err
	}
	fall, stagesFall, err := l.analyzeEdge(false)
	if err != nil {
		return nil, err
	}
	res := &Result{RiseDelay: rise, FallDelay: fall}
	if rise >= fall {
		res.Delay = rise
		res.Stages = stagesRise
	} else {
		res.Delay = fall
		res.Stages = stagesFall
	}
	res.OutputSlew = res.Stages[len(res.Stages)-1].OutSlew
	return res, nil
}

// analyzeEdge propagates one starting polarity through all N stages.
// outRising tracks the direction of the *output* transition of the
// current repeater; inverters flip it per stage, buffers do not.
func (l *Line) analyzeEdge(startRising bool) (float64, []StageTiming, error) {
	sections := l.Sections
	if sections <= 0 {
		sections = DefaultSections
	}
	stageSeg := l.Segment
	stageSeg.Length = l.Segment.Length / float64(l.N)

	tc := l.Segment.Tech
	slew := l.InputSlew
	outRising := startRising
	if l.Cell.Kind == liberty.Inverter {
		outRising = !startRising
	}

	total := 0.0
	stages := make([]StageTiming, 0, l.N)
	for i := 0; i < l.N; i++ {
		// Receiver at the end of this stage: the next repeater, or
		// an identical receiving gate after the final segment.
		loadCin := l.Cell.InputCap

		lad, err := rcnet.FromSegment(stageSeg, sections, GoldenMiller, loadCin)
		if err != nil {
			return 0, nil, err
		}
		cTotal := lad.TotalC()

		gateDelay := l.Cell.Delay(outRising, slew, cTotal)
		midSlew := l.Cell.OutSlew(outRising, slew, cTotal)
		if gateDelay <= 0 || midSlew <= 0 {
			return 0, nil, fmt.Errorf("sta: non-positive NLDM result at stage %d (slew=%g load=%g)", i, slew, cTotal)
		}

		wireDelay, farSlew, err := ladderSim(lad, tc.Vdd, midSlew)
		if err != nil {
			return 0, nil, fmt.Errorf("sta: stage %d wire: %w", i, err)
		}

		total += gateDelay + wireDelay
		stages = append(stages, StageTiming{GateDelay: gateDelay, WireDelay: wireDelay, OutSlew: farSlew})

		slew = farSlew
		if l.Cell.Kind == liberty.Inverter {
			outRising = !outRising
		}
	}
	return total, stages, nil
}
