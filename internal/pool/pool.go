// Package pool provides a minimal bounded worker pool for fanning out
// independent CPU-bound evaluations — an errgroup in miniature, with
// deterministic error selection (the lowest-index failure wins) so a
// parallel sweep reports the same error its serial counterpart would.
//
// The synthesis and sizing hot paths evaluate many independently
// costed candidates per step; this package is how they spread that
// work across cores without each call site reinventing goroutine
// bookkeeping. ForEachCtx adds cooperative cancellation: workers stop
// claiming new indices once the context is done, so a caller can bound
// or interrupt a sweep without poisoning the determinism contract of
// uncancelled runs.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// Hot-path observability (see internal/obs): items processed, fan-out
// runs, and the live worker level. Updates are lock-free atomics and
// do not affect results.
var (
	metItems         = obs.NewCounter("pool.items")
	metRuns          = obs.NewCounter("pool.runs")
	metWorkers       = obs.NewCounter("pool.workers_spawned")
	metActiveWorkers = obs.NewGauge("pool.workers_active")
	metPanics        = obs.NewCounter("pool.panics_recovered")
)

// Workers resolves a requested worker count for n items: requested
// values below 1 mean "all cores" (runtime.GOMAXPROCS(0)); the result
// is capped at n and never below 1.
func Workers(requested, n int) int {
	w := requested
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// PanicError is the error ForEach reports when fn(i) panicked: the
// panic is recovered in the worker (so sibling goroutines drain
// instead of the process dying mid-flight) and attributed to its item
// index, selected under the same lowest-index rule as ordinary errors.
type PanicError struct {
	// Index is the item whose fn panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in item %d: %v", e.Index, e.Value)
}

// callWorker invokes fn(i, worker), converting a panic into a
// *PanicError so one bad item cannot crash the process with the index
// lost. The "pool.item" fault point fires inside the recover scope, so
// injected panics exercise exactly the recovery path a panicking fn
// would.
func callWorker(fn func(i, worker int) error, i, worker int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			metPanics.Inc()
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	if err := faultinject.Hit("pool.item"); err != nil {
		return err
	}
	return fn(i, worker)
}

// ForEach runs fn(i) for every i in [0, n) on at most `workers`
// goroutines; see ForEachCtx for the full contract. It never cancels:
// the background context is used.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), workers, n, fn)
}

// ForEachCtx runs fn(i) for every i in [0, n) on at most `workers`
// goroutines (workers < 1 means all cores) and returns the error of
// the lowest failing index, matching what a serial loop would report.
// A panicking fn is recovered and reported as a *PanicError under the
// same lowest-index rule. Once any call fails, unclaimed indices are
// skipped; calls already in flight run to completion. fn must be safe
// for concurrent invocation. With one worker (or n < 2) the loop runs
// inline with no goroutines at all.
//
// Cancellation is cooperative and checked before each index claim:
// when ctx is done before every index completed, ForEachCtx returns
// ctx.Err() after in-flight calls drain. Uncancelled runs behave
// bit-identically to ForEach.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	return ForEachWorkerCtx(ctx, workers, n, func(i, _ int) error { return fn(i) })
}

// ForEachWorker runs fn(i, worker) for every i in [0, n); see
// ForEachWorkerCtx for the full contract. It never cancels: the
// background context is used.
func ForEachWorker(workers, n int, fn func(i, worker int) error) error {
	return ForEachWorkerCtx(context.Background(), workers, n, fn)
}

// ForEachWorkerCtx is ForEachCtx for callers that keep per-worker
// scratch state: fn additionally receives the claiming worker's id, a
// stable integer in [0, Workers(workers, n)). Exactly one goroutine
// holds a given id for the duration of one call, so fn may freely
// reuse scratch buffers indexed by worker id without locking — the
// zero-steady-state-allocation hot paths (the Monte Carlo sampling
// kernel) hoist their per-sample buffers this way. Scratch indexed by
// worker id may also be carried across consecutive ForEachWorkerCtx
// calls: the WaitGroup join of the previous call happens-before the
// goroutines of the next, so no synchronization is needed.
//
// Everything else matches ForEachCtx: lowest-index error selection,
// panic recovery into *PanicError, cooperative cancellation, and an
// inline (goroutine-free) loop with worker id 0 when only one worker
// runs.
func ForEachWorkerCtx(ctx context.Context, workers, n int, fn func(i, worker int) error) error {
	if n <= 0 {
		return nil
	}
	metRuns.Inc()
	w := Workers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := callWorker(fn, i, 0); err != nil {
				return err
			}
			metItems.Inc()
		}
		return nil
	}

	var (
		next      atomic.Int64
		failed    atomic.Bool
		cancelled atomic.Bool
		wg        sync.WaitGroup
	)
	errs := make([]error, n)
	wg.Add(w)
	metWorkers.Add(int64(w))
	for g := 0; g < w; g++ {
		go func(worker int) {
			metActiveWorkers.Add(1)
			defer func() {
				metActiveWorkers.Add(-1)
				wg.Done()
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				if err := callWorker(fn, i, worker); err != nil {
					errs[i] = err
					failed.Store(true)
				} else {
					metItems.Inc()
				}
			}
		}(g)
	}
	wg.Wait()
	// Indices are claimed in ascending order, so absent cancellation
	// every index below a recorded failure ran to completion: the
	// first non-nil entry is exactly the error the serial loop would
	// have returned. A cancelled run may have skipped arbitrary
	// indices, so its result is ctx.Err() unless an fn error was
	// recorded first — either way the caller must discard the partial
	// output.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if cancelled.Load() {
		return ctx.Err()
	}
	return nil
}
