// Package pool provides a minimal bounded worker pool for fanning out
// independent CPU-bound evaluations — an errgroup in miniature, with
// deterministic error selection (the lowest-index failure wins) so a
// parallel sweep reports the same error its serial counterpart would.
//
// The synthesis and sizing hot paths evaluate many independently
// costed candidates per step; this package is how they spread that
// work across cores without each call site reinventing goroutine
// bookkeeping.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count for n items: requested
// values below 1 mean "all cores" (runtime.GOMAXPROCS(0)); the result
// is capped at n and never below 1.
func Workers(requested, n int) int {
	w := requested
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(i) for every i in [0, n) on at most `workers`
// goroutines (workers < 1 means all cores) and returns the error of
// the lowest failing index, matching what a serial loop would report.
// Once any call fails, unclaimed indices are skipped; calls already in
// flight run to completion. fn must be safe for concurrent
// invocation. With one worker (or n < 2) the loop runs inline with no
// goroutines at all.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	errs := make([]error, n)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	// Indices are claimed in ascending order, so every index below a
	// recorded failure ran to completion: the first non-nil entry is
	// exactly the error the serial loop would have returned.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
