package pool

import (
	"errors"
	"testing"

	"repro/internal/faultinject"
)

// TestForEachInjectedItemError: an injected per-item error is selected
// under the same lowest-index rule as an ordinary fn error.
func TestForEachInjectedItemError(t *testing.T) {
	defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
		"pool.item": {Kind: faultinject.Error, Times: 1},
	}})()
	err := ForEach(4, 64, func(i int) error { return nil })
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("got %v, want the injected error", err)
	}
}

// TestForEachInjectedPanicRecovered: an injected panic fires inside the
// worker's recover scope and surfaces as a *PanicError, not a process
// crash.
func TestForEachInjectedPanicRecovered(t *testing.T) {
	defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
		"pool.item": {Kind: faultinject.Panic, Times: 1},
	}})()
	err := ForEach(4, 64, func(i int) error { return nil })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want a *PanicError", err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("recovered panic lost its stack")
	}
}

// TestForEachInjectedDelayStillCompletes: injected per-item delays slow
// the sweep but never change its result.
func TestForEachInjectedDelayStillCompletes(t *testing.T) {
	defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
		"pool.item": {Kind: faultinject.Delay, Delay: 0, Every: 2},
	}})()
	ran := make([]bool, 32)
	if err := ForEach(4, len(ran), func(i int) error {
		ran[i] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, ok := range ran {
		if !ok {
			t.Fatalf("item %d skipped", i)
		}
	}
}
