package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	cases := []struct {
		requested, n, want int
	}{
		{0, 100, runtime.GOMAXPROCS(0)},
		{-3, 100, runtime.GOMAXPROCS(0)},
		{4, 100, 4},
		{8, 3, 3},
		{1, 10, 1},
		{0, 0, 1},
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.n, got, c.want)
		}
	}
}

func TestForEachVisitsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7} {
		const n = 1000
		var hits [n]atomic.Int32
		if err := ForEach(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return fmt.Errorf("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachLowestIndexErrorWins(t *testing.T) {
	// Indices 3 and 7 both fail; the serial-equivalent error is 3's.
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 10, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail-3" {
			t.Fatalf("workers=%d: got %v, want fail-3", workers, err)
		}
	}
}

func TestForEachStopsClaimingAfterFailure(t *testing.T) {
	// With a single worker the loop must stop at the first failure,
	// exactly like a serial loop.
	ran := 0
	err := ForEach(1, 100, func(i int) error {
		ran++
		if i == 5 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || ran != 6 {
		t.Fatalf("ran %d items (err %v), want 6", ran, err)
	}
}

func TestForEachRecoversPanicWithIndex(t *testing.T) {
	// A panicking item must not crash the process; it must surface as
	// the deterministic lowest-index error with the index attributed,
	// under every worker count (including the inline serial path).
	for _, workers := range []int{1, 4, 0} {
		err := ForEach(workers, 10, func(i int) error {
			if i == 3 || i == 7 {
				panic(fmt.Sprintf("kaboom-%d", i))
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: got %v (%T), want *PanicError", workers, err, err)
		}
		if pe.Index != 3 {
			t.Fatalf("workers=%d: panic attributed to item %d, want 3", workers, pe.Index)
		}
		if want := "panic in item 3: kaboom-3"; err.Error() != want {
			t.Fatalf("workers=%d: error %q, want %q", workers, err.Error(), want)
		}
		if !strings.Contains(string(pe.Stack), "pool_test") {
			t.Fatalf("workers=%d: stack trace missing the panic site", workers)
		}
	}
}

func TestForEachPanicLosesToLowerError(t *testing.T) {
	// An ordinary error at a lower index beats a panic at a higher
	// one — the same serial-equivalence rule as error vs. error.
	err := ForEach(4, 10, func(i int) error {
		switch i {
		case 2:
			return fmt.Errorf("plain-2")
		case 8:
			panic("late panic")
		}
		return nil
	})
	if err == nil || err.Error() != "plain-2" {
		t.Fatalf("got %v, want plain-2", err)
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := ForEachCtx(ctx, workers, 100, func(i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if workers == 1 && ran.Load() != 0 {
			t.Fatalf("serial path ran %d items under a dead context", ran.Load())
		}
	}
}

func TestForEachCtxCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	const n = 10000
	err := ForEachCtx(ctx, 4, n, func(i int) error {
		if ran.Add(1) == 16 {
			cancel()
		}
		time.Sleep(50 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= n {
		t.Fatalf("cancellation never stopped the sweep (%d items ran)", got)
	}
}

func TestForEachCtxCompletedRunIdenticalToForEach(t *testing.T) {
	// A live context must not change anything: every index visited
	// exactly once, nil error.
	ctx := context.Background()
	const n = 500
	var hits [n]atomic.Int32
	if err := ForEachCtx(ctx, 3, n, func(i int) error {
		hits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

func TestForEachWorkerIDsInRange(t *testing.T) {
	// Every item must see a worker id in [0, Workers(workers, n)) and
	// be visited exactly once, for serial, bounded, and all-cores runs.
	for _, workers := range []int{1, 3, 0} {
		const n = 500
		bound := Workers(workers, n)
		var visits [n]atomic.Int32
		if err := ForEachWorker(workers, n, func(i, worker int) error {
			if worker < 0 || worker >= bound {
				return fmt.Errorf("item %d ran on worker %d, want [0,%d)", i, worker, bound)
			}
			visits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range visits {
			if got := visits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

// TestForEachWorkerScratchExclusive pins the property the worker id
// exists for: each id is held by exactly one goroutine at a time, so
// plain (non-atomic) writes into per-worker scratch are race-free.
// Under -race this test fails if two goroutines ever share an id.
func TestForEachWorkerScratchExclusive(t *testing.T) {
	const n, workers = 2000, 4
	scratch := make([]int, Workers(workers, n))
	if err := ForEachWorker(workers, n, func(i, worker int) error {
		scratch[worker]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range scratch {
		total += c
	}
	if total != n {
		t.Fatalf("per-worker counters sum to %d, want %d", total, n)
	}
}

func TestForEachWorkerSerialUsesWorkerZero(t *testing.T) {
	if err := ForEachWorker(1, 50, func(i, worker int) error {
		if worker != 0 {
			return fmt.Errorf("serial path handed out worker id %d", worker)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachWorkerCtxCancelAndError(t *testing.T) {
	// The worker-id variant keeps ForEachCtx's contracts: a dead
	// context surfaces as context.Canceled, and the lowest-index error
	// wins over a higher one.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ForEachWorkerCtx(ctx, 4, 100, func(i, worker int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	err := ForEachWorkerCtx(context.Background(), 4, 10, func(i, worker int) error {
		if i == 2 || i == 8 {
			return fmt.Errorf("fail-%d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail-2" {
		t.Fatalf("got %v, want fail-2", err)
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	if err := ForEach(workers, 200, func(i int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent calls, bound is %d", p, workers)
	}
}
