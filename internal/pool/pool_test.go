package pool

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	cases := []struct {
		requested, n, want int
	}{
		{0, 100, runtime.GOMAXPROCS(0)},
		{-3, 100, runtime.GOMAXPROCS(0)},
		{4, 100, 4},
		{8, 3, 3},
		{1, 10, 1},
		{0, 0, 1},
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.n, got, c.want)
		}
	}
}

func TestForEachVisitsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7} {
		const n = 1000
		var hits [n]atomic.Int32
		if err := ForEach(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return fmt.Errorf("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachLowestIndexErrorWins(t *testing.T) {
	// Indices 3 and 7 both fail; the serial-equivalent error is 3's.
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 10, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail-3" {
			t.Fatalf("workers=%d: got %v, want fail-3", workers, err)
		}
	}
}

func TestForEachStopsClaimingAfterFailure(t *testing.T) {
	// With a single worker the loop must stop at the first failure,
	// exactly like a serial loop.
	ran := 0
	err := ForEach(1, 100, func(i int) error {
		ran++
		if i == 5 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || ran != 6 {
		t.Fatalf("ran %d items (err %v), want 6", ran, err)
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	if err := ForEach(workers, 200, func(i int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent calls, bound is %d", p, workers)
	}
}
