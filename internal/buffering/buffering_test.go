package buffering

import (
	"errors"
	"math"
	"testing"

	"repro/internal/liberty"
	"repro/internal/model"
	"repro/internal/tech"
	"repro/internal/wire"
)

func opts90() Options {
	tc := tech.MustLookup("90nm")
	return Options{
		Coeffs: model.MustDefault("90nm"),
		Power:  model.PowerParams{Activity: 0.15, Freq: tc.Clock},
	}
}

func TestDelayOptimalBasic(t *testing.T) {
	tc := tech.MustLookup("90nm")
	seg := wire.NewSegment(tc, 10e-3, wire.SWSS)
	d, err := DelayOptimal(seg, opts90())
	if err != nil {
		t.Fatal(err)
	}
	if d.N < 2 {
		t.Fatalf("10mm line buffered with only %d repeaters", d.N)
	}
	if d.Delay <= 0 || d.Power.Total() <= 0 {
		t.Fatalf("degenerate design %+v", d)
	}
	// Delay-optimal buffering famously picks large repeaters.
	if d.Size < 12 {
		t.Fatalf("delay-optimal size %g suspiciously small", d.Size)
	}
}

func TestDelayOptimalBeatsArbitraryDesigns(t *testing.T) {
	tc := tech.MustLookup("90nm")
	seg := wire.NewSegment(tc, 5e-3, wire.SWSS)
	o := opts90().withDefaults()
	best, err := DelayOptimal(seg, o)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive check over the whole candidate space: nothing beats
	// the ternary-search result.
	for _, size := range o.Sizes {
		for n := 1; n <= o.MaxN; n++ {
			d, err := evaluate(seg, o, liberty.Inverter, size, n)
			if err != nil {
				t.Fatal(err)
			}
			if d.Delay < best.Delay*(1-1e-12) {
				t.Fatalf("exhaustive found better design: size=%g n=%d delay=%g < %g (size=%g n=%d)",
					size, n, d.Delay, best.Delay, best.Size, best.N)
			}
		}
	}
}

func TestOptimizeWeightZeroIsDelayOptimal(t *testing.T) {
	tc := tech.MustLookup("90nm")
	seg := wire.NewSegment(tc, 8e-3, wire.SWSS)
	o := opts90()
	a, err := DelayOptimal(seg, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(seg, o) // PowerWeight 0
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("w=0 Optimize differs from DelayOptimal: %+v vs %+v", a, b)
	}
}

// Section III-D's headline shape: a power-weighted objective recovers
// large power savings for a small delay penalty (the paper reports
// ~20% power for ~2% delay; our substrate reproduces the same
// many-to-one tradeoff at roughly 8–16% power for single-digit delay
// cost — see EXPERIMENTS.md).
func TestPowerWeightedTradeoff(t *testing.T) {
	for _, name := range []string{"90nm", "65nm", "45nm"} {
		tc := tech.MustLookup(name)
		seg := wire.NewSegment(tc, 10e-3, wire.SWSS)
		o := Options{
			Coeffs: model.MustDefault(name),
			Power:  model.PowerParams{Activity: 0.15, Freq: tc.Clock},
		}
		ref, err := DelayOptimal(seg, o)
		if err != nil {
			t.Fatal(err)
		}
		o.PowerWeight = 0.6
		opt, err := Optimize(seg, o)
		if err != nil {
			t.Fatal(err)
		}
		powerSave := 1 - opt.Power.Total()/ref.Power.Total()
		delayCost := opt.Delay/ref.Delay - 1
		if powerSave < 0.08 {
			t.Errorf("%s: power saving %.1f%% too small", name, powerSave*100)
		}
		if delayCost < 0 {
			t.Errorf("%s: weighted design faster than delay-optimal?", name)
		}
		if delayCost > 0.12 {
			t.Errorf("%s: delay cost %.1f%% too large for w=0.6", name, delayCost*100)
		}
		// The tradeoff must be favorable: percent power saved per
		// percent delay given up comfortably above 1.
		if delayCost > 0 && powerSave/delayCost < 1.2 {
			t.Errorf("%s: tradeoff ratio %.2f not favorable", name, powerSave/delayCost)
		}
		// And the weighted design must abandon the impractically
		// large delay-optimal repeaters.
		if opt.Size >= ref.Size {
			t.Errorf("%s: weighted design size %g not below delay-optimal %g", name, opt.Size, ref.Size)
		}
	}
}

func TestOptionValidation(t *testing.T) {
	tc := tech.MustLookup("90nm")
	seg := wire.NewSegment(tc, 5e-3, wire.SWSS)
	if _, err := DelayOptimal(seg, Options{}); err == nil {
		t.Fatal("nil coefficients accepted")
	}
	o := opts90()
	o.PowerWeight = 1.5
	if _, err := Optimize(seg, o); err == nil {
		t.Fatal("weight > 1 accepted")
	}
	o = opts90()
	o.PowerWeight = 0.5
	o.Power = model.PowerParams{}
	if _, err := Optimize(seg, o); err == nil {
		t.Fatal("power weight without operating point accepted")
	}
	bad := seg
	bad.Length = 0
	if _, err := DelayOptimal(bad, opts90()); err == nil {
		t.Fatal("invalid segment accepted")
	}
}

func TestStaggeredStyleFasterSameGeometry(t *testing.T) {
	// With the Miller factor zeroed, the optimizer should find a
	// staggered design at least as fast as the SWSS one.
	tc := tech.MustLookup("90nm")
	o := opts90()
	swss, err := DelayOptimal(wire.NewSegment(tc, 10e-3, wire.SWSS), o)
	if err != nil {
		t.Fatal(err)
	}
	stag, err := DelayOptimal(wire.NewSegment(tc, 10e-3, wire.Staggered), o)
	if err != nil {
		t.Fatal(err)
	}
	if stag.Delay > swss.Delay {
		t.Fatalf("staggered optimum %g slower than SWSS %g", stag.Delay, swss.Delay)
	}
}

func TestBufferCandidates(t *testing.T) {
	tc := tech.MustLookup("90nm")
	seg := wire.NewSegment(tc, 6e-3, wire.SWSS)
	o := opts90()
	o.Kinds = []liberty.CellKind{liberty.Inverter, liberty.Buffer}
	d, err := DelayOptimal(seg, o)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != liberty.Inverter && d.Kind != liberty.Buffer {
		t.Fatalf("unexpected kind %v", d.Kind)
	}
	if d.Delay <= 0 {
		t.Fatal("bad design")
	}
}

func TestSearchNMatchesExhaustiveWeighted(t *testing.T) {
	// The unimodal ternary search must agree with brute force for a
	// weighted objective across lengths.
	tc := tech.MustLookup("65nm")
	o := Options{
		Coeffs:      model.MustDefault("65nm"),
		Power:       model.PowerParams{Activity: 0.15, Freq: tc.Clock},
		PowerWeight: 0.4,
	}
	for _, L := range []float64{2e-3, 7e-3, 14e-3} {
		seg := wire.NewSegment(tc, L, wire.SWSS)
		got, err := Optimize(seg, o)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force with the same normalization.
		od := o.withDefaults()
		ref, err := DelayOptimal(seg, od)
		if err != nil {
			t.Fatal(err)
		}
		cost := func(d Design) float64 {
			return 0.6*d.Delay/ref.Delay + 0.4*d.Power.Total()/ref.Power.Total()
		}
		bestCost := math.Inf(1)
		for _, size := range od.Sizes {
			for n := 1; n <= od.MaxN; n++ {
				d, err := evaluate(seg, od, liberty.Inverter, size, n)
				if err != nil {
					t.Fatal(err)
				}
				if c := cost(d); c < bestCost {
					bestCost = c
				}
			}
		}
		if c := cost(got); c > bestCost*(1+1e-9) {
			t.Fatalf("L=%g: search cost %g worse than exhaustive %g", L, c, bestCost)
		}
	}
}

func BenchmarkOptimize(b *testing.B) {
	tc := tech.MustLookup("90nm")
	seg := wire.NewSegment(tc, 10e-3, wire.SWSS)
	o := opts90()
	o.PowerWeight = 0.5
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(seg, o); err != nil {
			b.Fatal(err)
		}
	}
}

func TestConstrainedAcceptAllMatchesOptimize(t *testing.T) {
	tc := tech.MustLookup("90nm")
	seg := wire.NewSegment(tc, 5e-3, wire.SWSS)
	o := opts90()
	o.PowerWeight = 0.5
	want, err := Optimize(seg, o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Constrained(seg, o, func(Design) (bool, error) { return true, nil })
	if err != nil {
		t.Fatal(err)
	}
	// Accepting everything must hand back the unconstrained optimum:
	// the candidate ordering and the optimizer agree on cost.
	if got.Kind != want.Kind || got.Size != want.Size || got.N != want.N {
		t.Fatalf("accept-all Constrained picked %v×INVD%g n=%d, Optimize picked %v×INVD%g n=%d",
			got.Kind, got.Size, got.N, want.Kind, want.Size, want.N)
	}
}

func TestConstrainedVisitsInCostOrder(t *testing.T) {
	tc := tech.MustLookup("90nm")
	seg := wire.NewSegment(tc, 5e-3, wire.SWSS)
	o := opts90()
	o.PowerWeight = 0.5
	// Accept the third candidate seen: the result must be exactly the
	// third-cheapest design, proving the predicate runs in cost order
	// (what lets callers put an expensive Monte Carlo check behind it).
	seen := 0
	var firstTwo []Design
	got, err := Constrained(seg, o, func(d Design) (bool, error) {
		seen++
		if seen < 3 {
			firstTwo = append(firstTwo, d)
			return false, nil
		}
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(firstTwo) != 2 {
		t.Fatalf("predicate saw %d rejections before accepting", len(firstTwo))
	}
	opt, err := Optimize(seg, o)
	if err != nil {
		t.Fatal(err)
	}
	if firstTwo[0].Size != opt.Size || firstTwo[0].N != opt.N {
		t.Fatalf("first candidate %+v is not the unconstrained optimum %+v", firstTwo[0], opt)
	}
	if got == firstTwo[0] || got == firstTwo[1] {
		t.Fatal("accepted design repeats a rejected candidate")
	}
}

func TestConstrainedNoFeasible(t *testing.T) {
	tc := tech.MustLookup("90nm")
	seg := wire.NewSegment(tc, 5e-3, wire.SWSS)
	_, err := Constrained(seg, opts90(), func(Design) (bool, error) { return false, nil })
	if !errors.Is(err, ErrNoFeasibleDesign) {
		t.Fatalf("want ErrNoFeasibleDesign, got %v", err)
	}
}

func TestConstrainedPropagatesPredicateError(t *testing.T) {
	tc := tech.MustLookup("90nm")
	seg := wire.NewSegment(tc, 5e-3, wire.SWSS)
	boom := errors.New("mc exploded")
	_, err := Constrained(seg, opts90(), func(Design) (bool, error) { return false, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("predicate error lost: %v", err)
	}
}
