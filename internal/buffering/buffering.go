// Package buffering implements the paper's buffering-scheme
// optimization (Section III-D): choosing the repeater count and size
// for a buffered interconnect by exhaustively searching candidate
// repeaters and searching the repeater count for the best value of a
// weighted delay–power objective, all evaluated with the calibrated
// predictive models (no SPICE in the loop — the paper's stated
// advantage over prior approaches).
//
// Delay-optimal buffering produces the "extremely large repeaters
// having sizes that are never used in practice"; the weighted
// objective backs off size and count to save power at small delay
// cost. Staggered insertion is expressed through the wire design
// style (wire.Staggered), which zeroes the Miller factor in the delay
// model while keeping the coupling charge in the power model.
package buffering

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/liberty"
	"repro/internal/model"
	"repro/internal/wire"
)

// ExtendedSizes is the optimizer's default candidate set: the
// characterized library sizes plus the larger drive strengths a pure
// delay-optimal solution reaches for — the paper's "extremely large
// repeaters having sizes that are never used in practice". The
// closed-form models extrapolate in 1/w, so evaluating them is exactly
// what makes the search SPICE-free.
var ExtendedSizes = []float64{4, 6, 8, 12, 16, 20, 30, 40, 60, 80, 120, 160, 240}

// Design is one evaluated buffering solution.
type Design struct {
	Kind liberty.CellKind
	Size float64
	N    int
	// Delay is the model-predicted worst-edge line delay (s).
	Delay float64
	// Power is the model-predicted per-bit total power (W).
	Power model.LinePower
	// OutputSlew is the predicted receiver slew (s).
	OutputSlew float64
}

// Options configures the search.
type Options struct {
	// Coeffs is the calibrated model used for every evaluation.
	Coeffs *model.Coefficients
	// Kinds lists candidate repeater kinds; default inverters only
	// (the paper's Table II uses INVD cells).
	Kinds []liberty.CellKind
	// Sizes lists candidate drive strengths; default ExtendedSizes.
	Sizes []float64
	// MaxN bounds the repeater count; default 64.
	MaxN int
	// InputSlew is the line input slew; default 300 ps (the paper's
	// stimulus).
	InputSlew float64
	// Power supplies the dynamic-power operating point; required for
	// PowerWeight > 0.
	Power model.PowerParams
	// PowerWeight w ∈ [0,1): the objective is
	// (1−w)·delay/delay* + w·power/power*, normalized by the
	// delay-optimal design's metrics. Zero selects pure
	// delay-optimal buffering.
	PowerWeight float64
}

func (o Options) withDefaults() Options {
	if o.Kinds == nil {
		o.Kinds = []liberty.CellKind{liberty.Inverter}
	}
	if o.Sizes == nil {
		o.Sizes = ExtendedSizes
	}
	if o.MaxN == 0 {
		o.MaxN = 64
	}
	if o.InputSlew == 0 {
		o.InputSlew = 300e-12
	}
	return o
}

func (o Options) validate() error {
	if o.Coeffs == nil {
		return fmt.Errorf("buffering: nil coefficients")
	}
	if o.PowerWeight < 0 || o.PowerWeight >= 1 {
		return fmt.Errorf("buffering: power weight %g outside [0,1)", o.PowerWeight)
	}
	if o.PowerWeight > 0 && (o.Power.Freq <= 0 || o.Power.Activity <= 0) {
		return fmt.Errorf("buffering: power weight requires activity and frequency")
	}
	return nil
}

// evaluate runs the model for one candidate.
func evaluate(seg wire.Segment, o Options, kind liberty.CellKind, size float64, n int) (Design, error) {
	spec := model.LineSpec{Kind: kind, Size: size, N: n, Segment: seg, InputSlew: o.InputSlew}
	timing, err := o.Coeffs.LineDelay(spec)
	if err != nil {
		return Design{}, err
	}
	d := Design{Kind: kind, Size: size, N: n, Delay: timing.Delay, OutputSlew: timing.OutputSlew}
	pp := o.Power
	if pp.Freq <= 0 {
		// Delay-only searches still report power at a nominal
		// operating point for the caller's information.
		pp = model.PowerParams{Activity: 0.15, Freq: seg.Tech.Clock}
	}
	p, err := o.Coeffs.LinePower(spec, pp)
	if err != nil {
		return Design{}, err
	}
	d.Power = p
	return d, nil
}

// searchN finds the repeater count in [1, maxN] minimizing cost for a
// fixed repeater, using the binary (ternary-style) search the paper
// describes: the objective is unimodal in N for buffered lines —
// too few repeaters leave quadratic wire delay, too many pay gate
// delay and power. A final local sweep guards against plateau
// round-off.
func searchN(seg wire.Segment, o Options, kind liberty.CellKind, size float64, maxN int,
	cost func(Design) float64) (Design, error) {

	lo, hi := 1, maxN
	eval := func(n int) (Design, float64, error) {
		d, err := evaluate(seg, o, kind, size, n)
		if err != nil {
			return Design{}, 0, err
		}
		return d, cost(d), nil
	}
	for hi-lo > 3 {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		_, c1, err := eval(m1)
		if err != nil {
			return Design{}, err
		}
		_, c2, err := eval(m2)
		if err != nil {
			return Design{}, err
		}
		if c1 <= c2 {
			hi = m2 - 1
		} else {
			lo = m1 + 1
		}
	}
	best := Design{}
	bestCost := math.Inf(1)
	for n := lo; n <= hi; n++ {
		d, c, err := eval(n)
		if err != nil {
			return Design{}, err
		}
		if c < bestCost {
			best, bestCost = d, c
		}
	}
	if math.IsInf(bestCost, 1) {
		return Design{}, fmt.Errorf("buffering: empty search range")
	}
	return best, nil
}

// DelayOptimal returns the pure delay-optimal design over the
// candidate repeaters.
func DelayOptimal(seg wire.Segment, opts Options) (Design, error) {
	o := opts.withDefaults()
	if err := o.validate(); err != nil {
		return Design{}, err
	}
	if err := seg.Validate(); err != nil {
		return Design{}, err
	}
	best := Design{}
	bestDelay := math.Inf(1)
	for _, kind := range o.Kinds {
		for _, size := range o.Sizes {
			d, err := searchN(seg, o, kind, size, o.MaxN, func(d Design) float64 { return d.Delay })
			if err != nil {
				return Design{}, err
			}
			if d.Delay < bestDelay {
				best, bestDelay = d, d.Delay
			}
		}
	}
	return best, nil
}

// Optimize returns the design minimizing the weighted objective
// (1−w)·delay/delay* + w·power/power*, where the starred quantities
// come from the delay-optimal design. With w = 0 it reduces to
// DelayOptimal.
func Optimize(seg wire.Segment, opts Options) (Design, error) {
	o := opts.withDefaults()
	if err := o.validate(); err != nil {
		return Design{}, err
	}
	ref, err := DelayOptimal(seg, o)
	if err != nil {
		return Design{}, err
	}
	if o.PowerWeight == 0 {
		return ref, nil
	}
	dRef, pRef := ref.Delay, ref.Power.Total()
	if dRef <= 0 || pRef <= 0 {
		return Design{}, fmt.Errorf("buffering: degenerate reference design")
	}
	cost := func(d Design) float64 {
		return (1-o.PowerWeight)*d.Delay/dRef + o.PowerWeight*d.Power.Total()/pRef
	}
	best := Design{}
	bestCost := math.Inf(1)
	for _, kind := range o.Kinds {
		for _, size := range o.Sizes {
			d, err := searchN(seg, o, kind, size, o.MaxN, cost)
			if err != nil {
				return Design{}, err
			}
			if c := cost(d); c < bestCost {
				best, bestCost = d, c
			}
		}
	}
	return best, nil
}

// ErrNoFeasibleDesign reports that no candidate satisfied a
// Constrained search's acceptance predicate.
var ErrNoFeasibleDesign = fmt.Errorf("buffering: no candidate design satisfies the constraint")

// Constrained returns the lowest-cost design (under the same weighted
// delay–power objective Optimize minimizes) whose acceptance predicate
// holds. The full (kind, size, count) candidate grid is evaluated with
// the closed-form models — cheap — then candidates are offered to
// accept in ascending cost order, so an expensive predicate (a Monte
// Carlo yield estimate, a golden re-analysis) runs as few times as
// possible: the first accepted candidate is the answer. This is the
// titled paper's sizing-for-yield move expressed over the repeater
// (size, count) space: back away from the unconstrained optimum by the
// minimum cost that restores feasibility.
//
// The candidate order is deterministic: cost ties break toward smaller
// size, then fewer repeaters. Returns ErrNoFeasibleDesign (wrapped)
// when every candidate is rejected.
func Constrained(seg wire.Segment, opts Options, accept func(Design) (bool, error)) (Design, error) {
	o := opts.withDefaults()
	if err := o.validate(); err != nil {
		return Design{}, err
	}
	if accept == nil {
		return Design{}, fmt.Errorf("buffering: nil acceptance predicate")
	}
	cands, err := Candidates(seg, o)
	if err != nil {
		return Design{}, err
	}
	for _, cand := range cands {
		ok, err := accept(cand)
		if err != nil {
			return Design{}, err
		}
		if ok {
			return cand, nil
		}
	}
	return Design{}, fmt.Errorf("%w (searched %d candidates)", ErrNoFeasibleDesign, len(cands))
}

// Candidates evaluates the full (kind, size, count) candidate grid
// with the closed-form models and returns it in ascending cost order
// under the same weighted delay–power objective Optimize minimizes
// (cost ties break toward smaller size, then fewer repeaters — the
// deterministic order Constrained offers candidates in). Callers that
// evaluate many candidates at once (the shared-sample yield sweep)
// consume the grid directly instead of going through the one-at-a-time
// acceptance walk.
func Candidates(seg wire.Segment, opts Options) ([]Design, error) {
	o := opts.withDefaults()
	if err := o.validate(); err != nil {
		return nil, err
	}
	ref, err := DelayOptimal(seg, o)
	if err != nil {
		return nil, err
	}
	dRef, pRef := ref.Delay, ref.Power.Total()
	if dRef <= 0 || pRef <= 0 {
		return nil, fmt.Errorf("buffering: degenerate reference design")
	}
	cost := func(d Design) float64 {
		return (1-o.PowerWeight)*d.Delay/dRef + o.PowerWeight*d.Power.Total()/pRef
	}

	type candidate struct {
		d Design
		c float64
	}
	cands := make([]candidate, 0, len(o.Kinds)*len(o.Sizes)*o.MaxN)
	for _, kind := range o.Kinds {
		for _, size := range o.Sizes {
			for n := 1; n <= o.MaxN; n++ {
				d, err := evaluate(seg, o, kind, size, n)
				if err != nil {
					return nil, err
				}
				cands = append(cands, candidate{d, cost(d)})
			}
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.c != b.c {
			return a.c < b.c
		}
		if a.d.Size != b.d.Size {
			return a.d.Size < b.d.Size
		}
		return a.d.N < b.d.N
	})
	out := make([]Design, len(cands))
	for i, cand := range cands {
		out[i] = cand.d
	}
	return out, nil
}
