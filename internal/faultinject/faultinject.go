// Package faultinject is a deterministic, seedable fault-point
// registry for robustness testing: hot paths declare named points
// (noc.cache.compute, pool.item, variation.batch,
// liberty.characterize, predintd.handle, ...) and tests activate a
// Plan that makes chosen points fail — with an error, a transient
// (retryable) error, a panic, a delay, or a synthetic cancellation —
// on a deterministic schedule. This is how the serving layer's
// shedding, degradation, retry, and drain paths are *proved* to fire
// rather than assumed.
//
// Production cost: with no plan active, Hit is one atomic pointer
// load and a nil check (sub-nanosecond next to the evaluations the
// instrumented seams perform). Builds with the `prod` tag compile the
// registry out entirely — Hit becomes a constant no-op the inliner
// erases (see disabled.go) — so a production binary cannot be made to
// inject faults at all.
//
// Determinism: a point's firing schedule depends only on the Plan
// (Seed, the point's config) and the point's hit index, never on
// scheduling. Counters are per-activation, so a test's restore func
// returns the registry to its prior state.
package faultinject

import (
	"errors"
	"time"
)

// Sentinel errors. Every injected error wraps ErrInjected; transient
// injected errors additionally wrap ErrTransient, which retry loops
// (noc.DesignCache compute) treat as retryable.
var (
	ErrInjected  = errors.New("faultinject: injected fault")
	ErrTransient = errors.New("faultinject: transient")
)

// IsTransient reports whether err is (or wraps) a transient injected
// fault — the class a retry-with-backoff loop should retry.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// Kind selects what a firing fault point does.
type Kind int

const (
	// Error returns a permanent injected error (wraps ErrInjected).
	Error Kind = iota
	// Transient returns a retryable injected error (wraps both
	// ErrTransient and ErrInjected).
	Transient
	// Panic panics with a descriptive string value.
	Panic
	// Delay sleeps for Point.Delay, then lets the call proceed.
	Delay
	// Cancel returns context.Canceled, emulating a cancellation
	// surfacing from the instrumented seam.
	Cancel
)

// Point configures one fault point inside a Plan. The first After
// hits never fire; the remaining schedule is resolved per (shifted)
// hit index, in priority order:
//
//   - Times > 0: fire on the first Times eligible hits only.
//   - Every > 0: fire on eligible hits 0, Every, 2·Every, ...
//   - Prob > 0: fire when the deterministic per-hit hash (keyed by the
//     plan seed, the point name, and the hit index) falls below Prob.
//   - otherwise: fire on every eligible hit.
type Point struct {
	Kind Kind
	// After skips the first After hits entirely, letting a fault fire
	// mid-run rather than on first contact.
	After int
	Times int
	Every int
	Prob  float64
	// Delay is the sleep for Kind Delay.
	Delay time.Duration
}

// Plan is one activation's worth of fault points. Activate copies the
// Points map; mutating the original after activation has no effect.
type Plan struct {
	// Seed keys the Prob schedule's per-hit hash.
	Seed uint64
	// Points maps point names to their configuration.
	Points map[string]Point
}

// Uniform is the deterministic per-hit hash behind Prob schedules,
// exported so tests can predict exactly which hits fire: a
// splitmix64-style mix of (seed, fnv1a(name), hit index) mapped to
// [0, 1). It is pure arithmetic and present in every build.
func Uniform(seed uint64, name string, i uint64) float64 {
	const fnvOffset = 14695981039346656037
	const fnvPrime = 1099511628211
	h := uint64(fnvOffset)
	for j := 0; j < len(name); j++ {
		h ^= uint64(name[j])
		h *= fnvPrime
	}
	x := seed ^ h ^ (i * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
