//go:build prod

package faultinject

// Compiled reports whether the registry is present in this build:
// `prod` builds stub every entry point to a constant no-op, so a
// production binary cannot be made to inject faults.
const Compiled = false

// Activate is a no-op in prod builds; the restore func does nothing.
func Activate(Plan) (restore func()) { return func() {} }

// Enabled always reports false in prod builds.
func Enabled() bool { return false }

// Hits always reports zero in prod builds.
func Hits(string) uint64 { return 0 }

// Hit is a constant no-op in prod builds; the inliner erases it from
// the instrumented call sites.
func Hit(string) error { return nil }
