//go:build !prod

package faultinject

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// Compiled reports whether the registry is present in this build.
// Builds with the `prod` tag compile it out (see disabled.go).
const Compiled = true

// state is one activation: an immutable plan plus per-point hit
// counters. It is published through an atomic pointer so Hit on the
// hot path is a single load with no locks.
type state struct {
	plan Plan
	hits map[string]*atomic.Uint64
}

var active atomic.Pointer[state]

// Activate installs a plan and returns a restore func that reinstates
// whatever was active before (normally nothing). Tests use
//
//	defer faultinject.Activate(plan)()
//
// Concurrent activations are last-writer-wins; tests within one
// package serialize naturally. The plan's Points map is copied.
func Activate(p Plan) (restore func()) {
	s := &state{plan: Plan{Seed: p.Seed, Points: make(map[string]Point, len(p.Points))}}
	s.hits = make(map[string]*atomic.Uint64, len(p.Points))
	for name, pt := range p.Points {
		s.plan.Points[name] = pt
		s.hits[name] = &atomic.Uint64{}
	}
	prev := active.Swap(s)
	return func() { active.Store(prev) }
}

// Enabled reports whether a plan is currently active.
func Enabled() bool { return active.Load() != nil }

// Hits returns how many times the named point was reached under the
// current activation (fired or not); 0 when inactive or unconfigured.
func Hits(name string) uint64 {
	s := active.Load()
	if s == nil {
		return 0
	}
	c, ok := s.hits[name]
	if !ok {
		return 0
	}
	return c.Load()
}

// Hit is the instrumentation call sites place at a fault point. With
// no active plan, or no configuration for this point, it returns nil
// immediately. A firing Error/Transient/Cancel point returns the
// corresponding error; a Delay point sleeps then returns nil; a Panic
// point panics.
func Hit(name string) error {
	s := active.Load()
	if s == nil {
		return nil
	}
	pt, ok := s.plan.Points[name]
	if !ok {
		return nil
	}
	i := s.hits[name].Add(1) - 1
	if !fires(s.plan.Seed, name, pt, i) {
		return nil
	}
	switch pt.Kind {
	case Error:
		return fmt.Errorf("%s (hit %d): %w", name, i, ErrInjected)
	case Transient:
		return fmt.Errorf("%s (hit %d): %w (%w)", name, i, ErrTransient, ErrInjected)
	case Panic:
		panic(fmt.Sprintf("faultinject: panic at %s (hit %d)", name, i))
	case Delay:
		time.Sleep(pt.Delay)
		return nil
	case Cancel:
		return fmt.Errorf("%s (hit %d): %w", name, i, context.Canceled)
	default:
		return fmt.Errorf("%s (hit %d): unknown kind %d: %w", name, i, pt.Kind, ErrInjected)
	}
}

// fires resolves the deterministic per-hit schedule.
func fires(seed uint64, name string, pt Point, i uint64) bool {
	if pt.After > 0 {
		if i < uint64(pt.After) {
			return false
		}
		i -= uint64(pt.After)
	}
	switch {
	case pt.Times > 0:
		return i < uint64(pt.Times)
	case pt.Every > 0:
		return i%uint64(pt.Every) == 0
	case pt.Prob > 0:
		return Uniform(seed, name, i) < pt.Prob
	default:
		return true
	}
}
