package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestInactiveIsNoOp(t *testing.T) {
	if Enabled() {
		t.Fatal("registry active with no plan")
	}
	if err := Hit("anything"); err != nil {
		t.Fatalf("inactive Hit returned %v", err)
	}
	if Hits("anything") != 0 {
		t.Fatal("inactive Hits non-zero")
	}
}

func TestErrorAndTransientKinds(t *testing.T) {
	restore := Activate(Plan{Points: map[string]Point{
		"perm":  {Kind: Error},
		"trans": {Kind: Transient},
	}})
	defer restore()
	if !Enabled() {
		t.Fatal("plan not active")
	}
	perm := Hit("perm")
	if !errors.Is(perm, ErrInjected) {
		t.Fatalf("permanent fault = %v, want ErrInjected", perm)
	}
	if IsTransient(perm) {
		t.Fatal("permanent fault reported transient")
	}
	trans := Hit("trans")
	if !IsTransient(trans) || !errors.Is(trans, ErrInjected) {
		t.Fatalf("transient fault = %v, want ErrTransient wrapping ErrInjected", trans)
	}
	if err := Hit("unconfigured"); err != nil {
		t.Fatalf("unconfigured point fired: %v", err)
	}
}

func TestTimesSchedule(t *testing.T) {
	defer Activate(Plan{Points: map[string]Point{
		"p": {Kind: Error, Times: 2},
	}})()
	for i := 0; i < 5; i++ {
		err := Hit("p")
		if i < 2 && err == nil {
			t.Fatalf("hit %d did not fire", i)
		}
		if i >= 2 && err != nil {
			t.Fatalf("hit %d fired after Times exhausted: %v", i, err)
		}
	}
	if Hits("p") != 5 {
		t.Fatalf("Hits = %d, want 5", Hits("p"))
	}
}

func TestAfterSchedule(t *testing.T) {
	defer Activate(Plan{Points: map[string]Point{
		"p": {Kind: Error, After: 2, Times: 1},
	}})()
	var fired []int
	for i := 0; i < 6; i++ {
		if Hit("p") != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 1 || fired[0] != 2 {
		t.Fatalf("fired on %v, want [2]", fired)
	}
}

func TestEverySchedule(t *testing.T) {
	defer Activate(Plan{Points: map[string]Point{
		"p": {Kind: Error, Every: 3},
	}})()
	var fired []int
	for i := 0; i < 7; i++ {
		if Hit("p") != nil {
			fired = append(fired, i)
		}
	}
	want := []int{0, 3, 6}
	if len(fired) != len(want) {
		t.Fatalf("fired on %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on %v, want %v", fired, want)
		}
	}
}

// TestProbScheduleDeterministic pins that the Prob schedule is exactly
// the Uniform hash: the same plan replays the same firing pattern.
func TestProbScheduleDeterministic(t *testing.T) {
	const seed, prob = 42, 0.3
	run := func() []bool {
		defer Activate(Plan{Seed: seed, Points: map[string]Point{
			"p": {Kind: Error, Prob: prob},
		}})()
		out := make([]bool, 50)
		for i := range out {
			out[i] = Hit("p") != nil
		}
		return out
	}
	a, b := run(), run()
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at hit %d", i)
		}
		if a[i] != (Uniform(seed, "p", uint64(i)) < prob) {
			t.Fatalf("hit %d disagrees with Uniform", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("degenerate schedule: %d/%d fires", fires, len(a))
	}
}

func TestPanicKind(t *testing.T) {
	defer Activate(Plan{Points: map[string]Point{
		"p": {Kind: Panic},
	}})()
	defer func() {
		if recover() == nil {
			t.Fatal("Panic kind did not panic")
		}
	}()
	_ = Hit("p")
}

func TestDelayKind(t *testing.T) {
	defer Activate(Plan{Points: map[string]Point{
		"p": {Kind: Delay, Delay: 20 * time.Millisecond},
	}})()
	start := time.Now()
	if err := Hit("p"); err != nil {
		t.Fatalf("delay returned error %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delay slept %v, want ≥ 20ms", d)
	}
}

func TestCancelKind(t *testing.T) {
	defer Activate(Plan{Points: map[string]Point{
		"p": {Kind: Cancel},
	}})()
	if err := Hit("p"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel fault = %v, want context.Canceled", err)
	}
}

func TestRestoreReinstatesPrior(t *testing.T) {
	restoreA := Activate(Plan{Points: map[string]Point{"a": {Kind: Error}}})
	restoreB := Activate(Plan{Points: map[string]Point{"b": {Kind: Error}}})
	if Hit("a") != nil {
		t.Fatal("plan A active while B installed")
	}
	if Hit("b") == nil {
		t.Fatal("plan B not active")
	}
	restoreB()
	if Hit("a") == nil {
		t.Fatal("restore did not reinstate plan A")
	}
	restoreA()
	if Enabled() {
		t.Fatal("registry still active after final restore")
	}
}

// TestActivateCopiesPlan: mutating the caller's map after activation
// must not change the installed plan.
func TestActivateCopiesPlan(t *testing.T) {
	pts := map[string]Point{"p": {Kind: Error}}
	defer Activate(Plan{Points: pts})()
	delete(pts, "p")
	pts["q"] = Point{Kind: Error}
	if Hit("p") == nil {
		t.Fatal("deleting from the source map deactivated the point")
	}
	if Hit("q") != nil {
		t.Fatal("adding to the source map activated a point")
	}
}
