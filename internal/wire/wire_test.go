package wire

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tech"
)

func t90() *tech.Technology { return tech.MustLookup("90nm") }

func TestResistivityRisesAsWidthShrinks(t *testing.T) {
	tc := t90()
	wide := Resistivity(tc, 1e-6)
	narrow := Resistivity(tc, 100e-9)
	if narrow <= wide {
		t.Fatalf("scattering correction missing: ρ(100nm)=%g <= ρ(1µm)=%g", narrow, wide)
	}
	if wide < tc.RhoBulk {
		t.Fatalf("effective resistivity %g below bulk %g", wide, tc.RhoBulk)
	}
	// Very wide wires asymptote to bulk.
	if r := Resistivity(tc, 1e-3); (r-tc.RhoBulk)/tc.RhoBulk > 0.001 {
		t.Fatalf("wide-wire resistivity %g should approach bulk %g", r, tc.RhoBulk)
	}
}

func TestBarrierCorrectionIncreasesResistance(t *testing.T) {
	tc := t90()
	l := tc.Global
	corrected := ResistancePerMeter(tc, l, l.Width)
	classic := ClassicResistancePerMeter(tc, l, l.Width)
	if corrected <= classic {
		t.Fatalf("corrected R/m %g should exceed classic %g", corrected, classic)
	}
	// At 90nm global dimensions the combined correction is tens of
	// percent, not orders of magnitude.
	if ratio := corrected / classic; ratio > 2 {
		t.Fatalf("correction ratio %g implausibly large", ratio)
	}
}

func TestResistanceMagnitude(t *testing.T) {
	// Global wires at 90nm should be within tens of Ω/mm — the
	// regime in which buffered 1–15 mm lines make sense.
	tc := t90()
	rPerMM := ResistancePerMeter(tc, tc.Global, tc.Global.Width) * 1e-3
	if rPerMM < 10 || rPerMM > 500 {
		t.Fatalf("90nm global wire R = %g Ω/mm out of plausible range", rPerMM)
	}
}

func TestCapacitanceMagnitude(t *testing.T) {
	tc := t90()
	cg := GroundCapPerMeter(tc, tc.Global, tc.Global.Width)
	cc := CouplingCapPerMeter(tc, tc.Global, tc.Global.Spacing)
	total := cg + 2*cc
	// Total wire cap should be on the order of 0.1–0.4 fF/µm.
	if total < 50e-12 || total > 400e-12 {
		t.Fatalf("total wire cap %g F/m out of plausible range", total)
	}
	if cc <= 0 || cg <= 0 {
		t.Fatal("capacitances must be positive")
	}
}

func TestDegenerateGeometryIsFiniteButHuge(t *testing.T) {
	tc := t90()
	if r := ResistancePerMeter(tc, tc.Global, tc.Barrier); r < 1e9 {
		t.Fatalf("width below barrier budget should be effectively open, got %g", r)
	}
	if rho := Resistivity(tc, 2*tc.Barrier); math.IsInf(rho, 0) || math.IsNaN(rho) {
		t.Fatalf("degenerate resistivity not finite: %g", rho)
	}
}

func TestStyleMillerFactor(t *testing.T) {
	if SWSS.MillerFactor() != 1.51 {
		t.Fatalf("SWSS Miller = %g", SWSS.MillerFactor())
	}
	if Shielded.MillerFactor() != 0 || Staggered.MillerFactor() != 0 {
		t.Fatal("shielded/staggered must have zero Miller factor")
	}
}

func TestStyleStrings(t *testing.T) {
	if SWSS.String() != "SWSS" || Shielded.String() != "shielded" || Staggered.String() != "staggered" {
		t.Fatal("style strings")
	}
	if Style(99).String() == "" {
		t.Fatal("unknown style should still print")
	}
}

func TestSegmentValidate(t *testing.T) {
	tc := t90()
	good := NewSegment(tc, 1e-3, SWSS)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Length = 0
	if bad.Validate() == nil {
		t.Fatal("zero length accepted")
	}
	bad = good
	bad.Width = tc.Barrier
	if bad.Validate() == nil {
		t.Fatal("sub-barrier width accepted")
	}
	bad = good
	bad.Tech = nil
	if bad.Validate() == nil {
		t.Fatal("nil tech accepted")
	}
	bad = good
	bad.Spacing = -1
	if bad.Validate() == nil {
		t.Fatal("negative spacing accepted")
	}
}

func TestSegmentTotalsScaleWithLength(t *testing.T) {
	tc := t90()
	s1 := NewSegment(tc, 1e-3, SWSS)
	s2 := NewSegment(tc, 2e-3, SWSS)
	if math.Abs(s2.Resistance()/s1.Resistance()-2) > 1e-12 {
		t.Fatal("resistance not linear in length")
	}
	if math.Abs(s2.TotalCap()/s1.TotalCap()-2) > 1e-12 {
		t.Fatal("capacitance not linear in length")
	}
}

func TestShieldedMovesCouplingToGround(t *testing.T) {
	tc := t90()
	swss := NewSegment(tc, 1e-3, SWSS)
	sh := NewSegment(tc, 1e-3, Shielded)
	if sh.CouplingCap() != 0 {
		t.Fatal("shielded segment must have zero switching coupling")
	}
	if sh.GroundCap() <= swss.GroundCap() {
		t.Fatal("shield capacitance must appear as ground capacitance")
	}
	// Total driven capacitance is identical: the neighbors did not
	// move, they just stopped switching.
	if math.Abs(sh.TotalCap()-swss.TotalCap()) > 1e-18 {
		t.Fatalf("total cap changed: %g vs %g", sh.TotalCap(), swss.TotalCap())
	}
}

func TestStaggeredKeepsCouplingLoad(t *testing.T) {
	tc := t90()
	st := NewSegment(tc, 1e-3, Staggered)
	if st.CouplingCap() <= 0 {
		t.Fatal("staggered lines still drive coupling capacitance")
	}
	if st.Style.MillerFactor() != 0 {
		t.Fatal("staggered Miller factor must be zero")
	}
}

func TestDelayCaps(t *testing.T) {
	tc := t90()
	for _, style := range []Style{SWSS, Shielded, Staggered} {
		s := NewSegment(tc, 1e-3, style)
		quiet, coupled := s.DelayCaps()
		if math.Abs(quiet+coupled-s.TotalCap()) > 1e-18 {
			t.Errorf("%v: quiet+coupled != total", style)
		}
		switch style {
		case SWSS:
			if coupled <= 0 {
				t.Error("SWSS must expose coupled capacitance")
			}
		default:
			if coupled != 0 {
				t.Errorf("%v: coupled cap must be zero", style)
			}
		}
	}
}

func TestBusArea(t *testing.T) {
	tc := t90()
	s := NewSegment(tc, 1e-3, SWSS)
	n := 128
	got := s.BusArea(n)
	want := (float64(n)*(s.Width+s.Spacing) + s.Spacing) * s.Length
	if math.Abs(got-want) > 1e-18 {
		t.Fatalf("bus area %g, want %g", got, want)
	}
	sh := NewSegment(tc, 1e-3, Shielded)
	if sh.BusArea(n) <= got {
		t.Fatal("shielded bus must occupy more area")
	}
}

// Property: resistivity is monotonically non-increasing in width.
func TestQuickResistivityMonotone(t *testing.T) {
	tc := t90()
	f := func(a, b uint16) bool {
		w1 := 50e-9 + float64(a)*1e-9
		w2 := 50e-9 + float64(b)*1e-9
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		return Resistivity(tc, w1) >= Resistivity(tc, w2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: wider wires have lower total resistance but higher ground
// capacitance, for every technology.
func TestQuickWidthTradeoffAllNodes(t *testing.T) {
	for _, tc := range tech.All() {
		l := tc.Global
		w1, w2 := l.Width, 2*l.Width
		if ResistancePerMeter(tc, l, w2) >= ResistancePerMeter(tc, l, w1) {
			t.Errorf("%s: R/m not decreasing in width", tc.Name)
		}
		if GroundCapPerMeter(tc, l, w2) <= GroundCapPerMeter(tc, l, w1) {
			t.Errorf("%s: Cg/m not increasing in width", tc.Name)
		}
	}
}

// Property: scaled nodes have higher R/m and (roughly) lower cap/m per
// wire — the interconnect-scaling crisis the paper opens with.
func TestScalingMakesWiresWorse(t *testing.T) {
	all := tech.All()
	for i := 1; i < len(all); i++ {
		prev, cur := all[i-1], all[i]
		rPrev := ResistancePerMeter(prev, prev.Global, prev.Global.Width)
		rCur := ResistancePerMeter(cur, cur.Global, cur.Global.Width)
		if rCur <= rPrev {
			t.Errorf("%s→%s: global R/m did not increase (%g → %g)", prev.Name, cur.Name, rPrev, rCur)
		}
	}
}
