// Package wire models the electrical and physical properties of
// on-chip interconnect wires: resistance with the two nanometer-regime
// corrections the paper adds to the classic models (width-dependent
// resistivity from electron scattering, and the conducting-area loss
// from the diffusion barrier), ground and coupling capacitance, and
// routed bus area.
//
// The same formulas feed both sides of the reproduction: the golden
// parasitic extraction (package rcnet) consumes per-unit-length R and C
// from here to build distributed ladders, and the predictive model
// (package model) consumes the lumped totals. This mirrors the paper's
// setup, where the extractor and the models read the same LEF/ITF
// technology data and differ in how they *evaluate* delay, not in the
// underlying parasitics.
package wire

import (
	"fmt"
	"math"

	"repro/internal/tech"
)

// Style selects the design style of a routed bus, following the
// paper's experiments.
type Style int

const (
	// SWSS is single-width, single-spacing: every bit line has active
	// switching neighbors at minimum spacing. Worst-case cross-talk
	// applies (Miller factor 1.51 in the delay model).
	SWSS Style = iota
	// Shielded interleaves grounded shield wires between signal
	// wires: coupling terminates on quiet conductors, so no Miller
	// amplification, at twice the routing area.
	Shielded
	// Staggered uses SWSS geometry with repeaters staggered between
	// adjacent lines so that neighbor transitions do not align; the
	// paper models this by setting the Miller factor to zero while
	// the coupling capacitance still loads the driver (and burns
	// dynamic power).
	Staggered
)

// String implements fmt.Stringer.
func (s Style) String() string {
	switch s {
	case SWSS:
		return "SWSS"
	case Shielded:
		return "shielded"
	case Staggered:
		return "staggered"
	default:
		return fmt.Sprintf("Style(%d)", int(s))
	}
}

// MillerFactor returns the switching-pattern coefficient λ used by the
// wire-delay model for this style: 1.51 for worst-case neighbors
// (Pamunuwa et al.), 0 when coupling is neutralized by shields or
// staggering.
func (s Style) MillerFactor() float64 {
	if s == SWSS {
		return 1.51
	}
	return 0
}

// Resistivity returns the effective copper resistivity (Ω·m) of a line
// of drawn width w in technology t, including the closed-form
// surface/grain-boundary scattering correction
//
//	ρ(w) = ρ_bulk · (1 + c_s·λ_mfp/w_cu)
//
// where w_cu = w − 2·t_barrier is the copper core width after the
// barrier liner. This is the shape of the Shi–Pan closed form the
// paper adopts: resistivity rises steeply once the core width
// approaches the electron mean free path (~39 nm in Cu).
func Resistivity(t *tech.Technology, w float64) float64 {
	core := w - 2*t.Barrier
	if core <= 0 {
		// Degenerate geometry; return a huge but finite value so
		// optimization loops reject it instead of dividing by zero.
		core = 1e-10
	}
	return t.RhoBulk * (1 + t.ScatterCoeff*t.MeanFreePath/core)
}

// ResistancePerMeter returns the wire resistance per meter (Ω/m) of a
// line of drawn width w on the given layer, with both corrections: the
// scattering-corrected resistivity and the barrier-reduced conducting
// cross-section (w − 2·t_b)·(h − t_b); the barrier occupies both
// sidewalls and the trench bottom of a damascene line.
func ResistancePerMeter(t *tech.Technology, l tech.WireLayer, w float64) float64 {
	coreW := w - 2*t.Barrier
	coreH := l.Thickness - t.Barrier
	if coreW <= 0 || coreH <= 0 {
		return 1e12 // non-physical geometry: effectively open
	}
	return Resistivity(t, w) / (coreW * coreH)
}

// ClassicResistancePerMeter returns the uncorrected (Bakoglu-era) wire
// resistance per meter: bulk resistivity over the full drawn
// cross-section. The baseline models and the ablation benches use it.
func ClassicResistancePerMeter(t *tech.Technology, l tech.WireLayer, w float64) float64 {
	return t.RhoBulk / (w * l.Thickness)
}

// GroundCapPerMeter returns the capacitance per meter (F/m) from a
// line of width w to the planes above and below, using the
// Sakurai–Tamaru empirical form (parallel-plate term plus
// thickness-driven fringe) doubled for the two planes:
//
//	c_g = 2·ε·(1.15·(w/h) + 2.80·(t/h)^0.222) / 2   per plane, ×2
func GroundCapPerMeter(t *tech.Technology, l tech.WireLayer, w float64) float64 {
	eps := tech.Eps0 * l.EpsRel
	h := l.ILD
	return 2 * eps * (1.15*(w/h) + 2.80*math.Pow(l.Thickness/h, 0.222))
}

// ParallelPlateCapPerMeter returns the naive parallel-plate-only
// ground capacitance per meter (F/m) that uncalibrated early models
// used: 2·ε·w/h with no fringe term. The baseline ("original") models
// consume this; it substantially underestimates real wire capacitance
// and is one reason the original COSI model is optimistic.
func ParallelPlateCapPerMeter(t *tech.Technology, l tech.WireLayer, w float64) float64 {
	return 2 * tech.Eps0 * l.EpsRel * w / l.ILD
}

// CouplingCapPerMeter returns the sidewall coupling capacitance per
// meter (F/m) to one neighbor at edge-to-edge spacing s: the
// parallel-plate sidewall term with a fixed 1.2 fringe enhancement.
func CouplingCapPerMeter(t *tech.Technology, l tech.WireLayer, s float64) float64 {
	eps := tech.Eps0 * l.EpsRel
	if s <= 0 {
		s = l.Spacing
	}
	return 1.2 * eps * l.Thickness / s
}

// Segment describes one uniform run of wire on a layer in a given
// design style. The zero value is not useful; use NewSegment.
type Segment struct {
	Tech   *tech.Technology
	Layer  tech.WireLayer
	Style  Style
	Length float64 // m
	// Width and Spacing are the drawn width and the spacing to each
	// neighbor, both in meters. NewSegment defaults them to the
	// layer minimums.
	Width, Spacing float64
}

// NewSegment builds a minimum-width, minimum-spacing segment of the
// given length on t's global layer.
func NewSegment(t *tech.Technology, length float64, style Style) Segment {
	return NewSegmentOn(t, t.Global, length, style)
}

// NewSegmentOn builds a minimum-geometry segment on an explicit
// routing layer (e.g. t.Intermediate for shorter, denser links).
func NewSegmentOn(t *tech.Technology, layer tech.WireLayer, length float64, style Style) Segment {
	return Segment{
		Tech:    t,
		Layer:   layer,
		Style:   style,
		Length:  length,
		Width:   layer.Width,
		Spacing: layer.Spacing,
	}
}

// Validate reports whether the segment geometry is usable.
func (s Segment) Validate() error {
	if s.Tech == nil {
		return fmt.Errorf("wire: segment has no technology")
	}
	if s.Length <= 0 {
		return fmt.Errorf("wire: non-positive length %g", s.Length)
	}
	if s.Width <= 0 || s.Spacing <= 0 {
		return fmt.Errorf("wire: non-positive width/spacing")
	}
	if s.Width <= 2*s.Tech.Barrier {
		return fmt.Errorf("wire: width %g leaves no copper core after barrier %g", s.Width, s.Tech.Barrier)
	}
	return nil
}

// Resistance returns the total corrected resistance (Ω) of the segment.
func (s Segment) Resistance() float64 {
	return ResistancePerMeter(s.Tech, s.Layer, s.Width) * s.Length
}

// ClassicResistance returns the Bakoglu-era uncorrected resistance (Ω).
func (s Segment) ClassicResistance() float64 {
	return ClassicResistancePerMeter(s.Tech, s.Layer, s.Width) * s.Length
}

// GroundCap returns the total ground capacitance (F) of the segment.
// For the shielded style the two neighbors are grounded shields, so
// their sidewall capacitance counts as ground capacitance here.
func (s Segment) GroundCap() float64 {
	cg := GroundCapPerMeter(s.Tech, s.Layer, s.Width)
	if s.Style == Shielded {
		cg += 2 * CouplingCapPerMeter(s.Tech, s.Layer, s.Spacing)
	}
	return cg * s.Length
}

// CouplingCap returns the total switching-neighbor coupling
// capacitance (F): two neighbors for SWSS/Staggered, zero for
// Shielded (the shields are quiet and already counted in GroundCap).
func (s Segment) CouplingCap() float64 {
	if s.Style == Shielded {
		return 0
	}
	return 2 * CouplingCapPerMeter(s.Tech, s.Layer, s.Spacing) * s.Length
}

// TotalCap returns ground plus coupling capacitance (F) — the load the
// driver charges, independent of Miller amplification.
func (s Segment) TotalCap() float64 { return s.GroundCap() + s.CouplingCap() }

// DelayCaps splits the segment's capacitance into the part that acts
// as quiet (ground) capacitance and the part subject to Miller
// amplification by switching neighbors, for delay analysis:
//
//   - SWSS: neighbors switch in the worst-case pattern, so the full
//     coupling capacitance is Miller-amplified.
//   - Shielded: neighbors are grounded shields; all capacitance is
//     quiet (GroundCap already includes the shield sidewalls).
//   - Staggered: repeater staggering de-correlates neighbor
//     transitions, which the paper models as a zero Miller factor —
//     the coupling capacitance still loads the driver but is not
//     amplified, so it moves into the quiet part.
//
// Power analysis must use TotalCap instead: staggering does not reduce
// the charge delivered per transition.
func (s Segment) DelayCaps() (quiet, coupled float64) {
	switch s.Style {
	case SWSS:
		return s.GroundCap(), s.CouplingCap()
	case Staggered:
		return s.GroundCap() + s.CouplingCap(), 0
	default: // Shielded
		return s.GroundCap(), 0
	}
}

// BusArea returns the routed area (m²) of an n-bit bus of this
// segment's length following the paper's formula
//
//	a_w = (n·(w_w + s_w) + s_w) · L
//
// with the track count doubled for the shielded style (one shield per
// signal).
func (s Segment) BusArea(n int) float64 {
	tracks := float64(n)
	if s.Style == Shielded {
		tracks = 2 * float64(n)
	}
	widthAcross := tracks*(s.Width+s.Spacing) + s.Spacing
	return widthAcross * s.Length
}
