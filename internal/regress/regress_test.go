package regress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestLinearExact(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 3.5 - 2*v
	}
	fit, err := Linear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Coeff[0], 3.5, 1e-12) || !almost(fit.Coeff[1], -2, 1e-12) {
		t.Fatalf("got %v", fit.Coeff)
	}
	if fit.R2 < 1-1e-12 {
		t.Fatalf("R² = %v, want 1", fit.R2)
	}
}

func TestLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 200)
	y := make([]float64, 200)
	for i := range x {
		x[i] = float64(i) / 10
		y[i] = 1.25 + 0.75*x[i] + 0.01*rng.NormFloat64()
	}
	fit, err := Linear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Coeff[0], 1.25, 1e-2) || !almost(fit.Coeff[1], 0.75, 1e-2) {
		t.Fatalf("got %v", fit.Coeff)
	}
	if fit.R2 < 0.999 {
		t.Fatalf("R² = %v", fit.R2)
	}
}

func TestLinearZero(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	fit, err := LinearZero(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Coeff[0], 2, 1e-12) {
		t.Fatalf("slope %v, want 2", fit.Coeff[0])
	}
}

func TestLinearZeroIgnoresIntercept(t *testing.T) {
	// Data with a true intercept: zero-intercept fit must still return
	// the least-squares slope Σxy/Σx², not the two-parameter slope.
	x := []float64{1, 2, 3}
	y := []float64{3, 5, 7} // y = 1 + 2x
	fit, err := LinearZero(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := (1*3.0 + 2*5 + 3*7) / (1 + 4 + 9)
	if !almost(fit.Coeff[0], want, 1e-12) {
		t.Fatalf("slope %v, want %v", fit.Coeff[0], want)
	}
}

func TestQuadraticExact(t *testing.T) {
	x := []float64{-2, -1, 0, 1, 2, 3}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 0.5 + 1.5*v - 0.25*v*v
	}
	fit, err := Quadratic(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 1.5, -0.25}
	for i, w := range want {
		if !almost(fit.Coeff[i], w, 1e-9) {
			t.Fatalf("coeff[%d] = %v, want %v (%v)", i, fit.Coeff[i], w, fit.Coeff)
		}
	}
}

func TestQuadraticEval(t *testing.T) {
	fit := Fit{Coeff: []float64{1, 2, 3}}
	if got := fit.Eval(2); got != 1+4+12 {
		t.Fatalf("Eval(2) = %v", got)
	}
}

func TestMultiExact(t *testing.T) {
	// y = 2 + 3·a − 4·b
	var rows [][]float64
	var y []float64
	for a := 0.0; a < 4; a++ {
		for b := 0.0; b < 4; b++ {
			rows = append(rows, []float64{a, b})
			y = append(y, 2+3*a-4*b)
		}
	}
	fit, err := Multi(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -4}
	for i, w := range want {
		if !almost(fit.Coeff[i], w, 1e-9) {
			t.Fatalf("coeff = %v, want %v", fit.Coeff, want)
		}
	}
}

func TestMultiZeroExact(t *testing.T) {
	var rows [][]float64
	var y []float64
	for a := 1.0; a < 5; a++ {
		for b := 1.0; b < 5; b++ {
			rows = append(rows, []float64{a, b})
			y = append(y, 3*a-0.5*b)
		}
	}
	fit, err := MultiZero(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Coeff[0], 3, 1e-9) || !almost(fit.Coeff[1], -0.5, 1e-9) {
		t.Fatalf("coeff = %v", fit.Coeff)
	}
}

func TestSingularDetected(t *testing.T) {
	x := []float64{2, 2, 2}
	y := []float64{1, 2, 3}
	if _, err := Linear(x, y); err == nil {
		t.Fatal("expected error for constant abscissa")
	}
	if _, err := LinearZero([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for all-zero x")
	}
}

func TestDimensionErrors(t *testing.T) {
	if _, err := Linear([]float64{1}, []float64{1}); err == nil {
		t.Fatal("want error: too few samples")
	}
	if _, err := Linear([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("want error: length mismatch")
	}
	if _, err := Quadratic([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("want error: quadratic needs 3 points")
	}
	if _, err := Multi([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Fatal("want error: ragged rows")
	}
	if _, err := Multi(nil, nil); err == nil {
		t.Fatal("want error: empty")
	}
}

func TestResidualStats(t *testing.T) {
	// y = x with one outlier of +1 at the end.
	x := []float64{0, 1, 2, 3}
	y := []float64{0, 1, 2, 4}
	fit, err := Linear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if fit.MaxAbsResidual <= 0 || fit.RMSE <= 0 {
		t.Fatalf("expected nonzero residuals: %v", fit)
	}
	if fit.R2 >= 1 || fit.R2 < 0.8 {
		t.Fatalf("R² = %v out of expected range", fit.R2)
	}
}

// Property: a linear fit recovers arbitrary (finite, reasonable)
// slope/intercept pairs exactly from noise-free data.
func TestQuickLinearRecovery(t *testing.T) {
	f := func(c0, c1 float64) bool {
		c0 = math.Mod(c0, 1e6)
		c1 = math.Mod(c1, 1e6)
		x := []float64{-1, 0, 1, 2, 5}
		y := make([]float64, len(x))
		for i, v := range x {
			y[i] = c0 + c1*v
		}
		fit, err := Linear(x, y)
		if err != nil {
			return false
		}
		return almost(fit.Coeff[0], c0, 1e-6) && almost(fit.Coeff[1], c1, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: R² of a least-squares fit with intercept is never above 1.
func TestQuickR2Bounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(40)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()*10 - 5
			y[i] = r.NormFloat64() * 3
		}
		fit, err := Linear(x, y)
		if err != nil {
			return true // singular draws are fine
		}
		return fit.R2 <= 1+1e-9
	}
	for i := 0; i < 100; i++ {
		if !f(rng.Int63()) {
			t.Fatal("R² exceeded 1")
		}
	}
}

// Property: quadratic fit residuals are orthogonal-ish — RMSE of an
// exact-degree fit of noise-free polynomial data is ~0.
func TestQuickQuadraticExact(t *testing.T) {
	f := func(a, b, c float64) bool {
		a = math.Mod(a, 100)
		b = math.Mod(b, 100)
		c = math.Mod(c, 100)
		x := []float64{-3, -1, 0, 0.5, 2, 4}
		y := make([]float64, len(x))
		for i, v := range x {
			y[i] = a + b*v + c*v*v
		}
		fit, err := Quadratic(x, y)
		if err != nil {
			return false
		}
		scale := math.Max(1, math.Abs(a)+math.Abs(b)+math.Abs(c))
		return fit.RMSE <= 1e-8*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLinearFit(b *testing.B) {
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = float64(i)
		y[i] = 2 + 3*float64(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Linear(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
