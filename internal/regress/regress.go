// Package regress provides the least-squares fitting machinery used to
// calibrate the predictive interconnect models against golden
// (simulator-generated) data.
//
// The paper derives every model coefficient with one of three fits:
// simple linear regression (leakage vs width, area vs width), linear
// regression with zero intercept (drive resistance vs 1/size, input
// capacitance vs width), and quadratic regression (intrinsic delay vs
// input slew). Multiple linear regression covers the output-slew model,
// which is linear in several predictors at once. All of them reduce to
// solving the normal equations of an ordinary least-squares problem,
// which this package does with Gaussian elimination and partial
// pivoting — adequate for the small, well-conditioned systems that
// arise here (at most a handful of predictors).
package regress

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when the normal equations are singular or so
// ill-conditioned that no reliable solution exists (for example when
// all sample points share the same abscissa).
var ErrSingular = errors.New("regress: singular normal equations")

// ErrDimension is returned when the supplied data has inconsistent or
// insufficient dimensions for the requested fit.
var ErrDimension = errors.New("regress: dimension mismatch or too few samples")

// Fit is the outcome of a least-squares fit.
type Fit struct {
	// Coeff holds the fitted coefficients. Their meaning depends on
	// the fitting function that produced them; see each function's
	// documentation.
	Coeff []float64
	// R2 is the coefficient of determination of the fit in [–inf, 1];
	// 1 means the model explains the data exactly. It can be negative
	// for a zero-intercept fit that does worse than the mean.
	R2 float64
	// RMSE is the root-mean-square residual in the units of y.
	RMSE float64
	// MaxAbsResidual is the largest absolute residual.
	MaxAbsResidual float64
}

// solve solves the linear system a·x = b in place using Gaussian
// elimination with partial pivoting. a is row-major n×n.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for i := range a {
		if len(a[i]) != n {
			return nil, ErrDimension
		}
	}
	if len(b) != n {
		return nil, ErrDimension
	}
	// Work on copies so callers keep their inputs.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	rhs := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 || math.IsNaN(best) {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		rhs[col], rhs[pivot] = rhs[pivot], rhs[col]

		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := rhs[i]
		for c := i + 1; c < n; c++ {
			s -= m[i][c] * x[c]
		}
		x[i] = s / m[i][i]
		if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
			return nil, ErrSingular
		}
	}
	return x, nil
}

// leastSquares fits y ≈ X·β for a row-major design matrix X (one row
// per sample) and returns β along with fit statistics.
func leastSquares(x [][]float64, y []float64) (Fit, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return Fit{}, ErrDimension
	}
	p := len(x[0])
	if p == 0 || n < p {
		return Fit{}, ErrDimension
	}
	// Normal equations: (XᵀX)·β = Xᵀy.
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	for r, row := range x {
		if len(row) != p {
			return Fit{}, ErrDimension
		}
		for i := 0; i < p; i++ {
			xty[i] += row[i] * y[r]
			for j := i; j < p; j++ {
				xtx[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	beta, err := solve(xtx, xty)
	if err != nil {
		return Fit{}, err
	}
	return finishFit(x, y, beta), nil
}

// finishFit computes residual statistics for a solved fit.
func finishFit(x [][]float64, y, beta []float64) Fit {
	n := len(y)
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)

	var ssRes, ssTot, maxAbs float64
	for r, row := range x {
		pred := 0.0
		for i, b := range beta {
			pred += b * row[i]
		}
		res := y[r] - pred
		ssRes += res * res
		d := y[r] - mean
		ssTot += d * d
		if a := math.Abs(res); a > maxAbs {
			maxAbs = a
		}
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	} else if ssRes > 0 {
		r2 = 0
	}
	return Fit{
		Coeff:          beta,
		R2:             r2,
		RMSE:           math.Sqrt(ssRes / float64(n)),
		MaxAbsResidual: maxAbs,
	}
}

// Linear fits y ≈ c0 + c1·x by ordinary least squares.
// Coeff[0] is the intercept c0 and Coeff[1] the slope c1.
func Linear(x, y []float64) (Fit, error) {
	if len(x) != len(y) || len(x) < 2 {
		return Fit{}, ErrDimension
	}
	rows := make([][]float64, len(x))
	for i, v := range x {
		rows[i] = []float64{1, v}
	}
	return leastSquares(rows, y)
}

// LinearZero fits y ≈ c·x with the intercept constrained to zero, as
// the paper does for drive resistance versus reciprocal repeater size
// and for input capacitance versus device width.
// Coeff[0] is the slope c.
func LinearZero(x, y []float64) (Fit, error) {
	if len(x) != len(y) || len(x) < 1 {
		return Fit{}, ErrDimension
	}
	var sxx, sxy float64
	for i, v := range x {
		sxx += v * v
		sxy += v * y[i]
	}
	if sxx == 0 {
		return Fit{}, ErrSingular
	}
	rows := make([][]float64, len(x))
	for i, v := range x {
		rows[i] = []float64{v}
	}
	return finishFit(rows, y, []float64{sxy / sxx}), nil
}

// Quadratic fits y ≈ c0 + c1·x + c2·x² by least squares, as the paper
// does for intrinsic delay versus input slew.
// Coeff is [c0, c1, c2].
func Quadratic(x, y []float64) (Fit, error) {
	if len(x) != len(y) || len(x) < 3 {
		return Fit{}, ErrDimension
	}
	rows := make([][]float64, len(x))
	for i, v := range x {
		rows[i] = []float64{1, v, v * v}
	}
	return leastSquares(rows, y)
}

// Multi fits y ≈ c0 + Σ ci·x_i over multiple predictors (one column
// per predictor, one row per sample). Coeff is [c0, c1, …, cp].
func Multi(predictors [][]float64, y []float64) (Fit, error) {
	if len(predictors) != len(y) || len(predictors) == 0 {
		return Fit{}, ErrDimension
	}
	p := len(predictors[0])
	rows := make([][]float64, len(predictors))
	for i, row := range predictors {
		if len(row) != p {
			return Fit{}, ErrDimension
		}
		rows[i] = append([]float64{1}, row...)
	}
	return leastSquares(rows, y)
}

// MultiZero fits y ≈ Σ ci·x_i with no intercept term.
func MultiZero(predictors [][]float64, y []float64) (Fit, error) {
	if len(predictors) != len(y) || len(predictors) == 0 {
		return Fit{}, ErrDimension
	}
	return leastSquares(predictors, y)
}

// Eval evaluates a polynomial fit (as from Linear or Quadratic, with
// Coeff ordered low degree first) at x.
func (f Fit) Eval(x float64) float64 {
	v, p := 0.0, 1.0
	for _, c := range f.Coeff {
		v += c * p
		p *= x
	}
	return v
}

// String summarizes a fit for diagnostics.
func (f Fit) String() string {
	return fmt.Sprintf("coeff=%v R²=%.5f rmse=%.3g max|res|=%.3g",
		f.Coeff, f.R2, f.RMSE, f.MaxAbsResidual)
}
