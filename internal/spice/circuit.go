package spice

import (
	"fmt"
	"math"
)

// Ground is the node index of the reference node. Its voltage is
// always exactly zero.
const Ground = -1

// Waveform gives the voltage of an independent source as a function of
// time (seconds → volts).
type Waveform func(t float64) float64

// DC returns a constant waveform (supply rails).
func DC(v float64) Waveform { return func(float64) float64 { return v } }

// Ramp returns a linear transition from v0 to v1 starting at t0 and
// lasting dur (the 0–100% ramp time). Before t0 it is v0, after t0+dur
// it is v1. A zero dur yields a step.
func Ramp(v0, v1, t0, dur float64) Waveform {
	return func(t float64) float64 {
		switch {
		case t <= t0 || dur <= 0 && t <= t0:
			return v0
		case dur <= 0 || t >= t0+dur:
			return v1
		default:
			return v0 + (v1-v0)*(t-t0)/dur
		}
	}
}

// RampFromSlew converts a 10–90% transition time (the Liberty slew
// convention used throughout this repository) into the matching 0–100%
// linear ramp duration.
func RampFromSlew(slew float64) float64 { return slew / 0.8 }

type resistor struct {
	a, b int
	g    float64 // conductance, S
}

type capacitor struct {
	a, b int
	c    float64 // F
}

type source struct {
	node int
	w    Waveform
}

// Circuit is a netlist under construction. Create with New, add
// elements, then call Transient. Node indices are allocated by Node.
type Circuit struct {
	names     []string
	byName    map[string]int
	resistors []resistor
	caps      []capacitor
	mosfets   []*Mosfet
	sources   []source
	fixed     map[int]Waveform
}

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{byName: make(map[string]int), fixed: make(map[int]Waveform)}
}

// Node returns the index of the named node, allocating it on first
// use. The reserved names "0" and "gnd" map to Ground.
func (c *Circuit) Node(name string) int {
	if name == "0" || name == "gnd" {
		return Ground
	}
	if idx, ok := c.byName[name]; ok {
		return idx
	}
	idx := len(c.names)
	c.names = append(c.names, name)
	c.byName[name] = idx
	return idx
}

// NumNodes returns the number of non-ground nodes.
func (c *Circuit) NumNodes() int { return len(c.names) }

// NodeNames returns the allocated node names in index order.
func (c *Circuit) NodeNames() []string { return append([]string(nil), c.names...) }

// AddResistor connects a resistance of r ohms between nodes a and b.
func (c *Circuit) AddResistor(a, b int, r float64) {
	if r <= 0 {
		panic(fmt.Sprintf("spice: non-positive resistance %g", r))
	}
	c.resistors = append(c.resistors, resistor{a, b, 1 / r})
}

// AddCapacitor connects a capacitance of f farads between a and b.
func (c *Circuit) AddCapacitor(a, b int, f float64) {
	if f < 0 {
		panic(fmt.Sprintf("spice: negative capacitance %g", f))
	}
	if f == 0 {
		return
	}
	c.caps = append(c.caps, capacitor{a, b, f})
}

// AddMosfet adds a transistor to the netlist.
func (c *Circuit) AddMosfet(m *Mosfet) { c.mosfets = append(c.mosfets, m) }

// AddSource pins the voltage of a node to the waveform. A node may
// carry at most one source; pinning ground is an error.
func (c *Circuit) AddSource(node int, w Waveform) error {
	if node == Ground {
		return fmt.Errorf("spice: cannot source the ground node")
	}
	if _, dup := c.fixed[node]; dup {
		return fmt.Errorf("spice: node %d already has a source", node)
	}
	c.fixed[node] = w
	c.sources = append(c.sources, source{node, w})
	return nil
}

// Result holds a transient simulation's sampled waveforms.
type Result struct {
	// Time holds the sample instants (seconds), strictly increasing.
	Time []float64
	// V maps node index → sampled voltages, parallel to Time.
	V map[int][]float64
}

// Voltage returns the waveform samples of a node, or nil if the node
// was not recorded.
func (r *Result) Voltage(node int) []float64 { return r.V[node] }

// TransientOpts tunes the solver. Zero values take documented
// defaults.
type TransientOpts struct {
	// Stop is the simulation end time (required, > 0).
	Stop float64
	// Step is the fixed integration step; default Stop/2000.
	Step float64
	// InitialV provides initial voltages for free nodes (node →
	// volts); unlisted nodes start at 0.
	InitialV map[int]float64
	// MaxNewton bounds Newton iterations per step (default 60).
	MaxNewton int
	// Tol is the Newton convergence tolerance in volts
	// (default 1 µV).
	Tol float64
	// Record lists the node indices to record; nil records all.
	Record []int
}

// Transient runs a backward-Euler transient analysis and returns the
// sampled waveforms.
func (c *Circuit) Transient(opts TransientOpts) (*Result, error) {
	if opts.Stop <= 0 {
		return nil, fmt.Errorf("spice: non-positive stop time")
	}
	dt := opts.Step
	if dt <= 0 {
		dt = opts.Stop / 2000
	}
	maxNewton := opts.MaxNewton
	if maxNewton == 0 {
		maxNewton = 60
	}
	tol := opts.Tol
	if tol == 0 {
		tol = 1e-6
	}

	n := len(c.names)
	// Map full node index → free-variable index; sources are fixed.
	freeIdx := make([]int, n)
	var nFree int
	for i := 0; i < n; i++ {
		if _, isFixed := c.fixed[i]; isFixed {
			freeIdx[i] = -1
		} else {
			freeIdx[i] = nFree
			nFree++
		}
	}

	v := make([]float64, n) // current node voltages
	for node, vv := range opts.InitialV {
		if node >= 0 && node < n {
			v[node] = vv
		}
	}
	setSources := func(t float64) {
		for _, s := range c.sources {
			v[s.node] = s.w(t)
		}
	}
	setSources(0)

	record := opts.Record
	if record == nil {
		record = make([]int, n)
		for i := range record {
			record[i] = i
		}
	}
	res := &Result{V: make(map[int][]float64, len(record))}
	sample := func(t float64) {
		res.Time = append(res.Time, t)
		for _, node := range record {
			res.V[node] = append(res.V[node], v[node])
		}
	}
	sample(0)

	// Scratch matrices reused across steps.
	G := make([][]float64, nFree)
	for i := range G {
		G[i] = make([]float64, nFree)
	}
	rhs := make([]float64, nFree)
	vOld := make([]float64, n)

	volt := func(node int) float64 {
		if node == Ground {
			return 0
		}
		return v[node]
	}
	// stamp adds conductance g between nodes a and b into G/rhs,
	// folding fixed-node voltages into the RHS.
	stamp := func(a, b int, g float64) {
		fa, fb := -1, -1
		if a != Ground {
			fa = freeIdx[a]
		}
		if b != Ground {
			fb = freeIdx[b]
		}
		if fa >= 0 {
			G[fa][fa] += g
			if fb >= 0 {
				G[fa][fb] -= g
			} else {
				rhs[fa] += g * volt(b)
			}
		}
		if fb >= 0 {
			G[fb][fb] += g
			if fa >= 0 {
				G[fb][fa] -= g
			} else {
				rhs[fb] += g * volt(a)
			}
		}
	}
	// inject adds a current i flowing *into* node a.
	inject := func(a int, i float64) {
		if a == Ground {
			return
		}
		if fa := freeIdx[a]; fa >= 0 {
			rhs[fa] += i
		}
	}

	steps := int(math.Ceil(opts.Stop / dt))
	const dVgm = 1e-5 // finite-difference perturbation for Jacobian

	for s := 1; s <= steps; s++ {
		t := float64(s) * dt
		if t > opts.Stop {
			t = opts.Stop
		}
		copy(vOld, v)
		setSources(t)

		converged := false
		for it := 0; it < maxNewton; it++ {
			for i := range G {
				rhs[i] = 0
				row := G[i]
				for j := range row {
					row[j] = 0
				}
			}
			// Linear elements.
			for _, r := range c.resistors {
				stamp(r.a, r.b, r.g)
			}
			// Capacitors: backward-Euler companion model.
			for _, cp := range c.caps {
				g := cp.c / dt
				stamp(cp.a, cp.b, g)
				iEq := g * (voltOf(vOld, cp.a) - voltOf(vOld, cp.b))
				inject(cp.a, iEq)
				inject(cp.b, -iEq)
			}
			// MOSFETs: linearize around the current guess with a
			// finite-difference Jacobian, then stamp as a Norton
			// equivalent.
			for _, m := range c.mosfets {
				vg, vd, vs := volt(m.Gate), volt(m.Drain), volt(m.Source)
				id := m.Ids(vg, vd, vs)
				gds := (m.Ids(vg, vd+dVgm, vs) - id) / dVgm
				gm := (m.Ids(vg+dVgm, vd, vs) - id) / dVgm
				gs := (m.Ids(vg, vd, vs+dVgm) - id) / dVgm
				// Keep the system solvable if the device is fully
				// off: a tiny minimum output conductance.
				const gmin = 1e-12
				if math.Abs(gds) < gmin {
					gds = gmin
				}
				// Current into drain = id; into source = −id.
				// Linearization: i(vg,vd,vs) ≈ id + gm·Δvg +
				// gds·Δvd + gs·Δvs. Move the proportional parts
				// into the matrix as a voltage-controlled current
				// source pattern.
				stampVCCS := func(node int, sign float64) {
					if node == Ground {
						return
					}
					f := freeIdx[node]
					if f < 0 {
						return
					}
					addTo := func(ctrl int, g float64) {
						if g == 0 {
							return
						}
						if ctrl == Ground {
							return
						}
						if fc := freeIdx[ctrl]; fc >= 0 {
							G[f][fc] += sign * g
						} else {
							rhs[f] -= sign * g * volt(ctrl)
						}
					}
					// KCL residual form: G·v = rhs with device
					// current moved left: sign·(id − gm·vg − gds·vd
					// − gs·vs) stays on the RHS.
					addTo(m.Gate, gm)
					addTo(m.Drain, gds)
					addTo(m.Source, gs)
					rhs[f] -= sign * (id - gm*vg - gds*vd - gs*vs)
				}
				stampVCCS(m.Drain, 1)
				stampVCCS(m.Source, -1)
			}

			dv, err := solveDense(G, rhs)
			if err != nil {
				return nil, fmt.Errorf("spice: t=%.3e: %w", t, err)
			}
			// dv is the new free-node voltage vector (not a delta):
			// apply with damping against the previous iterate.
			maxDelta := 0.0
			for node := 0; node < n; node++ {
				f := freeIdx[node]
				if f < 0 {
					continue
				}
				delta := dv[f] - v[node]
				const maxStep = 0.3
				if delta > maxStep {
					delta = maxStep
				} else if delta < -maxStep {
					delta = -maxStep
				}
				v[node] += delta
				if a := math.Abs(delta); a > maxDelta {
					maxDelta = a
				}
			}
			if maxDelta < tol {
				converged = true
				break
			}
		}
		if !converged {
			return nil, fmt.Errorf("spice: Newton did not converge at t=%.3e", t)
		}
		sample(t)
	}
	return res, nil
}

func voltOf(v []float64, node int) float64 {
	if node == Ground {
		return 0
	}
	return v[node]
}

// solveDense solves A·x=b by Gaussian elimination with partial
// pivoting, destroying neither input.
func solveDense(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		p, best := col, math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r][col]); v > best {
				best, p = v, r
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("singular conductance matrix (floating node?)")
		}
		m[col], m[p] = m[p], m[col]
		x[col], x[p] = x[p], x[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for cc := col; cc < n; cc++ {
				m[r][cc] -= f * m[col][cc]
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for cc := i + 1; cc < n; cc++ {
			s -= m[i][cc] * x[cc]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}
