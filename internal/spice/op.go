package spice

import (
	"fmt"
	"math"
)

// OperatingPoint solves the DC steady state of the circuit with every
// source frozen at its value at the given time, by pseudo-transient
// continuation: backward-Euler relaxation with geometrically growing
// windows until the largest node-voltage movement per window falls
// below tol (default 1 µV). This is more robust than a plain
// Newton DC solve for circuits with strongly nonlinear devices, at the
// cost of a few extra solves — a standard SPICE fallback strategy.
//
// init optionally seeds node voltages (helpful for bistable circuits
// such as back-to-back inverters). The returned map holds the settled
// voltage of every node.
func (c *Circuit) OperatingPoint(atTime float64, init map[int]float64, tol float64) (map[int]float64, error) {
	if tol <= 0 {
		tol = 1e-6
	}
	// Frozen copy: same elements, constant sources.
	fc := &Circuit{
		names:     c.names,
		byName:    c.byName,
		resistors: c.resistors,
		caps:      c.caps,
		mosfets:   c.mosfets,
		fixed:     make(map[int]Waveform, len(c.fixed)),
	}
	for _, s := range c.sources {
		v := s.w(atTime)
		fc.fixed[s.node] = DC(v)
		fc.sources = append(fc.sources, source{s.node, DC(v)})
	}
	// Give cap-free nodes a settling time constant: add a tiny
	// capacitor to ground on every node so the pseudo-transient has
	// state everywhere.
	fcCaps := append([]capacitor(nil), fc.caps...)
	for i := 0; i < len(c.names); i++ {
		fcCaps = append(fcCaps, capacitor{a: i, b: Ground, c: 1e-18})
	}
	fc.caps = fcCaps

	cur := make(map[int]float64, len(c.names))
	for k, v := range init {
		cur[k] = v
	}
	window := 1e-12
	for round := 0; round < 40; round++ {
		res, err := fc.Transient(TransientOpts{
			Stop:     window,
			Step:     window / 64,
			InitialV: cur,
		})
		if err != nil {
			return nil, fmt.Errorf("spice: operating point: %w", err)
		}
		moved := 0.0
		next := make(map[int]float64, len(c.names))
		for node, wave := range res.V {
			end := wave[len(wave)-1]
			// Movement over the last half of the window indicates
			// whether the node is still slewing.
			mid := wave[len(wave)/2]
			if d := math.Abs(end - mid); d > moved {
				moved = d
			}
			next[node] = end
		}
		cur = next
		if moved < tol {
			return cur, nil
		}
		window *= 4
	}
	return nil, fmt.Errorf("spice: operating point did not settle")
}
