package spice

import (
	"errors"
	"fmt"
)

// ErrNoCrossing is returned when a waveform never crosses the
// requested threshold in the requested direction.
var ErrNoCrossing = errors.New("spice: waveform does not cross threshold")

// Direction selects which edge of a waveform a measurement refers to.
type Direction int

const (
	// Rising measures a low-to-high transition.
	Rising Direction = iota
	// Falling measures a high-to-low transition.
	Falling
)

func (d Direction) String() string {
	if d == Falling {
		return "fall"
	}
	return "rise"
}

// CrossTime returns the first time at which the sampled waveform (t,v)
// crosses the threshold in the given direction, using linear
// interpolation between samples.
func CrossTime(t, v []float64, threshold float64, dir Direction) (float64, error) {
	if len(t) != len(v) || len(t) < 2 {
		return 0, fmt.Errorf("spice: bad waveform (%d/%d samples)", len(t), len(v))
	}
	for i := 1; i < len(v); i++ {
		a, b := v[i-1], v[i]
		var hit bool
		if dir == Rising {
			hit = a < threshold && b >= threshold
		} else {
			hit = a > threshold && b <= threshold
		}
		if hit {
			if b == a {
				return t[i], nil
			}
			f := (threshold - a) / (b - a)
			return t[i-1] + f*(t[i]-t[i-1]), nil
		}
	}
	return 0, ErrNoCrossing
}

// Slew returns the 10%–90% transition time of the waveform between
// rails 0 and vdd, in the given direction: for Rising the time from
// 0.1·vdd to 0.9·vdd, for Falling from 0.9·vdd down to 0.1·vdd.
func Slew(t, v []float64, vdd float64, dir Direction) (float64, error) {
	lo, hi := 0.1*vdd, 0.9*vdd
	if dir == Rising {
		t1, err := CrossTime(t, v, lo, Rising)
		if err != nil {
			return 0, err
		}
		t2, err := CrossTime(t, v, hi, Rising)
		if err != nil {
			return 0, err
		}
		return t2 - t1, nil
	}
	t1, err := CrossTime(t, v, hi, Falling)
	if err != nil {
		return 0, err
	}
	t2, err := CrossTime(t, v, lo, Falling)
	if err != nil {
		return 0, err
	}
	return t2 - t1, nil
}

// Delay returns the 50%-to-50% propagation delay from the input
// waveform (switching in dirIn) to the output waveform (switching in
// dirOut), both referenced to rails 0..vdd.
func Delay(t, vin, vout []float64, vdd float64, dirIn, dirOut Direction) (float64, error) {
	tin, err := CrossTime(t, vin, 0.5*vdd, dirIn)
	if err != nil {
		return 0, fmt.Errorf("input: %w", err)
	}
	tout, err := CrossTime(t, vout, 0.5*vdd, dirOut)
	if err != nil {
		return 0, fmt.Errorf("output: %w", err)
	}
	return tout - tin, nil
}
