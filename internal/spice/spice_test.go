package spice

import (
	"math"
	"testing"

	"repro/internal/tech"
)

func t90() *tech.Technology { return tech.MustLookup("90nm") }

func TestRampWaveform(t *testing.T) {
	w := Ramp(0, 1, 10e-12, 40e-12)
	cases := []struct{ t, want float64 }{
		{0, 0}, {10e-12, 0}, {30e-12, 0.5}, {50e-12, 1}, {100e-12, 1},
	}
	for _, c := range cases {
		if got := w(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Ramp(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	step := Ramp(1, 0, 5e-12, 0)
	if step(4e-12) != 1 || step(6e-12) != 0 {
		t.Error("zero-duration ramp should step")
	}
}

func TestRampFromSlew(t *testing.T) {
	if got := RampFromSlew(80e-12); math.Abs(got-100e-12) > 1e-15 {
		t.Fatalf("RampFromSlew(80ps) = %g, want 100ps", got)
	}
}

func TestNodeAllocation(t *testing.T) {
	c := New()
	if c.Node("0") != Ground || c.Node("gnd") != Ground {
		t.Fatal("ground aliases")
	}
	a := c.Node("a")
	if c.Node("a") != a {
		t.Fatal("node not idempotent")
	}
	if c.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
}

func TestSourceErrors(t *testing.T) {
	c := New()
	n := c.Node("x")
	if err := c.AddSource(Ground, DC(1)); err == nil {
		t.Fatal("sourcing ground must fail")
	}
	if err := c.AddSource(n, DC(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddSource(n, DC(2)); err == nil {
		t.Fatal("double source must fail")
	}
}

// RC low-pass: step response must follow 1−exp(−t/RC).
func TestTransientRCStep(t *testing.T) {
	c := New()
	in, out := c.Node("in"), c.Node("out")
	R, C := 1e3, 1e-12 // τ = 1ns
	c.AddResistor(in, out, R)
	c.AddCapacitor(out, Ground, C)
	if err := c.AddSource(in, Ramp(0, 1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	res, err := c.Transient(TransientOpts{Stop: 5e-9, Step: 2e-12})
	if err != nil {
		t.Fatal(err)
	}
	tau := R * C
	v := res.Voltage(out)
	for i, tm := range res.Time {
		want := 1 - math.Exp(-tm/tau)
		if math.Abs(v[i]-want) > 0.01 {
			t.Fatalf("t=%g: v=%g want %g", tm, v[i], want)
		}
	}
}

// Two-resistor divider: DC steady state must match analytic value.
func TestTransientDivider(t *testing.T) {
	c := New()
	in, mid := c.Node("in"), c.Node("mid")
	c.AddResistor(in, mid, 2e3)
	c.AddResistor(mid, Ground, 1e3)
	c.AddCapacitor(mid, Ground, 1e-15)
	if err := c.AddSource(in, DC(3)); err != nil {
		t.Fatal(err)
	}
	res, err := c.Transient(TransientOpts{Stop: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Voltage(mid)
	if got := v[len(v)-1]; math.Abs(got-1.0) > 1e-3 {
		t.Fatalf("divider settled at %g, want 1.0", got)
	}
}

func TestTransientRejectsBadOpts(t *testing.T) {
	c := New()
	c.Node("a")
	if _, err := c.Transient(TransientOpts{Stop: 0}); err == nil {
		t.Fatal("zero stop accepted")
	}
}

func TestFloatingNodeDetected(t *testing.T) {
	c := New()
	a, b := c.Node("a"), c.Node("b")
	c.AddResistor(a, b, 1e3) // island with no path to ground/source
	if _, err := c.Transient(TransientOpts{Stop: 1e-9}); err == nil {
		t.Fatal("floating island should fail to solve")
	}
}

func TestAddElementPanics(t *testing.T) {
	c := New()
	a := c.Node("a")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative resistance must panic")
			}
		}()
		c.AddResistor(a, Ground, -1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative capacitance must panic")
			}
		}()
		c.AddCapacitor(a, Ground, -1e-15)
	}()
}

func TestMosfetCurrentSigns(t *testing.T) {
	tc := t90()
	n := &Mosfet{Kind: NMOS, Width: 1e-6, Params: tc.NMOS}
	p := &Mosfet{Kind: PMOS, Width: 1e-6, Params: tc.PMOS}
	// NMOS on: gate and drain high → current drain→source (positive).
	if i := n.Ids(tc.Vdd, tc.Vdd, 0); i <= 0 {
		t.Fatalf("NMOS on-current = %g, want > 0", i)
	}
	// NMOS off: gate low → (near) zero.
	if i := n.Ids(0, tc.Vdd, 0); math.Abs(i) > 1e-6 {
		t.Fatalf("NMOS off-current = %g, want ~0", i)
	}
	// PMOS on: gate low, source at Vdd, drain low → current flows
	// source→drain, i.e. negative drain→source.
	if i := p.Ids(0, 0, tc.Vdd); i >= 0 {
		t.Fatalf("PMOS on-current = %g, want < 0", i)
	}
	// PMOS off.
	if i := p.Ids(tc.Vdd, 0, tc.Vdd); math.Abs(i) > 1e-6 {
		t.Fatalf("PMOS off-current = %g, want ~0", i)
	}
}

func TestMosfetSaturationMonotoneInWidth(t *testing.T) {
	tc := t90()
	small := &Mosfet{Kind: NMOS, Width: 1e-6, Params: tc.NMOS}
	big := &Mosfet{Kind: NMOS, Width: 2e-6, Params: tc.NMOS}
	is, ib := small.Ids(tc.Vdd, tc.Vdd, 0), big.Ids(tc.Vdd, tc.Vdd, 0)
	if math.Abs(ib/is-2) > 1e-9 {
		t.Fatalf("saturation current not linear in width: %g vs %g", is, ib)
	}
}

func TestMosfetCurrentContinuity(t *testing.T) {
	// Scan Vds through the saturation knee; current must be smooth
	// (no jumps) and monotone non-decreasing for fixed Vgs.
	tc := t90()
	m := &Mosfet{Kind: NMOS, Width: 1e-6, Params: tc.NMOS}
	fullScale := m.Ids(tc.Vdd, tc.Vdd, 0)
	prev := 0.0
	for vds := 0.0; vds <= tc.Vdd; vds += 0.001 {
		id := m.Ids(tc.Vdd, vds, 0)
		if id < prev-1e-9 {
			t.Fatalf("current non-monotone at Vds=%g: %g < %g", vds, id, prev)
		}
		// No jump larger than 2% of full scale per 1 mV step.
		if vds > 0 && math.Abs(id-prev) > 0.02*fullScale {
			t.Fatalf("current jump at Vds=%g: %g → %g", vds, prev, id)
		}
		prev = id
	}
}

func TestOffCurrentLinearInWidth(t *testing.T) {
	tc := t90()
	a := &Mosfet{Kind: NMOS, Width: 1e-6, Params: tc.NMOS}
	b := &Mosfet{Kind: NMOS, Width: 3e-6, Params: tc.NMOS}
	if r := b.OffCurrent(tc.Vdd) / a.OffCurrent(tc.Vdd); math.Abs(r-3) > 1e-9 {
		t.Fatalf("off-current ratio %g, want 3", r)
	}
}

// The core physics check: a simulated inverter must switch, with
// plausible delay, and its delay must increase with load and decrease
// with size.
func TestInverterSwitches(t *testing.T) {
	tc := t90()
	fix, err := NewLoadedInverter(tc, 8, 60e-12, 20e-15, Falling)
	if err != nil {
		t.Fatal(err)
	}
	delay, slew, err := fix.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if delay < 1e-12 || delay > 1e-9 {
		t.Fatalf("implausible inverter delay %g s", delay)
	}
	if slew < 1e-12 || slew > 2e-9 {
		t.Fatalf("implausible output slew %g s", slew)
	}
}

func TestInverterDelayMonotoneInLoad(t *testing.T) {
	tc := t90()
	var prev float64
	for i, load := range []float64{5e-15, 20e-15, 80e-15} {
		fix, err := NewLoadedInverter(tc, 8, 60e-12, load, Rising)
		if err != nil {
			t.Fatal(err)
		}
		d, _, err := fix.Measure()
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && d <= prev {
			t.Fatalf("delay not increasing with load: %g then %g", prev, d)
		}
		prev = d
	}
}

func TestInverterDelayDecreasesWithSize(t *testing.T) {
	tc := t90()
	load := 100e-15
	small, err := NewLoadedInverter(tc, 4, 60e-12, load, Falling)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewLoadedInverter(tc, 16, 60e-12, load, Falling)
	if err != nil {
		t.Fatal(err)
	}
	ds, _, err := small.Measure()
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := big.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if db >= ds {
		t.Fatalf("bigger driver slower: D4=%g D16=%g", ds, db)
	}
}

func TestInverterBothEdges(t *testing.T) {
	tc := t90()
	for _, dir := range []Direction{Rising, Falling} {
		fix, err := NewLoadedInverter(tc, 6, 80e-12, 30e-15, dir)
		if err != nil {
			t.Fatal(err)
		}
		d, s, err := fix.Measure()
		if err != nil {
			t.Fatalf("%v edge: %v", dir, err)
		}
		if d <= 0 || s <= 0 {
			t.Fatalf("%v edge: non-positive measurements d=%g s=%g", dir, d, s)
		}
	}
}

func TestFixtureParameterValidation(t *testing.T) {
	tc := t90()
	if _, err := NewLoadedInverter(tc, 0, 60e-12, 1e-15, Rising); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := NewLoadedInverter(tc, 4, 0, 1e-15, Rising); err == nil {
		t.Fatal("zero slew accepted")
	}
	if _, err := NewLoadedInverter(tc, 4, 60e-12, -1, Rising); err == nil {
		t.Fatal("negative load accepted")
	}
}

func TestCrossTimeAndSlew(t *testing.T) {
	tt := []float64{0, 1, 2, 3, 4}
	v := []float64{0, 0.25, 0.5, 0.75, 1.0}
	ct, err := CrossTime(tt, v, 0.5, Rising)
	if err != nil || math.Abs(ct-2) > 1e-12 {
		t.Fatalf("cross = %g err=%v", ct, err)
	}
	if _, err := CrossTime(tt, v, 0.5, Falling); err == nil {
		t.Fatal("no falling crossing exists")
	}
	sl, err := Slew(tt, v, 1.0, Rising)
	if err != nil || math.Abs(sl-3.2) > 1e-9 {
		t.Fatalf("slew = %g err=%v", sl, err)
	}
	if _, err := CrossTime([]float64{0}, []float64{0}, 0.5, Rising); err == nil {
		t.Fatal("single-sample waveform accepted")
	}
}

func TestDirectionString(t *testing.T) {
	if Rising.String() != "rise" || Falling.String() != "fall" {
		t.Fatal("direction strings")
	}
}

func BenchmarkInverterCharacterizationPoint(b *testing.B) {
	tc := t90()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fix, err := NewLoadedInverter(tc, 8, 60e-12, 20e-15, Falling)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := fix.Measure(); err != nil {
			b.Fatal(err)
		}
	}
}
