// Package spice is the circuit-simulation substrate of the
// reproduction: a small nonlinear transient simulator in the spirit of
// SPICE, sufficient to characterize repeater cells (inverters and
// buffers) the way the paper characterizes them with HSPICE and BSIM
// models.
//
// Scope and deliberate simplifications:
//
//   - MOSFETs use the Sakurai–Newton alpha-power law with an
//     EKV-style smoothed overdrive, which reproduces the phenomena the
//     paper's models are fitted to — near-quadratic intrinsic delay vs
//     input slew, drive resistance inversely proportional to width and
//     linear in slew, slew strongly linear in load — without the
//     hundreds of BSIM parameters.
//   - Device capacitances are not built into the transistor model;
//     the netlist builders add explicit linear gate, overlap (Miller),
//     and diffusion capacitors. This keeps the nonlinear system small
//     and the charge bookkeeping transparent.
//   - Integration is backward Euler with a fixed step chosen from the
//     stimulus; the circuits involved (a repeater driving a lumped
//     load) are stiff-free at the step sizes used.
//   - Voltage sources are ground-referenced (rails and inputs), so
//     nodal analysis suffices — no MNA branch currents.
package spice

import (
	"math"

	"repro/internal/tech"
)

// DeviceKind distinguishes the two MOSFET polarities.
type DeviceKind int

const (
	// NMOS conducts when the gate is high relative to the source.
	NMOS DeviceKind = iota
	// PMOS conducts when the gate is low relative to the source.
	PMOS
)

// Mosfet is a transistor instance: an alpha-power-law drain-current
// element between Drain and Source controlled by Gate. Width is the
// device width in meters; Params carries the per-polarity technology
// parameters.
type Mosfet struct {
	Kind                DeviceKind
	Drain, Gate, Source int // node indices (see Circuit)
	Width               float64
	Params              tech.Device
}

// smoothOverdrive returns an everywhere-positive, smooth approximation
// of max(0, vov) that transitions over ~2·n·vT, giving the solver a
// continuous first derivative through threshold.
func smoothOverdrive(vov, nvt float64) float64 {
	s := 2 * nvt
	x := vov / s
	if x > 30 {
		return vov // exp would overflow; asymptote is exact
	}
	return s * math.Log1p(math.Exp(x))
}

// Ids returns the drain-to-source current (A) of the device for the
// given terminal voltages, positive flowing drain→source for NMOS.
// The model is symmetric: if the nominal drain is biased below the
// nominal source (NMOS), the terminals swap internally.
func (m *Mosfet) Ids(vg, vd, vs float64) float64 {
	p := m.Params
	nvt := p.SubthresholdSlopeN * tech.ThermalVoltage

	var vgs, vds, sign float64
	switch m.Kind {
	case NMOS:
		if vd >= vs {
			vgs, vds, sign = vg-vs, vd-vs, 1
		} else { // swapped operation: physical source is the drain pin
			vgs, vds, sign = vg-vd, vs-vd, -1
		}
	default: // PMOS: everything mirrors
		if vd <= vs {
			vgs, vds, sign = vs-vg, vs-vd, 1
		} else {
			vgs, vds, sign = vd-vg, vd-vs, -1
		}
	}

	veff := smoothOverdrive(vgs-p.Vth, nvt)
	if veff <= 0 {
		return 0
	}
	idsat := p.K * m.Width * math.Pow(veff, p.Alpha)
	vdsat := p.VdsatCoeff * math.Pow(veff, p.Alpha/2)
	var id float64
	if vds >= vdsat {
		id = idsat
	} else {
		x := vds / vdsat
		id = idsat * x * (2 - x)
	}
	id *= 1 + p.Lambda*vds
	if m.Kind == PMOS {
		// For PMOS, positive internal current flows source→drain;
		// report as drain→source to match the NMOS convention.
		return -sign * id
	}
	return sign * id
}

// OffCurrent returns the subthreshold (off-state) leakage current (A)
// of a device of this width with Vgs = 0 and |Vds| = vdd, as the
// characterization flow "measures" for the leakage-power model. It is
// linear in width by construction, matching the paper's observation
// that both subthreshold and gate-tunneling leakage scale with size.
func (m *Mosfet) OffCurrent(vdd float64) float64 {
	vt := tech.ThermalVoltage
	return m.Params.IOff * m.Width * (1 - math.Exp(-vdd/vt))
}
