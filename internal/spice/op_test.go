package spice

import (
	"math"
	"testing"

	"repro/internal/tech"
)

func TestOperatingPointDivider(t *testing.T) {
	c := New()
	in, mid := c.Node("in"), c.Node("mid")
	c.AddResistor(in, mid, 3e3)
	c.AddResistor(mid, Ground, 1e3)
	if err := c.AddSource(in, DC(4)); err != nil {
		t.Fatal(err)
	}
	op, err := c.OperatingPoint(0, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op[mid]-1.0) > 1e-4 {
		t.Fatalf("divider OP %g, want 1.0", op[mid])
	}
}

func TestOperatingPointInverterRails(t *testing.T) {
	tc := tech.MustLookup("90nm")
	for _, cse := range []struct {
		vin, wantOut float64
	}{
		{0, tc.Vdd},
		{tc.Vdd, 0},
	} {
		c := New()
		in, out, vdd := c.Node("in"), c.Node("out"), c.Node("vdd")
		if err := c.AddSource(vdd, DC(tc.Vdd)); err != nil {
			t.Fatal(err)
		}
		if err := c.AddSource(in, DC(cse.vin)); err != nil {
			t.Fatal(err)
		}
		AddInverter(c, tc, 4, in, out, vdd)
		op, err := c.OperatingPoint(0, map[int]float64{out: tc.Vdd / 2}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(op[out]-cse.wantOut) > 0.02*tc.Vdd {
			t.Fatalf("vin=%g: out %g, want %g", cse.vin, op[out], cse.wantOut)
		}
	}
}

func TestInverterVTCMonotone(t *testing.T) {
	// The static transfer curve must fall monotonically from Vdd to
	// 0 as the input sweeps upward, with the switching threshold
	// somewhere mid-rail.
	tc := tech.MustLookup("90nm")
	prev := tc.Vdd + 1
	var vm float64
	for _, frac := range []float64{0, 0.2, 0.35, 0.5, 0.65, 0.8, 1.0} {
		vin := frac * tc.Vdd
		c := New()
		in, out, vdd := c.Node("in"), c.Node("out"), c.Node("vdd")
		if err := c.AddSource(vdd, DC(tc.Vdd)); err != nil {
			t.Fatal(err)
		}
		if err := c.AddSource(in, DC(vin)); err != nil {
			t.Fatal(err)
		}
		AddInverter(c, tc, 8, in, out, vdd)
		op, err := c.OperatingPoint(0, map[int]float64{out: tc.Vdd * (1 - frac)}, 0)
		if err != nil {
			t.Fatalf("vin=%g: %v", vin, err)
		}
		vout := op[out]
		if vout > prev+1e-3 {
			t.Fatalf("VTC not monotone at vin=%g: %g after %g", vin, vout, prev)
		}
		if frac == 0.5 {
			vm = vout
		}
		prev = vout
	}
	// At mid-rail input the output should be in transition, not
	// pinned at a rail.
	if vm < 0.05*tc.Vdd || vm > 0.95*tc.Vdd {
		t.Fatalf("VTC at mid-rail pinned: %g", vm)
	}
}

func TestOperatingPointFrozenWaveform(t *testing.T) {
	// The OP must freeze time-varying sources at the requested time.
	c := New()
	in, out := c.Node("in"), c.Node("out")
	c.AddResistor(in, out, 1e3)
	c.AddCapacitor(out, Ground, 1e-15)
	if err := c.AddSource(in, Ramp(0, 2, 0, 10e-9)); err != nil {
		t.Fatal(err)
	}
	op, err := c.OperatingPoint(5e-9, nil, 0) // mid-ramp: 1V
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op[out]-1.0) > 1e-3 {
		t.Fatalf("frozen-source OP %g, want 1.0", op[out])
	}
}
