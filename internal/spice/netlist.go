package spice

import (
	"fmt"

	"repro/internal/tech"
)

// Gate-capacitance partition used when instantiating devices: the bulk
// of the gate charge terminates on the channel/rails, while a fraction
// overlaps the drain and produces the Miller kick that couples input
// transitions onto the output.
const (
	gateChannelFrac = 0.80
	gateOverlapFrac = 0.20
)

// InverterCells describes the node indices of one instantiated
// inverter.
type InverterCells struct {
	In, Out, Vdd int
	WN, WP       float64
}

// AddInverter instantiates a size-k inverter (k times the technology's
// unit widths, constant P/N ratio) between the given nodes, including
// its explicit device capacitances: channel gate capacitance to the
// rails, gate-drain overlap (Miller) capacitance, and drain diffusion
// capacitance on the output.
func AddInverter(c *Circuit, tc *tech.Technology, size float64, in, out, vdd int) InverterCells {
	wn, wp := tc.InverterWidths(size)
	c.AddMosfet(&Mosfet{Kind: NMOS, Drain: out, Gate: in, Source: Ground, Width: wn, Params: tc.NMOS})
	c.AddMosfet(&Mosfet{Kind: PMOS, Drain: out, Gate: in, Source: vdd, Width: wp, Params: tc.PMOS})

	cgTotal := tc.NMOS.CGate*wn + tc.PMOS.CGate*wp
	// Channel charge splits between the two rails; electrically both
	// are AC ground, so a single capacitor to ground is equivalent.
	c.AddCapacitor(in, Ground, gateChannelFrac*cgTotal)
	c.AddCapacitor(in, out, gateOverlapFrac*cgTotal)
	// Diffusion plus a small size-independent cell-internal routing
	// parasitic: real cells do not scale perfectly with drive
	// strength, which is what keeps the paper's regressions from
	// being trivially exact.
	fixed := cellFixedCap(tc)
	c.AddCapacitor(out, Ground, tc.NMOS.CDiff*wn+tc.PMOS.CDiff*wp+fixed)
	return InverterCells{In: in, Out: out, Vdd: vdd, WN: wn, WP: wp}
}

// cellFixedCap returns the size-independent intra-cell routing
// parasitic on a repeater's output: a quarter of a unit-width
// diffusion's worth of metal.
func cellFixedCap(tc *tech.Technology) float64 {
	return 0.25 * tc.NMOS.CDiff * tc.UnitWidthN
}

// InverterInputCap returns the static input capacitance (F) of a
// size-k inverter as the characterization flow reports it to the
// library: the full gate capacitance of both devices.
func InverterInputCap(tc *tech.Technology, size float64) float64 {
	wn, wp := tc.InverterWidths(size)
	return tc.NMOS.CGate*wn + tc.PMOS.CGate*wp
}

// LoadedInverter is a ready-to-simulate characterization fixture: a
// ramp-driven inverter with a lumped capacitive load, the circuit the
// paper sweeps to build its repeater data set.
type LoadedInverter struct {
	Circuit *Circuit
	Tech    *tech.Technology
	In, Out int
	// Dir is the *output* transition direction.
	Dir Direction
	// Slew is the input 10–90% transition time (s).
	Slew float64
	// Load is the lumped load capacitance (F).
	Load float64
	// Size is the repeater drive strength in unit-inverter multiples.
	Size float64
	// Stop is the suggested simulation end time.
	Stop float64
}

// NewLoadedInverter builds the fixture. size is the repeater drive
// strength (multiples of the unit inverter), inSlew the input 10–90%
// transition time in seconds, load the lumped output load in farads,
// and outDir the output transition to characterize (Rising output
// means a falling input ramp).
func NewLoadedInverter(tc *tech.Technology, size, inSlew, load float64, outDir Direction) (*LoadedInverter, error) {
	if size <= 0 || inSlew <= 0 || load < 0 {
		return nil, fmt.Errorf("spice: bad fixture parameters size=%g slew=%g load=%g", size, inSlew, load)
	}
	c := New()
	in, out, vdd := c.Node("in"), c.Node("out"), c.Node("vdd")
	if err := c.AddSource(vdd, DC(tc.Vdd)); err != nil {
		return nil, err
	}
	ramp := RampFromSlew(inSlew)
	start := 0.2 * ramp
	var w Waveform
	if outDir == Rising {
		w = Ramp(tc.Vdd, 0, start, ramp) // falling input
	} else {
		w = Ramp(0, tc.Vdd, start, ramp)
	}
	if err := c.AddSource(in, w); err != nil {
		return nil, err
	}
	AddInverter(c, tc, size, in, out, vdd)
	c.AddCapacitor(out, Ground, load)

	fix := &LoadedInverter{
		Circuit: c, Tech: tc, In: in, Out: out,
		Dir: outDir, Slew: inSlew, Load: load, Size: size,
	}
	// Settle time: input ramp plus a generous multiple of the output
	// charging time scale (load over weaker-device drive current).
	fix.Stop = start + ramp + fix.loadTimeScale()*14
	return fix, nil
}

// loadTimeScale estimates the output charging time scale from the
// weaker device's saturation current and the total load; it is used
// only to size the simulation window and step.
func (f *LoadedInverter) loadTimeScale() float64 {
	tc := f.Tech
	wn, wp := tc.InverterWidths(f.Size)
	iOnN := tc.NMOS.K * wn
	iOnP := tc.PMOS.K * wp
	iOn := iOnN
	if iOnP < iOn {
		iOn = iOnP
	}
	cTot := f.Load + InverterInputCap(tc, f.Size)
	ts := cTot * tc.Vdd / iOn
	if ts < 5e-12 {
		ts = 5e-12
	}
	return ts
}

// Measure runs the transient simulation and returns the propagation
// delay (input 50% to output 50%) and the output 10–90% slew, both in
// seconds.
func (f *LoadedInverter) Measure() (delay, outSlew float64, err error) {
	inDir := Falling
	if f.Dir == Falling {
		inDir = Rising
	}
	initOut := 0.0
	if f.Dir == Falling {
		initOut = f.Tech.Vdd
	}
	// Step: fine enough to resolve both the input ramp and the output
	// transition, bounded so the total step count stays modest.
	step := f.Slew / 80
	if ts := f.loadTimeScale() / 40; ts < step {
		step = ts
	}
	if minStep := f.Stop / 8000; step < minStep {
		step = minStep
	}
	res, err := f.Circuit.Transient(TransientOpts{
		Stop:     f.Stop,
		Step:     step,
		InitialV: map[int]float64{f.Out: initOut},
		Record:   []int{f.In, f.Out},
	})
	if err != nil {
		return 0, 0, err
	}
	vin, vout := res.Voltage(f.In), res.Voltage(f.Out)
	delay, err = Delay(res.Time, vin, vout, f.Tech.Vdd, inDir, f.Dir)
	if err != nil {
		return 0, 0, fmt.Errorf("delay measurement: %w", err)
	}
	outSlew, err = Slew(res.Time, vout, f.Tech.Vdd, f.Dir)
	if err != nil {
		return 0, 0, fmt.Errorf("slew measurement: %w", err)
	}
	return delay, outSlew, nil
}
