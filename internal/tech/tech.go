// Package tech provides the per-node technology descriptors the paper's
// models are calibrated against: device parameters for the circuit
// simulation substrate, wire-layer geometry for parasitic extraction,
// copper resistivity data for the scattering/barrier corrections, and
// the early library-development values (row height, contact pitch) the
// predictive area model consumes.
//
// The paper uses TSMC 90- and 65-nm high-performance libraries, a
// foundry 45-nm low-power library, and PTM-based 32-, 22-, and 16-nm
// high-performance device models, with wire geometry from LEF/ITF files
// and the ITRS. None of those proprietary sources are redistributable,
// so this package carries six built-in descriptors whose values follow
// the public ITRS/PTM scaling trends. Two deliberate properties of the
// paper's inputs are preserved because the evaluation depends on them:
// the 45-nm node is a low-power flavor (higher threshold, lower
// leakage) and its supply is 1.1 V versus 1.0 V at 65 nm — the jump
// that drives the dynamic-power increase from 65 to 45 nm in Table III.
package tech

import (
	"fmt"
	"sort"
	"sync"
)

// Physical constants.
const (
	// Eps0 is the vacuum permittivity in F/m.
	Eps0 = 8.854e-12
	// ThermalVoltage is kT/q at ~300 K in volts, used by the
	// subthreshold leakage model.
	ThermalVoltage = 0.0259
)

// Flavor distinguishes high-performance from low-power process flavors.
type Flavor int

const (
	// HighPerformance marks nodes characterized for speed (low Vth,
	// high leakage).
	HighPerformance Flavor = iota
	// LowPower marks nodes characterized for leakage (high Vth).
	LowPower
)

func (f Flavor) String() string {
	if f == LowPower {
		return "LP"
	}
	return "HP"
}

// WireLayer describes the geometry and dielectric environment of one
// routing layer at minimum width and spacing. All lengths in meters.
type WireLayer struct {
	// Width is the minimum wire width.
	Width float64
	// Spacing is the minimum edge-to-edge spacing to a neighbor.
	Spacing float64
	// Thickness is the metal thickness.
	Thickness float64
	// ILD is the inter-layer dielectric thickness to the plane
	// above/below.
	ILD float64
	// EpsRel is the relative permittivity of the surrounding
	// dielectric.
	EpsRel float64
}

// Pitch returns the wire pitch (width + spacing).
func (l WireLayer) Pitch() float64 { return l.Width + l.Spacing }

// Device holds the alpha-power-law (Sakurai–Newton) parameters for one
// transistor polarity, normalized per meter of device width.
type Device struct {
	// Vth is the threshold voltage magnitude in volts.
	Vth float64
	// K is the saturation transconductance in A/(m·V^Alpha): the
	// saturation current of a device of width W driven at Vgs is
	// K·W·(|Vgs|−Vth)^Alpha.
	K float64
	// Alpha is the velocity-saturation index (2 = long channel,
	// →1 with increasing velocity saturation).
	Alpha float64
	// VdsatCoeff relates the saturation drain voltage to overdrive:
	// Vdsat = VdsatCoeff·(|Vgs|−Vth)^(Alpha/2).
	VdsatCoeff float64
	// Lambda is the channel-length-modulation coefficient in 1/V.
	Lambda float64
	// IOff is the subthreshold leakage current per meter of width
	// (A/m) at Vgs = 0, Vds = Vdd.
	IOff float64
	// SubthresholdSlopeN is the subthreshold ideality factor n in
	// exp(Vgs/(n·vT)).
	SubthresholdSlopeN float64
	// CGate is the gate capacitance per meter of width (F/m).
	CGate float64
	// CDiff is the drain-diffusion capacitance per meter of width
	// (F/m).
	CDiff float64
}

// Technology aggregates everything the substrates need for one node.
type Technology struct {
	// Name is a short label such as "90nm".
	Name string
	// Feature is the node's feature size in meters (e.g. 90e-9).
	Feature float64
	// Flavor records whether the node is HP or LP.
	Flavor Flavor
	// Vdd is the nominal supply voltage in volts.
	Vdd float64
	// NMOS and PMOS are the device parameter sets.
	NMOS, PMOS Device
	// PNRatio is wp/wn used for all repeaters in the node's library.
	PNRatio float64
	// UnitWidthN is the nMOS width of a drive-strength-1 (D1)
	// inverter in meters; a Dk repeater uses k times this width.
	UnitWidthN float64
	// Global and Intermediate are the routing layers used for global
	// and intermediate wiring.
	Global, Intermediate WireLayer
	// RhoBulk is the bulk copper resistivity in Ω·m (process copper,
	// slightly above ideal).
	RhoBulk float64
	// MeanFreePath is the electron mean free path in copper (m),
	// used by the width-dependent scattering correction.
	MeanFreePath float64
	// ScatterCoeff is the dimensionless prefactor of the closed-form
	// scattering correction ρ(w) = ρ0·(1 + ScatterCoeff·λ/w_eff).
	ScatterCoeff float64
	// Barrier is the diffusion-barrier (Ta/TaN) thickness in meters;
	// it reduces the conducting cross-section of the copper line.
	Barrier float64
	// RowHeight is the standard-cell row height in meters.
	RowHeight float64
	// ContactPitch is the contacted poly pitch in meters.
	ContactPitch float64
	// Clock is the NoC operating frequency (Hz) used by the paper's
	// Table III for this node (1.5/2.25/3.0 GHz at 90/65/45 nm).
	Clock float64
}

// InverterWidths returns the nMOS and pMOS widths of a size-k repeater
// (k times the unit inverter, constant P/N ratio).
func (t *Technology) InverterWidths(size float64) (wn, wp float64) {
	wn = size * t.UnitWidthN
	wp = wn * t.PNRatio
	return wn, wp
}

// String implements fmt.Stringer.
func (t *Technology) String() string {
	return fmt.Sprintf("%s %s (Vdd=%.2gV, clk=%.3gGHz)", t.Name, t.Flavor, t.Vdd, t.Clock/1e9)
}

// nodes is the built-in technology set, keyed by name. Values follow
// ITRS/PTM-style scaling; see the package comment for provenance.
var nodes = map[string]*Technology{
	"90nm": {
		Name: "90nm", Feature: 90e-9, Flavor: HighPerformance, Vdd: 1.2,
		NMOS: Device{Vth: 0.32, K: 700, Alpha: 1.35, VdsatCoeff: 0.75,
			Lambda: 0.06, IOff: 40e-3, SubthresholdSlopeN: 1.5,
			CGate: 1.8e-9, CDiff: 1.1e-9},
		PMOS: Device{Vth: 0.34, K: 350, Alpha: 1.40, VdsatCoeff: 0.85,
			Lambda: 0.08, IOff: 20e-3, SubthresholdSlopeN: 1.5,
			CGate: 1.8e-9, CDiff: 1.1e-9},
		PNRatio: 2.0, UnitWidthN: 0.45e-6,
		Global:       WireLayer{Width: 400e-9, Spacing: 400e-9, Thickness: 800e-9, ILD: 800e-9, EpsRel: 3.3},
		Intermediate: WireLayer{Width: 200e-9, Spacing: 200e-9, Thickness: 400e-9, ILD: 400e-9, EpsRel: 3.3},
		RhoBulk:      1.9e-8, MeanFreePath: 39e-9, ScatterCoeff: 0.45, Barrier: 12e-9,
		RowHeight: 2.8e-6, ContactPitch: 0.28e-6, Clock: 1.5e9,
	},
	"65nm": {
		Name: "65nm", Feature: 65e-9, Flavor: HighPerformance, Vdd: 1.0,
		NMOS: Device{Vth: 0.30, K: 920, Alpha: 1.30, VdsatCoeff: 0.72,
			Lambda: 0.07, IOff: 80e-3, SubthresholdSlopeN: 1.5,
			CGate: 1.6e-9, CDiff: 1.0e-9},
		PMOS: Device{Vth: 0.32, K: 460, Alpha: 1.35, VdsatCoeff: 0.82,
			Lambda: 0.09, IOff: 40e-3, SubthresholdSlopeN: 1.5,
			CGate: 1.6e-9, CDiff: 1.0e-9},
		PNRatio: 2.0, UnitWidthN: 0.325e-6,
		Global:       WireLayer{Width: 290e-9, Spacing: 290e-9, Thickness: 600e-9, ILD: 600e-9, EpsRel: 3.0},
		Intermediate: WireLayer{Width: 145e-9, Spacing: 145e-9, Thickness: 300e-9, ILD: 300e-9, EpsRel: 3.0},
		RhoBulk:      1.95e-8, MeanFreePath: 39e-9, ScatterCoeff: 0.45, Barrier: 9e-9,
		RowHeight: 2.0e-6, ContactPitch: 0.20e-6, Clock: 2.25e9,
	},
	// The 45-nm node is a low-power flavor in the paper, with a
	// library supply of 1.1 V (up from 1.0 V at 65 nm).
	"45nm": {
		Name: "45nm", Feature: 45e-9, Flavor: LowPower, Vdd: 1.1,
		NMOS: Device{Vth: 0.42, K: 760, Alpha: 1.30, VdsatCoeff: 0.74,
			Lambda: 0.05, IOff: 6e-3, SubthresholdSlopeN: 1.4,
			CGate: 1.4e-9, CDiff: 0.9e-9},
		PMOS: Device{Vth: 0.44, K: 380, Alpha: 1.35, VdsatCoeff: 0.84,
			Lambda: 0.07, IOff: 3e-3, SubthresholdSlopeN: 1.4,
			CGate: 1.4e-9, CDiff: 0.9e-9},
		PNRatio: 2.0, UnitWidthN: 0.225e-6,
		Global:       WireLayer{Width: 205e-9, Spacing: 205e-9, Thickness: 430e-9, ILD: 430e-9, EpsRel: 2.8},
		Intermediate: WireLayer{Width: 103e-9, Spacing: 103e-9, Thickness: 215e-9, ILD: 215e-9, EpsRel: 2.8},
		RhoBulk:      2.0e-8, MeanFreePath: 39e-9, ScatterCoeff: 0.45, Barrier: 7e-9,
		RowHeight: 1.4e-6, ContactPitch: 0.14e-6, Clock: 3.0e9,
	},
	"32nm": {
		Name: "32nm", Feature: 32e-9, Flavor: HighPerformance, Vdd: 0.9,
		NMOS: Device{Vth: 0.28, K: 1500, Alpha: 1.25, VdsatCoeff: 0.70,
			Lambda: 0.09, IOff: 150e-3, SubthresholdSlopeN: 1.6,
			CGate: 1.3e-9, CDiff: 0.85e-9},
		PMOS: Device{Vth: 0.30, K: 800, Alpha: 1.30, VdsatCoeff: 0.80,
			Lambda: 0.11, IOff: 80e-3, SubthresholdSlopeN: 1.6,
			CGate: 1.3e-9, CDiff: 0.85e-9},
		PNRatio: 1.9, UnitWidthN: 0.16e-6,
		Global:       WireLayer{Width: 145e-9, Spacing: 145e-9, Thickness: 300e-9, ILD: 300e-9, EpsRel: 2.6},
		Intermediate: WireLayer{Width: 72e-9, Spacing: 72e-9, Thickness: 150e-9, ILD: 150e-9, EpsRel: 2.6},
		RhoBulk:      2.1e-8, MeanFreePath: 39e-9, ScatterCoeff: 0.45, Barrier: 5e-9,
		RowHeight: 1.0e-6, ContactPitch: 0.10e-6, Clock: 3.5e9,
	},
	"22nm": {
		Name: "22nm", Feature: 22e-9, Flavor: HighPerformance, Vdd: 0.8,
		NMOS: Device{Vth: 0.26, K: 1900, Alpha: 1.20, VdsatCoeff: 0.68,
			Lambda: 0.10, IOff: 200e-3, SubthresholdSlopeN: 1.6,
			CGate: 1.2e-9, CDiff: 0.8e-9},
		PMOS: Device{Vth: 0.28, K: 1050, Alpha: 1.25, VdsatCoeff: 0.78,
			Lambda: 0.12, IOff: 110e-3, SubthresholdSlopeN: 1.6,
			CGate: 1.2e-9, CDiff: 0.8e-9},
		PNRatio: 1.8, UnitWidthN: 0.11e-6,
		Global:       WireLayer{Width: 105e-9, Spacing: 105e-9, Thickness: 220e-9, ILD: 220e-9, EpsRel: 2.4},
		Intermediate: WireLayer{Width: 52e-9, Spacing: 52e-9, Thickness: 110e-9, ILD: 110e-9, EpsRel: 2.4},
		RhoBulk:      2.2e-8, MeanFreePath: 39e-9, ScatterCoeff: 0.45, Barrier: 4e-9,
		RowHeight: 0.72e-6, ContactPitch: 0.072e-6, Clock: 4.0e9,
	},
	"16nm": {
		Name: "16nm", Feature: 16e-9, Flavor: HighPerformance, Vdd: 0.7,
		NMOS: Device{Vth: 0.25, K: 2400, Alpha: 1.15, VdsatCoeff: 0.66,
			Lambda: 0.11, IOff: 250e-3, SubthresholdSlopeN: 1.7,
			CGate: 1.1e-9, CDiff: 0.75e-9},
		PMOS: Device{Vth: 0.27, K: 1400, Alpha: 1.20, VdsatCoeff: 0.76,
			Lambda: 0.13, IOff: 150e-3, SubthresholdSlopeN: 1.7,
			CGate: 1.1e-9, CDiff: 0.75e-9},
		PNRatio: 1.7, UnitWidthN: 0.08e-6,
		Global:       WireLayer{Width: 75e-9, Spacing: 75e-9, Thickness: 160e-9, ILD: 160e-9, EpsRel: 2.2},
		Intermediate: WireLayer{Width: 38e-9, Spacing: 38e-9, Thickness: 80e-9, ILD: 80e-9, EpsRel: 2.2},
		RhoBulk:      2.3e-8, MeanFreePath: 39e-9, ScatterCoeff: 0.45, Barrier: 3e-9,
		RowHeight: 0.52e-6, ContactPitch: 0.052e-6, Clock: 4.5e9,
	},
}

// nodesMu guards the registry against concurrent Register/Lookup.
// The built-in entries are never removed.
var nodesMu sync.RWMutex

// Lookup returns the technology descriptor with the given name — one
// of the built-ins ("90nm" … "16nm") or a descriptor added with
// Register. The returned pointer refers to shared data and must not
// be mutated; use Clone for a private copy.
func Lookup(name string) (*Technology, error) {
	nodesMu.RLock()
	t, ok := nodes[name]
	nodesMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("tech: unknown technology %q (have %v)", name, Names())
	}
	return t, nil
}

// Register adds a user-supplied descriptor (for example one loaded
// with LoadJSON) to the registry, making it available to every
// consumer that looks technologies up by name. The descriptor is
// validated first; registering over an existing name is an error.
func Register(t *Technology) error {
	if err := t.Validate(); err != nil {
		return err
	}
	nodesMu.Lock()
	defer nodesMu.Unlock()
	if _, exists := nodes[t.Name]; exists {
		return fmt.Errorf("tech: technology %q already registered", t.Name)
	}
	nodes[t.Name] = t.Clone()
	return nil
}

// MustLookup is Lookup for known-good names; it panics on failure and
// is intended for tests and table-driven tools.
func MustLookup(name string) *Technology {
	t, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return t
}

// Names returns the available technology names, largest node first.
func Names() []string {
	nodesMu.RLock()
	defer nodesMu.RUnlock()
	out := make([]string, 0, len(nodes))
	for n := range nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		return nodes[out[i]].Feature > nodes[out[j]].Feature
	})
	return out
}

// All returns all registered technologies, largest node first.
func All() []*Technology {
	names := Names()
	nodesMu.RLock()
	defer nodesMu.RUnlock()
	out := make([]*Technology, len(names))
	for i, n := range names {
		out[i] = nodes[n]
	}
	return out
}

// Clone returns a deep copy of t that the caller may mutate (for
// what-if studies such as disabling the barrier correction).
func (t *Technology) Clone() *Technology {
	c := *t
	return &c
}

// Validate checks the internal consistency of a descriptor: positive
// geometry, supply above both thresholds, sane ratios. It exists so
// user-supplied descriptors fail loudly instead of producing NaNs deep
// inside a simulation.
func (t *Technology) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("tech %s: %s", t.Name, fmt.Sprintf(format, args...))
	}
	if t.Feature <= 0 {
		return fail("feature size must be positive")
	}
	if t.Vdd <= t.NMOS.Vth || t.Vdd <= t.PMOS.Vth {
		return fail("Vdd %.3g does not exceed thresholds (%.3g/%.3g)", t.Vdd, t.NMOS.Vth, t.PMOS.Vth)
	}
	for _, d := range []struct {
		name string
		dev  Device
	}{{"nmos", t.NMOS}, {"pmos", t.PMOS}} {
		if d.dev.K <= 0 || d.dev.Alpha < 1 || d.dev.Alpha > 2 {
			return fail("%s K/alpha out of range", d.name)
		}
		if d.dev.CGate <= 0 || d.dev.CDiff <= 0 {
			return fail("%s capacitances must be positive", d.name)
		}
		if d.dev.IOff < 0 || d.dev.SubthresholdSlopeN < 1 {
			return fail("%s leakage parameters out of range", d.name)
		}
		if d.dev.VdsatCoeff <= 0 || d.dev.Lambda < 0 {
			return fail("%s Vdsat/lambda out of range", d.name)
		}
	}
	if t.PNRatio <= 0 || t.UnitWidthN <= 0 {
		return fail("sizing parameters must be positive")
	}
	for _, l := range []struct {
		name  string
		layer WireLayer
	}{{"global", t.Global}, {"intermediate", t.Intermediate}} {
		w := l.layer
		if w.Width <= 0 || w.Spacing <= 0 || w.Thickness <= 0 || w.ILD <= 0 || w.EpsRel < 1 {
			return fail("%s wire layer has non-physical geometry", l.name)
		}
	}
	if t.RhoBulk <= 0 || t.MeanFreePath <= 0 || t.ScatterCoeff < 0 {
		return fail("resistivity parameters out of range")
	}
	if t.Barrier < 0 || 2*t.Barrier >= t.Global.Width {
		return fail("barrier thickness %.3g incompatible with global width %.3g", t.Barrier, t.Global.Width)
	}
	if t.RowHeight <= 0 || t.ContactPitch <= 0 || t.RowHeight <= 4*t.ContactPitch {
		return fail("row height %.3g must exceed 4×contact pitch %.3g", t.RowHeight, t.ContactPitch)
	}
	if t.Clock <= 0 {
		return fail("clock must be positive")
	}
	return nil
}
