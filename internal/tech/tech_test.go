package tech

import (
	"strings"
	"testing"
)

func TestAllBuiltinsValidate(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("expected 6 built-in nodes, got %d", len(all))
	}
	for _, tc := range all {
		if err := tc.Validate(); err != nil {
			t.Errorf("%s: %v", tc.Name, err)
		}
	}
}

func TestNamesOrdering(t *testing.T) {
	names := Names()
	want := []string{"90nm", "65nm", "45nm", "32nm", "22nm", "16nm"}
	if len(names) != len(want) {
		t.Fatalf("got %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("28nm"); err == nil {
		t.Fatal("expected error for unknown node")
	} else if !strings.Contains(err.Error(), "28nm") {
		t.Fatalf("error should name the node: %v", err)
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup should panic on unknown name")
		}
	}()
	MustLookup("7nm")
}

func TestScalingTrends(t *testing.T) {
	all := All() // largest node first
	for i := 1; i < len(all); i++ {
		prev, cur := all[i-1], all[i]
		if cur.Feature >= prev.Feature {
			t.Errorf("%s feature %g !< %s %g", cur.Name, cur.Feature, prev.Name, prev.Feature)
		}
		if cur.Global.Width >= prev.Global.Width {
			t.Errorf("%s global width did not shrink", cur.Name)
		}
		if cur.RowHeight >= prev.RowHeight {
			t.Errorf("%s row height did not shrink", cur.Name)
		}
		if cur.Clock <= prev.Clock {
			t.Errorf("%s clock did not increase", cur.Name)
		}
	}
}

// The paper's Table III discussion depends on the 65→45 nm supply
// increase (1.0 V → 1.1 V) and on 45 nm being a low-power flavor.
func TestPaperSpecificProperties(t *testing.T) {
	n65, n45 := MustLookup("65nm"), MustLookup("45nm")
	if !(n45.Vdd > n65.Vdd) {
		t.Fatalf("45nm Vdd (%g) must exceed 65nm Vdd (%g)", n45.Vdd, n65.Vdd)
	}
	if n45.Flavor != LowPower {
		t.Fatal("45nm node must be low-power flavor")
	}
	if n45.NMOS.IOff >= n65.NMOS.IOff {
		t.Fatal("45nm LP leakage must be below 65nm HP leakage")
	}
	if c := MustLookup("90nm").Clock; c != 1.5e9 {
		t.Fatalf("90nm clock = %g, want 1.5 GHz", c)
	}
	if c := n65.Clock; c != 2.25e9 {
		t.Fatalf("65nm clock = %g, want 2.25 GHz", c)
	}
	if c := n45.Clock; c != 3.0e9 {
		t.Fatalf("45nm clock = %g, want 3.0 GHz", c)
	}
}

func TestInverterWidths(t *testing.T) {
	tc := MustLookup("90nm")
	wn, wp := tc.InverterWidths(4)
	if wn != 4*tc.UnitWidthN {
		t.Fatalf("wn = %g", wn)
	}
	if wp != wn*tc.PNRatio {
		t.Fatalf("wp = %g", wp)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	orig := MustLookup("90nm")
	c := orig.Clone()
	c.Barrier = 0
	c.Name = "90nm-nobarrier"
	if orig.Barrier == 0 {
		t.Fatal("clone mutation leaked into shared descriptor")
	}
}

func TestValidateCatchesBadDescriptors(t *testing.T) {
	mk := func(mutate func(*Technology)) *Technology {
		c := MustLookup("90nm").Clone()
		mutate(c)
		return c
	}
	cases := []struct {
		name string
		tc   *Technology
	}{
		{"vdd below vth", mk(func(t *Technology) { t.Vdd = 0.2 })},
		{"zero K", mk(func(t *Technology) { t.NMOS.K = 0 })},
		{"alpha too big", mk(func(t *Technology) { t.PMOS.Alpha = 2.5 })},
		{"negative ioff", mk(func(t *Technology) { t.NMOS.IOff = -1 })},
		{"zero wire width", mk(func(t *Technology) { t.Global.Width = 0 })},
		{"barrier too thick", mk(func(t *Technology) { t.Barrier = t.Global.Width })},
		{"row height vs contact pitch", mk(func(t *Technology) { t.RowHeight = t.ContactPitch })},
		{"zero clock", mk(func(t *Technology) { t.Clock = 0 })},
		{"negative feature", mk(func(t *Technology) { t.Feature = -1 })},
		{"epsrel below 1", mk(func(t *Technology) { t.Intermediate.EpsRel = 0.5 })},
	}
	for _, c := range cases {
		if err := c.tc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad descriptor", c.name)
		}
	}
}

func TestPitch(t *testing.T) {
	l := WireLayer{Width: 2, Spacing: 3}
	if l.Pitch() != 5 {
		t.Fatalf("pitch = %g", l.Pitch())
	}
}

func TestStringMethods(t *testing.T) {
	tc := MustLookup("45nm")
	s := tc.String()
	for _, sub := range []string{"45nm", "LP", "1.1"} {
		if !strings.Contains(s, sub) {
			t.Errorf("String() = %q missing %q", s, sub)
		}
	}
	if HighPerformance.String() != "HP" {
		t.Error("HP string")
	}
}
