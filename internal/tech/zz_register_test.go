package tech

// Registry mutation tests, isolated in a file that sorts last so the
// earlier tests see the pristine built-in set; each registration is
// cleaned up via direct registry access (same package).

import "testing"

func cleanupNode(t *testing.T, name string) {
	t.Cleanup(func() {
		nodesMu.Lock()
		delete(nodes, name)
		nodesMu.Unlock()
	})
}

func TestRegisterAndLookup(t *testing.T) {
	c := MustLookup("65nm").Clone()
	c.Name = "custom65"
	if err := Register(c); err != nil {
		t.Fatal(err)
	}
	cleanupNode(t, "custom65")

	got, err := Lookup("custom65")
	if err != nil {
		t.Fatal(err)
	}
	if got.Vdd != c.Vdd {
		t.Fatal("registered descriptor mangled")
	}
	// Register stores a copy: mutating the caller's descriptor must
	// not affect the registry.
	c.Vdd = 9
	if again := MustLookup("custom65"); again.Vdd == 9 {
		t.Fatal("registry aliased the caller's descriptor")
	}
	// Names/All include the registration.
	found := false
	for _, n := range Names() {
		if n == "custom65" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered node missing from Names")
	}
}

func TestRegisterRejects(t *testing.T) {
	// Duplicate built-in name.
	dup := MustLookup("90nm").Clone()
	if err := Register(dup); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	// Invalid descriptor.
	bad := MustLookup("90nm").Clone()
	bad.Name = "bad90"
	bad.Vdd = 0.01
	if err := Register(bad); err == nil {
		t.Fatal("invalid descriptor accepted")
	}
	if _, err := Lookup("bad90"); err == nil {
		t.Fatal("failed registration leaked into registry")
	}
}
