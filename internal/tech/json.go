package tech

// JSON serialization for technology descriptors — the stand-in for
// the LEF/ITF/ITRS technology inputs the paper's flow reads. Users
// can export a built-in node, edit it (a new metal stack, a different
// supply), and load it back; Load validates before returning, so a
// bad file fails at the boundary instead of producing NaNs inside a
// simulation.

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serializes the descriptor with indentation.
func (t *Technology) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// LoadJSON reads and validates a descriptor.
func LoadJSON(r io.Reader) (*Technology, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	t := &Technology{}
	if err := dec.Decode(t); err != nil {
		return nil, fmt.Errorf("tech: decoding descriptor: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MarshalJSON flattens the Flavor enum into a string for
// readability.
func (f Flavor) MarshalJSON() ([]byte, error) {
	return json.Marshal(f.String())
}

// UnmarshalJSON accepts "HP"/"LP" (or the raw integers for
// compatibility).
func (f *Flavor) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		switch s {
		case "HP":
			*f = HighPerformance
			return nil
		case "LP":
			*f = LowPower
			return nil
		default:
			return fmt.Errorf("tech: unknown flavor %q", s)
		}
	}
	var i int
	if err := json.Unmarshal(data, &i); err != nil {
		return fmt.Errorf("tech: flavor must be \"HP\", \"LP\", or an integer")
	}
	if i != int(HighPerformance) && i != int(LowPower) {
		return fmt.Errorf("tech: unknown flavor %d", i)
	}
	*f = Flavor(i)
	return nil
}
