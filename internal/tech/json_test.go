package tech

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	for _, name := range Names() {
		orig := MustLookup(name)
		var buf bytes.Buffer
		if err := orig.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := LoadJSON(&buf)
		if err != nil {
			t.Fatalf("%s: %v\n", name, err)
		}
		if !reflect.DeepEqual(orig, back) {
			t.Fatalf("%s: round trip changed the descriptor", name)
		}
	}
}

func TestLoadJSONValidates(t *testing.T) {
	// A descriptor that parses but is physically inconsistent must
	// be rejected at load time.
	bad := MustLookup("90nm").Clone()
	bad.Vdd = 0.1 // below threshold
	var buf bytes.Buffer
	if err := bad.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJSON(&buf); err == nil {
		t.Fatal("invalid descriptor accepted")
	}
}

func TestLoadJSONRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"{",
		`{"Unknown": 1}`,
		`{"Flavor": "XX"}`,
		`{"Flavor": 9}`,
		`{"Flavor": true}`,
	}
	for _, c := range cases {
		if _, err := LoadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestFlavorJSONForms(t *testing.T) {
	// Human-readable form.
	var f Flavor
	if err := f.UnmarshalJSON([]byte(`"LP"`)); err != nil || f != LowPower {
		t.Fatalf("LP: %v %v", f, nil)
	}
	// Integer compatibility form.
	if err := f.UnmarshalJSON([]byte(`0`)); err != nil || f != HighPerformance {
		t.Fatal("integer flavor")
	}
	out, err := LowPower.MarshalJSON()
	if err != nil || string(out) != `"LP"` {
		t.Fatalf("marshal: %s %v", out, err)
	}
}

func TestEditedDescriptorUsable(t *testing.T) {
	// The advertised workflow: export, tweak, reload, use.
	orig := MustLookup("65nm")
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(buf.String(), `"Vdd": 1,`, `"Vdd": 1.05,`, 1)
	if edited == buf.String() {
		t.Fatalf("test setup: Vdd line not found in:\n%s", buf.String()[:200])
	}
	back, err := LoadJSON(strings.NewReader(edited))
	if err != nil {
		t.Fatal(err)
	}
	if back.Vdd != 1.05 {
		t.Fatalf("edit lost: Vdd %g", back.Vdd)
	}
	if back.Clock != orig.Clock {
		t.Fatal("untouched fields drifted")
	}
}
