package coordinator

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no workers succeeded, want error")
	}
	if _, err := New(Config{Workers: []string{"a:1", " "}}); err == nil {
		t.Error("New with a blank worker succeeded, want error")
	}
	if _, err := New(Config{Workers: []string{"a:1", "http://a:1/"}}); err == nil {
		t.Error("New with a duplicate worker succeeded, want error")
	}
	c, err := New(Config{Workers: []string{"host:8080", "http://other:9090/", " padded:1 "}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	want := []string{"http://host:8080", "http://other:9090", "http://padded:1"}
	got := c.Workers()
	if len(got) != len(want) {
		t.Fatalf("Workers() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("worker %d normalized to %q, want %q", i, got[i], want[i])
		}
	}
}

// TestRendezvousOwnership pins the consistent-hash routing: ownership
// is a pure function of (class, worker URL) — stable across coordinator
// instances and across reorderings of the worker list — and classes
// spread over the whole set rather than piling on one replica.
func TestRendezvousOwnership(t *testing.T) {
	workers := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	c1, err := New(Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	// Reversed list: the owning URL (not the index) must be unchanged.
	rev := make([]string, len(workers))
	for i, w := range workers {
		rev[len(workers)-1-i] = w
	}
	c2, err := New(Config{Workers: rev})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	seen := map[string]int{}
	for class := uint64(0); class < 256; class++ {
		h := class * 0x9e3779b97f4a7c15 // spread the toy class ids
		u1 := c1.owner(h).addr
		u2 := c2.owner(h).addr
		if u1 != u2 {
			t.Fatalf("class %d owned by %s in one ordering, %s in another", class, u1, u2)
		}
		seen[u1]++
	}
	if len(seen) != len(workers) {
		t.Errorf("256 classes landed on %d of %d workers: %v", len(seen), len(workers), seen)
	}
	for u, n := range seen {
		if n > 256/2 {
			t.Errorf("worker %s owns %d of 256 classes — rendezvous badly skewed", u, n)
		}
	}
	if !strings.HasPrefix(c1.Workers()[0], "http://") {
		t.Fatalf("unnormalized worker %q", c1.Workers()[0])
	}
}

// TestRendezvousStabilityUnderChurn is the membership-churn contract:
// a single leave moves only the classes the departed worker owned
// (~1/N of them) and leaves every other assignment untouched; the
// worker rejoining restores the original ownership map exactly.
func TestRendezvousStabilityUnderChurn(t *testing.T) {
	workers := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	c, err := New(Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const classes = 512
	hash := func(class uint64) uint64 { return class * 0x9e3779b97f4a7c15 }
	before := make([]string, classes)
	for i := range before {
		before[i] = c.owner(hash(uint64(i))).addr
	}

	const leaver = "http://b:2"
	if err := c.RemoveWorker(leaver); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := range before {
		after := c.owner(hash(uint64(i))).addr
		if after == leaver {
			t.Fatalf("class %d still routed to the removed worker", i)
		}
		if before[i] == leaver {
			moved++
			continue
		}
		if after != before[i] {
			t.Errorf("class %d moved %s -> %s although its owner never left", i, before[i], after)
		}
	}
	// The leaver's share should be roughly classes/4; a massive share
	// would mean the hash is skewed, zero would mean the removal was a
	// no-op.
	if moved == 0 || moved > classes/2 {
		t.Errorf("removed worker owned %d of %d classes, want a ~1/4 share", moved, classes)
	}

	if err := c.AddWorker(leaver); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if got := c.owner(hash(uint64(i))).addr; got != before[i] {
			t.Errorf("class %d owned by %s after rejoin, originally %s", i, got, before[i])
		}
	}

	// Eviction re-routes exactly like removal, without forgetting the
	// member: an ejected owner's classes land elsewhere, and
	// readmission brings them home.
	c.mem.members[leaver].mu.Lock()
	c.mem.members[leaver].ejected = true
	c.mem.members[leaver].mu.Unlock()
	for i := range before {
		if got := c.owner(hash(uint64(i))).addr; got == leaver {
			t.Fatalf("class %d routed to an ejected worker", i)
		}
	}
	c.mem.members[leaver].mu.Lock()
	c.mem.members[leaver].ejected = false
	c.mem.members[leaver].mu.Unlock()
	for i := range before {
		if got := c.owner(hash(uint64(i))).addr; got != before[i] {
			t.Fatalf("class %d owned by %s after readmission, originally %s", i, got, before[i])
		}
	}
}

// TestBreakerStateMachine pins the circuit's three states: closed
// opens at the consecutive-failure threshold, open refuses until the
// cooldown then admits exactly one half-open trial, trial success
// closes, trial failure re-opens.
func TestBreakerStateMachine(t *testing.T) {
	b := breaker{threshold: 3, cooldown: 50 * time.Millisecond}
	now := time.Now()

	for i := 0; i < 2; i++ {
		b.failure(now)
	}
	if !b.allow(now) {
		t.Fatal("breaker opened below the threshold")
	}
	b.failure(now) // third consecutive failure
	if got := b.current(); got != breakerOpen {
		t.Fatalf("after 3 consecutive failures: state %v, want open", got)
	}
	if b.allow(now) || b.allow(now.Add(10*time.Millisecond)) {
		t.Fatal("open breaker admitted traffic inside the cooldown")
	}

	// Cooldown elapsed: exactly one trial request passes.
	later := now.Add(60 * time.Millisecond)
	if !b.allow(later) {
		t.Fatal("open breaker refused the half-open trial after the cooldown")
	}
	if got := b.current(); got != breakerHalfOpen {
		t.Fatalf("post-cooldown state %v, want half_open", got)
	}
	if b.allow(later) {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}

	// Trial failure re-opens for another full cooldown.
	b.failure(later)
	if got := b.current(); got != breakerOpen {
		t.Fatalf("failed trial left state %v, want open", got)
	}
	if b.allow(later.Add(10 * time.Millisecond)) {
		t.Fatal("re-opened breaker admitted traffic inside the new cooldown")
	}

	// Next trial succeeds: closed, failure streak reset.
	again := later.Add(60 * time.Millisecond)
	if !b.allow(again) {
		t.Fatal("re-opened breaker refused its next trial")
	}
	b.success()
	if got := b.current(); got != breakerClosed {
		t.Fatalf("successful trial left state %v, want closed", got)
	}
	b.failure(again)
	if !b.allow(again) {
		t.Fatal("one failure after recovery tripped the breaker — streak not reset")
	}
}

// TestBreakerReleaseUnclaimsTrial pins release(): an unresolved
// half-open trial returns its slot (the next allow() grants a new
// trial), and release outside a claimed half-open trial is a no-op.
func TestBreakerReleaseUnclaimsTrial(t *testing.T) {
	b := breaker{threshold: 1, cooldown: 50 * time.Millisecond}
	now := time.Now()

	b.release() // closed, nothing claimed: must not disturb anything
	if !b.allow(now) {
		t.Fatal("release on a closed breaker broke admission")
	}

	b.failure(now) // threshold 1: opens
	later := now.Add(60 * time.Millisecond)
	if !b.allow(later) {
		t.Fatal("open breaker refused the half-open trial after the cooldown")
	}
	if b.allow(later) {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}

	// The trial was cancelled: releasing the slot must make the breaker
	// admittable again without closing it or extending the cooldown.
	b.release()
	if got := b.current(); got != breakerHalfOpen {
		t.Fatalf("released trial left state %v, want half_open", got)
	}
	if !b.allow(later) {
		t.Fatal("released half-open trial slot was not re-grantable")
	}
	b.success()
	if got := b.current(); got != breakerClosed {
		t.Fatalf("trial success left state %v, want closed", got)
	}
}

// TestCancelledTrialReleasesBreaker is the end-to-end regression for
// the half-open trial leak: a member's half-open trial claimed via
// eligible() whose RPC is then cancelled (hedge loser, wave stop) must
// return the slot — the member stays dispatchable instead of being
// locked out until process restart.
func TestCancelledTrialReleasesBreaker(t *testing.T) {
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server's background read is armed —
		// without it a client disconnect never cancels r.Context().
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done() // never answer; only cancellation ends the RPC
	}))
	defer hang.Close()

	c, err := New(Config{
		Workers:          []string{hang.URL},
		BreakerThreshold: 1,
		BreakerCooldown:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m := c.mem.snapshot()[0]

	m.fail(time.Now()) // threshold 1: breaker opens
	time.Sleep(5 * time.Millisecond)
	now := time.Now()
	if !m.eligible(now) {
		t.Fatal("breaker refused the half-open trial after the cooldown")
	}
	if m.eligible(now) {
		t.Fatal("second concurrent trial admitted")
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := c.callMember(ctx, m, ShardRequest{Op: OpSample}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled trial RPC returned %v, want context.Canceled", err)
	}

	if got := m.br.current(); got != breakerHalfOpen {
		t.Fatalf("cancelled trial left breaker %v, want half_open", got)
	}
	if !m.eligible(time.Now()) {
		t.Fatal("cancelled half-open trial never released its slot — member locked out of dispatch")
	}
}

// TestMetricKeyDistinct pins the collision fix: addresses whose
// sanitized forms coincide still get distinct metric keys, and the
// mapping stays deterministic per address.
func TestMetricKeyDistinct(t *testing.T) {
	a, b := metricKey("http://host-a:1"), metricKey("http://host_a:1")
	if a == b {
		t.Fatalf("metricKey collided: %q for both host-a:1 and host_a:1", a)
	}
	if a != metricKey("http://host-a:1") {
		t.Fatal("metricKey is not deterministic for the same address")
	}
}

// TestMemberRetryAfterBackoff pins the 503 backoff: a member inside
// its Retry-After window is ineligible, and becomes eligible again
// once the window passes; an earlier deadline never shrinks a window.
func TestMemberRetryAfterBackoff(t *testing.T) {
	m := newMember("http://w:1", 3, time.Second)
	now := time.Now()
	if !m.eligible(now) {
		t.Fatal("fresh member ineligible")
	}
	m.backoff(now.Add(100 * time.Millisecond))
	if m.eligible(now.Add(50 * time.Millisecond)) {
		t.Fatal("member eligible inside its Retry-After window")
	}
	m.backoff(now.Add(20 * time.Millisecond)) // earlier: must not shrink
	if m.eligible(now.Add(50 * time.Millisecond)) {
		t.Fatal("a shorter backoff shrank the existing window")
	}
	if !m.eligible(now.Add(150 * time.Millisecond)) {
		t.Fatal("member still ineligible after the window passed")
	}
}

// TestHandlerBodyCap pins the shard endpoint's request-body bound: a
// body over the cap is refused with 413 before it is buffered.
func TestHandlerBodyCap(t *testing.T) {
	ts := httptest.NewServer(Handler(nil))
	defer ts.Close()

	huge := `{"op": "sample", "pad": "` + strings.Repeat("x", maxShardBody+1024) + `"}`
	resp, err := http.Post(ts.URL, "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized shard body: status %d, want 413", resp.StatusCode)
	}
}

// TestMembershipEvictionReadmission drives the probe bookkeeping
// directly: ejectAfter consecutive failures evict, readmitAfter
// consecutive successes readmit, and interleaved outcomes reset the
// streaks.
func TestMembershipEvictionReadmission(t *testing.T) {
	ms := &membership{ejectAfter: 3, readmitAfter: 2, members: map[string]*member{}}
	m := newMember("http://w:9", 3, time.Second)
	ms.add(m)

	fail := func() { ms.probeFailure(m, context.DeadlineExceeded) }
	okay := func() { ms.probeSuccess(m) }

	fail()
	fail()
	okay() // streak broken
	fail()
	fail()
	if m.isEjected() {
		t.Fatal("ejected although the failure streak never reached 3")
	}
	fail()
	if !m.isEjected() {
		t.Fatal("not ejected after 3 consecutive probe failures")
	}
	if ms.readyCount() != 0 {
		t.Fatalf("readyCount = %d with the only member ejected", ms.readyCount())
	}

	okay()
	fail() // streak broken
	okay()
	if !m.isEjected() {
		t.Fatal("readmitted although the success streak never reached 2")
	}
	okay()
	if m.isEjected() {
		t.Fatal("not readmitted after 2 consecutive probe successes")
	}
	if !ms.probed.Load() {
		t.Fatal("first successful probe did not mark the set as probed")
	}
}
