package coordinator

import (
	"strings"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no workers succeeded, want error")
	}
	if _, err := New(Config{Workers: []string{"a:1", " "}}); err == nil {
		t.Error("New with a blank worker succeeded, want error")
	}
	c, err := New(Config{Workers: []string{"host:8080", "http://other:9090/", " padded:1 "}})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://host:8080", "http://other:9090", "http://padded:1"}
	got := c.Workers()
	if len(got) != len(want) {
		t.Fatalf("Workers() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("worker %d normalized to %q, want %q", i, got[i], want[i])
		}
	}
}

// TestRendezvousOwnership pins the consistent-hash routing: ownership
// is a pure function of (class, worker URL) — stable across coordinator
// instances and across reorderings of the worker list — and classes
// spread over the whole set rather than piling on one replica.
func TestRendezvousOwnership(t *testing.T) {
	workers := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	c1, err := New(Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	// Reversed list: the owning URL (not the index) must be unchanged.
	rev := make([]string, len(workers))
	for i, w := range workers {
		rev[len(workers)-1-i] = w
	}
	c2, err := New(Config{Workers: rev})
	if err != nil {
		t.Fatal(err)
	}

	seen := map[string]int{}
	for class := uint64(0); class < 256; class++ {
		h := class * 0x9e3779b97f4a7c15 // spread the toy class ids
		u1 := c1.workers[c1.ownerIndex(h)]
		u2 := c2.workers[c2.ownerIndex(h)]
		if u1 != u2 {
			t.Fatalf("class %d owned by %s in one ordering, %s in another", class, u1, u2)
		}
		seen[u1]++
	}
	if len(seen) != len(workers) {
		t.Errorf("256 classes landed on %d of %d workers: %v", len(seen), len(workers), seen)
	}
	for u, n := range seen {
		if n > 256/2 {
			t.Errorf("worker %s owns %d of 256 classes — rendezvous badly skewed", u, n)
		}
	}
	if !strings.HasPrefix(c1.workers[0], "http://") {
		t.Fatalf("unnormalized worker %q", c1.workers[0])
	}
}
