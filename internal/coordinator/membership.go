package coordinator

import (
	"fmt"
	"hash/fnv"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// member is one worker replica under management: its normalized base
// URL, health-probe bookkeeping, Retry-After backoff window, circuit
// breaker, and address-keyed metrics. Members join Ready — a freshly
// configured worker is dispatched to optimistically, and the prober
// (or its first failing requests) demotes it if it turns out dead.
type member struct {
	addr string
	met  *workerMetrics
	br   breaker

	mu              sync.Mutex
	ejected         bool
	probeFails      int // consecutive failed health probes
	probeOKs        int // consecutive successful health probes
	lastProbeErr    string
	retryAfterUntil time.Time // no dispatch before this (Retry-After honor)
}

func newMember(addr string, threshold int, cooldown time.Duration) *member {
	return &member{
		addr: addr,
		met:  metricsFor(addr),
		br:   breaker{threshold: threshold, cooldown: cooldown},
	}
}

// eligible reports whether the member may receive a request now:
// not ejected, outside any Retry-After window, and allowed by its
// breaker (claiming the half-open trial slot when one is granted, so
// a true return must be followed by an actual request).
func (m *member) eligible(now time.Time) bool {
	m.mu.Lock()
	blocked := m.ejected || now.Before(m.retryAfterUntil)
	m.mu.Unlock()
	if blocked {
		return false
	}
	return m.br.allow(now)
}

func (m *member) isEjected() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ejected
}

// ok records a successful RPC to the member.
func (m *member) ok(latency time.Duration) {
	m.br.success()
	m.met.requests.Inc()
	m.met.latency.Observe(latency)
}

// fail records a failed RPC to the member.
func (m *member) fail(now time.Time) {
	m.br.failure(now)
	m.met.errors.Inc()
}

// release returns an unresolved breaker trial slot for a request that
// completed with neither success nor failure (cancelled mid-flight).
func (m *member) release() {
	m.br.release()
}

// backoff extends the member's Retry-After window to until; an earlier
// until never shrinks an existing window.
func (m *member) backoff(until time.Time) {
	m.mu.Lock()
	if until.After(m.retryAfterUntil) {
		m.retryAfterUntil = until
	}
	m.mu.Unlock()
}

// membership is the managed worker set: a stable-ordered collection of
// members mutated only by join/leave and by the health prober's
// eviction/readmission decisions. Reads are lock-snapshot-cheap; the
// shard hot path never holds the set lock across an RPC.
type membership struct {
	ejectAfter   int // consecutive probe failures before eviction
	readmitAfter int // consecutive probe successes before readmission

	mu      sync.RWMutex
	members map[string]*member
	order   []string // stable join order, drives round-robin + wave sizing

	probed atomic.Bool // at least one successful probe since startup
}

// snapshot returns the members in stable order. The slice is fresh;
// the *member values are live and internally synchronized.
func (ms *membership) snapshot() []*member {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	out := make([]*member, 0, len(ms.order))
	for _, addr := range ms.order {
		out = append(out, ms.members[addr])
	}
	return out
}

func (ms *membership) size() int {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	return len(ms.order)
}

// readyCount counts the non-ejected members — the effective fan-out
// width of the next wave.
func (ms *membership) readyCount() int {
	n := 0
	for _, m := range ms.snapshot() {
		if !m.isEjected() {
			n++
		}
	}
	return n
}

// add joins a new member; false when the address is already a member.
func (ms *membership) add(m *member) bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if _, dup := ms.members[m.addr]; dup {
		return false
	}
	ms.members[m.addr] = m
	ms.order = append(ms.order, m.addr)
	return true
}

// remove leaves a member; false when the address is not a member.
// In-flight requests to the removed member complete normally — only
// new dispatch stops seeing it.
func (ms *membership) remove(addr string) bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if _, ok := ms.members[addr]; !ok {
		return false
	}
	delete(ms.members, addr)
	for i, a := range ms.order {
		if a == addr {
			ms.order = append(ms.order[:i], ms.order[i+1:]...)
			break
		}
	}
	return true
}

// probeSuccess records a healthy probe: failure streak resets, and an
// ejected member with readmitAfter consecutive successes rejoins
// dispatch. Readmission deliberately does not touch the breaker — a
// readmitted worker re-earns closed-circuit status through traffic.
func (ms *membership) probeSuccess(m *member) {
	m.mu.Lock()
	m.probeFails = 0
	m.probeOKs++
	m.lastProbeErr = ""
	readmit := m.ejected && m.probeOKs >= ms.readmitAfter
	if readmit {
		m.ejected = false
	}
	m.mu.Unlock()
	if readmit {
		metReadmissions.Inc()
	}
	ms.probed.Store(true)
}

// probeFailure records a failed probe: success streak resets, and a
// ready member with ejectAfter consecutive failures is evicted.
// Eviction is purely a dispatch decision — outstanding shards on the
// member finish (or fail and retry elsewhere); no new work routes to
// it until readmission.
func (ms *membership) probeFailure(m *member, err error) {
	m.mu.Lock()
	m.probeOKs = 0
	m.probeFails++
	m.lastProbeErr = err.Error()
	eject := !m.ejected && m.probeFails >= ms.ejectAfter
	if eject {
		m.ejected = true
	}
	m.mu.Unlock()
	metProbeFailures.Inc()
	if eject {
		metEjections.Inc()
	}
}

// WorkerStatus is one member's externally visible state, served by
// predintd's GET /v1/internal/workers admin endpoint.
type WorkerStatus struct {
	Addr    string `json:"addr"`
	State   string `json:"state"`   // "ready" | "ejected"
	Breaker string `json:"breaker"` // "closed" | "open" | "half_open"
	// ProbeFailures / ProbeSuccesses are the current consecutive
	// streaks, not lifetime totals.
	ProbeFailures  int    `json:"consecutive_probe_failures,omitempty"`
	ProbeSuccesses int    `json:"consecutive_probe_successes,omitempty"`
	LastProbeError string `json:"last_probe_error,omitempty"`
	// RetryAfterMS is the remaining Retry-After backoff, when inside
	// a window a 503 opened.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Requests / Errors are lifetime RPC outcomes; LatencyP50US /
	// LatencyP99US summarize successful-RPC latency in microseconds.
	Requests     int64 `json:"requests"`
	Errors       int64 `json:"errors"`
	LatencyP50US int64 `json:"latency_p50_us"`
	LatencyP99US int64 `json:"latency_p99_us"`
}

func (m *member) status(now time.Time) WorkerStatus {
	st := WorkerStatus{
		Addr:         m.addr,
		State:        "ready",
		Breaker:      m.br.current().String(),
		Requests:     m.met.requests.Value(),
		Errors:       m.met.errors.Value(),
		LatencyP50US: m.met.latency.Quantile(0.50),
		LatencyP99US: m.met.latency.Quantile(0.99),
	}
	m.mu.Lock()
	if m.ejected {
		st.State = "ejected"
	}
	st.ProbeFailures = m.probeFails
	st.ProbeSuccesses = m.probeOKs
	st.LastProbeError = m.lastProbeErr
	if m.retryAfterUntil.After(now) {
		st.RetryAfterMS = m.retryAfterUntil.Sub(now).Milliseconds()
	}
	m.mu.Unlock()
	return st
}

// Per-worker RPC metrics, keyed by worker address so they survive
// membership churn: a worker that leaves and rejoins — or changes its
// position in the set — keeps its counters. Registered lazily (worker
// sets are runtime data) and deduplicated on the sanitized address, so
// two coordinators in one process sharing a worker share its series.
type workerMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

var (
	workerMetricsMu sync.Mutex
	workerMetricsBy = map[string]*workerMetrics{}
)

func metricsFor(addr string) *workerMetrics {
	key := metricKey(addr)
	workerMetricsMu.Lock()
	defer workerMetricsMu.Unlock()
	m, ok := workerMetricsBy[key]
	if !ok {
		m = &workerMetrics{
			requests: obs.NewCounter(fmt.Sprintf("coordinator.worker.%s.requests", key)),
			errors:   obs.NewCounter(fmt.Sprintf("coordinator.worker.%s.errors", key)),
			latency:  obs.NewHistogram(fmt.Sprintf("coordinator.worker.%s.latency", key)),
		}
		workerMetricsBy[key] = m
	}
	return m
}

// metricKey maps a worker URL onto the registry's dotted-name
// alphabet. Sanitization alone can collide distinct addresses
// ("host-a:1" and "host_a:1" both flatten to "host_a_1"), so a short
// hash of the raw address is appended: distinct addresses always get
// distinct series, while the same address always maps to the same key.
func metricKey(addr string) string {
	s := strings.TrimPrefix(addr, "http://")
	s = strings.TrimPrefix(s, "https://")
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	h := fnv.New32a()
	io.WriteString(h, addr)
	return fmt.Sprintf("%s_%08x", b.String(), h.Sum32())
}
