package coordinator

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit: closed (traffic
// flows), open (traffic refused), half-open (one trial request probes
// whether the worker recovered).
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	default:
		return "unknown"
	}
}

// breaker is a per-worker circuit breaker consulted before every shard
// dispatch and surface probe. It opens after threshold consecutive
// request failures, refuses traffic for cooldown, then admits exactly
// one trial request (half-open): a success closes the circuit, a
// failure re-opens it for another cooldown. Keeping the trial to a
// single in-flight request means a still-dead worker costs one RPC per
// cooldown instead of a retry storm.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    breakerState
	fails    int       // consecutive failures observed while closed
	openedAt time.Time // when the circuit last opened
	trialing bool      // the half-open trial slot is claimed
}

// allow reports whether a request may be sent now. An open breaker
// past its cooldown transitions to half-open and grants the caller the
// single trial slot; the caller must resolve it with success or
// failure.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			metBreakerRejections.Inc()
			return false
		}
		b.state = breakerHalfOpen
		b.trialing = true
		metBreakerHalfOpens.Inc()
		return true
	case breakerHalfOpen:
		if b.trialing {
			metBreakerRejections.Inc()
			return false
		}
		b.trialing = true
		return true
	default:
		return false
	}
}

// success records a completed request: any state closes.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerClosed {
		metBreakerCloses.Inc()
	}
	b.state = breakerClosed
	b.fails = 0
	b.trialing = false
}

// failure records a failed request: a closed breaker opens at the
// consecutive-failure threshold, a half-open trial failure re-opens
// immediately. Failures arriving while already open (stragglers from
// before the trip) do not extend the cooldown.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	switch b.state {
	case breakerClosed:
		if b.fails >= b.threshold {
			b.open(now)
		}
	case breakerHalfOpen:
		b.open(now)
	}
}

// release returns an unresolved half-open trial slot. A caller that
// claimed the trial via allow() but whose request was cancelled before
// completing (hedge loser, wave stopped mid-flight) charges neither
// success nor failure; without this the breaker would stay half-open
// with the slot claimed forever, locking the worker out of dispatch.
// The slot is simply re-opened — the next allow() grants a new trial.
func (b *breaker) release() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen && b.trialing {
		b.trialing = false
	}
}

// trip forces the circuit open regardless of history — the
// "coordinator.breaker" fault point's lever.
func (b *breaker) trip(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerOpen {
		b.open(now)
	}
}

// open transitions to the open state; callers hold b.mu.
func (b *breaker) open(now time.Time) {
	b.state = breakerOpen
	b.openedAt = now
	b.trialing = false
	metBreakerOpens.Inc()
}

// current returns the state for snapshots.
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
