// Package coordinator implements the scale-out seam of the yield
// serving plane: a coordinator replica splits a yield request's
// [0, N) sample-index range into contiguous shards, fans them out over
// HTTP to a static set of worker replicas, and merges the partial
// accumulators in fixed index order, so the served Estimate is
// bit-identical to a single-process run at any shard count. The same
// protocol carries surface-cache traffic: probes and records are
// routed to the replica that owns the request's link class under
// rendezvous hashing, and every cache exchange is guarded by the
// owning replica's surface version so an invalidation on one replica
// can never leak a stale answer through another.
package coordinator

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	predint "repro"
	"repro/internal/obs"
	"repro/internal/surface"
	"repro/internal/variation"
)

// Shard protocol operations.
const (
	// OpSample evaluates the contiguous sample range [Start,
	// Start+Count) and returns its sparse partial accumulator.
	OpSample = "sample"
	// OpProbe asks the owning replica's warm surface for the request;
	// refused unless the caller's surface version matches the owner's.
	OpProbe = "probe"
	// OpRecord feeds a completed estimate into the owning replica's
	// surface; dropped (Recorded=false) on a version mismatch.
	OpRecord = "record"
)

// ShardRequest is the body of POST /v1/internal/shard — the one RPC of
// the scale-out plane.
type ShardRequest struct {
	// Op selects the operation: OpSample, OpProbe, or OpRecord.
	Op string `json:"op"`
	// Req is the yield request being served. Workers replan it
	// locally — the plan is a pure function of the request, so every
	// replica derives the identical scenario and PRNG keying.
	Req predint.YieldRequest `json:"req"`
	// Start and Count give the sample range of an OpSample.
	Start int `json:"start,omitempty"`
	Count int `json:"count,omitempty"`
	// SurfaceVersion is the calling replica's surface version. OpProbe
	// and OpRecord are refused when it does not match the serving
	// replica's own version — the cross-version coherence guard.
	SurfaceVersion uint64 `json:"surface_version"`
	// Result carries the completed estimate of an OpRecord.
	Result *predint.YieldResult `json:"result,omitempty"`
}

// ShardResponse answers a ShardRequest.
type ShardResponse struct {
	// Kind and Shifted report the estimator rung and shift decision of
	// an OpSample; every replica reports the same values for the same
	// request, which the coordinator asserts while merging.
	Kind    string `json:"kind,omitempty"`
	Shifted bool   `json:"shifted,omitempty"`
	// Part is the sparse partial accumulator of an OpSample.
	Part *variation.Partial `json:"part,omitempty"`
	// Failures, WeightSum, and WeightSqSum summarize Part (failure
	// count, Σw, Σw²) for logging and per-worker accounting; the merge
	// itself replays Part exactly and never trusts the summary.
	Failures    int     `json:"failures"`
	WeightSum   float64 `json:"weight_sum"`
	WeightSqSum float64 `json:"weight_sq_sum"`
	// SurfaceVersion is the serving replica's surface version at the
	// time of the answer.
	SurfaceVersion uint64 `json:"surface_version"`
	// ProbeHit and Result report an OpProbe: Result is set only on a
	// warm, version-consistent hit.
	ProbeHit bool                 `json:"probe_hit,omitempty"`
	Result   *predint.YieldResult `json:"result,omitempty"`
	// Recorded acknowledges an OpRecord that passed the version guard.
	Recorded bool `json:"recorded,omitempty"`
}

var (
	metShardsServed     = obs.NewCounter("coordinator.shards_served")
	metProbesServed     = obs.NewCounter("coordinator.probes_served")
	metRecordsServed    = obs.NewCounter("coordinator.records_served")
	metVersionRefusals  = obs.NewCounter("coordinator.version_refusals")
	metProbeHits        = obs.NewCounter("coordinator.probe_hits")
	metLocalFallbacks   = obs.NewCounter("coordinator.local_fallbacks")
	metStoppedMidWave   = obs.NewCounter("coordinator.stopped_mid_wave")
	metRequestsServed   = obs.NewCounter("coordinator.requests")
	metNotShardable     = obs.NewCounter("coordinator.not_shardable")
	metOwnerProbeMisses = obs.NewCounter("coordinator.owner_probe_misses")

	// Membership / health-probe lifecycle.
	metProbes        = obs.NewCounter("coordinator.health_probes")
	metProbeFailures = obs.NewCounter("coordinator.health_probe_failures")
	metEjections     = obs.NewCounter("coordinator.ejections")
	metReadmissions  = obs.NewCounter("coordinator.readmissions")

	// Circuit-breaker transitions and refusals.
	metBreakerOpens      = obs.NewCounter("coordinator.breaker_opens")
	metBreakerHalfOpens  = obs.NewCounter("coordinator.breaker_half_opens")
	metBreakerCloses     = obs.NewCounter("coordinator.breaker_closes")
	metBreakerRejections = obs.NewCounter("coordinator.breaker_rejections")

	// Hedged shard requests: issued, won by the hedge, won by the
	// primary (hedge wasted), and losing legs cancelled mid-flight.
	metHedges          = obs.NewCounter("coordinator.hedges")
	metHedgeWins       = obs.NewCounter("coordinator.hedge_wins")
	metHedgeLosses     = obs.NewCounter("coordinator.hedge_losses")
	metHedgesCancelled = obs.NewCounter("coordinator.hedges_cancelled")

	// Retry-After honor: sleeps taken because every replica was inside
	// a 503 backoff window.
	metRetryAfterWaits = obs.NewCounter("coordinator.retry_after_waits")
)

// ExecuteShard serves one ShardRequest against this replica's surface
// cache (nil when the replica runs surface-less). It is the worker
// side of the protocol; cmd/predintd exposes it at /v1/internal/shard
// behind its normal admission control.
func ExecuteShard(ctx context.Context, surf *surface.Cache, sr ShardRequest) (ShardResponse, error) {
	sf := predint.Surfaced{Cache: surf}
	switch sr.Op {
	case OpSample:
		plan, err := predint.YieldShardPlanFor(sr.Req)
		if err != nil {
			return ShardResponse{}, err
		}
		part, shifted, err := plan.CollectCtx(ctx, sr.Start, sr.Count)
		if err != nil {
			return ShardResponse{}, err
		}
		fails, sumW, sumW2 := part.Sums()
		metShardsServed.Inc()
		return ShardResponse{
			Kind:           plan.Kind(),
			Shifted:        shifted,
			Part:           &part,
			Failures:       fails,
			WeightSum:      sumW,
			WeightSqSum:    sumW2,
			SurfaceVersion: sf.Version(),
		}, nil
	case OpProbe:
		metProbesServed.Inc()
		out := ShardResponse{SurfaceVersion: sf.Version()}
		if surf == nil || sr.SurfaceVersion != out.SurfaceVersion {
			// Cross-version probe: the caller invalidated (or never
			// had) the surface state this replica's points were
			// recorded under. Refuse rather than serve a possibly
			// stale interpolation.
			if surf != nil {
				metVersionRefusals.Inc()
			}
			return out, nil
		}
		res, ok, err := sf.LinkYieldSurfaceCtx(ctx, sr.Req)
		if err != nil {
			return ShardResponse{}, err
		}
		if ok {
			out.ProbeHit = true
			out.Result = &res
		}
		return out, nil
	case OpRecord:
		metRecordsServed.Inc()
		out := ShardResponse{SurfaceVersion: sf.Version()}
		if surf == nil || sr.Result == nil {
			return out, nil
		}
		if sr.SurfaceVersion != out.SurfaceVersion {
			metVersionRefusals.Inc()
			return out, nil
		}
		if err := sf.RecordYield(sr.Req, *sr.Result); err != nil {
			return ShardResponse{}, err
		}
		out.Recorded = true
		return out, nil
	default:
		return ShardResponse{}, fmt.Errorf("coordinator: unknown shard op %q", sr.Op)
	}
}

// Handler adapts ExecuteShard to a bare http.Handler for tests and
// benchmarks. cmd/predintd wires its own route instead, so shard
// traffic shares the server's admission control and fault points.
func Handler(surf *surface.Cache) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var sr ShardRequest
		if err := decodeJSON(r, &sr); err != nil {
			status := http.StatusBadRequest
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				// A peer (or attacker) streaming an oversized body is
				// refused before it can balloon memory.
				status = http.StatusRequestEntityTooLarge
			}
			http.Error(w, err.Error(), status)
			return
		}
		resp, err := ExecuteShard(r.Context(), surf, sr)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, resp)
	})
}
