package coordinator

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	predint "repro"
	"repro/internal/faultinject"
	"repro/internal/surface"
	"repro/internal/variation"
)

// Config configures a Coordinator.
type Config struct {
	// Workers lists the seed replica base addresses ("host:port" or
	// full URLs). Required, non-empty. The set is dynamic afterwards:
	// the health prober evicts and readmits members, and
	// AddWorker/RemoveWorker change the roster at runtime.
	Workers []string
	// Client is the HTTP client for shard RPCs; nil gets a 10 s
	// timeout default.
	Client *http.Client
	// ShardSamples is the per-shard sample count; 0 sizes shards so
	// the budget spans roughly two waves across the ready worker set
	// (rounded up to a batch multiple, so the merged fold's stopping
	// checks line up with shard boundaries).
	ShardSamples int
	// MaxAttempts bounds how many replicas a failing shard is retried
	// against before degrading to local execution; 0 means one attempt
	// per worker.
	MaxAttempts int
	// Surface is this replica's own surface cache (nil when running
	// surface-less). Completed estimates are recorded here as well as
	// at the owning replica, and its version guards cache exchanges.
	Surface *surface.Cache

	// ProbeInterval is the background health-probe period; 0 disables
	// the prober (members are then only demoted by their breakers).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe; default 1 s.
	ProbeTimeout time.Duration
	// ProbePath is the worker readiness endpoint probed; default
	// "/readyz" (predintd's readiness split: /healthz stays pure
	// process liveness and keeps answering during a drain).
	ProbePath string
	// EjectAfter is the consecutive-probe-failure count that evicts a
	// member from dispatch; default 3.
	EjectAfter int
	// ReadmitAfter is the consecutive-probe-success count that
	// readmits an evicted member; default 2.
	ReadmitAfter int
	// BreakerThreshold is the consecutive request-failure count that
	// opens a member's circuit breaker; default 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses traffic
	// before admitting a half-open trial request; default 5 s.
	BreakerCooldown time.Duration
	// HedgeAfter re-issues a straggling shard on a second healthy
	// replica after this delay; the first valid response wins and the
	// loser is cancelled. 0 disables hedging.
	HedgeAfter time.Duration
}

// Coordinator fans yield requests out over a managed worker set. Safe
// for concurrent use. Close stops the background health prober.
type Coordinator struct {
	client           *http.Client
	shardSamples     int
	maxAttempts      int
	hedgeAfter       time.Duration
	probeInterval    time.Duration
	probeTimeout     time.Duration
	probePath        string
	breakerThreshold int
	breakerCooldown  time.Duration
	surf             *surface.Cache
	mem              *membership
	scratch          sync.Pool // *rpcScratch

	closeOnce sync.Once
	stop      chan struct{}
	done      chan struct{} // closed when the prober exits; nil if never started
}

// rpcScratch holds one shard RPC's reusable buffers: the marshaled
// request body, the response accumulation buffer, and the decode
// targets whose backing arrays (FailIdx/Weights) persist across calls.
// Pooled per Coordinator, so successive waves of a request — and
// successive requests — stop reallocating the encode/decode plumbing
// around every shard; only an exact-size detached clone of the Partial
// escapes callMember (the decoded scratch would otherwise be
// overwritten by the next wave while the merge still holds it).
type rpcScratch struct {
	enc  bytes.Buffer // marshaled ShardRequest
	body bytes.Reader // request-body view over enc's bytes
	resp bytes.Buffer // response body accumulation
	out  ShardResponse
	part variation.Partial // decode target behind out.Part
}

func (c *Coordinator) getScratch() *rpcScratch {
	if v := c.scratch.Get(); v != nil {
		return v.(*rpcScratch)
	}
	return &rpcScratch{}
}

// New validates the config and builds a Coordinator, starting the
// background health prober when ProbeInterval is positive.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("coordinator: need at least one worker")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	c := &Coordinator{
		client:           client,
		shardSamples:     cfg.ShardSamples,
		maxAttempts:      cfg.MaxAttempts,
		hedgeAfter:       cfg.HedgeAfter,
		probeInterval:    cfg.ProbeInterval,
		probeTimeout:     cfg.ProbeTimeout,
		probePath:        cfg.ProbePath,
		breakerThreshold: cfg.BreakerThreshold,
		breakerCooldown:  cfg.BreakerCooldown,
		surf:             cfg.Surface,
		stop:             make(chan struct{}),
	}
	if c.probeTimeout <= 0 {
		c.probeTimeout = time.Second
	}
	if c.probePath == "" {
		c.probePath = "/readyz"
	}
	if c.breakerThreshold <= 0 {
		c.breakerThreshold = 3
	}
	if c.breakerCooldown <= 0 {
		c.breakerCooldown = 5 * time.Second
	}
	c.mem = &membership{
		ejectAfter:   cfg.EjectAfter,
		readmitAfter: cfg.ReadmitAfter,
		members:      map[string]*member{},
	}
	if c.mem.ejectAfter <= 0 {
		c.mem.ejectAfter = 3
	}
	if c.mem.readmitAfter <= 0 {
		c.mem.readmitAfter = 2
	}
	for i, w := range cfg.Workers {
		norm, err := normalizeWorker(w)
		if err != nil {
			return nil, fmt.Errorf("coordinator: worker at index %d: %w", i, err)
		}
		if !c.mem.add(newMember(norm, c.breakerThreshold, c.breakerCooldown)) {
			return nil, fmt.Errorf("coordinator: duplicate worker %s", norm)
		}
	}
	if c.probeInterval > 0 {
		c.done = make(chan struct{})
		go c.probeLoop()
	}
	return c, nil
}

// normalizeWorker canonicalizes one worker address.
func normalizeWorker(w string) (string, error) {
	w = strings.TrimSpace(w)
	if w == "" {
		return "", errors.New("empty worker address")
	}
	if !strings.Contains(w, "://") {
		w = "http://" + w
	}
	return strings.TrimRight(w, "/"), nil
}

// Close stops the background health prober and waits for it to exit.
// In-flight Estimate calls are unaffected.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		close(c.stop)
		if c.done != nil {
			<-c.done
		}
	})
}

// Workers returns the current members' normalized URLs in stable join
// order, ejected ones included.
func (c *Coordinator) Workers() []string {
	mems := c.mem.snapshot()
	out := make([]string, len(mems))
	for i, m := range mems {
		out[i] = m.addr
	}
	return out
}

// AddWorker joins a replica to the live set. It becomes eligible for
// dispatch immediately and is health-probed on the next cycle.
func (c *Coordinator) AddWorker(addr string) error {
	norm, err := normalizeWorker(addr)
	if err != nil {
		return fmt.Errorf("coordinator: %w", err)
	}
	if !c.mem.add(newMember(norm, c.breakerThreshold, c.breakerCooldown)) {
		return fmt.Errorf("coordinator: worker %s is already a member", norm)
	}
	return nil
}

// RemoveWorker leaves a replica from the live set. Outstanding
// requests to it complete; no new work is dispatched.
func (c *Coordinator) RemoveWorker(addr string) error {
	norm, err := normalizeWorker(addr)
	if err != nil {
		return fmt.Errorf("coordinator: %w", err)
	}
	if !c.mem.remove(norm) {
		return fmt.Errorf("coordinator: worker %s is not a member", norm)
	}
	return nil
}

// Ready reports whether the coordinator is fit to serve: always with
// the prober disabled, otherwise only after the first successful
// worker probe. predintd's /readyz gates on this, so a front replica
// is not routed traffic before it can reach its fleet.
func (c *Coordinator) Ready() bool {
	if c.probeInterval <= 0 {
		return true
	}
	return c.mem.probed.Load()
}

// WorkersStatus snapshots every member's state for the admin endpoint.
func (c *Coordinator) WorkersStatus() []WorkerStatus {
	now := time.Now()
	mems := c.mem.snapshot()
	out := make([]WorkerStatus, len(mems))
	for i, m := range mems {
		out[i] = m.status(now)
	}
	return out
}

// probeLoop is the background health prober: every interval it probes
// each member's readiness endpoint, feeding consecutive-failure
// eviction and consecutive-success readmission. The first pass runs
// immediately so Ready() does not wait a full interval after startup.
func (c *Coordinator) probeLoop() {
	defer close(c.done)
	ticker := time.NewTicker(c.probeInterval)
	defer ticker.Stop()
	c.probeAll()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.probeAll()
		}
	}
}

// probeAll probes the members concurrently with bounded fan-out, so a
// few hung workers (each costing the full probe timeout) cannot
// stretch a pass past the probe interval and delay eviction or
// readmission of everyone behind them in the roster.
func (c *Coordinator) probeAll() {
	const maxConcurrentProbes = 8
	sem := make(chan struct{}, maxConcurrentProbes)
	var wg sync.WaitGroup
	for _, m := range c.mem.snapshot() {
		select {
		case <-c.stop:
			wg.Wait()
			return
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			defer func() { <-sem }()
			c.probeOne(m)
		}(m)
	}
	wg.Wait()
}

// probeOne performs one health probe. The "coordinator.probe" fault
// point fails the probe before any network traffic, so tests can drive
// eviction without a dead server.
func (c *Coordinator) probeOne(m *member) {
	metProbes.Inc()
	if err := faultinject.Hit("coordinator.probe"); err != nil {
		c.mem.probeFailure(m, err)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.addr+c.probePath, nil)
	if err != nil {
		c.mem.probeFailure(m, err)
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.mem.probeFailure(m, err)
		return
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.mem.probeFailure(m, fmt.Errorf("probe %s%s: status %d", m.addr, c.probePath, resp.StatusCode))
		return
	}
	c.mem.probeSuccess(m)
}

// owner rendezvous-hashes a link class onto the non-ejected member
// with the highest score mix64(classHash ^ fnv(addr)). Scoring by
// address keeps ownership a pure function of (class, live set): every
// replica computes the same owner, reordering the roster changes
// nothing, and a join or leave moves only the ~1/N classes whose best
// address changed. Falls back to the full set when everything is
// ejected, so routing stays defined while the fleet recovers.
func (c *Coordinator) owner(classHash uint64) *member {
	mems := c.mem.snapshot()
	pick := func(includeEjected bool) *member {
		var best *member
		var bestScore uint64
		for _, m := range mems {
			if !includeEjected && m.isEjected() {
				continue
			}
			h := fnv.New64a()
			io.WriteString(h, m.addr)
			score := mix64(classHash ^ h.Sum64())
			if best == nil || score > bestScore {
				best, bestScore = m, score
			}
		}
		return best
	}
	if m := pick(false); m != nil {
		return m
	}
	return pick(true)
}

// mix64 is the splitmix64 finalizer — a cheap, well-distributed bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Estimate serves a yield request through the worker set: plan, probe
// the class owner's warm surface, fan the sample range out in waves,
// merge in index order, and feed the completed estimate back to the
// owner. Returns an error wrapping predint.ErrNotShardable when the
// request's rung cannot be index-partitioned — the caller then runs
// the local path.
func (c *Coordinator) Estimate(ctx context.Context, req predint.YieldRequest) (predint.YieldResult, error) {
	plan, err := predint.YieldShardPlanFor(req)
	if err != nil {
		if errorsIsNotShardable(err) {
			metNotShardable.Inc()
		}
		return predint.YieldResult{}, err
	}
	metRequestsServed.Inc()
	owner := c.owner(plan.ClassHash())

	if !req.NoSurface && owner != nil {
		if res, ok := c.probeOwner(ctx, owner, req); ok {
			metProbeHits.Inc()
			return res, nil
		}
	}

	est, err := c.sample(ctx, plan, req)
	if err != nil {
		return predint.YieldResult{}, err
	}
	res := plan.Result(est)

	if !req.NoSurface {
		if owner != nil {
			c.recordOwner(ctx, owner, req, res)
		}
		if c.surf != nil {
			// Also warm this replica's own cache: the owner serves
			// repeated traffic for the class, but a local hit is
			// cheaper still.
			_ = predint.Surfaced{Cache: c.surf}.RecordYield(req, res)
		}
	}
	return res, nil
}

func errorsIsNotShardable(err error) bool {
	return errors.Is(err, predint.ErrNotShardable)
}

// probeOwner asks the owning replica's warm surface; any transport
// error, or an owner behind an open breaker, is a miss (the sampling
// path is always available).
func (c *Coordinator) probeOwner(ctx context.Context, owner *member, req predint.YieldRequest) (predint.YieldResult, bool) {
	if !owner.eligible(time.Now()) {
		metOwnerProbeMisses.Inc()
		return predint.YieldResult{}, false
	}
	resp, err := c.callMember(ctx, owner, ShardRequest{
		Op:             OpProbe,
		Req:            req,
		SurfaceVersion: predint.Surfaced{Cache: c.surf}.Version(),
	})
	if err != nil || !resp.ProbeHit || resp.Result == nil {
		metOwnerProbeMisses.Inc()
		return predint.YieldResult{}, false
	}
	return *resp.Result, true
}

// recordOwner feeds a completed estimate to the owning replica's
// surface. Best-effort: a failed record only costs a future probe hit.
func (c *Coordinator) recordOwner(ctx context.Context, owner *member, req predint.YieldRequest, res predint.YieldResult) {
	if !owner.eligible(time.Now()) {
		return
	}
	_, _ = c.callMember(ctx, owner, ShardRequest{
		Op:             OpRecord,
		Req:            req,
		SurfaceVersion: predint.Surfaced{Cache: c.surf}.Version(),
		Result:         &res,
	})
}

// shardRange is one contiguous piece of the sample-index range.
type shardRange struct {
	idx          int
	start, count int
}

type shardResult struct {
	idx     int
	part    variation.Partial
	shifted bool
	err     error
}

// sample fans the plan's [0, Samples) range out in waves sized to the
// ready member count. After every completed shard the contiguous
// merged prefix is re-folded; when the global stopping rule fires
// inside it, outstanding shards are cancelled — the stopping decision
// stays global and index-ordered even though evaluation is not.
// Membership churn mid-run only moves where shards execute (each shard
// is a pure function of the request and its index range), so the
// merged estimate is unchanged by any join, leave, or eviction.
func (c *Coordinator) sample(ctx context.Context, plan *predint.YieldShardPlan, req predint.YieldRequest) (variation.Estimate, error) {
	total := plan.Samples()
	batch := plan.Batch()
	w := c.mem.readyCount()
	if w < 1 {
		w = 1
	}
	size := c.shardSamples
	if size <= 0 {
		size = (total + 2*w - 1) / (2 * w)
	}
	if size <= 0 {
		size = batch
	}
	if rem := size % batch; rem != 0 {
		size += batch - rem
	}
	var shards []shardRange
	for start := 0; start < total; start += size {
		count := size
		if rem := total - start; rem < count {
			count = rem
		}
		shards = append(shards, shardRange{idx: len(shards), start: start, count: count})
	}

	parts := make([]*variation.Partial, len(shards))
	shiftedSet := false
	shifted := false
	merged := 0 // shards [0, merged) form the folded contiguous prefix
	var prefix []variation.Partial

	for waveStart := 0; waveStart < len(shards); waveStart += w {
		waveEnd := waveStart + w
		if waveEnd > len(shards) {
			waveEnd = len(shards)
		}
		wave := shards[waveStart:waveEnd]
		wctx, cancel := context.WithCancel(ctx)
		results := make(chan shardResult, len(wave))
		for _, s := range wave {
			go func(s shardRange) {
				part, sh, err := c.fetchShard(wctx, plan, req, s)
				results <- shardResult{idx: s.idx, part: part, shifted: sh, err: err}
			}(s)
		}

		var firstErr error
		done := false
		var final variation.Estimate
		for range wave {
			r := <-results
			if done || firstErr != nil {
				continue // draining after cancel
			}
			if r.err != nil {
				firstErr = r.err
				cancel()
				continue
			}
			if !shiftedSet {
				shiftedSet, shifted = true, r.shifted
			} else if r.shifted != shifted {
				firstErr = fmt.Errorf("coordinator: shard %d reports shifted=%v, previous shards said %v", r.idx, r.shifted, shifted)
				cancel()
				continue
			}
			part := r.part
			parts[r.idx] = &part
			grew := false
			for merged < len(parts) && parts[merged] != nil {
				prefix = append(prefix, *parts[merged])
				merged++
				grew = true
			}
			if !grew {
				continue
			}
			est, stop, err := plan.Merge(prefix, shifted)
			if err != nil {
				firstErr = err
				cancel()
				continue
			}
			if stop {
				final, done = est, true
				if merged < len(shards) {
					metStoppedMidWave.Inc()
				}
				cancel()
			}
		}
		cancel()
		if done {
			return final, nil
		}
		if firstErr != nil {
			return variation.Estimate{}, firstErr
		}
	}

	est, stop, err := plan.Merge(prefix, shifted)
	if err != nil {
		return variation.Estimate{}, err
	}
	if !stop {
		return variation.Estimate{}, fmt.Errorf("coordinator: merged %d shards without covering the budget", len(prefix))
	}
	return est, nil
}

// pick selects the next eligible member round-robin from a
// shard-dependent start offset (spreading load), skipping ejected
// members, open breakers, Retry-After windows, and already-tried
// addresses. The "coordinator.breaker" fault point force-trips a
// candidate's breaker in passing, so tests can stage trips without
// manufacturing real failures.
func (c *Coordinator) pick(start int, exclude map[string]bool) *member {
	mems := c.mem.snapshot()
	n := len(mems)
	if n == 0 {
		return nil
	}
	now := time.Now()
	for i := 0; i < n; i++ {
		m := mems[((start%n)+n+i)%n]
		if exclude != nil && exclude[m.addr] {
			continue
		}
		if err := faultinject.Hit("coordinator.breaker"); err != nil {
			m.br.trip(now)
			continue
		}
		if m.eligible(now) {
			return m
		}
	}
	return nil
}

// nextEligibleWait reports how long until the soonest Retry-After
// window of a non-ejected member expires — the sleep that lets a
// drained-then-back replica be reused instead of failing the shard
// when it is the only capacity left.
func (c *Coordinator) nextEligibleWait(now time.Time) (time.Duration, bool) {
	var best time.Duration
	found := false
	for _, m := range c.mem.snapshot() {
		m.mu.Lock()
		if !m.ejected && m.retryAfterUntil.After(now) {
			if d := m.retryAfterUntil.Sub(now); !found || d < best {
				best, found = d, true
			}
		}
		m.mu.Unlock()
	}
	return best, found
}

// fetchShard obtains one shard: bounded retry across the eligible
// member set (hedging stragglers when configured), a bounded sleep
// when every replica is inside a Retry-After window, then — when the
// set is exhausted — degradation to local execution, so a dead worker
// set degrades the coordinator to a slower single replica rather than
// an outage.
func (c *Coordinator) fetchShard(ctx context.Context, plan *predint.YieldShardPlan, req predint.YieldRequest, s shardRange) (variation.Partial, bool, error) {
	sr := ShardRequest{Op: OpSample, Req: req, Start: s.start, Count: s.count}
	attempts := c.maxAttempts
	if attempts <= 0 {
		attempts = c.mem.size()
	}
	tried := map[string]bool{}
	for a := 0; a < attempts; a++ {
		if ctx.Err() != nil {
			return variation.Partial{}, false, ctx.Err()
		}
		m := c.pick(s.idx+a, tried)
		if m == nil {
			// Every replica is ejected, breaker-open, or backing off a
			// 503's Retry-After. When a backoff window is the blocker,
			// honor it: sleep min(window, deadline remaining), then
			// retry the rotation.
			if d, ok := c.nextEligibleWait(time.Now()); ok {
				metRetryAfterWaits.Inc()
				if !sleepCtx(ctx, d) {
					return variation.Partial{}, false, ctx.Err()
				}
				continue
			}
			break
		}
		tried[m.addr] = true
		resp, from, err := c.callHedged(ctx, m, sr, s.idx, tried)
		// The winning leg may be a hedge replica; record it too, so a
		// mismatched response from it is not retried on the same member.
		tried[from.addr] = true
		if err != nil {
			continue
		}
		if resp.Part == nil || resp.Part.Start != s.start || resp.Part.Count != s.count {
			from.fail(time.Now())
			continue
		}
		return *resp.Part, resp.Shifted, nil
	}
	if ctx.Err() != nil {
		return variation.Partial{}, false, ctx.Err()
	}
	// Worker set exhausted for this shard: compute it locally. The
	// result is bit-identical — the shard is a pure function of
	// (request, range) — so degradation costs latency, never accuracy.
	metLocalFallbacks.Inc()
	return plan.CollectCtx(ctx, s.start, s.count)
}

// sleepCtx sleeps d or until ctx is done; true means the full sleep.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// callHedged performs one shard RPC with straggler hedging: the
// primary is dispatched immediately; if it has not answered after
// hedgeAfter, the same shard is re-issued on the next eligible
// replica. The first valid response wins and the loser's request
// context is cancelled — losing work is abandoned, not awaited, so a
// hung replica costs at most the hedge delay instead of the full RPC
// timeout. A fast primary failure returns immediately (retry rotation
// handles failures; hedging is for stragglers).
func (c *Coordinator) callHedged(ctx context.Context, primary *member, sr ShardRequest, shardIdx int, exclude map[string]bool) (ShardResponse, *member, error) {
	if c.hedgeAfter <= 0 {
		resp, err := c.callMember(ctx, primary, sr)
		return resp, primary, err
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the loser (and any straggler on early error return)

	type reply struct {
		resp ShardResponse
		m    *member
		err  error
	}
	replies := make(chan reply, 2) // buffered: a late loser never blocks its goroutine
	launch := func(m *member) {
		go func() {
			resp, err := c.callMember(cctx, m, sr)
			replies <- reply{resp: resp, m: m, err: err}
		}()
	}
	launch(primary)
	inflight := 1

	timer := time.NewTimer(c.hedgeAfter)
	defer timer.Stop()
	hedged := false
	var firstErr error
	for {
		select {
		case <-timer.C:
			if hedged {
				continue
			}
			hedged = true
			// The "coordinator.hedge" fault point suppresses the hedge
			// dispatch, staging the race where the straggler must still
			// be waited out.
			if err := faultinject.Hit("coordinator.hedge"); err != nil {
				continue
			}
			if h := c.pick(shardIdx+1, exclude); h != nil {
				// Mark the hedge leg as tried immediately (exclude is
				// the caller's tried set, touched only on this
				// goroutine) so later retry attempts skip it.
				exclude[h.addr] = true
				metHedges.Inc()
				launch(h)
				inflight++
			}
		case r := <-replies:
			inflight--
			if r.err == nil {
				if inflight > 0 {
					// The other leg is still running; our deferred
					// cancel reaps it.
					metHedgesCancelled.Inc()
				}
				if hedged && inflight > 0 {
					if r.m == primary {
						metHedgeLosses.Inc()
					} else {
						metHedgeWins.Inc()
					}
				}
				return r.resp, r.m, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if inflight == 0 {
				return ShardResponse{}, primary, firstErr
			}
			// One leg failed, the other is still in flight: wait it out.
		}
	}
}

// callMember performs one shard RPC against a specific member, feeding
// its breaker, metrics, and Retry-After backoff from the outcome. A
// cancellation of ctx (hedge decided, global stop) is never charged to
// the member — but any half-open trial slot the caller claimed via
// eligible()/pick() is released on such no-outcome returns, so a
// cancelled trial cannot leave the breaker permanently claimed.
// The two fault points model the seam: "coordinator.rpc"
// fires before the request leaves (connection-level failure),
// "coordinator.response" truncates the response body (torn read /
// partial response).
func (c *Coordinator) callMember(ctx context.Context, m *member, sr ShardRequest) (ShardResponse, error) {
	if err := faultinject.Hit("coordinator.rpc"); err != nil {
		m.fail(time.Now())
		return ShardResponse{}, err
	}
	sc := c.getScratch()
	sc.enc.Reset()
	if err := json.NewEncoder(&sc.enc).Encode(sr); err != nil {
		c.scratch.Put(sc)
		m.release()
		return ShardResponse{}, err
	}
	sc.body.Reset(sc.enc.Bytes())
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, m.addr+"/v1/internal/shard", &sc.body)
	if err != nil {
		c.scratch.Put(sc)
		m.release()
		return ShardResponse{}, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	start := time.Now()
	httpResp, err := c.client.Do(httpReq)
	if err != nil {
		// The transport may still be draining the request body after a
		// failed or cancelled round trip; drop the scratch instead of
		// risking a reuse of its buffers under an in-flight write.
		if ctx.Err() != nil {
			m.release()
			return ShardResponse{}, ctx.Err()
		}
		m.fail(time.Now())
		return ShardResponse{}, err
	}
	sc.resp.Reset()
	_, err = sc.resp.ReadFrom(httpResp.Body)
	httpResp.Body.Close()
	if err != nil {
		if ctx.Err() != nil {
			m.release()
			return ShardResponse{}, ctx.Err()
		}
		m.fail(time.Now())
		return ShardResponse{}, err
	}
	data := sc.resp.Bytes()
	if ferr := faultinject.Hit("coordinator.response"); ferr != nil {
		data = data[:len(data)/2]
	}
	if httpResp.StatusCode != http.StatusOK {
		if httpResp.StatusCode == http.StatusServiceUnavailable {
			c.noteRetryAfter(ctx, m, httpResp.Header.Get("Retry-After"))
		}
		m.fail(time.Now())
		msg := truncate(data, 200)
		c.scratch.Put(sc)
		return ShardResponse{}, fmt.Errorf("coordinator: worker %s: status %d: %s", m.addr, httpResp.StatusCode, msg)
	}
	// Decode into the scratch targets: the Partial's FailIdx/Weights
	// backing arrays persist across calls, so steady-state waves decode
	// with no slice growth. Start = -1 marks "no part decoded" — a
	// response without one leaves the sentinel in place.
	sc.part = variation.Partial{Start: -1, FailIdx: sc.part.FailIdx[:0], Weights: sc.part.Weights[:0]}
	sc.out = ShardResponse{Part: &sc.part}
	if err := json.Unmarshal(data, &sc.out); err != nil {
		m.fail(time.Now())
		c.scratch.Put(sc)
		return ShardResponse{}, fmt.Errorf("coordinator: worker %s: bad response: %w", m.addr, err)
	}
	out := sc.out
	if p := out.Part; p == &sc.part || p == nil {
		// Detach from the scratch before it is reused: an exact-size
		// clone of a decoded part (the merge holds it across waves), nil
		// when the response carried none. Empty slices normalize to nil,
		// matching the wire form (omitempty) the non-pooled decode
		// produced.
		if p == nil || p.Start < 0 {
			out.Part = nil
		} else {
			cp := variation.Partial{Start: p.Start, Count: p.Count}
			if len(p.FailIdx) > 0 {
				cp.FailIdx = append([]int(nil), p.FailIdx...)
			}
			if len(p.Weights) > 0 {
				cp.Weights = append([]float64(nil), p.Weights...)
			}
			out.Part = &cp
		}
	}
	c.scratch.Put(sc)
	m.ok(time.Since(start))
	return out, nil
}

// noteRetryAfter honors a 503's Retry-After hint: the member is backed
// off for min(hint, deadline remaining) plus up to 10% jitter (so a
// fleet of coordinators does not re-converge on the drained replica in
// the same instant). A 503 without a parsable hint gets a short
// default so the next rotation still prefers other replicas.
func (c *Coordinator) noteRetryAfter(ctx context.Context, m *member, header string) {
	d := 500 * time.Millisecond
	if header != "" {
		if secs, err := strconv.Atoi(strings.TrimSpace(header)); err == nil && secs >= 0 {
			d = time.Duration(secs) * time.Second
		} else if t, err := http.ParseTime(header); err == nil {
			d = time.Until(t)
		}
	}
	if d <= 0 {
		return
	}
	d += rand.N(d/10 + 1)
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < d {
			d = rem
		}
	}
	if d <= 0 {
		return
	}
	m.backoff(time.Now().Add(d))
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}

// maxShardBody caps a shard-protocol request body read by Handler;
// cmd/predintd applies its own (flag-configurable) cap in front of the
// same decoder.
const maxShardBody = 1 << 20

// decodeJSON / writeJSON are the minimal codec for Handler.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxShardBody))
	return dec.Decode(v)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
