package coordinator

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	predint "repro"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/surface"
	"repro/internal/variation"
)

// Config configures a Coordinator.
type Config struct {
	// Workers lists the replica base addresses ("host:port" or full
	// URLs). Required, non-empty. Order matters only for metric
	// naming; ownership is rendezvous-hashed, so it is stable under
	// reordering.
	Workers []string
	// Client is the HTTP client for shard RPCs; nil gets a 10 s
	// timeout default.
	Client *http.Client
	// ShardSamples is the per-shard sample count; 0 sizes shards so
	// the budget spans roughly two waves across the worker set
	// (rounded up to a batch multiple, so the merged fold's stopping
	// checks line up with shard boundaries).
	ShardSamples int
	// MaxAttempts bounds how many replicas a failing shard is retried
	// against before degrading to local execution; 0 means one attempt
	// per worker.
	MaxAttempts int
	// Surface is this replica's own surface cache (nil when running
	// surface-less). Completed estimates are recorded here as well as
	// at the owning replica, and its version guards cache exchanges.
	Surface *surface.Cache
}

// Coordinator fans yield requests out over a static worker set. Safe
// for concurrent use.
type Coordinator struct {
	workers      []string
	client       *http.Client
	shardSamples int
	maxAttempts  int
	surf         *surface.Cache
}

// New validates the config and builds a Coordinator.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("coordinator: need at least one worker")
	}
	workers := make([]string, len(cfg.Workers))
	for i, w := range cfg.Workers {
		w = strings.TrimSpace(w)
		if w == "" {
			return nil, fmt.Errorf("coordinator: empty worker address at index %d", i)
		}
		if !strings.Contains(w, "://") {
			w = "http://" + w
		}
		workers[i] = strings.TrimRight(w, "/")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	attempts := cfg.MaxAttempts
	if attempts <= 0 {
		attempts = len(workers)
	}
	return &Coordinator{
		workers:      workers,
		client:       client,
		shardSamples: cfg.ShardSamples,
		maxAttempts:  attempts,
		surf:         cfg.Surface,
	}, nil
}

// Workers returns the normalized worker URLs.
func (c *Coordinator) Workers() []string { return append([]string(nil), c.workers...) }

// ownerIndex rendezvous-hashes a link class onto a worker: each worker
// scores mix64(classHash ^ fnv(workerURL)) and the highest score owns
// the class. Every replica computes the same owner for the same class
// and worker set, with minimal reshuffling when the set changes.
func (c *Coordinator) ownerIndex(classHash uint64) int {
	best, bestScore := 0, uint64(0)
	for i, w := range c.workers {
		h := fnv.New64a()
		io.WriteString(h, w)
		score := mix64(classHash ^ h.Sum64())
		if i == 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// mix64 is the splitmix64 finalizer — a cheap, well-distributed bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Estimate serves a yield request through the worker set: plan, probe
// the class owner's warm surface, fan the sample range out in waves,
// merge in index order, and feed the completed estimate back to the
// owner. Returns an error wrapping predint.ErrNotShardable when the
// request's rung cannot be index-partitioned — the caller then runs
// the local path.
func (c *Coordinator) Estimate(ctx context.Context, req predint.YieldRequest) (predint.YieldResult, error) {
	plan, err := predint.YieldShardPlanFor(req)
	if err != nil {
		if errorsIsNotShardable(err) {
			metNotShardable.Inc()
		}
		return predint.YieldResult{}, err
	}
	metRequestsServed.Inc()
	owner := c.ownerIndex(plan.ClassHash())

	if !req.NoSurface {
		if res, ok := c.probeOwner(ctx, owner, req); ok {
			metProbeHits.Inc()
			return res, nil
		}
	}

	est, err := c.sample(ctx, plan, req)
	if err != nil {
		return predint.YieldResult{}, err
	}
	res := plan.Result(est)

	if !req.NoSurface {
		c.recordOwner(ctx, owner, req, res)
		if c.surf != nil {
			// Also warm this replica's own cache: the owner serves
			// repeated traffic for the class, but a local hit is
			// cheaper still.
			_ = predint.Surfaced{Cache: c.surf}.RecordYield(req, res)
		}
	}
	return res, nil
}

func errorsIsNotShardable(err error) bool {
	return errors.Is(err, predint.ErrNotShardable)
}

// probeOwner asks the owning replica's warm surface; any transport
// error is a miss (the sampling path is always available).
func (c *Coordinator) probeOwner(ctx context.Context, owner int, req predint.YieldRequest) (predint.YieldResult, bool) {
	resp, err := c.call(ctx, owner, ShardRequest{
		Op:             OpProbe,
		Req:            req,
		SurfaceVersion: predint.Surfaced{Cache: c.surf}.Version(),
	})
	if err != nil || !resp.ProbeHit || resp.Result == nil {
		metOwnerProbeMisses.Inc()
		return predint.YieldResult{}, false
	}
	return *resp.Result, true
}

// recordOwner feeds a completed estimate to the owning replica's
// surface. Best-effort: a failed record only costs a future probe hit.
func (c *Coordinator) recordOwner(ctx context.Context, owner int, req predint.YieldRequest, res predint.YieldResult) {
	_, _ = c.call(ctx, owner, ShardRequest{
		Op:             OpRecord,
		Req:            req,
		SurfaceVersion: predint.Surfaced{Cache: c.surf}.Version(),
		Result:         &res,
	})
}

// shardRange is one contiguous piece of the sample-index range.
type shardRange struct {
	idx          int
	start, count int
}

type shardResult struct {
	idx     int
	part    variation.Partial
	shifted bool
	err     error
}

// sample fans the plan's [0, Samples) range out in waves of
// len(workers) shards. After every completed shard the contiguous
// merged prefix is re-folded; when the global stopping rule fires
// inside it, outstanding shards are cancelled — the stopping decision
// stays global and index-ordered even though evaluation is not.
func (c *Coordinator) sample(ctx context.Context, plan *predint.YieldShardPlan, req predint.YieldRequest) (variation.Estimate, error) {
	total := plan.Samples()
	batch := plan.Batch()
	w := len(c.workers)
	size := c.shardSamples
	if size <= 0 {
		size = (total + 2*w - 1) / (2 * w)
	}
	if size <= 0 {
		size = batch
	}
	if rem := size % batch; rem != 0 {
		size += batch - rem
	}
	var shards []shardRange
	for start := 0; start < total; start += size {
		count := size
		if rem := total - start; rem < count {
			count = rem
		}
		shards = append(shards, shardRange{idx: len(shards), start: start, count: count})
	}

	parts := make([]*variation.Partial, len(shards))
	shiftedSet := false
	shifted := false
	merged := 0 // shards [0, merged) form the folded contiguous prefix
	var prefix []variation.Partial

	for waveStart := 0; waveStart < len(shards); waveStart += w {
		waveEnd := waveStart + w
		if waveEnd > len(shards) {
			waveEnd = len(shards)
		}
		wave := shards[waveStart:waveEnd]
		wctx, cancel := context.WithCancel(ctx)
		results := make(chan shardResult, len(wave))
		for _, s := range wave {
			go func(s shardRange) {
				part, sh, err := c.fetchShard(wctx, plan, req, s)
				results <- shardResult{idx: s.idx, part: part, shifted: sh, err: err}
			}(s)
		}

		var firstErr error
		done := false
		var final variation.Estimate
		for range wave {
			r := <-results
			if done || firstErr != nil {
				continue // draining after cancel
			}
			if r.err != nil {
				firstErr = r.err
				cancel()
				continue
			}
			if !shiftedSet {
				shiftedSet, shifted = true, r.shifted
			} else if r.shifted != shifted {
				firstErr = fmt.Errorf("coordinator: shard %d reports shifted=%v, previous shards said %v", r.idx, r.shifted, shifted)
				cancel()
				continue
			}
			part := r.part
			parts[r.idx] = &part
			grew := false
			for merged < len(parts) && parts[merged] != nil {
				prefix = append(prefix, *parts[merged])
				merged++
				grew = true
			}
			if !grew {
				continue
			}
			est, stop, err := plan.Merge(prefix, shifted)
			if err != nil {
				firstErr = err
				cancel()
				continue
			}
			if stop {
				final, done = est, true
				if merged < len(shards) {
					metStoppedMidWave.Inc()
				}
				cancel()
			}
		}
		cancel()
		if done {
			return final, nil
		}
		if firstErr != nil {
			return variation.Estimate{}, firstErr
		}
	}

	est, stop, err := plan.Merge(prefix, shifted)
	if err != nil {
		return variation.Estimate{}, err
	}
	if !stop {
		return variation.Estimate{}, fmt.Errorf("coordinator: merged %d shards without covering the budget", len(prefix))
	}
	return est, nil
}

// fetchShard obtains one shard: bounded retry across the worker set
// starting at a shard-dependent replica (spreading load), then — when
// every attempt failed — degradation to local execution, so a dead
// worker set degrades the coordinator to a slower single replica
// rather than an outage.
func (c *Coordinator) fetchShard(ctx context.Context, plan *predint.YieldShardPlan, req predint.YieldRequest, s shardRange) (variation.Partial, bool, error) {
	for a := 0; a < c.maxAttempts; a++ {
		if ctx.Err() != nil {
			return variation.Partial{}, false, ctx.Err()
		}
		wi := (s.idx + a) % len(c.workers)
		resp, err := c.call(ctx, wi, ShardRequest{
			Op:    OpSample,
			Req:   req,
			Start: s.start,
			Count: s.count,
		})
		if err != nil {
			metricsFor(wi).errors.Inc()
			continue
		}
		if resp.Part == nil || resp.Part.Start != s.start || resp.Part.Count != s.count {
			metricsFor(wi).errors.Inc()
			continue
		}
		return *resp.Part, resp.Shifted, nil
	}
	if ctx.Err() != nil {
		return variation.Partial{}, false, ctx.Err()
	}
	// Worker set exhausted for this shard: compute it locally. The
	// result is bit-identical — the shard is a pure function of
	// (request, range) — so degradation costs latency, never accuracy.
	metLocalFallbacks.Inc()
	return plan.CollectCtx(ctx, s.start, s.count)
}

// call performs one shard RPC. The two fault points model the seam:
// "coordinator.rpc" fires before the request leaves (connection-level
// failure), "coordinator.response" truncates the response body (torn
// read / partial response).
func (c *Coordinator) call(ctx context.Context, wi int, sr ShardRequest) (ShardResponse, error) {
	if err := faultinject.Hit("coordinator.rpc"); err != nil {
		return ShardResponse{}, err
	}
	body, err := json.Marshal(sr)
	if err != nil {
		return ShardResponse{}, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.workers[wi]+"/v1/internal/shard", bytes.NewReader(body))
	if err != nil {
		return ShardResponse{}, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	start := time.Now()
	httpResp, err := c.client.Do(httpReq)
	if err != nil {
		return ShardResponse{}, err
	}
	data, err := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	if err != nil {
		return ShardResponse{}, err
	}
	if ferr := faultinject.Hit("coordinator.response"); ferr != nil {
		data = data[:len(data)/2]
	}
	if httpResp.StatusCode != http.StatusOK {
		return ShardResponse{}, fmt.Errorf("coordinator: worker %s: status %d: %s", c.workers[wi], httpResp.StatusCode, truncate(data, 200))
	}
	var out ShardResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return ShardResponse{}, fmt.Errorf("coordinator: worker %s: bad response: %w", c.workers[wi], err)
	}
	m := metricsFor(wi)
	m.shards.Inc()
	m.latency.Observe(time.Since(start))
	return out, nil
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}

// Per-worker shard metrics, registered lazily by worker index (the obs
// registry panics on duplicate names, and worker sets are only known
// at runtime). Indexing by slot rather than URL keeps the metric
// namespace bounded across reconfigurations.
type workerMetrics struct {
	shards  *obs.Counter
	errors  *obs.Counter
	latency *obs.Histogram
}

var (
	workerMetricsMu sync.Mutex
	workerMetricsBy = map[int]*workerMetrics{}
)

func metricsFor(wi int) *workerMetrics {
	workerMetricsMu.Lock()
	defer workerMetricsMu.Unlock()
	m, ok := workerMetricsBy[wi]
	if !ok {
		m = &workerMetrics{
			shards:  obs.NewCounter(fmt.Sprintf("coordinator.worker%d.shards", wi)),
			errors:  obs.NewCounter(fmt.Sprintf("coordinator.worker%d.errors", wi)),
			latency: obs.NewHistogram(fmt.Sprintf("coordinator.worker%d.latency", wi)),
		}
		workerMetricsBy[wi] = m
	}
	return m
}

// decodeJSON / writeJSON are the minimal codec for Handler.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	return dec.Decode(v)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
