// Package obs is the process-wide observability layer for the
// synthesis and yield hot paths: named atomic counters and gauges that
// the hot packages (pool, noc, variation) update lock-free, exposed as
// an expvar-style JSON snapshot and an optional debug HTTP endpoint.
//
// Metrics are registered once at package init of their owning package
// (obs.NewCounter / obs.NewGauge) and updated with plain atomic adds,
// so instrumentation costs a few nanoseconds per event and never
// perturbs the engines' determinism contracts — a run with metrics
// enabled is bit-identical to one without.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric (events, items,
// samples). All methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level (active workers, open runs). All
// methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the bucket count of a Histogram: bucket 0 holds
// sub-microsecond observations, bucket i (1..32) holds durations with
// 2^(i-1) ≤ µs < 2^i, and the last bucket absorbs everything from
// ~71 minutes up.
const histBuckets = 34

// Histogram is a fixed log2-bucketed latency distribution
// (microsecond resolution, lock-free Observe). It exposes itself
// through the registry as three derived metrics — <name>.count,
// <name>.p50_us and <name>.p99_us — so the existing snapshot/JSON
// plumbing carries quantiles without learning a new value type.
// Quantiles are bucket upper bounds, i.e. conservative to within the
// 2× bucket width.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[histBucket(d.Microseconds())].Add(1)
}

func histBucket(us int64) int {
	if us <= 0 {
		return 0
	}
	b := bits.Len64(uint64(us))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Quantile returns the q-quantile (q in (0,1]) in microseconds: the
// inclusive upper bound of the bucket holding the rank-⌈q·n⌉
// observation, or 0 when empty. The bucket counts are copied first so
// a concurrent Observe cannot make the rank walk disagree with the
// total.
func (h *Histogram) Quantile(q float64) int64 {
	var counts [histBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen >= rank {
			if i == 0 {
				return 0
			}
			return (int64(1) << uint(i)) - 1
		}
	}
	return (int64(1) << uint(histBuckets-1)) - 1
}

func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// histCount and histQuantile adapt a Histogram to the registry's
// int64-valued metric interface.
type histCount struct{ h *Histogram }

func (m histCount) Value() int64 { return m.h.Count() }
func (m histCount) reset()       { m.h.reset() }

type histQuantile struct {
	h *Histogram
	q float64
}

func (m histQuantile) Value() int64 { return m.h.Quantile(m.q) }
func (m histQuantile) reset()       { m.h.reset() }

// NewHistogram registers a latency histogram under a dotted base name,
// surfacing <name>.count, <name>.p50_us and <name>.p99_us in the
// snapshot.
func NewHistogram(name string) *Histogram {
	h := &Histogram{}
	register(name+".count", histCount{h})
	register(name+".p50_us", histQuantile{h, 0.50})
	register(name+".p99_us", histQuantile{h, 0.99})
	return h
}

// metric is the registry's view of one counter, gauge, or histogram
// facet.
type metric interface{ Value() int64 }

// resettable marks metrics Reset can zero beyond the two concrete
// atomic types.
type resettable interface{ reset() }

var (
	regMu    sync.Mutex
	registry = map[string]metric{}
)

func register(name string, m metric) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	registry[name] = m
}

// NewCounter registers a counter under a unique dotted name (e.g.
// "noc.design_cache.hits"). Duplicate names panic: registration
// happens in package-level var initializers, so a collision is a
// programming error, not a runtime condition.
func NewCounter(name string) *Counter {
	c := &Counter{}
	register(name, c)
	return c
}

// NewGauge registers a gauge under a unique dotted name.
func NewGauge(name string) *Gauge {
	g := &Gauge{}
	register(name, g)
	return g
}

// Snapshot returns the current value of every registered metric. The
// map is a private copy; mutating it does not affect the registry.
func Snapshot() map[string]int64 {
	regMu.Lock()
	defer regMu.Unlock()
	out := make(map[string]int64, len(registry))
	for name, m := range registry {
		out[name] = m.Value()
	}
	return out
}

// WriteJSON writes the snapshot as stable (key-sorted, indented) JSON,
// the format the CLIs print behind their -metrics flags and the debug
// endpoint serves at /metrics.
func WriteJSON(w io.Writer) error {
	snap := Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	// encoding/json sorts map keys itself, but building the document
	// by hand keeps the registration order out of the output and the
	// format trivially diffable.
	if _, err := io.WriteString(w, "{\n"); err != nil {
		return err
	}
	for i, name := range names {
		sep := ","
		if i == len(names)-1 {
			sep = ""
		}
		key, err := json.Marshal(name)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  %s: %d%s\n", key, snap[name], sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}

// Reset zeroes every registered metric. Tests use it to observe one
// operation's deltas in isolation; production code never calls it.
func Reset() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, m := range registry {
		switch v := m.(type) {
		case *Counter:
			v.v.Store(0)
		case *Gauge:
			v.v.Store(0)
		case resettable:
			v.reset()
		}
	}
}
