package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

var (
	testCounter = NewCounter("obs_test.counter")
	testGauge   = NewGauge("obs_test.gauge")
)

func TestCounterAndGauge(t *testing.T) {
	Reset()
	testCounter.Inc()
	testCounter.Add(41)
	testGauge.Add(3)
	testGauge.Add(-1)
	snap := Snapshot()
	if snap["obs_test.counter"] != 42 {
		t.Errorf("counter = %d, want 42", snap["obs_test.counter"])
	}
	if snap["obs_test.gauge"] != 2 {
		t.Errorf("gauge = %d, want 2", snap["obs_test.gauge"])
	}
	testGauge.Set(7)
	if v := testGauge.Value(); v != 7 {
		t.Errorf("gauge after Set = %d, want 7", v)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	Reset()
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				testCounter.Inc()
			}
		}()
	}
	wg.Wait()
	if v := testCounter.Value(); v != goroutines*per {
		t.Fatalf("counter = %d, want %d", v, goroutines*per)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate metric name accepted")
		}
	}()
	NewCounter("obs_test.counter")
}

func TestWriteJSONIsValidAndSorted(t *testing.T) {
	Reset()
	testCounter.Add(5)
	var sb strings.Builder
	if err := WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]int64
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, sb.String())
	}
	if decoded["obs_test.counter"] != 5 {
		t.Errorf("decoded counter = %d, want 5", decoded["obs_test.counter"])
	}
	// Stable ordering: lines must appear in sorted-key order.
	lines := strings.Split(sb.String(), "\n")
	var keys []string
	for _, l := range lines {
		if i := strings.Index(l, `"`); i >= 0 {
			if j := strings.Index(l[i+1:], `"`); j >= 0 {
				keys = append(keys, l[i+1:i+1+j])
			}
		}
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys out of order: %q before %q", keys[i-1], keys[i])
		}
	}
}

func TestDebugServer(t *testing.T) {
	Reset()
	testCounter.Add(9)
	addr, stop, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	var decoded map[string]int64
	if err := json.Unmarshal([]byte(get("/metrics")), &decoded); err != nil {
		t.Fatalf("/metrics is not JSON: %v", err)
	}
	if decoded["obs_test.counter"] != 9 {
		t.Errorf("/metrics counter = %d, want 9", decoded["obs_test.counter"])
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index does not list profiles:\n%.200s", body)
	}
}
