package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	testCounter = NewCounter("obs_test.counter")
	testGauge   = NewGauge("obs_test.gauge")
	testHist    = NewHistogram("obs_test.hist")
)

func TestCounterAndGauge(t *testing.T) {
	Reset()
	testCounter.Inc()
	testCounter.Add(41)
	testGauge.Add(3)
	testGauge.Add(-1)
	snap := Snapshot()
	if snap["obs_test.counter"] != 42 {
		t.Errorf("counter = %d, want 42", snap["obs_test.counter"])
	}
	if snap["obs_test.gauge"] != 2 {
		t.Errorf("gauge = %d, want 2", snap["obs_test.gauge"])
	}
	testGauge.Set(7)
	if v := testGauge.Value(); v != 7 {
		t.Errorf("gauge after Set = %d, want 7", v)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	Reset()
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				testCounter.Inc()
			}
		}()
	}
	wg.Wait()
	if v := testCounter.Value(); v != goroutines*per {
		t.Fatalf("counter = %d, want %d", v, goroutines*per)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate metric name accepted")
		}
	}()
	NewCounter("obs_test.counter")
}

func TestWriteJSONIsValidAndSorted(t *testing.T) {
	Reset()
	testCounter.Add(5)
	var sb strings.Builder
	if err := WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]int64
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, sb.String())
	}
	if decoded["obs_test.counter"] != 5 {
		t.Errorf("decoded counter = %d, want 5", decoded["obs_test.counter"])
	}
	// Stable ordering: lines must appear in sorted-key order.
	lines := strings.Split(sb.String(), "\n")
	var keys []string
	for _, l := range lines {
		if i := strings.Index(l, `"`); i >= 0 {
			if j := strings.Index(l[i+1:], `"`); j >= 0 {
				keys = append(keys, l[i+1:i+1+j])
			}
		}
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys out of order: %q before %q", keys[i-1], keys[i])
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	Reset()
	if testHist.Count() != 0 || testHist.Quantile(0.99) != 0 {
		t.Fatal("fresh histogram not empty")
	}
	// 90 fast observations in [64µs,128µs), 10 slow in [8192µs,16384µs):
	// p50 lands in the fast bucket, p99 in the slow one.
	for i := 0; i < 90; i++ {
		testHist.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		testHist.Observe(10 * time.Millisecond)
	}
	if n := testHist.Count(); n != 100 {
		t.Fatalf("count = %d, want 100", n)
	}
	if p50 := testHist.Quantile(0.50); p50 != 127 {
		t.Errorf("p50 = %dµs, want 127 (upper bound of [64,128))", p50)
	}
	if p99 := testHist.Quantile(0.99); p99 != 16383 {
		t.Errorf("p99 = %dµs, want 16383 (upper bound of [8192,16384))", p99)
	}
	snap := Snapshot()
	if snap["obs_test.hist.count"] != 100 || snap["obs_test.hist.p50_us"] != 127 || snap["obs_test.hist.p99_us"] != 16383 {
		t.Errorf("snapshot facets wrong: count=%d p50=%d p99=%d",
			snap["obs_test.hist.count"], snap["obs_test.hist.p50_us"], snap["obs_test.hist.p99_us"])
	}
	Reset()
	if testHist.Count() != 0 {
		t.Fatal("Reset did not zero the histogram")
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	Reset()
	testHist.Observe(0) // sub-µs → bucket 0, quantile 0
	if q := testHist.Quantile(1); q != 0 {
		t.Errorf("sub-µs quantile = %d, want 0", q)
	}
	Reset()
	testHist.Observe(100 * time.Hour) // beyond the last bucket boundary
	if q := testHist.Quantile(1); q != (int64(1)<<(histBuckets-1))-1 {
		t.Errorf("overflow quantile = %d, want the last bucket bound", q)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	Reset()
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				testHist.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if n := testHist.Count(); n != goroutines*per {
		t.Fatalf("count = %d, want %d", n, goroutines*per)
	}
}

func TestDebugServer(t *testing.T) {
	Reset()
	testCounter.Add(9)
	addr, stop, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	var decoded map[string]int64
	if err := json.Unmarshal([]byte(get("/metrics")), &decoded); err != nil {
		t.Fatalf("/metrics is not JSON: %v", err)
	}
	if decoded["obs_test.counter"] != 9 {
		t.Errorf("/metrics counter = %d, want 9", decoded["obs_test.counter"])
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index does not list profiles:\n%.200s", body)
	}
}

// TestDebugServerStopDrainsInflight is the regression test for the
// stop function abandoning in-flight requests: a CPU profile capture
// that outlives the stop call must still complete with a full 200
// response, because stop now drains via Shutdown instead of Close.
func TestDebugServerStopDrainsInflight(t *testing.T) {
	addr, stop, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		status int
		body   []byte
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/profile?seconds=1", addr))
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		done <- result{status: resp.StatusCode, body: body, err: err}
	}()
	// Let the profile request get in flight, then stop the server
	// while the 1-second capture is still running.
	time.Sleep(150 * time.Millisecond)
	stop()
	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight profile dropped by stop: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("profile status %d, body %.200s", res.status, res.body)
	}
	if len(res.body) == 0 {
		t.Fatal("profile body empty")
	}
	// New connections must be refused once stop returns.
	if _, err := http.Get(fmt.Sprintf("http://%s/metrics", addr)); err == nil {
		t.Fatal("server still accepting connections after stop")
	}
}
