package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the metrics snapshot as JSON.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w)
	})
}

// DebugMux returns a mux exposing the metrics snapshot at /metrics and
// the standard pprof profiles under /debug/pprof/. The pprof handlers
// are registered explicitly rather than through net/http/pprof's
// DefaultServeMux side effect, so importing this package never exposes
// profiles on servers that did not ask for them.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebugServer listens on addr and serves DebugMux in a background
// goroutine, returning the bound address (useful with ":0") and a stop
// function. The CLIs start one behind their -debug-addr flags.
func StartDebugServer(addr string) (boundAddr string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: DebugMux()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
