package obs

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler serves the metrics snapshot as JSON.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w)
	})
}

// DebugMux returns a mux exposing the metrics snapshot at /metrics and
// the standard pprof profiles under /debug/pprof/. The pprof handlers
// are registered explicitly rather than through net/http/pprof's
// DefaultServeMux side effect, so importing this package never exposes
// profiles on servers that did not ask for them.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// debugStopTimeout bounds how long StartDebugServer's stop function
// waits for in-flight requests (a pprof profile capture can legitimately
// run for seconds) before closing connections outright.
const debugStopTimeout = 5 * time.Second

// StartDebugServer listens on addr and serves DebugMux in a background
// goroutine, returning the bound address (useful with ":0") and a stop
// function. The CLIs start one behind their -debug-addr flags.
//
// The stop function drains gracefully: it stops accepting new
// connections immediately, then waits up to debugStopTimeout for
// in-flight requests — an interrupted CLI run shouldn't truncate the
// very profile capture it was being debugged with — and only then
// falls back to Close.
func StartDebugServer(addr string) (boundAddr string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: DebugMux()}
	go func() { _ = srv.Serve(ln) }()
	stop = func() {
		ctx, cancel := context.WithTimeout(context.Background(), debugStopTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			_ = srv.Close()
		}
	}
	return ln.Addr().String(), stop, nil
}
