package model

import (
	"math"

	"repro/internal/tech"
)

// This file is the closed-form re-derivation path the process-variation
// engine rides: given coefficients calibrated at a nominal technology,
// produce the coefficient set a *perturbed* copy of that technology
// would calibrate to — without re-running the characterization
// pipeline (seconds) per Monte Carlo sample. The scaling follows the
// physics the models encode (the stochastic-logical-effort idea:
// gate-delay terms move with drive strength, capacitive terms with
// gate capacitance, leakage exponentially with threshold):
//
//   - Every drive term (Beta0, Beta1), intrinsic-delay term (A0…A2),
//     and slew term (Gamma0…Gamma2) of an edge scales with the
//     pulling device's alpha-power-law resistance
//     R ∝ Vdd / (K·(Vdd−Vth)^Alpha) — pMOS for rising outputs, nMOS
//     for falling. Intrinsic delay additionally scales with the
//     self-load capacitance.
//   - Kappa (input capacitance per width) scales with gate
//     capacitance.
//   - Leakage scales with IOff amplified by the subthreshold
//     exponential of the threshold perturbation.
//   - Area does not move with the electrical parameters.

// driveRatio returns R_pert/R_nom for one device polarity.
func driveRatio(nom, pert tech.Device, vNom, vPert float64) float64 {
	odNom := vNom - nom.Vth
	odPert := vPert - pert.Vth
	if odNom <= 0 || odPert <= 0 {
		return 1
	}
	rNom := vNom / (nom.K * math.Pow(odNom, nom.Alpha))
	rPert := vPert / (pert.K * math.Pow(odPert, nom.Alpha))
	return rPert / rNom
}

// leakRatio returns the leakage scale for one device polarity: the
// explicit IOff ratio times the subthreshold response to the threshold
// shift, times the supply ratio.
func leakRatio(nom, pert tech.Device, vNom, vPert float64) float64 {
	r := 1.0
	if nom.IOff > 0 {
		r = pert.IOff / nom.IOff
	}
	r *= math.Exp(-(pert.Vth - nom.Vth) / (nom.SubthresholdSlopeN * tech.ThermalVoltage))
	if vNom > 0 {
		r *= vPert / vNom
	}
	return r
}

// scaleEdge multiplies every coefficient of an edge by the drive ratio
// rd, with the intrinsic terms additionally scaled by the self-load
// capacitance ratio rc.
func scaleEdge(e EdgeCoeffs, rd, rc float64) EdgeCoeffs {
	e.A0 *= rd * rc
	e.A1 *= rd * rc
	e.A2 *= rd * rc
	e.Beta0 *= rd
	e.Beta1 *= rd
	e.Gamma0 *= rd
	e.Gamma1 *= rd
	e.Gamma2 *= rd
	return e
}

func scaleKind(k KindCoeffs, rdRise, rdFall, rCap, rLeak float64) KindCoeffs {
	k.Rise = scaleEdge(k.Rise, rdRise, rCap)
	k.Fall = scaleEdge(k.Fall, rdFall, rCap)
	k.Kappa *= rCap
	k.Leak0 *= rLeak
	k.Leak1 *= rLeak
	return k
}

// ScaledFor returns the coefficient set for a perturbed copy of the
// technology the receiver was calibrated against. nom must be the
// calibration technology and pert a perturbation of it (same device
// structure, moved parameters); the receiver is not modified. This is
// an analytic approximation — exact for the drive/capacitance/leakage
// physics the models encode, agnostic to higher-order effects a full
// re-characterization would capture — and it costs arithmetic only,
// which is what makes per-sample Monte Carlo evaluation feasible.
func (c *Coefficients) ScaledFor(nom, pert *tech.Technology) *Coefficients {
	out := &Coefficients{}
	c.ScaleInto(out, nom, pert)
	return out
}

// ScaleInto is ScaledFor writing into a caller-owned destination
// instead of allocating one, producing bit-identical coefficients. The
// Monte Carlo sampling kernel keeps one Coefficients per worker and
// rescales into it per sample, keeping the steady path allocation-
// free. dst may not alias the receiver.
func (c *Coefficients) ScaleInto(dst *Coefficients, nom, pert *tech.Technology) {
	rdN := driveRatio(nom.NMOS, pert.NMOS, nom.Vdd, pert.Vdd)
	rdP := driveRatio(nom.PMOS, pert.PMOS, nom.Vdd, pert.Vdd)
	var rCap float64 = 1
	if s := nom.NMOS.CGate + nom.PMOS.CGate; s > 0 {
		rCap = (pert.NMOS.CGate + pert.PMOS.CGate) / s
	}
	rLeak := (leakRatio(nom.NMOS, pert.NMOS, nom.Vdd, pert.Vdd) +
		leakRatio(nom.PMOS, pert.PMOS, nom.Vdd, pert.Vdd)) / 2

	dst.Tech = c.Tech
	// A rising output is pulled by the pMOS, a falling one by the
	// nMOS.
	dst.Inv = scaleKind(c.Inv, rdP, rdN, rCap, rLeak)
	dst.Buf = scaleKind(c.Buf, rdP, rdN, rCap, rLeak)
}
