package model

import (
	"math"
	"testing"

	"repro/internal/tech"
)

func TestDefaultCoversAllTechs(t *testing.T) {
	for _, name := range tech.Names() {
		c, err := Default(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if c.Tech != name {
			t.Errorf("%s: embedded Tech field %q", name, c.Tech)
		}
	}
	if len(DefaultTechs()) != len(tech.Names()) {
		t.Fatalf("DefaultTechs has %d entries, want %d", len(DefaultTechs()), len(tech.Names()))
	}
}

func TestDefaultUnknown(t *testing.T) {
	if _, err := Default("7nm"); err == nil {
		t.Fatal("unknown tech accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustDefault should panic")
		}
	}()
	MustDefault("7nm")
}

// The embedded coefficients must agree with a live calibration run —
// they are generated artifacts, not hand-tuned numbers.
func TestDefaultMatchesLiveCalibration(t *testing.T) {
	live, _ := calibrated(t) // 90nm
	emb := MustDefault("90nm")

	closeRel := func(a, b float64) bool {
		if a == b {
			return true
		}
		den := math.Max(math.Abs(a), math.Abs(b))
		return math.Abs(a-b) <= 1e-9*den
	}
	pairs := []struct {
		name string
		a, b float64
	}{
		{"inv.rise.A0", live.Inv.Rise.A0, emb.Inv.Rise.A0},
		{"inv.rise.Beta0", live.Inv.Rise.Beta0, emb.Inv.Rise.Beta0},
		{"inv.fall.Gamma2", live.Inv.Fall.Gamma2, emb.Inv.Fall.Gamma2},
		{"inv.Kappa", live.Inv.Kappa, emb.Inv.Kappa},
		{"inv.Leak1", live.Inv.Leak1, emb.Inv.Leak1},
		{"inv.Area1", live.Inv.Area1, emb.Inv.Area1},
		{"buf.rise.A0", live.Buf.Rise.A0, emb.Buf.Rise.A0},
		{"buf.Kappa", live.Buf.Kappa, emb.Buf.Kappa},
	}
	for _, p := range pairs {
		if !closeRel(p.a, p.b) {
			t.Errorf("%s: live %g vs embedded %g", p.name, p.a, p.b)
		}
	}
}

// Sanity of the embedded values across nodes: drive resistance
// coefficients must be positive and Kappa must track the node's gate
// capacitance scaling.
func TestDefaultCrossNodeSanity(t *testing.T) {
	for _, name := range tech.Names() {
		c := MustDefault(name)
		for _, e := range []EdgeCoeffs{c.Inv.Rise, c.Inv.Fall, c.Buf.Rise, c.Buf.Fall} {
			if e.Beta0 <= 0 {
				t.Errorf("%s: non-positive Beta0", name)
			}
			if e.Gamma2 <= 0 {
				t.Errorf("%s: non-positive Gamma2 (slew must grow with load)", name)
			}
		}
		if c.Inv.Kappa <= 0 || c.Inv.Leak1 <= 0 || c.Inv.Area1 <= 0 {
			t.Errorf("%s: non-positive static coefficients", name)
		}
		// Buffers present a smaller pin cap than inverters of the
		// same drive.
		if c.Buf.Kappa >= c.Inv.Kappa {
			t.Errorf("%s: buffer kappa %g not below inverter %g", name, c.Buf.Kappa, c.Inv.Kappa)
		}
	}
	// Kappa shrinks with scaling (thinner gates, narrower devices
	// dominate through width, but kappa is per-width: tracks CGate).
	k90 := MustDefault("90nm").Inv.Kappa
	k16 := MustDefault("16nm").Inv.Kappa
	if !(k16 < k90) {
		t.Errorf("inverter kappa did not shrink 90→16nm: %g vs %g", k90, k16)
	}
}
