package model

// Exploratory accuracy dump used while developing; kept as a skippable
// diagnostic. Run with: go test ./internal/model -run Explore -v -explore
import (
	"flag"
	"testing"

	"repro/internal/liberty"
	"repro/internal/sta"
	"repro/internal/tech"
	"repro/internal/wire"
)

var exploreFlag = flag.Bool("explore", false, "print model-vs-golden diagnostics")

func TestExploreAccuracy(t *testing.T) {
	if !*exploreFlag {
		t.Skip("diagnostic; enable with -explore")
	}
	tc := tech.MustLookup("90nm")
	lib, err := liberty.Get(tc)
	if err != nil {
		t.Fatal(err)
	}
	coeffs, rep, err := Calibrate(lib)
	if err != nil {
		t.Fatal(err)
	}
	for name, fit := range rep.Fits {
		t.Logf("fit %-22s %s", name, fit)
	}
	for _, L := range []float64{1e-3, 3e-3, 5e-3, 10e-3} {
		for _, n := range []int{2, 5, 10} {
			for _, size := range []float64{8, 16} {
				cellName := "INVD8"
				if size == 16 {
					cellName = "INVD16"
				}
				cell := lib.Cell(cellName)
				seg := wire.NewSegment(tc, L, wire.SWSS)
				golden, err := (&sta.Line{Cell: cell, N: n, Segment: seg, InputSlew: 300e-12}).Analyze()
				if err != nil {
					t.Fatalf("golden L=%g n=%d: %v", L, n, err)
				}
				pred, err := coeffs.LineDelay(LineSpec{Kind: liberty.Inverter, Size: size, N: n, Segment: seg, InputSlew: 300e-12})
				if err != nil {
					t.Fatal(err)
				}
				errPct := (pred.Delay - golden.Delay) / golden.Delay * 100
				t.Logf("L=%4.0fmm n=%2d %s: golden=%8.1fps model=%8.1fps err=%+6.1f%%",
					L*1e3, n, cellName, golden.Delay*1e12, pred.Delay*1e12, errPct)
			}
		}
	}
}
