package model

import (
	"fmt"

	"repro/internal/liberty"
	"repro/internal/regress"
)

// IntrinsicPoint is one intermediate observation of the repeater
// intrinsic delay — the load-axis intercept of the delay-vs-load
// regression at one (cell, input slew) grid point. The collection of
// these points is exactly the data behind the paper's Fig. 1.
type IntrinsicPoint struct {
	Kind      liberty.CellKind
	OutRising bool
	Size      float64 // drive strength
	Slew      float64 // input slew (s)
	Intrinsic float64 // fitted intrinsic delay (s)
}

// RdPoint is one intermediate observation of the drive resistance —
// the load-axis slope at one (cell, input slew) grid point.
type RdPoint struct {
	Kind      liberty.CellKind
	OutRising bool
	Size      float64
	WR        float64 // pulling-device width (m)
	Slew      float64
	Rd        float64 // Ω
}

// Report carries the calibration intermediates and fit diagnostics, so
// tools can regenerate Fig. 1 and audit every regression.
type Report struct {
	Intrinsic []IntrinsicPoint
	Rd        []RdPoint
	// Fits maps a descriptive name ("inv/rise/intrinsic", …) to the
	// regression diagnostics of that fit.
	Fits map[string]regress.Fit
}

// Calibrate fits the full coefficient set for a library — the
// reproduction of the paper's Table I derivation: linear regressions
// of delay against load to split intrinsic delay from drive
// resistance, a quadratic regression of intrinsic delay against slew,
// zero-intercept regressions of the drive-resistance components
// against reciprocal size, a multiple linear regression for output
// slew, and linear regressions for input capacitance, leakage, and
// area.
func Calibrate(lib *liberty.Library) (*Coefficients, *Report, error) {
	if lib == nil || len(lib.Cells) == 0 {
		return nil, nil, fmt.Errorf("model: empty library")
	}
	coeffs := &Coefficients{Tech: lib.Tech.Name}
	report := &Report{Fits: make(map[string]regress.Fit)}

	for _, kind := range []liberty.CellKind{liberty.Inverter, liberty.Buffer} {
		cells := lib.CellsOfKind(kind)
		if len(cells) == 0 {
			continue
		}
		kc := coeffs.kindCoeffs(kind)
		for _, outRising := range []bool{true, false} {
			ec, err := calibrateEdge(cells, kind, outRising, report)
			if err != nil {
				return nil, nil, fmt.Errorf("model: %v/%v: %w", kind, edgeName(outRising), err)
			}
			*kc.edge(outRising) = *ec
		}
		if err := calibrateStatics(cells, kind, kc, report); err != nil {
			return nil, nil, fmt.Errorf("model: %v statics: %w", kind, err)
		}
	}
	return coeffs, report, nil
}

func edgeName(outRising bool) string {
	if outRising {
		return "rise"
	}
	return "fall"
}

// calibrateEdge fits one (kind, edge) coefficient set from the NLDM
// tables of all cells of that kind.
func calibrateEdge(cells []*liberty.Cell, kind liberty.CellKind, outRising bool, report *Report) (*EdgeCoeffs, error) {
	prefix := fmt.Sprintf("%s/%s", kind, edgeName(outRising))
	ec := &EdgeCoeffs{}

	var intrinsicSlews, intrinsicVals []float64
	var invWr0, rd0Vals, invWr1, rd1Vals []float64
	var slewRows [][]float64
	var slewVals []float64

	for _, cell := range cells {
		wr := cell.WN
		if outRising {
			wr = cell.WP
		}
		delay := cell.DelayFall
		outSlew := cell.SlewFall
		if outRising {
			delay = cell.DelayRise
			outSlew = cell.SlewRise
		}

		// Per-slew linear regression of delay vs load: intercept is
		// the intrinsic delay, slope the drive resistance.
		var rdSlews, rdVals []float64
		for i, s := range delay.SlewAxis {
			fit, err := regress.Linear(delay.LoadAxis, delay.Values[i])
			if err != nil {
				return nil, fmt.Errorf("delay-vs-load at slew %g: %w", s, err)
			}
			intrinsicSlews = append(intrinsicSlews, s)
			intrinsicVals = append(intrinsicVals, fit.Coeff[0])
			rdSlews = append(rdSlews, s)
			rdVals = append(rdVals, fit.Coeff[1])
			report.Intrinsic = append(report.Intrinsic, IntrinsicPoint{
				Kind: kind, OutRising: outRising, Size: cell.Size, Slew: s, Intrinsic: fit.Coeff[0],
			})
			report.Rd = append(report.Rd, RdPoint{
				Kind: kind, OutRising: outRising, Size: cell.Size, WR: wr, Slew: s, Rd: fit.Coeff[1],
			})
		}
		// Per-cell: r_d = rd0 + rd1·s.
		fit, err := regress.Linear(rdSlews, rdVals)
		if err != nil {
			return nil, fmt.Errorf("rd-vs-slew for %s: %w", cell.Name, err)
		}
		invWr0 = append(invWr0, 1/wr)
		rd0Vals = append(rd0Vals, fit.Coeff[0])
		invWr1 = append(invWr1, 1/wr)
		rd1Vals = append(rd1Vals, fit.Coeff[1])

		// Output-slew observations for the multiple regression.
		for i, s := range outSlew.SlewAxis {
			for j, l := range outSlew.LoadAxis {
				slewRows = append(slewRows, []float64{s / wr, l})
				slewVals = append(slewVals, outSlew.Values[i][j])
			}
		}
	}

	// Intrinsic delay: quadratic in slew, pooled across sizes (the
	// paper's Fig. 1 shows size-independence).
	qfit, err := regress.Quadratic(intrinsicSlews, intrinsicVals)
	if err != nil {
		return nil, fmt.Errorf("intrinsic quadratic: %w", err)
	}
	ec.A0, ec.A1, ec.A2 = qfit.Coeff[0], qfit.Coeff[1], qfit.Coeff[2]
	report.Fits[prefix+"/intrinsic"] = qfit

	// Drive resistance components ∝ 1/w_r, zero intercept.
	b0fit, err := regress.LinearZero(invWr0, rd0Vals)
	if err != nil {
		return nil, fmt.Errorf("beta0: %w", err)
	}
	ec.Beta0 = b0fit.Coeff[0]
	report.Fits[prefix+"/beta0"] = b0fit

	b1fit, err := regress.LinearZero(invWr1, rd1Vals)
	if err != nil {
		return nil, fmt.Errorf("beta1: %w", err)
	}
	ec.Beta1 = b1fit.Coeff[0]
	report.Fits[prefix+"/beta1"] = b1fit

	// Output slew: s_o = γ0 + γ1·s/w_r + γ2·c_l.
	sfit, err := regress.Multi(slewRows, slewVals)
	if err != nil {
		return nil, fmt.Errorf("output slew: %w", err)
	}
	ec.Gamma0, ec.Gamma1, ec.Gamma2 = sfit.Coeff[0], sfit.Coeff[1], sfit.Coeff[2]
	report.Fits[prefix+"/slew"] = sfit
	return ec, nil
}

// calibrateStatics fits the input-capacitance, leakage, and area
// models of one kind.
func calibrateStatics(cells []*liberty.Cell, kind liberty.CellKind, kc *KindCoeffs, report *Report) error {
	prefix := fmt.Sprint(kind)
	var widthSum, cin, wn, leak, area []float64
	for _, c := range cells {
		widthSum = append(widthSum, c.WN+c.WP)
		cin = append(cin, c.InputCap)
		wn = append(wn, c.WN)
		leak = append(leak, c.Leakage)
		area = append(area, c.Area)
	}
	kfit, err := regress.LinearZero(widthSum, cin)
	if err != nil {
		return fmt.Errorf("kappa: %w", err)
	}
	kc.Kappa = kfit.Coeff[0]
	report.Fits[prefix+"/kappa"] = kfit

	lfit, err := regress.Linear(wn, leak)
	if err != nil {
		return fmt.Errorf("leakage: %w", err)
	}
	kc.Leak0, kc.Leak1 = lfit.Coeff[0], lfit.Coeff[1]
	report.Fits[prefix+"/leakage"] = lfit

	afit, err := regress.Linear(wn, area)
	if err != nil {
		return fmt.Errorf("area: %w", err)
	}
	kc.Area0, kc.Area1 = afit.Coeff[0], afit.Coeff[1]
	report.Fits[prefix+"/area"] = afit
	return nil
}
