package model

import (
	"fmt"

	"repro/internal/liberty"
	"repro/internal/wire"
)

// LineSpec describes a uniformly buffered interconnect for the
// predictive model: the same geometry package sta analyzes, but
// evaluated with closed-form equations instead of simulation.
type LineSpec struct {
	// Kind and Size select the repeater (Size in unit-inverter
	// multiples).
	Kind liberty.CellKind
	Size float64
	// N is the repeater count.
	N int
	// Segment is the full wire: length, layer, style, technology.
	Segment wire.Segment
	// InputSlew is the input 10–90% transition time (s).
	InputSlew float64
}

// Validate reports whether the spec is evaluable.
func (s *LineSpec) Validate() error {
	if s.Size <= 0 {
		return fmt.Errorf("model: non-positive size %g", s.Size)
	}
	if s.N < 1 {
		return fmt.Errorf("model: need at least one repeater, got %d", s.N)
	}
	if s.InputSlew <= 0 {
		return fmt.Errorf("model: non-positive input slew")
	}
	return s.Segment.Validate()
}

// LineTiming is the model's timing prediction for a line.
type LineTiming struct {
	// Delay is the worst-edge total delay (s).
	Delay float64
	// RiseDelay and FallDelay are per-starting-edge totals.
	RiseDelay, FallDelay float64
	// OutputSlew is the predicted slew at the receiver for the worst
	// edge.
	OutputSlew float64
}

// LineRC holds the per-meter electrical parameters of a line's wire:
// the corrected resistance and the style-resolved quiet/coupled
// capacitances. Extracting them once with SegmentRC and reusing them
// across evaluations (LineDelayRC) skips the math.Pow-heavy per-meter
// formulas, which is what makes cross-candidate sample sharing cheap:
// candidates of a sizing sweep differ only in repeater size and count,
// never in wire geometry, so one extraction per Monte Carlo sample
// serves all of them.
type LineRC struct {
	// RPerM is the scattering/barrier-corrected resistance (Ω/m).
	RPerM float64
	// GroundPerM is the quiet capacitance per meter (F/m); for the
	// shielded style it already includes both shield sidewalls,
	// mirroring wire.Segment.GroundCap.
	GroundPerM float64
	// CouplingPerM is the switching-neighbor coupling capacitance per
	// meter (F/m) — both neighbors; zero for the shielded style.
	CouplingPerM float64
}

// SegmentRC extracts the per-meter parameters of a segment. The
// folding mirrors wire.Segment.GroundCap/CouplingCap exactly (same
// operations in the same order), so delays computed through LineRC are
// bit-identical to the Segment-method path.
func SegmentRC(seg wire.Segment) LineRC {
	var rc LineRC
	rc.RPerM = wire.ResistancePerMeter(seg.Tech, seg.Layer, seg.Width)
	cg := wire.GroundCapPerMeter(seg.Tech, seg.Layer, seg.Width)
	if seg.Style == wire.Shielded {
		cg += 2 * wire.CouplingCapPerMeter(seg.Tech, seg.Layer, seg.Spacing)
	} else {
		rc.CouplingPerM = 2 * wire.CouplingCapPerMeter(seg.Tech, seg.Layer, seg.Spacing)
	}
	rc.GroundPerM = cg
	return rc
}

// stageCaps resolves one stage's quiet/coupled capacitance split,
// mirroring wire.Segment.DelayCaps for a stage of the given length.
func (rc LineRC) stageCaps(style wire.Style, length float64) (quiet, coupled float64) {
	ground := rc.GroundPerM * length
	coupling := rc.CouplingPerM * length
	switch style {
	case wire.SWSS:
		return ground, coupling
	case wire.Staggered:
		return ground + coupling, 0
	default: // Shielded (CouplingPerM is zero by construction)
		return ground, 0
	}
}

// LineDelay predicts the delay of the line: the sum over stages of the
// repeater delay (intrinsic + drive resistance × load) and the
// enhanced Pamunuwa wire delay, with the model's own output-slew
// equation propagating slew from stage to stage. Both starting edge
// polarities are evaluated and the worst kept, mirroring the golden
// analysis.
func (c *Coefficients) LineDelay(spec LineSpec) (LineTiming, error) {
	return c.LineDelayRC(spec, SegmentRC(spec.Segment))
}

// LineDelayRC is LineDelay with the wire's per-meter parameters
// supplied by the caller, bit-identical to LineDelay when rc is
// SegmentRC(spec.Segment). The sampling kernel extracts rc once per
// perturbed sample and evaluates every candidate spec against it.
func (c *Coefficients) LineDelayRC(spec LineSpec, rc LineRC) (LineTiming, error) {
	if err := spec.Validate(); err != nil {
		return LineTiming{}, err
	}
	tc := spec.Segment.Tech
	wn, wp := tc.InverterWidths(spec.Size)
	ci := c.InputCap(spec.Kind, wn, wp)

	stageLen := spec.Segment.Length / float64(spec.N)
	quiet, coupled := rc.stageCaps(spec.Segment.Style, stageLen)
	cl := quiet + 2*coupled + ci
	lambda := spec.Segment.Style.MillerFactor()
	dWire := rc.RPerM * stageLen * (0.4*quiet + (lambda/2)*coupled + 0.7*ci)

	rise, riseSlew := c.lineEdge(spec, true, wn, wp, cl, dWire)
	fall, fallSlew := c.lineEdge(spec, false, wn, wp, cl, dWire)
	t := LineTiming{RiseDelay: rise, FallDelay: fall}
	if rise >= fall {
		t.Delay, t.OutputSlew = rise, riseSlew
	} else {
		t.Delay, t.OutputSlew = fall, fallSlew
	}
	return t, nil
}

// lineEdge evaluates one starting polarity. The stage load cl and wire
// delay dWire are identical for both polarities and supplied by the
// caller so they are computed once per line instead of once per edge.
func (c *Coefficients) lineEdge(spec LineSpec, startRising bool, wn, wp, cl, dWire float64) (total, outSlew float64) {
	slew := spec.InputSlew
	outRising := startRising
	if spec.Kind == liberty.Inverter {
		outRising = !startRising
	}
	for i := 0; i < spec.N; i++ {
		wr := wn
		if outRising {
			wr = wp
		}
		total += c.RepeaterDelay(spec.Kind, outRising, wr, slew, cl)
		total += dWire
		slew = c.RepeaterOutSlew(spec.Kind, outRising, wr, slew, cl)
		if slew < 1e-15 {
			slew = 1e-15 // numerical floor; extrapolation can undershoot
		}
		if spec.Kind == liberty.Inverter {
			outRising = !outRising
		}
	}
	return total, slew
}

// PowerParams supplies the dynamic-power operating point.
type PowerParams struct {
	// Activity is the switching activity factor α.
	Activity float64
	// Freq is the clock frequency (Hz).
	Freq float64
}

// LinePower is the model's power prediction for one bit line.
type LinePower struct {
	// Dynamic is α·c_l·v_dd²·f summed over all stages (W).
	Dynamic float64
	// Leakage is the summed repeater leakage (W).
	Leakage float64
}

// Total returns dynamic plus leakage power.
func (p LinePower) Total() float64 { return p.Dynamic + p.Leakage }

// LinePower predicts the power of the line. The dynamic load per
// stage is the full wire capacitance (ground plus coupling — charge
// delivered per transition does not care about Miller timing) plus the
// next repeater's input capacitance.
func (c *Coefficients) LinePower(spec LineSpec, pp PowerParams) (LinePower, error) {
	if err := spec.Validate(); err != nil {
		return LinePower{}, err
	}
	if pp.Activity < 0 || pp.Freq <= 0 {
		return LinePower{}, fmt.Errorf("model: bad power params α=%g f=%g", pp.Activity, pp.Freq)
	}
	tc := spec.Segment.Tech
	wn, wp := tc.InverterWidths(spec.Size)
	ci := c.InputCap(spec.Kind, wn, wp)

	stageSeg := spec.Segment
	stageSeg.Length = spec.Segment.Length / float64(spec.N)
	clPower := stageSeg.TotalCap() + ci

	var p LinePower
	p.Dynamic = float64(spec.N) * DynamicPower(pp.Activity, clPower, tc.Vdd, pp.Freq)
	p.Leakage = float64(spec.N) * c.LeakagePower(spec.Kind, wn)
	return p, nil
}

// LineArea is the model's area prediction for a bus.
type LineArea struct {
	// Repeaters is the total repeater area (m²) across all bits and
	// stages.
	Repeaters float64
	// Wiring is the routed bus area (m²).
	Wiring float64
}

// Total returns repeater plus wiring area.
func (a LineArea) Total() float64 { return a.Repeaters + a.Wiring }

// LineArea predicts the silicon area of an n-bit bus implemented as n
// copies of the line.
func (c *Coefficients) LineArea(spec LineSpec, bits int) (LineArea, error) {
	if err := spec.Validate(); err != nil {
		return LineArea{}, err
	}
	if bits < 1 {
		return LineArea{}, fmt.Errorf("model: need at least one bit, got %d", bits)
	}
	tc := spec.Segment.Tech
	wn, _ := tc.InverterWidths(spec.Size)
	var a LineArea
	a.Repeaters = float64(bits) * float64(spec.N) * c.RepeaterArea(spec.Kind, wn)
	a.Wiring = spec.Segment.BusArea(bits)
	return a, nil
}
