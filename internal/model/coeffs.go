// Package model implements the paper's primary contribution: simple,
// accurate closed-form predictive models for the delay, power, and
// area of global buffered interconnects, together with the regression
// pipeline that calibrates their coefficients against a characterized
// cell library (the reproduction of the paper's Table I).
//
// The model set, following Section III of the paper:
//
//   - Repeater delay  d_r = i(s_i) + r_d(s_i, w_r)·c_l, with the
//     intrinsic delay quadratic in input slew and independent of size,
//     and the drive resistance linear in slew with both intercept and
//     slope inversely proportional to the repeater size (the pulling
//     device's width: pMOS for rise, nMOS for fall).
//   - Output slew  s_o = γ0 + γ1·s_i/w_r + γ2·c_l.
//   - Input capacitance  c_i = κ·(w_p + w_n).
//   - Wire delay  d_w = r_w·(0.4·c_g + (λ/2)·c_c + 0.7·c_i), the
//     Pamunuwa cross-talk-aware form, with wire resistance corrected
//     for electron scattering and barrier thickness (package wire).
//   - Leakage power linear in device width, averaged over states.
//   - Dynamic power  α·c_l·v_dd²·f.
//   - Repeater area linear in device width (regression), with a
//     predictive row-height/contact-pitch variant for future nodes.
package model

import (
	"fmt"

	"repro/internal/liberty"
	"repro/internal/tech"
	"repro/internal/wire"
)

// EdgeCoeffs holds the fitted delay/slew coefficients for one output
// edge (rise or fall) of one repeater kind.
type EdgeCoeffs struct {
	// A0, A1, A2 define the intrinsic delay i(s) = A0 + A1·s + A2·s²
	// (seconds, with s in seconds).
	A0, A1, A2 float64
	// Beta0, Beta1 define the drive resistance r_d = Beta0/w_r +
	// (Beta1/w_r)·s with w_r in meters: Ω·m and Ω·m/s respectively.
	Beta0, Beta1 float64
	// Gamma0, Gamma1, Gamma2 define the output slew s_o = Gamma0 +
	// Gamma1·s/w_r + Gamma2·c_l.
	Gamma0, Gamma1, Gamma2 float64
}

// Intrinsic evaluates the intrinsic delay at input slew s.
func (e *EdgeCoeffs) Intrinsic(s float64) float64 {
	return e.A0 + e.A1*s + e.A2*s*s
}

// DriveResistance evaluates r_d for pulling-device width wr and input
// slew s.
func (e *EdgeCoeffs) DriveResistance(wr, s float64) float64 {
	return e.Beta0/wr + e.Beta1/wr*s
}

// Delay evaluates the repeater delay for pulling-device width wr,
// input slew s, and load capacitance cl.
func (e *EdgeCoeffs) Delay(wr, s, cl float64) float64 {
	return e.Intrinsic(s) + e.DriveResistance(wr, s)*cl
}

// OutSlew evaluates the output slew for the same arguments.
func (e *EdgeCoeffs) OutSlew(wr, s, cl float64) float64 {
	return e.Gamma0 + e.Gamma1*s/wr + e.Gamma2*cl
}

// KindCoeffs pairs the rise/fall edge coefficients of one repeater
// kind with its input-capacitance slope.
type KindCoeffs struct {
	Rise, Fall EdgeCoeffs
	// Kappa is the input-capacitance coefficient: c_i = Kappa·(w_p +
	// w_n) over the *second-stage* widths (for buffers the first
	// stage is size/4, which Kappa absorbs).
	Kappa float64
	// Leak0, Leak1 give the state-averaged leakage power as Leak0 +
	// Leak1·w_n (watts, w_n in meters).
	Leak0, Leak1 float64
	// Area0, Area1 give the repeater layout area as Area0 +
	// Area1·w_n (m²) — the regression-based area model for existing
	// technologies.
	Area0, Area1 float64
}

// Coefficients is the complete fitted model for one technology — one
// row of the paper's Table I.
type Coefficients struct {
	// Tech is the technology name the coefficients were fitted for.
	Tech string
	// Inv and Buf are the per-kind coefficient sets.
	Inv, Buf KindCoeffs
}

// kindCoeffs selects the per-kind set.
func (c *Coefficients) kindCoeffs(kind liberty.CellKind) *KindCoeffs {
	if kind == liberty.Buffer {
		return &c.Buf
	}
	return &c.Inv
}

// edge selects the per-edge set.
func (k *KindCoeffs) edge(outRising bool) *EdgeCoeffs {
	if outRising {
		return &k.Rise
	}
	return &k.Fall
}

// RepeaterDelay predicts the propagation delay (s) of a repeater of
// the given kind whose pulling device has width wr (pMOS width for a
// rising output, nMOS width for a falling output), for input slew si
// and load cl.
func (c *Coefficients) RepeaterDelay(kind liberty.CellKind, outRising bool, wr, si, cl float64) float64 {
	return c.kindCoeffs(kind).edge(outRising).Delay(wr, si, cl)
}

// RepeaterOutSlew predicts the output slew (s) under the same
// arguments.
func (c *Coefficients) RepeaterOutSlew(kind liberty.CellKind, outRising bool, wr, si, cl float64) float64 {
	return c.kindCoeffs(kind).edge(outRising).OutSlew(wr, si, cl)
}

// InputCap predicts the input capacitance (F) of a repeater with
// second-stage widths wn, wp.
func (c *Coefficients) InputCap(kind liberty.CellKind, wn, wp float64) float64 {
	return c.kindCoeffs(kind).Kappa * (wn + wp)
}

// LeakagePower predicts the state-averaged leakage power (W) of a
// repeater with nMOS width wn.
func (c *Coefficients) LeakagePower(kind liberty.CellKind, wn float64) float64 {
	k := c.kindCoeffs(kind)
	return k.Leak0 + k.Leak1*wn
}

// RepeaterArea predicts the layout area (m²) of a repeater with nMOS
// width wn using the regression-based model.
func (c *Coefficients) RepeaterArea(kind liberty.CellKind, wn float64) float64 {
	k := c.kindCoeffs(kind)
	return k.Area0 + k.Area1*wn
}

// PredictiveArea returns the paper's forward-looking area model for
// technologies without library data, built only from early
// process/library development values:
//
//	N_f = (w_p + w_n)/(h_row − 4·p_contact)
//	w_cell = (N_f + 1)·p_contact
//	a_r = h_row·w_cell
func PredictiveArea(t *tech.Technology, wn, wp float64) float64 {
	usable := t.RowHeight - 4*t.ContactPitch
	nf := (wn + wp) / usable
	if nf < 1 {
		nf = 1
	}
	wcell := (nf + 1) * t.ContactPitch
	return t.RowHeight * wcell
}

// DynamicPower returns α·c_l·v_dd²·f — the paper's dynamic-power
// equation for one switching node with activity factor alpha.
func DynamicPower(alpha, cl, vdd, f float64) float64 {
	return alpha * cl * vdd * vdd * f
}

// WireDelay predicts the delay (s) of one wire segment loaded by the
// next repeater's input capacitance ci, using the enhanced Pamunuwa
// form: the quiet capacitance weighted 0.4, coupling weighted by half
// the style's Miller factor (1.51/2 for worst-case SWSS, 0 when
// shielding or staggering neutralizes cross-talk), and the receiver
// load weighted 0.7. The wire resistance includes the scattering and
// barrier corrections.
func WireDelay(seg wire.Segment, ci float64) float64 {
	rw := seg.Resistance()
	quiet, coupled := seg.DelayCaps()
	lambda := seg.Style.MillerFactor()
	return rw * (0.4*quiet + (lambda/2)*coupled + 0.7*ci)
}

// GateLoad returns the load capacitance the repeater-delay model sees
// for a wire segment plus receiver: the quiet capacitance, the
// coupling capacitance amplified by the worst-case Miller factor 2
// (matching the sign-off assumption for simultaneous opposite
// switching), and the receiver's input capacitance.
func GateLoad(seg wire.Segment, ci float64) float64 {
	quiet, coupled := seg.DelayCaps()
	return quiet + 2*coupled + ci
}

// String implements fmt.Stringer with a compact summary.
func (c *Coefficients) String() string {
	return fmt.Sprintf("model.Coefficients{%s}", c.Tech)
}
