package model

import (
	"math"
	"testing"

	"repro/internal/liberty"
	"repro/internal/tech"
	"repro/internal/wire"
)

func testSpec(tc *tech.Technology) LineSpec {
	return LineSpec{
		Kind:      liberty.Inverter,
		Size:      40,
		N:         3,
		Segment:   wire.NewSegment(tc, 5e-3, wire.SWSS),
		InputSlew: 300e-12,
	}
}

// TestScaledForIdentity: scaling against an unperturbed copy must be a
// no-op on every coefficient the delay and power paths read.
func TestScaledForIdentity(t *testing.T) {
	tc := tech.MustLookup("90nm")
	c := MustDefault("90nm")
	scaled := c.ScaledFor(tc, tc.Clone())

	spec := testSpec(tc)
	want, err := c.LineDelay(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := scaled.LineDelay(spec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Delay-want.Delay) > 1e-18 {
		t.Fatalf("identity scaling moved delay: %g vs %g", got.Delay, want.Delay)
	}
	pp := PowerParams{Activity: 0.15, Freq: tc.Clock}
	wantP, err := c.LinePower(spec, pp)
	if err != nil {
		t.Fatal(err)
	}
	gotP, err := scaled.LinePower(spec, pp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotP.Total()-wantP.Total()) > wantP.Total()*1e-12 {
		t.Fatalf("identity scaling moved power: %g vs %g", gotP.Total(), wantP.Total())
	}
}

// TestScaledForPhysicalDirections: higher thresholds must slow the
// gates and cut leakage; fatter gate capacitance must raise input
// load; the original coefficient set must never be modified.
func TestScaledForPhysicalDirections(t *testing.T) {
	tc := tech.MustLookup("90nm")
	c := MustDefault("90nm")
	before := *c
	spec := testSpec(tc)
	nominal, err := c.LineDelay(spec)
	if err != nil {
		t.Fatal(err)
	}

	slow := tc.Clone()
	slow.NMOS.Vth += 0.04
	slow.PMOS.Vth += 0.04
	sc := c.ScaledFor(tc, slow)
	d, err := sc.LineDelay(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d.Delay <= nominal.Delay {
		t.Fatalf("raised Vth did not slow the line: %g vs nominal %g", d.Delay, nominal.Delay)
	}
	if sc.Inv.Leak0 >= c.Inv.Leak0 {
		t.Fatalf("raised Vth did not cut leakage: %g vs %g", sc.Inv.Leak0, c.Inv.Leak0)
	}

	fat := tc.Clone()
	fat.NMOS.CGate *= 1.1
	fat.PMOS.CGate *= 1.1
	fc := c.ScaledFor(tc, fat)
	if fc.Inv.Kappa <= c.Inv.Kappa {
		t.Fatalf("fatter CGate did not raise Kappa: %g vs %g", fc.Inv.Kappa, c.Inv.Kappa)
	}

	if *c != before {
		t.Fatal("ScaledFor modified the receiver")
	}
}

// TestScaledForTracksRecalibrationDirectionally: the closed-form path
// is an approximation, but against a direct model evaluation with the
// perturbed drive it must keep delay monotone in the perturbation
// magnitude (the property Monte Carlo sampling depends on).
func TestScaledForMonotoneInVth(t *testing.T) {
	tc := tech.MustLookup("90nm")
	c := MustDefault("90nm")
	spec := testSpec(tc)
	prev := -math.MaxFloat64
	for _, dv := range []float64{-0.04, -0.02, 0, 0.02, 0.04} {
		pert := tc.Clone()
		pert.NMOS.Vth += dv
		pert.PMOS.Vth += dv
		d, err := c.ScaledFor(tc, pert).LineDelay(spec)
		if err != nil {
			t.Fatal(err)
		}
		if d.Delay <= prev {
			t.Fatalf("delay not monotone in Vth shift: %g ps at Δ=%g after %g ps", d.Delay*1e12, dv, prev*1e12)
		}
		prev = d.Delay
	}
}
