package model

import "fmt"

// Default returns the embedded pre-calibrated coefficient set for a
// built-in technology — the shipped form of the paper's Table I. The
// returned pointer refers to shared data and must not be mutated.
//
// The embedded values are produced by the full characterization +
// regression pipeline (cmd/calibrate -emit-go); the model test suite
// cross-checks them against a live calibration.
func Default(techName string) (*Coefficients, error) {
	c, ok := defaultCoefficients[techName]
	if !ok {
		return nil, fmt.Errorf("model: no embedded coefficients for %q", techName)
	}
	return c, nil
}

// MustDefault is Default for known-good names; it panics on failure.
func MustDefault(techName string) *Coefficients {
	c, err := Default(techName)
	if err != nil {
		panic(err)
	}
	return c
}

// DefaultTechs returns the technology names with embedded
// coefficients.
func DefaultTechs() []string {
	out := make([]string, 0, len(defaultCoefficients))
	for k := range defaultCoefficients {
		out = append(out, k)
	}
	return out
}
