package model

import (
	"math"
	"testing"

	"repro/internal/liberty"
	"repro/internal/sta"
	"repro/internal/tech"
	"repro/internal/wire"
)

// calibrated returns a coefficient set calibrated live against the
// 90nm characterized library (memoized by liberty.Get within the test
// binary).
func calibrated(t testing.TB) (*Coefficients, *liberty.Library) {
	t.Helper()
	tc := tech.MustLookup("90nm")
	lib, err := liberty.Get(tc)
	if err != nil {
		t.Fatal(err)
	}
	coeffs, _, err := Calibrate(lib)
	if err != nil {
		t.Fatal(err)
	}
	return coeffs, lib
}

func TestCalibrateRejectsEmpty(t *testing.T) {
	if _, _, err := Calibrate(nil); err == nil {
		t.Fatal("nil library accepted")
	}
	if _, _, err := Calibrate(&liberty.Library{}); err == nil {
		t.Fatal("empty library accepted")
	}
}

func TestCalibrationFitQuality(t *testing.T) {
	tc := tech.MustLookup("90nm")
	lib, err := liberty.Get(tc)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := Calibrate(lib)
	if err != nil {
		t.Fatal(err)
	}
	// The fits the paper singles out as excellent must be excellent:
	// kappa (input cap ∝ width) and leakage (linear in width) are
	// near-exact, beta0 (drive resistance ∝ 1/size) very strong.
	for _, name := range []string{"INV/kappa", "BUF/kappa", "INV/leakage", "BUF/leakage"} {
		if fit, ok := rep.Fits[name]; !ok || fit.R2 < 0.999 {
			t.Errorf("%s: R²=%v, want ≥0.999", name, fit.R2)
		}
	}
	for _, name := range []string{"INV/rise/beta0", "INV/fall/beta0", "BUF/rise/beta0", "BUF/fall/beta0"} {
		if fit, ok := rep.Fits[name]; !ok || fit.R2 < 0.98 {
			t.Errorf("%s: R²=%v, want ≥0.98", name, fit.R2)
		}
	}
	for _, name := range []string{"INV/area", "BUF/area"} {
		if fit, ok := rep.Fits[name]; !ok || fit.R2 < 0.97 {
			t.Errorf("%s: R²=%v, want ≥0.97", name, fit.R2)
		}
	}
	// Report must carry the Fig. 1 intermediates.
	if len(rep.Intrinsic) == 0 || len(rep.Rd) == 0 {
		t.Fatal("missing calibration intermediates")
	}
}

// Fig. 1 reproduction: intrinsic delay is essentially independent of
// repeater size but varies strongly (and nonlinearly) with input slew.
func TestFig1IntrinsicShape(t *testing.T) {
	tc := tech.MustLookup("90nm")
	lib, err := liberty.Get(tc)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := Calibrate(lib)
	if err != nil {
		t.Fatal(err)
	}
	// Group inverter rise intrinsics by slew and by size.
	bySlew := map[float64][]float64{}
	bySize := map[float64][]float64{}
	for _, p := range rep.Intrinsic {
		if p.Kind != liberty.Inverter || !p.OutRising {
			continue
		}
		bySlew[p.Slew] = append(bySlew[p.Slew], p.Intrinsic)
		bySize[p.Size] = append(bySize[p.Size], p.Intrinsic)
	}
	spread := func(v []float64) float64 {
		lo, hi := v[0], v[0]
		for _, x := range v {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		return hi - lo
	}
	// Across sizes at fixed slew: small spread (size-independence).
	var maxSizeSpread, mean float64
	var count int
	for _, vals := range bySlew {
		if s := spread(vals); s > maxSizeSpread {
			maxSizeSpread = s
		}
		for _, v := range vals {
			mean += v
			count++
		}
	}
	mean /= float64(count)
	// Across slews at fixed size: large spread (strong slew
	// dependence).
	var minSlewSpread = math.Inf(1)
	for _, vals := range bySize {
		if s := spread(vals); s < minSlewSpread {
			minSlewSpread = s
		}
	}
	if !(minSlewSpread > 3*maxSizeSpread) {
		t.Fatalf("Fig.1 shape violated: slew spread %g not ≫ size spread %g", minSlewSpread, maxSizeSpread)
	}
	if maxSizeSpread > 0.5*math.Abs(mean) {
		t.Fatalf("intrinsic delay not size-independent: spread %g vs mean %g", maxSizeSpread, mean)
	}
}

func TestEdgeCoeffsEvaluation(t *testing.T) {
	e := EdgeCoeffs{A0: 1e-12, A1: 0.1, A2: 1e8, Beta0: 2e-3, Beta1: 1e6, Gamma0: 5e-12, Gamma1: 1e-6, Gamma2: 500}
	s, w, cl := 100e-12, 1e-6, 50e-15
	wantI := 1e-12 + 0.1*s + 1e8*s*s
	if got := e.Intrinsic(s); math.Abs(got-wantI) > 1e-18 {
		t.Fatalf("intrinsic %g want %g", got, wantI)
	}
	wantR := 2e-3/w + 1e6/w*s
	if got := e.DriveResistance(w, s); math.Abs(got-wantR) > 1e-9 {
		t.Fatalf("rd %g want %g", got, wantR)
	}
	if got := e.Delay(w, s, cl); math.Abs(got-(wantI+wantR*cl)) > 1e-18 {
		t.Fatalf("delay %g", got)
	}
	wantS := 5e-12 + 1e-6*s/w + 500*cl
	if got := e.OutSlew(w, s, cl); math.Abs(got-wantS) > 1e-18 {
		t.Fatalf("slew %g want %g", got, wantS)
	}
}

// The calibrated repeater-delay model must reproduce the NLDM tables
// it was fitted to at in-grid points within the model's intended
// operating region: global-wire repeater stages are wire-dominated, so
// loads of a few fanouts and up are what matter. At the 1×-fanout
// corner the delay-vs-load curve is visibly concave and the paper's
// linear-in-load form (ours and theirs) structurally overshoots — the
// line-level accuracy test below is the end-to-end check.
func TestRepeaterModelMatchesTables(t *testing.T) {
	coeffs, lib := calibrated(t)
	var worst float64
	for _, cell := range lib.CellsOfKind(liberty.Inverter) {
		for _, outRising := range []bool{true, false} {
			wr := cell.WN
			tab := cell.DelayFall
			if outRising {
				wr, tab = cell.WP, cell.DelayRise
			}
			for i, s := range tab.SlewAxis {
				for j, l := range tab.LoadAxis {
					if l < 4*cell.InputCap {
						continue // below the buffered-wire regime
					}
					pred := coeffs.RepeaterDelay(liberty.Inverter, outRising, wr, s, l)
					gold := tab.Values[i][j]
					if e := math.Abs(pred-gold) / gold; e > worst {
						worst = e
					}
				}
			}
		}
	}
	if worst > 0.25 {
		t.Fatalf("worst pointwise repeater-delay error %.1f%% (loads ≥ 4 fanouts)", worst*100)
	}
}

// Headline accuracy claim (Table II shape): for sensibly buffered
// lines the proposed model predicts golden delay within ~12%.
func TestLineModelAccuracyVsGolden(t *testing.T) {
	coeffs, lib := calibrated(t)
	tc := lib.Tech
	cases := []struct {
		L    float64
		n    int
		cell string
		size float64
	}{
		{1e-3, 2, "INVD8", 8},
		{3e-3, 4, "INVD12", 12},
		{5e-3, 5, "INVD16", 16},
		{10e-3, 10, "INVD16", 16},
	}
	for _, cse := range cases {
		seg := wire.NewSegment(tc, cse.L, wire.SWSS)
		golden, err := (&sta.Line{Cell: lib.Cell(cse.cell), N: cse.n, Segment: seg, InputSlew: 300e-12}).Analyze()
		if err != nil {
			t.Fatal(err)
		}
		pred, err := coeffs.LineDelay(LineSpec{Kind: liberty.Inverter, Size: cse.size, N: cse.n, Segment: seg, InputSlew: 300e-12})
		if err != nil {
			t.Fatal(err)
		}
		e := math.Abs(pred.Delay-golden.Delay) / golden.Delay
		if e > 0.13 {
			t.Errorf("L=%g n=%d: model error %.1f%% exceeds 13%%", cse.L, cse.n, e*100)
		}
	}
}

func TestLineSpecValidation(t *testing.T) {
	coeffs, lib := calibrated(t)
	tc := lib.Tech
	good := LineSpec{Kind: liberty.Inverter, Size: 8, N: 2, Segment: wire.NewSegment(tc, 1e-3, wire.SWSS), InputSlew: 300e-12}
	if _, err := coeffs.LineDelay(good); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Size = 0
	if _, err := coeffs.LineDelay(bad); err == nil {
		t.Error("zero size accepted")
	}
	bad = good
	bad.N = 0
	if _, err := coeffs.LineDelay(bad); err == nil {
		t.Error("zero repeaters accepted")
	}
	bad = good
	bad.InputSlew = 0
	if _, err := coeffs.LineDelay(bad); err == nil {
		t.Error("zero slew accepted")
	}
	bad = good
	bad.Segment.Length = 0
	if _, err := coeffs.LineDelay(bad); err == nil {
		t.Error("zero length accepted")
	}
}

func TestLinePowerComposition(t *testing.T) {
	coeffs, lib := calibrated(t)
	tc := lib.Tech
	spec := LineSpec{Kind: liberty.Inverter, Size: 12, N: 5, Segment: wire.NewSegment(tc, 5e-3, wire.SWSS), InputSlew: 300e-12}
	pp := PowerParams{Activity: 0.15, Freq: tc.Clock}
	p, err := coeffs.LinePower(spec, pp)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dynamic <= 0 || p.Leakage <= 0 {
		t.Fatalf("non-positive power components: %+v", p)
	}
	if math.Abs(p.Total()-(p.Dynamic+p.Leakage)) > 1e-18 {
		t.Fatal("Total() mismatch")
	}
	// Dynamic power doubles with frequency.
	p2, err := coeffs.LinePower(spec, PowerParams{Activity: 0.15, Freq: 2 * tc.Clock})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p2.Dynamic/p.Dynamic-2) > 1e-9 {
		t.Fatal("dynamic power not linear in frequency")
	}
	// Leakage is frequency-independent.
	if p2.Leakage != p.Leakage {
		t.Fatal("leakage must not depend on frequency")
	}
	// Bad params rejected.
	if _, err := coeffs.LinePower(spec, PowerParams{Activity: -1, Freq: 1e9}); err == nil {
		t.Error("negative activity accepted")
	}
	if _, err := coeffs.LinePower(spec, PowerParams{Activity: 0.1, Freq: 0}); err == nil {
		t.Error("zero frequency accepted")
	}
}

// Dynamic-power cross-check: the model's stage load (wire + receiver
// gate) must account for most of the physical switched capacitance;
// what it omits — the driver's own diffusion and intra-cell parasitics
// — is bounded. The paper's p_d equation makes the same omission.
func TestDynamicPowerCapacitanceAccounting(t *testing.T) {
	coeffs, lib := calibrated(t)
	tc := lib.Tech
	spec := LineSpec{Kind: liberty.Inverter, Size: 12, N: 5, Segment: wire.NewSegment(tc, 5e-3, wire.SWSS), InputSlew: 300e-12}
	pp := PowerParams{Activity: 0.15, Freq: tc.Clock}
	p, err := coeffs.LinePower(spec, pp)
	if err != nil {
		t.Fatal(err)
	}
	// Golden accounting: per stage, wire cap + receiver gate cap
	// (from the characterized cell) + driver diffusion (the model's
	// known omission).
	cell := lib.Cell("INVD12")
	stage := spec.Segment
	stage.Length /= float64(spec.N)
	perStageModelled := stage.TotalCap() + cell.InputCap
	perStageFull := perStageModelled + tc.NMOS.CDiff*cell.WN + tc.PMOS.CDiff*cell.WP
	golden := float64(spec.N) * DynamicPower(pp.Activity, perStageFull, tc.Vdd, pp.Freq)
	if p.Dynamic > golden {
		t.Fatalf("model dynamic %g exceeds full golden accounting %g", p.Dynamic, golden)
	}
	if p.Dynamic < 0.8*golden {
		t.Fatalf("model dynamic %g misses more than 20%% of golden %g", p.Dynamic, golden)
	}
}

func TestCouplingDominatesDynamicPower(t *testing.T) {
	// The paper's Table III explanation: the original model neglects
	// coupling capacitance, which is why the proposed model's dynamic
	// power is up to ~3× larger. Verify coupling is a large fraction
	// of total wire capacitance at 90nm.
	tc := tech.MustLookup("90nm")
	seg := wire.NewSegment(tc, 1e-3, wire.SWSS)
	if frac := seg.CouplingCap() / seg.TotalCap(); frac < 0.4 {
		t.Fatalf("coupling fraction %.2f too small to reproduce Table III's story", frac)
	}
}

func TestLineAreaComposition(t *testing.T) {
	coeffs, lib := calibrated(t)
	tc := lib.Tech
	spec := LineSpec{Kind: liberty.Inverter, Size: 12, N: 5, Segment: wire.NewSegment(tc, 5e-3, wire.SWSS), InputSlew: 300e-12}
	a, err := coeffs.LineArea(spec, 128)
	if err != nil {
		t.Fatal(err)
	}
	if a.Repeaters <= 0 || a.Wiring <= 0 {
		t.Fatalf("non-positive area: %+v", a)
	}
	if math.Abs(a.Total()-(a.Repeaters+a.Wiring)) > 1e-24 {
		t.Fatal("Total() mismatch")
	}
	if _, err := coeffs.LineArea(spec, 0); err == nil {
		t.Error("zero bits accepted")
	}
	// Area scales linearly with bit width for the repeater part.
	a2, err := coeffs.LineArea(spec, 256)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a2.Repeaters/a.Repeaters-2) > 1e-9 {
		t.Fatal("repeater area not linear in bits")
	}
}

func TestPredictiveAreaTracksLayout(t *testing.T) {
	// The predictive (row-height/contact-pitch) area model must track
	// the quantized layout area within the paper's ~8% for standard
	// sizes.
	tc := tech.MustLookup("90nm")
	for _, size := range liberty.StandardSizes {
		wn, wp := tc.InverterWidths(size)
		pred := PredictiveArea(tc, wn, wp)
		layout := liberty.LayoutArea(tc, wn, wp)
		if e := math.Abs(pred-layout) / layout; e > 0.25 {
			t.Errorf("size %g: predictive area off by %.1f%%", size, e*100)
		}
	}
}

func TestWireDelayStyleBehavior(t *testing.T) {
	tc := tech.MustLookup("90nm")
	ci := 5e-15
	swss := WireDelay(wire.NewSegment(tc, 1e-3, wire.SWSS), ci)
	stag := WireDelay(wire.NewSegment(tc, 1e-3, wire.Staggered), ci)
	sh := WireDelay(wire.NewSegment(tc, 1e-3, wire.Shielded), ci)
	if !(swss > stag) {
		t.Fatalf("SWSS (%g) must exceed staggered (%g)", swss, stag)
	}
	if !(stag > sh) {
		// Staggered keeps coupling as quiet load; shielded moves it
		// to shields (same totals here) — with identical totals the
		// two coincide, so allow equality.
		if math.Abs(stag-sh) > 1e-18 {
			t.Fatalf("staggered (%g) below shielded (%g)", stag, sh)
		}
	}
}

func TestGateLoadIncludesMiller(t *testing.T) {
	tc := tech.MustLookup("90nm")
	seg := wire.NewSegment(tc, 1e-3, wire.SWSS)
	ci := 5e-15
	quiet, coupled := seg.DelayCaps()
	want := quiet + 2*coupled + ci
	if got := GateLoad(seg, ci); math.Abs(got-want) > 1e-21 {
		t.Fatalf("GateLoad = %g, want %g", got, want)
	}
}

func TestDynamicPowerFormula(t *testing.T) {
	if got := DynamicPower(0.5, 1e-12, 2, 1e9); math.Abs(got-0.5*1e-12*4*1e9) > 1e-15 {
		t.Fatalf("DynamicPower = %g", got)
	}
}

func TestCoefficientsString(t *testing.T) {
	c := &Coefficients{Tech: "90nm"}
	if c.String() != "model.Coefficients{90nm}" {
		t.Fatalf("String = %q", c.String())
	}
}

func BenchmarkCalibrate(b *testing.B) {
	tc := tech.MustLookup("90nm")
	lib, err := liberty.Get(tc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Calibrate(lib); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLineDelayModel(b *testing.B) {
	coeffs, lib := calibrated(b)
	spec := LineSpec{Kind: liberty.Inverter, Size: 12, N: 5, Segment: wire.NewSegment(lib.Tech, 5e-3, wire.SWSS), InputSlew: 300e-12}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coeffs.LineDelay(spec); err != nil {
			b.Fatal(err)
		}
	}
}
