package experiments

import (
	"context"
	"fmt"

	"repro/internal/noc"
	"repro/internal/tech"
	"repro/internal/wire"
)

// TableIIIRow is one row of the Table III reproduction: the NoC that
// COSI-style synthesis produces for one test case, technology, and
// interconnect model, with the metrics the tool reports.
type TableIIIRow struct {
	Tech    string
	Case    string
	Model   string // "original" or "proposed"
	Metrics noc.Metrics
	// MaxLinkLength is the model's wire-length feasibility limit
	// (m) — the source of the "excessively long wires" observation.
	MaxLinkLength float64
	// Traffic holds cycle-based simulation results when
	// TableIIIConfig.Simulate was set.
	Traffic *noc.SimResult
}

// TableIIIConfig selects the sweep.
type TableIIIConfig struct {
	// Techs lists technology names; default {90nm, 65nm, 45nm} with
	// the paper's 1.5/2.25/3.0 GHz clocks built into the nodes.
	Techs []string
	// Cases lists test-case names; default {VPROC, DVOPD}.
	Cases []string
	// Style is the bus design style; default SWSS.
	Style wire.Style
	// Simulate additionally runs the cycle-based traffic simulation
	// on each synthesized network.
	Simulate bool
}

func (c TableIIIConfig) withDefaults() TableIIIConfig {
	if c.Techs == nil {
		c.Techs = []string{"90nm", "65nm", "45nm"}
	}
	if c.Cases == nil {
		c.Cases = []string{"VPROC", "DVOPD"}
	}
	return c
}

// TableIII regenerates the NoC-synthesis impact study: each test case
// is synthesized at each node under both interconnect models, and the
// tool-reported metrics are collected.
func TableIII(cfg TableIIIConfig) ([]TableIIIRow, error) {
	return TableIIICtx(context.Background(), cfg)
}

// TableIIICtx is TableIII under a context: cancellation propagates
// into every synthesis (and is additionally checked between sweep
// cells), so a deadline-bound sweep returns ctx.Err() promptly with
// the partial rows discarded.
func TableIIICtx(ctx context.Context, cfg TableIIIConfig) ([]TableIIIRow, error) {
	c := cfg.withDefaults()
	var rows []TableIIIRow
	for _, name := range c.Techs {
		tc, err := tech.Lookup(name)
		if err != nil {
			return nil, err
		}
		for _, cs := range c.Cases {
			spec, err := noc.SpecByName(cs)
			if err != nil {
				return nil, err
			}
			models := []noc.LinkModel{}
			orig, err := noc.NewOriginalModel(tc, spec.DataWidth, c.Style)
			if err != nil {
				return nil, err
			}
			prop, err := noc.NewProposedModel(tc, spec.DataWidth, c.Style)
			if err != nil {
				return nil, err
			}
			models = append(models, orig, prop)
			for _, lm := range models {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				net, err := noc.SynthesizeCtx(ctx, spec, lm, noc.SynthOptions{})
				if err != nil {
					return nil, fmt.Errorf("experiments: %s/%s/%s: %w", name, cs, lm.Name(), err)
				}
				row := TableIIIRow{
					Tech: name, Case: cs, Model: lm.Name(),
					Metrics:       net.Evaluate(),
					MaxLinkLength: lm.MaxLength(),
				}
				if c.Simulate {
					sim, err := net.Simulate(noc.SimConfig{})
					if err != nil {
						return nil, fmt.Errorf("experiments: %s/%s/%s simulation: %w", name, cs, lm.Name(), err)
					}
					row.Traffic = sim
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// FindTableIII locates a row by key; it returns an error if missing
// so shape checks fail loudly.
func FindTableIII(rows []TableIIIRow, techName, cs, modelName string) (TableIIIRow, error) {
	for _, r := range rows {
		if r.Tech == techName && r.Case == cs && r.Model == modelName {
			return r, nil
		}
	}
	return TableIIIRow{}, fmt.Errorf("experiments: no Table III row %s/%s/%s", techName, cs, modelName)
}
