package experiments

import (
	"math"
	"testing"

	"repro/internal/tech"
	"repro/internal/wire"
)

func TestFig1Shape(t *testing.T) {
	res, err := Fig1(tech.MustLookup("90nm"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tech != "90nm" || len(res.Points) == 0 {
		t.Fatal("empty result")
	}
	// Paper's Fig. 1: intrinsic delay essentially independent of
	// size, strongly dependent on slew.
	if !(res.SlewSpreadMin > 1.5*res.SizeSpreadMax) {
		t.Fatalf("Fig.1 shape: slew spread %g not ≫ size spread %g", res.SlewSpreadMin, res.SizeSpreadMax)
	}
	// The quadratic term must be non-trivial (nonlinearity visible).
	if res.QuadCoeffs[2] == 0 {
		t.Fatal("quadratic coefficient vanished")
	}
	// Points sorted by (size, slew).
	for i := 1; i < len(res.Points); i++ {
		a, b := res.Points[i-1], res.Points[i]
		if a.Size > b.Size || (a.Size == b.Size && a.Slew >= b.Slew) {
			t.Fatal("points not sorted")
		}
	}
}

func TestTableIIShape(t *testing.T) {
	rows, err := TableII(TableIIConfig{
		Techs:     []string{"90nm"},
		LengthsMM: []float64{1, 5, 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 lengths × 2 styles
		t.Fatalf("got %d rows", len(rows))
	}
	var worstProp, worstBase float64
	for _, r := range rows {
		if r.Golden <= 0 || r.N < 1 {
			t.Fatalf("degenerate row %+v", r)
		}
		if a := math.Abs(r.ErrProposed); a > worstProp {
			worstProp = a
		}
		base := math.Max(math.Abs(r.ErrBakoglu), math.Abs(r.ErrPamunuwa))
		if base > worstBase {
			worstBase = base
		}
	}
	// Paper's headline: proposed within ~12%, baselines off by up to
	// ~106%. Shape requirements: proposed clearly tighter than the
	// baselines, and within a modest absolute band.
	if worstProp > 0.15 {
		t.Errorf("worst proposed error %.1f%% above 15%%", worstProp*100)
	}
	if !(worstBase > 2*worstProp) {
		t.Errorf("baselines (worst %.1f%%) not clearly worse than proposed (worst %.1f%%)",
			worstBase*100, worstProp*100)
	}
}

func TestTableIIRuntimeRatio(t *testing.T) {
	rows, err := TableII(TableIIConfig{
		Techs:          []string{"90nm"},
		LengthsMM:      []float64{5},
		Styles:         []wire.Style{wire.SWSS},
		MeasureRuntime: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: proposed ≥2.1× faster than sign-off. A closed form vs a
	// transient engine should clear that line with huge margin.
	if rows[0].RuntimeRatio < 2.1 {
		t.Fatalf("runtime ratio %.1f below the paper's 2.1×", rows[0].RuntimeRatio)
	}
}

func TestTableIIIShape(t *testing.T) {
	rows, err := TableIII(TableIIIConfig{Techs: []string{"90nm"}, Cases: []string{"DVOPD"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	orig, err := FindTableIII(rows, "90nm", "DVOPD", "original")
	if err != nil {
		t.Fatal(err)
	}
	prop, err := FindTableIII(rows, "90nm", "DVOPD", "proposed")
	if err != nil {
		t.Fatal(err)
	}
	if ratio := prop.Metrics.LinkDynamic / orig.Metrics.LinkDynamic; ratio < 1.3 {
		t.Errorf("dynamic ratio %.2f too small", ratio)
	}
	if prop.Metrics.Area <= orig.Metrics.Area {
		t.Error("proposed area not larger")
	}
	if prop.MaxLinkLength >= orig.MaxLinkLength {
		t.Error("original must allow longer wires")
	}
	if _, err := FindTableIII(rows, "16nm", "DVOPD", "original"); err == nil {
		t.Error("FindTableIII found a missing row")
	}
}

func TestBufferingStudyShape(t *testing.T) {
	rows, err := BufferingStudy(BufferingConfig{Techs: []string{"90nm"}})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.PowerSaving < 0.05 {
		t.Errorf("power saving %.1f%% too small", r.PowerSaving*100)
	}
	if r.DelayCost < 0 || r.DelayCost > 0.15 {
		t.Errorf("delay cost %.1f%% outside band", r.DelayCost*100)
	}
	// Staggering (Miller factor → 0) must speed the line up at equal
	// optimization weight.
	if r.StaggerDelayGain <= 0 {
		t.Errorf("staggering gained nothing (%.2f%%)", r.StaggerDelayGain*100)
	}
}

func TestSensitivityShape(t *testing.T) {
	rows, err := Sensitivity(SensitivityConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Pessimism must monotonically shrink the feasible wire length
	// and (weakly) raise router count and hop depth — architectural
	// decisions moving with model error.
	for i := 1; i < len(rows); i++ {
		if rows[i].MaxLinkLength >= rows[i-1].MaxLinkLength {
			t.Errorf("frontier did not shrink at scale %g", rows[i].DelayScale)
		}
		if rows[i].Metrics.Routers < rows[i-1].Metrics.Routers {
			t.Errorf("router count decreased at scale %g", rows[i].DelayScale)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	if !(last.Metrics.Routers > first.Metrics.Routers) {
		t.Error("2× delay pessimism should force extra routers")
	}
	if !(last.Metrics.AvgHops > first.Metrics.AvgHops) {
		t.Error("2× delay pessimism should deepen paths")
	}
}

func TestExperimentsRejectUnknownInputs(t *testing.T) {
	if _, err := TableII(TableIIConfig{Techs: []string{"3nm"}}); err == nil {
		t.Error("TableII accepted unknown tech")
	}
	if _, err := TableIII(TableIIIConfig{Techs: []string{"3nm"}}); err == nil {
		t.Error("TableIII accepted unknown tech")
	}
	if _, err := TableIII(TableIIIConfig{Cases: []string{"NOPE"}}); err == nil {
		t.Error("TableIII accepted unknown case")
	}
	if _, err := BufferingStudy(BufferingConfig{Techs: []string{"3nm"}}); err == nil {
		t.Error("BufferingStudy accepted unknown tech")
	}
	if _, err := Sensitivity(SensitivityConfig{Tech: "3nm"}); err == nil {
		t.Error("Sensitivity accepted unknown tech")
	}
	if _, err := Sensitivity(SensitivityConfig{Case: "NOPE"}); err == nil {
		t.Error("Sensitivity accepted unknown case")
	}
}

func TestConfigDefaults(t *testing.T) {
	c2 := TableIIConfig{}.withDefaults()
	if len(c2.Techs) != 3 || len(c2.LengthsMM) != 5 || len(c2.Styles) != 2 || c2.InputSlew != 300e-12 {
		t.Fatalf("TableII defaults: %+v", c2)
	}
	c3 := TableIIIConfig{}.withDefaults()
	if len(c3.Techs) != 3 || len(c3.Cases) != 2 {
		t.Fatalf("TableIII defaults: %+v", c3)
	}
	cb := BufferingConfig{}.withDefaults()
	if cb.LengthMM != 10 || cb.PowerWeight != 0.6 {
		t.Fatalf("Buffering defaults: %+v", cb)
	}
}
