// Package experiments implements the paper's evaluation artifacts —
// every table and figure — as reusable functions: Fig. 1 (intrinsic
// delay vs slew and size), Table I (fitting coefficients), Table II
// (model accuracy against golden sign-off analysis), Table III (NoC
// synthesis impact), and the Section III-D buffering-scheme studies.
// Command-line tools and the benchmark harness are thin wrappers over
// this package, so a result quoted anywhere in the repository can be
// regenerated from exactly one implementation.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/liberty"
	"repro/internal/model"
	"repro/internal/tech"
)

// Fig1Point is one point of the Fig. 1 reproduction: the fitted
// intrinsic delay of an inverter at one (size, input slew) grid
// point.
type Fig1Point struct {
	Size      float64
	Slew      float64
	Intrinsic float64
}

// Fig1Result carries the Fig. 1 data along with the quadratic fit the
// paper draws through it.
type Fig1Result struct {
	Tech   string
	Points []Fig1Point
	// QuadCoeffs are the pooled quadratic coefficients (a0, a1, a2)
	// of intrinsic delay vs slew.
	QuadCoeffs [3]float64
	// SizeSpreadMax is the largest intrinsic-delay spread across
	// sizes at any fixed slew; SlewSpreadMin is the smallest spread
	// across slews at any fixed size. Fig. 1's claim is
	// SlewSpreadMin ≫ SizeSpreadMax.
	SizeSpreadMax, SlewSpreadMin float64
}

// Fig1 regenerates the Fig. 1 data for a technology by characterizing
// its library and extracting the intrinsic-delay intermediates of the
// calibration (rising output of inverters, as in the paper).
func Fig1(tc *tech.Technology) (*Fig1Result, error) {
	lib, err := liberty.Get(tc)
	if err != nil {
		return nil, err
	}
	coeffs, rep, err := model.Calibrate(lib)
	if err != nil {
		return nil, err
	}
	res := &Fig1Result{Tech: tc.Name}
	res.QuadCoeffs = [3]float64{coeffs.Inv.Rise.A0, coeffs.Inv.Rise.A1, coeffs.Inv.Rise.A2}

	bySlew := map[float64][]float64{}
	bySize := map[float64][]float64{}
	for _, p := range rep.Intrinsic {
		if p.Kind != liberty.Inverter || !p.OutRising {
			continue
		}
		res.Points = append(res.Points, Fig1Point{Size: p.Size, Slew: p.Slew, Intrinsic: p.Intrinsic})
		bySlew[p.Slew] = append(bySlew[p.Slew], p.Intrinsic)
		bySize[p.Size] = append(bySize[p.Size], p.Intrinsic)
	}
	if len(res.Points) == 0 {
		return nil, fmt.Errorf("experiments: no inverter intrinsic data for %s", tc.Name)
	}
	sort.Slice(res.Points, func(i, j int) bool {
		if res.Points[i].Size != res.Points[j].Size {
			return res.Points[i].Size < res.Points[j].Size
		}
		return res.Points[i].Slew < res.Points[j].Slew
	})
	spread := func(v []float64) float64 {
		lo, hi := v[0], v[0]
		for _, x := range v {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return hi - lo
	}
	for _, v := range bySlew {
		if s := spread(v); s > res.SizeSpreadMax {
			res.SizeSpreadMax = s
		}
	}
	first := true
	for _, v := range bySize {
		s := spread(v)
		if first || s < res.SlewSpreadMin {
			res.SlewSpreadMin = s
			first = false
		}
	}
	return res, nil
}
