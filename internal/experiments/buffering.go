package experiments

import (
	"repro/internal/buffering"
	"repro/internal/model"
	"repro/internal/tech"
	"repro/internal/wire"
)

// BufferingRow is one row of the Section III-D buffering-scheme study:
// for one technology and line length, the delay-optimal design, the
// power-weighted design, and the staggered-insertion design, with the
// tradeoffs the paper quotes (power reduction vs delay degradation).
type BufferingRow struct {
	Tech     string
	Length   float64
	DelayOpt buffering.Design
	Weighted buffering.Design
	// Staggered is the power-weighted design with staggered
	// repeater insertion (Miller factor zero).
	Staggered buffering.Design
	// PowerSaving is 1 − weighted/delay-optimal total power.
	PowerSaving float64
	// DelayCost is weighted/delay-optimal delay − 1.
	DelayCost float64
	// StaggerDelayGain is 1 − staggered/weighted delay at equal
	// weighting: the cross-talk avoidance benefit.
	StaggerDelayGain float64
}

// BufferingConfig selects the sweep.
type BufferingConfig struct {
	// Techs lists technology names; default {90nm, 65nm, 45nm}.
	Techs []string
	// LengthMM is the line length in millimeters; default 10.
	LengthMM float64
	// PowerWeight is the weighted objective's power emphasis;
	// default 0.6.
	PowerWeight float64
}

func (c BufferingConfig) withDefaults() BufferingConfig {
	if c.Techs == nil {
		c.Techs = []string{"90nm", "65nm", "45nm"}
	}
	if c.LengthMM == 0 {
		c.LengthMM = 10
	}
	if c.PowerWeight == 0 {
		c.PowerWeight = 0.6
	}
	return c
}

// BufferingStudy regenerates the Section III-D results.
func BufferingStudy(cfg BufferingConfig) ([]BufferingRow, error) {
	c := cfg.withDefaults()
	var rows []BufferingRow
	for _, name := range c.Techs {
		tc, err := tech.Lookup(name)
		if err != nil {
			return nil, err
		}
		coeffs, err := model.Default(name)
		if err != nil {
			return nil, err
		}
		opts := buffering.Options{
			Coeffs: coeffs,
			Power:  model.PowerParams{Activity: 0.15, Freq: tc.Clock},
		}
		L := c.LengthMM * 1e-3
		ref, err := buffering.DelayOptimal(wire.NewSegment(tc, L, wire.SWSS), opts)
		if err != nil {
			return nil, err
		}
		opts.PowerWeight = c.PowerWeight
		weighted, err := buffering.Optimize(wire.NewSegment(tc, L, wire.SWSS), opts)
		if err != nil {
			return nil, err
		}
		stag, err := buffering.Optimize(wire.NewSegment(tc, L, wire.Staggered), opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BufferingRow{
			Tech: name, Length: L,
			DelayOpt: ref, Weighted: weighted, Staggered: stag,
			PowerSaving:      1 - weighted.Power.Total()/ref.Power.Total(),
			DelayCost:        weighted.Delay/ref.Delay - 1,
			StaggerDelayGain: 1 - stag.Delay/weighted.Delay,
		})
	}
	return rows, nil
}
