package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/buffering"
	"repro/internal/liberty"
	"repro/internal/model"
	"repro/internal/sta"
	"repro/internal/tech"
	"repro/internal/wire"
)

// TableIIRow is one row of the Table II reproduction: a buffered line
// of length L in a technology and design style, its golden (sign-off)
// delay, and the relative prediction error of the three models.
type TableIIRow struct {
	Tech   string
	Length float64 // m
	Style  wire.Style
	// N and Size record the implemented buffering.
	N    int
	Size float64
	// Golden is the sign-off delay (s) — the PT column.
	Golden float64
	// ErrBakoglu, ErrPamunuwa, ErrProposed are signed relative
	// errors (prediction − golden)/golden — the B, P, Prop columns.
	ErrBakoglu, ErrPamunuwa, ErrProposed float64
	// RuntimeRatio is golden runtime / proposed-model runtime — the
	// RT column.
	RuntimeRatio float64
}

// TableIIConfig selects the sweep.
type TableIIConfig struct {
	// Techs lists technology names; default {90nm, 65nm, 45nm}.
	Techs []string
	// LengthsMM lists line lengths in millimeters; default
	// {1, 3, 5, 10, 15}.
	LengthsMM []float64
	// Styles lists design styles; default {SWSS, Shielded} (the
	// paper's single-width/single-spacing and shielding).
	Styles []wire.Style
	// InputSlew is the stimulus; default 300 ps (the paper's).
	InputSlew float64
	// MeasureRuntime enables the RT column (adds repeated timing
	// loops).
	MeasureRuntime bool
}

func (c TableIIConfig) withDefaults() TableIIConfig {
	if c.Techs == nil {
		c.Techs = []string{"90nm", "65nm", "45nm"}
	}
	if c.LengthsMM == nil {
		c.LengthsMM = []float64{1, 3, 5, 10, 15}
	}
	if c.Styles == nil {
		c.Styles = []wire.Style{wire.SWSS, wire.Shielded}
	}
	if c.InputSlew == 0 {
		c.InputSlew = 300e-12
	}
	return c
}

// TableII regenerates the model-accuracy study: for each (technology,
// length, style) it implements a buffered line (power-aware buffering
// over the characterized library sizes, as a physical design flow
// would), evaluates its delay with the golden engine, and compares
// the Bakoglu, Pamunuwa, and proposed predictions.
func TableII(cfg TableIIConfig) ([]TableIIRow, error) {
	c := cfg.withDefaults()
	var rows []TableIIRow
	for _, name := range c.Techs {
		tc, err := tech.Lookup(name)
		if err != nil {
			return nil, err
		}
		lib, err := liberty.Get(tc)
		if err != nil {
			return nil, err
		}
		coeffs, err := model.Default(name)
		if err != nil {
			return nil, err
		}
		for _, style := range c.Styles {
			for _, lmm := range c.LengthsMM {
				row, err := tableIIRow(tc, lib, coeffs, lmm*1e-3, style, c)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s L=%gmm %v: %w", name, lmm, style, err)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

func tableIIRow(tc *tech.Technology, lib *liberty.Library, coeffs *model.Coefficients,
	length float64, style wire.Style, c TableIIConfig) (TableIIRow, error) {

	seg := wire.NewSegment(tc, length, style)
	// Implement the line: buffering restricted to the characterized
	// library sizes (the golden engine needs real NLDM cells), with a
	// mild power emphasis as a practical flow would use.
	des, err := buffering.Optimize(seg, buffering.Options{
		Coeffs:      coeffs,
		Sizes:       liberty.StandardSizes,
		Kinds:       []liberty.CellKind{liberty.Inverter},
		InputSlew:   c.InputSlew,
		Power:       model.PowerParams{Activity: 0.15, Freq: tc.Clock},
		PowerWeight: 0.3,
	})
	if err != nil {
		return TableIIRow{}, err
	}
	cell := lib.Cell(fmt.Sprintf("INVD%g", des.Size))
	if cell == nil {
		return TableIIRow{}, fmt.Errorf("no library cell for size %g", des.Size)
	}

	goldenLine := &sta.Line{Cell: cell, N: des.N, Segment: seg, InputSlew: c.InputSlew}
	golden, err := goldenLine.Analyze()
	if err != nil {
		return TableIIRow{}, err
	}

	prop, err := coeffs.LineDelay(model.LineSpec{
		Kind: liberty.Inverter, Size: des.Size, N: des.N, Segment: seg, InputSlew: c.InputSlew,
	})
	if err != nil {
		return TableIIRow{}, err
	}
	bspec := baseline.LineSpec{Size: des.Size, N: des.N, Segment: seg}
	bak, err := baseline.LineDelay(baseline.Bakoglu, bspec)
	if err != nil {
		return TableIIRow{}, err
	}
	pam, err := baseline.LineDelay(baseline.Pamunuwa, bspec)
	if err != nil {
		return TableIIRow{}, err
	}

	row := TableIIRow{
		Tech: tc.Name, Length: length, Style: style,
		N: des.N, Size: des.Size,
		Golden:      golden.Delay,
		ErrBakoglu:  (bak - golden.Delay) / golden.Delay,
		ErrPamunuwa: (pam - golden.Delay) / golden.Delay,
		ErrProposed: (prop.Delay - golden.Delay) / golden.Delay,
	}
	if c.MeasureRuntime {
		row.RuntimeRatio = runtimeRatio(goldenLine, coeffs, des, seg, c.InputSlew)
	}
	return row, nil
}

// runtimeRatio times the golden analysis against the proposed model —
// the paper's RT column (their model was ≥2.1× faster than PrimeTime;
// a closed-form model against a transient engine is faster still).
func runtimeRatio(goldenLine *sta.Line, coeffs *model.Coefficients,
	des buffering.Design, seg wire.Segment, slew float64) float64 {

	spec := model.LineSpec{Kind: liberty.Inverter, Size: des.Size, N: des.N, Segment: seg, InputSlew: slew}

	// Golden: few iterations, it is slow.
	t0 := time.Now()
	const gIters = 3
	for i := 0; i < gIters; i++ {
		if _, err := goldenLine.Analyze(); err != nil {
			return 0
		}
	}
	goldenPer := time.Since(t0).Seconds() / gIters

	t1 := time.Now()
	const mIters = 2000
	for i := 0; i < mIters; i++ {
		if _, err := coeffs.LineDelay(spec); err != nil {
			return 0
		}
	}
	modelPer := time.Since(t1).Seconds() / mIters
	if modelPer <= 0 {
		return 0
	}
	return goldenPer / modelPer
}
