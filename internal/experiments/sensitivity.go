package experiments

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/tech"
	"repro/internal/wire"
)

// SensitivityRow records one point of the model-sensitivity study:
// the NoC synthesized when the (accurate) proposed model's delay
// predictions are scaled by DelayScale.
type SensitivityRow struct {
	DelayScale float64
	Metrics    noc.Metrics
	// MaxLinkLength is the wire-length frontier under the scaled
	// model.
	MaxLinkLength float64
}

// SensitivityConfig selects the sweep.
type SensitivityConfig struct {
	// Tech and Case pick the configuration; defaults 90nm / DVOPD.
	Tech, Case string
	// DelayScales lists the perturbations; default {1.0, 1.25, 1.5,
	// 2.0} (pessimism sweep — optimism saturates at the accurate
	// model's own feasibility frontier).
	DelayScales []float64
}

func (c SensitivityConfig) withDefaults() SensitivityConfig {
	if c.Tech == "" {
		c.Tech = "90nm"
	}
	if c.Case == "" {
		c.Case = "DVOPD"
	}
	if c.DelayScales == nil {
		c.DelayScales = []float64{1.0, 1.25, 1.5, 2.0}
	}
	return c
}

// Sensitivity quantifies the paper's motivating claim — that
// system-level architectural decisions are sensitive to interconnect
// model accuracy — by synthesizing the same SoC under systematically
// perturbed versions of the proposed model and recording how the
// architecture (routers, hops) and reported metrics move per unit of
// model error.
func Sensitivity(cfg SensitivityConfig) ([]SensitivityRow, error) {
	c := cfg.withDefaults()
	tc, err := tech.Lookup(c.Tech)
	if err != nil {
		return nil, err
	}
	spec, err := noc.SpecByName(c.Case)
	if err != nil {
		return nil, err
	}
	base, err := noc.NewProposedModel(tc, spec.DataWidth, wire.SWSS)
	if err != nil {
		return nil, err
	}
	var rows []SensitivityRow
	for _, ds := range c.DelayScales {
		lm, err := noc.NewScaledModel(base, ds, 1.0)
		if err != nil {
			return nil, err
		}
		net, err := noc.Synthesize(spec, lm, noc.SynthOptions{})
		if err != nil {
			return nil, fmt.Errorf("experiments: sensitivity scale %g: %w", ds, err)
		}
		rows = append(rows, SensitivityRow{
			DelayScale:    ds,
			Metrics:       net.Evaluate(),
			MaxLinkLength: lm.MaxLength(),
		})
	}
	return rows, nil
}
