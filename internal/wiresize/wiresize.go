// Package wiresize jointly optimizes wire geometry (width and spacing
// multiples of the layer minimums) and buffering for a global link.
// It extends the buffering optimizer with the degrees of freedom the
// paper's wire model was built to capture: widening a nanometer wire
// pays off twice (lower sheet resistance *and* weaker electron
// scattering, since the copper core grows relative to the mean free
// path), while extra spacing trades routing pitch for coupling
// capacitance — the Shi–Pan wire-sizing question evaluated with the
// paper's closed-form models instead of SPICE.
package wiresize

import (
	"context"
	"fmt"
	"math"

	"repro/internal/buffering"
	"repro/internal/pool"
	"repro/internal/tech"
	"repro/internal/wire"
)

// Design is one evaluated geometry + buffering solution.
type Design struct {
	// WidthMult and SpacingMult are the drawn width and spacing in
	// multiples of the layer minimums.
	WidthMult, SpacingMult float64
	// Buffer is the best buffering found for this geometry.
	Buffer buffering.Design
	// PitchMult is the resulting pitch relative to the minimum
	// pitch (the routing-resource cost).
	PitchMult float64
}

// Options configures the search.
type Options struct {
	// Buffering configures the inner repeater search (Coeffs
	// required).
	Buffering buffering.Options
	// WidthMults and SpacingMults are the candidate multiples;
	// defaults {1, 1.5, 2, 3} and {1, 1.5, 2, 3}.
	WidthMults, SpacingMults []float64
	// MaxPitchMult bounds (width+spacing)/(minimum pitch); default 3.
	MaxPitchMult float64
	// Workers bounds the goroutines evaluating geometry candidates:
	// 0 uses every core, 1 runs serially. The selected design (and
	// any reported error) is identical either way.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.WidthMults == nil {
		o.WidthMults = []float64{1, 1.5, 2, 3}
	}
	if o.SpacingMults == nil {
		o.SpacingMults = []float64{1, 1.5, 2, 3}
	}
	if o.MaxPitchMult == 0 {
		o.MaxPitchMult = 3
	}
	return o
}

// Optimize searches geometry × buffering for the design minimizing
// the buffering objective (delay, or the weighted delay–power
// combination), subject to the pitch budget. The returned design's
// Buffer carries the model-predicted delay and power.
func Optimize(tc *tech.Technology, length float64, style wire.Style, opts Options) (Design, error) {
	return OptimizeCtx(context.Background(), tc, length, style, opts)
}

// OptimizeCtx is Optimize under a context: cancellation is checked at
// each geometry candidate's claim in the fan-out, so a deadline-bound
// caller gets ctx.Err() instead of waiting out the full sweep. A sweep
// that completes under a live context selects the identical design.
func OptimizeCtx(ctx context.Context, tc *tech.Technology, length float64, style wire.Style, opts Options) (Design, error) {
	o := opts.withDefaults()
	if o.Buffering.Coeffs == nil {
		return Design{}, fmt.Errorf("wiresize: missing model coefficients")
	}
	if length <= 0 {
		return Design{}, fmt.Errorf("wiresize: non-positive length %g", length)
	}

	layer := tc.Global
	minPitch := layer.Pitch()

	// Reference: minimum geometry, delay-optimal — used to normalize
	// the weighted objective consistently across geometries.
	refSeg := wire.NewSegment(tc, length, style)
	ref, err := buffering.DelayOptimal(refSeg, o.Buffering)
	if err != nil {
		return Design{}, err
	}
	w := o.Buffering.PowerWeight
	cost := func(d buffering.Design) float64 {
		if w == 0 {
			return d.Delay
		}
		return (1-w)*d.Delay/ref.Delay + w*d.Power.Total()/ref.Power.Total()
	}

	// Enumerate the admissible geometries first (cheap, serial), then
	// fan the expensive buffering searches out across the worker pool.
	// Each candidate is evaluated independently; reducing in
	// enumeration order with a strict comparison reproduces the serial
	// sweep's selection and first-error behavior exactly.
	type candidate struct {
		wm, sm, pitchMult float64
		seg               wire.Segment
	}
	var cands []candidate
	for _, wm := range o.WidthMults {
		for _, sm := range o.SpacingMults {
			pitchMult := (wm*layer.Width + sm*layer.Spacing) / minPitch
			if pitchMult > o.MaxPitchMult+1e-12 {
				continue
			}
			seg := refSeg
			seg.Width = wm * layer.Width
			seg.Spacing = sm * layer.Spacing
			if err := seg.Validate(); err != nil {
				continue
			}
			cands = append(cands, candidate{wm: wm, sm: sm, pitchMult: pitchMult, seg: seg})
		}
	}
	designs := make([]buffering.Design, len(cands))
	err = pool.ForEachCtx(ctx, o.Workers, len(cands), func(i int) error {
		c := cands[i]
		var des buffering.Design
		var err error
		if w == 0 {
			des, err = buffering.DelayOptimal(c.seg, o.Buffering)
		} else {
			des, err = buffering.Optimize(c.seg, o.Buffering)
		}
		if err != nil {
			return fmt.Errorf("wiresize: w=%g s=%g: %w", c.wm, c.sm, err)
		}
		designs[i] = des
		return nil
	})
	if err != nil {
		return Design{}, err
	}
	best := Design{}
	bestCost := math.Inf(1)
	for i, c := range cands {
		if cc := cost(designs[i]); cc < bestCost {
			bestCost = cc
			best = Design{WidthMult: c.wm, SpacingMult: c.sm, Buffer: designs[i], PitchMult: c.pitchMult}
		}
	}
	if math.IsInf(bestCost, 1) {
		return Design{}, fmt.Errorf("wiresize: no geometry satisfies the pitch budget %.2f", o.MaxPitchMult)
	}
	return best, nil
}
