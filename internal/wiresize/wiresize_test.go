package wiresize

import (
	"testing"

	"repro/internal/buffering"
	"repro/internal/model"
	"repro/internal/tech"
	"repro/internal/wire"
)

func opts(t *testing.T, name string, weight float64) Options {
	t.Helper()
	tc := tech.MustLookup(name)
	return Options{
		Buffering: buffering.Options{
			Coeffs:      model.MustDefault(name),
			Power:       model.PowerParams{Activity: 0.15, Freq: tc.Clock},
			PowerWeight: weight,
		},
	}
}

func TestOptimizeBasics(t *testing.T) {
	tc := tech.MustLookup("90nm")
	d, err := Optimize(tc, 10e-3, wire.SWSS, opts(t, "90nm", 0))
	if err != nil {
		t.Fatal(err)
	}
	if d.WidthMult < 1 || d.SpacingMult < 1 {
		t.Fatalf("degenerate geometry %+v", d)
	}
	if d.PitchMult > 3+1e-9 {
		t.Fatalf("pitch budget violated: %g", d.PitchMult)
	}
	if d.Buffer.Delay <= 0 {
		t.Fatal("bad buffering")
	}
}

func TestWideningBeatsMinimumGeometryOnDelay(t *testing.T) {
	// For a long line with delay-only objective, some non-minimum
	// geometry must win: wider wire cuts R faster than it grows C.
	tc := tech.MustLookup("45nm")
	o := opts(t, "45nm", 0)
	best, err := Optimize(tc, 10e-3, wire.SWSS, o)
	if err != nil {
		t.Fatal(err)
	}
	minGeom, err := buffering.DelayOptimal(wire.NewSegment(tc, 10e-3, wire.SWSS), o.Buffering)
	if err != nil {
		t.Fatal(err)
	}
	if !(best.Buffer.Delay < minGeom.Delay) {
		t.Fatalf("sized wire (%g) not faster than minimum geometry (%g)", best.Buffer.Delay, minGeom.Delay)
	}
	if best.WidthMult <= 1 {
		t.Fatalf("expected widening, got width mult %g", best.WidthMult)
	}
}

func TestSpacingHelpsWorstCaseCoupling(t *testing.T) {
	// With worst-case neighbors, extra spacing reduces coupling and
	// should appear in the chosen design when pitch allows it.
	tc := tech.MustLookup("90nm")
	o := opts(t, "90nm", 0)
	o.WidthMults = []float64{1}
	o.SpacingMults = []float64{1, 2, 3}
	o.MaxPitchMult = 4
	best, err := Optimize(tc, 10e-3, wire.SWSS, o)
	if err != nil {
		t.Fatal(err)
	}
	if best.SpacingMult <= 1 {
		t.Fatalf("expected extra spacing for SWSS, got %g", best.SpacingMult)
	}
}

func TestPitchBudgetEnforced(t *testing.T) {
	tc := tech.MustLookup("90nm")
	o := opts(t, "90nm", 0)
	o.MaxPitchMult = 1 // only minimum geometry fits
	best, err := Optimize(tc, 5e-3, wire.SWSS, o)
	if err != nil {
		t.Fatal(err)
	}
	if best.WidthMult != 1 || best.SpacingMult != 1 {
		t.Fatalf("budget 1 must force minimum geometry, got %+v", best)
	}
	o.MaxPitchMult = 0.5
	o.WidthMults = []float64{1}
	o.SpacingMults = []float64{1}
	// Explicit impossible budget (the default would be restored by 0,
	// so use a tiny positive value).
	if _, err := Optimize(tc, 5e-3, wire.SWSS, o); err == nil {
		t.Fatal("impossible pitch budget accepted")
	}
}

func TestOptimizeValidation(t *testing.T) {
	tc := tech.MustLookup("90nm")
	if _, err := Optimize(tc, 5e-3, wire.SWSS, Options{}); err == nil {
		t.Fatal("missing coefficients accepted")
	}
	if _, err := Optimize(tc, 0, wire.SWSS, opts(t, "90nm", 0)); err == nil {
		t.Fatal("zero length accepted")
	}
}

func TestWeightedObjectiveUsesPower(t *testing.T) {
	tc := tech.MustLookup("90nm")
	fast, err := Optimize(tc, 10e-3, wire.SWSS, opts(t, "90nm", 0))
	if err != nil {
		t.Fatal(err)
	}
	eco, err := Optimize(tc, 10e-3, wire.SWSS, opts(t, "90nm", 0.6))
	if err != nil {
		t.Fatal(err)
	}
	if eco.Buffer.Power.Total() > fast.Buffer.Power.Total() {
		t.Fatalf("weighted design uses more power (%g) than delay-optimal (%g)",
			eco.Buffer.Power.Total(), fast.Buffer.Power.Total())
	}
}

// The scattering + barrier corrections make widening *super-linear*:
// tripling the drawn width cuts resistance by more than 3× (the copper
// core grows faster than the drawn width, and the resistivity itself
// drops), and the effect strengthens at smaller nodes. This is the
// physics that makes wire sizing increasingly attractive — the point
// of carrying the Shi–Pan correction into a sizing optimizer.
func TestScatteringMakesWideningSuperLinear(t *testing.T) {
	prev := 0.0
	for _, name := range []string{"90nm", "45nm", "16nm"} {
		tc := tech.MustLookup(name)
		narrow := wire.ResistancePerMeter(tc, tc.Global, tc.Global.Width)
		wide := wire.ResistancePerMeter(tc, tc.Global, 3*tc.Global.Width)
		ratio := narrow / wide
		if ratio <= 3 {
			t.Errorf("%s: 3× widening only improved R by %.2f× (classic would give exactly 3×)", name, ratio)
		}
		if ratio < prev {
			t.Errorf("%s: super-linearity weakened at the smaller node (%.3f after %.3f)", name, ratio, prev)
		}
		prev = ratio
	}
}

func BenchmarkWireSizeOptimize(b *testing.B) {
	tc := tech.MustLookup("45nm")
	o := Options{
		Buffering: buffering.Options{
			Coeffs: model.MustDefault("45nm"),
			Power:  model.PowerParams{Activity: 0.15, Freq: tc.Clock},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(tc, 10e-3, wire.SWSS, o); err != nil {
			b.Fatal(err)
		}
	}
}

func TestOptimizeWorkersMatchSerial(t *testing.T) {
	// The parallel sweep must pick the exact design the serial loop
	// picks — same enumeration order, same strict-< tie-breaking.
	tc := tech.MustLookup("65nm")
	for _, weight := range []float64{0, 0.5} {
		o := opts(t, "65nm", weight)
		o.Workers = 1
		serial, err := Optimize(tc, 8e-3, wire.SWSS, o)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 3} {
			o.Workers = workers
			par, err := Optimize(tc, 8e-3, wire.SWSS, o)
			if err != nil {
				t.Fatalf("weight=%g workers=%d: %v", weight, workers, err)
			}
			if par != serial {
				t.Fatalf("weight=%g workers=%d: %+v != serial %+v", weight, workers, par, serial)
			}
		}
	}
}
