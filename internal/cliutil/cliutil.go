// Package cliutil holds the run-lifecycle plumbing shared by the
// command-line tools: an interruptible root context (SIGINT/SIGTERM +
// optional -timeout deadline), the -debug-addr pprof/metrics server,
// and the -metrics snapshot dump. Keeping it in one place means every
// CLI exposes the same cancellation and observability contract.
package cliutil

import (
	"context"
	"fmt"
	"io"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
)

// Context returns the root context for one CLI run: cancelled on
// SIGINT or SIGTERM, and additionally deadline-bound when timeout is
// positive. The returned stop function releases the signal handler
// and the timer; call it when the run finishes.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stopSignals
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, func() {
		cancel()
		stopSignals()
	}
}

// StartDebug starts the pprof + metrics endpoint when addr is
// non-empty, logging the bound address to w, and returns a stop
// function (a no-op when addr is empty). Startup failures are
// returned, not fatal: a busy port should fail the run loudly rather
// than silently dropping observability.
func StartDebug(addr string, w io.Writer) (stop func(), err error) {
	if addr == "" {
		return func() {}, nil
	}
	bound, stop, err := obs.StartDebugServer(addr)
	if err != nil {
		return nil, fmt.Errorf("debug server: %w", err)
	}
	fmt.Fprintf(w, "debug endpoint on http://%s (/metrics, /debug/pprof/)\n", bound)
	return stop, nil
}

// DumpMetrics writes the metrics snapshot JSON to w when enabled. The
// CLIs call it after the run — including failed or cancelled runs, so
// an interrupted sweep still reports how far it got.
func DumpMetrics(enabled bool, w io.Writer) {
	if !enabled {
		return
	}
	_ = obs.WriteJSON(w)
}
