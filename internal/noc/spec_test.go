package noc

import (
	"math"
	"testing"
)

func miniSpec() *Spec {
	return &Spec{
		Name:      "mini",
		DataWidth: 128,
		Cores: []Core{
			{Name: "a", X: 0, Y: 0},
			{Name: "b", X: 2e-3, Y: 0},
			{Name: "c", X: 0, Y: 2e-3},
		},
		Flows: []Flow{
			{Src: "a", Dst: "b", Bandwidth: 2e9},
			{Src: "a", Dst: "c", Bandwidth: 1e9},
			{Src: "b", Dst: "c", Bandwidth: 3e9},
		},
	}
}

func TestSpecValidateGood(t *testing.T) {
	if err := miniSpec().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecValidateCatchesProblems(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"zero width", func(s *Spec) { s.DataWidth = 0 }},
		{"no cores", func(s *Spec) { s.Cores = nil }},
		{"no flows", func(s *Spec) { s.Flows = nil }},
		{"dup core", func(s *Spec) { s.Cores = append(s.Cores, Core{Name: "a"}) }},
		{"unnamed core", func(s *Spec) { s.Cores[0].Name = "" }},
		{"unknown src", func(s *Spec) { s.Flows[0].Src = "zz" }},
		{"unknown dst", func(s *Spec) { s.Flows[0].Dst = "zz" }},
		{"self loop", func(s *Spec) { s.Flows[0].Dst = s.Flows[0].Src }},
		{"zero bandwidth", func(s *Spec) { s.Flows[0].Bandwidth = 0 }},
	}
	for _, c := range cases {
		s := miniSpec()
		c.mut(s)
		if s.Validate() == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSpecHelpers(t *testing.T) {
	s := miniSpec()
	if _, err := s.Core("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Core("zz"); err == nil {
		t.Fatal("unknown core found")
	}
	if got := s.TotalBandwidth(); math.Abs(got-6e9) > 1 {
		t.Fatalf("total bandwidth %g", got)
	}
	d := s.Cores[0].Distance(s.Cores[1])
	if math.Abs(d-2e-3) > 1e-12 {
		t.Fatalf("distance %g", d)
	}
	// Manhattan, not Euclidean.
	d2 := Core{X: 1, Y: 1}.Distance(Core{X: 0, Y: 0})
	if math.Abs(d2-2) > 1e-12 {
		t.Fatalf("Manhattan distance %g, want 2", d2)
	}
}

func TestSpecScale(t *testing.T) {
	s := miniSpec()
	h := s.Scale(0.5)
	if h.Cores[1].X != 1e-3 {
		t.Fatalf("scaled X %g", h.Cores[1].X)
	}
	if s.Cores[1].X != 2e-3 {
		t.Fatal("Scale mutated the original")
	}
	if len(h.Flows) != len(s.Flows) {
		t.Fatal("flows lost")
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuiltinTestCases(t *testing.T) {
	vproc := VPROC()
	if err := vproc.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(vproc.Cores) != 42 {
		t.Fatalf("VPROC has %d cores, want 42", len(vproc.Cores))
	}
	if vproc.DataWidth != 128 {
		t.Fatal("VPROC data width")
	}
	dvopd := DVOPD()
	if err := dvopd.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(dvopd.Cores) != 26 {
		t.Fatalf("DVOPD has %d cores, want 26", len(dvopd.Cores))
	}
	if dvopd.DataWidth != 128 {
		t.Fatal("DVOPD data width")
	}
	// DVOPD carries two mirrored VOPD flow sets plus cross traffic.
	if len(dvopd.Flows) != 2*len(vopdBandwidths)+4 {
		t.Fatalf("DVOPD has %d flows", len(dvopd.Flows))
	}
	if len(TestCases()) != 2 {
		t.Fatal("TestCases")
	}
	if _, err := SpecByName("VPROC"); err != nil {
		t.Fatal(err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Fatal("unknown test case accepted")
	}
}
