package noc

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	net := synthMini(t, proposed90(t))
	var buf bytes.Buffer
	if err := net.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", `"a"`, `"b"`, `"c"`, "->", "mm/", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// One edge per link.
	if got := strings.Count(out, "->"); got != len(net.Links) {
		t.Errorf("%d edges for %d links", got, len(net.Links))
	}
}

func TestSummary(t *testing.T) {
	net := synthMini(t, proposed90(t))
	s := net.Summary()
	for _, want := range []string{"mini", "90nm", "proposed", "links"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}
