package noc

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/pool"
)

// Synthesis observability (see internal/obs).
var (
	metSyntheses     = obs.NewCounter("noc.syntheses")
	metMergesApplied = obs.NewCounter("noc.merges_applied")
)

// SynthOptions tunes the synthesis.
type SynthOptions struct {
	// Router overrides the router parameters (default:
	// DefaultRouterParams for the model's technology).
	Router *RouterParams
	// MaxHops bounds a flow's path length in links (default 6).
	MaxHops int
	// MaxMergeIters bounds the greedy improvement loop (default 64).
	MaxMergeIters int
	// Workers bounds the goroutines evaluating merge candidates:
	// 0 uses every core, 1 runs the serial algorithm. The result is
	// identical either way — candidates are scored independently and
	// reduced in the serial loop's order.
	Workers int
}

func (o SynthOptions) withDefaults(lm LinkModel) SynthOptions {
	if o.Router == nil {
		rp := DefaultRouterParams(lm.Tech())
		o.Router = &rp
	}
	if o.MaxHops == 0 {
		o.MaxHops = 16
	}
	if o.MaxMergeIters == 0 {
		o.MaxMergeIters = 64
	}
	return o
}

// synthesizer carries the working state of one synthesis run.
type synthesizer struct {
	spec   *Spec
	model  *DesignCache
	router RouterParams
	opts   SynthOptions

	nodes  []Node
	links  []Link
	routes [][]int
	// coreID maps core names to node IDs.
	coreID map[string]int
}

// Synthesize builds a power-minimized feasible NoC for the
// specification under the given interconnect model: point-to-point
// links first (split by the model's wire-length limit), then a greedy
// channel-merging improvement loop that inserts routers where sharing
// a bus reduces total power without violating the hop, radix, or
// capacity constraints — the COSI-OCC flow in miniature.
func Synthesize(spec *Spec, lm LinkModel, opts SynthOptions) (*Network, error) {
	return SynthesizeCtx(context.Background(), spec, lm, opts)
}

// SynthesizeCtx is Synthesize under a context. Cancellation is
// cooperative, checked between flows while the initial topology is
// built and between candidate batches in the merge loop: a cancelled
// run returns ctx.Err() promptly and leaves any shared DesignCache
// unpoisoned (no cancellation error is ever memoized). A run that
// completes under a live context is bit-identical to Synthesize.
func SynthesizeCtx(ctx context.Context, spec *Spec, lm LinkModel, opts SynthOptions) (*Network, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	metSyntheses.Inc()
	o := opts.withDefaults(lm)
	s := &synthesizer{
		spec:   spec,
		model:  NewDesignCache(lm),
		router: *o.Router,
		opts:   o,
		coreID: make(map[string]int, len(spec.Cores)),
	}
	for _, c := range spec.Cores {
		id := len(s.nodes)
		s.nodes = append(s.nodes, Node{ID: id, Kind: CoreNode, Name: c.Name, X: c.X, Y: c.Y})
		s.coreID[c.Name] = id
	}
	if err := s.initialTopology(ctx); err != nil {
		return nil, err
	}
	if err := s.mergeLoop(ctx); err != nil {
		return nil, err
	}

	net := &Network{
		Spec:   spec,
		Model:  s.model,
		Router: s.router,
		Nodes:  s.nodes,
		Links:  s.links,
		Routes: s.routes,
	}
	if err := net.Check(); err != nil {
		return nil, fmt.Errorf("noc: synthesis produced invalid network: %w", err)
	}
	return net, nil
}

// dist returns the Manhattan distance between two nodes.
func (s *synthesizer) dist(a, b int) float64 {
	na, nb := &s.nodes[a], &s.nodes[b]
	return math.Abs(na.X-nb.X) + math.Abs(na.Y-nb.Y)
}

// addRouter creates a router node at (x, y).
func (s *synthesizer) addRouter(x, y float64) int {
	id := len(s.nodes)
	s.nodes = append(s.nodes, Node{ID: id, Kind: RouterNode, Name: fmt.Sprintf("r%d", id), X: x, Y: y})
	return id
}

// addLink designs and appends a link from a to b carrying the given
// flows; it fails if the geometry is infeasible under the model.
func (s *synthesizer) addLink(ctx context.Context, a, b int, flows []int) (int, error) {
	length := s.dist(a, b)
	if length <= 0 {
		return 0, fmt.Errorf("noc: zero-length link %d→%d", a, b)
	}
	d, err := s.model.DesignCtx(ctx, length)
	if err != nil {
		return 0, err
	}
	li := len(s.links)
	s.links = append(s.links, Link{From: a, To: b, Design: d, FlowIdx: append([]int(nil), flows...)})
	return li, nil
}

// initialTopology builds the Phase-A network: one route per flow,
// direct where the wire-length limit allows, otherwise a chain of
// relay routers along the Manhattan (L-shaped) route. Links between
// identical node pairs are shared when capacity allows.
func (s *synthesizer) initialTopology(ctx context.Context) error {
	maxLen := s.model.MaxLength()
	if maxLen <= 0 {
		return fmt.Errorf("noc: model %q cannot build any feasible link", s.model.Name())
	}
	capacity := float64(s.spec.DataWidth) * s.model.Tech().Clock
	s.routes = make([][]int, len(s.spec.Flows))

	// linkBetween finds an existing link a→b with spare capacity.
	linkBetween := func(a, b int, bw float64) int {
		for li := range s.links {
			l := &s.links[li]
			if l.From != a || l.To != b {
				continue
			}
			used := 0.0
			for _, fi := range l.FlowIdx {
				used += s.spec.Flows[fi].Bandwidth
			}
			if used+bw <= capacity {
				return li
			}
		}
		return -1
	}

	for fi, f := range s.spec.Flows {
		if err := ctx.Err(); err != nil {
			return err
		}
		src, dst := s.coreID[f.Src], s.coreID[f.Dst]
		if f.Bandwidth > capacity {
			return fmt.Errorf("noc: flow %d (%s→%s) bandwidth %g exceeds link capacity %g", fi, f.Src, f.Dst, f.Bandwidth, capacity)
		}
		// Waypoints along the L-shaped route, split so every segment
		// fits the wire-length limit.
		hops := s.waypoints(src, dst, maxLen)
		if len(hops)-1 > s.opts.MaxHops {
			return fmt.Errorf("noc: flow %d needs %d hops, exceeding the %d-hop budget — wire-length limit %.2fmm too tight for distance %.2fmm",
				fi, len(hops)-1, s.opts.MaxHops, maxLen*1e3, s.dist(src, dst)*1e3)
		}
		var route []int
		for h := 0; h+1 < len(hops); h++ {
			a, b := hops[h], hops[h+1]
			if li := linkBetween(a, b, f.Bandwidth); li >= 0 {
				s.links[li].FlowIdx = append(s.links[li].FlowIdx, fi)
				route = append(route, li)
				continue
			}
			li, err := s.addLink(ctx, a, b, []int{fi})
			if err != nil {
				return fmt.Errorf("noc: flow %d: %w", fi, err)
			}
			route = append(route, li)
		}
		s.routes[fi] = route
	}
	return nil
}

// waypoints returns the node-ID sequence src, relays..., dst with
// relay routers inserted along the x-then-y Manhattan route so that no
// segment exceeds maxLen. Relay positions are shared between flows
// via position quantization.
func (s *synthesizer) waypoints(src, dst int, maxLen float64) []int {
	total := s.dist(src, dst)
	if total <= maxLen {
		return []int{src, dst}
	}
	nSeg := int(math.Ceil(total / maxLen))
	a, b := &s.nodes[src], &s.nodes[dst]
	// Walk the L-shaped path (x first, then y) and emit evenly
	// spaced relay positions.
	dx, dy := b.X-a.X, b.Y-a.Y
	lx := math.Abs(dx)
	pointAt := func(d float64) (x, y float64) {
		if d <= lx {
			return a.X + math.Copysign(d, dx), a.Y
		}
		return b.X, a.Y + math.Copysign(d-lx, dy)
	}
	ids := []int{src}
	for k := 1; k < nSeg; k++ {
		x, y := pointAt(total * float64(k) / float64(nSeg))
		ids = append(ids, s.routerAt(x, y))
	}
	return append(ids, dst)
}

// routerAt returns an existing router within a small snap radius of
// (x,y) or creates one — so parallel long-distance flows share relay
// stations. Routers already near their radix limit are not reused.
func (s *synthesizer) routerAt(x, y float64) int {
	snap := 50e-6 // 50 µm snap radius
	for i := range s.nodes {
		n := &s.nodes[i]
		if n.Kind == RouterNode && math.Abs(n.X-x)+math.Abs(n.Y-y) <= snap &&
			s.portCount(n.ID) <= s.router.MaxPorts-2 {
			return n.ID
		}
	}
	return s.addRouter(x, y)
}

// portCount counts the links touching a node.
func (s *synthesizer) portCount(id int) int {
	p := 0
	for i := range s.links {
		if s.links[i].From == id || s.links[i].To == id {
			p++
		}
	}
	return p
}

// linkCost is the power (W) attributed to a link at its current
// traffic.
func (s *synthesizer) linkCost(l *Link) float64 {
	bw := 0.0
	for _, fi := range l.FlowIdx {
		bw += s.spec.Flows[fi].Bandwidth
	}
	util := math.Min(1, bw/(float64(s.spec.DataWidth)*s.model.Tech().Clock))
	return l.Design.DynAt(util) + l.Design.Leakage
}

// mergeCandidate describes one evaluated improvement move.
type mergeCandidate struct {
	l1, l2 int
	saving float64
	rx, ry float64
	shared sharedEnd
}

type sharedEnd int

const (
	sharedDst sharedEnd = iota
	sharedSrc
)

// minMergeSaving is the smallest power saving worth a merge (0.1 µW).
const minMergeSaving = 1e-7

// mergeLoop greedily applies the best power-saving channel merge until
// no candidate improves the network, checking for cancellation between
// iterations (and, through bestMerge's fan-out, between candidate
// rows).
func (s *synthesizer) mergeLoop(ctx context.Context) error {
	for iter := 0; iter < s.opts.MaxMergeIters; iter++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		best, found, err := s.bestMerge(ctx)
		if err != nil {
			return err
		}
		if !found {
			return nil
		}
		s.applyMerge(best)
		metMergesApplied.Inc()
	}
	return nil
}

// bestMerge scores every candidate merge and returns the best one.
// The link-pair space is fanned out across the worker pool by first
// index: evalMerge only reads the synthesis state and the design
// cache is concurrency-safe, so rows evaluate independently. Each row
// keeps its serial-order best (strict improvement over later j and
// shared-end candidates) and the rows are reduced in ascending order
// with the same strict comparison, so the selected candidate is
// bit-identical to the serial double loop's.
func (s *synthesizer) bestMerge(ctx context.Context) (mergeCandidate, bool, error) {
	n := len(s.links)
	rowBest := make([]mergeCandidate, n)
	rowFound := make([]bool, n)
	// The per-row closure never fails on its own; the fan-out's only
	// error source is cancellation (checked at each row claim).
	err := pool.ForEachCtx(ctx, s.opts.Workers, n, func(i int) error {
		best := mergeCandidate{saving: minMergeSaving}
		found := false
		for j := i + 1; j < n; j++ {
			for _, se := range []sharedEnd{sharedDst, sharedSrc} {
				if c, ok := s.evalMerge(i, j, se); ok && c.saving > best.saving {
					best, found = c, true
				}
			}
		}
		rowBest[i], rowFound[i] = best, found
		return nil
	})
	if err != nil {
		return mergeCandidate{}, false, err
	}
	best := mergeCandidate{saving: minMergeSaving}
	found := false
	for i := 0; i < n; i++ {
		if rowFound[i] && rowBest[i].saving > best.saving {
			best, found = rowBest[i], true
		}
	}
	return best, found, nil
}

// evalMerge scores merging links i and j (which must share the chosen
// endpoint) through a new router at the bandwidth-weighted centroid of
// their distinct endpoints.
func (s *synthesizer) evalMerge(i, j int, se sharedEnd) (mergeCandidate, bool) {
	l1, l2 := &s.links[i], &s.links[j]
	var shared, e1, e2 int
	switch se {
	case sharedDst:
		if l1.To != l2.To {
			return mergeCandidate{}, false
		}
		shared, e1, e2 = l1.To, l1.From, l2.From
	default:
		if l1.From != l2.From {
			return mergeCandidate{}, false
		}
		shared, e1, e2 = l1.From, l1.To, l2.To
	}
	if e1 == e2 {
		return mergeCandidate{}, false
	}
	// Hop budget: every flow on either link gains one hop.
	for _, li := range []int{i, j} {
		for _, fi := range s.links[li].FlowIdx {
			if len(s.routes[fi])+1 > s.opts.MaxHops {
				return mergeCandidate{}, false
			}
		}
	}
	// Capacity on the shared bus.
	bw1, bw2 := 0.0, 0.0
	for _, fi := range l1.FlowIdx {
		bw1 += s.spec.Flows[fi].Bandwidth
	}
	for _, fi := range l2.FlowIdx {
		bw2 += s.spec.Flows[fi].Bandwidth
	}
	capacity := float64(s.spec.DataWidth) * s.model.Tech().Clock
	if bw1+bw2 > capacity {
		return mergeCandidate{}, false
	}
	// Router position: bandwidth-weighted centroid of the distinct
	// endpoints. Moving a bit through a wire costs the same energy
	// per millimeter whether the bus is shared or not, so the merge's
	// win is eliminating the duplicated corridor (leakage, area) —
	// the router belongs where the two spokes are shortest.
	n1, n2, ns := &s.nodes[e1], &s.nodes[e2], &s.nodes[shared]
	rx := (n1.X*bw1 + n2.X*bw2) / (bw1 + bw2)
	ry := (n1.Y*bw1 + n2.Y*bw2) / (bw1 + bw2)

	maxLen := s.model.MaxLength()
	d1 := math.Abs(n1.X-rx) + math.Abs(n1.Y-ry)
	d2 := math.Abs(n2.X-rx) + math.Abs(n2.Y-ry)
	ds := math.Abs(ns.X-rx) + math.Abs(ns.Y-ry)
	const minLen = 20e-6
	if d1 > maxLen || d2 > maxLen || ds > maxLen || d1 < minLen || d2 < minLen || ds < minLen {
		return mergeCandidate{}, false
	}
	des1, err := s.model.Design(d1)
	if err != nil {
		return mergeCandidate{}, false
	}
	des2, err := s.model.Design(d2)
	if err != nil {
		return mergeCandidate{}, false
	}
	desS, err := s.model.Design(ds)
	if err != nil {
		return mergeCandidate{}, false
	}
	util := func(bw float64) float64 { return math.Min(1, bw/capacity) }
	newCost := des1.DynAt(util(bw1)) + des1.Leakage +
		des2.DynAt(util(bw2)) + des2.Leakage +
		desS.DynAt(util(bw1+bw2)) + desS.Leakage +
		s.router.Power(bw1+bw2, 3)
	oldCost := s.linkCost(l1) + s.linkCost(l2)
	saving := oldCost - newCost
	if saving <= 0 {
		return mergeCandidate{}, false
	}
	return mergeCandidate{l1: i, l2: j, saving: saving, rx: rx, ry: ry, shared: se}, true
}

// applyMerge rewires the two links through a new router. Link slots
// l1 and l2 are reused for the spoke links and a new link is appended
// for the shared bus, so existing link indices in routes stay valid.
func (s *synthesizer) applyMerge(c mergeCandidate) {
	r := s.addRouter(c.rx, c.ry)
	l1, l2 := &s.links[c.l1], &s.links[c.l2]

	var shared int
	if c.shared == sharedDst {
		shared = l1.To
	} else {
		shared = l1.From
	}
	flows := append(append([]int(nil), l1.FlowIdx...), l2.FlowIdx...)
	sort.Ints(flows)

	redesign := func(l *Link, from, to int) {
		d, err := s.model.Design(s.dist(from, to))
		if err != nil {
			// evalMerge already vetted these lengths; a failure here
			// is a programming error.
			panic(fmt.Sprintf("noc: vetted design failed: %v", err))
		}
		l.From, l.To, l.Design = from, to, d
	}

	var sharedLinkIdx int
	if c.shared == sharedDst {
		// e1→r, e2→r, r→shared.
		redesign(l1, l1.From, r)
		redesign(l2, l2.From, r)
		d, err := s.model.Design(s.dist(r, shared))
		if err != nil {
			panic(fmt.Sprintf("noc: vetted design failed: %v", err))
		}
		sharedLinkIdx = len(s.links)
		s.links = append(s.links, Link{From: r, To: shared, Design: d, FlowIdx: flows})
		// Routes: insert the shared link after the spoke.
		for _, fi := range flows {
			s.routes[fi] = insertAfter(s.routes[fi], indexOf(s.routes[fi], c.l1, c.l2), sharedLinkIdx)
		}
	} else {
		// shared→r, then r→e1, r→e2.
		redesign(l1, r, l1.To)
		redesign(l2, r, l2.To)
		d, err := s.model.Design(s.dist(shared, r))
		if err != nil {
			panic(fmt.Sprintf("noc: vetted design failed: %v", err))
		}
		sharedLinkIdx = len(s.links)
		s.links = append(s.links, Link{From: shared, To: r, Design: d, FlowIdx: flows})
		for _, fi := range flows {
			s.routes[fi] = insertBefore(s.routes[fi], indexOf(s.routes[fi], c.l1, c.l2), sharedLinkIdx)
		}
	}
}

// indexOf returns the position of the first of a or b present in
// route.
func indexOf(route []int, a, b int) int {
	for i, li := range route {
		if li == a || li == b {
			return i
		}
	}
	panic("noc: merged link missing from route")
}

// insertAfter inserts v after position i.
func insertAfter(route []int, i, v int) []int {
	route = append(route, 0)
	copy(route[i+2:], route[i+1:])
	route[i+1] = v
	return route
}

// insertBefore inserts v before position i.
func insertBefore(route []int, i, v int) []int {
	route = append(route, 0)
	copy(route[i+1:], route[i:])
	route[i] = v
	return route
}
