package noc

import (
	"math"
	"testing"

	"repro/internal/tech"
	"repro/internal/wire"
)

func proposed90(t testing.TB) *ProposedModel {
	t.Helper()
	m, err := NewProposedModel(tech.MustLookup("90nm"), 128, wire.SWSS)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func original90(t testing.TB) *OriginalModel {
	t.Helper()
	m, err := NewOriginalModel(tech.MustLookup("90nm"), 128, wire.SWSS)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLinkModelBasics(t *testing.T) {
	for _, lm := range []LinkModel{proposed90(t), original90(t)} {
		if lm.Tech().Name != "90nm" {
			t.Fatalf("%s: wrong tech", lm.Name())
		}
		if lm.MaxLength() <= 0 {
			t.Fatalf("%s: no feasible length", lm.Name())
		}
		d, err := lm.Design(1e-3)
		if err != nil {
			t.Fatalf("%s: 1mm design: %v", lm.Name(), err)
		}
		if d.Delay <= 0 || d.DynFull <= 0 || d.Leakage <= 0 || d.Area <= 0 || d.N < 1 {
			t.Fatalf("%s: degenerate design %+v", lm.Name(), d)
		}
		if _, err := lm.Design(0); err == nil {
			t.Fatalf("%s: zero length accepted", lm.Name())
		}
		if _, err := lm.Design(lm.MaxLength() * 1.2); err == nil {
			t.Fatalf("%s: beyond-frontier design accepted", lm.Name())
		}
	}
}

func TestFeasibilityFrontierConsistent(t *testing.T) {
	for _, lm := range []LinkModel{proposed90(t), original90(t)} {
		max := lm.MaxLength()
		if _, err := lm.Design(max * 0.98); err != nil {
			t.Fatalf("%s: design just inside frontier failed: %v", lm.Name(), err)
		}
		if _, err := lm.Design(max * 1.05); err == nil {
			t.Fatalf("%s: design just beyond frontier succeeded", lm.Name())
		}
	}
}

// The paper's central Table III observation: the original model is
// "very optimistic in allowing the use of excessively long wires".
func TestOriginalAllowsLongerWires(t *testing.T) {
	for _, name := range []string{"90nm", "65nm", "45nm"} {
		tc := tech.MustLookup(name)
		orig, err := NewOriginalModel(tc, 128, wire.SWSS)
		if err != nil {
			t.Fatal(err)
		}
		prop, err := NewProposedModel(tc, 128, wire.SWSS)
		if err != nil {
			t.Fatal(err)
		}
		if !(orig.MaxLength() > 1.5*prop.MaxLength()) {
			t.Errorf("%s: original max %.2fmm not well above proposed %.2fmm",
				name, orig.MaxLength()*1e3, prop.MaxLength()*1e3)
		}
	}
}

func TestLinkDesignMonotoneInLength(t *testing.T) {
	for _, lm := range []LinkModel{proposed90(t), original90(t)} {
		var prevDyn, prevLeak float64
		for i, L := range []float64{1e-3, 2e-3, 4e-3} {
			d, err := lm.Design(L)
			if err != nil {
				t.Fatal(err)
			}
			if i > 0 && (d.DynFull <= prevDyn || d.Leakage < prevLeak) {
				t.Fatalf("%s: power not monotone in length", lm.Name())
			}
			prevDyn, prevLeak = d.DynFull, d.Leakage
		}
	}
}

func TestProposedSeesCouplingPower(t *testing.T) {
	// At equal length, the proposed model's dynamic power includes
	// coupling and bigger repeaters: it must exceed the original's.
	orig, prop := original90(t), proposed90(t)
	do, err := orig.Design(3e-3)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := prop.Design(3e-3)
	if err != nil {
		t.Fatal(err)
	}
	ratio := dp.DynFull / do.DynFull
	if ratio < 1.3 || ratio > 5 {
		t.Fatalf("proposed/original dynamic ratio %.2f outside the Table III band", ratio)
	}
	if dp.Leakage <= do.Leakage {
		t.Fatal("proposed leakage should exceed original's optimistic estimate")
	}
	if dp.Area <= do.Area {
		t.Fatal("proposed area should exceed original's simplistic estimate")
	}
}

// Layer assignment: the lowest layer that meets timing wins, so short
// links route on the intermediate layer and long ones escalate to the
// global layer.
func TestLayerAssignment(t *testing.T) {
	for _, lm := range []LinkModel{proposed90(t), original90(t)} {
		short, err := lm.Design(100e-6)
		if err != nil {
			t.Fatalf("%s short: %v", lm.Name(), err)
		}
		if short.Layer != "intermediate" {
			t.Errorf("%s: 0.1mm link on %q, want intermediate", lm.Name(), short.Layer)
		}
		long, err := lm.Design(lm.MaxLength() * 0.95)
		if err != nil {
			t.Fatalf("%s long: %v", lm.Name(), err)
		}
		if long.Layer != "global" {
			t.Errorf("%s: near-frontier link on %q, want global", lm.Name(), long.Layer)
		}
	}
}

func TestDynAtClamps(t *testing.T) {
	d := LinkDesign{DynFull: 10}
	if d.DynAt(-1) != 0 || d.DynAt(2) != 10 || d.DynAt(0.5) != 5 {
		t.Fatal("DynAt clamping")
	}
}

func TestUtilizationHelper(t *testing.T) {
	if u := utilization(64e9, 128, 1e9); math.Abs(u-0.5) > 1e-12 {
		t.Fatalf("utilization %g", u)
	}
	if u := utilization(1e15, 128, 1e9); u != 1 {
		t.Fatal("utilization not clamped")
	}
}

func TestBadWidthRejected(t *testing.T) {
	tc := tech.MustLookup("90nm")
	if _, err := NewProposedModel(tc, 0, wire.SWSS); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := NewOriginalModel(tc, -1, wire.SWSS); err == nil {
		t.Fatal("negative width accepted")
	}
}

func TestRouterParams(t *testing.T) {
	for _, name := range []string{"90nm", "65nm", "45nm"} {
		tc := tech.MustLookup(name)
		p := DefaultRouterParams(tc)
		if p.EnergyPerBit <= 0 || p.LeakPerPort <= 0 || p.AreaPerPort <= 0 {
			t.Fatalf("%s: non-positive router params %+v", name, p)
		}
		if p.MaxPorts < 3 || p.Cycles < 1 {
			t.Fatalf("%s: degenerate limits", name)
		}
	}
	// The 45nm LP node must have the lowest router leakage.
	l90 := DefaultRouterParams(tech.MustLookup("90nm")).LeakPerPort
	l45 := DefaultRouterParams(tech.MustLookup("45nm")).LeakPerPort
	if !(l45 < l90) {
		t.Fatal("45nm LP router leakage should be lowest")
	}
	p := DefaultRouterParams(tech.MustLookup("90nm"))
	if p.Power(1e9, 5) <= p.Power(0, 5) {
		t.Fatal("router power must grow with throughput")
	}
	if p.Area(5) != 5*p.AreaPerPort {
		t.Fatal("router area")
	}
}
