package noc

import "fmt"

// This file provides the two SoC test cases of the paper's Table III:
// VPROC, a video processor with 42 cores and 128-bit data widths, and
// DVOPD, a dual video object plane decoder with 26 cores decoding two
// streams in parallel. The published work describes the designs only
// at that level, so the floorplans and flow tables here are synthetic
// but shaped to match: VPROC as parallel processing pipelines with
// memory-controller hotspots, DVOPD as two mirrored VOPD pipelines
// (with the classic VOPD inter-core bandwidth table) plus shared
// control traffic. Floorplan coordinates are for the 90nm node; use
// Spec.Scale to shrink the die for smaller nodes.

// vprocPitch is the VPROC core pitch at 90nm (meters): a 7×6 grid of
// tiles on an ~10×9 mm die.
const vprocPitch = 1.5e-3

// VPROC returns the 42-core video-processor specification at 90nm
// scale.
func VPROC() *Spec {
	s := &Spec{Name: "VPROC", DataWidth: 128}
	// 7×6 tile grid.
	const cols, rows = 7, 6
	for i := 0; i < cols*rows; i++ {
		col, row := i%cols, i/cols
		s.Cores = append(s.Cores, Core{
			Name: fmt.Sprintf("pe%02d", i),
			X:    float64(col) * vprocPitch,
			Y:    float64(row) * vprocPitch,
		})
	}
	gbps := func(g float64) float64 { return g * 1e9 }
	// Four processing pipelines of ten stages snaking through the
	// grid (raster order within row bands), with stage-dependent
	// bandwidths: front-end stages carry more traffic.
	pipeline := func(start int, ids []int, base float64) {
		for k := 0; k+1 < len(ids); k++ {
			bw := base * (1 + 0.5*float64((start+k)%3))
			s.Flows = append(s.Flows, Flow{
				Src: fmt.Sprintf("pe%02d", ids[k]), Dst: fmt.Sprintf("pe%02d", ids[k+1]), Bandwidth: gbps(bw),
			})
		}
	}
	pipeline(0, []int{0, 1, 2, 3, 4, 5, 6, 13, 12, 11}, 4)
	pipeline(1, []int{7, 8, 9, 10, 17, 16, 15, 14, 21, 22}, 3)
	pipeline(2, []int{28, 29, 30, 31, 24, 23, 25, 32, 33, 34}, 3.5)
	pipeline(3, []int{35, 36, 37, 38, 39, 40, 41, 27, 26, 20}, 2.5)
	// Memory controllers at two corners; every fourth tile reads
	// from one and writes to the other.
	const memA, memB = 18, 19 // central tiles act as memory interfaces
	for i := 0; i < cols*rows; i += 4 {
		if i == memA || i == memB {
			continue
		}
		s.Flows = append(s.Flows,
			Flow{Src: fmt.Sprintf("pe%02d", memA), Dst: fmt.Sprintf("pe%02d", i), Bandwidth: gbps(1 + 0.25*float64(i%5))},
			Flow{Src: fmt.Sprintf("pe%02d", i), Dst: fmt.Sprintf("pe%02d", memB), Bandwidth: gbps(0.5 + 0.25*float64(i%3))},
		)
	}
	return s
}

// vopdBandwidths is the classic VOPD inter-core bandwidth table
// (values in MB/s, from the published VOPD benchmark).
var vopdBandwidths = []struct {
	src, dst string
	mbps     float64
}{
	{"vld", "run_le_dec", 70},
	{"run_le_dec", "inv_scan", 362},
	{"inv_scan", "ac_dc_pred", 362},
	{"ac_dc_pred", "stripe_mem", 49},
	{"stripe_mem", "iquant", 27},
	{"ac_dc_pred", "iquant", 313},
	{"iquant", "idct", 357},
	{"idct", "up_samp", 353},
	{"up_samp", "vop_rec", 300},
	{"vop_rec", "pad", 313},
	{"pad", "vop_mem", 313},
	{"vop_mem", "vop_rec", 500},
	{"arm", "idct", 16},
	{"idct", "arm", 16},
	{"vop_mem", "arm", 16},
	{"mem_ctrl", "vld", 94},
}

// vopdCoreNames lists the 13 cores of one VOPD pipeline instance.
var vopdCoreNames = []string{
	"vld", "run_le_dec", "inv_scan", "ac_dc_pred", "stripe_mem",
	"iquant", "idct", "up_samp", "vop_rec", "pad", "vop_mem", "arm",
	"mem_ctrl",
}

// DVOPD returns the 26-core dual video-object-plane-decoder
// specification at 90nm scale: two mirrored VOPD pipelines decoding
// two streams in parallel, with cross traffic between the two ARM
// control processors and the shared memory controllers.
func DVOPD() *Spec {
	s := &Spec{Name: "DVOPD", DataWidth: 128}
	const pitch = 1.3e-3
	// Each instance occupies a 13-tile serpentine on its half of the
	// die (5 columns × 3 rows per half, top half instance 0,
	// mirrored bottom half instance 1).
	place := func(inst int) {
		for i, name := range vopdCoreNames {
			col, row := i%5, i/5
			y := float64(row) * pitch
			if inst == 1 {
				y = float64(5)*pitch - y // mirror
			}
			s.Cores = append(s.Cores, Core{
				Name: fmt.Sprintf("%s%d", name, inst),
				X:    float64(col) * pitch,
				Y:    y,
			})
		}
	}
	place(0)
	place(1)
	for inst := 0; inst < 2; inst++ {
		for _, e := range vopdBandwidths {
			s.Flows = append(s.Flows, Flow{
				Src:       fmt.Sprintf("%s%d", e.src, inst),
				Dst:       fmt.Sprintf("%s%d", e.dst, inst),
				Bandwidth: e.mbps * 8e6, // MB/s → bits/s
			})
		}
	}
	// Cross traffic: the two control processors synchronize, and
	// each decoder occasionally reads the other's reference memory.
	cross := []Flow{
		{Src: "arm0", Dst: "arm1", Bandwidth: 16 * 8e6},
		{Src: "arm1", Dst: "arm0", Bandwidth: 16 * 8e6},
		{Src: "vop_mem0", Dst: "vop_rec1", Bandwidth: 80 * 8e6},
		{Src: "vop_mem1", Dst: "vop_rec0", Bandwidth: 80 * 8e6},
	}
	s.Flows = append(s.Flows, cross...)
	return s
}

// TestCases returns both Table III specifications.
func TestCases() []*Spec { return []*Spec{VPROC(), DVOPD()} }

// SpecByName returns the named Table III test case. The floorplan is
// the same physical size at every technology node — the paper
// evaluates one SoC design across 90/65/45 nm, and its observation
// that dynamic power *rises* from 65 to 45 nm (the 1.0 V → 1.1 V
// library supply step) only holds when communication distances stay
// fixed. Use Spec.Scale for die-shrink studies.
func SpecByName(name string) (*Spec, error) {
	switch name {
	case "VPROC":
		return VPROC(), nil
	case "DVOPD":
		return DVOPD(), nil
	default:
		return nil, fmt.Errorf("noc: unknown test case %q", name)
	}
}
