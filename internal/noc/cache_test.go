package noc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/tech"
	"repro/internal/wire"
)

// countingModel wraps a LinkModel and counts Design invocations per
// requested length, to observe what the cache actually forwards.
type countingModel struct {
	LinkModel
	mu    sync.Mutex
	calls map[float64]int
}

func newCountingModel(lm LinkModel) *countingModel {
	return &countingModel{LinkModel: lm, calls: map[float64]int{}}
}

func (m *countingModel) Design(length float64) (LinkDesign, error) {
	m.mu.Lock()
	m.calls[length]++
	m.mu.Unlock()
	return m.LinkModel.Design(length)
}

func (m *countingModel) totalCalls() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, c := range m.calls {
		n += c
	}
	return n
}

func TestDesignCacheRejectsBadLengths(t *testing.T) {
	c := NewDesignCache(proposed90(t))
	for _, bad := range []float64{0, -1e-3, -1e-9, math.NaN()} {
		if _, err := c.Design(bad); err == nil {
			t.Errorf("length %g accepted", bad)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("invalid lengths were cached: %d entries", c.Len())
	}
}

func TestDesignCacheSubQuantumNotAliased(t *testing.T) {
	// 0.4 µm rounds to bucket 0; the old implementation clamped it to
	// the 1 µm bucket. It must now be designed at its exact length
	// and stay out of the cache.
	base := newCountingModel(proposed90(t))
	c := NewDesignCache(base)
	d, err := c.Design(0.4e-6)
	if err != nil {
		t.Fatal(err)
	}
	if d.Length != 0.4e-6 {
		t.Fatalf("sub-quantum length aliased: designed %g, want %g", d.Length, 0.4e-6)
	}
	if c.Len() != 0 {
		t.Fatalf("sub-quantum design cached (%d entries)", c.Len())
	}
	if got := base.calls[0.4e-6]; got != 1 {
		t.Fatalf("underlying model saw %d calls for the exact length", got)
	}
}

func TestDesignCacheQuantizesAndMemoizes(t *testing.T) {
	base := newCountingModel(proposed90(t))
	c := NewDesignCache(base)
	// Lengths within the same 1 µm bucket share one design.
	a, err := c.Design(100.2e-6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Design(99.8e-6)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same-bucket lengths designed differently")
	}
	if q := math.Round(a.Length / lengthQuantum); q != 100 {
		t.Fatalf("bucket center %g (q=%g), want the 100 µm bucket", a.Length, q)
	}
	if base.totalCalls() != 1 || c.Len() != 1 {
		t.Fatalf("underlying calls %d, cache size %d; want 1, 1", base.totalCalls(), c.Len())
	}
}

func TestDesignCacheNoDoubleWrap(t *testing.T) {
	c := NewDesignCache(proposed90(t))
	if c2 := NewDesignCache(c); c2 != c {
		t.Fatal("wrapping a DesignCache stacked a second cache")
	}
}

func TestDesignCacheConcurrentSingleComputation(t *testing.T) {
	base := newCountingModel(proposed90(t))
	c := NewDesignCache(base)
	lengths := []float64{0.3e-3, 0.5e-3, 0.7e-3, 0.9e-3, 1.1e-3}

	const goroutines = 16
	results := make([][]LinkDesign, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			out := make([]LinkDesign, len(lengths))
			for i, l := range lengths {
				d, err := c.Design(l)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				out[i] = d
			}
			results[g] = out
		}(g)
	}
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		if !reflect.DeepEqual(results[0], results[g]) {
			t.Fatalf("goroutine %d saw different designs", g)
		}
	}
	// Every distinct length designed exactly once, despite 16
	// concurrent requesters.
	if got := base.totalCalls(); got != len(lengths) {
		t.Fatalf("underlying model called %d times for %d lengths", got, len(lengths))
	}
	if c.Len() != len(lengths) {
		t.Fatalf("cache holds %d entries, want %d", c.Len(), len(lengths))
	}
}

// flakyModel fails the first `failures` Design calls with the given
// error, then delegates; it reproduces a model whose computation died
// under a cancelled context.
type flakyModel struct {
	LinkModel
	mu       sync.Mutex
	failures int
	failErr  error
	calls    int
}

func (m *flakyModel) Design(length float64) (LinkDesign, error) {
	m.mu.Lock()
	m.calls++
	fail := m.calls <= m.failures
	m.mu.Unlock()
	if fail {
		return LinkDesign{}, m.failErr
	}
	return m.LinkModel.Design(length)
}

func (m *flakyModel) callCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.calls
}

func TestDesignCacheDoesNotMemoizeCancellation(t *testing.T) {
	// First lookup dies with a wrapped context error; the entry must
	// stay undecided so the next lookup retries and succeeds. Before
	// the fix the per-entry sync.Once memoized the cancellation
	// forever, poisoning the length for every later caller.
	for _, transient := range []error{
		context.Canceled,
		context.DeadlineExceeded,
		fmt.Errorf("noc: design aborted: %w", context.Canceled),
	} {
		base := &flakyModel{LinkModel: proposed90(t), failures: 1, failErr: transient}
		c := NewDesignCache(base)
		if _, err := c.Design(1e-3); !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("first lookup: got %v, want the transient error", err)
		}
		if c.Len() != 0 {
			t.Fatalf("transient error was cached (%d entries)", c.Len())
		}
		d, err := c.Design(1e-3)
		if err != nil {
			t.Fatalf("retry after transient error: %v", err)
		}
		if d.Length == 0 {
			t.Fatal("retry returned a zero design")
		}
		if got := base.callCount(); got != 2 {
			t.Fatalf("underlying model called %d times, want 2 (fail + retry)", got)
		}
		// Third lookup is a pure cache hit.
		if _, err := c.Design(1e-3); err != nil {
			t.Fatal(err)
		}
		if got := base.callCount(); got != 2 {
			t.Fatalf("cached design recomputed (%d calls)", got)
		}
	}
}

func TestDesignCacheStillMemoizesPermanentErrors(t *testing.T) {
	// Infeasible lengths are a property of the model, not the caller's
	// context: they stay memoized so the merge loop doesn't re-derive
	// the same failure thousands of times.
	lm := proposed90(t)
	base := &flakyModel{LinkModel: lm, failures: 1 << 30, failErr: fmt.Errorf("noc: infeasible")}
	c := NewDesignCache(base)
	for i := 0; i < 3; i++ {
		if _, err := c.Design(1e-3); err == nil {
			t.Fatal("permanent error not propagated")
		}
	}
	if got := base.callCount(); got != 1 {
		t.Fatalf("permanent error recomputed (%d calls), want memoized once", got)
	}
}

func TestDesignCacheCtxPreCancelled(t *testing.T) {
	base := newCountingModel(proposed90(t))
	c := NewDesignCache(base)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.DesignCtx(ctx, 1e-3); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := base.totalCalls(); got != 0 {
		t.Fatalf("cancelled lookup reached the model (%d calls)", got)
	}
	if c.Len() != 0 {
		t.Fatalf("cancelled lookup left %d cache entries", c.Len())
	}
	// The same cache, with a live context, designs normally.
	if _, err := c.DesignCtx(context.Background(), 1e-3); err != nil {
		t.Fatalf("cache poisoned by the cancelled lookup: %v", err)
	}
}

func TestSynthesizeCtxCancelled(t *testing.T) {
	lm := proposed90(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SynthesizeCtx(ctx, DVOPD(), lm, SynthOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// The model must remain fully usable after the aborted run.
	ref, err := Synthesize(DVOPD(), lm, SynthOptions{})
	if err != nil {
		t.Fatalf("synthesis after cancelled run: %v", err)
	}
	if ref.Check() != nil {
		t.Fatal("post-cancel synthesis produced an invalid network")
	}
}

// cancellingModel cancels a context after a fixed number of designs,
// simulating a deadline that expires mid-synthesis.
type cancellingModel struct {
	LinkModel
	cancel  context.CancelFunc
	after   int32
	designs atomic.Int32
}

func (m *cancellingModel) Design(length float64) (LinkDesign, error) {
	if m.designs.Add(1) == m.after {
		m.cancel()
	}
	return m.LinkModel.Design(length)
}

func TestSynthesizeCtxCancelMidRun(t *testing.T) {
	lm := proposed90(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cm := &cancellingModel{LinkModel: lm, cancel: cancel, after: 3}
	_, err := SynthesizeCtx(ctx, DVOPD(), cm, SynthOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// A fresh run over the same underlying model under a live context
	// must match an undisturbed reference bit for bit: nothing from
	// the aborted run may leak through shared state.
	ref, err := Synthesize(DVOPD(), lm, SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	again, err := SynthesizeCtx(context.Background(), DVOPD(), lm, SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Evaluate() != again.Evaluate() {
		t.Fatal("post-cancel synthesis diverged from the reference")
	}
}

func TestSynthesizeCtxLiveMatchesNoCtx(t *testing.T) {
	lm := proposed90(t)
	ref, err := Synthesize(DVOPD(), lm, SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := SynthesizeCtx(ctx, DVOPD(), lm, SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Routes, got.Routes) {
		t.Fatal("live-context routes differ from the no-context path")
	}
	if ref.Evaluate() != got.Evaluate() {
		t.Fatal("live-context metrics differ from the no-context path")
	}
}

func TestSynthesizeWorkersMatchSerial(t *testing.T) {
	lm := proposed90(t)
	spec := DVOPD()
	serial, err := Synthesize(spec, lm, SynthOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, runtime.GOMAXPROCS(0) + 3} {
		par, err := Synthesize(spec, lm, SynthOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial.Routes, par.Routes) {
			t.Fatalf("workers=%d: routes differ from serial", workers)
		}
		ms, mp := serial.Evaluate(), par.Evaluate()
		if ms != mp {
			t.Fatalf("workers=%d: metrics differ: %+v vs %+v", workers, ms, mp)
		}
	}
}

func TestSynthesizeConcurrentRunsSharedModel(t *testing.T) {
	// Many goroutines synthesizing against one shared LinkModel — the
	// fan-out callers could not do before the cache was made safe.
	lm := proposed90(t)
	ref, err := Synthesize(DVOPD(), lm, SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	refMetrics := ref.Evaluate()

	const runs = 4
	var wg sync.WaitGroup
	var failures atomic.Int32
	wg.Add(runs)
	for r := 0; r < runs; r++ {
		go func() {
			defer wg.Done()
			net, err := Synthesize(DVOPD(), lm, SynthOptions{})
			if err != nil {
				t.Errorf("concurrent synthesis: %v", err)
				failures.Add(1)
				return
			}
			if m := net.Evaluate(); m != refMetrics {
				t.Errorf("concurrent synthesis diverged: %+v vs %+v", m, refMetrics)
				failures.Add(1)
			}
		}()
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.FailNow()
	}
}

// BenchmarkSynthesizeWorkers measures the merge loop's scaling: the
// serial baseline against the pooled evaluation on all cores. Run
// with -cpu or compare the sub-benchmarks directly.
func BenchmarkSynthesizeWorkers(b *testing.B) {
	tc := tech.MustLookup("90nm")
	spec := VPROC()
	for _, bench := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// A fresh model per iteration keeps the design cache
				// cold, so the benchmark exercises real design work,
				// not just candidate scoring over cache hits.
				lm, err := NewProposedModel(tc, spec.DataWidth, wire.SWSS)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Synthesize(spec, lm, SynthOptions{Workers: bench.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
