package noc

import (
	"math"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/tech"
	"repro/internal/wire"
)

// countingModel wraps a LinkModel and counts Design invocations per
// requested length, to observe what the cache actually forwards.
type countingModel struct {
	LinkModel
	mu    sync.Mutex
	calls map[float64]int
}

func newCountingModel(lm LinkModel) *countingModel {
	return &countingModel{LinkModel: lm, calls: map[float64]int{}}
}

func (m *countingModel) Design(length float64) (LinkDesign, error) {
	m.mu.Lock()
	m.calls[length]++
	m.mu.Unlock()
	return m.LinkModel.Design(length)
}

func (m *countingModel) totalCalls() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, c := range m.calls {
		n += c
	}
	return n
}

func TestDesignCacheRejectsBadLengths(t *testing.T) {
	c := NewDesignCache(proposed90(t))
	for _, bad := range []float64{0, -1e-3, -1e-9, math.NaN()} {
		if _, err := c.Design(bad); err == nil {
			t.Errorf("length %g accepted", bad)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("invalid lengths were cached: %d entries", c.Len())
	}
}

func TestDesignCacheSubQuantumNotAliased(t *testing.T) {
	// 0.4 µm rounds to bucket 0; the old implementation clamped it to
	// the 1 µm bucket. It must now be designed at its exact length
	// and stay out of the cache.
	base := newCountingModel(proposed90(t))
	c := NewDesignCache(base)
	d, err := c.Design(0.4e-6)
	if err != nil {
		t.Fatal(err)
	}
	if d.Length != 0.4e-6 {
		t.Fatalf("sub-quantum length aliased: designed %g, want %g", d.Length, 0.4e-6)
	}
	if c.Len() != 0 {
		t.Fatalf("sub-quantum design cached (%d entries)", c.Len())
	}
	if got := base.calls[0.4e-6]; got != 1 {
		t.Fatalf("underlying model saw %d calls for the exact length", got)
	}
}

func TestDesignCacheQuantizesAndMemoizes(t *testing.T) {
	base := newCountingModel(proposed90(t))
	c := NewDesignCache(base)
	// Lengths within the same 1 µm bucket share one design.
	a, err := c.Design(100.2e-6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Design(99.8e-6)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same-bucket lengths designed differently")
	}
	if q := math.Round(a.Length / lengthQuantum); q != 100 {
		t.Fatalf("bucket center %g (q=%g), want the 100 µm bucket", a.Length, q)
	}
	if base.totalCalls() != 1 || c.Len() != 1 {
		t.Fatalf("underlying calls %d, cache size %d; want 1, 1", base.totalCalls(), c.Len())
	}
}

func TestDesignCacheNoDoubleWrap(t *testing.T) {
	c := NewDesignCache(proposed90(t))
	if c2 := NewDesignCache(c); c2 != c {
		t.Fatal("wrapping a DesignCache stacked a second cache")
	}
}

func TestDesignCacheConcurrentSingleComputation(t *testing.T) {
	base := newCountingModel(proposed90(t))
	c := NewDesignCache(base)
	lengths := []float64{0.3e-3, 0.5e-3, 0.7e-3, 0.9e-3, 1.1e-3}

	const goroutines = 16
	results := make([][]LinkDesign, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			out := make([]LinkDesign, len(lengths))
			for i, l := range lengths {
				d, err := c.Design(l)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				out[i] = d
			}
			results[g] = out
		}(g)
	}
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		if !reflect.DeepEqual(results[0], results[g]) {
			t.Fatalf("goroutine %d saw different designs", g)
		}
	}
	// Every distinct length designed exactly once, despite 16
	// concurrent requesters.
	if got := base.totalCalls(); got != len(lengths) {
		t.Fatalf("underlying model called %d times for %d lengths", got, len(lengths))
	}
	if c.Len() != len(lengths) {
		t.Fatalf("cache holds %d entries, want %d", c.Len(), len(lengths))
	}
}

func TestSynthesizeWorkersMatchSerial(t *testing.T) {
	lm := proposed90(t)
	spec := DVOPD()
	serial, err := Synthesize(spec, lm, SynthOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, runtime.GOMAXPROCS(0) + 3} {
		par, err := Synthesize(spec, lm, SynthOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial.Routes, par.Routes) {
			t.Fatalf("workers=%d: routes differ from serial", workers)
		}
		ms, mp := serial.Evaluate(), par.Evaluate()
		if ms != mp {
			t.Fatalf("workers=%d: metrics differ: %+v vs %+v", workers, ms, mp)
		}
	}
}

func TestSynthesizeConcurrentRunsSharedModel(t *testing.T) {
	// Many goroutines synthesizing against one shared LinkModel — the
	// fan-out callers could not do before the cache was made safe.
	lm := proposed90(t)
	ref, err := Synthesize(DVOPD(), lm, SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	refMetrics := ref.Evaluate()

	const runs = 4
	var wg sync.WaitGroup
	var failures atomic.Int32
	wg.Add(runs)
	for r := 0; r < runs; r++ {
		go func() {
			defer wg.Done()
			net, err := Synthesize(DVOPD(), lm, SynthOptions{})
			if err != nil {
				t.Errorf("concurrent synthesis: %v", err)
				failures.Add(1)
				return
			}
			if m := net.Evaluate(); m != refMetrics {
				t.Errorf("concurrent synthesis diverged: %+v vs %+v", m, refMetrics)
				failures.Add(1)
			}
		}()
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.FailNow()
	}
}

// BenchmarkSynthesizeWorkers measures the merge loop's scaling: the
// serial baseline against the pooled evaluation on all cores. Run
// with -cpu or compare the sub-benchmarks directly.
func BenchmarkSynthesizeWorkers(b *testing.B) {
	tc := tech.MustLookup("90nm")
	spec := VPROC()
	for _, bench := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// A fresh model per iteration keeps the design cache
				// cold, so the benchmark exercises real design work,
				// not just candidate scoring over cache hits.
				lm, err := NewProposedModel(tc, spec.DataWidth, wire.SWSS)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Synthesize(spec, lm, SynthOptions{Workers: bench.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
