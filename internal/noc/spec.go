// Package noc is the communication-synthesis substrate of the
// reproduction — the role COSI-OCC plays in the paper: given a
// system-on-chip communication specification (cores with floorplan
// positions and bandwidth-annotated point-to-point flows), synthesize
// a network-on-chip from buffered links and routers that meets the
// clock-frequency and wire-length feasibility constraints, minimizing
// interconnect power; then report power, delay, area, and hop count.
//
// The interconnect cost models are pluggable (the LinkModel
// interface): the paper's Table III contrasts the topologies and
// metrics the tool produces with the original (Bakoglu-based,
// uncalibrated) model against the proposed calibrated predictive
// models.
package noc

import (
	"fmt"
	"math"
)

// Core is one IP block in the specification, with its floorplan
// placement. Positions and sizes are in meters.
type Core struct {
	Name string
	// X, Y is the core's center.
	X, Y float64
}

// Distance returns the Manhattan distance between two cores — global
// wiring is routed on Manhattan layers.
func (c Core) Distance(o Core) float64 {
	return math.Abs(c.X-o.X) + math.Abs(c.Y-o.Y)
}

// Flow is one point-to-point communication requirement.
type Flow struct {
	Src, Dst string
	// Bandwidth is the sustained requirement in bits/second.
	Bandwidth float64
}

// Spec is a complete synthesis input.
type Spec struct {
	// Name labels the test case (e.g. "VPROC").
	Name string
	// DataWidth is the link width in bits (the paper's designs use
	// 128-bit data widths).
	DataWidth int
	Cores     []Core
	Flows     []Flow
}

// Core returns the named core, or an error.
func (s *Spec) Core(name string) (Core, error) {
	for _, c := range s.Cores {
		if c.Name == name {
			return c, nil
		}
	}
	return Core{}, fmt.Errorf("noc: spec %q has no core %q", s.Name, name)
}

// Validate checks referential integrity and physical plausibility.
func (s *Spec) Validate() error {
	if s.DataWidth < 1 {
		return fmt.Errorf("noc: spec %q: data width %d", s.Name, s.DataWidth)
	}
	if len(s.Cores) == 0 {
		return fmt.Errorf("noc: spec %q has no cores", s.Name)
	}
	seen := make(map[string]bool, len(s.Cores))
	for _, c := range s.Cores {
		if c.Name == "" {
			return fmt.Errorf("noc: spec %q: unnamed core", s.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("noc: spec %q: duplicate core %q", s.Name, c.Name)
		}
		seen[c.Name] = true
	}
	if len(s.Flows) == 0 {
		return fmt.Errorf("noc: spec %q has no flows", s.Name)
	}
	for i, f := range s.Flows {
		if !seen[f.Src] || !seen[f.Dst] {
			return fmt.Errorf("noc: spec %q flow %d references unknown core (%s→%s)", s.Name, i, f.Src, f.Dst)
		}
		if f.Src == f.Dst {
			return fmt.Errorf("noc: spec %q flow %d is a self-loop on %s", s.Name, i, f.Src)
		}
		if f.Bandwidth <= 0 {
			return fmt.Errorf("noc: spec %q flow %d has bandwidth %g", s.Name, i, f.Bandwidth)
		}
	}
	return nil
}

// TotalBandwidth sums all flow bandwidths (bits/s).
func (s *Spec) TotalBandwidth() float64 {
	t := 0.0
	for _, f := range s.Flows {
		t += f.Bandwidth
	}
	return t
}

// Scale returns a copy of the spec with every position multiplied by
// factor — used to port a floorplan across technology nodes (die
// shrink).
func (s *Spec) Scale(factor float64) *Spec {
	out := &Spec{Name: s.Name, DataWidth: s.DataWidth, Flows: append([]Flow(nil), s.Flows...)}
	out.Cores = make([]Core, len(s.Cores))
	for i, c := range s.Cores {
		out.Cores[i] = Core{Name: c.Name, X: c.X * factor, Y: c.Y * factor}
	}
	return out
}
