package noc

import (
	"fmt"
	"math"
)

// This file adds a cycle-based traffic simulation of a synthesized
// network — the validation companion the analytic Evaluate metrics
// need: packets are injected per the specification's bandwidths,
// serialized over links flit by flit, queued at contended buses, and
// delayed by router pipelines. It answers the question the analytic
// model cannot: do the synthesized capacities actually sustain the
// offered traffic, and how far is real (queued) latency from the
// zero-load number?

// SimConfig tunes the traffic simulation.
type SimConfig struct {
	// Cycles is the measurement window in clock cycles
	// (default 20000).
	Cycles int
	// Warmup cycles are simulated but excluded from statistics
	// (default Cycles/10).
	Warmup int
	// PacketFlits is the packet size in flits (one flit = one
	// DataWidth word per cycle; default 8).
	PacketFlits int
	// Drain allows in-flight packets to finish after injection
	// stops (default 4·Cycles, bounded).
	Drain int
	// Burst injects packets in back-to-back trains of this many
	// packets (default 1, smooth traffic). The long-term rate is
	// unchanged; burstiness stresses the queues and raises latency
	// without changing utilization.
	Burst int
}

// Sentinel errors returned by SimConfig.Validate. Zero means "use the
// default"; a negative value is always a mistake (a negative Burst
// would even make the injection loop non-terminating), so each field
// gets a named error callers can test with errors.Is.
var (
	ErrNegativeCycles      = fmt.Errorf("noc: negative measurement cycles")
	ErrNegativeWarmup      = fmt.Errorf("noc: negative warmup cycles")
	ErrNegativePacketFlits = fmt.Errorf("noc: negative packet size")
	ErrNegativeDrain       = fmt.Errorf("noc: negative drain window")
	ErrNegativeBurst       = fmt.Errorf("noc: negative burst length")
)

// Validate rejects configurations no defaulting can repair.
func (c SimConfig) Validate() error {
	switch {
	case c.Cycles < 0:
		return fmt.Errorf("%w (%d)", ErrNegativeCycles, c.Cycles)
	case c.Warmup < 0:
		return fmt.Errorf("%w (%d)", ErrNegativeWarmup, c.Warmup)
	case c.PacketFlits < 0:
		return fmt.Errorf("%w (%d)", ErrNegativePacketFlits, c.PacketFlits)
	case c.Drain < 0:
		return fmt.Errorf("%w (%d)", ErrNegativeDrain, c.Drain)
	case c.Burst < 0:
		return fmt.Errorf("%w (%d)", ErrNegativeBurst, c.Burst)
	}
	return nil
}

func (c SimConfig) withDefaults() SimConfig {
	if c.Cycles == 0 {
		c.Cycles = 20000
	}
	if c.Warmup == 0 {
		c.Warmup = c.Cycles / 10
	}
	if c.PacketFlits == 0 {
		c.PacketFlits = 8
	}
	if c.Drain == 0 {
		c.Drain = 4 * c.Cycles
	}
	if c.Burst == 0 {
		c.Burst = 1
	}
	return c
}

// SimResult reports the measured traffic statistics.
type SimResult struct {
	// PacketsInjected and PacketsDelivered count packets within the
	// measurement window (all injected packets are eventually
	// delivered or the simulation errors).
	PacketsInjected, PacketsDelivered int
	// AvgLatency is the mean packet latency (s): injection to tail
	// arrival at the destination.
	AvgLatency float64
	// MaxLatency is the worst packet latency (s).
	MaxLatency float64
	// LinkUtilization is the measured busy fraction of each link
	// over the measurement window, parallel to Network.Links.
	LinkUtilization []float64
}

// packet is one in-flight packet.
type packet struct {
	flow     int
	route    []int
	hop      int // index into route of the link it must traverse next
	readyAt  int // cycle at which its tail is available at the current node
	injected int // injection cycle
}

// Simulate runs the cycle-based traffic simulation. It is
// deterministic: injection uses per-flow rate accumulators (no
// randomness), and links arbitrate FIFO with ties broken by flow
// index.
func (n *Network) Simulate(cfg SimConfig) (*SimResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	if err := n.Check(); err != nil {
		return nil, err
	}
	capacity := float64(n.Spec.DataWidth) * n.Model.Tech().Clock

	// Per-flow flit rate (flits per cycle) and packet accumulator.
	rates := make([]float64, len(n.Spec.Flows))
	for fi, f := range n.Spec.Flows {
		rates[fi] = f.Bandwidth / capacity
	}
	acc := make([]float64, len(n.Spec.Flows))

	queues := make([][]*packet, len(n.Links))
	busyUntil := make([]int, len(n.Links))
	busyCycles := make([]int, len(n.Links))

	res := &SimResult{LinkUtilization: make([]float64, len(n.Links))}
	var latencySum float64
	period := 1 / n.Model.Tech().Clock

	inFlight := 0
	horizon := c.Warmup + c.Cycles
	maxCycle := horizon + c.Drain

	for cycle := 0; cycle < maxCycle; cycle++ {
		// Inject. With Burst > 1, packets are withheld until a full
		// train has accrued, then released back to back.
		if cycle < horizon {
			trainFlits := float64(c.Burst * c.PacketFlits)
			for fi := range n.Spec.Flows {
				acc[fi] += rates[fi]
				for acc[fi] >= trainFlits {
					acc[fi] -= trainFlits
					for b := 0; b < c.Burst; b++ {
						p := &packet{flow: fi, route: n.Routes[fi], readyAt: cycle, injected: cycle}
						queues[p.route[0]] = append(queues[p.route[0]], p)
						if cycle >= c.Warmup {
							res.PacketsInjected++
						}
						inFlight++
					}
				}
			}
		}
		// Advance links in deterministic order.
		for li := range n.Links {
			if busyUntil[li] > cycle {
				if cycle >= c.Warmup && cycle < horizon {
					busyCycles[li]++
				}
				continue
			}
			q := queues[li]
			// Pick the first ready packet (FIFO with readiness).
			pick := -1
			for i, p := range q {
				if p.readyAt <= cycle {
					pick = i
					break
				}
			}
			if pick < 0 {
				continue
			}
			p := q[pick]
			queues[li] = append(q[:pick], q[pick+1:]...)
			done := cycle + c.PacketFlits // serialization over the bus
			busyUntil[li] = done
			if cycle >= c.Warmup && cycle < horizon {
				busyCycles[li]++
			}
			// Where does the packet land?
			p.hop++
			if p.hop == len(p.route) {
				// Delivered: tail arrives at done.
				lat := float64(done-p.injected) * period
				if p.injected >= c.Warmup && p.injected < horizon {
					res.PacketsDelivered++
					latencySum += lat
					if lat > res.MaxLatency {
						res.MaxLatency = lat
					}
				}
				inFlight--
				continue
			}
			// Next link: available after router pipeline.
			next := p.route[p.hop]
			p.readyAt = done + n.Router.Cycles
			queues[next] = append(queues[next], p)
		}
		if cycle >= horizon && inFlight == 0 {
			break
		}
	}
	if inFlight > 0 {
		return nil, fmt.Errorf("noc: %d packets still in flight after drain — offered load exceeds capacity", inFlight)
	}
	if res.PacketsDelivered > 0 {
		res.AvgLatency = latencySum / float64(res.PacketsDelivered)
	}
	for li := range n.Links {
		res.LinkUtilization[li] = float64(busyCycles[li]) / float64(c.Cycles)
	}
	return res, nil
}

// ZeroLoadLatency returns the analytic zero-load latency (s) of a
// flow's route including packet serialization: per hop one cycle per
// flit-serialized link word... in this simple store-and-forward model
// a packet of F flits takes F cycles per link plus the router
// pipeline between links.
func (n *Network) ZeroLoadLatency(flow int, packetFlits int) float64 {
	route := n.Routes[flow]
	period := 1 / n.Model.Tech().Clock
	cycles := len(route)*packetFlits + (len(route)-1)*n.Router.Cycles
	return float64(cycles) * period
}

// AvgZeroLoadLatency averages ZeroLoadLatency over all flows
// (unweighted — one vote per flow).
func (n *Network) AvgZeroLoadLatency(packetFlits int) float64 {
	if len(n.Routes) == 0 {
		return 0
	}
	s := 0.0
	for fi := range n.Routes {
		s += n.ZeroLoadLatency(fi, packetFlits)
	}
	return s / float64(len(n.Routes))
}

// WeightedZeroLoadLatency averages ZeroLoadLatency weighted by flow
// bandwidth — the quantity a per-packet average (such as Simulate's
// AvgLatency) converges to at zero load, since packet counts are
// proportional to bandwidth.
func (n *Network) WeightedZeroLoadLatency(packetFlits int) float64 {
	var s, w float64
	for fi := range n.Routes {
		bw := n.Spec.Flows[fi].Bandwidth
		s += bw * n.ZeroLoadLatency(fi, packetFlits)
		w += bw
	}
	if w == 0 {
		return 0
	}
	return s / w
}

// utilizationError returns the worst absolute difference between the
// simulation's measured link utilization and the analytic value —
// used by tests to close the loop between the two.
func utilizationError(n *Network, sim *SimResult) float64 {
	worst := 0.0
	for li := range n.Links {
		analytic := n.linkUtilization(&n.Links[li])
		if d := math.Abs(analytic - sim.LinkUtilization[li]); d > worst {
			worst = d
		}
	}
	return worst
}
