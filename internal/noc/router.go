package noc

import "repro/internal/tech"

// RouterParams models the routers the synthesis inserts. Routers are
// identical under both interconnect models (the paper's Table III
// differences come from the link models), so a simple node-scaled
// energy model suffices.
type RouterParams struct {
	// EnergyPerBit is the switching energy (J) to move one bit
	// through the router (buffers + crossbar + arbitration).
	EnergyPerBit float64
	// LeakPerPort is the static power (W) per router port.
	LeakPerPort float64
	// AreaPerPort is the silicon area (m²) per router port.
	AreaPerPort float64
	// MaxPorts bounds the router radix the synthesis may build.
	MaxPorts int
	// Cycles is the pipeline depth of one router traversal.
	Cycles int
}

// DefaultRouterParams returns router parameters scaled to a
// technology. The 90nm anchor values (≈0.3 pJ/bit for a low-radix
// shallow-buffer wormhole router, ≈0.1 mm² for five ports) follow
// published 128-bit implementations; energy scales with C·V²
// (∝ feature·Vdd²), leakage follows the node's device off-current, and
// area follows feature².
func DefaultRouterParams(tc *tech.Technology) RouterParams {
	const (
		refFeature = 90e-9
		refVdd     = 1.2
		refEnergy  = 0.3e-12 // J/bit at the 90nm anchor
	)
	scaleE := (tc.Feature / refFeature) * (tc.Vdd * tc.Vdd) / (refVdd * refVdd)
	// Leakage per port: the off-current of ~400 unit-width nMOS
	// devices' worth of gates, which tracks HP/LP flavors naturally.
	leak := tc.Vdd * tc.NMOS.IOff * tc.UnitWidthN * 400
	return RouterParams{
		EnergyPerBit: refEnergy * scaleE,
		LeakPerPort:  leak,
		AreaPerPort:  2.5e6 * tc.Feature * tc.Feature,
		MaxPorts:     8,
		Cycles:       3,
	}
}

// Power returns the router's power (W) for a given throughput
// (bits/s) and port count.
func (p RouterParams) Power(throughput float64, ports int) float64 {
	return p.EnergyPerBit*throughput + p.LeakPerPort*float64(ports)
}

// Area returns the router's area (m²) for a port count.
func (p RouterParams) Area(ports int) float64 {
	return p.AreaPerPort * float64(ports)
}
