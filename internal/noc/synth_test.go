package noc

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/tech"
	"repro/internal/wire"
)

func synthMini(t *testing.T, lm LinkModel) *Network {
	t.Helper()
	net, err := Synthesize(miniSpec(), lm, SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestSynthesizeMiniBothModels(t *testing.T) {
	for _, lm := range []LinkModel{proposed90(t), original90(t)} {
		net := synthMini(t, lm)
		if err := net.Check(); err != nil {
			t.Fatalf("%s: %v", lm.Name(), err)
		}
		m := net.Evaluate()
		if m.TotalPower() <= 0 || m.Area <= 0 || m.MaxHops < 1 {
			t.Fatalf("%s: degenerate metrics %+v", lm.Name(), m)
		}
	}
}

func TestSynthesizeRejectsBadSpec(t *testing.T) {
	lm := proposed90(t)
	bad := miniSpec()
	bad.Flows[0].Bandwidth = -1
	if _, err := Synthesize(bad, lm, SynthOptions{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	over := miniSpec()
	over.Flows[0].Bandwidth = 1e15 // beyond link capacity
	if _, err := Synthesize(over, lm, SynthOptions{}); err == nil {
		t.Fatal("oversubscribed flow accepted")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	lm := proposed90(t)
	spec := DVOPD()
	a, err := Synthesize(spec, lm, SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(spec, lm, SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Routes, b.Routes) {
		t.Fatal("synthesis routes not deterministic")
	}
	ma, mb := a.Evaluate(), b.Evaluate()
	if ma != mb {
		t.Fatalf("metrics not deterministic: %+v vs %+v", ma, mb)
	}
}

func TestLongFlowsGetRelayRouters(t *testing.T) {
	// A flow much longer than the wire-length limit must be split.
	lm := proposed90(t)
	maxLen := lm.MaxLength()
	spec := &Spec{
		Name: "long", DataWidth: 128,
		Cores: []Core{
			{Name: "a", X: 0, Y: 0},
			{Name: "b", X: 2.5 * maxLen, Y: 0},
		},
		Flows: []Flow{{Src: "a", Dst: "b", Bandwidth: 1e9}},
	}
	net, err := Synthesize(spec, lm, SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if net.RouterCount() < 2 {
		t.Fatalf("expected ≥2 relay routers, got %d", net.RouterCount())
	}
	m := net.Evaluate()
	if m.MaxHops < 3 {
		t.Fatalf("expected ≥3 hops, got %d", m.MaxHops)
	}
	// Every link obeys the length limit.
	for li := range net.Links {
		if net.Links[li].Design.Length > maxLen*1.01 {
			t.Fatalf("link %d length %g exceeds limit %g", li, net.Links[li].Design.Length, maxLen)
		}
	}
}

func TestHopBudgetEnforced(t *testing.T) {
	lm := proposed90(t)
	maxLen := lm.MaxLength()
	spec := &Spec{
		Name: "toolong", DataWidth: 128,
		Cores: []Core{
			{Name: "a", X: 0, Y: 0},
			{Name: "b", X: 5 * maxLen, Y: 0},
		},
		Flows: []Flow{{Src: "a", Dst: "b", Bandwidth: 1e9}},
	}
	if _, err := Synthesize(spec, lm, SynthOptions{MaxHops: 2}); err == nil {
		t.Fatal("hop-budget violation accepted")
	}
}

func TestRelaySharingAcrossFlows(t *testing.T) {
	// Two parallel long flows along the same corridor should share
	// relay stations rather than each building its own chain.
	lm := proposed90(t)
	maxLen := lm.MaxLength()
	spec := &Spec{
		Name: "parallel", DataWidth: 128,
		Cores: []Core{
			{Name: "a1", X: 0, Y: 0},
			{Name: "a2", X: 0, Y: 10e-6},
			{Name: "b1", X: 2.2 * maxLen, Y: 0},
			{Name: "b2", X: 2.2 * maxLen, Y: 10e-6},
		},
		Flows: []Flow{
			{Src: "a1", Dst: "b1", Bandwidth: 1e9},
			{Src: "a2", Dst: "b2", Bandwidth: 1e9},
		},
	}
	net, err := Synthesize(spec, lm, SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Without sharing there would be 4+ relays (2 per flow); with
	// corridor snapping there should be at most 3.
	if rc := net.RouterCount(); rc > 3 {
		t.Fatalf("relays not shared: %d routers", rc)
	}
}

func TestMergeReducesPowerOnHubTraffic(t *testing.T) {
	// Many low-bandwidth flows into one hub: sharing buses through a
	// router should win, and the result must cost no more than the
	// unmerged star.
	tc := tech.MustLookup("90nm")
	lm, err := NewProposedModel(tc, 128, wire.SWSS)
	if err != nil {
		t.Fatal(err)
	}
	spec := &Spec{Name: "hub", DataWidth: 128}
	spec.Cores = append(spec.Cores, Core{Name: "hub", X: 0, Y: 0})
	for i := 0; i < 6; i++ {
		name := string(rune('a' + i))
		spec.Cores = append(spec.Cores, Core{
			Name: name,
			X:    4e-3 + float64(i%3)*0.4e-3,
			Y:    float64(i/3)*0.4e-3 - 0.2e-3,
		})
		// Low-bandwidth flows: these links are leakage-dominated,
		// the regime where sharing a corridor bus pays for a router.
		spec.Flows = append(spec.Flows, Flow{Src: name, Dst: "hub", Bandwidth: 0.1e9})
	}
	merged, err := Synthesize(spec, lm, SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	unmerged, err := Synthesize(spec, lm, SynthOptions{MaxMergeIters: -1})
	if err != nil {
		t.Fatal(err)
	}
	pm, pu := merged.Evaluate().TotalPower(), unmerged.Evaluate().TotalPower()
	if pm > pu*(1+1e-9) {
		t.Fatalf("merging increased power: %g vs %g", pm, pu)
	}
	if merged.RouterCount() == 0 {
		t.Fatal("expected the hub pattern to trigger at least one merge")
	}
}

func TestMergePreservesInvariants(t *testing.T) {
	// The full VPROC synthesis exercises many merges; Check() inside
	// Synthesize plus an explicit re-check here guard the rewiring.
	lm := proposed90(t)
	net, err := Synthesize(VPROC(), lm, SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Check(); err != nil {
		t.Fatal(err)
	}
	m := net.Evaluate()
	if m.Routers == 0 {
		t.Fatal("VPROC under the proposed model should need routers")
	}
	if m.AvgHops < 1 {
		t.Fatalf("avg hops %g", m.AvgHops)
	}
}

func TestNetworkCheckCatchesCorruption(t *testing.T) {
	lm := proposed90(t)
	base := func() *Network { return synthMini(t, lm) }

	n := base()
	n.Routes[0] = nil
	if n.Check() == nil {
		t.Error("unrouted flow accepted")
	}

	n = base()
	n.Links[n.Routes[0][0]].Design.Length *= 2
	if n.Check() == nil {
		t.Error("length/geometry mismatch accepted")
	}

	n = base()
	n.Links[n.Routes[0][0]].FlowIdx = nil
	if n.Check() == nil {
		t.Error("unregistered flow accepted")
	}

	n = base()
	n.Routes[0] = []int{999}
	if n.Check() == nil {
		t.Error("out-of-range link accepted")
	}

	n = base()
	// Route ending at the wrong core.
	r0 := n.Routes[0]
	n.Routes[0] = n.Routes[1]
	n.Routes[1] = r0
	if n.Check() == nil {
		t.Error("swapped routes accepted")
	}
}

// The headline Table III assertions, on the real test cases.
func TestTableIIITrends(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table III sweep in short mode")
	}
	for _, name := range []string{"90nm", "65nm", "45nm"} {
		tc := tech.MustLookup(name)
		for _, spec := range TestCases() {
			orig, err := NewOriginalModel(tc, spec.DataWidth, wire.SWSS)
			if err != nil {
				t.Fatal(err)
			}
			prop, err := NewProposedModel(tc, spec.DataWidth, wire.SWSS)
			if err != nil {
				t.Fatal(err)
			}
			no, err := Synthesize(spec, orig, SynthOptions{})
			if err != nil {
				t.Fatalf("%s/%s original: %v", name, spec.Name, err)
			}
			np, err := Synthesize(spec, prop, SynthOptions{})
			if err != nil {
				t.Fatalf("%s/%s proposed: %v", name, spec.Name, err)
			}
			mo, mp := no.Evaluate(), np.Evaluate()

			if ratio := mp.LinkDynamic / mo.LinkDynamic; ratio < 1.3 || ratio > 4 {
				t.Errorf("%s/%s: dynamic ratio %.2f outside Table III band (paper: up to ~3×)", name, spec.Name, ratio)
			}
			if mp.LinkLeakage <= mo.LinkLeakage {
				t.Errorf("%s/%s: proposed leakage not above original", name, spec.Name)
			}
			if mp.Area <= mo.Area {
				t.Errorf("%s/%s: proposed area not above original", name, spec.Name)
			}
			if mp.MaxHops < mo.MaxHops {
				t.Errorf("%s/%s: proposed hops %d below original %d", name, spec.Name, mp.MaxHops, mo.MaxHops)
			}
			if mp.AvgLatency < mo.AvgLatency {
				t.Errorf("%s/%s: proposed latency below original", name, spec.Name)
			}
		}
	}
}

// The paper's 65→45 nm dynamic-power increase (library Vdd 1.0→1.1V).
func TestDynamicPowerRises65To45(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in short mode")
	}
	for _, spec := range TestCases() {
		dyn := map[string]float64{}
		for _, name := range []string{"65nm", "45nm"} {
			tc := tech.MustLookup(name)
			prop, err := NewProposedModel(tc, spec.DataWidth, wire.SWSS)
			if err != nil {
				t.Fatal(err)
			}
			net, err := Synthesize(spec, prop, SynthOptions{})
			if err != nil {
				t.Fatal(err)
			}
			dyn[name] = net.Evaluate().LinkDynamic
		}
		if !(dyn["45nm"] > dyn["65nm"]) {
			t.Errorf("%s: dynamic power did not rise 65→45nm (%g vs %g)", spec.Name, dyn["65nm"], dyn["45nm"])
		}
	}
}

func TestMetricsTotalPower(t *testing.T) {
	m := Metrics{LinkDynamic: 1, LinkLeakage: 2, RouterPower: 3}
	if m.TotalPower() != 6 {
		t.Fatal("TotalPower")
	}
}

func TestInsertHelpers(t *testing.T) {
	r := []int{10, 20, 30}
	if got := insertAfter(append([]int(nil), r...), 1, 99); !reflect.DeepEqual(got, []int{10, 20, 99, 30}) {
		t.Fatalf("insertAfter: %v", got)
	}
	if got := insertBefore(append([]int(nil), r...), 1, 99); !reflect.DeepEqual(got, []int{10, 99, 20, 30}) {
		t.Fatalf("insertBefore: %v", got)
	}
}

func TestEvaluateWireLengthMatchesLinks(t *testing.T) {
	lm := proposed90(t)
	net := synthMini(t, lm)
	m := net.Evaluate()
	sum := 0.0
	for li := range net.Links {
		sum += net.Links[li].Design.Length
	}
	if math.Abs(m.WireLength-sum) > 1e-12 {
		t.Fatal("wire length mismatch")
	}
}

func BenchmarkSynthesizeDVOPD(b *testing.B) {
	tc := tech.MustLookup("90nm")
	lm, err := NewProposedModel(tc, 128, wire.SWSS)
	if err != nil {
		b.Fatal(err)
	}
	spec := DVOPD()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(spec, lm, SynthOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
