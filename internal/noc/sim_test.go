package noc

import (
	"errors"
	"math"
	"testing"
)

func simNet(t *testing.T) *Network {
	t.Helper()
	net, err := Synthesize(DVOPD(), proposed90(t), SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestSimulateDeliversTraffic(t *testing.T) {
	net := simNet(t)
	res, err := net.Simulate(SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketsInjected == 0 {
		t.Fatal("no packets injected — rates or window broken")
	}
	if res.PacketsDelivered != res.PacketsInjected {
		t.Fatalf("delivered %d of %d packets", res.PacketsDelivered, res.PacketsInjected)
	}
	if res.AvgLatency <= 0 || res.MaxLatency < res.AvgLatency {
		t.Fatalf("bad latency stats: avg %g max %g", res.AvgLatency, res.MaxLatency)
	}
}

func TestSimulateLatencyVsZeroLoad(t *testing.T) {
	net := simNet(t)
	cfg := SimConfig{}.withDefaults()
	res, err := net.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Per-packet averages are bandwidth-weighted by construction.
	zero := net.WeightedZeroLoadLatency(cfg.PacketFlits)
	if res.AvgLatency < zero*0.999 {
		t.Fatalf("simulated latency %g below zero-load bound %g", res.AvgLatency, zero)
	}
	// DVOPD's utilizations are tiny: queueing should add little.
	if res.AvgLatency > 3*zero {
		t.Fatalf("simulated latency %g implausibly above zero-load %g at low load", res.AvgLatency, zero)
	}
}

func TestSimulateUtilizationMatchesAnalytic(t *testing.T) {
	net := simNet(t)
	res, err := net.Simulate(SimConfig{Cycles: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if worst := utilizationError(net, res); worst > 0.05 {
		t.Fatalf("worst utilization mismatch %.3f between simulation and analytic model", worst)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	net := simNet(t)
	a, err := net.Simulate(SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Simulate(SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a.PacketsDelivered != b.PacketsDelivered || a.AvgLatency != b.AvgLatency {
		t.Fatal("simulation not deterministic")
	}
}

func TestSimulateDetectsOverload(t *testing.T) {
	// Force an oversubscribed situation by inflating a flow's rate
	// beyond capacity after synthesis (bypassing Check would catch
	// it, so build a tiny net and corrupt the spec copy).
	lm := proposed90(t)
	spec := &Spec{
		Name: "tight", DataWidth: 128,
		Cores: []Core{{Name: "a"}, {Name: "b", X: 1e-3}},
		Flows: []Flow{{Src: "a", Dst: "b", Bandwidth: 100e9}},
	}
	net, err := Synthesize(spec, lm, SynthOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Inflate demand beyond link capacity post-hoc.
	net.Spec.Flows[0].Bandwidth = 1.2 * float64(spec.DataWidth) * lm.Tech().Clock
	if _, err := net.Simulate(SimConfig{Cycles: 2000, Drain: 1000}); err == nil {
		t.Fatal("oversubscribed simulation should fail to drain")
	}
}

func TestSimulateBurstinessRaisesLatency(t *testing.T) {
	net := simNet(t)
	smooth, err := net.Simulate(SimConfig{Cycles: 40000})
	if err != nil {
		t.Fatal(err)
	}
	bursty, err := net.Simulate(SimConfig{Cycles: 40000, Burst: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Same offered rate, so all traffic still drains…
	if bursty.PacketsDelivered != bursty.PacketsInjected {
		t.Fatal("bursty traffic lost packets")
	}
	// …but back-to-back trains queue behind each other.
	if !(bursty.AvgLatency > smooth.AvgLatency) {
		t.Fatalf("burstiness did not raise latency: %g vs %g", bursty.AvgLatency, smooth.AvgLatency)
	}
	if !(bursty.MaxLatency > smooth.MaxLatency) {
		t.Fatalf("burstiness did not raise tail latency")
	}
}

func TestZeroLoadLatencyShape(t *testing.T) {
	net := simNet(t)
	cfg := SimConfig{}.withDefaults()
	for fi := range net.Routes {
		z := net.ZeroLoadLatency(fi, cfg.PacketFlits)
		hops := len(net.Routes[fi])
		period := 1 / net.Model.Tech().Clock
		want := float64(hops*cfg.PacketFlits+(hops-1)*net.Router.Cycles) * period
		if math.Abs(z-want) > 1e-15 {
			t.Fatalf("flow %d zero-load %g want %g", fi, z, want)
		}
	}
	if net.AvgZeroLoadLatency(cfg.PacketFlits) <= 0 {
		t.Fatal("bad average zero-load latency")
	}
}

func BenchmarkSimulateDVOPD(b *testing.B) {
	lm := proposed90(b)
	net, err := Synthesize(DVOPD(), lm, SynthOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Simulate(SimConfig{Cycles: 10000}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSimConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  SimConfig
		want error
	}{
		{"zero-is-default", SimConfig{}, nil},
		{"explicit-valid", SimConfig{Cycles: 100, Warmup: 10, PacketFlits: 4, Drain: 50, Burst: 2}, nil},
		{"negative-cycles", SimConfig{Cycles: -1}, ErrNegativeCycles},
		{"negative-warmup", SimConfig{Warmup: -5}, ErrNegativeWarmup},
		{"negative-flits", SimConfig{PacketFlits: -8}, ErrNegativePacketFlits},
		{"negative-drain", SimConfig{Drain: -100}, ErrNegativeDrain},
		{"negative-burst", SimConfig{Burst: -2}, ErrNegativeBurst},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == nil {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestSimulateRejectsNegativeConfig(t *testing.T) {
	net := simNet(t)
	_, err := net.Simulate(SimConfig{Burst: -1})
	if !errors.Is(err, ErrNegativeBurst) {
		t.Fatalf("Simulate accepted a negative burst: %v", err)
	}
	_, err = net.Simulate(SimConfig{Cycles: -20000})
	if !errors.Is(err, ErrNegativeCycles) {
		t.Fatalf("Simulate accepted negative cycles: %v", err)
	}
}
