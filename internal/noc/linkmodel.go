package noc

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/buffering"
	"repro/internal/model"
	"repro/internal/tech"
	"repro/internal/wire"
)

// signalActivity is the toggle probability of a bus bit during an
// occupied cycle; link dynamic power scales as utilization ×
// signalActivity.
const signalActivity = 0.5

// timingMargin is the fraction of the clock period a link's wire
// delay may consume (the remainder covers router clock-to-q and setup).
const timingMargin = 0.8

// LinkDesign is a feasible buffered-bus implementation of one link.
type LinkDesign struct {
	// Length is the routed (Manhattan) length in meters.
	Length float64
	// Layer records the routing layer ("global" or "intermediate"):
	// links are assigned to the lowest layer that meets timing, as a
	// physical-design flow would, keeping global tracks for the
	// links that need them.
	Layer string
	// Delay is the per-traversal wire delay (s) as estimated by the
	// producing model.
	Delay float64
	// DynFull is the dynamic power (W) of the whole bus at 100%
	// utilization.
	DynFull float64
	// Leakage is the bus repeater leakage (W), utilization-
	// independent.
	Leakage float64
	// Area is the silicon area (m²): wiring plus repeaters.
	Area float64
	// N and Size record the buffering solution.
	N    int
	Size float64
}

// DynAt returns the dynamic power at the given utilization ∈ [0,1].
func (d LinkDesign) DynAt(util float64) float64 {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	return util * d.DynFull
}

// LinkModel designs and costs buffered links; implementations embody
// the "original" and "proposed" interconnect models of Table III.
//
// Implementations must be safe for concurrent Design/MaxLength/Tech
// calls after construction: the synthesizer fans candidate
// evaluations out across a worker pool and DesignCache shares one
// instance between goroutines. Every implementation in this package
// (ProposedModel, OriginalModel, ScaledModel, DesignCache) satisfies
// this — their state is immutable once built.
type LinkModel interface {
	// Name identifies the model in reports.
	Name() string
	// Tech returns the underlying technology.
	Tech() *tech.Technology
	// Design produces a buffered-link implementation for the given
	// routed length, or an error if no feasible design meets the
	// clock constraint.
	Design(length float64) (LinkDesign, error)
	// MaxLength returns the longest link length (m) the model deems
	// feasible at the node's clock — the wire-length constraint the
	// synthesis algorithm enforces.
	MaxLength() float64
}

// maxLengthSearch binary-searches the feasibility frontier shared by
// both implementations.
func maxLengthSearch(design func(float64) (LinkDesign, error), lo, hi float64) float64 {
	// Grow hi until infeasible (or absurd).
	for hi < 1 { // 1 meter: unreachable in practice
		if _, err := design(hi); err != nil {
			break
		}
		hi *= 2
	}
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if _, err := design(mid); err == nil {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// ProposedModel implements LinkModel with the paper's calibrated
// predictive models and the weighted delay–power buffering optimizer.
type ProposedModel struct {
	tc     *tech.Technology
	coeffs *model.Coefficients
	style  wire.Style
	bits   int
	// powerWeight is the buffering objective's power emphasis.
	powerWeight float64
	maxLen      float64
}

// NewProposedModel builds the proposed-model link designer for a
// technology, using the embedded Table I coefficients.
func NewProposedModel(tc *tech.Technology, bits int, style wire.Style) (*ProposedModel, error) {
	coeffs, err := model.Default(tc.Name)
	if err != nil {
		return nil, err
	}
	if bits < 1 {
		return nil, fmt.Errorf("noc: bad link width %d", bits)
	}
	m := &ProposedModel{tc: tc, coeffs: coeffs, style: style, bits: bits, powerWeight: 0.5}
	m.maxLen = maxLengthSearch(m.design, 10e-6, 2e-3)
	return m, nil
}

// Name implements LinkModel.
func (m *ProposedModel) Name() string { return "proposed" }

// Tech implements LinkModel.
func (m *ProposedModel) Tech() *tech.Technology { return m.tc }

// MaxLength implements LinkModel.
func (m *ProposedModel) MaxLength() float64 { return m.maxLen }

// Design implements LinkModel.
func (m *ProposedModel) Design(length float64) (LinkDesign, error) { return m.design(length) }

// DesignGlobal designs the link on the global layer regardless of the
// usual lowest-layer-first assignment — for wrappers (ScaledModel)
// whose tighter budgets invalidate an intermediate-layer choice.
func (m *ProposedModel) DesignGlobal(length float64) (LinkDesign, error) {
	return m.designOn(m.tc.Global, "global", length)
}

func (m *ProposedModel) design(length float64) (LinkDesign, error) {
	if length <= 0 {
		return LinkDesign{}, fmt.Errorf("noc: non-positive link length %g", length)
	}
	// Layer assignment: lowest layer that meets timing.
	if d, err := m.designOn(m.tc.Intermediate, "intermediate", length); err == nil {
		return d, nil
	}
	return m.designOn(m.tc.Global, "global", length)
}

func (m *ProposedModel) designOn(layer tech.WireLayer, layerName string, length float64) (LinkDesign, error) {
	seg := wire.NewSegmentOn(m.tc, layer, length, m.style)
	opt := buffering.Options{
		Coeffs:      m.coeffs,
		Power:       model.PowerParams{Activity: signalActivity, Freq: m.tc.Clock},
		PowerWeight: m.powerWeight,
	}
	des, err := buffering.Optimize(seg, opt)
	if err != nil {
		return LinkDesign{}, err
	}
	budget := timingMargin / m.tc.Clock
	if des.Delay > budget {
		// The power-weighted design missed timing; fall back to pure
		// delay-optimal buffering before declaring the length
		// infeasible.
		des, err = buffering.DelayOptimal(seg, opt)
		if err != nil {
			return LinkDesign{}, err
		}
		if des.Delay > budget {
			return LinkDesign{}, fmt.Errorf("noc: %gmm link delay %.0fps exceeds budget %.0fps", length*1e3, des.Delay*1e12, budget*1e12)
		}
	}
	spec := model.LineSpec{Kind: des.Kind, Size: des.Size, N: des.N, Segment: seg, InputSlew: 300e-12}
	pow, err := m.coeffs.LinePower(spec, model.PowerParams{Activity: signalActivity, Freq: m.tc.Clock})
	if err != nil {
		return LinkDesign{}, err
	}
	area, err := m.coeffs.LineArea(spec, m.bits)
	if err != nil {
		return LinkDesign{}, err
	}
	return LinkDesign{
		Length:  length,
		Layer:   layerName,
		Delay:   des.Delay,
		DynFull: pow.Dynamic * float64(m.bits),
		Leakage: pow.Leakage * float64(m.bits),
		Area:    area.Total(),
		N:       des.N,
		Size:    des.Size,
	}, nil
}

// OriginalModel implements LinkModel with the original COSI-OCC cost
// model: Bakoglu delay with uncalibrated device parameters,
// parallel-plate capacitance, no coupling, classic wire resistance,
// Bakoglu delay-optimal buffering, and the simplistic area
// assumptions.
type OriginalModel struct {
	tc     *tech.Technology
	style  wire.Style
	bits   int
	maxLen float64
}

// NewOriginalModel builds the original-model link designer.
func NewOriginalModel(tc *tech.Technology, bits int, style wire.Style) (*OriginalModel, error) {
	if bits < 1 {
		return nil, fmt.Errorf("noc: bad link width %d", bits)
	}
	m := &OriginalModel{tc: tc, style: style, bits: bits}
	m.maxLen = maxLengthSearch(m.design, 10e-6, 2e-3)
	return m, nil
}

// Name implements LinkModel.
func (m *OriginalModel) Name() string { return "original" }

// Tech implements LinkModel.
func (m *OriginalModel) Tech() *tech.Technology { return m.tc }

// MaxLength implements LinkModel.
func (m *OriginalModel) MaxLength() float64 { return m.maxLen }

// Design implements LinkModel.
func (m *OriginalModel) Design(length float64) (LinkDesign, error) { return m.design(length) }

// DesignGlobal designs the link on the global layer regardless of the
// usual lowest-layer-first assignment.
func (m *OriginalModel) DesignGlobal(length float64) (LinkDesign, error) {
	return m.designOn(m.tc.Global, "global", length)
}

func (m *OriginalModel) design(length float64) (LinkDesign, error) {
	if length <= 0 {
		return LinkDesign{}, fmt.Errorf("noc: non-positive link length %g", length)
	}
	if d, err := m.designOn(m.tc.Intermediate, "intermediate", length); err == nil {
		return d, nil
	}
	return m.designOn(m.tc.Global, "global", length)
}

func (m *OriginalModel) designOn(layer tech.WireLayer, layerName string, length float64) (LinkDesign, error) {
	seg := wire.NewSegmentOn(m.tc, layer, length, m.style)
	budget := timingMargin / m.tc.Clock

	// The original flow inserts the *minimum* buffering its
	// (optimistic) delay model says meets the clock constraint —
	// the paper's "number and size of the repeaters that are
	// optimistically estimated by the original model". Smallest
	// repeater count first, then smallest size.
	var (
		spec  baseline.LineSpec
		delay float64
		found bool
	)
search:
	for n := 1; n <= 64; n++ {
		for _, size := range []float64{4, 6, 8, 12, 16, 20, 30, 40} {
			cand := baseline.LineSpec{Size: size, N: n, Segment: seg}
			d, err := baseline.LineDelay(baseline.Bakoglu, cand)
			if err != nil {
				return LinkDesign{}, err
			}
			if d <= budget {
				spec, delay, found = cand, d, true
				break search
			}
		}
	}
	if !found {
		return LinkDesign{}, fmt.Errorf("noc: %gmm link cannot meet budget %.0fps under original model", length*1e3, budget*1e12)
	}
	n, size := spec.N, spec.Size
	dyn, leak, err := baseline.LinePower(baseline.Bakoglu, spec, signalActivity, m.tc.Clock)
	if err != nil {
		return LinkDesign{}, err
	}
	area, err := baseline.LineArea(spec, m.bits)
	if err != nil {
		return LinkDesign{}, err
	}
	return LinkDesign{
		Length:  length,
		Layer:   layerName,
		Delay:   delay,
		DynFull: dyn * float64(m.bits),
		Leakage: leak * float64(m.bits),
		Area:    area,
		N:       n,
		Size:    size,
	}, nil
}

// statically assert interface satisfaction.
var (
	_ LinkModel = (*ProposedModel)(nil)
	_ LinkModel = (*OriginalModel)(nil)
)

// utilization converts a bandwidth demand into link utilization given
// the link's raw capacity width·f.
func utilization(bandwidth float64, bits int, clock float64) float64 {
	return math.Min(1, bandwidth/(float64(bits)*clock))
}
