package noc

import (
	"fmt"

	"repro/internal/tech"
)

// ScaledModel wraps a LinkModel and scales its delay and power
// predictions — the instrument for sensitivity studies: how much do
// the synthesized architecture and its reported metrics move when the
// interconnect model is off by a given factor? The wire-length
// feasibility frontier is re-derived from the scaled delay, so
// perturbations propagate into *decisions*, not just reported numbers.
//
// DelayScale values below 1 are clamped by the base model's own
// frontier (the base cannot design links it believes infeasible), so
// optimism studies saturate there; pessimism (DelayScale ≥ 1) is
// fully represented.
type ScaledModel struct {
	base                   LinkModel
	delayScale, powerScale float64
	maxLen                 float64
}

// NewScaledModel wraps base with the given scale factors (must be
// positive).
func NewScaledModel(base LinkModel, delayScale, powerScale float64) (*ScaledModel, error) {
	if delayScale <= 0 || powerScale <= 0 {
		return nil, fmt.Errorf("noc: non-positive scale factors %g/%g", delayScale, powerScale)
	}
	m := &ScaledModel{base: base, delayScale: delayScale, powerScale: powerScale}
	m.maxLen = maxLengthSearch(m.design, 10e-6, 2e-3)
	return m, nil
}

// Name implements LinkModel.
func (m *ScaledModel) Name() string {
	return fmt.Sprintf("%s×(d%.2f,p%.2f)", m.base.Name(), m.delayScale, m.powerScale)
}

// Tech implements LinkModel.
func (m *ScaledModel) Tech() *tech.Technology { return m.base.Tech() }

// MaxLength implements LinkModel.
func (m *ScaledModel) MaxLength() float64 { return m.maxLen }

// Design implements LinkModel.
func (m *ScaledModel) Design(length float64) (LinkDesign, error) { return m.design(length) }

// globalDesigner is implemented by base models that can be forced
// onto the global layer. The scaled wrapper needs it: the base's
// lowest-layer-first assignment uses the *unscaled* budget, so a link
// whose intermediate-layer choice misses the scaled budget may still
// be feasible on the global layer.
type globalDesigner interface {
	DesignGlobal(length float64) (LinkDesign, error)
}

func (m *ScaledModel) design(length float64) (LinkDesign, error) {
	budget := timingMargin / m.base.Tech().Clock
	scaleCheck := func(d LinkDesign) (LinkDesign, bool) {
		d.Delay *= m.delayScale
		d.DynFull *= m.powerScale
		d.Leakage *= m.powerScale
		return d, d.Delay <= budget
	}
	d, err := m.base.Design(length)
	if err == nil {
		if sd, ok := scaleCheck(d); ok {
			return sd, nil
		}
		// The base's layer choice missed the scaled budget; escalate
		// to the global layer if the base supports it.
		if gd, ok := m.base.(globalDesigner); ok && d.Layer != "global" {
			if d2, err2 := gd.DesignGlobal(length); err2 == nil {
				if sd, ok := scaleCheck(d2); ok {
					return sd, nil
				}
			}
		}
		return LinkDesign{}, fmt.Errorf("noc: scaled %gmm link exceeds budget %.0fps", length*1e3, budget*1e12)
	}
	return LinkDesign{}, err
}

var _ LinkModel = (*ScaledModel)(nil)
