package noc

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT renders the synthesized topology as a Graphviz digraph:
// cores as boxes, routers as circles, links as edges annotated with
// length and carried bandwidth. Positions are embedded (in mm) so
// `neato -n` reproduces the floorplan.
func (n *Network) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", n.Spec.Name)
	fmt.Fprintf(bw, "  // model=%s tech=%s\n", n.Model.Name(), n.Model.Tech().Name)
	fmt.Fprintf(bw, "  node [fontsize=10];\n")
	for i := range n.Nodes {
		nd := &n.Nodes[i]
		shape := "box"
		if nd.Kind == RouterNode {
			shape = "circle"
		}
		fmt.Fprintf(bw, "  %q [shape=%s, pos=\"%.3f,%.3f!\"];\n",
			nd.Name, shape, nd.X*1e3, nd.Y*1e3)
	}
	for li := range n.Links {
		l := &n.Links[li]
		fmt.Fprintf(bw, "  %q -> %q [label=\"%.2fmm/%.1fGbps\"];\n",
			n.node(l.From).Name, n.node(l.To).Name,
			l.Design.Length*1e3, n.linkBandwidth(l)/1e9)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// Summary returns a short human-readable description of the topology.
func (n *Network) Summary() string {
	m := n.Evaluate()
	return fmt.Sprintf("%s/%s/%s: %d links, %d routers, %.1f mm wire, %.2f mW, max %d hops",
		n.Spec.Name, n.Model.Tech().Name, n.Model.Name(),
		m.Links, m.Routers, m.WireLength*1e3, m.TotalPower()*1e3, m.MaxHops)
}
