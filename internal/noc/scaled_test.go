package noc

import (
	"math"
	"strings"
	"testing"
)

func TestScaledModelBasics(t *testing.T) {
	base := proposed90(t)
	m, err := NewScaledModel(base, 1.5, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.Name(), "proposed") {
		t.Fatalf("name %q should reference the base", m.Name())
	}
	if m.Tech() != base.Tech() {
		t.Fatal("tech passthrough")
	}
	d, err := m.Design(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := base.Design(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Delay-1.5*bd.Delay) > 1e-18 {
		t.Fatalf("delay not scaled: %g vs %g", d.Delay, bd.Delay)
	}
	if math.Abs(d.DynFull-2*bd.DynFull) > 1e-12 || math.Abs(d.Leakage-2*bd.Leakage) > 1e-12 {
		t.Fatal("power not scaled")
	}
}

func TestScaledModelShrinksFrontier(t *testing.T) {
	base := proposed90(t)
	m, err := NewScaledModel(base, 2.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !(m.MaxLength() < base.MaxLength()) {
		t.Fatalf("2× delay scale did not shrink frontier: %g vs %g", m.MaxLength(), base.MaxLength())
	}
	// Beyond the scaled frontier the scaled model must reject.
	if _, err := m.Design(m.MaxLength() * 1.1); err == nil {
		t.Fatal("beyond-frontier design accepted")
	}
	// Identity scale preserves the frontier (within search tolerance).
	id, err := NewScaledModel(base, 1.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(id.MaxLength()-base.MaxLength()) / base.MaxLength(); rel > 0.02 {
		t.Fatalf("identity scale moved frontier by %.2f%%", rel*100)
	}
}

func TestScaledModelValidation(t *testing.T) {
	base := proposed90(t)
	if _, err := NewScaledModel(base, 0, 1); err == nil {
		t.Fatal("zero delay scale accepted")
	}
	if _, err := NewScaledModel(base, 1, -1); err == nil {
		t.Fatal("negative power scale accepted")
	}
}
