package noc

import (
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// TestCacheComputeTransientFaultRetried: a transient compute fault is
// retried with backoff inside one lookup, the wrapped model is
// consulted exactly once, and the eventual success is what gets
// memoized.
func TestCacheComputeTransientFaultRetried(t *testing.T) {
	base := newCountingModel(proposed90(t))
	c := NewDesignCache(base)
	defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
		"noc.cache.compute": {Kind: faultinject.Transient, Times: 2},
	}})()

	retriesBefore := obs.Snapshot()["noc.design_cache.retries"]
	const length = 1e-3 // bucket q = 1000
	// The first two attempts fire the transient fault; the third
	// succeeds. The two inter-attempt sleeps are deterministic, so the
	// lookup must take at least their sum.
	minSleep := retryBackoff(1000, 0) + retryBackoff(1000, 1)
	start := time.Now()
	d, err := c.Design(length)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("lookup failed despite retries: %v", err)
	}
	if d.Length == 0 {
		t.Fatal("retried lookup returned a zero design")
	}
	if got := faultinject.Hits("noc.cache.compute"); got != 3 {
		t.Fatalf("fault point hit %d times, want 3 (fail, fail, succeed)", got)
	}
	if got := base.totalCalls(); got != 1 {
		t.Fatalf("underlying model called %d times, want 1", got)
	}
	if got := obs.Snapshot()["noc.design_cache.retries"] - retriesBefore; got != 2 {
		t.Fatalf("retry counter moved by %d, want 2", got)
	}
	if elapsed < minSleep {
		t.Fatalf("lookup took %v, want ≥ %v of backoff", elapsed, minSleep)
	}

	// The success is memoized: the next lookup is a pure hit that
	// neither re-runs the fault point nor the model.
	if _, err := c.Design(length); err != nil {
		t.Fatal(err)
	}
	if got := faultinject.Hits("noc.cache.compute"); got != 3 {
		t.Fatalf("cache hit re-ran the computation (%d fault hits)", got)
	}
}

// TestCacheComputeTransientNeverMemoized: a transient fault that
// survives every retry is returned to the caller but never memoized —
// the next lookup recomputes and succeeds.
func TestCacheComputeTransientNeverMemoized(t *testing.T) {
	base := newCountingModel(proposed90(t))
	c := NewDesignCache(base)
	// maxComputeRetries re-attempts after the initial try = 4 hits per
	// lookup; firing on the first 4 hits exhausts one whole lookup.
	defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
		"noc.cache.compute": {Kind: faultinject.Transient, Times: maxComputeRetries + 1},
	}})()

	_, err := c.Design(1e-3)
	if !faultinject.IsTransient(err) {
		t.Fatalf("exhausted retries returned %v, want a transient fault", err)
	}
	if c.Len() != 0 {
		t.Fatalf("transient fault memoized (%d entries)", c.Len())
	}
	if got := base.totalCalls(); got != 0 {
		t.Fatalf("model reached despite faults (%d calls)", got)
	}

	// The fault budget is spent; a fresh lookup recovers.
	d, err := c.Design(1e-3)
	if err != nil {
		t.Fatalf("lookup after transient exhaustion: %v", err)
	}
	if d.Length == 0 {
		t.Fatal("recovered lookup returned a zero design")
	}
	if c.Len() != 1 {
		t.Fatalf("recovered design not memoized (%d entries)", c.Len())
	}
}

// TestCacheComputePermanentFaultMemoized: a permanent injected error
// is treated like any model failure — memoized, never retried.
func TestCacheComputePermanentFaultMemoized(t *testing.T) {
	base := newCountingModel(proposed90(t))
	c := NewDesignCache(base)
	defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
		"noc.cache.compute": {Kind: faultinject.Error, Times: 1},
	}})()

	if _, err := c.Design(1e-3); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("got %v, want the injected error", err)
	}
	if got := faultinject.Hits("noc.cache.compute"); got != 1 {
		t.Fatalf("permanent fault retried (%d hits)", got)
	}
	// Memoized: the second lookup returns the same error without
	// recomputing, exactly like a permanently infeasible length.
	if _, err := c.Design(1e-3); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("memoized error lost: %v", err)
	}
	if got := faultinject.Hits("noc.cache.compute"); got != 1 {
		t.Fatalf("memoized error recomputed (%d hits)", got)
	}
	if got := base.totalCalls(); got != 0 {
		t.Fatalf("model reached despite fault (%d calls)", got)
	}
}

// TestCacheComputeInjectedCancellationNotMemoized: a Cancel-kind fault
// looks like a caller's dying context and must leave the entry
// undecided, same as the real cancellation path.
func TestCacheComputeInjectedCancellationNotMemoized(t *testing.T) {
	base := newCountingModel(proposed90(t))
	c := NewDesignCache(base)
	defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
		"noc.cache.compute": {Kind: faultinject.Cancel, Times: 1},
	}})()

	if _, err := c.Design(1e-3); err == nil {
		t.Fatal("injected cancellation not surfaced")
	}
	if c.Len() != 0 {
		t.Fatalf("injected cancellation memoized (%d entries)", c.Len())
	}
	if _, err := c.Design(1e-3); err != nil {
		t.Fatalf("entry poisoned by injected cancellation: %v", err)
	}
}
