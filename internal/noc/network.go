package noc

import (
	"fmt"
	"math"
)

// NodeKind distinguishes specification cores from synthesized routers.
type NodeKind int

const (
	// CoreNode is an endpoint from the specification.
	CoreNode NodeKind = iota
	// RouterNode was inserted by the synthesis.
	RouterNode
)

// Node is a network vertex.
type Node struct {
	ID   int
	Kind NodeKind
	// Name is the core name for CoreNode, a generated label for
	// routers.
	Name string
	X, Y float64
}

// Link is a directed buffered bus between two nodes.
type Link struct {
	From, To int
	Design   LinkDesign
	// FlowIdx lists the indices (into Spec.Flows) of flows routed
	// over this link.
	FlowIdx []int
}

// Network is a synthesized topology with its routing.
type Network struct {
	Spec   *Spec
	Model  LinkModel
	Router RouterParams
	Nodes  []Node
	Links  []Link
	// Routes maps each flow index to its ordered path of link
	// indices.
	Routes [][]int
}

// node returns the node with the given ID (IDs are slice indices).
func (n *Network) node(id int) *Node { return &n.Nodes[id] }

// linkBandwidth sums the bandwidth of all flows on a link.
func (n *Network) linkBandwidth(l *Link) float64 {
	bw := 0.0
	for _, fi := range l.FlowIdx {
		bw += n.Spec.Flows[fi].Bandwidth
	}
	return bw
}

// linkUtilization returns the link's capacity utilization in [0,1+].
func (n *Network) linkUtilization(l *Link) float64 {
	return n.linkBandwidth(l) / (float64(n.Spec.DataWidth) * n.Model.Tech().Clock)
}

// ports counts the degree (in + out links) of a node.
func (n *Network) ports(id int) int {
	p := 0
	for i := range n.Links {
		if n.Links[i].From == id || n.Links[i].To == id {
			p++
		}
	}
	return p
}

// RouterCount returns the number of synthesized routers.
func (n *Network) RouterCount() int {
	c := 0
	for i := range n.Nodes {
		if n.Nodes[i].Kind == RouterNode {
			c++
		}
	}
	return c
}

// Check validates the structural invariants of a synthesized network:
// every flow has a connected route from its source to its destination,
// link lengths match node geometry, capacities are respected, and
// router radix stays within bounds. Synthesis output must always pass.
func (n *Network) Check() error {
	if len(n.Routes) != len(n.Spec.Flows) {
		return fmt.Errorf("noc: %d routes for %d flows", len(n.Routes), len(n.Spec.Flows))
	}
	for fi, route := range n.Routes {
		f := n.Spec.Flows[fi]
		if len(route) == 0 {
			return fmt.Errorf("noc: flow %d (%s→%s) unrouted", fi, f.Src, f.Dst)
		}
		src, err := n.Spec.Core(f.Src)
		if err != nil {
			return err
		}
		dst, err := n.Spec.Core(f.Dst)
		if err != nil {
			return err
		}
		cur := -1
		for hop, li := range route {
			if li < 0 || li >= len(n.Links) {
				return fmt.Errorf("noc: flow %d references link %d", fi, li)
			}
			l := &n.Links[li]
			if hop == 0 {
				from := n.node(l.From)
				if from.Kind != CoreNode || from.Name != src.Name {
					return fmt.Errorf("noc: flow %d starts at %q, want %q", fi, from.Name, src.Name)
				}
			} else if l.From != cur {
				return fmt.Errorf("noc: flow %d path disconnected at hop %d", fi, hop)
			}
			found := false
			for _, idx := range l.FlowIdx {
				if idx == fi {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("noc: flow %d not registered on link %d", fi, li)
			}
			cur = l.To
		}
		last := n.node(cur)
		if last.Kind != CoreNode || last.Name != dst.Name {
			return fmt.Errorf("noc: flow %d ends at %q, want %q", fi, last.Name, dst.Name)
		}
	}
	for li := range n.Links {
		l := &n.Links[li]
		want := math.Abs(n.node(l.From).X-n.node(l.To).X) + math.Abs(n.node(l.From).Y-n.node(l.To).Y)
		if want == 0 {
			return fmt.Errorf("noc: link %d has coincident endpoints", li)
		}
		// Tolerance covers the synthesis design cache's length
		// quantization.
		if math.Abs(l.Design.Length-want) > 0.51*lengthQuantum+1e-6*want {
			return fmt.Errorf("noc: link %d length %g != geometry %g", li, l.Design.Length, want)
		}
		if u := n.linkUtilization(l); u > 1+1e-9 {
			return fmt.Errorf("noc: link %d oversubscribed (%.0f%%)", li, u*100)
		}
		if len(l.FlowIdx) == 0 {
			return fmt.Errorf("noc: link %d carries no flows", li)
		}
	}
	for id := range n.Nodes {
		if n.Nodes[id].Kind == RouterNode {
			if p := n.ports(id); p > n.Router.MaxPorts {
				return fmt.Errorf("noc: router %s radix %d exceeds %d", n.Nodes[id].Name, p, n.Router.MaxPorts)
			}
			if p := n.ports(id); p < 2 {
				return fmt.Errorf("noc: router %s dangling (radix %d)", n.Nodes[id].Name, p)
			}
		}
	}
	return nil
}

// Metrics is the evaluation the synthesis tool reports — the rows of
// the paper's Table III.
type Metrics struct {
	// LinkDynamic and LinkLeakage are the interconnect power
	// components (W).
	LinkDynamic, LinkLeakage float64
	// RouterPower is the total router power (W).
	RouterPower float64
	// Area is the total silicon area (m²): links plus routers.
	Area float64
	// LinkArea is the link-only component of Area.
	LinkArea float64
	// MaxHops and AvgHops count links traversed per flow.
	MaxHops int
	AvgHops float64
	// AvgLatency is the mean flow latency (s): per hop, one link
	// cycle plus the router pipeline.
	AvgLatency float64
	// Routers and Links count the topology elements.
	Routers, Links int
	// WireLength is the total routed link length (m).
	WireLength float64
}

// TotalPower returns all power components summed.
func (m Metrics) TotalPower() float64 { return m.LinkDynamic + m.LinkLeakage + m.RouterPower }

// Evaluate computes the reported metrics of the network under its own
// link model — exactly what the synthesis tool believes, which is the
// number Table III compares across models.
func (n *Network) Evaluate() Metrics {
	var m Metrics
	m.Links = len(n.Links)
	m.Routers = n.RouterCount()

	for li := range n.Links {
		l := &n.Links[li]
		// DynFull already includes the per-occupied-cycle toggle
		// probability; utilization scales it to the carried traffic.
		util := n.linkUtilization(l)
		m.LinkDynamic += l.Design.DynAt(util)
		m.LinkLeakage += l.Design.Leakage
		m.LinkArea += l.Design.Area
		m.WireLength += l.Design.Length
	}
	m.Area = m.LinkArea

	for id := range n.Nodes {
		if n.Nodes[id].Kind != RouterNode {
			continue
		}
		ports := n.ports(id)
		throughput := 0.0
		for li := range n.Links {
			if n.Links[li].From == id {
				throughput += n.linkBandwidth(&n.Links[li])
			}
		}
		m.RouterPower += n.Router.Power(throughput, ports)
		m.Area += n.Router.Area(ports)
	}

	period := 1 / n.Model.Tech().Clock
	var totLat float64
	for _, route := range n.Routes {
		hops := len(route)
		if hops > m.MaxHops {
			m.MaxHops = hops
		}
		m.AvgHops += float64(hops)
		routers := hops - 1 // intermediate nodes are routers
		if routers < 0 {
			routers = 0
		}
		totLat += period * float64(hops+routers*n.Router.Cycles)
	}
	if len(n.Routes) > 0 {
		m.AvgHops /= float64(len(n.Routes))
		m.AvgLatency = totLat / float64(len(n.Routes))
	}
	return m
}
