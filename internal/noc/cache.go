package noc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// lengthQuantum is the design-cache granularity: link lengths are
// quantized to 1 µm buckets before designing, because the greedy merge
// loop re-designs near-identical lengths constantly and a buffered
// global link's solution is insensitive below that scale.
const lengthQuantum = 1e-6

// designCacheShards spreads the cache over independently locked
// shards so concurrent candidate evaluations do not serialize on one
// mutex. Sixteen shards keeps contention negligible up to the core
// counts the worker pool uses while costing nothing at small sizes.
const designCacheShards = 16

// Design-cache observability (see internal/obs).
var (
	metCacheHits    = obs.NewCounter("noc.design_cache.hits")
	metCacheMisses  = obs.NewCounter("noc.design_cache.misses")
	metCacheRetries = obs.NewCounter("noc.design_cache.retries")
	metDesigns      = obs.NewCounter("noc.designs_computed")
)

// Retry policy for transient compute failures (see computeRetrying):
// up to maxComputeRetries re-attempts with exponential backoff from
// computeRetryBase, each sleep jittered deterministically by the
// (bucket, attempt) hash so a retry storm across shards never
// synchronizes.
const (
	maxComputeRetries = 3
	computeRetryBase  = time.Millisecond
)

// DesignCache is a concurrency-safe memoizing wrapper around a
// LinkModel, keyed by the quantized link length. The technology,
// wire style, bus width, and buffering objective are all fixed
// properties of the wrapped model, so one cache instance corresponds
// to exactly one (tech, style, width, buffering-options) tuple; share
// a single DesignCache across a synthesis run — or several runs over
// the same model — to reuse every design.
//
// All methods are safe for concurrent use. Each distinct length is
// designed at most once even under concurrent callers (duplicate
// requests block on the first computation rather than recomputing),
// which requires the wrapped model's Design to be safe for concurrent
// calls — true of every implementation in this package. Successful
// designs and permanent failures are memoized; cancellation and
// deadline errors are not, so a lookup aborted by a dying context
// never poisons the entry for later callers sharing the cache — the
// next lookup simply retries the computation.
type DesignCache struct {
	LinkModel
	shards [designCacheShards]designShard
}

type designShard struct {
	mu sync.Mutex
	m  map[int64]*designEntry
}

// designEntry holds one bucket's design. The entry mutex doubles as
// the computation lock: the first caller computes while holding it and
// duplicates block behind it, the same single-computation guarantee a
// sync.Once would give — but, unlike a Once, an entry left undecided
// by a transient failure can be retried by the next caller.
type designEntry struct {
	mu   sync.Mutex
	done bool
	d    LinkDesign
	err  error
}

// NewDesignCache wraps a LinkModel with a sharded design cache.
// Wrapping an existing *DesignCache returns it unchanged, so callers
// can defensively wrap without stacking caches.
func NewDesignCache(lm LinkModel) *DesignCache {
	if c, ok := lm.(*DesignCache); ok {
		return c
	}
	c := &DesignCache{LinkModel: lm}
	for i := range c.shards {
		c.shards[i].m = make(map[int64]*designEntry)
	}
	return c
}

// ctxDesigner is the optional context-aware design hook: a wrapped
// model implementing it receives the caller's context (another
// *DesignCache does, as do test doubles that watch for cancellation).
type ctxDesigner interface {
	DesignCtx(ctx context.Context, length float64) (LinkDesign, error)
}

// designVia dispatches to the wrapped model's context-aware Design
// when it has one.
func designVia(ctx context.Context, lm LinkModel, length float64) (LinkDesign, error) {
	if cd, ok := lm.(ctxDesigner); ok {
		return cd.DesignCtx(ctx, length)
	}
	return lm.Design(length)
}

// transientErr reports whether a design error reflects the caller's
// context rather than the design problem itself. Such errors must not
// be memoized: the next caller, with a live context, may well succeed.
func transientErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		faultinject.IsTransient(err)
}

// computeRetrying runs one bucket's design computation, retrying
// transient (retryable, non-context) failures with jittered
// exponential backoff. Context errors are returned immediately — the
// caller's deadline owns those — and a transient error that survives
// every retry is returned as-is so the cache never memoizes it.
func (c *DesignCache) computeRetrying(ctx context.Context, q int64, length float64) (LinkDesign, error) {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return LinkDesign{}, err
		}
		d, err := func() (LinkDesign, error) {
			if err := faultinject.Hit("noc.cache.compute"); err != nil {
				return LinkDesign{}, err
			}
			return designVia(ctx, c.LinkModel, length)
		}()
		if err == nil || !faultinject.IsTransient(err) || attempt >= maxComputeRetries {
			return d, err
		}
		metCacheRetries.Inc()
		time.Sleep(retryBackoff(q, attempt))
	}
}

// retryBackoff is the attempt'th sleep for bucket q: exponential from
// computeRetryBase with a deterministic jitter factor in [0.5, 1.5)
// keyed by (bucket, attempt), so retries are reproducible in tests yet
// de-synchronized across buckets in a sweep.
func retryBackoff(q int64, attempt int) time.Duration {
	base := computeRetryBase << uint(attempt)
	jitter := 0.5 + faultinject.Uniform(uint64(q), "noc.cache.retry", uint64(attempt))
	return time.Duration(float64(base) * jitter)
}

// Design returns the cached design for the quantized length,
// computing and memoizing it on first use. Non-positive (or NaN)
// lengths are rejected outright: the former implementation clamped
// them into the 1 µm bucket, silently aliasing invalid requests to a
// real design. Positive lengths below half the quantum are designed
// at their exact length and not cached, so they cannot alias either.
func (c *DesignCache) Design(length float64) (LinkDesign, error) {
	return c.DesignCtx(context.Background(), length)
}

// DesignCtx is Design under a context: the lookup aborts with ctx's
// error when the context is done before the design is resolved, and a
// cancelled computation leaves the cache entry undecided for the next
// caller instead of memoizing the cancellation.
func (c *DesignCache) DesignCtx(ctx context.Context, length float64) (LinkDesign, error) {
	if err := ctx.Err(); err != nil {
		return LinkDesign{}, err
	}
	if math.IsNaN(length) || length <= 0 {
		return LinkDesign{}, fmt.Errorf("noc: non-positive link length %g", length)
	}
	q := int64(math.Round(length / lengthQuantum))
	if q < 1 {
		return designVia(ctx, c.LinkModel, length)
	}
	sh := &c.shards[q%designCacheShards]
	sh.mu.Lock()
	e, ok := sh.m[q]
	if !ok {
		e = &designEntry{}
		sh.m[q] = e
	}
	sh.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		metCacheHits.Inc()
		return e.d, e.err
	}
	// The context may have died while this caller was blocked behind
	// another computation; bail before starting our own, leaving the
	// entry undecided.
	if err := ctx.Err(); err != nil {
		return LinkDesign{}, err
	}
	metCacheMisses.Inc()
	d, err := c.computeRetrying(ctx, q, float64(q)*lengthQuantum)
	if err != nil && transientErr(err) {
		return LinkDesign{}, err
	}
	e.d, e.err, e.done = d, err, true
	if err == nil {
		metDesigns.Inc()
	}
	return e.d, e.err
}

// Len reports the number of decided cache entries (diagnostics and
// tests). Entries whose computation failed transiently and was never
// retried do not count: they hold no design.
func (c *DesignCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, e := range sh.m {
			e.mu.Lock()
			if e.done {
				n++
			}
			e.mu.Unlock()
		}
		sh.mu.Unlock()
	}
	return n
}

var _ LinkModel = (*DesignCache)(nil)
var _ ctxDesigner = (*DesignCache)(nil)
