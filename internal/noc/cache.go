package noc

import (
	"fmt"
	"math"
	"sync"
)

// lengthQuantum is the design-cache granularity: link lengths are
// quantized to 1 µm buckets before designing, because the greedy merge
// loop re-designs near-identical lengths constantly and a buffered
// global link's solution is insensitive below that scale.
const lengthQuantum = 1e-6

// designCacheShards spreads the cache over independently locked
// shards so concurrent candidate evaluations do not serialize on one
// mutex. Sixteen shards keeps contention negligible up to the core
// counts the worker pool uses while costing nothing at small sizes.
const designCacheShards = 16

// DesignCache is a concurrency-safe memoizing wrapper around a
// LinkModel, keyed by the quantized link length. The technology,
// wire style, bus width, and buffering objective are all fixed
// properties of the wrapped model, so one cache instance corresponds
// to exactly one (tech, style, width, buffering-options) tuple; share
// a single DesignCache across a synthesis run — or several runs over
// the same model — to reuse every design.
//
// All methods are safe for concurrent use. Each distinct length is
// designed exactly once even under concurrent callers (duplicate
// requests block on the first computation rather than recomputing),
// which requires the wrapped model's Design to be safe for concurrent
// calls — true of every implementation in this package.
type DesignCache struct {
	LinkModel
	shards [designCacheShards]designShard
}

type designShard struct {
	mu sync.Mutex
	m  map[int64]*designEntry
}

type designEntry struct {
	once sync.Once
	d    LinkDesign
	err  error
}

// NewDesignCache wraps a LinkModel with a sharded design cache.
// Wrapping an existing *DesignCache returns it unchanged, so callers
// can defensively wrap without stacking caches.
func NewDesignCache(lm LinkModel) *DesignCache {
	if c, ok := lm.(*DesignCache); ok {
		return c
	}
	c := &DesignCache{LinkModel: lm}
	for i := range c.shards {
		c.shards[i].m = make(map[int64]*designEntry)
	}
	return c
}

// Design returns the cached design for the quantized length,
// computing and memoizing it on first use. Non-positive (or NaN)
// lengths are rejected outright: the former implementation clamped
// them into the 1 µm bucket, silently aliasing invalid requests to a
// real design. Positive lengths below half the quantum are designed
// at their exact length and not cached, so they cannot alias either.
func (c *DesignCache) Design(length float64) (LinkDesign, error) {
	if math.IsNaN(length) || length <= 0 {
		return LinkDesign{}, fmt.Errorf("noc: non-positive link length %g", length)
	}
	q := int64(math.Round(length / lengthQuantum))
	if q < 1 {
		return c.LinkModel.Design(length)
	}
	sh := &c.shards[q%designCacheShards]
	sh.mu.Lock()
	e, ok := sh.m[q]
	if !ok {
		e = &designEntry{}
		sh.m[q] = e
	}
	sh.mu.Unlock()
	e.once.Do(func() {
		e.d, e.err = c.LinkModel.Design(float64(q) * lengthQuantum)
	})
	return e.d, e.err
}

// Len reports the number of cached designs (diagnostics and tests).
func (c *DesignCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

var _ LinkModel = (*DesignCache)(nil)
