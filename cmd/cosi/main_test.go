package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// One tech × one case keeps the synthesis pair to a couple of seconds.
var smallSweep = []string{"-tech", "90nm", "-case", "DVOPD"}

func TestRunSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(smallSweep, &out, &errOut); err != nil {
		t.Fatalf("run failed: %v (stderr: %s)", err, errOut.String())
	}
	for _, want := range []string{"TABLE III", "90nm", "DVOPD", "original", "proposed", "max feasible link"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunTimeoutCancelsPromptly pins the sweep-level cancellation: an
// expired deadline aborts the synthesis sweep with the context error
// instead of running the full table.
func TestRunTimeoutCancelsPromptly(t *testing.T) {
	var out, errOut bytes.Buffer
	start := time.Now()
	err := run([]string{"-timeout", "1ms"}, &out, &errOut)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v, want prompt exit", elapsed)
	}
	if strings.Contains(out.String(), "TABLE III") {
		t.Fatalf("partial table printed despite cancellation:\n%s", out.String())
	}
}

// TestRunMetricsSnapshot checks the acceptance criterion for the
// synthesis path: after a real sweep the snapshot reports nonzero
// design-cache hits (merge candidates re-evaluating shared links) and
// syntheses.
func TestRunMetricsSnapshot(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(append(smallSweep[:len(smallSweep):len(smallSweep)], "-metrics"), &out, &errOut); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	var snap map[string]int64
	if err := json.Unmarshal(errOut.Bytes(), &snap); err != nil {
		t.Fatalf("-metrics stderr is not JSON: %v\n%s", err, errOut.String())
	}
	if snap["noc.design_cache.hits"] == 0 {
		t.Fatalf("design-cache hit counter zero\n%s", errOut.String())
	}
	if snap["noc.syntheses"] == 0 {
		t.Fatalf("syntheses counter zero\n%s", errOut.String())
	}
}

func TestRunDOT(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-dot", "proposed", "-tech", "90nm", "-case", "DVOPD"}, &out, &errOut); err != nil {
		t.Fatalf("run failed: %v (stderr: %s)", err, errOut.String())
	}
	if !strings.Contains(out.String(), "digraph") {
		t.Fatalf("-dot did not emit Graphviz:\n%s", out.String())
	}
}

func TestRunBadStyle(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-style", "twisted"}, &out, &errOut); err == nil {
		t.Fatal("unknown style accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out, &errOut); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
