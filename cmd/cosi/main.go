// Command cosi regenerates the paper's Table III: network-on-chip
// synthesis for the VPROC (42-core) and DVOPD (26-core) test cases at
// 90/65/45 nm (1.5/2.25/3.0 GHz), under the original (Bakoglu-based,
// uncalibrated) interconnect model and under the proposed calibrated
// predictive models, reporting each run's power, delay, area, and hop
// count.
//
// Usage:
//
//	cosi [-tech 90nm,65nm,45nm] [-case VPROC,DVOPD] [-style swss|shielded|staggered]
//	cosi -dot proposed -tech 90nm -case VPROC   # Graphviz topology dump
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/noc"
	"repro/internal/tech"
	"repro/internal/wire"
)

func main() {
	techFlag := flag.String("tech", "90nm,65nm,45nm", "comma-separated technologies")
	caseFlag := flag.String("case", "VPROC,DVOPD", "comma-separated test cases")
	styleFlag := flag.String("style", "swss", "bus design style: swss, shielded, staggered")
	dotFlag := flag.String("dot", "", "emit the Graphviz topology for one synthesis "+
		"('proposed' or 'original'; requires single -tech and -case)")
	simFlag := flag.Bool("sim", false, "run the cycle-based traffic simulation on each network")
	flag.Parse()

	style := wire.SWSS
	switch strings.ToLower(*styleFlag) {
	case "swss":
	case "shielded":
		style = wire.Shielded
	case "staggered":
		style = wire.Staggered
	default:
		fmt.Fprintf(os.Stderr, "cosi: unknown style %q\n", *styleFlag)
		os.Exit(1)
	}

	if *dotFlag != "" {
		if err := emitDOT(*dotFlag, *techFlag, *caseFlag, style); err != nil {
			fmt.Fprintln(os.Stderr, "cosi:", err)
			os.Exit(1)
		}
		return
	}

	rows, err := experiments.TableIII(experiments.TableIIIConfig{
		Techs:    strings.Split(*techFlag, ","),
		Cases:    strings.Split(*caseFlag, ","),
		Style:    style,
		Simulate: *simFlag,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cosi:", err)
		os.Exit(1)
	}

	fmt.Println("TABLE III: MODEL IMPACT ON NoC SYNTHESIS")
	fmt.Println()
	fmt.Printf("%-6s %-6s %-9s %9s %9s %9s %9s %9s %7s %7s %9s %9s %8s\n",
		"tech", "case", "model", "dyn[mW]", "leak[mW]", "rtr[mW]", "tot[mW]",
		"area[mm2]", "maxhop", "avghop", "lat[ns]", "links", "routers")
	for _, r := range rows {
		m := r.Metrics
		fmt.Printf("%-6s %-6s %-9s %9.2f %9.3f %9.3f %9.2f %9.3f %7d %7.2f %9.2f %9d %8d",
			r.Tech, r.Case, r.Model,
			m.LinkDynamic*1e3, m.LinkLeakage*1e3, m.RouterPower*1e3, m.TotalPower()*1e3,
			m.Area*1e6, m.MaxHops, m.AvgHops, m.AvgLatency*1e9, m.Links, m.Routers)
		if r.Traffic != nil {
			fmt.Printf("   sim: %.2fns over %d pkts", r.Traffic.AvgLatency*1e9, r.Traffic.PacketsDelivered)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("wire-length feasibility limit per model:")
	seen := map[string]bool{}
	for _, r := range rows {
		key := r.Tech + "/" + r.Model
		if seen[key] {
			continue
		}
		seen[key] = true
		fmt.Printf("  %-6s %-9s max feasible link %6.2f mm\n", r.Tech, r.Model, r.MaxLinkLength*1e3)
	}
	fmt.Println()
	fmt.Println("(paper: proposed dynamic power up to ~3x the original's; original model")
	fmt.Println(" optimistic in repeater count/size and in allowing excessively long wires;")
	fmt.Println(" dynamic power rises 65nm -> 45nm with the 1.0V -> 1.1V library supply)")
}

// emitDOT synthesizes a single configuration and prints its Graphviz
// topology to stdout.
func emitDOT(modelName, techName, caseName string, style wire.Style) error {
	if strings.Contains(techName, ",") || strings.Contains(caseName, ",") {
		return fmt.Errorf("-dot requires a single -tech and -case")
	}
	tc, err := tech.Lookup(techName)
	if err != nil {
		return err
	}
	spec, err := noc.SpecByName(caseName)
	if err != nil {
		return err
	}
	var lm noc.LinkModel
	switch modelName {
	case "proposed":
		lm, err = noc.NewProposedModel(tc, spec.DataWidth, style)
	case "original":
		lm, err = noc.NewOriginalModel(tc, spec.DataWidth, style)
	default:
		return fmt.Errorf("unknown model %q (want proposed or original)", modelName)
	}
	if err != nil {
		return err
	}
	net, err := noc.Synthesize(spec, lm, noc.SynthOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, net.Summary())
	return net.WriteDOT(os.Stdout)
}
