// Command cosi regenerates the paper's Table III: network-on-chip
// synthesis for the VPROC (42-core) and DVOPD (26-core) test cases at
// 90/65/45 nm (1.5/2.25/3.0 GHz), under the original (Bakoglu-based,
// uncalibrated) interconnect model and under the proposed calibrated
// predictive models, reporting each run's power, delay, area, and hop
// count.
//
// Usage:
//
//	cosi [-tech 90nm,65nm,45nm] [-case VPROC,DVOPD] [-style swss|shielded|staggered]
//	     [-timeout 60s] [-metrics] [-debug-addr localhost:6060]
//	cosi -dot proposed -tech 90nm -case VPROC   # Graphviz topology dump
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/noc"
	"repro/internal/tech"
	"repro/internal/wire"
)

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("cosi", flag.ContinueOnError)
	fs.SetOutput(stderr)
	techFlag := fs.String("tech", "90nm,65nm,45nm", "comma-separated technologies")
	caseFlag := fs.String("case", "VPROC,DVOPD", "comma-separated test cases")
	styleFlag := fs.String("style", "swss", "bus design style: swss, shielded, staggered")
	dotFlag := fs.String("dot", "", "emit the Graphviz topology for one synthesis "+
		"('proposed' or 'original'; requires single -tech and -case)")
	simFlag := fs.Bool("sim", false, "run the cycle-based traffic simulation on each network")
	timeoutFlag := fs.Duration("timeout", 0, "abort the run after this long (0 = no deadline; SIGINT/SIGTERM always cancel)")
	metricsFlag := fs.Bool("metrics", false, "dump the observability counters as JSON to stderr after the run")
	debugAddr := fs.String("debug-addr", "", "serve /metrics and /debug/pprof/ on this address for the run's duration")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, cancel := cliutil.Context(*timeoutFlag)
	defer cancel()
	stopDebug, err := cliutil.StartDebug(*debugAddr, stderr)
	if err != nil {
		return err
	}
	defer stopDebug()
	defer cliutil.DumpMetrics(*metricsFlag, stderr)

	style := wire.SWSS
	switch strings.ToLower(*styleFlag) {
	case "swss":
	case "shielded":
		style = wire.Shielded
	case "staggered":
		style = wire.Staggered
	default:
		return fmt.Errorf("unknown style %q", *styleFlag)
	}

	if *dotFlag != "" {
		return emitDOT(ctx, stdout, stderr, *dotFlag, *techFlag, *caseFlag, style)
	}

	rows, err := experiments.TableIIICtx(ctx, experiments.TableIIIConfig{
		Techs:    strings.Split(*techFlag, ","),
		Cases:    strings.Split(*caseFlag, ","),
		Style:    style,
		Simulate: *simFlag,
	})
	if err != nil {
		return err
	}

	fmt.Fprintln(stdout, "TABLE III: MODEL IMPACT ON NoC SYNTHESIS")
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "%-6s %-6s %-9s %9s %9s %9s %9s %9s %7s %7s %9s %9s %8s\n",
		"tech", "case", "model", "dyn[mW]", "leak[mW]", "rtr[mW]", "tot[mW]",
		"area[mm2]", "maxhop", "avghop", "lat[ns]", "links", "routers")
	for _, r := range rows {
		m := r.Metrics
		fmt.Fprintf(stdout, "%-6s %-6s %-9s %9.2f %9.3f %9.3f %9.2f %9.3f %7d %7.2f %9.2f %9d %8d",
			r.Tech, r.Case, r.Model,
			m.LinkDynamic*1e3, m.LinkLeakage*1e3, m.RouterPower*1e3, m.TotalPower()*1e3,
			m.Area*1e6, m.MaxHops, m.AvgHops, m.AvgLatency*1e9, m.Links, m.Routers)
		if r.Traffic != nil {
			fmt.Fprintf(stdout, "   sim: %.2fns over %d pkts", r.Traffic.AvgLatency*1e9, r.Traffic.PacketsDelivered)
		}
		fmt.Fprintln(stdout)
	}

	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout, "wire-length feasibility limit per model:")
	seen := map[string]bool{}
	for _, r := range rows {
		key := r.Tech + "/" + r.Model
		if seen[key] {
			continue
		}
		seen[key] = true
		fmt.Fprintf(stdout, "  %-6s %-9s max feasible link %6.2f mm\n", r.Tech, r.Model, r.MaxLinkLength*1e3)
	}
	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout, "(paper: proposed dynamic power up to ~3x the original's; original model")
	fmt.Fprintln(stdout, " optimistic in repeater count/size and in allowing excessively long wires;")
	fmt.Fprintln(stdout, " dynamic power rises 65nm -> 45nm with the 1.0V -> 1.1V library supply)")
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "cosi:", err)
		}
		os.Exit(1)
	}
}

// emitDOT synthesizes a single configuration and prints its Graphviz
// topology to stdout.
func emitDOT(ctx context.Context, stdout, stderr io.Writer, modelName, techName, caseName string, style wire.Style) error {
	if strings.Contains(techName, ",") || strings.Contains(caseName, ",") {
		return fmt.Errorf("-dot requires a single -tech and -case")
	}
	tc, err := tech.Lookup(techName)
	if err != nil {
		return err
	}
	spec, err := noc.SpecByName(caseName)
	if err != nil {
		return err
	}
	var lm noc.LinkModel
	switch modelName {
	case "proposed":
		lm, err = noc.NewProposedModel(tc, spec.DataWidth, style)
	case "original":
		lm, err = noc.NewOriginalModel(tc, spec.DataWidth, style)
	default:
		return fmt.Errorf("unknown model %q (want proposed or original)", modelName)
	}
	if err != nil {
		return err
	}
	net, err := noc.SynthesizeCtx(ctx, spec, lm, noc.SynthOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintln(stderr, net.Summary())
	return net.WriteDOT(stdout)
}
