package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("golden analyses are seconds of work")
	}
	var out, errOut bytes.Buffer
	if err := run([]string{"-tech", "90nm", "-lengths", "1"}, &out, &errOut); err != nil {
		t.Fatalf("run failed: %v (stderr: %s)", err, errOut.String())
	}
	for _, want := range []string{"TABLE II", "Prop[%]", "worst |proposed| error"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out, &errOut); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if !strings.Contains(errOut.String(), "Usage") && !strings.Contains(errOut.String(), "flag") {
		t.Errorf("no usage/diagnostic on stderr: %s", errOut.String())
	}
}

func TestRunBadLength(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-lengths", "1,banana"}, &out, &errOut)
	if err == nil {
		t.Fatal("unparseable length accepted")
	}
	if !strings.Contains(err.Error(), "bad length") {
		t.Errorf("error %q does not name the bad length", err)
	}
}

func TestRunUnknownTech(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-tech", "13nm", "-lengths", "1"}, &out, &errOut); err == nil {
		t.Fatal("unknown technology accepted")
	}
}
