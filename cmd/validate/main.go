// Command validate regenerates the paper's Table II: the accuracy of
// the Bakoglu (B), Pamunuwa (P), and proposed (Prop) delay models
// against the golden sign-off timing engine (PT column), for buffered
// lines of 1–15 mm in three technologies and two design styles, plus
// the runtime ratio (RT column).
//
// Usage:
//
//	validate [-tech 90nm,65nm,45nm] [-lengths 1,3,5,10,15] [-rt]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	techFlag := fs.String("tech", "90nm,65nm,45nm", "comma-separated technologies")
	lenFlag := fs.String("lengths", "1,3,5,10,15", "line lengths in mm")
	rt := fs.Bool("rt", false, "measure the runtime-ratio column (slower)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var lengths []float64
	for _, s := range strings.Split(*lenFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad length: %w", err)
		}
		lengths = append(lengths, v)
	}

	cfg := experiments.TableIIConfig{
		Techs:          strings.Split(*techFlag, ","),
		LengthsMM:      lengths,
		MeasureRuntime: *rt,
	}
	fmt.Fprintln(stderr, "validate: characterizing libraries and running golden analyses...")
	rows, err := experiments.TableII(cfg)
	if err != nil {
		return err
	}

	fmt.Fprintln(stdout, "TABLE II: EVALUATION OF MODEL ACCURACY")
	fmt.Fprintln(stdout, "(errors are (model - golden)/golden; PT is the golden sign-off delay)")
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "%-6s %-9s %6s %5s %5s %12s %8s %8s %8s %8s\n",
		"tech", "style", "L[mm]", "N", "size", "PT[ps]", "B[%]", "P[%]", "Prop[%]", "RT[x]")
	for _, r := range rows {
		rtCol := "-"
		if r.RuntimeRatio > 0 {
			rtCol = fmt.Sprintf("%.0f", r.RuntimeRatio)
		}
		fmt.Fprintf(stdout, "%-6s %-9s %6.1f %5d %5g %12.1f %+8.1f %+8.1f %+8.1f %8s\n",
			r.Tech, r.Style, r.Length*1e3, r.N, r.Size, r.Golden*1e12,
			r.ErrBakoglu*100, r.ErrPamunuwa*100, r.ErrProposed*100, rtCol)
	}

	// Summary lines matching the paper's prose.
	var worstProp, worstBase float64
	for _, r := range rows {
		if a := abs(r.ErrProposed); a > worstProp {
			worstProp = a
		}
		if a := abs(r.ErrBakoglu); a > worstBase {
			worstBase = a
		}
		if a := abs(r.ErrPamunuwa); a > worstBase {
			worstBase = a
		}
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "worst |proposed| error: %.1f%%   worst |baseline| error: %.1f%%\n", worstProp*100, worstBase*100)
	fmt.Fprintln(stdout, "(paper: proposed within ~12%, baselines -7%..+106%)")
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "validate:", err)
		}
		os.Exit(1)
	}
}
