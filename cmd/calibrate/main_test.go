package main

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

// TestRunSingleNode characterizes one node end to end (a few seconds)
// and checks the Table I rendering.
func TestRunSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("full characterization in -short mode")
	}
	var out, errOut bytes.Buffer
	if err := run([]string{"-tech", "90nm", "-j", "1"}, &out, &errOut); err != nil {
		t.Fatalf("run failed: %v (stderr: %s)", err, errOut.String())
	}
	for _, want := range []string{"TABLE I", "90nm", "Inverter, rising output"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
	if !strings.Contains(errOut.String(), "characterizing 90nm") {
		t.Errorf("progress line missing from stderr: %s", errOut.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out, &errOut); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunUnknownTech(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-tech", "13nm"}, &out, &errOut); err == nil {
		t.Fatal("unknown technology accepted")
	}
	if out.Len() != 0 {
		t.Errorf("partial output despite resolve failure: %s", out.String())
	}
}

// TestRunTimeoutExpired pins that an already-expired deadline stops
// the calibration fan-out before any node is characterized.
func TestRunTimeoutExpired(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-tech", "90nm", "-timeout", "1ns"}, &out, &errOut)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if out.Len() != 0 {
		t.Errorf("partial output despite expired deadline: %s", out.String())
	}
}
