// Command calibrate regenerates the paper's Table I: the fitting
// coefficients of the predictive models for each technology, derived
// by characterizing the repeater library with the circuit-simulation
// substrate and running the regression pipeline.
//
// Usage:
//
//	calibrate [-tech 90nm,65nm,...|all] [-report] [-emit-go]
//	          [-timeout 5m] [-metrics] [-debug-addr localhost:6060]
//
// -report prints the regression diagnostics (R², residuals) for every
// fit. -emit-go writes a Go source file with the coefficients to
// stdout, which is how internal/model/coeffs_data.go is generated.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/liberty"
	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/tech"
)

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("calibrate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	techFlag := fs.String("tech", "all", "comma-separated technology names, or 'all'")
	report := fs.Bool("report", false, "print regression diagnostics")
	emitGo := fs.Bool("emit-go", false, "emit Go source with the coefficients to stdout")
	jobs := fs.Int("j", 0, "parallel calibration workers (0 = all cores, 1 = serial)")
	timeoutFlag := fs.Duration("timeout", 0, "abort the run after this long (0 = no deadline; SIGINT/SIGTERM always cancel)")
	metricsFlag := fs.Bool("metrics", false, "dump the observability counters as JSON to stderr after the run")
	debugAddr := fs.String("debug-addr", "", "serve /metrics and /debug/pprof/ on this address for the run's duration")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, cancel := cliutil.Context(*timeoutFlag)
	defer cancel()
	stopDebug, err := cliutil.StartDebug(*debugAddr, stderr)
	if err != nil {
		return err
	}
	defer stopDebug()
	defer cliutil.DumpMetrics(*metricsFlag, stderr)

	names := tech.Names()
	if *techFlag != "all" {
		names = strings.Split(*techFlag, ",")
	}

	// Resolve every name up front so a typo fails before any
	// characterization work starts.
	tcs := make([]*tech.Technology, len(names))
	for i, name := range names {
		tc, err := tech.Lookup(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		tcs[i] = tc
	}

	// Each node's characterization + regression is independent; fan
	// them out and report in the requested order afterwards.
	coeffs := make([]*model.Coefficients, len(tcs))
	reports := make([]*model.Report, len(tcs))
	err = pool.ForEachCtx(ctx, *jobs, len(tcs), func(i int) error {
		if !*emitGo {
			fmt.Fprintf(stderr, "characterizing %s...\n", tcs[i].Name)
		}
		lib, err := liberty.Get(tcs[i])
		if err != nil {
			return err
		}
		coeffs[i], reports[i], err = model.Calibrate(lib)
		return err
	})
	if err != nil {
		return err
	}
	if *report {
		for i, tc := range tcs {
			printReport(stdout, tc.Name, reports[i])
		}
	}

	if *emitGo {
		emitGoSource(stdout, coeffs)
		return nil
	}
	printTableI(stdout, coeffs)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "calibrate:", err)
		}
		os.Exit(1)
	}
}

func printReport(w io.Writer, name string, rep *model.Report) {
	fmt.Fprintf(w, "== regression diagnostics: %s ==\n", name)
	keys := make([]string, 0, len(rep.Fits))
	for k := range rep.Fits {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "  %-24s %s\n", k, rep.Fits[k])
	}
}

// printTableI renders the coefficient table in the layout of the
// paper's Table I: one row per technology, grouped by model.
func printTableI(w io.Writer, all []*model.Coefficients) {
	fmt.Fprintln(w, "TABLE I: FITTING COEFFICIENTS FOR THE PREDICTIVE MODELS")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Inverter, rising output (intrinsic delay i = a0 + a1*s + a2*s^2;")
	fmt.Fprintln(w, "drive resistance rd = b0/wr + (b1/wr)*s; slew so = g0 + g1*s/wr + g2*cl)")
	fmt.Fprintf(w, "%-6s %12s %12s %12s %12s %12s %12s %12s %12s\n",
		"tech", "a0 [s]", "a1", "a2 [1/s]", "b0 [ohm*m]", "b1 [ohm*m/s]", "g0 [s]", "g1 [m]", "g2 [s/F]")
	for _, c := range all {
		e := c.Inv.Rise
		fmt.Fprintf(w, "%-6s %12.4g %12.4g %12.4g %12.4g %12.4g %12.4g %12.4g %12.4g\n",
			c.Tech, e.A0, e.A1, e.A2, e.Beta0, e.Beta1, e.Gamma0, e.Gamma1, e.Gamma2)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Inverter, falling output")
	for _, c := range all {
		e := c.Inv.Fall
		fmt.Fprintf(w, "%-6s %12.4g %12.4g %12.4g %12.4g %12.4g %12.4g %12.4g %12.4g\n",
			c.Tech, e.A0, e.A1, e.A2, e.Beta0, e.Beta1, e.Gamma0, e.Gamma1, e.Gamma2)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Buffer, rising output")
	for _, c := range all {
		e := c.Buf.Rise
		fmt.Fprintf(w, "%-6s %12.4g %12.4g %12.4g %12.4g %12.4g %12.4g %12.4g %12.4g\n",
			c.Tech, e.A0, e.A1, e.A2, e.Beta0, e.Beta1, e.Gamma0, e.Gamma1, e.Gamma2)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Static models (kappa: ci = k*(wn+wp); leakage ps = L0 + L1*wn; area ar = A0 + A1*wn)")
	fmt.Fprintf(w, "%-6s %-4s %12s %12s %12s %12s %12s\n", "tech", "kind", "kappa [F/m]", "L0 [W]", "L1 [W/m]", "A0 [m^2]", "A1 [m]")
	for _, c := range all {
		for _, kc := range []struct {
			kind string
			k    model.KindCoeffs
		}{{"INV", c.Inv}, {"BUF", c.Buf}} {
			fmt.Fprintf(w, "%-6s %-4s %12.4g %12.4g %12.4g %12.4g %12.4g\n",
				c.Tech, kc.kind, kc.k.Kappa, kc.k.Leak0, kc.k.Leak1, kc.k.Area0, kc.k.Area1)
		}
	}
}

func emitEdge(e model.EdgeCoeffs) string {
	return fmt.Sprintf("{A0: %g, A1: %g, A2: %g, Beta0: %g, Beta1: %g, Gamma0: %g, Gamma1: %g, Gamma2: %g}",
		e.A0, e.A1, e.A2, e.Beta0, e.Beta1, e.Gamma0, e.Gamma1, e.Gamma2)
}

func emitKind(k model.KindCoeffs) string {
	return fmt.Sprintf("{\n\t\t\tRise: EdgeCoeffs%s,\n\t\t\tFall: EdgeCoeffs%s,\n\t\t\tKappa: %g, Leak0: %g, Leak1: %g, Area0: %g, Area1: %g,\n\t\t}",
		emitEdge(k.Rise), emitEdge(k.Fall), k.Kappa, k.Leak0, k.Leak1, k.Area0, k.Area1)
}

func emitGoSource(w io.Writer, all []*model.Coefficients) {
	fmt.Fprintln(w, "// Code generated by cmd/calibrate -emit-go; DO NOT EDIT.")
	fmt.Fprintln(w, "//")
	fmt.Fprintln(w, "// This file embeds the calibrated Table I coefficients for the")
	fmt.Fprintln(w, "// built-in technologies, so model consumers do not need to re-run")
	fmt.Fprintln(w, "// the characterization pipeline. Regenerate with:")
	fmt.Fprintln(w, "//")
	fmt.Fprintln(w, "//\tgo run ./cmd/calibrate -emit-go > internal/model/coeffs_data.go")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "package model")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "var defaultCoefficients = map[string]*Coefficients{")
	for _, c := range all {
		fmt.Fprintf(w, "\t%q: {\n\t\tTech: %q,\n\t\tInv: KindCoeffs%s,\n\t\tBuf: KindCoeffs%s,\n\t},\n",
			c.Tech, c.Tech, emitKind(c.Inv), emitKind(c.Buf))
	}
	fmt.Fprintln(w, "}")
}
