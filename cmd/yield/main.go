// Command yield estimates the timing yield of a buffered global link
// under process variation with the Monte Carlo engine, optionally
// resizing the buffering until a yield target holds — the titled
// paper's sizing-for-yield loop from the command line.
//
// Usage:
//
//	yield -tech 65nm -length 5 [-n 4096] [-seed 1] [-j 0]
//	      [-target 444] [-estimator auto|mc|qmc|isle|ais|wcd] [-sigma 6]
//	      [-sampler ziggurat|box-muller]
//	      [-is] [-relerr 0.05] [-abserr 0.001] [-yield 0.99]
//	      [-candidates 8:10,12:8,16:6] [-style swss|shielded|staggered]
//	      [-weight 0.5] [-sigma-scale 1] [-no-surface]
//	      [-timeout 30s] [-metrics] [-debug-addr localhost:6060]
//
// With -candidates, the listed size:count buffering solutions are
// scored together on common random numbers (one shared sample stream)
// instead of designing a single link.
//
// -sigma declares the sigma level the query must resolve: the engine
// routes the cheapest estimator whose regime covers it (a 6σ query
// lands on adaptive importance sampling behind the worst-case-distance
// pre-filter), while -estimator pins a specific rung.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	predint "repro"
	"repro/internal/cliutil"
	"repro/internal/estimator"
)

// estimatorName renders a result's estimator label for humans,
// falling back to the raw rung name for anything unregistered.
func estimatorName(kind string) string {
	if info, ok := estimator.Lookup(estimator.Kind(kind)); ok {
		return fmt.Sprintf("%s: %s", kind, info.Description)
	}
	if kind == "" {
		return "plain Monte Carlo"
	}
	return kind
}

// parseCandidates parses the -candidates syntax: comma-separated
// size:count pairs, e.g. "8:10,12:8".
func parseCandidates(s string) ([]predint.YieldCandidate, error) {
	var out []predint.YieldCandidate
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		size, count, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("candidate %q is not size:count", part)
		}
		sz, err := strconv.ParseFloat(strings.TrimSpace(size), 64)
		if err != nil {
			return nil, fmt.Errorf("candidate %q: bad size: %v", part, err)
		}
		n, err := strconv.Atoi(strings.TrimSpace(count))
		if err != nil {
			return nil, fmt.Errorf("candidate %q: bad count: %v", part, err)
		}
		out = append(out, predint.YieldCandidate{RepeaterSize: sz, Repeaters: n})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no candidates in %q", s)
	}
	return out, nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("yield", flag.ContinueOnError)
	fs.SetOutput(stderr)
	techFlag := fs.String("tech", "65nm", "technology node")
	lengthFlag := fs.Float64("length", 5, "link length in mm")
	styleFlag := fs.String("style", "swss", "design style: swss, shielded, staggered")
	samplesFlag := fs.Int("n", predint.DefaultYieldSamples, "Monte Carlo sample budget")
	seedFlag := fs.Uint64("seed", 1, "base PRNG seed (results are bit-identical per seed for any -j)")
	jobsFlag := fs.Int("j", 0, "parallel sampling workers (0 = all cores, 1 = serial)")
	targetFlag := fs.Float64("target", 0, "delay target in ps (0 = the node's clock period)")
	estFlag := fs.String("estimator", "auto", "estimator rung: auto, mc, qmc, isle, ais, wcd")
	samplerFlag := fs.String("sampler", "", "normal sampler for the mc/isle rungs: ziggurat (default) or box-muller (pinned legacy sequence)")
	sigmaLevelFlag := fs.Float64("sigma", 0, "target sigma level the query must resolve, e.g. 6 (0 = none; routes the estimator)")
	isFlag := fs.Bool("is", false, "importance-sampling estimator (for small failure probabilities)")
	relErrFlag := fs.Float64("relerr", 0, "stop early at this relative standard error (0 = run all samples)")
	absErrFlag := fs.Float64("abserr", 0, "stop early at this absolute standard error (0 = disabled)")
	yieldFlag := fs.Float64("yield", 0, "yield target in (0,1): resize the buffering to meet it (0 = estimate only)")
	candFlag := fs.String("candidates", "", "score these size:count buffering solutions on shared samples, e.g. 8:10,12:8")
	weightFlag := fs.Float64("weight", predint.DefaultPowerWeight, "power weight of the buffering objective")
	sigmaFlag := fs.Float64("sigma-scale", 1, "scale on the default variation sigmas")
	noSurfaceFlag := fs.Bool("no-surface", false, "bypass the yield-response-surface cache: always run the full Monte Carlo pipeline")
	timeoutFlag := fs.Duration("timeout", 0, "abort the run after this long (0 = no deadline; SIGINT/SIGTERM always cancel)")
	metricsFlag := fs.Bool("metrics", false, "dump the observability counters as JSON to stderr after the run")
	debugAddr := fs.String("debug-addr", "", "serve /metrics and /debug/pprof/ on this address for the run's duration")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, cancel := cliutil.Context(*timeoutFlag)
	defer cancel()
	stopDebug, err := cliutil.StartDebug(*debugAddr, stderr)
	if err != nil {
		return err
	}
	defer stopDebug()
	defer cliutil.DumpMetrics(*metricsFlag, stderr)

	req := predint.YieldRequest{
		Tech:               *techFlag,
		LengthMM:           *lengthFlag,
		Style:              predint.Style(*styleFlag),
		PowerWeight:        predint.Float(*weightFlag),
		Samples:            predint.Int(*samplesFlag),
		Seed:               *seedFlag,
		Workers:            *jobsFlag,
		ImportanceSampling: *isFlag,
		Estimator:          *estFlag,
		Sampler:            *samplerFlag,
		SigmaScale:         predint.Float(*sigmaFlag),
		NoSurface:          *noSurfaceFlag,
	}
	if *sigmaLevelFlag != 0 {
		// Explicit values — including invalid ones — reach the facade
		// so its validation (ErrInvalidSigma) is the single authority.
		req.TargetSigma = predint.Float(*sigmaLevelFlag)
	}
	if *targetFlag > 0 {
		req.TargetPS = predint.Float(*targetFlag)
	}
	if *relErrFlag > 0 {
		req.RelErr = predint.Float(*relErrFlag)
	}
	if *absErrFlag > 0 {
		req.AbsErr = predint.Float(*absErrFlag)
	}
	if *yieldFlag > 0 {
		req.YieldTarget = predint.Float(*yieldFlag)
	}

	if *candFlag != "" {
		cands, err := parseCandidates(*candFlag)
		if err != nil {
			return err
		}
		batch, err := predint.LinkYieldBatchCtx(ctx, predint.YieldBatchRequest{
			YieldRequest: req,
			Candidates:   cands,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%g mm link at %s (%s), target %.1f ps, %d candidates on shared samples\n",
			*lengthFlag, *techFlag, *styleFlag, batch.Target*1e12, len(batch.Results))
		for _, r := range batch.Results {
			fmt.Fprintf(stdout, "  %3d × INVD%-4g  nominal %.1f ps  yield %.6f (fail %.3g ± %.2g at 95%%, %d samples, %s)\n",
				r.Repeaters, r.RepeaterSize, r.NominalDelay*1e12, r.Yield, r.FailProb, r.CI95, r.Samples, estimatorName(r.Estimator))
		}
		return nil
	}

	res, err := predint.LinkYieldCtx(ctx, req)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "%g mm link at %s (%s), target %.1f ps\n",
		*lengthFlag, *techFlag, *styleFlag, res.Target*1e12)
	fmt.Fprintf(stdout, "  buffering:       %d × INVD%g (nominal delay %.1f ps)\n",
		res.Repeaters, res.RepeaterSize, res.NominalDelay*1e12)
	if res.Resized {
		fmt.Fprintln(stdout, "  (resized from the nominal objective to meet the yield target)")
	}
	fmt.Fprintf(stdout, "  yield:           %.6f (fail prob %.3g ± %.2g at 95%%)\n",
		res.Yield, res.FailProb, res.CI95)
	fmt.Fprintf(stdout, "  estimator:       %s, %d samples\n", estimatorName(res.Estimator), res.Samples)
	if res.ImportanceSampled {
		fmt.Fprintf(stdout, "  variance gain:   %.1f× over plain MC at equal samples\n", res.VarianceReduction)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "yield:", err)
		}
		os.Exit(1)
	}
}
