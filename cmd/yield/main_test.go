package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestRunSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-tech", "90nm", "-length", "5", "-n", "512", "-seed", "1"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run failed: %v (stderr: %s)", err, errOut.String())
	}
	for _, want := range []string{"90nm", "buffering:", "yield:", "plain Monte Carlo", "512 samples"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunDeterministicAcrossWorkers pins the CLI-visible guarantee:
// -j 1 and -j 8 print byte-identical reports for the same seed.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	outputs := make([]string, 2)
	for i, j := range []string{"1", "8"} {
		var out, errOut bytes.Buffer
		err := run([]string{"-tech", "90nm", "-length", "5", "-n", "1024", "-seed", "7", "-j", j}, &out, &errOut)
		if err != nil {
			t.Fatalf("-j %s: %v", j, err)
		}
		outputs[i] = out.String()
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("-j 1 and -j 8 reports differ:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
}

func TestRunImportanceSamplingFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-tech", "90nm", "-length", "5", "-n", "512", "-is", "-target", "520"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !strings.Contains(out.String(), "importance sampling") {
		t.Errorf("-is report does not name the estimator:\n%s", out.String())
	}
}

// TestRunCandidatesSweep exercises the -candidates batch mode: the
// listed buffering solutions are scored on shared samples and each
// gets a report line.
func TestRunCandidatesSweep(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-tech", "90nm", "-length", "5", "-n", "512", "-seed", "1",
		"-target", "520", "-candidates", "8:10, 12:8"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run failed: %v (stderr: %s)", err, errOut.String())
	}
	for _, want := range []string{"2 candidates on shared samples", "INVD8", "INVD12", "512 samples"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunCandidatesDeterministicAcrossWorkers: the shared-sample sweep
// keeps the CLI's byte-identical -j guarantee.
func TestRunCandidatesDeterministicAcrossWorkers(t *testing.T) {
	outputs := make([]string, 2)
	for i, j := range []string{"1", "8"} {
		var out, errOut bytes.Buffer
		err := run([]string{"-tech", "90nm", "-length", "5", "-n", "1024", "-seed", "7",
			"-target", "520", "-candidates", "8:10,12:8,16:6", "-j", j}, &out, &errOut)
		if err != nil {
			t.Fatalf("-j %s: %v", j, err)
		}
		outputs[i] = out.String()
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("-j 1 and -j 8 candidate reports differ:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
}

func TestRunBadCandidates(t *testing.T) {
	for name, spec := range map[string]string{
		"no-colon":    "8x10",
		"bad-size":    "eight:10",
		"bad-count":   "8:ten",
		"empty-pairs": " , ,",
	} {
		var out, errOut bytes.Buffer
		if err := run([]string{"-tech", "90nm", "-length", "5", "-candidates", spec}, &out, &errOut); err == nil {
			t.Errorf("%s: malformed -candidates %q accepted", name, spec)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-n", "not-a-number"}, &out, &errOut); err == nil {
		t.Fatal("malformed flag accepted")
	}
}

func TestRunUnknownTech(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-tech", "13nm"}, &out, &errOut); err == nil {
		t.Fatal("unknown technology accepted")
	}
}

// TestRunTimeoutCancelsPromptly pins the acceptance criterion: an
// absurdly large sample budget under -timeout 1ms exits promptly with
// a cancellation error instead of grinding through the budget.
func TestRunTimeoutCancelsPromptly(t *testing.T) {
	var out, errOut bytes.Buffer
	start := time.Now()
	err := run([]string{"-tech", "90nm", "-length", "5", "-n", "100000000", "-seed", "1", "-timeout", "1ms"}, &out, &errOut)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v, want prompt exit", elapsed)
	}
}

// TestRunTimeoutUnexpiredBitIdentical pins the other half: a deadline
// that never fires changes nothing — the report is byte-identical to
// the deadline-free run for the same seed.
func TestRunTimeoutUnexpiredBitIdentical(t *testing.T) {
	args := []string{"-tech", "90nm", "-length", "5", "-n", "1024", "-seed", "7"}
	var ref, refErr bytes.Buffer
	if err := run(args, &ref, &refErr); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if err := run(append(args, "-timeout", "10m"), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if out.String() != ref.String() {
		t.Fatalf("-timeout 10m report differs from deadline-free run:\n%s\nvs\n%s", out.String(), ref.String())
	}
}

// TestRunMetricsSnapshot checks the -metrics dump: valid JSON on
// stderr with a nonzero samples-drawn counter after a real run.
func TestRunMetricsSnapshot(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-tech", "90nm", "-length", "5", "-n", "512", "-seed", "1", "-metrics"}, &out, &errOut); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	var snap map[string]int64
	if err := json.Unmarshal(errOut.Bytes(), &snap); err != nil {
		t.Fatalf("-metrics stderr is not JSON: %v\n%s", err, errOut.String())
	}
	if snap["variation.samples_drawn"] < 512 {
		t.Fatalf("samples-drawn counter %d, want >= 512\n%s", snap["variation.samples_drawn"], errOut.String())
	}
	if snap["pool.runs"] == 0 {
		t.Fatalf("pool.runs counter zero\n%s", errOut.String())
	}
}

// TestRunDebugAddr checks that -debug-addr brings the endpoint up for
// the run and announces where it bound.
func TestRunDebugAddr(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-tech", "90nm", "-length", "5", "-n", "512", "-seed", "1", "-debug-addr", "127.0.0.1:0"}, &out, &errOut); err != nil {
		t.Fatalf("run failed: %v (stderr: %s)", err, errOut.String())
	}
	if !strings.Contains(errOut.String(), "debug endpoint on http://127.0.0.1:") {
		t.Fatalf("bound address not announced: %s", errOut.String())
	}
}
