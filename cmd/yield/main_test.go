package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-tech", "90nm", "-length", "5", "-n", "512", "-seed", "1"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run failed: %v (stderr: %s)", err, errOut.String())
	}
	for _, want := range []string{"90nm", "buffering:", "yield:", "plain Monte Carlo", "512 samples"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunDeterministicAcrossWorkers pins the CLI-visible guarantee:
// -j 1 and -j 8 print byte-identical reports for the same seed.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	outputs := make([]string, 2)
	for i, j := range []string{"1", "8"} {
		var out, errOut bytes.Buffer
		err := run([]string{"-tech", "90nm", "-length", "5", "-n", "1024", "-seed", "7", "-j", j}, &out, &errOut)
		if err != nil {
			t.Fatalf("-j %s: %v", j, err)
		}
		outputs[i] = out.String()
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("-j 1 and -j 8 reports differ:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
}

func TestRunImportanceSamplingFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-tech", "90nm", "-length", "5", "-n", "512", "-is", "-target", "520"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !strings.Contains(out.String(), "importance sampling") {
		t.Errorf("-is report does not name the estimator:\n%s", out.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-n", "not-a-number"}, &out, &errOut); err == nil {
		t.Fatal("malformed flag accepted")
	}
}

func TestRunUnknownTech(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-tech", "13nm"}, &out, &errOut); err == nil {
		t.Fatal("unknown technology accepted")
	}
}
