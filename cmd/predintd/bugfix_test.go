package main

import (
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/pool"
)

// TestQueueFullShedRestoresDepthGauge pins the gauge fix on the
// queue-full shed path: the request bumps queued (and the gauge) at
// admission, is shed because the queue is full, and must leave the
// gauge back at the true depth. It used to decrement only the atomic
// counter, leaving predintd.queue_depth stuck one high after every
// shed — a dashboard that never drains.
func TestQueueFullShedRestoresDepthGauge(t *testing.T) {
	// Queue depth 0: the very first request overflows the queue and is
	// shed deterministically, no concurrent slot-holder needed.
	_, ts := testServer(t, 1, 0, 1<<20, 10*time.Second)
	before := metQueueDepth.Value()
	code, _, body := postJSON(t, ts.URL+"/v1/link", `{"tech": "90nm", "length_mm": 5}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("zero-depth queue admission: status %d, want 503 (body %s)", code, body)
	}
	if got := metQueueDepth.Value(); got != before {
		t.Fatalf("queue_depth gauge %d after shed, want %d (gauge leaked on the shed path)", got, before)
	}
}

// TestQueuedDeadlineShedSemantics pins the shed-path unification: a
// request whose deadline expires while waiting in the admission queue
// is turned away by load exactly like a queue-full shed, so it must
// return its 504 WITH a Retry-After hint and move the shed metric.
// It used to write the 504 directly, bypassing shed(): load-based
// clients backed off on queue-full 503s but hammered straight through
// deadline sheds, and the shed metric under-counted overload.
func TestQueuedDeadlineShedSemantics(t *testing.T) {
	// One slot, room in the queue: the victim is admitted, then waits
	// for the slot until its (tightened) deadline expires.
	_, ts := testServer(t, 1, 8, 1<<20, 10*time.Second)
	defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
		"predintd.handle": {Kind: faultinject.Delay, Delay: 500 * time.Millisecond, Times: 1},
	}})()
	slow := make(chan int, 1)
	go func() {
		code, _, _ := postJSON(t, ts.URL+"/v1/link", `{"tech": "90nm", "length_mm": 5}`)
		slow <- code
	}()
	time.Sleep(100 * time.Millisecond) // the slow request reaches the handler and holds the slot

	shedBefore := metShed.Value()
	code, hdr, body := postJSON(t, ts.URL+"/v1/link?timeout=100ms", `{"tech": "90nm", "length_mm": 5}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("queued past deadline: status %d, want 504 (body %s)", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Errorf("queued-deadline shed carries no Retry-After header — clients cannot back off")
	}
	if got := metShed.Value() - shedBefore; got != 1 {
		t.Errorf("shed metric moved by %d on a queued-deadline shed, want 1", got)
	}
	if got := <-slow; got != http.StatusOK {
		t.Fatalf("slot-holding request: status %d", got)
	}
}

// TestStatusForClassifiesWorkerPanics pins the status-mapping fix: a
// recovered worker panic (*pool.PanicError) is a server fault and maps
// to 500, not the catch-all 400 that blamed the client for an engine
// crash.
func TestStatusForClassifiesWorkerPanics(t *testing.T) {
	pe := &pool.PanicError{Index: 3, Value: "boom"}
	if got := statusFor(pe); got != http.StatusInternalServerError {
		t.Errorf("bare PanicError: status %d, want 500", got)
	}
	if got := statusFor(fmt.Errorf("variation: sweep failed: %w", pe)); got != http.StatusInternalServerError {
		t.Errorf("wrapped PanicError: status %d, want 500", got)
	}
	// The catch-all stays: ordinary engine errors are still request
	// validation.
	if got := statusFor(errors.New("bad tech")); got != http.StatusBadRequest {
		t.Errorf("plain error: status %d, want 400", got)
	}
}

// TestWorkerPanicMapsTo500EndToEnd drives the same classification
// through the full serving path: a panic injected into a Monte Carlo
// worker item surfaces from the engine as a *PanicError and the
// response is a 500, with the server intact afterwards.
func TestWorkerPanicMapsTo500EndToEnd(t *testing.T) {
	_, ts := testServer(t, 4, 16, 1<<20, 10*time.Second)
	defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
		"pool.item": {Kind: faultinject.Panic, Times: 1},
	}})()
	code, _, body := postJSON(t, ts.URL+"/v1/yield", `{"tech": "90nm", "length_mm": 5, "samples": 256, "workers": 2}`)
	if code != http.StatusInternalServerError {
		t.Fatalf("worker panic: status %d, want 500 (body %s)", code, body)
	}
	if code, _, _ := postJSON(t, ts.URL+"/v1/yield", `{"tech": "90nm", "length_mm": 5, "samples": 256, "workers": 2}`); code != http.StatusOK {
		t.Errorf("request after worker panic: status %d, want 200", code)
	}
}
