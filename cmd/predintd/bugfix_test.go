package main

import (
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/pool"
)

// TestQueueFullShedRestoresDepthGauge pins the gauge fix on the
// queue-full shed path: the request bumps queued (and the gauge) at
// admission, is shed because the queue is full, and must leave the
// gauge back at the true depth. It used to decrement only the atomic
// counter, leaving predintd.queue_depth stuck one high after every
// shed — a dashboard that never drains.
func TestQueueFullShedRestoresDepthGauge(t *testing.T) {
	// Queue depth 0: the very first request overflows the queue and is
	// shed deterministically, no concurrent slot-holder needed.
	_, ts := testServer(t, 1, 0, 1<<20, 10*time.Second)
	before := metQueueDepth.Value()
	code, _, body := postJSON(t, ts.URL+"/v1/link", `{"tech": "90nm", "length_mm": 5}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("zero-depth queue admission: status %d, want 503 (body %s)", code, body)
	}
	if got := metQueueDepth.Value(); got != before {
		t.Fatalf("queue_depth gauge %d after shed, want %d (gauge leaked on the shed path)", got, before)
	}
}

// TestStatusForClassifiesWorkerPanics pins the status-mapping fix: a
// recovered worker panic (*pool.PanicError) is a server fault and maps
// to 500, not the catch-all 400 that blamed the client for an engine
// crash.
func TestStatusForClassifiesWorkerPanics(t *testing.T) {
	pe := &pool.PanicError{Index: 3, Value: "boom"}
	if got := statusFor(pe); got != http.StatusInternalServerError {
		t.Errorf("bare PanicError: status %d, want 500", got)
	}
	if got := statusFor(fmt.Errorf("variation: sweep failed: %w", pe)); got != http.StatusInternalServerError {
		t.Errorf("wrapped PanicError: status %d, want 500", got)
	}
	// The catch-all stays: ordinary engine errors are still request
	// validation.
	if got := statusFor(errors.New("bad tech")); got != http.StatusBadRequest {
		t.Errorf("plain error: status %d, want 400", got)
	}
}

// TestWorkerPanicMapsTo500EndToEnd drives the same classification
// through the full serving path: a panic injected into a Monte Carlo
// worker item surfaces from the engine as a *PanicError and the
// response is a 500, with the server intact afterwards.
func TestWorkerPanicMapsTo500EndToEnd(t *testing.T) {
	_, ts := testServer(t, 4, 16, 1<<20, 10*time.Second)
	defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
		"pool.item": {Kind: faultinject.Panic, Times: 1},
	}})()
	code, _, body := postJSON(t, ts.URL+"/v1/yield", `{"tech": "90nm", "length_mm": 5, "samples": 256, "workers": 2}`)
	if code != http.StatusInternalServerError {
		t.Fatalf("worker panic: status %d, want 500 (body %s)", code, body)
	}
	if code, _, _ := postJSON(t, ts.URL+"/v1/yield", `{"tech": "90nm", "length_mm": 5, "samples": 256, "workers": 2}`); code != http.StatusOK {
		t.Errorf("request after worker panic: status %d, want 200", code)
	}
}
