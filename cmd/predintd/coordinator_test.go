package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	predint "repro"
	"repro/internal/coordinator"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/surface"
)

// testCluster spins n loopback worker replicas, each a full predintd
// server with its own admission control, optionally its own surface
// cache, and a per-replica fault point ("predintd.shard.wN") so tests
// can fail workers selectively.
func testCluster(t *testing.T, n int, withSurface bool) ([]*server, []string) {
	t.Helper()
	servers := make([]*server, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		s := newServer(8, 64, 1<<20, 30*time.Second, time.Second)
		s.shardFault = fmt.Sprintf("predintd.shard.w%d", i)
		if withSurface {
			s.surf = surface.New(surface.Options{})
		}
		ts := httptest.NewServer(s.routes())
		t.Cleanup(ts.Close)
		servers[i] = s
		urls[i] = ts.URL
	}
	return servers, urls
}

func testCoordinator(t *testing.T, urls []string, surf *surface.Cache, shardSamples int) *coordinator.Coordinator {
	t.Helper()
	c, err := coordinator.New(coordinator.Config{
		Workers:      urls,
		ShardSamples: shardSamples,
		Surface:      surf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// coordReq is the canonical distributed request of these tests:
// NoSurface keeps every cache out of the way so only the sharded
// sampling plane is under test.
func coordReq(estimator string, samples int) predint.YieldRequest {
	s := samples
	return predint.YieldRequest{
		Tech:      "90nm",
		LengthMM:  5,
		Samples:   &s,
		Seed:      7,
		Estimator: estimator,
		NoSurface: true,
	}
}

// TestCoordinatorBitIdentity is the acceptance pin of the scale-out
// plane: a yield estimate computed through the coordinator over three
// loopback replicas is bit-identical to the single-process result, for
// every shardable estimator rung and at several shard sizes (one
// shard, batch-aligned, unaligned).
func TestCoordinatorBitIdentity(t *testing.T) {
	_, urls := testCluster(t, 3, false)
	for _, est := range []string{"mc", "isle", "qmc"} {
		t.Run(est, func(t *testing.T) {
			req := coordReq(est, 4096)
			want, err := predint.LinkYield(req)
			if err != nil {
				t.Fatal(err)
			}
			for _, shard := range []int{0, 256, 1000, 4096} {
				coord := testCoordinator(t, urls, nil, shard)
				got, err := coord.Estimate(context.Background(), req)
				if err != nil {
					t.Fatalf("shard=%d: %v", shard, err)
				}
				if got != want {
					t.Fatalf("shard=%d: coordinator %+v != local %+v", shard, got, want)
				}
			}
		})
	}
}

// TestCoordinatorGlobalStop pins the stopping rule staying global: with
// RelErr set, the coordinator's merged fold stops at exactly the sample
// the single-process kernel stops at — the result (including Samples)
// is bit-identical — and outstanding shards past the stop are
// cancelled, observable as the mid-wave-stop counter moving.
func TestCoordinatorGlobalStop(t *testing.T) {
	_, urls := testCluster(t, 3, false)
	relErr := 0.2
	req := coordReq("mc", 16384)
	req.RelErr = &relErr
	want, err := predint.LinkYield(req)
	if err != nil {
		t.Fatal(err)
	}
	if want.Samples >= 16384 {
		t.Fatalf("local run burned the whole budget (%d samples) — the test needs a mid-run stop", want.Samples)
	}
	stops0 := obs.Snapshot()["coordinator.stopped_mid_wave"]
	for _, shard := range []int{256, 512, 1024} {
		coord := testCoordinator(t, urls, nil, shard)
		got, err := coord.Estimate(context.Background(), req)
		if err != nil {
			t.Fatalf("shard=%d: %v", shard, err)
		}
		if got != want {
			t.Fatalf("shard=%d: coordinator %+v != local %+v (stop not global)", shard, got, want)
		}
	}
	if got := obs.Snapshot()["coordinator.stopped_mid_wave"] - stops0; got == 0 {
		t.Errorf("stopping rule never fired mid-wave across shard sizes 256/512/1024 — outstanding shards were not cancelled")
	}
}

// TestCoordinatorNotShardable pins the fallback contract for rungs the
// index partition cannot serve: the coordinator refuses with
// predint.ErrNotShardable, and the serving layer transparently runs the
// local path instead.
func TestCoordinatorNotShardable(t *testing.T) {
	_, urls := testCluster(t, 2, false)
	coord := testCoordinator(t, urls, nil, 0)
	req := coordReq("ais", 2048)
	if _, err := coord.Estimate(context.Background(), req); !errors.Is(err, predint.ErrNotShardable) {
		t.Fatalf("AIS through the coordinator: err %v, want ErrNotShardable", err)
	}
	yt := 0.9
	sizing := coordReq("", 2048)
	sizing.YieldTarget = &yt
	if _, err := coord.Estimate(context.Background(), sizing); !errors.Is(err, predint.ErrNotShardable) {
		t.Fatalf("sizing through the coordinator: err %v, want ErrNotShardable", err)
	}

	// End to end: a coordinator-mode server serves the AIS request via
	// its local fallback, transparently.
	front := newServer(8, 64, 1<<20, 30*time.Second, time.Second)
	front.coord = coord
	ts := httptest.NewServer(front.routes())
	t.Cleanup(ts.Close)
	code, _, body := postJSON(t, ts.URL+"/v1/yield",
		`{"tech": "90nm", "length_mm": 5, "samples": 2048, "seed": 7, "estimator": "ais", "no_surface": true}`)
	if code != http.StatusOK {
		t.Fatalf("AIS on a coordinator server: status %d, body %s", code, body)
	}
}

// TestCoordinatorEndToEnd drives the whole serving path: a front
// replica in coordinator mode fans /v1/yield out over three workers and
// must return byte-for-byte the numbers the engine produces locally.
func TestCoordinatorEndToEnd(t *testing.T) {
	_, urls := testCluster(t, 3, false)
	front := newServer(8, 64, 1<<20, 30*time.Second, time.Second)
	front.coord = testCoordinator(t, urls, nil, 512)
	ts := httptest.NewServer(front.routes())
	t.Cleanup(ts.Close)

	req := coordReq("mc", 4096)
	want, err := predint.LinkYield(req)
	if err != nil {
		t.Fatal(err)
	}
	res := postYield(t, ts.URL, `{"tech": "90nm", "length_mm": 5, "samples": 4096, "seed": 7, "no_surface": true}`)
	if res.FailProb != want.FailProb || res.StdErr != want.StdErr || res.Samples != want.Samples ||
		res.Yield != want.Yield || res.Source != "mc" {
		t.Fatalf("coordinated response %+v != local %+v", res, want)
	}
}

// TestCoordinatorFaultMatrix exercises the RPC seam failure modes:
// connection-level errors, torn responses, worker 503/timeout/panic, a
// worker dying mid-run, and a fully dead worker set. In every case the
// merged estimate must stay bit-identical to the single-process run —
// retries re-fetch shards from other replicas and exhaustion degrades
// to local execution, never to a different answer.
func TestCoordinatorFaultMatrix(t *testing.T) {
	req := coordReq("mc", 4096)
	want, err := predint.LinkYield(req)
	if err != nil {
		t.Fatal(err)
	}

	check := func(t *testing.T, coord *coordinator.Coordinator) {
		t.Helper()
		got, err := coord.Estimate(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("under faults: coordinator %+v != local %+v", got, want)
		}
	}

	t.Run("rpc-error-retries", func(t *testing.T) {
		_, urls := testCluster(t, 3, false)
		defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
			"coordinator.rpc": {Kind: faultinject.Error, Times: 2},
		}})()
		check(t, testCoordinator(t, urls, nil, 512))
	})

	t.Run("partial-response-retries", func(t *testing.T) {
		_, urls := testCluster(t, 3, false)
		defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
			"coordinator.response": {Kind: faultinject.Error, Times: 2},
		}})()
		check(t, testCoordinator(t, urls, nil, 512))
	})

	t.Run("worker-503-drains-to-peers", func(t *testing.T) {
		servers, urls := testCluster(t, 3, false)
		servers[1].draining.Store(true) // every shard sent to w1 is shed with 503
		check(t, testCoordinator(t, urls, nil, 512))
	})

	t.Run("worker-panic", func(t *testing.T) {
		_, urls := testCluster(t, 3, false)
		defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
			"predintd.shard.w0": {Kind: faultinject.Panic, Times: 2},
		}})()
		check(t, testCoordinator(t, urls, nil, 512))
	})

	t.Run("worker-timeout", func(t *testing.T) {
		_, urls := testCluster(t, 3, false)
		defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
			"predintd.shard.w1": {Kind: faultinject.Delay, Delay: 2 * time.Second, Times: 2},
		}})()
		coord, err := coordinator.New(coordinator.Config{
			Workers:      urls,
			ShardSamples: 512,
			Client:       &http.Client{Timeout: 300 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		check(t, coord)
	})

	t.Run("worker-killed-mid-run", func(t *testing.T) {
		_, urls := testCluster(t, 3, false)
		// w2 serves its first shard, then every later request to it
		// fails — the mid-run death of a replica. Its remaining shards
		// must be re-fetched from other replicas, bit-identically.
		defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
			"predintd.shard.w2": {Kind: faultinject.Error, After: 1},
		}})()
		check(t, testCoordinator(t, urls, nil, 256))
	})

	t.Run("worker-set-exhausted-degrades-local", func(t *testing.T) {
		_, urls := testCluster(t, 2, false)
		defer faultinject.Activate(faultinject.Plan{Points: map[string]faultinject.Point{
			"predintd.shard.w0": {Kind: faultinject.Error},
			"predintd.shard.w1": {Kind: faultinject.Error},
		}})()
		fallbacks0 := obs.Snapshot()["coordinator.local_fallbacks"]
		check(t, testCoordinator(t, urls, nil, 1024))
		if got := obs.Snapshot()["coordinator.local_fallbacks"] - fallbacks0; got == 0 {
			t.Errorf("dead worker set: local-fallback counter did not move")
		}
	})
}

// TestCoordinatorSurfaceOwnerRouting pins the warm-traffic routing: a
// completed estimate is recorded at the replica that owns the link
// class under rendezvous hashing, and the repeated request is answered
// from that replica's surface without re-sampling.
func TestCoordinatorSurfaceOwnerRouting(t *testing.T) {
	servers, urls := testCluster(t, 3, true)
	coord := testCoordinator(t, urls, nil, 512)
	req := coordReq("mc", 2048)
	req.NoSurface = false

	first, err := coord.Estimate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Source != "mc" {
		t.Fatalf("cold coordinated query: source %q, want mc", first.Source)
	}
	second, err := coord.Estimate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Source != "surface" {
		t.Fatalf("repeated coordinated query: source %q, want surface (owner-routed probe)", second.Source)
	}
	if second.FailProb != first.FailProb || second.StdErr != first.StdErr || second.Samples != first.Samples {
		t.Fatalf("owner-routed warm answer mangled the estimate:\n  first:  %+v\n  second: %+v", first, second)
	}

	// Exactly one replica — the owner — holds the recorded point.
	owners := 0
	for _, s := range servers {
		if s.surf.Stats().Points > 0 {
			owners++
		}
	}
	if owners != 1 {
		t.Errorf("recorded class present on %d replicas, want exactly 1 (the rendezvous owner)", owners)
	}
}

// TestCoordinatorSurfaceVersionRefusal is the satellite-3 regression:
// surface versions are per-replica, so after this replica invalidates,
// a probe routed to the owning replica — whose cache still holds points
// recorded under the old version — must be refused, and the request
// re-sampled, bit-identically. Without the version guard the second
// query would be served the stale pre-invalidation interpolation.
func TestCoordinatorSurfaceVersionRefusal(t *testing.T) {
	_, urls := testCluster(t, 2, true)
	local := surface.New(surface.Options{})
	coord := testCoordinator(t, urls, local, 512)
	req := coordReq("mc", 2048)
	req.NoSurface = false

	first, err := coord.Estimate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// Warm control: versions agree, the owner answers.
	warm, err := coord.Estimate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Source != "surface" {
		t.Fatalf("version-consistent probe missed: source %q", warm.Source)
	}

	// This replica invalidates (stale tech descriptor, say); its
	// version moves while the owner still holds old-version points.
	if local.InvalidateAll() == 0 {
		t.Fatal("local invalidation dropped nothing — the coordinator never recorded locally")
	}
	refusals0 := obs.Snapshot()["coordinator.version_refusals"]
	after, err := coord.Estimate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if after.Source != "surface" && after.Source != "mc" {
		t.Fatalf("post-invalidation query: source %q", after.Source)
	}
	if after.Source == "surface" {
		t.Fatalf("post-invalidation query served from a cross-version surface — the stale-answer bug")
	}
	if got := obs.Snapshot()["coordinator.version_refusals"] - refusals0; got == 0 {
		t.Errorf("version-refusal counter did not move on a cross-version probe")
	}
	// Re-sampling the same request reproduces the same estimate.
	if after.FailProb != first.FailProb || after.StdErr != first.StdErr || after.Samples != first.Samples {
		t.Fatalf("re-sampled post-invalidation answer differs:\n  first: %+v\n  after: %+v", first, after)
	}
}
