package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	predint "repro"
	"repro/internal/coordinator"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/surface"
)

// Serving-layer metrics. queue_depth and inflight are levels; shed and
// degraded count the hardening paths firing; latency carries p50/p99
// through the shared registry.
var (
	metRequests   = obs.NewCounter("predintd.requests")
	metShed       = obs.NewCounter("predintd.shed")
	metDegraded   = obs.NewCounter("predintd.degraded")
	metQueueDepth = obs.NewGauge("predintd.queue_depth")
	metInflight   = obs.NewGauge("predintd.inflight")
	metLatency    = obs.NewHistogram("predintd.latency")
	// Warm-surface tier outcomes on the yield endpoints; the hit ratio
	// hits/(hits+misses) is the cache's effectiveness on live traffic.
	// Neither moves while the surface is disabled.
	metSurfaceHits   = obs.NewCounter("predintd.yield_surface_hits")
	metSurfaceMisses = obs.NewCounter("predintd.yield_surface_misses")
)

// Per-estimator serve counts on the yield endpoints: which rung of the
// high-sigma ladder actually answered live traffic (one increment per
// result, so a batch moves its counter once per candidate). Degraded
// nominal results carry no estimator and land in yield_by_nominal.
var metYieldByEstimator = map[string]*obs.Counter{
	"mc":   obs.NewCounter("predintd.yield_by_mc"),
	"qmc":  obs.NewCounter("predintd.yield_by_qmc"),
	"isle": obs.NewCounter("predintd.yield_by_isle"),
	"ais":  obs.NewCounter("predintd.yield_by_ais"),
	"wcd":  obs.NewCounter("predintd.yield_by_wcd"),
	"":     obs.NewCounter("predintd.yield_by_nominal"),
}

func countYieldEstimator(kind string) {
	if c, ok := metYieldByEstimator[kind]; ok {
		c.Inc()
	}
}

// server is the hardened HTTP facade over the predint engines. Every
// v1 request passes admission control (bounded queue + in-flight cap,
// shedding beyond), runs under a per-request deadline, and /v1/yield
// additionally degrades to the closed-form nominal estimate when its
// Monte Carlo budget exceeds the cost ceiling or the queue is under
// pressure.
type server struct {
	inflight     chan struct{} // slot semaphore; capacity = in-flight cap
	queued       atomic.Int64  // admitted requests not yet holding a slot
	queueDepth   int64         // waiting requests beyond which we shed
	maxYieldCost int           // largest Monte Carlo budget served in full
	maxBody      int64         // request-body byte cap; overflow is a 413
	reqTimeout   time.Duration // server-side per-request deadline
	retryAfter   time.Duration // Retry-After hint on shed responses
	draining     atomic.Bool   // set on SIGTERM before the listener drains

	// surf is this replica's own yield-surface cache (nil when running
	// surface-less). It is per-server, not process-global, so loopback
	// multi-replica tests — and real multi-replica deployments — get
	// independent invalidation state per replica.
	surf *surface.Cache
	// coord, when set, fans /v1/yield sample ranges out over the
	// configured worker replicas; nil serves everything locally.
	coord *coordinator.Coordinator
	// shardFault names the fault point guarding /v1/internal/shard;
	// tests give each loopback replica its own name to fail workers
	// selectively.
	shardFault string
}

func newServer(inflight, queue, maxYieldCost int, reqTimeout, retryAfter time.Duration) *server {
	return &server{
		inflight:     make(chan struct{}, inflight),
		queueDepth:   int64(queue),
		maxYieldCost: maxYieldCost,
		maxBody:      1 << 20,
		reqTimeout:   reqTimeout,
		retryAfter:   retryAfter,
		shardFault:   "predintd.shard",
	}
}

// pressureKey carries the admission-time queue-pressure observation to
// the handler (degrade decisions must use the state seen at admission,
// not whatever the queue looks like once the handler runs).
type ctxKey int

const pressureKey ctxKey = iota

func pressured(ctx context.Context) bool {
	p, _ := ctx.Value(pressureKey).(bool)
	return p
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/link", s.admit(s.handleLink))
	mux.HandleFunc("POST /v1/yield", s.admit(s.handleYield))
	mux.HandleFunc("POST /v1/yield/batch", s.admit(s.handleYieldBatch))
	mux.HandleFunc("POST /v1/noc", s.admit(s.handleNoC))
	mux.HandleFunc("POST /v1/internal/shard", s.admit(s.handleShard))
	mux.HandleFunc("GET /v1/internal/workers", s.handleWorkers)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.Handle("GET /metrics", obs.Handler())
	return mux
}

// apiFunc is one endpoint's logic: context in, response document (or
// error) out. The admission wrapper owns deadlines, shedding, panic
// containment, and serialization.
type apiFunc func(ctx context.Context, r *http.Request) (any, error)

// admit wraps an endpoint with the hardening layers, outermost first:
// drain check, bounded queue with shedding, in-flight slot wait
// (bounded by the request deadline), panic containment, latency
// accounting.
func (s *server) admit(fn apiFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		metRequests.Inc()
		if s.draining.Load() {
			s.shed(w, "draining")
			return
		}

		d, err := s.deadline(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()

		waiting := s.queued.Add(1)
		metQueueDepth.Set(waiting)
		if waiting > s.queueDepth {
			s.queued.Add(-1)
			metQueueDepth.Set(s.queued.Load())
			s.shed(w, "queue full")
			return
		}
		// Queue pressure is observed before the slot wait: a request
		// that could not start immediately sees pressured=true even if
		// a slot frees up a microsecond later.
		underPressure := false
		select {
		case s.inflight <- struct{}{}:
		default:
			underPressure = true
			select {
			case s.inflight <- struct{}{}:
			case <-ctx.Done():
				s.queued.Add(-1)
				metQueueDepth.Set(s.queued.Load())
				// This is a shed, same as queue-full: the request was
				// turned away by load, not by its own fault, so it must
				// carry the Retry-After hint and move the shed metric —
				// load-based clients key their backoff on both.
				s.shedWith(w, http.StatusGatewayTimeout,
					fmt.Errorf("predintd: deadline expired while queued: %w", ctx.Err()))
				return
			}
		}
		s.queued.Add(-1)
		metQueueDepth.Set(s.queued.Load())
		metInflight.Add(1)
		start := time.Now()
		defer func() {
			<-s.inflight
			metInflight.Add(-1)
			metLatency.Observe(time.Since(start))
		}()
		defer func() {
			if p := recover(); p != nil {
				writeErr(w, http.StatusInternalServerError, fmt.Errorf("predintd: handler panicked: %v", p))
			}
		}()

		res, err := fn(context.WithValue(ctx, pressureKey, underPressure), r)
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	}
}

// deadline resolves the effective per-request deadline: the server's
// -request-timeout, tightened (never widened) by an optional ?timeout=
// query parameter.
func (s *server) deadline(r *http.Request) (time.Duration, error) {
	d := s.reqTimeout
	if v := r.URL.Query().Get("timeout"); v != "" {
		client, err := time.ParseDuration(v)
		if err != nil || client <= 0 {
			return 0, fmt.Errorf("predintd: invalid timeout parameter %q", v)
		}
		if client < d {
			d = client
		}
	}
	return d, nil
}

func (s *server) shed(w http.ResponseWriter, reason string) {
	s.shedWith(w, http.StatusServiceUnavailable, fmt.Errorf("predintd: overloaded (%s), retry later", reason))
}

// shedWith is the single exit for every load-based rejection,
// whatever its status code: it increments the shed metric and sets the
// Retry-After hint, so clients back off uniformly whether they were
// turned away at the queue (503) or timed out waiting in it (504).
func (s *server) shedWith(w http.ResponseWriter, status int, err error) {
	metShed.Inc()
	w.Header().Set("Retry-After", strconv.Itoa(int((s.retryAfter+time.Second-1)/time.Second)))
	writeErr(w, status, err)
}

func statusFor(err error) int {
	var pe *pool.PanicError
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe):
		// The body cap tripped: the client sent too much, and should
		// not retry the same payload.
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, faultinject.ErrInjected):
		return http.StatusInternalServerError
	case errors.As(err, &pe):
		// A recovered worker panic is a server fault, not a bad
		// request: surface it as a 500 like any other engine failure.
		return http.StatusInternalServerError
	default:
		// Everything else out of the engines is request validation.
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// decodeBody decodes a JSON request body strictly: unknown fields and
// trailing garbage are 400s, and bodies over the -max-body cap are
// 413s (http.MaxBytesReader stops reading at the cap, so a hostile or
// confused peer cannot balloon memory by streaming).
func (s *server) decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return fmt.Errorf("predintd: request body over the %d-byte cap: %w", s.maxBody, err)
		}
		return fmt.Errorf("predintd: bad request body: %w", err)
	}
	if dec.More() {
		return errors.New("predintd: bad request body: trailing data")
	}
	return nil
}

// ---- /v1/link ----

type linkRequestDTO struct {
	Tech             string   `json:"tech"`
	LengthMM         float64  `json:"length_mm"`
	Bits             *int     `json:"bits,omitempty"`
	Style            string   `json:"style,omitempty"`
	PowerWeight      *float64 `json:"power_weight,omitempty"`
	DelayOptimal     bool     `json:"delay_optimal,omitempty"`
	LibrarySizesOnly bool     `json:"library_sizes_only,omitempty"`
	OptimizeGeometry bool     `json:"optimize_geometry,omitempty"`
	MaxPitchMult     float64  `json:"max_pitch_mult,omitempty"`
	ActivityFactor   *float64 `json:"activity_factor,omitempty"`
	InputSlewPS      *float64 `json:"input_slew_ps,omitempty"`
}

type linkResultDTO struct {
	Repeaters       int     `json:"repeaters"`
	RepeaterSize    float64 `json:"repeater_size"`
	DelayS          float64 `json:"delay_s"`
	OutputSlewS     float64 `json:"output_slew_s"`
	DynamicPowerW   float64 `json:"dynamic_power_w"`
	LeakagePowerW   float64 `json:"leakage_power_w"`
	AreaM2          float64 `json:"area_m2"`
	WireResistance  float64 `json:"wire_resistance_ohm"`
	WireCapacitance float64 `json:"wire_capacitance_f"`
	WidthMult       float64 `json:"width_mult"`
	SpacingMult     float64 `json:"spacing_mult"`
}

func (s *server) handleLink(ctx context.Context, r *http.Request) (any, error) {
	if err := faultinject.Hit("predintd.handle"); err != nil {
		return nil, err
	}
	var dto linkRequestDTO
	if err := s.decodeBody(r, &dto); err != nil {
		return nil, err
	}
	res, err := predint.DesignLinkCtx(ctx, predint.LinkRequest{
		Tech:             dto.Tech,
		LengthMM:         dto.LengthMM,
		Bits:             dto.Bits,
		Style:            predint.Style(dto.Style),
		PowerWeight:      dto.PowerWeight,
		DelayOptimal:     dto.DelayOptimal,
		LibrarySizesOnly: dto.LibrarySizesOnly,
		OptimizeGeometry: dto.OptimizeGeometry,
		MaxPitchMult:     dto.MaxPitchMult,
		ActivityFactor:   dto.ActivityFactor,
		InputSlewPS:      dto.InputSlewPS,
	})
	if err != nil {
		return nil, err
	}
	return linkResultDTO{
		Repeaters:       res.Repeaters,
		RepeaterSize:    res.RepeaterSize,
		DelayS:          res.Delay,
		OutputSlewS:     res.OutputSlew,
		DynamicPowerW:   res.DynamicPower,
		LeakagePowerW:   res.LeakagePower,
		AreaM2:          res.Area,
		WireResistance:  res.WireResistance,
		WireCapacitance: res.WireCapacitance,
		WidthMult:       res.WidthMult,
		SpacingMult:     res.SpacingMult,
	}, nil
}

// ---- /v1/yield ----

type yieldRequestDTO struct {
	Tech               string   `json:"tech"`
	LengthMM           float64  `json:"length_mm"`
	Style              string   `json:"style,omitempty"`
	PowerWeight        *float64 `json:"power_weight,omitempty"`
	InputSlewPS        *float64 `json:"input_slew_ps,omitempty"`
	TargetPS           *float64 `json:"target_ps,omitempty"`
	Samples            *int     `json:"samples,omitempty"`
	RelErr             *float64 `json:"rel_err,omitempty"`
	AbsErr             *float64 `json:"abs_err,omitempty"`
	Seed               uint64   `json:"seed,omitempty"`
	Workers            int      `json:"workers,omitempty"`
	ImportanceSampling bool     `json:"importance_sampling,omitempty"`
	Estimator          string   `json:"estimator,omitempty"`
	TargetSigma        *float64 `json:"target_sigma,omitempty"`
	Sampler            string   `json:"sampler,omitempty"`
	SigmaScale         *float64 `json:"sigma_scale,omitempty"`
	YieldTarget        *float64 `json:"yield_target,omitempty"`
	NoSurface          bool     `json:"no_surface,omitempty"`
}

type yieldResultDTO struct {
	Repeaters         int     `json:"repeaters"`
	RepeaterSize      float64 `json:"repeater_size"`
	NominalDelayS     float64 `json:"nominal_delay_s"`
	TargetS           float64 `json:"target_s"`
	Yield             float64 `json:"yield"`
	FailProb          float64 `json:"fail_prob"`
	StdErr            float64 `json:"std_err"`
	CI95              float64 `json:"ci95"`
	Samples           int     `json:"samples"`
	ImportanceSampled bool    `json:"importance_sampled,omitempty"`
	Estimator         string  `json:"estimator,omitempty"`
	VarianceReduction float64 `json:"variance_reduction,omitempty"`
	Resized           bool    `json:"resized,omitempty"`
	Degraded          bool    `json:"degraded,omitempty"`
	FailProbBound     float64 `json:"fail_prob_bound,omitempty"`
	Source            string  `json:"source"`
}

// yieldRequest maps the wire DTO onto the facade request.
func (dto yieldRequestDTO) yieldRequest() predint.YieldRequest {
	return predint.YieldRequest{
		Tech:               dto.Tech,
		LengthMM:           dto.LengthMM,
		Style:              predint.Style(dto.Style),
		PowerWeight:        dto.PowerWeight,
		InputSlewPS:        dto.InputSlewPS,
		TargetPS:           dto.TargetPS,
		Samples:            dto.Samples,
		RelErr:             dto.RelErr,
		AbsErr:             dto.AbsErr,
		Seed:               dto.Seed,
		Workers:            dto.Workers,
		ImportanceSampling: dto.ImportanceSampling,
		Estimator:          dto.Estimator,
		TargetSigma:        dto.TargetSigma,
		Sampler:            dto.Sampler,
		SigmaScale:         dto.SigmaScale,
		YieldTarget:        dto.YieldTarget,
		NoSurface:          dto.NoSurface,
	}
}

// degradeYield decides the graceful-degradation path from the
// requested Monte Carlo budget and the admission-time queue pressure.
func (s *server) degradeYield(ctx context.Context, samplesField *int) bool {
	samples := predint.DefaultYieldSamples
	if samplesField != nil {
		samples = *samplesField
	}
	return samples > s.maxYieldCost || pressured(ctx)
}

func yieldResultDTOFrom(res predint.YieldResult) yieldResultDTO {
	countYieldEstimator(res.Estimator)
	return yieldResultDTO{
		Repeaters:         res.Repeaters,
		RepeaterSize:      res.RepeaterSize,
		NominalDelayS:     res.NominalDelay,
		TargetS:           res.Target,
		Yield:             res.Yield,
		FailProb:          res.FailProb,
		StdErr:            res.StdErr,
		CI95:              res.CI95,
		Samples:           res.Samples,
		ImportanceSampled: res.ImportanceSampled,
		Estimator:         res.Estimator,
		VarianceReduction: res.VarianceReduction,
		Resized:           res.Resized,
		Degraded:          res.Degraded,
		FailProbBound:     res.FailProbBound,
		Source:            res.Source,
	}
}

func (s *server) handleYield(ctx context.Context, r *http.Request) (any, error) {
	if err := faultinject.Hit("predintd.handle"); err != nil {
		return nil, err
	}
	var dto yieldRequestDTO
	if err := s.decodeBody(r, &dto); err != nil {
		return nil, err
	}
	req := dto.yieldRequest()
	sf := predint.Surfaced{Cache: s.surf}

	// Tier 1 — warm surface: consulted before any cost or pressure
	// decision, because a warm answer is cheaper than even the nominal
	// closed form. Under pressure a warm query is thus still served a
	// real (banded) estimate instead of the vacuous nominal step.
	if s.surf != nil && !req.NoSurface {
		res, ok, err := sf.LinkYieldSurfaceCtx(ctx, req)
		if err != nil {
			return nil, err
		}
		if ok {
			metSurfaceHits.Inc()
			return yieldResultDTOFrom(res), nil
		}
		metSurfaceMisses.Inc()
	}

	// Tier 2/3 — graceful degradation: a Monte Carlo budget beyond the
	// cost ceiling, or admission-time queue pressure, buys the
	// closed-form nominal estimate instead of an error or an unbounded
	// wait. The response is marked degraded and carries the vacuous
	// rule-of-three bound so callers can't mistake it for a sampled
	// estimate. Otherwise the full sampling path runs — fanned out
	// over the worker set in coordinator mode, locally otherwise (and
	// locally for requests the coordinator cannot shard).
	var res predint.YieldResult
	var err error
	switch {
	case s.degradeYield(ctx, dto.Samples):
		metDegraded.Inc()
		res, err = predint.LinkYieldNominalCtx(ctx, req)
	case s.coord != nil:
		res, err = s.coord.Estimate(ctx, req)
		if errors.Is(err, predint.ErrNotShardable) {
			res, err = sf.LinkYieldCtx(ctx, req)
		}
	default:
		res, err = sf.LinkYieldCtx(ctx, req)
	}
	if err != nil {
		return nil, err
	}
	return yieldResultDTOFrom(res), nil
}

// ---- /v1/yield/batch ----

type yieldCandidateDTO struct {
	RepeaterSize float64 `json:"repeater_size"`
	Repeaters    int     `json:"repeaters"`
}

type yieldBatchRequestDTO struct {
	yieldRequestDTO
	Candidates []yieldCandidateDTO `json:"candidates"`
}

type yieldBatchResultDTO struct {
	TargetS float64          `json:"target_s"`
	Results []yieldResultDTO `json:"results"`
}

// handleYieldBatch scores explicit candidate buffering solutions of
// one link on common random numbers (predint.LinkYieldBatch): one
// sample stream and one per-sample technology perturbation serve every
// candidate. The same degradation rule as /v1/yield applies — past the
// cost ceiling or under queue pressure every candidate gets the
// closed-form nominal evaluation, marked degraded.
func (s *server) handleYieldBatch(ctx context.Context, r *http.Request) (any, error) {
	if err := faultinject.Hit("predintd.handle"); err != nil {
		return nil, err
	}
	var dto yieldBatchRequestDTO
	if err := s.decodeBody(r, &dto); err != nil {
		return nil, err
	}
	req := predint.YieldBatchRequest{
		YieldRequest: dto.yieldRequest(),
		Candidates:   make([]predint.YieldCandidate, len(dto.Candidates)),
	}
	for i, c := range dto.Candidates {
		req.Candidates[i] = predint.YieldCandidate{RepeaterSize: c.RepeaterSize, Repeaters: c.Repeaters}
	}

	// The same three-tier ladder as /v1/yield, with the batch probe's
	// all-or-nothing rule: the surface answers only when every
	// candidate is warm. Batches are not coordinated: common random
	// numbers already amortize the sweep, and splitting K candidates ×
	// N samples is a different partitioning problem than the yield
	// endpoint's.
	sf := predint.Surfaced{Cache: s.surf}
	if s.surf != nil && !req.NoSurface {
		res, ok, err := sf.LinkYieldBatchSurfaceCtx(ctx, req)
		if err != nil {
			return nil, err
		}
		if ok {
			metSurfaceHits.Inc()
			out := yieldBatchResultDTO{TargetS: res.Target, Results: make([]yieldResultDTO, len(res.Results))}
			for i, r := range res.Results {
				out.Results[i] = yieldResultDTOFrom(r)
			}
			return out, nil
		}
		metSurfaceMisses.Inc()
	}

	var res predint.YieldBatchResult
	var err error
	if s.degradeYield(ctx, dto.Samples) {
		metDegraded.Inc()
		res, err = predint.LinkYieldBatchNominalCtx(ctx, req)
	} else {
		res, err = sf.LinkYieldBatchCtx(ctx, req)
	}
	if err != nil {
		return nil, err
	}
	out := yieldBatchResultDTO{TargetS: res.Target, Results: make([]yieldResultDTO, len(res.Results))}
	for i, r := range res.Results {
		out.Results[i] = yieldResultDTOFrom(r)
	}
	return out, nil
}

// ---- /v1/internal/shard ----

// handleShard serves the coordinator protocol: sample-range
// collection, surface probes, and surface records against this
// replica's own cache. It runs behind the same admission control as
// every v1 endpoint, so an overloaded worker sheds shard traffic with
// a 503 and the coordinator retries against the next replica.
func (s *server) handleShard(ctx context.Context, r *http.Request) (any, error) {
	if err := faultinject.Hit(s.shardFault); err != nil {
		return nil, err
	}
	var sr coordinator.ShardRequest
	if err := s.decodeBody(r, &sr); err != nil {
		return nil, err
	}
	return coordinator.ExecuteShard(ctx, s.surf, sr)
}

// ---- /v1/noc ----

type nocRequestDTO struct {
	Case             string `json:"case"`
	Tech             string `json:"tech"`
	UseOriginalModel bool   `json:"use_original_model,omitempty"`
	Style            string `json:"style,omitempty"`
	SimulateTraffic  bool   `json:"simulate_traffic,omitempty"`
	Workers          int    `json:"workers,omitempty"`
}

type nocResultDTO struct {
	Links           int     `json:"links"`
	Routers         int     `json:"routers"`
	PowerW          float64 `json:"power_w"`
	AreaM2          float64 `json:"area_m2"`
	AvgHops         float64 `json:"avg_hops"`
	MaxLinkLengthMM float64 `json:"max_link_length_mm"`
}

func (s *server) handleNoC(ctx context.Context, r *http.Request) (any, error) {
	if err := faultinject.Hit("predintd.handle"); err != nil {
		return nil, err
	}
	var dto nocRequestDTO
	if err := s.decodeBody(r, &dto); err != nil {
		return nil, err
	}
	res, err := predint.SynthesizeNoCCtx(ctx, predint.NoCRequest{
		Case:             dto.Case,
		Tech:             dto.Tech,
		UseOriginalModel: dto.UseOriginalModel,
		Style:            predint.Style(dto.Style),
		SimulateTraffic:  dto.SimulateTraffic,
		Workers:          dto.Workers,
	})
	if err != nil {
		return nil, err
	}
	return nocResultDTO{
		Links:           res.Links,
		Routers:         res.Routers,
		PowerW:          res.Metrics.TotalPower(),
		AreaM2:          res.Metrics.Area,
		AvgHops:         res.Metrics.AvgHops,
		MaxLinkLengthMM: res.MaxLinkLengthMM,
	}, nil
}

// ---- /healthz, /readyz, /v1/internal/workers ----

// handleHealth is pure process liveness: as long as the process can
// answer HTTP it is alive, even while draining. Readiness — should
// this replica receive traffic — lives on /readyz.
func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady reports whether the replica should receive traffic: 503
// while draining, and — in coordinator mode with the prober on — 503
// until the first successful worker probe, so a load balancer never
// routes to a coordinator that has not yet seen a live worker.
func (s *server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if s.coord != nil && !s.coord.Ready() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "waiting for first worker probe"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleWorkers is the membership admin snapshot: per-worker state,
// breaker, probe streaks, backoff, and RPC latency. Served outside
// admission control so it stays reachable while the data plane sheds.
func (s *server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	if s.coord == nil {
		writeErr(w, http.StatusNotFound, errors.New("predintd: not running in coordinator mode"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"workers": s.coord.WorkersStatus()})
}
