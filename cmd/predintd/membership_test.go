package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	predint "repro"
	"repro/internal/coordinator"
	"repro/internal/obs"
	"repro/internal/surface"
)

// Chaos fault modes a replica can be switched into at runtime. Unlike
// faultinject plans (global, last-writer-wins), each gate is an
// independent atomic, so a churner goroutine can flip replicas
// concurrently while requests are in flight.
const (
	chaosOK   int32 = iota
	chaosDead       // refuse everything with 502, instantly
	chaosSlow       // serve correctly, but late
	chaosHung       // accept the connection and never answer
)

// chaosGate wraps a replica's whole handler (shard RPCs and health
// probes alike) with a switchable fault mode.
type chaosGate struct {
	mode atomic.Int32
	next http.Handler
}

func (g *chaosGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch g.mode.Load() {
	case chaosDead:
		http.Error(w, "chaos: dead", http.StatusBadGateway)
		return
	case chaosSlow:
		time.Sleep(30 * time.Millisecond)
	case chaosHung:
		// Hold the request open until the client gives up; the handler
		// never runs, so the caller sees a stuck connection, not an
		// error. The body must be drained first: the server only starts
		// the background connection read — which is what cancels
		// r.Context() on client disconnect — once the request body is
		// consumed.
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second): // safety net for test cleanup
		}
		return
	}
	g.next.ServeHTTP(w, r)
}

// chaosCluster is testCluster with a chaos gate in front of every
// replica.
func chaosCluster(t *testing.T, n int, withSurface bool) ([]*server, []*chaosGate, []string) {
	t.Helper()
	servers := make([]*server, n)
	gates := make([]*chaosGate, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		s := newServer(8, 64, 1<<20, 30*time.Second, time.Second)
		s.shardFault = fmt.Sprintf("predintd.shard.chaos%d", i)
		if withSurface {
			s.surf = surface.New(surface.Options{})
		}
		g := &chaosGate{next: s.routes()}
		ts := httptest.NewServer(g)
		t.Cleanup(ts.Close)
		servers[i], gates[i], urls[i] = s, g, ts.URL
	}
	return servers, gates, urls
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

func statusOf(c *coordinator.Coordinator, addr string) coordinator.WorkerStatus {
	for _, st := range c.WorkersStatus() {
		if st.Addr == addr {
			return st
		}
	}
	return coordinator.WorkerStatus{}
}

// TestReadyzGatesOnFirstProbe pins the front replica's readiness gate:
// with the prober on, /readyz stays 503 until the coordinator has seen
// one live worker, and a worker joined at runtime (AddWorker) flips it.
// The admin endpoint must meanwhile expose the dead seed worker as
// ejected with its probe error.
func TestReadyzGatesOnFirstProbe(t *testing.T) {
	// A worker address that refuses connections: bind, then close.
	deadTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := deadTS.URL
	deadTS.Close()

	coord, err := coordinator.New(coordinator.Config{
		Workers:       []string{deadURL},
		Client:        &http.Client{Timeout: 2 * time.Second},
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		EjectAfter:    2,
		ReadmitAfter:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)

	front := newServer(8, 64, 1<<20, 30*time.Second, time.Second)
	front.coord = coord
	ts := httptest.NewServer(front.routes())
	t.Cleanup(ts.Close)

	getStatus := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := getStatus("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz before any successful probe: status %d, want 503", got)
	}
	if got := getStatus("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz is liveness, not readiness: status %d, want 200", got)
	}

	// A live worker joins at runtime; the first successful probe of it
	// makes the front replica ready.
	_, liveURLs := testCluster(t, 1, false)
	if err := coord.AddWorker(liveURLs[0]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "readyz to flip after the live worker joined", func() bool {
		return getStatus("/readyz") == http.StatusOK
	})
	waitFor(t, 3*time.Second, "the dead seed worker to be ejected", func() bool {
		return statusOf(coord, deadURL).State == "ejected"
	})
	if st := statusOf(coord, deadURL); st.LastProbeError == "" {
		t.Errorf("ejected worker carries no probe error: %+v", st)
	}

	// Admin snapshot through the front replica's HTTP surface.
	resp, err := http.Get(ts.URL + "/v1/internal/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("workers endpoint: status %d", resp.StatusCode)
	}
	var doc struct {
		Workers []coordinator.WorkerStatus `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Workers) != 2 {
		t.Fatalf("workers endpoint listed %d members, want 2: %+v", len(doc.Workers), doc.Workers)
	}
	states := map[string]string{}
	for _, w := range doc.Workers {
		states[w.Addr] = w.State
	}
	if states[deadURL] != "ejected" {
		t.Errorf("dead worker state %q over HTTP, want ejected", states[deadURL])
	}
	if states[liveURLs[0]] != "ready" {
		t.Errorf("live worker state %q over HTTP, want ready", states[liveURLs[0]])
	}
}

// TestWorkerEvictionAndReadmission drives the full health-probe loop
// against a replica that dies and recovers: consecutive probe failures
// evict it (and dispatch stops cold — its request counter freezes),
// consecutive successes readmit it, and the estimates served throughout
// stay bit-identical.
func TestWorkerEvictionAndReadmission(t *testing.T) {
	_, gates, urls := chaosCluster(t, 3, false)
	coord, err := coordinator.New(coordinator.Config{
		Workers:       urls,
		Client:        &http.Client{Timeout: 2 * time.Second},
		ShardSamples:  512,
		ProbeInterval: 15 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		EjectAfter:    2,
		ReadmitAfter:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)

	req := coordReq("mc", 4096)
	want, err := predint.LinkYield(req)
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string) {
		t.Helper()
		got, err := coord.Estimate(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if got != want {
			t.Fatalf("%s: coordinator %+v != local %+v", label, got, want)
		}
	}
	check("healthy fleet")

	before := obs.Snapshot()
	gates[1].mode.Store(chaosDead)
	waitFor(t, 3*time.Second, "w1 to be ejected", func() bool {
		return statusOf(coord, urls[1]).State == "ejected"
	})

	// While ejected, w1 must receive no shard dispatch at all: its
	// lifetime RPC counter is frozen across several full estimates.
	frozen := statusOf(coord, urls[1]).Requests
	for i := 0; i < 3; i++ {
		check("two-replica fleet")
	}
	if got := statusOf(coord, urls[1]).Requests; got != frozen {
		t.Errorf("ejected worker served %d new requests, want 0", got-frozen)
	}

	gates[1].mode.Store(chaosOK)
	waitFor(t, 3*time.Second, "w1 to be readmitted", func() bool {
		return statusOf(coord, urls[1]).State == "ready"
	})
	check("recovered fleet")

	after := obs.Snapshot()
	for _, counter := range []string{
		"coordinator.ejections",
		"coordinator.readmissions",
		"coordinator.health_probe_failures",
	} {
		if after[counter]-before[counter] == 0 {
			t.Errorf("counter %s did not move across an eviction/readmission cycle", counter)
		}
	}
}

// TestReadmissionSurfaceVersionRefusal is the churn/coherence corner:
// a worker that owned a recorded surface point dies, the coordinator
// invalidates its own surface while the owner is away, and the owner
// comes back still holding old-version points. The readmitted owner's
// probe must be refused by the version guard and the request
// re-sampled — bit-identically — rather than served the stale point.
func TestReadmissionSurfaceVersionRefusal(t *testing.T) {
	servers, gates, urls := chaosCluster(t, 2, true)
	local := surface.New(surface.Options{})
	coord, err := coordinator.New(coordinator.Config{
		Workers:       urls,
		Client:        &http.Client{Timeout: 2 * time.Second},
		ShardSamples:  512,
		Surface:       local,
		ProbeInterval: 15 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		EjectAfter:    2,
		ReadmitAfter:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)

	req := coordReq("mc", 2048)
	req.NoSurface = false
	first, err := coord.Estimate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := coord.Estimate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Source != "surface" {
		t.Fatalf("warm control query: source %q, want surface", warm.Source)
	}

	// The rendezvous owner is the one replica holding the point.
	ownerIdx := -1
	for i, s := range servers {
		if s.surf.Stats().Points > 0 {
			ownerIdx = i
		}
	}
	if ownerIdx < 0 {
		t.Fatal("no replica holds the recorded point")
	}

	gates[ownerIdx].mode.Store(chaosDead)
	waitFor(t, 3*time.Second, "the owner to be ejected", func() bool {
		return statusOf(coord, urls[ownerIdx]).State == "ejected"
	})
	// While the owner is away, this replica's surface is invalidated:
	// its version moves past the owner's recorded points.
	if local.InvalidateAll() == 0 {
		t.Fatal("local invalidation dropped nothing — the estimate was never recorded locally")
	}
	gates[ownerIdx].mode.Store(chaosOK)
	waitFor(t, 3*time.Second, "the owner to be readmitted", func() bool {
		return statusOf(coord, urls[ownerIdx]).State == "ready"
	})

	refusals0 := obs.Snapshot()["coordinator.version_refusals"]
	after, err := coord.Estimate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if after.Source == "surface" {
		t.Fatal("readmitted owner served its stale pre-invalidation point — the version guard failed")
	}
	if after.FailProb != first.FailProb || after.StdErr != first.StdErr || after.Samples != first.Samples {
		t.Fatalf("re-sampled post-readmission answer differs:\n  first: %+v\n  after: %+v", first, after)
	}
	if got := obs.Snapshot()["coordinator.version_refusals"] - refusals0; got == 0 {
		t.Error("version-refusal counter did not move on the readmitted owner's probe")
	}
}

// TestHedgedHungReplica is the straggler bound of the acceptance
// criteria: with one replica accepting connections and never
// answering, a hedged coordinator pays at most the hedge delay per
// wave — not the full RPC timeout — and the merged estimate stays
// bit-identical.
func TestHedgedHungReplica(t *testing.T) {
	_, gates, urls := chaosCluster(t, 3, false)
	gates[1].mode.Store(chaosHung)

	const rpcTimeout = 8 * time.Second
	coord, err := coordinator.New(coordinator.Config{
		Workers:      urls,
		Client:       &http.Client{Timeout: rpcTimeout},
		ShardSamples: 512,
		HedgeAfter:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)

	req := coordReq("mc", 4096) // 8 shards over 3 replicas: 3 waves, each with one hung-primary shard
	want, err := predint.LinkYield(req)
	if err != nil {
		t.Fatal(err)
	}
	before := obs.Snapshot()
	start := time.Now()
	got, err := coord.Estimate(context.Background(), req)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("hedged estimate %+v != local %+v", got, want)
	}
	// Without hedging every hung-primary shard would block for the full
	// 8 s RPC timeout; with it, each costs ~100 ms.
	if elapsed >= rpcTimeout/2 {
		t.Fatalf("hung replica cost %v — hedging did not bound the straggler (RPC timeout %v)", elapsed, rpcTimeout)
	}
	after := obs.Snapshot()
	if after["coordinator.hedges"]-before["coordinator.hedges"] == 0 {
		t.Error("no hedges were issued against a hung replica")
	}
	if after["coordinator.hedge_wins"]-before["coordinator.hedge_wins"] == 0 {
		t.Error("no hedge won against a hung replica")
	}
	if after["coordinator.hedges_cancelled"]-before["coordinator.hedges_cancelled"] == 0 {
		t.Error("no losing leg was cancelled")
	}
}

// TestHedgeLoserNoLeak pins hedge-loser cleanup: every losing leg's
// goroutine (and the hung server handlers it was blocked on) must exit
// once the winner returns, so repeated hedging cannot accumulate
// goroutines.
func TestHedgeLoserNoLeak(t *testing.T) {
	_, gates, urls := chaosCluster(t, 3, false)
	gates[1].mode.Store(chaosHung)

	client := &http.Client{Timeout: 8 * time.Second}
	coord, err := coordinator.New(coordinator.Config{
		Workers:      urls,
		Client:       client,
		ShardSamples: 256,
		HedgeAfter:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	req := coordReq("mc", 1024)
	want, err := predint.LinkYield(req)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		got, err := coord.Estimate(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("run %d: estimate %+v != local %+v", i, got, want)
		}
	}
	coord.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		client.CloseIdleConnections()
		if runtime.NumGoroutine() <= base+4 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines grew from %d to %d after three hedged estimates — losing legs leaked", base, runtime.NumGoroutine())
}

// TestRetryAfterHonored pins satellite behavior for 503s: when every
// replica is shedding with a Retry-After hint, the coordinator sleeps
// the hint out (bounded, observable on the retry_after_waits counter)
// instead of hammering the drained fleet, then falls back locally —
// still bit-identical.
func TestRetryAfterHonored(t *testing.T) {
	servers := make([]*server, 2)
	urls := make([]string, 2)
	for i := range servers {
		s := newServer(8, 64, 1<<20, 30*time.Second, 200*time.Millisecond)
		s.draining.Store(true) // everything is shed with 503 + Retry-After
		ts := httptest.NewServer(s.routes())
		t.Cleanup(ts.Close)
		servers[i], urls[i] = s, ts.URL
	}
	coord, err := coordinator.New(coordinator.Config{
		Workers:      urls,
		Client:       &http.Client{Timeout: 2 * time.Second},
		ShardSamples: 1024,
		MaxAttempts:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)

	req := coordReq("mc", 2048)
	want, err := predint.LinkYield(req)
	if err != nil {
		t.Fatal(err)
	}
	waits0 := obs.Snapshot()["coordinator.retry_after_waits"]
	start := time.Now()
	got, err := coord.Estimate(context.Background(), req)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("drained-fleet estimate %+v != local %+v", got, want)
	}
	if obs.Snapshot()["coordinator.retry_after_waits"]-waits0 == 0 {
		t.Error("retry_after_waits did not move although every replica was shedding with a hint")
	}
	if elapsed < 150*time.Millisecond {
		t.Errorf("estimate returned in %v — the Retry-After hint (200ms, shed by every replica) was not slept out", elapsed)
	}
}

// TestChaosSoakMembership is the acceptance soak: four replicas are
// randomly killed, slowed, hung, and restored for seconds while the
// prober evicts/readmits, breakers trip, and hedges race — and every
// single estimate served through the churn must be bit-identical to
// the single-process answer, with no request failing.
func TestChaosSoakMembership(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is seconds of wall clock")
	}
	_, gates, urls := chaosCluster(t, 4, false)
	coord, err := coordinator.New(coordinator.Config{
		Workers:          urls,
		Client:           &http.Client{Timeout: 500 * time.Millisecond},
		ShardSamples:     256,
		ProbeInterval:    25 * time.Millisecond,
		ProbeTimeout:     100 * time.Millisecond,
		EjectAfter:       2,
		ReadmitAfter:     1,
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
		HedgeAfter:       60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)

	req := coordReq("mc", 2048)
	want, err := predint.LinkYield(req)
	if err != nil {
		t.Fatal(err)
	}

	stopChurn := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		rng := rand.New(rand.NewPCG(0xC0FFEE, 42))
		// Mostly healthy, with dead, slow, and hung interludes.
		modes := []int32{chaosOK, chaosOK, chaosOK, chaosDead, chaosDead, chaosSlow, chaosSlow, chaosHung}
		for {
			select {
			case <-stopChurn:
				return
			case <-time.After(20 * time.Millisecond):
			}
			gates[rng.IntN(len(gates))].mode.Store(modes[rng.IntN(len(modes))])
		}
	}()

	deadline := time.Now().Add(2500 * time.Millisecond)
	var estimates atomic.Int64
	var clients sync.WaitGroup
	for i := 0; i < 2; i++ {
		clients.Add(1)
		go func(id int) {
			defer clients.Done()
			for time.Now().Before(deadline) {
				got, err := coord.Estimate(context.Background(), req)
				if err != nil {
					t.Errorf("churn client %d: estimate failed: %v", id, err)
					return
				}
				if got != want {
					t.Errorf("churn client %d: estimate %+v != local %+v — churn changed the answer", id, got, want)
					return
				}
				estimates.Add(1)
			}
		}(i)
	}
	clients.Wait()
	close(stopChurn)
	churn.Wait()

	// Restore the fleet; it must recover to a working state.
	for _, g := range gates {
		g.mode.Store(chaosOK)
	}
	got, err := coord.Estimate(context.Background(), req)
	if err != nil {
		t.Fatalf("post-churn estimate: %v", err)
	}
	if got != want {
		t.Fatalf("post-churn estimate %+v != local %+v", got, want)
	}
	if n := estimates.Load(); n < 3 {
		t.Errorf("only %d estimates completed during the soak — churn starved the clients", n)
	}
	t.Logf("chaos soak: %d estimates through churn, all bit-identical", estimates.Load())
}
